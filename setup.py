"""Setup shim so editable installs work without the `wheel` package.

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on environments (like offline
boxes) that lack the wheel backend needed for PEP 660 editables.
"""

from setuptools import setup

setup()
