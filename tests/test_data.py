"""Synthetic corpora: determinism, distributional properties, yardsticks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FP64, Adam, ModelConfig, TrainSpec, train
from repro.data import MarkovCorpus, UniformCorpus


class TestUniformCorpus:
    def test_deterministic(self):
        c = UniformCorpus(vocab=17, seed=3)
        a = c.microbatch(0, 1, 2, 8)
        b = c.microbatch(0, 1, 2, 8)
        np.testing.assert_array_equal(a[0], b[0])

    def test_targets_are_shifted_tokens(self):
        c = UniformCorpus(vocab=17)
        tokens, targets = c.microbatch(0, 0, 2, 8)
        np.testing.assert_array_equal(tokens[:, 1:], targets[:, :-1])

    def test_entropy_rate(self):
        assert UniformCorpus(vocab=32).entropy_rate() == pytest.approx(np.log(32))


class TestMarkovCorpus:
    def test_rows_are_distributions(self):
        c = MarkovCorpus(vocab=20, branching=3)
        np.testing.assert_allclose(c.transition.sum(axis=1), np.ones(20))
        assert (c.transition >= 0).all()
        assert ((c.transition > 0).sum(axis=1) == 3).all()

    def test_deterministic_batches(self):
        c = MarkovCorpus(vocab=20)
        a = c.microbatch(2, 3, 2, 16)
        b = c.microbatch(2, 3, 2, 16)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_distinct_batches(self):
        c = MarkovCorpus(vocab=20)
        a = c.microbatch(0, 0, 1, 32)[0]
        b = c.microbatch(0, 1, 1, 32)[0]
        assert not np.array_equal(a, b)

    def test_transitions_respected(self):
        """Every consecutive pair in a sample must be a legal transition."""
        c = MarkovCorpus(vocab=12, branching=2, seed=5)
        tokens, targets = c.microbatch(0, 0, 4, 64)
        for row_t, row_y in zip(tokens, targets):
            stream = np.append(row_t, row_y[-1])
            for a, b in zip(stream, stream[1:]):
                assert c.transition[a, b] > 0, (a, b)

    def test_stationary_distribution_is_fixed_point(self):
        c = MarkovCorpus(vocab=16, branching=4)
        pi = c.stationary_distribution()
        np.testing.assert_allclose(pi @ c.transition, pi, atol=1e-10)
        assert pi.sum() == pytest.approx(1.0)

    def test_entropy_rate_bounds(self):
        c = MarkovCorpus(vocab=16, branching=4)
        h = c.entropy_rate()
        assert 0.0 < h <= np.log(4) + 1e-12  # at most log(branching)

    def test_branching_one_is_deterministic_chain(self):
        c = MarkovCorpus(vocab=8, branching=1)
        assert c.entropy_rate() == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovCorpus(vocab=1)
        with pytest.raises(ValueError):
            MarkovCorpus(vocab=8, branching=9)

    @given(st.integers(0, 5), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_property_determinism(self, it, idx):
        c = MarkovCorpus(vocab=10, seed=1)
        a = c.microbatch(it, idx, 1, 8)
        b = c.microbatch(it, idx, 1, 8)
        np.testing.assert_array_equal(a[0], b[0])


class TestTrainingOnMarkovData:
    def test_spec_integration(self):
        cfg = ModelConfig(hidden=16, n_layers=2, n_heads=2, seq_len=16, vocab=12)
        corpus = MarkovCorpus(vocab=12, branching=2, seed=5)
        spec = TrainSpec(
            cfg=cfg, n_microbatches=4, microbatch_size=2, iters=8,
            precision=FP64, data=corpus,
            make_optimizer=lambda: Adam(lr=5e-3),
        )
        res = train(spec, "serial", 1)
        # learnable data: loss must fall well below log(vocab) toward the
        # chain's entropy rate
        assert res.losses[-1] < res.losses[0] - 0.3
        assert res.losses[0] > np.log(12) * 0.8

    def test_data_source_shape_validation(self):
        cfg = ModelConfig(hidden=16, n_layers=2, n_heads=2, seq_len=16, vocab=12)

        class Bad:
            def microbatch(self, it, idx, g, s):
                return np.zeros((g, s - 1), dtype=int), np.zeros((g, s - 1), dtype=int)

        spec = TrainSpec(cfg=cfg, n_microbatches=2, microbatch_size=1, data=Bad())
        with pytest.raises(Exception):
            train(spec, "serial", 1)

    def test_distributed_equivalence_on_markov(self):
        cfg = ModelConfig(hidden=16, n_layers=4, n_heads=2, seq_len=12, vocab=12)
        corpus = MarkovCorpus(vocab=12, branching=3, seed=2)
        spec = TrainSpec(
            cfg=cfg, n_microbatches=8, microbatch_size=2, iters=2,
            precision=FP64, data=corpus,
        )
        ref = train(spec, "serial", 1)
        got = train(spec, "weipipe-interleave", 4)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-9)
