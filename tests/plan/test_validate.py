"""The predict-then-validate loop: live runs gated by reconcile()."""

import pytest

from repro.plan import (
    FUNCTIONAL_STRATEGY,
    RECONCILE_GATED,
    PlanSpec,
    search,
    validate_candidate,
)
from repro.plan.search import Candidate, Evaluated
from repro.plan.spec import ClusterSpec, ModelSpec, SearchSpace, ValidationSpec


def _spec(**space_over):
    space = dict(microbatch_sizes=(1,), overlap=(True,), backends=("thread",))
    space.update(space_over)
    return PlanSpec(
        model=ModelSpec(hidden=512, n_layers=8, seq_len=2048, n_heads=4,
                        vocab=1024, global_batch_sequences=64),
        cluster=ClusterSpec(preset="pcie-eth", world=8, gpus_per_node=4),
        space=SearchSpace(**space),
        validation=ValidationSpec(world_cap=2, iters=2),
    )


def _evaluated(strategy, degree, dp, grouping="flat"):
    return Evaluated(
        candidate=Candidate(
            strategy=strategy, world=degree * dp, degree=degree, dp=dp,
            microbatch=1, n_microbatches=8, precision="fp16", overlap=True,
            recompute=True, grouping=grouping, backend="thread",
        ),
        peak_memory_bytes=1.0, fits=True,
        iteration_s=1.0, tokens_per_s=1.0, tokens_per_s_per_gpu=1.0,
    )


class TestStrategyMap:
    def test_every_searchable_strategy_maps(self):
        from repro.core.api import STRATEGIES
        from repro.sim.memory import MEMORY_MODELS

        for name in MEMORY_MODELS:
            assert name in FUNCTIONAL_STRATEGY
            assert FUNCTIONAL_STRATEGY[name] in STRATEGIES

    def test_gated_set_is_traceable_families(self):
        assert "weipipe-hier" in RECONCILE_GATED
        assert "1f1b" in RECONCILE_GATED
        assert "fsdp" not in RECONCILE_GATED
        assert "dp" not in RECONCILE_GATED


class TestReconcileGate:
    def test_interleave_pick_reconciles(self):
        verdict = validate_candidate(
            _evaluated("weipipe-interleave", 8, 1), _spec()
        )
        assert verdict["ran"] is True
        assert verdict["gate"] == "reconcile"
        assert verdict["strategy"] == "weipipe-interleave"
        assert verdict["world"] == 2  # clamped by world_cap
        assert verdict["trace_schema_ok"] is True
        assert verdict["passed"] is True
        wall = verdict["reconcile"]["iteration_wall"]
        assert wall["within_tolerance"] is True

    def test_wzb_maps_to_functional_zb_ring(self):
        verdict = validate_candidate(_evaluated("weipipe-wzb1", 8, 1), _spec())
        assert verdict["strategy"] == "weipipe-zb"
        assert verdict["gate"] == "reconcile"
        assert verdict["passed"] is True

    def test_hier_pick_runs_with_topology(self):
        spec = PlanSpec(
            model=_spec().model, cluster=_spec().cluster,
            space=_spec().space,
            validation=ValidationSpec(world_cap=4, iters=2),
        )
        verdict = validate_candidate(
            _evaluated("weipipe-hier", 8, 1, grouping="hier"), spec
        )
        assert verdict["strategy"] == "weipipe-hier"
        assert verdict["world"] == 4
        assert verdict["gate"] == "reconcile"
        assert verdict["passed"] is True

    def test_pipeline_pick_reconciles(self):
        verdict = validate_candidate(_evaluated("1f1b", 8, 1), _spec())
        assert verdict["gate"] == "reconcile"
        assert verdict["passed"] is True


class TestSmokeGate:
    def test_fsdp_pick_smoke_gates(self):
        verdict = validate_candidate(_evaluated("fsdp", 8, 1), _spec())
        assert verdict["gate"] == "smoke"
        assert verdict["reconcile"] is None
        assert verdict["passed"] is True
        assert all(l == l for l in verdict["losses"])  # finite

    def test_pure_dp_validates_its_replica_fanout(self):
        verdict = validate_candidate(_evaluated("dp", 1, 8), _spec())
        assert verdict["gate"] == "smoke"
        assert verdict["world"] == 2  # dp fan-out clamped by cap
        assert verdict["passed"] is True


class TestEndToEnd:
    def test_search_then_validate_top_pick(self):
        spec = _spec()
        result = search(spec)
        assert result.feasible
        verdict = validate_candidate(result.feasible[0], spec)
        assert verdict["ran"] and verdict["passed"]
        assert verdict["planned"] == result.feasible[0].candidate.as_dict()
