"""The ``plan`` CLI subcommand: flags, spec files, exit codes, artefact."""

import json

import pytest

from repro.cli import main
from repro.plan import validate_plan_report


def _flags(*extra):
    return [
        "plan", "--preset", "single-node", "--world", "4",
        "--hidden", "512", "--layers", "8", "--seq-len", "2048",
        "--heads", "4", "--vocab", "1024", "--global-batch", "64",
        "--microbatches", "1,2", *extra,
    ]


class TestPlanCommand:
    def test_flags_only_no_validate(self, capsys):
        rc = main(_flags("--no-validate"))
        out = capsys.readouterr().out
        assert rc == 0
        assert "feasible" in out
        assert "validation: not run" in out

    def test_writes_schema_valid_report(self, tmp_path, capsys):
        out_path = tmp_path / "plan.json"
        rc = main(_flags("--no-validate", "--out", str(out_path)))
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert validate_plan_report(report) == []
        assert report["validation"] == {"ran": False}

    def test_live_validation_verdict_in_report(self, tmp_path, capsys):
        out_path = tmp_path / "plan.json"
        rc = main(_flags(
            "--strategies", "1f1b,weipipe-interleave",
            "--out", str(out_path),
        ))
        out = capsys.readouterr().out
        assert rc == 0
        assert "validation (" in out and "PASS" in out
        report = json.loads(out_path.read_text())
        assert validate_plan_report(report) == []
        assert report["validation"]["ran"] is True
        assert report["validation"]["passed"] is True

    def test_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "model": {"hidden": 512, "n_layers": 8, "seq_len": 2048,
                      "n_heads": 4, "vocab": 1024,
                      "global_batch_sequences": 64},
            "cluster": {"preset": "single-node", "world": 4},
            "space": {"microbatch_sizes": [1]},
        }))
        rc = main(["plan", "--spec", str(spec_path), "--no-validate"])
        assert rc == 0

    def test_bad_spec_is_exit_2(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"model": {"hiden": 1}}))
        rc = main(["plan", "--spec", str(spec_path)])
        assert rc == 2
        assert "unknown keys" in capsys.readouterr().err

    def test_nothing_fits_is_exit_1(self, capsys):
        rc = main(_flags("--memory-budget-gib", "0.0001", "--no-validate"))
        assert rc == 1
        assert "no feasible configuration" in capsys.readouterr().err

    def test_strategy_subset_respected(self, tmp_path):
        out_path = tmp_path / "plan.json"
        rc = main(_flags("--no-validate", "--strategies", "1f1b,fsdp",
                         "--out", str(out_path)))
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert {c["strategy"] for c in report["candidates"]} <= {"1f1b", "fsdp"}

    def test_unknown_strategy_is_exit_2(self, capsys):
        rc = main(_flags("--strategies", "warp-drive"))
        assert rc == 2
        assert "no memory model" in capsys.readouterr().err
