"""Config-space enumeration: shape rules, pruning ledger, ranking."""

import pytest

from repro.plan import PlanSpec, enumerate_candidates, search
from repro.plan.spec import ClusterSpec, ModelSpec, SearchSpace
from repro.sim.runner import NO_RECOMPUTE_STRATEGIES


def _spec(**over):
    kw = dict(
        model=ModelSpec(hidden=512, n_layers=8, seq_len=2048, n_heads=4,
                        vocab=1024, global_batch_sequences=64),
        cluster=ClusterSpec(preset="pcie-eth", world=8, gpus_per_node=4),
        space=SearchSpace(microbatch_sizes=(1, 2), overlap=(True,),
                          backends=("thread",)),
    )
    kw.update(over)
    return PlanSpec(**kw)


class TestShapeRules:
    def test_degree_one_is_dp_only(self):
        cands, _ = enumerate_candidates(_spec())
        at_one = {c.strategy for c in cands if c.degree == 1}
        assert at_one == {"dp"}
        assert all(c.degree == 1 for c in cands if c.strategy == "dp")

    def test_dp_times_degree_is_world(self):
        cands, _ = enumerate_candidates(_spec())
        assert all(c.dp * c.degree == c.world == 8 for c in cands)

    def test_hier_is_interleave_spanning_nodes(self):
        cands, _ = enumerate_candidates(_spec())
        hier = [c for c in cands if c.grouping == "hier"]
        assert hier, "expected hierarchical candidates"
        for c in hier:
            assert c.strategy == "weipipe-hier"
            assert c.dp == 1
            # gpus_per_node=4, so a >1-node inner ring means degree 8
            assert c.degree == 8

    def test_single_node_cluster_has_no_hier(self):
        spec = _spec(cluster=ClusterSpec(preset="single-node", world=8))
        cands, _ = enumerate_candidates(spec)
        assert not [c for c in cands if c.grouping == "hier"]

    def test_layer_divisibility(self):
        # 8 layers on degree 8 is fine; a 6-layer model cannot ring at 4
        spec = _spec(model=ModelSpec(hidden=512, n_layers=6, seq_len=2048,
                                     n_heads=4, vocab=1024,
                                     global_batch_sequences=64))
        cands, rejected = enumerate_candidates(spec)
        assert not [
            c for c in cands
            if c.strategy.startswith("weipipe") and c.degree == 4
        ]
        assert rejected > 0

    def test_tp_needs_hidden_divisible(self):
        spec = _spec(model=ModelSpec(hidden=12, n_layers=8, seq_len=2048,
                                     n_heads=4, vocab=1024,
                                     global_batch_sequences=64))
        cands, _ = enumerate_candidates(spec)
        assert not [c for c in cands if c.strategy == "tp" and c.degree == 8]

    def test_ring_needs_microbatches_divisible(self):
        cands, _ = enumerate_candidates(_spec())
        for c in cands:
            if c.strategy.startswith("weipipe"):
                assert c.n_microbatches % c.degree == 0

    def test_recompute_follows_strategy(self):
        cands, _ = enumerate_candidates(_spec())
        for c in cands:
            base = "weipipe-interleave" if c.strategy == "weipipe-hier" \
                else c.strategy
            assert c.recompute == (base not in NO_RECOMPUTE_STRATEGIES)

    def test_explicit_degrees_filtered_to_divisors(self):
        spec = _spec(space=SearchSpace(degrees=(2, 3, 8),
                                       microbatch_sizes=(1,),
                                       overlap=(True,)))
        cands, _ = enumerate_candidates(spec)
        assert {c.degree for c in cands} <= {2, 8}

    def test_backend_axis_multiplies(self):
        one, _ = enumerate_candidates(_spec())
        both, _ = enumerate_candidates(_spec(space=SearchSpace(
            microbatch_sizes=(1, 2), overlap=(True,),
            backends=("thread", "process"))))
        assert len(both) == 2 * len(one)


class TestSearchAndRanking:
    def test_ledger_adds_up(self):
        result = search(_spec())
        assert result.total == (
            len(result.feasible) + len(result.memory_rejected)
            + result.shape_rejected
        )

    def test_feasible_sorted_descending(self):
        result = search(_spec())
        tps = [e.tokens_per_s_per_gpu for e in result.feasible]
        assert tps == sorted(tps, reverse=True)
        assert all(t > 0 for t in tps)

    def test_deterministic(self):
        a = search(_spec())
        b = search(_spec())
        assert [e.candidate for e in a.feasible] == [
            e.candidate for e in b.feasible
        ]

    def test_thread_before_process_on_ties(self):
        spec = _spec(space=SearchSpace(microbatch_sizes=(1,), overlap=(True,),
                                       backends=("thread", "process")))
        result = search(spec)
        seen = {}
        for rank, ev in enumerate(result.feasible):
            key = (ev.candidate.strategy, ev.candidate.degree,
                   ev.candidate.microbatch, ev.candidate.overlap,
                   ev.candidate.grouping)
            if key in seen:
                other = result.feasible[seen[key]]
                if other.tokens_per_s_per_gpu == ev.tokens_per_s_per_gpu:
                    assert other.candidate.backend == "thread"
                    assert ev.candidate.backend == "process"
            else:
                seen[key] = rank


class TestReferenceSpec:
    """The CI acceptance assertions, pinned here too: the reference
    cluster spec must rank >= 24 feasible candidates, reject at least
    one on memory, and put a reconcile-gated strategy on top."""

    def test_reference_plan_shape(self):
        from repro.plan import RECONCILE_GATED, FUNCTIONAL_STRATEGY, load_spec

        spec = load_spec("examples/specs/reference_cluster.json")
        result = search(spec)
        assert len(result.feasible) >= 24
        assert len(result.memory_rejected) >= 1
        top = result.feasible[0].candidate
        assert FUNCTIONAL_STRATEGY[top.strategy] in RECONCILE_GATED
        # the paper's claim at long context on a slow wire: the
        # hierarchical weight ring wins
        assert top.strategy == "weipipe-hier"
