"""Planner spec parsing: defaults, JSON round-trip, loud rejection."""

import json

import pytest

from repro.plan import (
    DEFAULT_STRATEGIES,
    ClusterSpec,
    ModelSpec,
    PlanSpec,
    PlanSpecError,
    SearchSpace,
    ValidationSpec,
    load_spec,
)


class TestDefaults:
    def test_empty_dict_is_the_default_spec(self):
        assert PlanSpec.from_dict({}) == PlanSpec()

    def test_default_space_covers_the_strategy_zoo(self):
        from repro.sim.memory import MEMORY_MODELS

        for s in DEFAULT_STRATEGIES:
            assert s in MEMORY_MODELS

    def test_round_trip(self):
        spec = PlanSpec.from_dict({
            "model": {"hidden": 512, "seq_len": 2048},
            "cluster": {"preset": "pcie-eth", "world": 8},
            "space": {"microbatch_sizes": [1, 2], "backends": ["thread"]},
            "validation": {"world_cap": 2},
        })
        again = PlanSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec

    def test_json_lists_become_tuples(self):
        spec = PlanSpec.from_dict({"space": {"microbatch_sizes": [1, 2]}})
        assert spec.space.microbatch_sizes == (1, 2)


class TestRejection:
    def test_unknown_section(self):
        with pytest.raises(PlanSpecError, match="unknown sections"):
            PlanSpec.from_dict({"modle": {}})

    def test_unknown_key(self):
        with pytest.raises(PlanSpecError, match="unknown keys"):
            PlanSpec.from_dict({"model": {"hiden": 4096}})

    def test_bad_precision(self):
        with pytest.raises(PlanSpecError, match="unknown precision"):
            PlanSpec.from_dict({"space": {"precisions": ["fp13"]}})

    def test_bad_preset(self):
        with pytest.raises(PlanSpecError, match="preset"):
            PlanSpec.from_dict({"cluster": {"preset": "quantum"}})

    def test_bad_grouping_and_backend(self):
        with pytest.raises(PlanSpecError, match="groupings"):
            SearchSpace(groupings=("nested",))
        with pytest.raises(PlanSpecError, match="backends"):
            SearchSpace(backends=("mpi",))

    def test_nonpositive_model_dims(self):
        with pytest.raises(PlanSpecError, match="must be positive"):
            ModelSpec(hidden=0)

    def test_bad_json_file(self, tmp_path):
        p = tmp_path / "spec.json"
        p.write_text("{not json")
        with pytest.raises(PlanSpecError, match="not valid JSON"):
            load_spec(str(p))

    def test_world_not_multiple_of_gpn(self):
        with pytest.raises(PlanSpecError, match="multiple"):
            ClusterSpec(preset="custom", world=6, gpus_per_node=4).build()


class TestClusterBuild:
    @pytest.mark.parametrize("preset,nodes", [
        ("nvlink", 2), ("pcie-eth", 4), ("single-node", 1),
    ])
    def test_presets(self, preset, nodes):
        cluster = ClusterSpec(preset=preset, world=16).build()
        assert cluster.world_size == 16
        assert cluster.nodes == nodes

    def test_custom_links(self):
        spec = ClusterSpec(preset="custom", world=8, gpus_per_node=4,
                           inter_bandwidth=1e8, intra_bandwidth=2e11)
        cluster = spec.build()
        assert cluster.nodes == 2
        assert cluster.inter.bandwidth == 1e8
        assert cluster.intra.bandwidth == 2e11

    def test_budget_defaults_to_hbm(self):
        spec = ClusterSpec(preset="nvlink", world=8)
        assert spec.budget_bytes() == spec.build().gpu.memory

    def test_budget_override(self):
        spec = ClusterSpec(preset="nvlink", world=8,
                           memory_budget_bytes=7 * 2**30)
        assert spec.budget_bytes() == 7 * 2**30

    def test_reference_spec_parses(self):
        spec = load_spec("examples/specs/reference_cluster.json")
        assert spec.cluster.world == 16
        assert spec.model.seq_len == 131072
        assert spec.validation.world_cap == 4


class TestValidationSpec:
    def test_dims_guardrails(self):
        with pytest.raises(PlanSpecError):
            ValidationSpec(world_cap=0)
        with pytest.raises(PlanSpecError):
            ValidationSpec(iters=0)
