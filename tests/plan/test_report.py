"""The repro.plan/v1 report: build, schema gate, rendering."""

import copy

from repro.plan import (
    PLAN_SCHEMA,
    PlanSpec,
    build_report,
    format_report,
    search,
    validate_plan_report,
)
from repro.plan.spec import ClusterSpec, ModelSpec, SearchSpace


def _report():
    spec = PlanSpec(
        model=ModelSpec(hidden=512, n_layers=8, seq_len=2048, n_heads=4,
                        vocab=1024, global_batch_sequences=64),
        cluster=ClusterSpec(preset="pcie-eth", world=8, gpus_per_node=4,
                            memory_budget_bytes=2**30),
        space=SearchSpace(microbatch_sizes=(1, 2), overlap=(True,)),
    )
    return build_report(spec, search(spec))


class TestBuild:
    def test_valid_by_construction(self):
        report = _report()
        assert report["schema"] == PLAN_SCHEMA
        assert validate_plan_report(report) == []

    def test_ranks_are_contiguous(self):
        report = _report()
        assert [c["rank"] for c in report["candidates"]] == list(
            range(1, len(report["candidates"]) + 1)
        )

    def test_ledger_matches_lists(self):
        report = _report()
        assert report["search"]["feasible"] == len(report["candidates"])
        assert report["search"]["total"] >= (
            report["search"]["feasible"] + report["search"]["memory_rejected"]
        )

    def test_rejected_sample_is_worst_first_and_annotated(self):
        report = _report()
        sample = report["rejected_sample"]
        assert sample, "spec chosen to produce memory rejects"
        peaks = [r["peak_memory_bytes"] for r in sample]
        assert peaks == sorted(peaks, reverse=True)
        for r in sample:
            assert r["reason"] == "memory"
            assert r["over_budget_bytes"] > 0

    def test_validation_defaults_to_not_ran(self):
        assert _report()["validation"] == {"ran": False}


class TestSchemaGate:
    def test_wrong_schema_tag(self):
        report = _report()
        report["schema"] = "repro.plan/v0"
        assert any("schema" in p for p in validate_plan_report(report))

    def test_missing_top_level_key(self):
        report = _report()
        del report["search"]
        assert any("search" in p for p in validate_plan_report(report))

    def test_bad_rank(self):
        report = _report()
        report["candidates"][0]["rank"] = 7
        assert any("rank" in p for p in validate_plan_report(report))

    def test_unsorted_candidates(self):
        report = _report()
        report["candidates"][0]["predicted"]["tokens_per_s_per_gpu"] = 1e-9
        assert any("sorted" in p for p in validate_plan_report(report))

    def test_nonpositive_throughput(self):
        report = _report()
        report["candidates"][-1]["predicted"]["tokens_per_s_per_gpu"] = 0.0
        assert any("must be > 0" in p for p in validate_plan_report(report))

    def test_ran_validation_needs_verdict_fields(self):
        report = _report()
        report["validation"] = {"ran": True}
        problems = validate_plan_report(report)
        for key in ("strategy", "world", "passed", "reconcile"):
            assert any(key in p for p in problems)

    def test_max_errors_caps_output(self):
        report = _report()
        for c in report["candidates"]:
            del c["predicted"]
        assert len(validate_plan_report(report, max_errors=5)) == 5

    def test_not_an_object(self):
        assert validate_plan_report([]) == ["report is not a JSON object"]


class TestFormat:
    def test_mentions_counts_and_top(self):
        report = _report()
        text = format_report(report, top=3)
        assert "feasible" in text
        assert report["candidates"][0]["strategy"] in text
        assert "validation: not run" in text

    def test_renders_validation_verdict(self):
        report = _report()
        report["validation"] = {
            "ran": True, "strategy": "weipipe-hier", "world": 4,
            "passed": True,
            "reconcile": {"iteration_wall": {
                "predicted_s": 0.1, "measured_s": 0.05, "ratio": 0.5,
                "within_tolerance": True, "tolerance_factor": 3.0,
            }},
        }
        text = format_report(report)
        assert "PASS" in text and "weipipe-hier" in text
