"""Hierarchical-ring analytics: turn time and cross-boundary volume.

The closed forms must (a) reduce *exactly* to the flat-ring formulas in
every degenerate direction — single node, or first-revolution
(``steady=False``) pricing — and (b) reproduce the engine's measured
crossing counts: ``P`` full weight crossings per flow per boundary per
iteration, references everywhere after, ``D`` on every hop.
"""

import pytest

from repro.runtime import WREF_NBYTES
from repro.sim import (
    CostModel,
    ExecConfig,
    WorkloadDims,
    nvlink_cluster,
    pcie_ethernet_cluster,
    weipipe_cross_bytes,
    weipipe_hier_cross_bytes,
    weipipe_hier_turn_time,
    weipipe_turn_time,
)
from repro.sim.analytic import HIER_REF_BYTES

DIMS = WorkloadDims(
    hidden=1024, n_layers=32, seq_len=4096, microbatch=4,
    n_microbatches=64, n_heads=16, vocab=50_000,
)


def _cost(cluster):
    return CostModel(DIMS, cluster.gpu, ExecConfig())


class TestRefBytesPin:
    def test_sim_and_runtime_agree_on_reference_size(self):
        """The analytic model and the engine must not drift apart on
        what a weight-reference token weighs on the wire."""
        assert HIER_REF_BYTES == WREF_NBYTES


class TestHierTurnTime:
    def test_single_node_reduces_to_flat(self):
        cluster = nvlink_cluster(8, gpus_per_node=8)
        assert weipipe_hier_turn_time(DIMS, cluster) == pytest.approx(
            weipipe_turn_time(DIMS, cluster)
        )

    def test_first_revolution_prices_like_flat(self):
        cluster = pcie_ethernet_cluster(16, gpus_per_node=4)
        assert weipipe_hier_turn_time(
            DIMS, cluster, steady=False
        ) == pytest.approx(weipipe_turn_time(DIMS, cluster))

    def test_steady_state_beats_flat_on_asymmetric_fabric(self):
        cluster = pcie_ethernet_cluster(16, gpus_per_node=4)
        hier = weipipe_hier_turn_time(DIMS, cluster)
        flat = weipipe_turn_time(DIMS, cluster)
        assert hier < flat

    def test_steady_state_wire_leg_is_boundary_complement(self):
        """On a wire-bound asymmetric cluster the steady turn is paced
        by the boundary link carrying only ``1 D + 2 ref``."""
        cluster = pcie_ethernet_cluster(16, gpus_per_node=4)
        cost = _cost(cluster)
        lps = DIMS.n_layers // cluster.world_size
        compute = lps * (cost.t_fwd_layer() + cost.t_bwd_layer())
        expected_wire = max(
            cluster.intra.time(cost.weipipe_turn_bytes(lps)),
            cluster.inter.time(
                cost.hier_boundary_turn_bytes(lps, ref_bytes=HIER_REF_BYTES)
            ),
        )
        assert weipipe_hier_turn_time(DIMS, cluster) == pytest.approx(
            cost.overlapped(compute, expected_wire)
        )


class TestCrossBytes:
    TURNS = (DIMS.n_microbatches // 16 + 2) * 16  # interleave, P=16

    def test_flat_volume_is_full_complement_every_hop(self):
        cluster = pcie_ethernet_cluster(16, gpus_per_node=4)
        cost = _cost(cluster)
        lps = DIMS.n_layers // 16
        expected = (self.TURNS + 1) * cost.weipipe_turn_bytes(lps)
        assert weipipe_cross_bytes(DIMS, cluster, self.TURNS) == expected

    def test_hier_volume_formula(self):
        cluster = pcie_ethernet_cluster(16, gpus_per_node=4)
        cost = _cost(cluster)
        lps = DIMS.n_layers // 16
        hops = self.TURNS + 1
        expected = (
            2 * 16 * cost.weight_chunk_bytes(lps)  # P fulls per flow
            + 2 * (hops - 16) * HIER_REF_BYTES  # refs afterwards
            + hops * cost.wgrad_chunk_bytes(lps)  # D crosses every hop
        )
        assert weipipe_hier_cross_bytes(DIMS, cluster, self.TURNS) == expected

    def test_hier_strictly_fewer_cross_bytes(self):
        cluster = pcie_ethernet_cluster(16, gpus_per_node=4)
        hier = weipipe_hier_cross_bytes(DIMS, cluster, self.TURNS)
        flat = weipipe_cross_bytes(DIMS, cluster, self.TURNS)
        assert hier < flat
        # for T >> P the saving approaches the 3x chunk reduction.
        assert flat / hier > 2.0

    def test_boundary_turn_bytes_complement(self):
        cluster = pcie_ethernet_cluster(16, gpus_per_node=4)
        cost = _cost(cluster)
        lps = DIMS.n_layers // 16
        assert cost.weipipe_turn_bytes(lps) == (
            2 * cost.weight_chunk_bytes(lps) + cost.wgrad_chunk_bytes(lps)
        )
        assert cost.hier_boundary_turn_bytes(lps) == (
            cost.wgrad_chunk_bytes(lps) + 2 * HIER_REF_BYTES
        )
        assert (cost.hier_boundary_turn_bytes(lps)
                < cost.weipipe_turn_bytes(lps))
