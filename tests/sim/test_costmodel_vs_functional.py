"""Cross-layer validation: the DES cost model vs the real NumPy layer.

The simulator's throughput and memory predictions stand on two numbers:
FLOPs per layer and activation-cache bytes per layer.  Both are
independently measurable on the functional substrate, so these tests
pin the cost model to the implementation instead of to folklore.
"""

import numpy as np
import pytest

from repro.nn import ModelConfig, init_model, rope_tables
from repro.nn.accounting import (
    layer_fwd_flops,
    model_fwd_flops,
    tensor_bytes,
    training_step_flops,
)
from repro.nn.layer import layer_bwd_input, layer_fwd
from repro.sim import A800, WorkloadDims
from repro.sim.costmodel import CostModel, ExecConfig


class TestFlopsAgreement:
    @pytest.mark.parametrize(
        "hidden,seq,g", [(1024, 4096, 16), (2048, 8192, 8), (4096, 16384, 4)]
    )
    def test_costmodel_matches_functional_accounting(self, hidden, seq, g):
        """The simulator's per-layer forward FLOPs agree with the counts
        derived from the actual layer implementation within 2%."""
        cfg = ModelConfig(
            hidden=hidden, n_layers=32, n_heads=32, seq_len=seq, vocab=32000
        )
        dims = WorkloadDims(
            hidden=hidden, n_layers=32, seq_len=seq, microbatch=g,
            n_microbatches=32,
        )
        cm = CostModel(dims, A800)
        functional = layer_fwd_flops(cfg, g)["total"]
        assert cm.flops_fwd_layer() == pytest.approx(functional, rel=0.02)

    def test_attention_share_grows_with_seq(self):
        cfg_s = ModelConfig(hidden=1024, n_layers=1, n_heads=32, seq_len=2048, vocab=32)
        cfg_l = cfg_s.with_(seq_len=32768)
        share = lambda c: (
            layer_fwd_flops(c, 4)["attention_scores"] / layer_fwd_flops(c, 4)["total"]
        )
        assert share(cfg_l) > 4 * share(cfg_s)

    def test_training_step_factors(self):
        cfg = ModelConfig(hidden=64, n_layers=2, n_heads=4, seq_len=32, vocab=100)
        fwd = model_fwd_flops(cfg, 2)
        assert training_step_flops(cfg, 2, recompute=False) == pytest.approx(3 * fwd)
        assert training_step_flops(cfg, 2, recompute=True) == pytest.approx(4 * fwd)


class TestMemoryAgreement:
    def _measured_cache_bytes(self, hidden, seq, g, flash):
        """Actual bytes pinned by one layer's forward cache, converted
        to the fp16 wire scale the memory model uses."""
        cfg = ModelConfig(
            hidden=hidden, n_layers=1, n_heads=4, seq_len=seq, vocab=11,
            flash_attention=flash, flash_block=max(16, seq // 4),
            dtype=np.float64,
        )
        chunks = init_model(cfg, seed=0)
        cos, sin = rope_tables(cfg)
        x = np.random.default_rng(0).normal(size=(g, seq, hidden))
        _, cache = layer_fwd(
            chunks[0], x, cfg.n_heads, cos, sin, flash=flash,
            flash_block=cfg.flash_block,
        )
        # float64 in the functional engine, fp16 on real hardware
        return tensor_bytes(cache) / 4.0

    def test_act_full_coef_matches_measured(self):
        """The memory model's ACT_FULL_COEF (bytes/token/hidden, fp16)
        must match the cache the implementation actually keeps (within
        35% — the model also budgets for fragmentation slack)."""
        hidden, seq, g = 64, 128, 2
        measured = self._measured_cache_bytes(hidden, seq, g, flash=True)
        dims = WorkloadDims(
            hidden=hidden, n_layers=1, seq_len=seq, microbatch=g,
            n_microbatches=4, n_heads=4, vocab=11,
        )
        cm = CostModel(dims, A800, ExecConfig(flash_attention=True))
        assert cm.act_full_cache_bytes() == pytest.approx(measured, rel=0.35)

    def test_flash_removes_quadratic_term_in_practice(self):
        """Measured: materialised attention pins O(S^2) cache, flash does
        not — quadrupling S at fixed tokens must blow up only the former."""
        small_mat = self._measured_cache_bytes(32, 64, 4, flash=False)
        big_mat = self._measured_cache_bytes(32, 256, 1, flash=False)
        small_fl = self._measured_cache_bytes(32, 64, 4, flash=True)
        big_fl = self._measured_cache_bytes(32, 256, 1, flash=True)
        assert big_mat > 1.5 * small_mat  # S^2 term grows
        assert big_fl < 1.2 * small_fl  # ~same token count, ~same cache
        # the flash-vs-materialised delta is the G*nh*S^2 probability
        # matrix: quadrupling S at fixed tokens quadruples it.
        delta_small = small_mat - small_fl
        delta_big = big_mat - big_fl
        assert delta_big == pytest.approx(4 * delta_small, rel=0.3)

    def test_bgrad_coef_reasonable(self):
        """Measured B-pass bundle vs the memory model's BGRAD_COEF."""
        hidden, seq, g = 64, 128, 2
        cfg = ModelConfig(
            hidden=hidden, n_layers=1, n_heads=4, seq_len=seq, vocab=11,
        )
        chunks = init_model(cfg, seed=0)
        cos, sin = rope_tables(cfg)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(g, seq, hidden))
        y, cache = layer_fwd(chunks[0], x, cfg.n_heads, cos, sin)
        _, wcache = layer_bwd_input(chunks[0], rng.normal(size=y.shape), cache)
        measured = tensor_bytes(wcache) / 4.0  # fp16 scale
        dims = WorkloadDims(
            hidden=hidden, n_layers=1, seq_len=seq, microbatch=g,
            n_microbatches=4, n_heads=4, vocab=11,
        )
        cm = CostModel(dims, A800)
        assert cm.bgrad_cache_bytes() == pytest.approx(measured, rel=0.5)
