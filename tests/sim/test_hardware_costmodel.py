"""Hardware catalogue and cost model."""

import pytest

from repro.sim import A800, ETHERNET_10G, NVLINK, PCIE, WorkloadDims
from repro.sim.costmodel import CostModel, ExecConfig
from repro.sim.hardware import Link, nvlink_cluster, pcie_ethernet_cluster


class TestLinks:
    def test_link_time(self):
        link = Link("x", bandwidth=1e9, latency=1e-5)
        assert link.time(1e9) == pytest.approx(1.0 + 1e-5)

    def test_catalogue_ordering(self):
        assert NVLINK.bandwidth > PCIE.bandwidth > ETHERNET_10G.bandwidth
        assert ETHERNET_10G.latency > NVLINK.latency

    def test_a800_specs(self):
        assert A800.flops == 312e12
        assert A800.memory == 80e9


class TestCluster:
    def test_node_assignment(self):
        c = pcie_ethernet_cluster(8, gpus_per_node=4)
        assert c.node_of(0) == 0 and c.node_of(3) == 0
        assert c.node_of(4) == 1 and c.node_of(7) == 1

    def test_link_selection(self):
        c = pcie_ethernet_cluster(8, gpus_per_node=4)
        assert c.link(0, 1) is PCIE
        assert c.link(3, 4) is ETHERNET_10G
        assert c.link(7, 0) is ETHERNET_10G  # ring wrap crosses nodes

    def test_crossing_hops(self):
        assert pcie_ethernet_cluster(8, gpus_per_node=4).crossing_hops() == 2
        assert pcie_ethernet_cluster(16, gpus_per_node=4).crossing_hops() == 4
        assert nvlink_cluster(8, gpus_per_node=8).crossing_hops() == 0

    def test_single_node_ring_is_intra(self):
        c = nvlink_cluster(8, gpus_per_node=8)
        assert all(l is NVLINK for l in c.ring_links())

    def test_slowest_ring_link(self):
        c = pcie_ethernet_cluster(8, gpus_per_node=4)
        assert c.slowest_ring_link() is ETHERNET_10G

    def test_validation(self):
        with pytest.raises(ValueError):
            nvlink_cluster(12, gpus_per_node=8)
        c = nvlink_cluster(8)
        with pytest.raises(ValueError):
            c.link(0, 0)
        with pytest.raises(ValueError):
            c.node_of(99)


DIMS = WorkloadDims(
    hidden=1024, n_layers=32, seq_len=4096, microbatch=16, n_microbatches=64
)


class TestWorkloadDims:
    def test_layer_params_near_12h2(self):
        assert DIMS.layer_params == pytest.approx(12 * 1024**2, rel=0.01)

    def test_model_params_384m(self):
        """Paper: H=1024, L=32 is the "384M" model — exactly 384 Mi of
        body parameters (12 H^2 L = 2^20 * 384), embeddings excluded."""
        body = DIMS.layer_params * DIMS.n_layers
        assert body / 2**20 == pytest.approx(384, rel=0.01)

    def test_61b_model(self):
        d = DIMS.with_(hidden=4096)
        body = d.layer_params * d.n_layers
        assert body / 2**30 == pytest.approx(6.0, rel=0.02)  # the "6.1B"

    def test_tokens(self):
        assert DIMS.tokens_per_microbatch == 16 * 4096
        assert DIMS.tokens_per_iteration == 64 * 16 * 4096


class TestCostModel:
    def test_efficiency_bounds(self):
        cm = CostModel(DIMS, A800)
        assert 0.0 < cm.efficiency() < 1.0

    def test_efficiency_grows_with_width_and_tokens(self):
        small = CostModel(DIMS.with_(hidden=512), A800).efficiency()
        big = CostModel(DIMS.with_(hidden=4096), A800).efficiency()
        assert big > small
        tiny_g = CostModel(DIMS.with_(microbatch=1, seq_len=256), A800).efficiency()
        assert tiny_g < CostModel(DIMS, A800).efficiency()

    def test_backward_twice_forward(self):
        cm = CostModel(DIMS, A800, ExecConfig(recompute=False))
        assert cm.t_bwd_layer() == pytest.approx(2 * cm.t_fwd_layer())

    def test_recompute_adds_one_forward(self):
        base = CostModel(DIMS, A800, ExecConfig(recompute=False))
        rec = CostModel(DIMS, A800, ExecConfig(recompute=True))
        assert rec.t_bwd_layer() == pytest.approx(
            base.t_bwd_layer() + base.t_fwd_layer()
        )

    def test_b_plus_w_equals_plain_backward(self):
        cm = CostModel(DIMS, A800, ExecConfig(recompute=False))
        assert cm.t_b_layer() + cm.t_w_layer() == pytest.approx(cm.t_bwd_layer())

    def test_act_message_scales_with_g_s_h(self):
        cm = CostModel(DIMS, A800)
        assert cm.act_message_bytes() == 16 * 4096 * 1024 * 2
        cm2 = CostModel(DIMS.with_(seq_len=8192), A800)
        assert cm2.act_message_bytes() == 2 * cm.act_message_bytes()

    def test_weight_chunk_independent_of_g_s(self):
        cm = CostModel(DIMS, A800)
        cm2 = CostModel(DIMS.with_(seq_len=16384, microbatch=1), A800)
        assert cm.weight_chunk_bytes() == cm2.weight_chunk_bytes()

    def test_weight_chunk_is_12h2_fp16(self):
        cm = CostModel(DIMS, A800)
        assert cm.weight_chunk_bytes() == pytest.approx(12 * 1024**2 * 2, rel=0.01)

    def test_flash_attention_removes_s2_term(self):
        on = CostModel(DIMS, A800, ExecConfig(flash_attention=True))
        off = CostModel(DIMS, A800, ExecConfig(flash_attention=False))
        assert off.act_full_cache_bytes() > on.act_full_cache_bytes()
        extra = off.act_full_cache_bytes() - on.act_full_cache_bytes()
        assert extra == pytest.approx(2 * 16 * 32 * 4096**2 * 2)

    def test_mb_comparable_to_ma(self):
        """The paper's M_B ~= M_A assumption."""
        cm = CostModel(DIMS, A800)
        ratio = cm.bgrad_cache_bytes() / cm.act_full_cache_bytes()
        assert 0.5 < ratio < 1.5

    def test_paper_mfu_calibration(self):
        """H=1024 workloads land near the ~22% MFU the paper's WeiPipe
        throughput implies; H=4096 near ~40%."""
        assert CostModel(DIMS, A800).efficiency() == pytest.approx(0.22, abs=0.03)
        wide = DIMS.with_(hidden=4096, microbatch=4, seq_len=16384)
        assert CostModel(wide, A800).efficiency() == pytest.approx(0.40, abs=0.04)
