"""Discrete-event engine semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import TaskGraph, simulate


def test_serial_chain():
    g = TaskGraph()
    g.add("a", ("compute", 0), 1.0)
    g.add("b", ("compute", 0), 2.0, deps=("a",))
    g.add("c", ("compute", 0), 3.0, deps=("b",))
    r = simulate(g)
    assert r.makespan == 6.0
    assert r.start["b"] == 1.0 and r.finish["c"] == 6.0


def test_parallel_resources():
    g = TaskGraph()
    g.add("a", ("compute", 0), 5.0)
    g.add("b", ("compute", 1), 3.0)
    r = simulate(g)
    assert r.makespan == 5.0
    assert r.start["b"] == 0.0


def test_resource_serialises():
    g = TaskGraph()
    g.add("a", ("compute", 0), 5.0)
    g.add("b", ("compute", 0), 3.0)
    r = simulate(g)
    assert r.makespan == 8.0


def test_priority_order_on_shared_resource():
    """Two ready tasks: the earlier-submitted one runs first."""
    g = TaskGraph()
    g.add("first", ("r",), 1.0)
    g.add("second", ("r",), 1.0)
    r = simulate(g)
    assert r.start["first"] == 0.0
    assert r.start["second"] == 1.0


def test_late_high_priority_waits_its_turn():
    """A task whose deps complete while the resource is busy starts when
    the resource frees, not before."""
    g = TaskGraph()
    g.add("blocker", ("r",), 10.0)
    g.add("gate", ("other",), 1.0)
    g.add("late", ("r",), 1.0, deps=("gate",))
    r = simulate(g)
    assert r.start["late"] == 10.0


def test_dep_and_resource_both_bind():
    g = TaskGraph()
    g.add("a", ("x",), 4.0)
    g.add("b", ("y",), 1.0)
    g.add("c", ("y",), 1.0, deps=("a",))  # ready at 4, resource free at 1
    r = simulate(g)
    assert r.start["c"] == 4.0


def test_comm_overlaps_compute():
    """Link and compute are distinct resources: full overlap."""
    g = TaskGraph()
    g.add("compute", ("compute", 0), 10.0)
    g.add("comm", ("link", 0, 1), 10.0)
    r = simulate(g)
    assert r.makespan == 10.0


def test_zero_duration_tasks():
    g = TaskGraph()
    g.add("a", ("r",), 0.0)
    g.add("b", ("r",), 0.0, deps=("a",))
    r = simulate(g)
    assert r.makespan == 0.0


def test_cycle_detected():
    g = TaskGraph()
    g.add("a", ("r",), 1.0, deps=("b",))
    g.add("b", ("r",), 1.0, deps=("a",))
    with pytest.raises(ValueError, match="cycle"):
        simulate(g)


def test_unknown_dep_rejected():
    g = TaskGraph()
    g.add("a", ("r",), 1.0, deps=("ghost",))
    with pytest.raises(ValueError, match="unknown"):
        simulate(g)


def test_duplicate_id_rejected():
    g = TaskGraph()
    g.add("a", ("r",), 1.0)
    with pytest.raises(ValueError, match="duplicate"):
        g.add("a", ("r",), 2.0)


def test_negative_duration_rejected():
    g = TaskGraph()
    with pytest.raises(ValueError):
        g.add("a", ("r",), -1.0)


def test_busy_accounting():
    g = TaskGraph()
    g.add("a", ("r",), 2.0)
    g.add("b", ("r",), 3.0)
    r = simulate(g)
    assert r.busy[("r",)] == 5.0
    assert r.resource_utilisation(("r",)) == 1.0


def test_tasks_with_filter():
    g = TaskGraph()
    g.add("a", ("r",), 1.0, kind="F", worker=0)
    g.add("b", ("r",), 1.0, kind="B", worker=0)
    r = simulate(g)
    assert len(r.tasks_with(kind="F")) == 1


@given(
    durations=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=12),
    n_resources=st.integers(1, 3),
)
@settings(max_examples=60, deadline=None)
def test_property_chain_makespan(durations, n_resources):
    """A linear dependency chain's makespan is the sum of durations,
    regardless of resource placement."""
    g = TaskGraph()
    prev = None
    for i, d in enumerate(durations):
        g.add(i, ("r", i % n_resources), d, deps=(prev,) if prev is not None else ())
        prev = i
    r = simulate(g)
    assert r.makespan == pytest.approx(sum(durations))


@given(st.lists(st.floats(0.1, 5.0), min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_property_independent_tasks_single_resource(durations):
    """Independent tasks on one serial resource: makespan = sum, and no
    two tasks overlap."""
    g = TaskGraph()
    for i, d in enumerate(durations):
        g.add(i, ("r",), d)
    r = simulate(g)
    assert r.makespan == pytest.approx(sum(durations))
    spans = sorted((r.start[i], r.finish[i]) for i in range(len(durations)))
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert s2 >= e1 - 1e-12
