"""OOM-boundary exactness of the planner's memory pruning.

The planner's pruning predicate (:func:`repro.sim.fits_memory` and the
``peak > budget`` rejection in ``repro.plan.search``) must be *exact* at
the budget edge: a budget equal to the analytic peak survives, one byte
under is rejected, one byte over survives — and pruning never discards
a config the model says fits.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import fits_memory, peak_memory
from repro.sim.costmodel import ExecConfig, WorkloadDims
from repro.sim.hardware import nvlink_cluster, pcie_ethernet_cluster
from repro.sim.memory import MEMORY_MODELS

STRATEGIES = sorted(MEMORY_MODELS)


def _dims(h, s, g, n_mb):
    return WorkloadDims(hidden=h, n_layers=8, seq_len=s, microbatch=g,
                        n_microbatches=n_mb, n_heads=4, vocab=1024)


dims_st = st.builds(
    _dims,
    st.sampled_from([256, 512, 1024]),
    st.sampled_from([512, 1024, 4096]),
    st.integers(min_value=1, max_value=4),
    st.sampled_from([8, 16, 32]),
)
strategy_st = st.sampled_from(STRATEGIES)
cluster_st = st.sampled_from(
    [nvlink_cluster(8, gpus_per_node=4), pcie_ethernet_cluster(8, gpus_per_node=4)]
)


class TestBudgetEdgeExactness:
    """peak == budget survives; one byte over the peak's budget rejects."""

    @given(strategy_st, dims_st, cluster_st)
    @settings(max_examples=60, deadline=None)
    def test_exact_peak_is_a_fit(self, strategy, dims, cluster):
        peak = peak_memory(strategy, dims, cluster)
        assert fits_memory(strategy, dims, cluster, budget_bytes=peak)

    @given(strategy_st, dims_st, cluster_st)
    @settings(max_examples=60, deadline=None)
    def test_one_byte_under_rejects(self, strategy, dims, cluster):
        peak = peak_memory(strategy, dims, cluster)
        assert not fits_memory(strategy, dims, cluster, budget_bytes=peak - 1)

    @given(strategy_st, dims_st, cluster_st)
    @settings(max_examples=60, deadline=None)
    def test_one_byte_over_survives(self, strategy, dims, cluster):
        peak = peak_memory(strategy, dims, cluster)
        assert fits_memory(strategy, dims, cluster, budget_bytes=peak + 1)

    @given(strategy_st, dims_st, cluster_st, st.floats(0.25, 4.0))
    @settings(max_examples=60, deadline=None)
    def test_verdict_matches_model(self, strategy, dims, cluster, scale):
        """fits_memory agrees with the model at any budget: it never
        discards a config the model says fits, and never admits one the
        model says does not."""
        peak = peak_memory(strategy, dims, cluster)
        budget = peak * scale
        assert fits_memory(strategy, dims, cluster, budget_bytes=budget) == (
            peak <= budget
        )

    def test_default_budget_is_gpu_hbm(self):
        cluster = nvlink_cluster(8, gpus_per_node=4)
        dims = _dims(256, 512, 1, 8)
        assert fits_memory("1f1b", dims, cluster) == (
            peak_memory("1f1b", dims, cluster) <= cluster.gpu.memory
        )


class TestSearchPruningMatchesModel:
    """The search-level rejection is the same predicate: every feasible
    candidate's peak is <= budget, every memory reject's is > budget,
    and nothing the model admits is discarded."""

    def _result(self, budget_bytes):
        from repro.plan import PlanSpec, search
        from repro.plan.spec import ClusterSpec, ModelSpec, SearchSpace

        spec = PlanSpec(
            model=ModelSpec(hidden=512, n_layers=8, seq_len=2048, n_heads=4,
                            vocab=1024, global_batch_sequences=64),
            cluster=ClusterSpec(preset="single-node", world=4,
                                memory_budget_bytes=budget_bytes),
            space=SearchSpace(microbatch_sizes=(1, 2), overlap=(True,),
                              groupings=("flat",)),
        )
        return search(spec)

    @pytest.mark.parametrize("budget_gib", [0.25, 1.0, 4.0, 64.0])
    def test_partition_is_exact(self, budget_gib):
        budget = budget_gib * 2**30
        result = self._result(budget)
        assert result.budget_bytes == budget
        for ev in result.feasible:
            assert ev.fits and ev.peak_memory_bytes <= budget
        for ev in result.memory_rejected:
            assert not ev.fits and ev.peak_memory_bytes > budget

    def test_budget_at_exact_peak_keeps_the_config(self):
        """Pin the budget to one candidate's exact analytic peak: that
        candidate must survive, not fall to a strict comparison."""
        wide_open = self._result(2.0**40)
        assert wide_open.feasible
        probe = min(wide_open.feasible, key=lambda e: e.peak_memory_bytes)
        result = self._result(probe.peak_memory_bytes)
        kept = [
            e.candidate for e in result.feasible
        ]
        assert probe.candidate in kept
        result_under = self._result(probe.peak_memory_bytes - 1)
        assert probe.candidate not in [e.candidate for e in result_under.feasible]

    def test_raising_budget_never_loses_a_config(self):
        small = self._result(1.0 * 2**30)
        large = self._result(4.0 * 2**30)
        kept_small = {repr(e.candidate.as_dict()) for e in small.feasible}
        kept_large = {repr(e.candidate.as_dict()) for e in large.feasible}
        assert kept_small <= kept_large
