"""Cross-check: DES makespans vs closed-form bubble formulas (§4.4).

With communication made free (infinite bandwidth, zero latency), the
simulated bubble ratios must match the pencil-and-paper formulas — a
joint property test of the schedule builders and the engine.
"""

import pytest

from repro.sim import WorkloadDims, evaluate
from repro.sim.analytic import (
    activation_pp_bandwidth,
    bubble_ratio_1f1b,
    bubble_ratio_gpipe,
    bubble_ratio_weipipe_interleave,
    bubble_ratio_weipipe_naive,
    weipipe_turn_bandwidth,
)
from repro.sim.costmodel import CostModel, ExecConfig
from repro.sim.hardware import A800, Cluster, Link
from repro.sim.schedules import build_pipeline, build_weipipe

FREE = Link(name="free", bandwidth=1e18, latency=0.0)


def free_cluster(world: int) -> Cluster:
    return Cluster(gpu=A800, nodes=1, gpus_per_node=world, intra=FREE, inter=FREE)


def dims(world=4, rounds=4):
    return WorkloadDims(
        hidden=1024, n_layers=world * 2, seq_len=4096, microbatch=8,
        n_microbatches=world * rounds,
    )


# P >= 4: the closed forms assume the fill/drain rounds are paced by
# steady-state neighbours, which needs a few workers in steady state.
@pytest.mark.parametrize("world,rounds", [(4, 2), (4, 4), (4, 8), (8, 2)])
class TestBubbleCrossCheck:
    def _times(self, d, cluster, recompute=True):
        cm = CostModel(d, cluster.gpu, ExecConfig(recompute=recompute))
        lps = d.n_layers // cluster.world_size
        return lps * cm.t_fwd_layer(), lps * cm.t_bwd_layer()

    def test_gpipe(self, world, rounds):
        d, cluster = dims(world, rounds), free_cluster(world)
        rep = evaluate(build_pipeline("gpipe", d, cluster))
        t_f, t_b = self._times(d, cluster)
        expected = bubble_ratio_gpipe(world, d.n_microbatches, t_f, t_b)
        assert rep.bubble_ratio == pytest.approx(expected, rel=0.05)

    def test_1f1b(self, world, rounds):
        d, cluster = dims(world, rounds), free_cluster(world)
        rep = evaluate(build_pipeline("1f1b", d, cluster))
        t_f, t_b = self._times(d, cluster)
        expected = bubble_ratio_1f1b(world, d.n_microbatches, t_f, t_b)
        assert rep.bubble_ratio == pytest.approx(expected, rel=0.05)

    def test_weipipe_interleave(self, world, rounds):
        d, cluster = dims(world, rounds), free_cluster(world)
        rep = evaluate(build_weipipe("interleave", d, cluster))
        t_f, t_b = self._times(d, cluster)
        expected = bubble_ratio_weipipe_interleave(
            world, d.n_microbatches, t_f, t_b
        )
        # the closed form is an upper bound: it assumes every fill/drain
        # turn is stretched to steady pace, but the ring's first and
        # last few turns run unstretched.
        assert rep.bubble_ratio <= expected + 0.01
        assert rep.bubble_ratio >= 0.7 * expected

    def test_weipipe_naive(self, world, rounds):
        d, cluster = dims(world, rounds), free_cluster(world)
        rep = evaluate(build_weipipe("naive", d, cluster))
        t_f, t_b = self._times(d, cluster)
        expected = bubble_ratio_weipipe_naive(world, d.n_microbatches, t_f, t_b)
        assert rep.bubble_ratio == pytest.approx(expected, abs=0.06)


class TestAnalyticRelations:
    def test_1f1b_equals_interleave_paper_claim(self):
        """Paper: 1F1B and WeiPipe-Interleave have similar bubble ratios."""
        t_f, t_b = 1.0, 3.0
        for world, n in [(4, 16), (8, 32), (16, 128)]:
            a = bubble_ratio_1f1b(world, n, t_f, t_b)
            b = bubble_ratio_weipipe_interleave(world, n, t_f, t_b)
            assert a == pytest.approx(b, rel=0.35)

    def test_naive_worst(self):
        t_f, t_b = 1.0, 3.0
        naive = bubble_ratio_weipipe_naive(4, 16, t_f, t_b)
        inter = bubble_ratio_weipipe_interleave(4, 16, t_f, t_b)
        assert naive > inter

    def test_bubbles_vanish_with_microbatches(self):
        t_f, t_b = 1.0, 3.0
        prev = 1.0
        for n in (8, 32, 128, 512):
            b = bubble_ratio_1f1b(8, n, t_f, t_b)
            assert b < prev
            prev = b
        assert prev < 0.05

    def test_weipipe_bandwidth_independent_of_seq(self):
        """36 H^2 per turn: the turn gets longer with S but bytes stay
        flat, so required bandwidth *falls* with context length."""
        cluster = free_cluster(4)
        d1 = dims(4, 4)
        d2 = d1.with_(seq_len=16384)
        bw1 = weipipe_turn_bandwidth(d1, cluster)
        bw2 = weipipe_turn_bandwidth(d2, cluster)
        assert bw2 < bw1

    def test_activation_bandwidth_grows_with_seq_via_attention_only(self):
        """Activation-passing: bytes and GEMM time both scale with S, so
        required bandwidth is ~flat in S (it scales with G instead) —
        until the S^2 attention term lengthens the period."""
        cluster = free_cluster(4)
        d1 = dims(4, 4).with_(seq_len=16384)  # deep in long-context regime
        bw_act = activation_pp_bandwidth(d1, cluster)
        bw_wp = weipipe_turn_bandwidth(d1, cluster)
        # at G*S >> 18H the weight ring needs less bandwidth
        assert bw_wp < bw_act

    def test_crossover_at_small_context(self):
        """Short context, small G: activation-passing is cheaper."""
        cluster = free_cluster(4)
        d = WorkloadDims(
            hidden=4096, n_layers=8, seq_len=128, microbatch=1,
            n_microbatches=16,
        )
        assert activation_pp_bandwidth(d, cluster) < weipipe_turn_bandwidth(d, cluster)
