"""Analytic memory model: Table 2's memory column and OOM pattern."""

import pytest

from repro.experiments.configs import exec_for, make_dims, table2_cluster
from repro.sim import WorkloadDims, peak_memory, peak_memory_per_worker
from repro.sim.costmodel import ExecConfig
from repro.sim.hardware import nvlink_cluster

CLUSTER = table2_cluster()
GB = 2**30


def cell_memory(strategy, h, s, g):
    dims = make_dims(h, s, g, CLUSTER.world_size, 32, strategy)
    return peak_memory(strategy, dims, CLUSTER, exec_for(strategy)) / GB


class TestTable2MemoryColumn:
    """Within ~35% of every measured non-OOM GB in Table 2, and exact
    reproduction of the OOM pattern."""

    PAPER = {
        # (H, S, G): strategy -> GB, None = OOM (paper Table 2)
        (1024, 4096, 16): {"1f1b": 13.0, "zb1": 20.4, "zb2": 39.3, "fsdp": 8.6, "weipipe-interleave": 9.4},
        (1024, 8192, 8): {"1f1b": 9.9, "zb1": 10.7, "zb2": 20.5, "fsdp": 8.6, "weipipe-interleave": 9.4},
        (1024, 16384, 4): {"1f1b": 9.1, "zb1": 21.6, "zb2": 42.2, "fsdp": 8.6, "weipipe-interleave": 9.4},
        (2048, 4096, 16): {"1f1b": 18.7, "zb1": 44.3, "zb2": None, "fsdp": 17.9, "weipipe-interleave": 19.9},
        (4096, 4096, 16): {"1f1b": 40.5, "zb1": None, "zb2": None, "fsdp": 39.0, "weipipe-interleave": 44.5},
        (4096, 16384, 4): {"1f1b": 45.1, "zb1": None, "zb2": None, "fsdp": 39.0, "weipipe-interleave": 44.5},
    }

    @pytest.mark.parametrize("row", sorted(PAPER))
    def test_non_oom_cells_close(self, row):
        for strat, paper_gb in self.PAPER[row].items():
            mine = cell_memory(strat, *row)
            if paper_gb is None:
                assert mine > 80, f"{strat} {row}: expected OOM, got {mine:.1f} GB"
            else:
                assert mine == pytest.approx(paper_gb, rel=0.40), f"{strat} {row}"

    def test_zb2_zigzag(self):
        """ZB memory zigzags with the forced G (4 at S=4096, 1 above) —
        the paper's surprising pattern."""
        a = cell_memory("zb1", 1024, 4096, 16)
        b = cell_memory("zb1", 1024, 8192, 8)
        c = cell_memory("zb1", 1024, 16384, 4)
        assert a > b < c


class TestOrderings:
    DIMS = WorkloadDims(
        hidden=2048, n_layers=32, seq_len=8192, microbatch=8, n_microbatches=128
    )

    def test_zb2_above_zb1_above_1f1b(self):
        norec = ExecConfig(recompute=False)
        rec = ExecConfig(recompute=True)
        z1 = peak_memory("zb1", self.DIMS, CLUSTER, norec)
        z2 = peak_memory("zb2", self.DIMS, CLUSTER, norec)
        f = peak_memory("1f1b", self.DIMS, CLUSTER, rec)
        assert f < z1 < z2

    def test_gpipe_above_1f1b(self):
        cfg = ExecConfig(recompute=True)
        assert peak_memory("gpipe", self.DIMS, CLUSTER, cfg) > peak_memory(
            "1f1b", self.DIMS, CLUSTER, cfg
        )

    def test_recompute_reduces_pipeline_memory(self):
        on = peak_memory("1f1b", self.DIMS, CLUSTER, ExecConfig(recompute=True))
        off = peak_memory("1f1b", self.DIMS, CLUSTER, ExecConfig(recompute=False))
        assert on < off

    def test_flash_attention_reduces_zb_memory(self):
        base = ExecConfig(recompute=False, flash_attention=True)
        noflash = ExecConfig(recompute=False, flash_attention=False)
        assert peak_memory("zb1", self.DIMS, CLUSTER, base) < peak_memory(
            "zb1", self.DIMS, CLUSTER, noflash
        )

    def test_dp_stores_whole_model(self):
        """DP holds all model states; FSDP holds 1/P of them (plus the
        same activations) — the gap is (1 - 1/P) of the 16 B/param."""
        cfg = ExecConfig(recompute=True)
        dp = peak_memory("dp", self.DIMS, CLUSTER, cfg)
        fsdp = peak_memory("fsdp", self.DIMS, CLUSTER, cfg)
        assert dp > 2 * fsdp
        p = CLUSTER.world_size
        states_gap = (1 - 1 / p) * self.DIMS.model_params * 16
        assert dp - fsdp == pytest.approx(states_gap, rel=0.15)

    def test_pipeline_memory_decreases_along_stages(self):
        cfg = ExecConfig(recompute=True)
        per = peak_memory_per_worker("1f1b", self.DIMS, CLUSTER, cfg)
        # rank 0 holds the deepest warmup
        assert per[0] == max(per[:-1])
        assert per[0] > per[CLUSTER.world_size // 2]

    def test_weipipe_memory_flat_across_workers(self):
        cfg = ExecConfig(recompute=True)
        per = peak_memory_per_worker("weipipe-interleave", self.DIMS, CLUSTER, cfg)
        assert max(per) == pytest.approx(min(per))

    def test_weipipe_independent_of_world_in_activations(self):
        """WeiPipe's activation liveness is (P+1)/P models' worth: nearly
        constant in P (the paper's 'balanced memory' claim)."""
        cfg = ExecConfig(recompute=True)
        m8 = peak_memory("weipipe-interleave", self.DIMS, nvlink_cluster(8), cfg)
        m16 = peak_memory("weipipe-interleave", self.DIMS, nvlink_cluster(16), cfg)
        # smaller P means more layers per slot resident, so m8 >= m16,
        # but the bulk (activations) is flat: within 40%
        assert m16 < m8 < 1.4 * m16

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            peak_memory("unknown", self.DIMS, CLUSTER)

    def test_wzb_between_and_above(self):
        norec = ExecConfig(recompute=False)
        w1 = peak_memory("weipipe-wzb1", self.DIMS, CLUSTER, norec)
        w2 = peak_memory("weipipe-wzb2", self.DIMS, CLUSTER, norec)
        wi = peak_memory("weipipe-interleave", self.DIMS, CLUSTER, ExecConfig(recompute=True))
        assert wi < w1 < w2
