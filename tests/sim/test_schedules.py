"""Schedule builders: structural sanity and comparative timing shapes."""

import pytest

from repro.sim import WorkloadDims, evaluate, nvlink_cluster, pcie_ethernet_cluster, simulate
from repro.sim.costmodel import ExecConfig
from repro.sim.schedules import (
    build_tp,
    build_dp,
    build_fsdp,
    build_pipeline,
    build_weipipe,
    build_weipipe_zb,
    ring_collective_time,
)

DIMS = WorkloadDims(
    hidden=1024, n_layers=8, seq_len=4096, microbatch=8, n_microbatches=16
)
CLUSTER = nvlink_cluster(4, gpus_per_node=4)
NOREC = ExecConfig(recompute=False)


def _report(builder, *args, **kw):
    return evaluate(builder(*args, **kw))


class TestBuildersSimulate:
    @pytest.mark.parametrize("name", ["gpipe", "1f1b"])
    def test_pipeline_builds(self, name):
        rep = _report(build_pipeline, name, DIMS, CLUSTER)
        assert rep.makespan > 0 and 0 <= rep.bubble_ratio < 1

    @pytest.mark.parametrize("name", ["zb1", "zb2"])
    def test_zb_builds(self, name):
        rep = _report(build_pipeline, name, DIMS, CLUSTER, NOREC)
        assert rep.makespan > 0

    @pytest.mark.parametrize("mode", ["naive", "interleave"])
    def test_weipipe_builds(self, mode):
        rep = _report(build_weipipe, mode, DIMS, CLUSTER)
        assert rep.makespan > 0

    @pytest.mark.parametrize("variant", ["wzb1", "wzb2"])
    def test_wzb_builds(self, variant):
        rep = _report(build_weipipe_zb, variant, DIMS, CLUSTER, NOREC)
        assert rep.makespan > 0

    def test_fsdp_and_dp_build(self):
        assert _report(build_fsdp, DIMS, CLUSTER).makespan > 0
        assert _report(build_dp, DIMS, CLUSTER).makespan > 0


class TestValidation:
    def test_layers_divisibility(self):
        bad = DIMS.with_(n_layers=6)
        with pytest.raises(ValueError):
            build_pipeline("1f1b", bad, CLUSTER)
        with pytest.raises(ValueError):
            build_weipipe("interleave", bad, CLUSTER)

    def test_zb_rejects_recompute(self):
        with pytest.raises(ValueError, match="recomput"):
            build_pipeline("zb1", DIMS, CLUSTER, ExecConfig(recompute=True))
        with pytest.raises(ValueError, match="recomput"):
            build_weipipe_zb("wzb1", DIMS, CLUSTER, ExecConfig(recompute=True))

    def test_unknown_names(self):
        with pytest.raises(ValueError):
            build_pipeline("2f2b", DIMS, CLUSTER)
        with pytest.raises(ValueError):
            build_weipipe("turbo", DIMS, CLUSTER)
        with pytest.raises(ValueError):
            build_weipipe_zb("wzb3", DIMS, CLUSTER, NOREC)


class TestComparativeShapes:
    """Orderings the paper derives analytically must hold in the DES."""

    def test_interleave_beats_naive(self):
        naive = _report(build_weipipe, "naive", DIMS, CLUSTER)
        inter = _report(build_weipipe, "interleave", DIMS, CLUSTER)
        assert inter.makespan < naive.makespan
        assert inter.bubble_ratio < naive.bubble_ratio

    def test_1f1b_and_gpipe_same_bubble(self):
        """Same fill/drain ramp; 1F1B wins on memory, not time."""
        f = _report(build_pipeline, "1f1b", DIMS, CLUSTER)
        g = _report(build_pipeline, "gpipe", DIMS, CLUSTER)
        assert f.bubble_ratio == pytest.approx(g.bubble_ratio, rel=0.05)

    def test_zb1_lower_bubble_than_1f1b(self):
        f = _report(build_pipeline, "1f1b", DIMS, CLUSTER, NOREC)
        z = _report(build_pipeline, "zb1", DIMS, CLUSTER, NOREC)
        assert z.bubble_ratio < f.bubble_ratio

    def test_wzb2_nearly_zero_bubble(self):
        rep = _report(build_weipipe_zb, "wzb2", DIMS, CLUSTER, NOREC)
        assert rep.bubble_ratio < 0.08

    def test_wzb1_bubble_below_interleave(self):
        inter = _report(build_weipipe, "interleave", DIMS, CLUSTER, NOREC)
        w1 = _report(build_weipipe_zb, "wzb1", DIMS, CLUSTER, NOREC)
        assert w1.bubble_ratio < inter.bubble_ratio

    def test_wzb2_more_comm_per_compute_than_wzb1(self):
        w1 = _report(build_weipipe_zb, "wzb1", DIMS, CLUSTER, NOREC)
        w2 = _report(build_weipipe_zb, "wzb2", DIMS, CLUSTER, NOREC)
        assert w2.comm_bytes_total > w1.comm_bytes_total

    def test_more_microbatches_shrink_bubble(self):
        small = _report(build_weipipe, "interleave", DIMS, CLUSTER)
        big = _report(
            build_weipipe, "interleave", DIMS.with_(n_microbatches=64), CLUSTER
        )
        assert big.bubble_ratio < small.bubble_ratio

    def test_weipipe_comm_independent_of_seq(self):
        a = _report(build_weipipe, "interleave", DIMS, CLUSTER)
        b = _report(
            build_weipipe, "interleave", DIMS.with_(seq_len=16384), CLUSTER
        )
        assert b.comm_bytes_total == pytest.approx(a.comm_bytes_total)

    def test_pipeline_comm_scales_with_seq(self):
        a = _report(build_pipeline, "1f1b", DIMS, CLUSTER)
        b = _report(build_pipeline, "1f1b", DIMS.with_(seq_len=16384), CLUSTER)
        assert b.comm_bytes_total == pytest.approx(4 * a.comm_bytes_total, rel=0.01)

    def test_overlap_helps_pipelines(self):
        slow_cluster = pcie_ethernet_cluster(4, gpus_per_node=2)
        on = _report(build_pipeline, "1f1b", DIMS, slow_cluster, ExecConfig(overlap=True))
        off = _report(build_pipeline, "1f1b", DIMS, slow_cluster, ExecConfig(overlap=False))
        assert on.makespan < off.makespan

    def test_ethernet_slows_weipipe_less_than_1f1b(self):
        """The headline: crossing to Ethernet costs activation-passing
        far more than weight-passing at long context."""
        fast = nvlink_cluster(4, gpus_per_node=4)
        slow = pcie_ethernet_cluster(4, gpus_per_node=2)
        dims = DIMS.with_(seq_len=16384, microbatch=8)
        wp_pen = (
            _report(build_weipipe, "interleave", dims, slow).makespan
            / _report(build_weipipe, "interleave", dims, fast).makespan
        )
        pp_pen = (
            _report(build_pipeline, "1f1b", dims, slow, ExecConfig(overlap=False)).makespan
            / _report(build_pipeline, "1f1b", dims, fast, ExecConfig(overlap=False)).makespan
        )
        assert wp_pen < pp_pen


class TestRingCollective:
    def test_zero_for_single_rank(self):
        assert ring_collective_time(nvlink_cluster(8, 8).__class__(
            gpu=CLUSTER.gpu, nodes=1, gpus_per_node=1,
            intra=CLUSTER.intra, inter=CLUSTER.inter), 1e9) == 0.0

    def test_scales_with_bytes(self):
        t1 = ring_collective_time(CLUSTER, 1e8)
        t2 = ring_collective_time(CLUSTER, 2e8)
        assert t2 > t1
        assert t2 < 2.5 * t1

    def test_paced_by_slowest_link(self):
        fast = nvlink_cluster(8, gpus_per_node=8)
        slow = pcie_ethernet_cluster(8, gpus_per_node=4)
        assert ring_collective_time(slow, 1e8) > ring_collective_time(fast, 1e8)


class TestTensorParallelSim:
    def test_builds_and_simulates(self):
        rep = _report(build_tp, DIMS, CLUSTER)
        assert rep.makespan > 0

    def test_heads_divisibility(self):
        with pytest.raises(ValueError):
            build_tp(DIMS.with_(n_heads=6), CLUSTER)

    def test_tp_collapses_across_nodes(self):
        """Cross-node TP is communication-bound by orders of magnitude —
        the reason real systems keep TP inside a server."""
        single = nvlink_cluster(4, gpus_per_node=4)
        multi = pcie_ethernet_cluster(4, gpus_per_node=2)
        fast = _report(build_tp, DIMS, single)
        slow = _report(build_tp, DIMS, multi)
        assert slow.makespan > 5 * fast.makespan

    def test_tp_comm_scales_with_tokens_not_params(self):
        a = _report(build_tp, DIMS, CLUSTER)
        b = _report(build_tp, DIMS.with_(seq_len=8192), CLUSTER)
        assert b.comm_bytes_total == pytest.approx(2 * a.comm_bytes_total, rel=0.01)
