"""Timeline renderer and metrics layer."""

import pytest

from repro.sim import (
    SimReport,
    WorkloadDims,
    evaluate,
    nvlink_cluster,
    render_timeline,
    simulate,
)
from repro.sim.engine import TaskGraph
from repro.sim.schedules import build_pipeline, build_weipipe

DIMS = WorkloadDims(
    hidden=1024, n_layers=4, seq_len=4096, microbatch=4, n_microbatches=8
)
CLUSTER = nvlink_cluster(4, gpus_per_node=4)


class TestTimeline:
    def test_renders_all_workers(self):
        out = render_timeline(build_weipipe("interleave", DIMS, CLUSTER), width=50)
        for w in range(4):
            assert f"worker  {w}" in out

    def test_width_respected(self):
        out = render_timeline(build_pipeline("1f1b", DIMS, CLUSTER), width=37)
        row = next(l for l in out.splitlines() if l.startswith("worker"))
        assert len(row.split("|")[1]) == 37

    def test_title_and_legend(self):
        out = render_timeline(
            build_weipipe("naive", DIMS, CLUSTER), width=30, title="XYZ"
        )
        assert out.startswith("XYZ")
        assert "legend:" in out

    def test_interleave_has_star_turns(self):
        out = render_timeline(build_weipipe("interleave", DIMS, CLUSTER), width=80)
        assert "*" in out  # combined fwd+bwd turns

    def test_pipeline_has_f_and_b(self):
        out = render_timeline(build_pipeline("gpipe", DIMS, CLUSTER), width=80)
        assert "F" in out and "B" in out

    def test_empty_graph(self):
        class Fake:
            graph = TaskGraph()
            compute_workers = [0]
            world_size = 1

        assert "empty" in render_timeline(Fake(), width=10)


class TestMetrics:
    def test_report_fields_consistent(self):
        rep = evaluate(build_pipeline("1f1b", DIMS, CLUSTER))
        assert isinstance(rep, SimReport)
        assert rep.makespan > 0
        assert rep.world_size == 4
        assert rep.peak_memory_gb == pytest.approx(rep.peak_memory_bytes / 2**30)
        assert 0 <= rep.bubble_ratio < 1
        assert rep.comm_bytes_total > 0

    def test_throughput_formula(self):
        rep = evaluate(build_pipeline("1f1b", DIMS, CLUSTER))
        expected = DIMS.tokens_per_iteration / rep.makespan / 4
        assert rep.tokens_per_second_per_gpu == pytest.approx(expected)

    def test_cell_formatting(self):
        rep = evaluate(build_pipeline("1f1b", DIMS, CLUSTER))
        assert rep.cell() == f"{rep.tokens_per_second_per_gpu:.1f}"
        rep.oom = True
        assert rep.cell() == "OOM"

    def test_memory_strategy_override(self):
        built = build_pipeline("1f1b", DIMS, CLUSTER)
        a = evaluate(built)
        b = evaluate(built, memory_strategy="gpipe")
        assert b.peak_memory_bytes > a.peak_memory_bytes  # gpipe holds N mbs

    def test_reuse_sim_result(self):
        built = build_pipeline("1f1b", DIMS, CLUSTER)
        sim = simulate(built.graph)
        a = evaluate(built, sim=sim)
        b = evaluate(built)
        assert a.makespan == b.makespan
