"""CLI smoke and behaviour tests (invoked in-process via main())."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.strategy == "weipipe-interleave"
        assert args.world == 4

    def test_table_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "5"])


class TestCommands:
    def test_strategies(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "weipipe-interleave" in out
        assert "weipipe-wzb1" in out

    def test_train_tiny(self, capsys):
        rc = main([
            "train", "--iters", "2", "--world", "2", "--hidden", "16",
            "--layers", "2", "--heads", "2", "--seq", "8", "--vocab", "17",
            "--microbatches", "4", "--strategy", "1f1b",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "iter    1" in out

    def test_train_process_backend(self, capsys):
        rc = main([
            "train", "--iters", "2", "--world", "2", "--hidden", "16",
            "--layers", "2", "--heads", "2", "--seq", "8", "--vocab", "17",
            "--microbatches", "4", "--backend", "process",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "iter    1" in out

    def test_train_process_backend_traces_and_merges_metrics(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        rc = main([
            "train", "--iters", "1", "--world", "2", "--hidden", "16",
            "--layers", "2", "--heads", "2", "--seq", "8", "--vocab",
            "17", "--microbatches", "4", "--backend", "process",
            "--trace", str(trace), "--metrics-out", str(metrics),
        ])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert validate_chrome_trace(doc) == []
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] != "M"}
        assert pids == {0, 1}
        merged = json.loads(metrics.read_text())
        names = {m["name"] for m in merged["metrics"]}
        # quiet run: the heal counters are present *and* zero.
        assert "fabric_retransmits" in names
        assert all(
            m["value"] == 0 for m in merged["metrics"]
            if m["name"] == "fabric_retransmits"
        )

    def test_train_process_backend_still_rejects_durable(self, tmp_path):
        import pytest

        with pytest.raises(SystemExit, match="backend thread"):
            main([
                "train", "--iters", "1", "--world", "2", "--hidden", "16",
                "--layers", "2", "--heads", "2", "--seq", "8", "--vocab",
                "17", "--microbatches", "4", "--backend", "process",
                "--checkpoint-every", "1",
                "--checkpoint-path", str(tmp_path / "ckpt.npz"),
            ])

    def test_train_markov_with_clip(self, capsys):
        rc = main([
            "train", "--iters", "2", "--world", "2", "--hidden", "16",
            "--layers", "2", "--heads", "2", "--seq", "8", "--vocab", "17",
            "--microbatches", "4", "--data", "markov", "--clip-norm", "1.0",
        ])
        assert rc == 0

    def test_simulate(self, capsys):
        rc = main([
            "simulate", "--strategy", "weipipe-interleave", "--world", "8",
            "--hidden", "1024", "--layers", "8", "--seq", "4096",
            "--microbatch", "4", "--microbatches", "16",
            "--cluster", "single-node",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tokens/s/GPU" in out

    def test_simulate_oom_exit_code(self, capsys):
        rc = main([
            "simulate", "--strategy", "zb2", "--world", "16",
            "--hidden", "4096", "--layers", "32", "--seq", "16384",
            "--microbatch", "4", "--microbatches", "32",
        ])
        assert rc == 1
        assert "OOM" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "schedule", ["weipipe-interleave", "weipipe-naive", "wzb2", "1f1b", "zb1"]
    )
    def test_timeline(self, schedule, capsys):
        rc = main(["timeline", schedule, "--width", "40", "--microbatches", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "worker  0" in out

    def test_figure(self, capsys):
        rc = main(["figure", "6"])
        assert rc == 0
        assert "weak scaling" in capsys.readouterr().out


class TestChaosSweepCLI:
    def test_defaults(self):
        args = build_parser().parse_args(["chaos-sweep"])
        assert args.seeds == 5
        assert args.seed_start == 0
        assert args.strategies is None

    def test_sweep_passes_on_correct_strategies(self, capsys):
        rc = main([
            "chaos-sweep", "--seeds", "2",
            "--strategies", "weipipe-interleave,1f1b", "--iters", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "0 failure(s)" in out

    def test_replay_single_seed(self, capsys):
        rc = main([
            "chaos-sweep", "--seeds", "1", "--seed-start", "13",
            "--strategies", "weipipe-zb", "--iters", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "seed   13" in out

    def test_quiet_wire_control_run(self, capsys):
        rc = main([
            "chaos-sweep", "--seeds", "1", "--strategies", "fsdp",
            "--iters", "1", "--quiet-wire",
        ])
        assert rc == 0

    def test_unknown_strategy_errors(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            main([
                "chaos-sweep", "--seeds", "1", "--strategies", "frobnicate",
            ])


class TestCheckpointCLI:
    TINY = [
        "--hidden", "16", "--layers", "4", "--heads", "2", "--seq", "8",
        "--vocab", "17", "--microbatches", "4", "--world", "4",
    ]

    def test_checkpoint_then_full_state_resume(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.npz")
        rc = main(["train", "--iters", "2", "--checkpoint-every", "1",
                   "--checkpoint-path", ck, *self.TINY])
        assert rc == 0
        straight_out = capsys.readouterr().out
        assert "checkpoint written" in straight_out

        rc = main(["train", "--iters", "2", "--resume", ck, *self.TINY])
        assert rc == 0
        resumed_out = capsys.readouterr().out
        assert "resuming (full state)" in resumed_out
        assert "at iteration 2" in resumed_out
        assert "iter    2" in resumed_out and "iter    3" in resumed_out

        # the resumed segment must equal the tail of an unbroken run.
        rc = main(["train", "--iters", "4", *self.TINY])
        assert rc == 0
        unbroken_out = capsys.readouterr().out
        for line in resumed_out.splitlines():
            if line.startswith("iter "):
                assert line in unbroken_out

    def test_cross_strategy_resume_is_weights_only(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.npz")
        assert main(["train", "--iters", "1", "--checkpoint-every", "1",
                     "--checkpoint-path", ck, *self.TINY]) == 0
        capsys.readouterr()
        rc = main(["train", "--iters", "1", "--strategy", "dp",
                   "--resume", ck, *self.TINY])
        assert rc == 0
        out = capsys.readouterr().out
        assert "weights-only" in out and "optimizer restarts" in out

    def test_corrupt_checkpoint_refused(self, tmp_path):
        """Tamper with one tensor but keep the zip container consistent:
        only the checkpoint's own checksums can catch it — and they must
        stop the resume cold."""
        import numpy as np

        from repro.io import CorruptCheckpointError

        ck = tmp_path / "ck.npz"
        assert main(["train", "--iters", "1", "--checkpoint-every", "1",
                     "--checkpoint-path", str(ck), *self.TINY]) == 0
        with np.load(ck) as data:
            arrays = {k: data[k].copy() for k in data.files}
        key = next(k for k in arrays if k.startswith("chunk"))
        arrays[key] = arrays[key] + 1.0
        np.savez_compressed(ck, **arrays)
        with pytest.raises(CorruptCheckpointError):
            main(["train", "--iters", "1", "--resume", str(ck), *self.TINY])

    def test_checkpoint_needs_elastic_strategy(self):
        with pytest.raises(SystemExit, match="elastic strategy"):
            main(["train", "--iters", "1", "--strategy", "1f1b",
                  "--checkpoint-every", "1", *self.TINY])

    def test_checkpoint_rejected_with_dp(self):
        with pytest.raises(SystemExit, match="not supported with --dp"):
            main(["train", "--iters", "1", "--dp", "2",
                  "--checkpoint-every", "1", *self.TINY])


class TestCrashRecoveryCLI:
    def test_defaults(self):
        args = build_parser().parse_args(["crash-recovery"])
        assert args.strategy == "weipipe-interleave"
        assert args.world == 4
        assert args.crash_rank is None and args.crash_at_post is None

    def test_pinned_crash_verifies(self, capsys):
        rc = main(["crash-recovery", "--crash-rank", "0",
                   "--crash-at-post", "76"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rolled back to step" in out
        assert "bit-for-bit" in out


class TestHybridCLI:
    def test_train_with_dp(self, capsys):
        rc = main([
            "train", "--world", "4", "--dp", "2", "--iters", "2",
            "--hidden", "16", "--layers", "2", "--heads", "2",
            "--seq", "8", "--vocab", "17", "--microbatches", "4",
        ])
        assert rc == 0
        assert "dp=2" in capsys.readouterr().out

    def test_dp_requires_weipipe(self):
        with pytest.raises(SystemExit):
            main([
                "train", "--world", "4", "--dp", "2", "--strategy", "1f1b",
                "--iters", "1", "--hidden", "16", "--layers", "2",
                "--heads", "2", "--seq", "8", "--vocab", "17",
                "--microbatches", "4",
            ])


class TestBenchOverlapCLI:
    def test_smoke_writes_schema_tagged_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_overlap.json"
        rc = main([
            "bench-overlap", "--world", "2", "--layers", "4", "--hidden", "8",
            "--heads", "2", "--seq", "8", "--vocab", "16",
            "--microbatches", "4", "--iters", "2", "--reps", "1",
            "--link-delay", "0.0005", "--out", str(out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "repro.bench_overlap/v2"
        # no --backend process: the per-backend section is not included.
        assert "backends" not in report
        assert report["losses_equal"] is True
        assert report["bytes_equal"] is True
        assert report["overlap"]["steady_state_allocs_per_iter"] == 0
        assert report["overlap"]["tokens_per_s"] > 0
        assert report["zero_latency"]["losses_equal"] is True
        printed = capsys.readouterr().out
        assert "speedup" in printed and "losses bit-equal    : True" in printed

    def test_no_control_skips_zero_latency(self, tmp_path):
        import json

        out = tmp_path / "b.json"
        rc = main([
            "bench-overlap", "--world", "2", "--layers", "2", "--hidden", "8",
            "--heads", "2", "--seq", "8", "--vocab", "16",
            "--microbatches", "2", "--iters", "2", "--reps", "1",
            "--link-delay", "0.0", "--no-control", "--out", str(out),
        ])
        assert rc == 0
        assert "zero_latency" not in json.loads(out.read_text())


class TestTraceCLI:
    def test_trace_writes_valid_chrome_trace_and_analysis(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        analysis = tmp_path / "analysis.json"
        rc = main([
            "trace", "weipipe-interleave", "--world", "2", "--layers", "4",
            "--iters", "1", "--microbatches", "4",
            "--out", str(out), "--jsonl", str(jsonl),
            "--metrics-out", str(metrics), "--analysis-out", str(analysis),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["metadata"]["strategy"] == "weipipe-interleave"
        # jsonl: header + one line per event
        lines = jsonl.read_text().splitlines()
        assert len(lines) == 1 + sum(
            1 for e in doc["traceEvents"] if e["ph"] != "M"
        )
        m = json.loads(metrics.read_text())
        names = {x["name"] for x in m["metrics"]}
        assert "fabric_bytes_total" in names
        assert "weipipe_wire_wait_seconds" in names
        a = json.loads(analysis.read_text())
        assert a["analysis"]["per_turn"]["uniform_2w_1d"] is True
        assert a["reconciliation"]["iteration_wall"]["within_tolerance"]
        printed = capsys.readouterr().out
        assert "bubble ratio" in printed
        assert "2W+1D" in printed

    def test_trace_process_backend_runs_full_pipeline(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        analysis = tmp_path / "analysis.json"
        rc = main([
            "trace", "weipipe-interleave", "--world", "2", "--layers", "4",
            "--iters", "1", "--microbatches", "4", "--backend", "process",
            "--out", str(out), "--analysis-out", str(analysis),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] != "M"}
        assert pids == {0, 1}
        # per-rank clock alignment is recorded in the trace metadata.
        clock = doc["metadata"]["clock"]
        assert sorted(clock) == ["0", "1"]
        a = json.loads(analysis.read_text())
        assert a["analysis"]["summary"]["ranks"] == 2
        assert a["reconciliation"]["iteration_wall"]["within_tolerance"]
        printed = capsys.readouterr().out
        assert "backend=process" in printed
        assert "clock rank 0" in printed

    def test_trace_default_strategy_and_no_analyze(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        rc = main([
            "trace", "--world", "2", "--layers", "2", "--iters", "1",
            "--microbatches", "2", "--no-analyze", "--out", str(out),
        ])
        assert rc == 0
        assert out.exists()
        assert "bubble ratio" not in capsys.readouterr().out

    def test_trace_unknown_strategy_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "frobnicate", "--out", str(tmp_path / "t.json")])

    def test_train_trace_flag(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "t.json"
        rc = main([
            "train", "--iters", "1", "--world", "2", "--hidden", "16",
            "--layers", "2", "--heads", "2", "--seq", "8", "--vocab", "17",
            "--microbatches", "4", "--strategy", "1f1b", "--trace", str(out),
        ])
        assert rc == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []

    def test_chaos_sweep_metrics_out(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "m.json"
        rc = main([
            "chaos-sweep", "--seeds", "1",
            "--strategies", "weipipe-interleave",
            "--metrics-out", str(metrics),
        ])
        assert rc == 0
        m = json.loads(metrics.read_text())
        names = {x["name"] for x in m["metrics"]}
        assert "chaos_injections_total" in names

    def test_bench_overlap_trace_flag(self, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "b.json"
        trace = tmp_path / "t.json"
        rc = main([
            "bench-overlap", "--world", "2", "--layers", "2", "--hidden", "8",
            "--heads", "2", "--seq", "8", "--vocab", "16",
            "--microbatches", "2", "--iters", "2", "--reps", "1",
            "--link-delay", "0.0", "--no-control", "--out", str(out),
            "--trace", str(trace),
        ])
        assert rc == 0
        assert json.loads(out.read_text())["trace_path"] == str(trace)
        assert validate_chrome_trace(json.loads(trace.read_text())) == []


class TestTopologyCLI:
    TINY = [
        "--world", "4", "--hidden", "16", "--layers", "4", "--heads", "2",
        "--seq", "8", "--vocab", "17", "--microbatches", "4", "--iters", "2",
    ]

    def test_train_hier_with_groups(self, capsys):
        rc = main(["train", "--strategy", "weipipe-hier",
                   "--groups", "2x2", *self.TINY])
        assert rc == 0
        out = capsys.readouterr().out
        assert "topology=2x2 gateways=[0, 2]" in out
        assert "inter" in out and "intra" in out

    def test_train_flat_on_topology_fabric(self, capsys):
        """--groups without --strategy weipipe-hier still builds the
        topology fabric and reports per-class traffic for the flat ring."""
        rc = main(["train", "--groups", "2x2", *self.TINY])
        assert rc == 0
        assert "topology=2x2" in capsys.readouterr().out

    def test_train_bad_groups_exits_cleanly(self):
        with pytest.raises(SystemExit):
            main(["train", "--strategy", "weipipe-hier",
                  "--groups", "3x3", *self.TINY])

    def test_bench_topology_smoke(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_topology.json"
        rc = main([
            "bench-topology", "--world", "4", "--groups", "2x2",
            "--hidden", "8", "--layers", "4", "--heads", "2", "--seq", "8",
            "--vocab", "16", "--microbatches", "4", "--iters", "1",
            "--reps", "1", "--jitter", "0.0001", "--out", str(out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "repro.bench_topology/v1"
        assert report["losses_equal"] is True
        assert report["cross_group"]["hier_lt_flat"] is True
        assert report["intra_group"]["equal"] is True
        printed = capsys.readouterr().out
        assert "cross-group" in printed and "speedup" in printed

    def test_bench_topology_trace_flag(self, tmp_path):
        import json

        from repro.obs import reconcile, validate_chrome_trace

        out = tmp_path / "b.json"
        trace = tmp_path / "t.json"
        rc = main([
            "bench-topology", "--world", "4", "--groups", "2x2",
            "--hidden", "8", "--layers", "4", "--heads", "2", "--seq", "8",
            "--vocab", "16", "--microbatches", "4", "--iters", "1",
            "--reps", "1", "--jitter", "0.0001", "--out", str(out),
            "--trace", str(trace),
        ])
        assert rc == 0
        assert json.loads(out.read_text())["trace_path"] == str(trace)
        doc = json.loads(trace.read_text())
        assert validate_chrome_trace(doc) == []
        assert "hier_traffic" in reconcile(doc)
