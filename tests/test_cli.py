"""CLI smoke and behaviour tests (invoked in-process via main())."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.strategy == "weipipe-interleave"
        assert args.world == 4

    def test_table_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "5"])


class TestCommands:
    def test_strategies(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "weipipe-interleave" in out
        assert "weipipe-wzb1" in out

    def test_train_tiny(self, capsys):
        rc = main([
            "train", "--iters", "2", "--world", "2", "--hidden", "16",
            "--layers", "2", "--heads", "2", "--seq", "8", "--vocab", "17",
            "--microbatches", "4", "--strategy", "1f1b",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "iter    1" in out

    def test_train_markov_with_clip(self, capsys):
        rc = main([
            "train", "--iters", "2", "--world", "2", "--hidden", "16",
            "--layers", "2", "--heads", "2", "--seq", "8", "--vocab", "17",
            "--microbatches", "4", "--data", "markov", "--clip-norm", "1.0",
        ])
        assert rc == 0

    def test_simulate(self, capsys):
        rc = main([
            "simulate", "--strategy", "weipipe-interleave", "--world", "8",
            "--hidden", "1024", "--layers", "8", "--seq", "4096",
            "--microbatch", "4", "--microbatches", "16",
            "--cluster", "single-node",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tokens/s/GPU" in out

    def test_simulate_oom_exit_code(self, capsys):
        rc = main([
            "simulate", "--strategy", "zb2", "--world", "16",
            "--hidden", "4096", "--layers", "32", "--seq", "16384",
            "--microbatch", "4", "--microbatches", "32",
        ])
        assert rc == 1
        assert "OOM" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "schedule", ["weipipe-interleave", "weipipe-naive", "wzb2", "1f1b", "zb1"]
    )
    def test_timeline(self, schedule, capsys):
        rc = main(["timeline", schedule, "--width", "40", "--microbatches", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "worker  0" in out

    def test_figure(self, capsys):
        rc = main(["figure", "6"])
        assert rc == 0
        assert "weak scaling" in capsys.readouterr().out


class TestChaosSweepCLI:
    def test_defaults(self):
        args = build_parser().parse_args(["chaos-sweep"])
        assert args.seeds == 5
        assert args.seed_start == 0
        assert args.strategies is None

    def test_sweep_passes_on_correct_strategies(self, capsys):
        rc = main([
            "chaos-sweep", "--seeds", "2",
            "--strategies", "weipipe-interleave,1f1b", "--iters", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "0 failure(s)" in out

    def test_replay_single_seed(self, capsys):
        rc = main([
            "chaos-sweep", "--seeds", "1", "--seed-start", "13",
            "--strategies", "weipipe-zb", "--iters", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "seed   13" in out

    def test_quiet_wire_control_run(self, capsys):
        rc = main([
            "chaos-sweep", "--seeds", "1", "--strategies", "fsdp",
            "--iters", "1", "--quiet-wire",
        ])
        assert rc == 0

    def test_unknown_strategy_errors(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            main([
                "chaos-sweep", "--seeds", "1", "--strategies", "frobnicate",
            ])


class TestHybridCLI:
    def test_train_with_dp(self, capsys):
        rc = main([
            "train", "--world", "4", "--dp", "2", "--iters", "2",
            "--hidden", "16", "--layers", "2", "--heads", "2",
            "--seq", "8", "--vocab", "17", "--microbatches", "4",
        ])
        assert rc == 0
        assert "dp=2" in capsys.readouterr().out

    def test_dp_requires_weipipe(self):
        with pytest.raises(SystemExit):
            main([
                "train", "--world", "4", "--dp", "2", "--strategy", "1f1b",
                "--iters", "1", "--hidden", "16", "--layers", "2",
                "--heads", "2", "--seq", "8", "--vocab", "17",
                "--microbatches", "4",
            ])
