"""Transformer layer: gradients, decoupled B/W equivalence, flash parity."""

import numpy as np

from repro.nn.layer import (
    init_layer_weights,
    layer_bwd,
    layer_bwd_input,
    layer_bwd_weight,
    layer_fwd,
    layer_param_count,
)
from repro.nn.rope import rope_angles
from repro.testing import assert_grad_close, numerical_grad

RNG = np.random.default_rng(3)

H, FFN, NH, S, G = 8, 12, 2, 5, 2


def _setup():
    w = init_layer_weights(H, FFN, RNG)
    x = RNG.normal(size=(G, S, H))
    cos, sin = rope_angles(S, H // NH)
    return w, x, cos, sin


class TestLayerForward:
    def test_output_shape(self):
        w, x, cos, sin = _setup()
        y, _ = layer_fwd(w, x, NH, cos, sin)
        assert y.shape == x.shape

    def test_param_count(self):
        w = init_layer_weights(H, FFN, RNG)
        assert w.numel == layer_param_count(H, FFN)

    def test_flash_matches_materialised(self):
        w, x, cos, sin = _setup()
        y1, _ = layer_fwd(w, x, NH, cos, sin, flash=False)
        y2, _ = layer_fwd(w, x, NH, cos, sin, flash=True, flash_block=2)
        np.testing.assert_allclose(y1, y2, atol=1e-12)

    def test_causality(self):
        w, x, cos, sin = _setup()
        y1, _ = layer_fwd(w, x, NH, cos, sin)
        x2 = x.copy()
        x2[:, 3:, :] = RNG.normal(size=x2[:, 3:, :].shape)
        y2, _ = layer_fwd(w, x2, NH, cos, sin)
        np.testing.assert_allclose(y1[:, :3], y2[:, :3])


class TestLayerBackward:
    def test_input_grad(self):
        w, x, cos, sin = _setup()
        dy = RNG.normal(size=x.shape)
        _, cache = layer_fwd(w, x, NH, cos, sin)
        dx, _ = layer_bwd(w, dy, cache)

        def loss(xv):
            return float((layer_fwd(w, xv, NH, cos, sin)[0] * dy).sum())

        assert_grad_close(dx, numerical_grad(loss, x), name="dx")

    def test_all_weight_grads(self):
        w, x, cos, sin = _setup()
        dy = RNG.normal(size=x.shape)
        _, cache = layer_fwd(w, x, NH, cos, sin)
        _, grads = layer_bwd(w, dy, cache)

        for name in w.keys():
            def loss(wv, name=name):
                w2 = w.clone()
                w2[name] = wv
                return float((layer_fwd(w2, x, NH, cos, sin)[0] * dy).sum())

            assert_grad_close(
                grads[name], numerical_grad(loss, w[name]), name=name
            )

    def test_decoupled_equals_fused(self):
        """B pass + W pass must reproduce the fused backward exactly."""
        w, x, cos, sin = _setup()
        dy = RNG.normal(size=x.shape)
        _, cache = layer_fwd(w, x, NH, cos, sin)
        dx_fused, g_fused = layer_bwd(w, dy, cache)
        dx_b, wcache = layer_bwd_input(w, dy, cache)
        g_w = layer_bwd_weight(cache, wcache)
        np.testing.assert_allclose(dx_b, dx_fused)
        for name in g_fused.keys():
            np.testing.assert_allclose(g_w[name], g_fused[name], err_msg=name)

    def test_wcache_contains_no_weights(self):
        """W pass inputs must not alias any weight array (the property
        zero-bubble schedules rely on to defer the W pass)."""
        w, x, cos, sin = _setup()
        dy = RNG.normal(size=x.shape)
        _, cache = layer_fwd(w, x, NH, cos, sin)
        _, wcache = layer_bwd_input(w, dy, cache)
        weight_ids = {id(v) for v in w.values()}
        for v in wcache.values():
            assert id(v) not in weight_ids

    def test_flash_backward_matches(self):
        w, x, cos, sin = _setup()
        dy = RNG.normal(size=x.shape)
        _, c1 = layer_fwd(w, x, NH, cos, sin, flash=False)
        _, c2 = layer_fwd(w, x, NH, cos, sin, flash=True, flash_block=2)
        dx1, g1 = layer_bwd(w, dy, c1)
        dx2, g2 = layer_bwd(w, dy, c2)
        np.testing.assert_allclose(dx1, dx2, atol=1e-11)
        for name in g1.keys():
            np.testing.assert_allclose(g1[name], g2[name], atol=1e-11, err_msg=name)
