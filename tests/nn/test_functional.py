"""Gradient checks and behaviour tests for the primitive ops."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.testing import assert_grad_close, numerical_grad

RNG = np.random.default_rng(7)


def _rand(*shape):
    return RNG.normal(size=shape).astype(np.float64)


class TestLinear:
    def test_forward_value(self):
        x, w = _rand(3, 4), _rand(4, 5)
        y, _ = F.linear_fwd(x, w)
        np.testing.assert_allclose(y, x @ w)

    def test_grad_input(self):
        x, w = _rand(2, 3, 4), _rand(4, 5)
        dy = _rand(2, 3, 5)
        _, cache = F.linear_fwd(x, w)
        dx, _ = F.linear_bwd(dy, cache)

        def loss(xv):
            return float((F.linear_fwd(xv, w)[0] * dy).sum())

        assert_grad_close(dx, numerical_grad(loss, x), name="dx")

    def test_grad_weight(self):
        x, w = _rand(2, 3, 4), _rand(4, 5)
        dy = _rand(2, 3, 5)
        _, cache = F.linear_fwd(x, w)
        _, dw = F.linear_bwd(dy, cache)

        def loss(wv):
            return float((F.linear_fwd(x, wv)[0] * dy).sum())

        assert_grad_close(dw, numerical_grad(loss, w), name="dw")

    def test_decoupled_halves_match_fused(self):
        x, w = _rand(3, 4), _rand(4, 5)
        dy = _rand(3, 5)
        _, cache = F.linear_fwd(x, w)
        dx, dw = F.linear_bwd(dy, cache)
        np.testing.assert_allclose(F.linear_bwd_input(dy, w), dx)
        np.testing.assert_allclose(F.linear_bwd_weight(x, dy), dw)


class TestSilu:
    def test_forward_value(self):
        x = _rand(5)
        y, _ = F.silu_fwd(x)
        np.testing.assert_allclose(y, x / (1 + np.exp(-x)))

    def test_grad(self):
        x = _rand(4, 6)
        dy = _rand(4, 6)
        _, cache = F.silu_fwd(x)
        dx = F.silu_bwd(dy, cache)

        def loss(xv):
            return float((F.silu_fwd(xv)[0] * dy).sum())

        assert_grad_close(dx, numerical_grad(loss, x), name="dx")


class TestSoftmax:
    def test_rows_sum_to_one(self):
        p, _ = F.softmax_fwd(_rand(3, 7))
        np.testing.assert_allclose(p.sum(axis=-1), np.ones(3))

    def test_shift_invariance(self):
        x = _rand(2, 5)
        p1, _ = F.softmax_fwd(x)
        p2, _ = F.softmax_fwd(x + 100.0)
        np.testing.assert_allclose(p1, p2, atol=1e-12)

    def test_grad(self):
        x = _rand(3, 5)
        dy = _rand(3, 5)
        _, cache = F.softmax_fwd(x)
        dx = F.softmax_bwd(dy, cache)

        def loss(xv):
            return float((F.softmax_fwd(xv)[0] * dy).sum())

        assert_grad_close(dx, numerical_grad(loss, x), name="dx")


class TestRMSNorm:
    def test_unit_scale_norm(self):
        x = _rand(4, 8)
        g = np.ones(8)
        y, _ = F.rmsnorm_fwd(x, g, eps=0.0)
        np.testing.assert_allclose(
            np.mean(y**2, axis=-1), np.ones(4), rtol=1e-10
        )

    def test_grad_input(self):
        x, g = _rand(2, 3, 8), _rand(8)
        dy = _rand(2, 3, 8)
        _, cache = F.rmsnorm_fwd(x, g)
        dx, _ = F.rmsnorm_bwd(dy, cache)

        def loss(xv):
            return float((F.rmsnorm_fwd(xv, g)[0] * dy).sum())

        assert_grad_close(dx, numerical_grad(loss, x), name="dx")

    def test_grad_gain(self):
        x, g = _rand(2, 3, 8), _rand(8)
        dy = _rand(2, 3, 8)
        _, cache = F.rmsnorm_fwd(x, g)
        _, dg = F.rmsnorm_bwd(dy, cache)

        def loss(gv):
            return float((F.rmsnorm_fwd(x, gv)[0] * dy).sum())

        assert_grad_close(dg, numerical_grad(loss, g), name="dg")


class TestCrossEntropy:
    def test_uniform_logits_loss(self):
        logits = np.zeros((2, 3, 11))
        targets = RNG.integers(0, 11, size=(2, 3))
        loss, _ = F.cross_entropy_fwd(logits, targets)
        assert loss == pytest.approx(np.log(11))

    def test_perfect_prediction_low_loss(self):
        targets = np.array([[1, 2]])
        logits = np.full((1, 2, 4), -50.0)
        logits[0, 0, 1] = 50.0
        logits[0, 1, 2] = 50.0
        loss, _ = F.cross_entropy_fwd(logits, targets)
        assert loss < 1e-6

    def test_grad(self):
        logits = _rand(2, 3, 7)
        targets = RNG.integers(0, 7, size=(2, 3))
        _, cache = F.cross_entropy_fwd(logits, targets)
        dlogits = F.cross_entropy_bwd(1.0, cache)

        def loss(lv):
            return F.cross_entropy_fwd(lv, targets)[0]

        assert_grad_close(dlogits, numerical_grad(loss, logits), name="dlogits")

    def test_grad_rows_sum_to_zero(self):
        logits = _rand(4, 9)
        targets = RNG.integers(0, 9, size=(4,))
        _, cache = F.cross_entropy_fwd(logits, targets)
        d = F.cross_entropy_bwd(1.0, cache)
        np.testing.assert_allclose(d.sum(axis=-1), np.zeros(4), atol=1e-12)


class TestEmbedding:
    def test_lookup(self):
        table = _rand(10, 4)
        tokens = np.array([[1, 3], [9, 0]])
        y, _ = F.embedding_fwd(tokens, table)
        np.testing.assert_allclose(y[0, 1], table[3])

    def test_grad_scatter_adds(self):
        table = _rand(6, 3)
        tokens = np.array([2, 2, 5])
        dy = _rand(3, 3)
        _, cache = F.embedding_fwd(tokens, table)
        dt = F.embedding_bwd(dy, cache)
        np.testing.assert_allclose(dt[2], dy[0] + dy[1])
        np.testing.assert_allclose(dt[5], dy[2])
        np.testing.assert_allclose(dt[0], np.zeros(3))
