"""Whole-model behaviour: chunked fwd/bwd, parameter counts, losses."""

import numpy as np
import pytest

from repro.nn import (
    ModelConfig,
    chunk_bwd,
    chunk_bwd_input,
    chunk_bwd_weight,
    chunk_fwd,
    default_ffn,
    init_model,
    model_fwd,
    model_loss_and_grads,
    model_param_count,
    rope_tables,
)
from repro.nn import functional as F

CFG = ModelConfig(hidden=16, n_layers=3, n_heads=2, seq_len=6, vocab=13)
RNG = np.random.default_rng(5)


def _batch(g=2):
    tokens = RNG.integers(0, CFG.vocab, size=(g, CFG.seq_len))
    targets = RNG.integers(0, CFG.vocab, size=(g, CFG.seq_len))
    return tokens, targets


class TestConfig:
    def test_default_ffn_near_llama_ratio(self):
        for h in (1024, 2048, 4096):
            f = default_ffn(h)
            assert abs(3 * h * f - 8 * h * h) / (8 * h * h) < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelConfig(hidden=10, n_layers=1, n_heads=3, seq_len=4, vocab=7)
        with pytest.raises(ValueError):
            # odd head dim breaks RoPE
            ModelConfig(hidden=6, n_layers=1, n_heads=2, seq_len=4, vocab=7)

    def test_param_count_12h2(self):
        """Per-layer parameters land within 1% of the paper's 12 H^2."""
        h = 1024
        cfg = ModelConfig(hidden=h, n_layers=1, n_heads=8, seq_len=4, vocab=32)
        from repro.nn.layer import layer_param_count

        assert abs(layer_param_count(h, cfg.ffn) - 12 * h * h) / (12 * h * h) < 0.01


class TestInit:
    def test_deterministic(self):
        a = init_model(CFG, seed=3)
        b = init_model(CFG, seed=3)
        for ca, cb in zip(a, b):
            assert ca.allclose(cb)

    def test_seed_changes_weights(self):
        a = init_model(CFG, seed=3)
        b = init_model(CFG, seed=4)
        assert not a[0].allclose(b[0])

    def test_extras_placement(self):
        chunks = init_model(CFG)
        assert "embed" in chunks[0]
        assert "head" in chunks[-1] and "final_norm" in chunks[-1]
        for c in chunks[1:-1]:
            assert "embed" not in c and "head" not in c

    def test_model_param_count(self):
        chunks = init_model(CFG)
        assert sum(c.numel for c in chunks) == model_param_count(CFG)


class TestForward:
    def test_logits_shape(self):
        chunks = init_model(CFG)
        tokens, _ = _batch()
        cos, sin = rope_tables(CFG)
        logits, caches = model_fwd(CFG, chunks, tokens, cos, sin)
        assert logits.shape == (2, CFG.seq_len, CFG.vocab)
        assert len(caches) == CFG.n_layers

    def test_flash_matches(self):
        tokens, _ = _batch()
        cos, sin = rope_tables(CFG)
        chunks = init_model(CFG)
        l1, _ = model_fwd(CFG, chunks, tokens, cos, sin)
        cfg2 = CFG.with_(flash_attention=True, flash_block=2)
        l2, _ = model_fwd(cfg2, chunks, tokens, cos, sin)
        np.testing.assert_allclose(l1, l2, atol=1e-11)


class TestBackward:
    def test_full_model_gradcheck_spot(self):
        """Finite-difference check a few scalar weights through the whole
        model (full gradcheck is done per-op; this catches wiring bugs)."""
        chunks = init_model(CFG)
        tokens, targets = _batch(g=1)
        loss, grads = model_loss_and_grads(CFG, chunks, tokens, targets)

        eps = 1e-6
        probes = [(0, "embed", (3, 2)), (1, "wq", (0, 1)), (2, "head", (5, 4)),
                  (0, "w_down", (2, 3)), (2, "ffn_norm", (7,))]
        for li, name, idx in probes:
            orig = chunks[li][name][idx]
            chunks[li][name][idx] = orig + eps
            lp, _ = model_loss_and_grads(CFG, chunks, tokens, targets)
            chunks[li][name][idx] = orig - eps
            lm, _ = model_loss_and_grads(CFG, chunks, tokens, targets)
            chunks[li][name][idx] = orig
            num = (lp - lm) / (2 * eps)
            assert grads[li][name][idx] == pytest.approx(num, rel=1e-4, abs=1e-8), (
                li,
                name,
            )

    def test_chunk_decoupled_matches_fused(self):
        chunks = init_model(CFG)
        tokens, targets = _batch()
        cos, sin = rope_tables(CFG)
        logits, caches = model_fwd(CFG, chunks, tokens, cos, sin)
        _, c_loss = F.cross_entropy_fwd(logits, targets)
        dy = F.cross_entropy_bwd(1.0, c_loss)
        for i in range(CFG.n_layers - 1, -1, -1):
            dx_f, g_f = chunk_bwd(CFG, i, chunks[i], dy, caches[i])
            dx_d, wcache = chunk_bwd_input(CFG, i, chunks[i], dy, caches[i])
            g_d = chunk_bwd_weight(CFG, i, caches[i], wcache)
            if i == 0:
                assert dx_f is None and dx_d is None
            else:
                np.testing.assert_allclose(dx_d, dx_f)
            for name in g_f.keys():
                np.testing.assert_allclose(g_d[name], g_f[name], err_msg=name)
            dy = dx_f if dx_f is not None else dy

    def test_loss_decreases_under_sgd(self):
        """Sanity: a few hand-rolled SGD steps reduce the loss."""
        chunks = init_model(CFG, seed=1)
        tokens, targets = _batch(g=2)
        loss0, _ = model_loss_and_grads(CFG, chunks, tokens, targets)
        for _ in range(5):
            _, grads = model_loss_and_grads(CFG, chunks, tokens, targets)
            for c, g in zip(chunks, grads):
                c.add_(g, scale=-0.5)
        loss1, _ = model_loss_and_grads(CFG, chunks, tokens, targets)
        assert loss1 < loss0
