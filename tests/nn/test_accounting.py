"""FLOP/memory accounting utilities."""

import numpy as np
import pytest

from repro.nn import ModelConfig
from repro.nn.accounting import (
    layer_fwd_flops,
    model_fwd_flops,
    tensor_bytes,
    training_step_flops,
)

CFG = ModelConfig(hidden=64, n_layers=4, n_heads=4, seq_len=128, vocab=100)


class TestFlops:
    def test_breakdown_sums_to_total(self):
        br = layer_fwd_flops(CFG, 2)
        assert br["total"] == pytest.approx(
            br["attention_projections"] + br["ffn"] + br["attention_scores"]
        )

    def test_scales_linearly_in_batch(self):
        a = layer_fwd_flops(CFG, 1)["total"]
        b = layer_fwd_flops(CFG, 4)["total"]
        assert b == pytest.approx(4 * a)

    def test_causal_halves_scores(self):
        full = layer_fwd_flops(CFG, 2, causal=False)
        half = layer_fwd_flops(CFG, 2, causal=True)
        assert half["attention_scores"] == pytest.approx(
            full["attention_scores"] / 2
        )
        assert half["ffn"] == full["ffn"]

    def test_model_adds_head(self):
        per_layer = layer_fwd_flops(CFG, 2)["total"]
        total = model_fwd_flops(CFG, 2)
        head = 2 * 2 * CFG.seq_len * CFG.hidden * CFG.vocab
        assert total == pytest.approx(per_layer * CFG.n_layers + head)

    def test_step_more_than_forward(self):
        assert training_step_flops(CFG, 2, False) == pytest.approx(
            3 * model_fwd_flops(CFG, 2)
        )


class TestTensorBytes:
    def test_flat_array(self):
        assert tensor_bytes(np.zeros(10, dtype=np.float64)) == 80

    def test_nested_structures(self):
        obj = (np.zeros(4), [np.zeros(2), {"k": np.zeros(3)}])
        assert tensor_bytes(obj) == (4 + 2 + 3) * 8

    def test_views_not_double_counted(self):
        base = np.zeros(100)
        view = base[10:50]
        assert tensor_bytes((base, view)) == 800

    def test_aliases_not_double_counted(self):
        a = np.zeros(10)
        assert tensor_bytes((a, a, [a])) == 80

    def test_non_arrays_ignored(self):
        assert tensor_bytes(("hello", 3, None, {"x": 1.5})) == 0
