"""KV-cache decoding: equivalence with full re-forward, determinism."""

import numpy as np
import pytest

from repro.nn import ModelConfig, init_model, model_fwd, rope_tables
from repro.nn.generate import (
    KVCache,
    generate,
    perplexity,
    sequence_logprobs,
)
from repro.nn.rope import rope_angles

CFG = ModelConfig(hidden=16, n_layers=3, n_heads=2, seq_len=12, vocab=23)
CHUNKS = init_model(CFG, seed=4)
RNG = np.random.default_rng(2)


class TestKVCacheEquivalence:
    def test_incremental_matches_full_forward(self):
        """Feeding tokens one at a time through the KV cache must give
        the same final logits as one full forward pass."""
        tokens = RNG.integers(0, CFG.vocab, size=(2, 6))
        cos, sin = rope_angles(6, CFG.head_dim, CFG.rope_base, CFG.dtype)
        full_logits, _ = model_fwd(CFG, CHUNKS, tokens, cos, sin)

        from repro.nn.generate import KVCache, _decode_step

        cos_all, sin_all = rope_angles(6, CFG.head_dim, CFG.rope_base, CFG.dtype)
        cache = KVCache(CFG.n_layers)
        step_logits = []
        for t in range(6):
            lg = _decode_step(
                CFG, CHUNKS, tokens[:, t : t + 1], cache, cos_all, sin_all
            )
            step_logits.append(lg)
        for t in range(6):
            np.testing.assert_allclose(
                step_logits[t], full_logits[:, t, :], atol=1e-10,
                err_msg=f"position {t}",
            )

    def test_block_prompt_matches_tokenwise(self):
        """Ingesting the prompt as one block equals token-by-token."""
        from repro.nn.generate import _decode_step

        tokens = RNG.integers(0, CFG.vocab, size=(1, 5))
        cos_all, sin_all = rope_angles(8, CFG.head_dim, CFG.rope_base, CFG.dtype)

        c1 = KVCache(CFG.n_layers)
        block = _decode_step(CFG, CHUNKS, tokens, c1, cos_all, sin_all)
        c2 = KVCache(CFG.n_layers)
        for t in range(5):
            step = _decode_step(CFG, CHUNKS, tokens[:, t : t + 1], c2, cos_all, sin_all)
        np.testing.assert_allclose(block, step, atol=1e-10)
        for l in range(CFG.n_layers):
            np.testing.assert_allclose(c1.k[l], c2.k[l], atol=1e-10)


class TestGenerate:
    def test_shapes_and_range(self):
        prompt = RNG.integers(0, CFG.vocab, size=(2, 3))
        out = generate(CFG, CHUNKS, prompt, n_new=5)
        assert out.shape == (2, 8)
        np.testing.assert_array_equal(out[:, :3], prompt)
        assert out.max() < CFG.vocab and out.min() >= 0

    def test_greedy_is_deterministic(self):
        prompt = RNG.integers(0, CFG.vocab, size=(1, 4))
        a = generate(CFG, CHUNKS, prompt, n_new=6)
        b = generate(CFG, CHUNKS, prompt, n_new=6)
        np.testing.assert_array_equal(a, b)

    def test_sampling_seeded(self):
        prompt = RNG.integers(0, CFG.vocab, size=(1, 4))
        a = generate(CFG, CHUNKS, prompt, n_new=6, temperature=1.0, seed=3)
        b = generate(CFG, CHUNKS, prompt, n_new=6, temperature=1.0, seed=3)
        c = generate(CFG, CHUNKS, prompt, n_new=6, temperature=1.0, seed=4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)  # overwhelmingly likely

    def test_greedy_matches_full_reforward_argmax(self):
        """Each greedy token equals the argmax of a from-scratch forward
        over the prefix — the KV cache changes nothing."""
        prompt = RNG.integers(0, CFG.vocab, size=(1, 3))
        out = generate(CFG, CHUNKS, prompt, n_new=4)
        for t in range(3, 7):
            prefix = out[:, :t]
            cos, sin = rope_angles(t, CFG.head_dim, CFG.rope_base, CFG.dtype)
            logits, _ = model_fwd(CFG, CHUNKS, prefix, cos, sin)
            assert out[0, t] == logits[0, -1].argmax()

    def test_empty_prompt_rejected(self):
        with pytest.raises(ValueError):
            generate(CFG, CHUNKS, np.zeros((1, 0), dtype=int), n_new=2)


class TestEvaluation:
    def test_logprobs_negative(self):
        tokens = RNG.integers(0, CFG.vocab, size=(2, 6))
        targets = RNG.integers(0, CFG.vocab, size=(2, 6))
        lp = sequence_logprobs(CFG, CHUNKS, tokens, targets)
        assert lp.shape == (2, 6)
        assert (lp < 0).all()

    def test_perplexity_of_untrained_model_near_vocab(self):
        """An untrained (near-uniform) model's perplexity ~ vocab size."""
        tokens = RNG.integers(0, CFG.vocab, size=(4, 10))
        targets = RNG.integers(0, CFG.vocab, size=(4, 10))
        ppl = perplexity(CFG, CHUNKS, tokens, targets)
        assert 0.5 * CFG.vocab < ppl < 2.0 * CFG.vocab

    def test_perplexity_matches_loss(self):
        from repro.nn import functional as F
        from repro.nn import model_fwd, rope_tables

        tokens = RNG.integers(0, CFG.vocab, size=(2, CFG.seq_len))
        targets = RNG.integers(0, CFG.vocab, size=(2, CFG.seq_len))
        cos, sin = rope_tables(CFG)
        logits, _ = model_fwd(CFG, CHUNKS, tokens, cos, sin)
        loss, _ = F.cross_entropy_fwd(logits, targets)
        assert perplexity(CFG, CHUNKS, tokens, targets) == pytest.approx(
            np.exp(loss), rel=1e-9
        )
