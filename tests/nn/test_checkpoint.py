"""Recomputation must be numerically invisible and actually drop caches."""

import numpy as np

from repro.nn import CheckpointedChunk, ModelConfig, init_model, rope_tables
from repro.nn import functional as F

CFG = ModelConfig(hidden=16, n_layers=2, n_heads=2, seq_len=5, vocab=11)
RNG = np.random.default_rng(9)


def _run(recompute: bool):
    chunks = init_model(CFG, seed=2)
    cos, sin = rope_tables(CFG)
    ck = CheckpointedChunk(CFG, recompute=recompute)
    tokens = RNG.integers(0, CFG.vocab, size=(2, CFG.seq_len))
    targets = np.roll(tokens, -1, axis=1)

    x = tokens
    states = []
    for i in range(CFG.n_layers):
        x, st = ck.fwd(i, chunks[i], x, cos, sin)
        states.append(st)
    loss, c_loss = F.cross_entropy_fwd(x, targets)
    dy = F.cross_entropy_bwd(1.0, c_loss)
    grads = []
    for i in range(CFG.n_layers - 1, -1, -1):
        dy, g = ck.bwd(i, chunks[i], dy, states[i])
        grads.append(g)
    return loss, grads, states


class TestCheckpoint:
    def test_recompute_matches_full(self):
        RNG_STATE = np.random.default_rng(9)
        global RNG
        RNG = np.random.default_rng(9)
        loss_f, grads_f, _ = _run(False)
        RNG = np.random.default_rng(9)
        loss_r, grads_r, _ = _run(True)
        assert loss_f == loss_r
        for gf, gr in zip(grads_f, grads_r):
            for name in gf.keys():
                np.testing.assert_array_equal(gf[name], gr[name])

    def test_recompute_state_holds_only_input(self):
        global RNG
        RNG = np.random.default_rng(9)
        _, _, states = _run(True)
        for st in states:
            assert st[0] == "recompute"
            # the stored payload is (tag, x, cos, sin): no layer cache tuple
            assert len(st) == 4

    def test_full_state_holds_cache(self):
        global RNG
        RNG = np.random.default_rng(9)
        _, _, states = _run(False)
        for st in states:
            assert st[0] == "full"

    def test_decoupled_bw_with_recompute(self):
        chunks = init_model(CFG, seed=2)
        cos, sin = rope_tables(CFG)
        rng = np.random.default_rng(4)
        tokens = rng.integers(0, CFG.vocab, size=(1, CFG.seq_len))
        x = tokens
        ck_r = CheckpointedChunk(CFG, recompute=True)
        ck_f = CheckpointedChunk(CFG, recompute=False)
        states_r, states_f = [], []
        xf = x
        for i in range(CFG.n_layers):
            xr, sr = ck_r.fwd(i, chunks[i], x, cos, sin)
            xf, sf = ck_f.fwd(i, chunks[i], xf, cos, sin)
            x = xr
            states_r.append(sr)
            states_f.append(sf)
        dy = rng.normal(size=x.shape)
        for i in range(CFG.n_layers - 1, 0, -1):
            dxr, cache_r, wc_r = ck_r.bwd_input(i, chunks[i], dy, states_r[i])
            dxf, cache_f, wc_f = ck_f.bwd_input(i, chunks[i], dy, states_f[i])
            np.testing.assert_array_equal(dxr, dxf)
            gr = ck_r.bwd_weight(i, cache_r, wc_r)
            gf = ck_f.bwd_weight(i, cache_f, wc_f)
            for name in gf.keys():
                np.testing.assert_array_equal(gr[name], gf[name])
            dy = dxr
