"""fp16/bf16 emulation: rounding semantics and policy plumbing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.precision import (
    FP32,
    FP64,
    MIXED,
    PrecisionPolicy,
    bf16_round,
    dtype_bytes,
    fp16_round,
    quantize,
)


class TestFP16:
    def test_exact_values_pass_through(self):
        x = np.array([0.0, 1.0, -2.5, 0.125, 65504.0])
        np.testing.assert_array_equal(fp16_round(x), x)

    def test_saturates_instead_of_inf(self):
        x = np.array([1e6, -1e6])
        np.testing.assert_array_equal(fp16_round(x), [65504.0, -65504.0])

    def test_rounding_error_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000).astype(np.float32)
        err = np.abs(fp16_round(x) - x)
        # fp16 has 10 mantissa bits -> relative error <= 2^-11
        assert np.all(err <= np.abs(x) * 2.0**-11 + 1e-8)


class TestBF16:
    def test_exact_values_pass_through(self):
        # values whose fp32 mantissa already fits in bf16's 7 bits
        x = np.array([0.0, 1.0, -2.0, 0.5, 2.0**100, -(2.0**-100) * 1.5],
                     dtype=np.float32)
        np.testing.assert_array_equal(bf16_round(x), x)

    def test_wide_dynamic_range_survives(self):
        """bf16 keeps the fp32 exponent — huge values must not saturate."""
        x = np.array([1e38, 1e-38], dtype=np.float32)
        out = bf16_round(x)
        assert np.all(np.isfinite(out)) and np.all(out != 0)

    def test_mantissa_truncated_to_7_bits(self):
        x = np.float32(1.0 + 2.0**-9)  # below bf16 resolution near 1.0
        assert bf16_round(np.array([x]))[0] == 1.0

    def test_round_to_nearest_even(self):
        # 1 + 2^-8 is exactly halfway between 1.0 and 1 + 2^-7: ties to even (1.0)
        x = np.float32(1.0 + 2.0**-8)
        assert bf16_round(np.array([x]))[0] == 1.0
        # just above halfway rounds up
        x2 = np.float32(1.0 + 2.0**-8 + 2.0**-12)
        assert bf16_round(np.array([x2]))[0] == np.float32(1.0 + 2.0**-7)

    def test_nan_preserved(self):
        out = bf16_round(np.array([np.nan, 1.0], dtype=np.float32))
        assert np.isnan(out[0]) and out[1] == 1.0

    @given(st.floats(min_value=-1e30, max_value=1e30, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_relative_error_bound(self, v):
        x = np.array([v], dtype=np.float32)
        err = abs(float(bf16_round(x)[0]) - float(x[0]))
        # half-ulp relative bound for normals, plus bf16's subnormal
        # half-ulp (2^-134) to cover the denormal range.
        assert err <= abs(float(x[0])) * 2.0**-8 + 2.0**-134


class TestPolicy:
    def test_mixed_matches_paper(self):
        assert MIXED.activations == "fp16"
        assert MIXED.act_grads == "bf16"
        assert MIXED.weights == "fp16"
        assert MIXED.weight_grads == "fp16"
        assert MIXED.master == "fp32"

    def test_bytes(self):
        assert dtype_bytes("fp16") == 2
        assert dtype_bytes("bf16") == 2
        assert dtype_bytes("fp32") == 4
        assert dtype_bytes("fp64") == 8
        assert MIXED.weight_bytes == 2
        assert FP32.weight_bytes == 4

    def test_fp32_policy_is_identity(self):
        x = np.random.default_rng(1).normal(size=100).astype(np.float32)
        np.testing.assert_array_equal(FP32.q_act(x), x)
        np.testing.assert_array_equal(FP64.q_weight(x.astype(np.float64)), x)

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError):
            quantize(np.zeros(3), "fp8")
        with pytest.raises(ValueError):
            dtype_bytes("int4")

    def test_policy_quantizes(self):
        x = np.array([1.0 + 2.0**-13], dtype=np.float64)
        assert MIXED.q_weight(x)[0] == 1.0  # below fp16 resolution
        assert MIXED.q_act_grad(np.array([1.0 + 2.0**-9]))[0] == 1.0
