"""ParamStruct: the chunk currency every strategy trades in."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.params import ParamStruct


def _struct(shapes, rng=None):
    rng = rng or np.random.default_rng(0)
    return ParamStruct(
        {f"p{i}": rng.normal(size=s) for i, s in enumerate(shapes)}
    )


class TestMapping:
    def test_insertion_order_preserved(self):
        p = ParamStruct({"b": np.zeros(1), "a": np.zeros(2)})
        assert p.keys() == ["b", "a"]

    def test_contains_len_iter(self):
        p = _struct([(2,), (3, 4)])
        assert "p0" in p and "zz" not in p
        assert len(p) == 2
        assert list(p) == ["p0", "p1"]

    def test_numel(self):
        assert _struct([(2,), (3, 4)]).numel == 14

    def test_nbytes_logical(self):
        assert _struct([(8,)]).nbytes(2) == 16


class TestArithmetic:
    def test_add_scaled(self):
        a = ParamStruct({"x": np.ones(3)})
        b = ParamStruct({"x": np.full(3, 2.0)})
        a.add_(b, scale=0.5)
        np.testing.assert_array_equal(a["x"], np.full(3, 2.0))

    def test_add_key_mismatch(self):
        a = ParamStruct({"x": np.ones(3)})
        b = ParamStruct({"y": np.ones(3)})
        with pytest.raises(KeyError):
            a.add_(b)

    def test_zero_and_scale(self):
        a = _struct([(4,)])
        a.scale_(0.0)
        np.testing.assert_array_equal(a["p0"], np.zeros(4))
        b = _struct([(4,)])
        b.zero_()
        np.testing.assert_array_equal(b["p0"], np.zeros(4))

    def test_clone_is_deep(self):
        a = _struct([(3,)])
        b = a.clone()
        b["p0"][0] = 999.0
        assert a["p0"][0] != 999.0


class TestPacking:
    def test_round_trip(self):
        a = _struct([(2, 3), (5,), (1, 1, 4)])
        flat = a.pack(dtype=np.float64)
        b = a.unpack_from(flat)
        assert a.allclose(b, rtol=0, atol=0)

    def test_pack_order_is_key_order(self):
        a = ParamStruct({"x": np.array([1.0, 2.0]), "y": np.array([3.0])})
        np.testing.assert_array_equal(a.pack(np.float64), [1.0, 2.0, 3.0])

    def test_unpack_size_mismatch(self):
        a = _struct([(4,)])
        with pytest.raises(ValueError):
            a.unpack_from(np.zeros(5))

    def test_empty_struct(self):
        e = ParamStruct()
        assert e.numel == 0
        assert e.pack().size == 0

    @given(
        shapes=st.lists(
            st.tuples(st.integers(1, 4), st.integers(1, 4)), min_size=1, max_size=5
        ),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_pack_unpack_identity(self, shapes, seed):
        a = _struct(shapes, np.random.default_rng(seed))
        b = a.unpack_from(a.pack(np.float64))
        assert a.max_abs_diff(b) == 0.0

    @given(
        n=st.integers(1, 30),
        scale=st.floats(-5, 5, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_add_scale_linear(self, n, scale):
        rng = np.random.default_rng(n)
        a = ParamStruct({"x": rng.normal(size=n)})
        b = ParamStruct({"x": rng.normal(size=n)})
        expected = a["x"] + scale * b["x"]
        a.add_(b, scale=scale)
        np.testing.assert_allclose(a["x"], expected, rtol=1e-12)


class TestComparison:
    def test_allclose_structure_mismatch(self):
        a = ParamStruct({"x": np.ones(2)})
        b = ParamStruct({"y": np.ones(2)})
        assert not a.allclose(b)

    def test_max_abs_diff(self):
        a = ParamStruct({"x": np.array([1.0, 2.0])})
        b = ParamStruct({"x": np.array([1.5, 2.0])})
        assert a.max_abs_diff(b) == 0.5

    def test_max_abs_diff_mismatch_raises(self):
        with pytest.raises(KeyError):
            ParamStruct({"x": np.ones(1)}).max_abs_diff(ParamStruct({"y": np.ones(1)}))


class TestArena:
    def test_to_arena_views_one_buffer(self):
        p = _struct([(2, 3), (4,), (2, 2)]).to_arena()
        arena = p.arena
        assert arena is not None and arena.ndim == 1
        assert arena.size == p.numel
        for v in p.values():
            assert v.base is arena or v.base is arena.base
        # mutating a view mutates the arena (and vice versa)
        p["p0"][...] = 7.0
        assert np.all(arena[:6] == 7.0)

    def test_to_arena_preserves_values_and_layout(self):
        a = _struct([(3, 2), (5,)])
        b = a.to_arena()
        assert a.keys() == b.keys()
        assert a.max_abs_diff(b) == 0.0
        assert b.common_dtype == np.float64

    def test_to_arena_rejects_mixed_dtypes(self):
        p = ParamStruct({
            "a": np.zeros(2, dtype=np.float64),
            "b": np.zeros(2, dtype=np.float32),
        })
        with pytest.raises(TypeError):
            p.to_arena()

    def test_pack_is_zero_copy_for_arena_struct(self):
        p = _struct([(2, 2), (3,)]).to_arena()
        flat = p.pack(np.float64)
        assert flat is p.arena  # the arena itself, no concatenate

    def test_unpack_from_is_zero_copy_on_contiguous_flat(self):
        p = _struct([(2, 2), (3,)])
        flat = p.pack(np.float64)
        q = p.unpack_from(flat)
        assert q.arena is not None
        for v in q.values():
            assert v.base is flat or v.base is flat.base
        assert p.max_abs_diff(q) == 0.0

    def test_pack_into_fills_caller_buffer(self):
        p = _struct([(2, 2), (3,)])
        out = np.empty(p.numel, dtype=np.float64)
        got = p.pack_into(out)
        assert got is out
        np.testing.assert_array_equal(out, p.pack(np.float64))
        arena_p = p.to_arena()
        out2 = np.empty(p.numel, dtype=np.float64)
        np.testing.assert_array_equal(arena_p.pack_into(out2), out)

    def test_setitem_rebinding_detaches_arena(self):
        p = _struct([(2,), (3,)]).to_arena()
        p["p0"] = np.ones(2)
        assert p.arena is None  # rebound array no longer lives in the arena
        assert np.all(p["p0"] == 1.0)

    def test_setitem_same_object_keeps_arena(self):
        """Augmented in-place assignment (params[k] -= x) must not detach."""
        p = _struct([(2,), (3,)]).to_arena()
        p["p0"] -= 0.5  # __setitem__ with the identical array object
        assert p.arena is not None

    def test_arena_fast_ops_match_legacy(self):
        rng = np.random.default_rng(1)
        a_legacy = _struct([(3, 2), (4,)], np.random.default_rng(2))
        b_legacy = _struct([(3, 2), (4,)], np.random.default_rng(3))
        a_arena = a_legacy.clone().to_arena()
        b_arena = b_legacy.clone().to_arena()
        a_legacy.add_(b_legacy, scale=0.25)
        a_arena.add_(b_arena, scale=0.25)
        assert a_legacy.max_abs_diff(a_arena) == 0.0
        a_legacy.scale_(0.5)
        a_arena.scale_(0.5)
        assert a_legacy.max_abs_diff(a_arena) == 0.0
        a_legacy.zero_()
        a_arena.zero_()
        assert a_legacy.max_abs_diff(a_arena) == 0.0

    def test_clone_of_arena_struct_is_deep_and_arena_backed(self):
        p = _struct([(2, 2)]).to_arena()
        q = p.clone()
        assert q.arena is not None and q.arena is not p.arena
        q["p0"][...] = 9.0
        assert p.max_abs_diff(q) != 0.0


class TestBufferPool:
    def test_acquire_release_reuses_buffers(self):
        from repro.nn.params import BufferPool

        pool = BufferPool()
        a = pool.acquire(8, np.float64)
        assert pool.misses == 1 and pool.hits == 0
        pool.release(a)
        b = pool.acquire(8, np.float64)
        assert np.shares_memory(a, b)  # recycled storage
        assert pool.hits == 1 and pool.allocations == 1

    def test_acquire_matches_size_and_dtype(self):
        from repro.nn.params import BufferPool

        pool = BufferPool()
        a = pool.acquire(8, np.float64)
        pool.release(a)
        # different numel or dtype must not reuse the freed buffer
        b = pool.acquire(4, np.float64)
        c = pool.acquire(8, np.float32)
        assert pool.misses == 3 and pool.hits == 0
        assert b.size == 4 and c.dtype == np.float32

    def test_stats_dict(self):
        from repro.nn.params import BufferPool

        pool = BufferPool()
        pool.release(pool.acquire(4, np.float64))
        d = pool.as_dict()
        assert d["allocations"] == 1
        assert d["releases"] == 1
        assert d["free_buffers"] == 1
        assert d["bytes_allocated"] == 32

    def test_to_arena_and_zeros_like_draw_from_pool(self):
        from repro.nn.params import BufferPool

        pool = BufferPool()
        p = _struct([(2, 3)]).to_arena(pool)
        assert pool.allocations == 1
        z = p.zeros_like(pool)
        assert pool.allocations == 2
        assert z.arena is not None and float(z.arena.sum()) == 0.0
        pool.release(p.arena)
        pool.release(z.arena)
        q = _struct([(2, 3)]).to_arena(pool)
        assert pool.allocations == 2 and pool.hits == 1
        assert q.arena is not None
