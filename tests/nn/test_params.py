"""ParamStruct: the chunk currency every strategy trades in."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.params import ParamStruct


def _struct(shapes, rng=None):
    rng = rng or np.random.default_rng(0)
    return ParamStruct(
        {f"p{i}": rng.normal(size=s) for i, s in enumerate(shapes)}
    )


class TestMapping:
    def test_insertion_order_preserved(self):
        p = ParamStruct({"b": np.zeros(1), "a": np.zeros(2)})
        assert p.keys() == ["b", "a"]

    def test_contains_len_iter(self):
        p = _struct([(2,), (3, 4)])
        assert "p0" in p and "zz" not in p
        assert len(p) == 2
        assert list(p) == ["p0", "p1"]

    def test_numel(self):
        assert _struct([(2,), (3, 4)]).numel == 14

    def test_nbytes_logical(self):
        assert _struct([(8,)]).nbytes(2) == 16


class TestArithmetic:
    def test_add_scaled(self):
        a = ParamStruct({"x": np.ones(3)})
        b = ParamStruct({"x": np.full(3, 2.0)})
        a.add_(b, scale=0.5)
        np.testing.assert_array_equal(a["x"], np.full(3, 2.0))

    def test_add_key_mismatch(self):
        a = ParamStruct({"x": np.ones(3)})
        b = ParamStruct({"y": np.ones(3)})
        with pytest.raises(KeyError):
            a.add_(b)

    def test_zero_and_scale(self):
        a = _struct([(4,)])
        a.scale_(0.0)
        np.testing.assert_array_equal(a["p0"], np.zeros(4))
        b = _struct([(4,)])
        b.zero_()
        np.testing.assert_array_equal(b["p0"], np.zeros(4))

    def test_clone_is_deep(self):
        a = _struct([(3,)])
        b = a.clone()
        b["p0"][0] = 999.0
        assert a["p0"][0] != 999.0


class TestPacking:
    def test_round_trip(self):
        a = _struct([(2, 3), (5,), (1, 1, 4)])
        flat = a.pack(dtype=np.float64)
        b = a.unpack_from(flat)
        assert a.allclose(b, rtol=0, atol=0)

    def test_pack_order_is_key_order(self):
        a = ParamStruct({"x": np.array([1.0, 2.0]), "y": np.array([3.0])})
        np.testing.assert_array_equal(a.pack(np.float64), [1.0, 2.0, 3.0])

    def test_unpack_size_mismatch(self):
        a = _struct([(4,)])
        with pytest.raises(ValueError):
            a.unpack_from(np.zeros(5))

    def test_empty_struct(self):
        e = ParamStruct()
        assert e.numel == 0
        assert e.pack().size == 0

    @given(
        shapes=st.lists(
            st.tuples(st.integers(1, 4), st.integers(1, 4)), min_size=1, max_size=5
        ),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_pack_unpack_identity(self, shapes, seed):
        a = _struct(shapes, np.random.default_rng(seed))
        b = a.unpack_from(a.pack(np.float64))
        assert a.max_abs_diff(b) == 0.0

    @given(
        n=st.integers(1, 30),
        scale=st.floats(-5, 5, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_add_scale_linear(self, n, scale):
        rng = np.random.default_rng(n)
        a = ParamStruct({"x": rng.normal(size=n)})
        b = ParamStruct({"x": rng.normal(size=n)})
        expected = a["x"] + scale * b["x"]
        a.add_(b, scale=scale)
        np.testing.assert_allclose(a["x"], expected, rtol=1e-12)


class TestComparison:
    def test_allclose_structure_mismatch(self):
        a = ParamStruct({"x": np.ones(2)})
        b = ParamStruct({"y": np.ones(2)})
        assert not a.allclose(b)

    def test_max_abs_diff(self):
        a = ParamStruct({"x": np.array([1.0, 2.0])})
        b = ParamStruct({"x": np.array([1.5, 2.0])})
        assert a.max_abs_diff(b) == 0.5

    def test_max_abs_diff_mismatch_raises(self):
        with pytest.raises(KeyError):
            ParamStruct({"x": np.ones(1)}).max_abs_diff(ParamStruct({"y": np.ones(1)}))
