"""Attention cores: causality, equivalence, gradients."""

import numpy as np

from repro.nn.attention import (
    attention_bwd,
    attention_fwd,
    flash_attention_bwd,
    flash_attention_fwd,
)
from repro.testing import assert_grad_close, numerical_grad

RNG = np.random.default_rng(11)


def _qkv(b=2, nh=2, s=6, hd=4):
    q = RNG.normal(size=(b, nh, s, hd))
    k = RNG.normal(size=(b, nh, s, hd))
    v = RNG.normal(size=(b, nh, s, hd))
    return q, k, v


class TestMaterialisedAttention:
    def test_causality(self):
        """Changing future keys/values must not affect earlier outputs."""
        q, k, v = _qkv(s=5)
        out1, _ = attention_fwd(q, k, v)
        k2, v2 = k.copy(), v.copy()
        k2[..., 3:, :] = RNG.normal(size=k2[..., 3:, :].shape)
        v2[..., 3:, :] = RNG.normal(size=v2[..., 3:, :].shape)
        out2, _ = attention_fwd(q, k2, v2)
        np.testing.assert_allclose(out1[..., :3, :], out2[..., :3, :])

    def test_first_token_attends_to_itself(self):
        q, k, v = _qkv()
        out, _ = attention_fwd(q, k, v)
        np.testing.assert_allclose(out[..., 0, :], v[..., 0, :])

    def test_grads(self):
        q, k, v = _qkv(b=1, nh=1, s=4, hd=4)
        dout = RNG.normal(size=q.shape)
        _, cache = attention_fwd(q, k, v)
        dq, dk, dv = attention_bwd(dout, cache)

        def make_loss(which):
            def loss(t):
                args = {"q": q, "k": k, "v": v}
                args[which] = t
                return float((attention_fwd(args["q"], args["k"], args["v"])[0] * dout).sum())

            return loss

        assert_grad_close(dq, numerical_grad(make_loss("q"), q), name="dq")
        assert_grad_close(dk, numerical_grad(make_loss("k"), k), name="dk")
        assert_grad_close(dv, numerical_grad(make_loss("v"), v), name="dv")


class TestFlashAttention:
    def test_matches_materialised(self):
        q, k, v = _qkv(s=10)
        ref, _ = attention_fwd(q, k, v)
        for block in (1, 3, 4, 16):
            out, _ = flash_attention_fwd(q, k, v, block=block)
            np.testing.assert_allclose(out, ref, atol=1e-12, err_msg=f"block={block}")

    def test_backward_matches_materialised(self):
        q, k, v = _qkv(s=9)
        dout = RNG.normal(size=q.shape)
        _, c_ref = attention_fwd(q, k, v)
        ref = attention_bwd(dout, c_ref)
        for block in (2, 5, 9):
            _, c = flash_attention_fwd(q, k, v, block=block)
            got = flash_attention_bwd(dout, c)
            for r, g, name in zip(ref, got, "qkv"):
                np.testing.assert_allclose(
                    g, r, atol=1e-11, err_msg=f"d{name}, block={block}"
                )

    def test_cache_has_no_quadratic_tensor(self):
        """The flash cache must not contain any (S, S) tensor."""
        q, k, v = _qkv(s=12)
        _, cache = flash_attention_fwd(q, k, v, block=4)
        s = q.shape[-2]
        for item in cache:
            if isinstance(item, np.ndarray):
                assert item.shape[-2:] != (s, s)

    def test_block_larger_than_seq(self):
        q, k, v = _qkv(s=3)
        ref, _ = attention_fwd(q, k, v)
        out, _ = flash_attention_fwd(q, k, v, block=64)
        np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_no_nan_on_long_rows(self):
        """Large score magnitudes must not overflow the streaming pass."""
        q, k, v = _qkv(s=8)
        out, _ = flash_attention_fwd(q * 30, k * 30, v, block=2)
        assert np.isfinite(out).all()
