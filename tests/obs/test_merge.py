"""Cross-process merge machinery: metrics fold, clock alignment, spills.

The process backend's children each hold a private MetricsRegistry and
Tracer; at join time the parent folds the registries (label-aware:
counters sum, gauges max-reduce, histograms combine bucket-wise) and
splices the per-rank trace spills onto its own clock via the launch-time
alignment handshake.  These tests pin each piece in isolation.
"""

import math

import pytest

from repro.obs.merge import (
    SPILL_SCHEMA,
    ClockAlignment,
    align_clock,
    dump_trace_spill,
    load_trace_spill,
    merge_trace_spill,
)
from repro.obs.metrics import METRICS_SCHEMA, MetricsRegistry
from repro.obs.tracer import Tracer


# -- metrics merge ------------------------------------------------------------


def test_counters_sum_across_registries():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("frames").add(3)
    b.counter("frames").add(4)
    a.merge(b.as_dict())
    assert a.value("frames") == 7.0


def test_merge_is_label_aware():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("sent", rank="0").add(1)
    b.counter("sent", rank="0").add(10)
    b.counter("sent", rank="1").add(100)
    a.merge(b.as_dict())
    assert a.value("sent", rank="0") == 11.0
    assert a.value("sent", rank="1") == 100.0
    assert a.total("sent", label="rank") == {"0": 11.0, "1": 100.0}


def test_gauges_max_reduce_value_and_high_water():
    a, b = MetricsRegistry(), MetricsRegistry()
    ga = a.gauge("depth")
    ga.set(5)
    ga.set(2)  # value 2, max 5
    gb = b.gauge("depth")
    gb.set(3)  # value 3, max 3
    a.merge(b.as_dict())
    assert a.gauge("depth").value == 3.0
    assert a.gauge("depth").max_value == 5.0


def test_histograms_combine_bucketwise():
    a, b = MetricsRegistry(), MetricsRegistry()
    bounds = (0.1, 1.0, 10.0)
    ha = a.histogram("lat", buckets=bounds)
    for v in (0.05, 0.5):
        ha.observe(v)
    hb = b.histogram("lat", buckets=bounds)
    for v in (5.0, 50.0, 0.01):
        hb.observe(v)
    a.merge(b.as_dict())
    h = a.histogram("lat", buckets=bounds)
    assert h.count == 5
    assert math.isclose(h.total, 55.56)
    assert h.min_value == 0.01
    assert h.max_value == 50.0
    assert sum(h.counts) == 5
    assert h.counts[-1] == 1  # the 50.0 overflow landed in +inf


def test_merge_creates_zero_valued_metrics():
    # the eager-zero contract: a quiet child's zero-valued counters must
    # appear (as zeros) in the merged registry, not be absent.
    a, b = MetricsRegistry(), MetricsRegistry()
    b.counter("fabric_retransmits")  # created, never incremented
    a.merge(b.as_dict())
    names = {m["name"] for m in a.as_dict()["metrics"]}
    assert "fabric_retransmits" in names
    assert a.value("fabric_retransmits") == 0.0


def test_merge_rejects_wrong_schema_and_bounds():
    a = MetricsRegistry()
    with pytest.raises(ValueError, match="schema"):
        a.merge({"schema": "bogus/v0", "metrics": []})
    a.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
    b = MetricsRegistry()
    b.histogram("lat", buckets=(5.0, 6.0)).observe(0.5)
    with pytest.raises(ValueError):
        a.merge(b.as_dict())


def test_process_transport_registry_is_eagerly_zeroed():
    from repro.runtime.transport.process import _EAGER_COUNTERS, _eager_registry

    reg = _eager_registry()
    names = {m["name"] for m in reg.as_dict()["metrics"]}
    for name in _EAGER_COUNTERS:
        assert name in names
        assert reg.value(name) == 0.0
    assert "ring_rejoins" in _EAGER_COUNTERS
    assert "detector_suspicions" in _EAGER_COUNTERS


# -- clock alignment ----------------------------------------------------------


def test_shared_clock_fast_path():
    # child sample inside [publish, observe]: same clock domain (Linux
    # fork shares CLOCK_MONOTONIC) -> zero offset, window-wide bound.
    al = align_clock(2, parent_publish=100.0, child_sample=100.4,
                     parent_observe=101.0)
    assert al.rank == 2
    assert al.offset_s == 0.0
    assert al.skew_bound_s == pytest.approx(1.0)
    assert al.method == "shared-clock"


def test_midpoint_fallback_for_foreign_clock():
    # child sample outside the bracket: a different clock domain.  The
    # midpoint estimate maps the sample to the centre of the parent's
    # window, with half the window as the bound.
    al = align_clock(0, parent_publish=100.0, child_sample=5.0,
                     parent_observe=102.0)
    assert al.method == "midpoint"
    assert al.offset_s == pytest.approx(96.0)  # 101.0 - 5.0
    assert al.skew_bound_s == pytest.approx(1.0)
    # applying the offset lands the sample inside the parent window.
    assert 100.0 <= 5.0 + al.offset_s <= 102.0


def test_alignment_serializes():
    al = ClockAlignment(1, 0.5, 0.01, "midpoint")
    d = al.as_dict()
    assert d == {"offset_s": 0.5, "skew_bound_s": 0.01, "method": "midpoint"}
    assert al.rank == 1


# -- trace spills -------------------------------------------------------------


def test_spill_roundtrip_and_offset_merge(tmp_path):
    child = Tracer(metadata={"role": "child"})
    rt = child.rank(1)
    rt.instant("send", "wire", {"dst": 0})
    with rt.span("F", "compute", {"slot": 3}):
        pass

    path = str(tmp_path / "trace-rank1.jsonl")
    dump_trace_spill(child, path, rank=1, clock_sample=123.0)
    spill = load_trace_spill(path)
    assert spill["header"]["schema"] == SPILL_SCHEMA
    assert spill["header"]["rank"] == 1
    assert spill["header"]["clock_sample"] == 123.0
    assert len(spill["events"]) == 2

    parent = Tracer()
    parent.epoch = 0.0
    n = merge_trace_spill(
        parent, spill, ClockAlignment(1, 10.0, 0.5, "midpoint")
    )
    assert n == 2
    evs = parent.events()
    assert {e["pid"] for e in evs} == {1}
    names = {e["name"] for e in evs}
    assert names == {"send", "F"}
    # the child's raw timestamps were shifted by the 10 s offset.
    raw_ts = sorted(e[3] for e in child.rank(1)._events)
    merged_ts = sorted(e["ts"] for e in evs)  # µs from epoch 0
    for got, raw in zip(merged_ts, raw_ts):
        assert got == pytest.approx((raw + 10.0) * 1e6, rel=1e-9)
    # the alignment is recorded in the parent tracer's metadata.
    assert parent.metadata["clock"]["1"]["method"] == "midpoint"


def test_load_spill_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"schema": "nope/v9", "rank": 0}\n')
    with pytest.raises(ValueError, match="schema"):
        load_trace_spill(str(path))
