"""MetricsRegistry unit tests: handle caching, kinds, export shape."""

import json

import pytest

from repro.obs import METRICS_SCHEMA, MetricsRegistry
from repro.obs.metrics import Counter, Histogram


class TestHandles:
    def test_counter_handles_are_interned_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("fabric_bytes_total", kind="F")
        b = reg.counter("fabric_bytes_total", kind="F")
        c = reg.counter("fabric_bytes_total", kind="B")
        assert a is b
        assert a is not c

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        assert reg.counter("m", a=1, b=2) is reg.counter("m", b=2, a=1)

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("m", rank=0)
        with pytest.raises(TypeError):
            reg.gauge("m", rank=0)

    def test_counter_add_and_value(self):
        reg = MetricsRegistry()
        reg.counter("msgs", kind="F").add(3)
        reg.counter("msgs", kind="F").add()
        assert reg.value("msgs", kind="F") == 4.0
        assert reg.value("never_touched") == 0.0

    def test_total_sums_and_groups(self):
        reg = MetricsRegistry()
        reg.counter("bytes", kind="F").add(10)
        reg.counter("bytes", kind="B").add(5)
        reg.counter("bytes", kind="F").add(2)
        assert reg.total("bytes") == 17.0
        assert reg.total("bytes", label="kind") == {"F": 12.0, "B": 5.0}

    def test_gauge_tracks_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("pool_allocations", rank=0)
        g.set(5)
        g.set(3)
        assert g.value == 3
        assert g.max_value == 5


class TestHistogram:
    def test_observe_accumulates_count_sum_bounds(self):
        reg = MetricsRegistry()
        h = reg.histogram("weipipe_wire_wait_seconds", rank=0)
        for v in (1e-5, 2e-3, 0.2):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(0.20201)
        assert h.mean == pytest.approx(h.total / 3)
        assert h.min_value == 1e-5
        assert h.max_value == 0.2

    def test_total_doubles_as_legacy_float(self):
        """``extra["wire_wait_s"]`` consumers read ``.total`` — the sum a
        plain float accumulator would have held."""
        h = Histogram("t", ())
        vals = [0.001, 0.01, 0.1]
        for v in vals:
            h.observe(v)
        assert h.total == pytest.approx(sum(vals))

    def test_bucket_assignment(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(0.1, 1.0))
        h.observe(0.05)   # le_0.1
        h.observe(0.5)    # le_1
        h.observe(100.0)  # le_inf
        snap = h.snapshot()
        assert snap["buckets"] == {"le_0.1": 1, "le_1": 1, "le_inf": 1}


class TestExport:
    def test_as_dict_schema_and_sorting(self):
        reg = MetricsRegistry()
        reg.counter("b_metric").add(1)
        reg.counter("a_metric", kind="F").add(2)
        doc = reg.as_dict()
        assert doc["schema"] == METRICS_SCHEMA
        names = [m["name"] for m in doc["metrics"]]
        assert names == sorted(names)
        a = doc["metrics"][0]
        assert a == {"name": "a_metric", "kind": "counter",
                     "labels": {"kind": "F"}, "value": 2.0}

    def test_dump_is_valid_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.histogram("h", rank=1).observe(0.5)
        path = tmp_path / "m.json"
        reg.dump(str(path))
        doc = json.loads(path.read_text())
        assert doc["metrics"][0]["kind"] == "histogram"

    def test_collect_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("fabric_bytes_total", kind="F")
        reg.counter("chaos_injections_total", fault="drop")
        got = reg.collect("fabric_")
        assert len(got) == 1
        assert isinstance(got[0], Counter)
        assert got[0].name == "fabric_bytes_total"
