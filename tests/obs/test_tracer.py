"""Tracer unit tests: event model, export shapes, null-object behavior."""

import json

import pytest

from repro.obs import (
    NULL_RANK_TRACER,
    NULL_TRACER,
    TRACE_SCHEMA,
    Tracer,
    validate_chrome_trace,
)
from repro.obs.tracer import _NULL_SPAN


class TestRecording:
    def test_span_context_manager_records_complete_event(self):
        tr = Tracer()
        buf = tr.rank(0)
        with buf.span("F", "compute", {"slot": 1}):
            pass
        events = list(tr.events())
        assert len(events) == 1
        (ev,) = events
        assert ev["ph"] == "X"
        assert ev["name"] == "F"
        assert ev["cat"] == "compute"
        assert ev["pid"] == 0
        assert ev["dur"] >= 0
        assert ev["args"] == {"slot": 1}

    def test_complete_uses_caller_clock_readings(self):
        tr = Tracer()
        tr.rank(2).complete("B", "compute", tr.epoch + 1.0, 0.5)
        (ev,) = tr.events()
        assert ev["ts"] == pytest.approx(1e6)
        assert ev["dur"] == pytest.approx(0.5e6)

    def test_instant_and_counter(self):
        tr = Tracer()
        buf = tr.rank(0)
        buf.instant("send", "comm", {"dst": 1})
        buf.counter("pool_allocations", 7)
        events = list(tr.events())
        assert [e["ph"] for e in events] == ["i", "C"]
        assert events[0]["s"] == "t"
        assert events[1]["args"] == {"value": 7}

    def test_rank_buffers_are_cached_per_pid_tid(self):
        tr = Tracer()
        assert tr.rank(3) is tr.rank(3)
        assert tr.rank(3) is not tr.rank(3, tid=1)

    def test_events_sorted_across_ranks(self):
        tr = Tracer()
        tr.rank(1).complete("b", "x", tr.epoch + 2.0, 0.1)
        tr.rank(0).complete("a", "x", tr.epoch + 1.0, 0.1)
        assert [e["name"] for e in tr.events()] == ["a", "b"]

    def test_tag_tuples_exported_as_lists(self):
        tr = Tracer()
        tr.rank(0).instant("send", "comm", {"tag": ("F", 0, 3)})
        (ev,) = tr.events()
        assert ev["args"]["tag"] == ["F", 0, 3]
        json.dumps(ev)  # round-trippable


class TestExport:
    def test_chrome_trace_shape_and_schema(self):
        tr = Tracer(metadata={"strategy": "weipipe-interleave"})
        with tr.rank(0).span("F", "compute"):
            pass
        with tr.rank(1).span("B", "compute"):
            pass
        doc = tr.chrome_trace()
        assert validate_chrome_trace(doc) == []
        assert doc["metadata"]["schema"] == TRACE_SCHEMA
        assert doc["metadata"]["strategy"] == "weipipe-interleave"
        names = [
            (e["pid"], e["args"]["name"])
            for e in doc["traceEvents"] if e["ph"] == "M"
        ]
        assert names == [(0, "rank 0"), (1, "rank 1")]

    def test_dump_and_load_roundtrip(self, tmp_path):
        tr = Tracer(metadata={"k": "v"})
        with tr.rank(0).span("F", "compute"):
            pass
        path = tmp_path / "t.json"
        tr.dump(str(path))
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []

    def test_dump_jsonl_header_plus_events(self, tmp_path):
        tr = Tracer(metadata={"k": "v"})
        tr.rank(0).instant("send", "comm")
        path = tmp_path / "t.jsonl"
        tr.dump_jsonl(str(path))
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0] == {"schema": TRACE_SCHEMA, "metadata": {"k": "v"}}
        assert len(lines) == 2
        assert lines[1]["name"] == "send"

    def test_validator_flags_bad_documents(self):
        assert validate_chrome_trace({"traceEvents": "nope"})
        bad = {
            "traceEvents": [{"ph": "X", "name": "f", "pid": 0, "tid": 0,
                             "ts": 0.0}],  # X without dur
            "metadata": {"schema": TRACE_SCHEMA},
        }
        assert any("dur" in p for p in validate_chrome_trace(bad))
        wrong_schema = {"traceEvents": [], "metadata": {"schema": "other"}}
        assert any("schema" in p for p in validate_chrome_trace(wrong_schema))


class TestNullTracer:
    """The off path must be allocation-free: every call returns a shared
    singleton or None (pinned by identity, not timing)."""

    def test_null_tracer_hands_out_shared_rank_buffer(self):
        assert NULL_TRACER.rank(0) is NULL_RANK_TRACER
        assert NULL_TRACER.rank(7, tid=3) is NULL_RANK_TRACER
        assert not NULL_TRACER.enabled
        assert not NULL_RANK_TRACER.enabled

    def test_null_span_is_one_shared_object(self):
        s1 = NULL_RANK_TRACER.span("F", "compute", {"x": 1})
        s2 = NULL_RANK_TRACER.span("B", "compute")
        assert s1 is s2 is _NULL_SPAN
        with s1:
            pass

    def test_null_methods_return_none_and_record_nothing(self):
        assert NULL_RANK_TRACER.complete("F", "c", 0.0, 1.0) is None
        assert NULL_RANK_TRACER.instant("i") is None
        assert NULL_RANK_TRACER.counter("c", 1.0) is None
        assert len(NULL_RANK_TRACER) == 0
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.chrome_trace()["traceEvents"] == []

    def test_null_types_have_no_instance_dict(self):
        with pytest.raises(AttributeError):
            NULL_RANK_TRACER.x = 1  # __slots__ = ()
