"""Flight recorder unit tests: ring semantics, bundles, rendering.

The recorder is the always-on black box (DESIGN.md §16): a bounded
preallocated ring per rank that the transports snapshot into a
``repro.postmortem/v1`` bundle when a launch dies.  These tests pin the
ring's overwrite/ordering contract, the event taxonomy's stability, the
bundle round-trip, and the renderer's merged causal timeline.
"""

import json
import os

import pytest

from repro.obs.flight import (
    DEFAULT_CAPACITY,
    EVENT_NAMES,
    EV_ABORT,
    EV_RECV,
    EV_SEND,
    EV_WORKER_ERROR,
    POSTMORTEM_SCHEMA,
    FlightBox,
    FlightRecorder,
    build_postmortem,
    dump_postmortem,
    load_postmortem,
    postmortem_dir,
    render_postmortem,
)


# -- ring semantics -----------------------------------------------------------


def test_ring_records_in_order_until_full():
    fr = FlightRecorder(0, capacity=8)
    assert len(fr) == 0
    assert fr.dropped == 0
    for i in range(5):
        fr.record(EV_SEND, a=i, b=i * 10)
    assert len(fr) == 5
    evs = fr.events()
    assert [e["a"] for e in evs] == [0, 1, 2, 3, 4]
    assert [e["b"] for e in evs] == [0, 10, 20, 30, 40]
    assert all(e["event"] == "send" for e in evs)
    ts = [e["ts"] for e in evs]
    assert ts == sorted(ts)


def test_ring_wraps_keeping_most_recent():
    fr = FlightRecorder(3, capacity=4)
    for i in range(11):
        fr.record(EV_RECV, a=i)
    assert len(fr) == 4
    assert fr.dropped == 7
    assert [e["a"] for e in fr.events()] == [7, 8, 9, 10]
    snap = fr.snapshot()
    assert snap["rank"] == 3
    assert snap["recorded"] == 11
    assert snap["dropped"] == 7
    assert len(snap["events"]) == 4


def test_ring_is_preallocated_and_in_place():
    # the hot path must not grow anything: the column arrays are the
    # same objects before and after a full wrap.
    fr = FlightRecorder(0, capacity=16)
    cols = (fr._ts, fr._code, fr._a, fr._b)
    for i in range(100):
        fr.record(EV_SEND, a=i, b=i)
    assert (fr._ts, fr._code, fr._a, fr._b) == cols
    assert all(c.shape == (16,) for c in cols)


def test_unknown_code_decodes_without_crashing():
    fr = FlightRecorder(0, capacity=4)
    fr.record(9999, a=1)
    assert fr.events()[0]["event"] == "event_9999"


def test_event_taxonomy_is_stable():
    # codes are part of the bundle format: unique, dense-ish, named.
    assert len(set(EVENT_NAMES)) == len(EVENT_NAMES)
    assert len(set(EVENT_NAMES.values())) == len(EVENT_NAMES)
    assert EVENT_NAMES[EV_SEND] == "send"
    assert EVENT_NAMES[EV_WORKER_ERROR] == "worker_error"
    assert min(EVENT_NAMES) == 1
    assert max(EVENT_NAMES) == len(EVENT_NAMES)  # append-only, no holes


def test_flightbox_snapshot_covers_every_rank():
    box = FlightBox(3, capacity=4)
    box.rank(1).record(EV_SEND, a=2)
    snap = box.snapshot()
    assert sorted(snap) == ["0", "1", "2"]
    assert snap["1"]["events"][0]["a"] == 2
    assert snap["0"]["events"] == []


# -- bundles ------------------------------------------------------------------


def _bundle():
    box = FlightBox(2, capacity=8)
    box.rank(0).record(EV_SEND, a=1, b=64)
    box.rank(1).record(EV_RECV, a=0, b=64)
    box.rank(1).record(EV_WORKER_ERROR, a=1)
    box.rank(1).record(EV_ABORT, a=1)
    return build_postmortem(
        "thread", 2, {"kind": "RuntimeError", "detail": "boom", "rank": 1},
        box.snapshot(),
        failed={1: ("raised RuntimeError", 3)},
        aborted="rank 1 raised",
        clock={"1": {"rank": 1, "offset_s": 0.0, "skew_bound_s": 1e-3,
                     "method": "shared-clock"}},
    )


def test_bundle_shape_and_roundtrip(tmp_path):
    bundle = _bundle()
    assert bundle["schema"] == POSTMORTEM_SCHEMA
    assert bundle["world"] == 2
    assert bundle["failed"] == {"1": ["raised RuntimeError", 3]}
    assert sorted(bundle["ranks"]) == ["0", "1"]

    path = dump_postmortem(bundle, str(tmp_path / "bundles"))
    assert os.path.exists(path)
    loaded = load_postmortem(path)
    assert loaded == json.loads(json.dumps(bundle))  # JSON-clean


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "something/else"}))
    with pytest.raises(ValueError, match="schema"):
        load_postmortem(str(path))


def test_postmortem_dir_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_POSTMORTEM_DIR", raising=False)
    assert postmortem_dir() is None
    monkeypatch.setenv("REPRO_POSTMORTEM_DIR", "/tmp/pm")
    assert postmortem_dir() == "/tmp/pm"
    monkeypatch.setenv("REPRO_POSTMORTEM_DIR", "   ")
    assert postmortem_dir() is None


def test_render_merges_ranks_causally():
    text = render_postmortem(_bundle(), last=10)
    assert "RuntimeError: boom" in text
    assert "failed rank 1" in text
    assert "shared-clock" in text
    assert "rank 0" in text and "rank 1" in text
    # the merged timeline lists events in aligned-time order: the send
    # happened before the recv, the worker_error before the abort.
    lines = [l for l in text.splitlines() if "ms  rank" in l]
    order = [l.split()[3] for l in lines]
    assert order.index("send") < order.index("recv")
    assert order.index("worker_error") < order.index("abort")


def test_render_handles_empty_bundle():
    bundle = build_postmortem("process", 1, {"kind": "timeout"}, {
        "0": {"rank": 0, "capacity": 0, "recorded": 0, "dropped": 0,
              "events": []},
    })
    text = render_postmortem(bundle)
    assert "no events recorded" in text
