"""Trace analyzer tests.

The golden-file test pins the arithmetic on a synthetic trace whose
bubble ratio is known by construction; the property tests run real
traced jobs and check the paper-level claims: per-turn traffic is
exactly ``2W + 1D`` for every (rank, iteration, turn), the interleave
schedule measures a smaller bubble than naive on the same workload, and
the calibrated cost model brackets the measured wall clock within the
documented tolerance on the zero-latency wire.
"""

import pytest

from repro.nn import ModelConfig
from repro.obs import (
    RATIO_TOL,
    TRACE_SCHEMA,
    WALL_TOL,
    Tracer,
    analyze_trace,
    load_trace,
    per_turn_chunks,
    reconcile,
)
from repro.parallel.common import TrainSpec
from repro.runtime import Fabric

US = 1e6  # seconds -> trace microseconds


def _span(pid, name, cat, start_s, dur_s, args=None):
    ev = {"ph": "X", "name": name, "cat": cat, "pid": pid, "tid": 0,
          "ts": start_s * US, "dur": dur_s * US}
    if args:
        ev["args"] = args
    return ev


def _send(pid, kind, it, turn, nbytes=100):
    return {"ph": "i", "name": "send", "cat": "comm", "pid": pid, "tid": 0,
            "ts": 0.0, "s": "t",
            "args": {"dst": (pid + 1) % 2, "kind": kind, "nbytes": nbytes,
                     "tag": [kind, it, turn]}}


def golden_trace():
    """Two ranks, one 10 s iteration each, bubble known by construction.

    * rank 0: compute [0,4) and [5,8) — 7 s busy -> bubble 0.3; the
      two compute spans overlap a nested update span [5,6) that must
      NOT double-count; wire wait [4,5) is fully inside rank 1's
      compute -> overlap fraction 1.0.
    * rank 1: compute [0,5) — 5 s busy -> bubble 0.5; wire wait [5,8)
      overlaps rank 0's compute only during [5,8) ∩ [5,8) = all of it.
    * rank 0 turns: 4 turns of 2 s each, one idle -> idle fraction 0.25.
    """
    events = [
        _span(0, "iteration", "iteration", 0.0, 10.0),
        _span(0, "F", "compute", 0.0, 4.0),
        _span(0, "B", "compute", 5.0, 3.0),
        _span(0, "update", "compute", 5.0, 1.0),  # nested: no double count
        _span(0, "wait:slots", "wire", 4.0, 1.0),
        _span(0, "turn", "turn", 0.0, 2.0, {"turn": 0, "idle": False}),
        _span(0, "turn", "turn", 2.0, 2.0, {"turn": 1, "idle": True}),
        _span(0, "turn", "turn", 4.0, 2.0, {"turn": 2, "idle": False}),
        _span(0, "turn", "turn", 6.0, 2.0, {"turn": 3, "idle": False}),
        _span(1, "iteration", "iteration", 0.0, 10.0),
        _span(1, "F", "compute", 0.0, 5.0),
        _span(1, "wait:D", "wire", 5.0, 3.0),
    ]
    # one full 2W+1D turn per rank
    for pid in (0, 1):
        for kind in ("F", "B", "D"):
            events.append(_send(pid, kind, 0, 1))
    return {"traceEvents": events, "metadata": {"schema": TRACE_SCHEMA}}


class TestGoldenTrace:
    def test_bubble_ratio_exact(self):
        ana = analyze_trace(golden_trace())
        assert ana["per_rank"][0]["bubble_ratio"] == pytest.approx(0.3)
        assert ana["per_rank"][1]["bubble_ratio"] == pytest.approx(0.5)
        assert ana["summary"]["bubble_ratio_mean"] == pytest.approx(0.4)
        assert ana["summary"]["bubble_ratio_max"] == pytest.approx(0.5)

    def test_nested_compute_spans_do_not_double_count(self):
        ana = analyze_trace(golden_trace())
        # update [5,6) sits inside B [5,8): union is 7 s, not 8.
        assert ana["per_rank"][0]["compute_s"] == pytest.approx(7.0)

    def test_idle_turn_fraction(self):
        ana = analyze_trace(golden_trace())
        r0 = ana["per_rank"][0]
        assert r0["turns"] == 4
        assert r0["idle_turns"] == 1
        assert r0["idle_turn_fraction"] == pytest.approx(0.25)

    def test_overlap_fraction(self):
        ana = analyze_trace(golden_trace())
        # rank 0 waits [4,5) under rank 1's compute [0,5): fully hidden.
        assert ana["per_rank"][0]["overlap_fraction"] == pytest.approx(1.0)
        # rank 1 waits [5,8) under rank 0's compute [5,8): fully hidden.
        assert ana["per_rank"][1]["overlap_fraction"] == pytest.approx(1.0)

    def test_critical_path_attribution(self):
        ana = analyze_trace(golden_trace())
        cp = ana["critical_path"]
        assert cp["rank"] in (0, 1)  # equal walls; either is valid
        assert cp["compute_s"] + cp["wire_wait_s"] + cp["other_s"] == (
            pytest.approx(cp["wall_s"])
        )

    def test_per_turn_chunks_uniform(self):
        pt = per_turn_chunks(golden_trace())
        assert pt["uniform_2w_1d"] is True
        assert pt["turns_observed"] == 2  # one (it, turn) group per rank
        assert pt["counts_min"] == {"F": 1, "B": 1, "D": 1}
        assert pt["bytes_by_kind"] == {"F": 200, "B": 200, "D": 200}

    def test_missing_chunk_breaks_uniformity(self):
        doc = golden_trace()
        doc["traceEvents"] = [
            e for e in doc["traceEvents"]
            if not (e["ph"] == "i" and e["pid"] == 1
                    and e["args"]["kind"] == "D")
        ]
        pt = per_turn_chunks(doc)
        assert pt["uniform_2w_1d"] is False
        assert pt["counts_min"]["D"] == 0

    def test_non_weipipe_trace_has_no_per_turn_section(self):
        doc = golden_trace()
        doc["traceEvents"] = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert per_turn_chunks(doc) is None

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            analyze_trace({"traceEvents": [], "metadata": {}})


def _traced_run(mode, iters=2, n_layers=4, world=2):
    from repro.core.weipipe import train_weipipe

    # compute per turn must dominate per-turn bookkeeping, or the
    # busy-fraction bubble comparison drowns in dispatch noise — hence
    # a config slightly larger than the usual test minimum.
    cfg = ModelConfig(hidden=32, n_layers=n_layers, n_heads=4, seq_len=32,
                      vocab=64)
    spec = TrainSpec(cfg=cfg, n_microbatches=8, microbatch_size=2,
                     iters=iters, seed=3)
    tracer = Tracer(metadata={
        "strategy": f"weipipe-{mode}", "mode": mode, "world": world,
        "recompute": spec.recompute, "overlap": True,
        "dims": {"hidden": cfg.hidden, "n_layers": cfg.n_layers,
                 "seq_len": cfg.seq_len, "microbatch": spec.microbatch_size,
                 "n_microbatches": spec.n_microbatches,
                 "n_heads": cfg.n_heads, "vocab": cfg.vocab},
    })
    train_weipipe(spec, world, mode=mode, fabric=Fabric(world, tracer=tracer))
    return tracer.chrome_trace(), spec


class TestMeasuredProperties:
    def test_per_turn_traffic_is_exactly_2w_1d(self):
        """Every (rank, iteration, turn) ships one F + one B + one D
        chunk — the paper's per-turn volume, measured off send instants
        rather than inferred from a byte ledger."""
        doc, spec = _traced_run("interleave")
        pt = per_turn_chunks(doc)
        assert pt is not None
        assert pt["uniform_2w_1d"] is True, (pt["counts_min"], pt["counts_max"])
        # interleave: (R+2)*P turns per iteration, every turn on each of
        # the P ranks ships the full complement.
        world = 2
        rounds = spec.n_microbatches // world
        turns_per_iter = (rounds + 2) * world
        expected = spec.iters * turns_per_iter * world
        assert pt["turns_observed"] == expected

    def test_interleave_measures_smaller_bubble_than_naive(self):
        doc_i, _ = _traced_run("interleave")
        doc_n, _ = _traced_run("naive")
        ana_i = analyze_trace(doc_i)
        ana_n = analyze_trace(doc_n)
        assert (ana_i["summary"]["bubble_ratio_mean"]
                < ana_n["summary"]["bubble_ratio_mean"])
        # the schedule-level signal is even cleaner: naive idles ~1/3 of
        # its turns, interleave almost none.
        assert (ana_i["summary"]["idle_turn_fraction_mean"]
                < ana_n["summary"]["idle_turn_fraction_mean"])

    def test_reconcile_within_documented_tolerance(self):
        doc, _ = _traced_run("interleave", iters=2)
        rec = reconcile(doc)
        cal = rec["calibration"]
        # calibration reproduces the measurement by construction
        assert cal["t_fwd_layer_model_s"] == pytest.approx(
            cal["t_fwd_layer_measured_s"]
        )
        wall = rec["iteration_wall"]
        assert wall["within_tolerance"], wall
        assert wall["tolerance_factor"] == WALL_TOL
        bf = rec["b_over_f"]
        assert bf["within_tolerance"], bf
        assert bf["tolerance"] == RATIO_TOL

    def test_reconcile_needs_metadata(self):
        doc, _ = _traced_run("interleave")
        doc["metadata"].pop("dims")
        with pytest.raises(ValueError):
            reconcile(doc)

    def test_load_trace_roundtrip(self, tmp_path):
        doc, _ = _traced_run("interleave", iters=1)
        import json

        path = tmp_path / "t.json"
        path.write_text(json.dumps(doc))
        loaded = load_trace(str(path))
        assert analyze_trace(loaded)["summary"] == analyze_trace(doc)["summary"]
