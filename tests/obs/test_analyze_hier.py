"""Golden-trace + reconciliation tests for topology-aware analysis.

A synthetic hierarchical trace (4 ranks in two groups) pins the
per-link-class arithmetic exactly — traffic split, wire-wait
attribution, and the self-calibrating cross-group reconciliation whose
measured/predicted ratio is 1.0 by construction.  A real traced
``weipipe-hier`` run then holds the documented WALL_TOL / RATIO_TOL /
HIER_TRAFFIC_TOL envelopes end to end.
"""

import pytest

from repro.nn import ModelConfig
from repro.obs import (
    HIER_TRAFFIC_TOL,
    TRACE_SCHEMA,
    WALL_TOL,
    Tracer,
    analyze_trace,
    link_traffic,
    reconcile,
)
from repro.parallel.common import TrainSpec
from repro.parallel.weipipe_hier import train_weipipe_hier
from repro.runtime import Fabric, Topology

US = 1e6  # seconds -> trace microseconds

GROUPS = [[0, 1], [2, 3]]

W_CHUNK = 1000  # intra-hop weight chunk bytes, by construction
D_CHUNK = 500  # gradient-accumulator chunk bytes
REF = 24  # weight-reference token bytes


def _span(pid, name, cat, start_s, dur_s, args=None):
    ev = {"ph": "X", "name": name, "cat": cat, "pid": pid, "tid": 0,
          "ts": start_s * US, "dur": dur_s * US}
    if args:
        ev["args"] = args
    return ev


def _send(pid, dst, kind, nbytes, it=0, turn=1):
    return {"ph": "i", "name": "send", "cat": "comm", "pid": pid, "tid": 0,
            "ts": 0.0, "s": "t",
            "args": {"dst": dst, "kind": kind, "nbytes": nbytes,
                     "tag": [kind, it, turn]}}


def golden_hier_trace():
    """4 ranks in groups [[0,1],[2,3]]; every number pinned below.

    Ring hops 0->1 and 2->3 are intra (full ``2W+1D``: 1000+1000+500
    bytes), hops 1->2 and 3->0 are inter (steady-state boundary
    complement ``2 ref + 1 D``: 24+24+500).  Wire waits: rank 0 waits
    2 s on its left neighbour 3 (inter, defaulted), rank 1 waits 1 s on
    rank 0 (intra, defaulted), rank 2 waits 1.5 s on an explicit
    ``src=1`` (inter), rank 3 waits 0.5 s on ``src=2`` (intra).
    """
    events = []
    for pid, compute_s in ((0, 6.0), (1, 5.0), (2, 7.0), (3, 4.0)):
        events.append(_span(pid, "iteration", "iteration", 0.0, 10.0))
        events.append(_span(pid, "F", "compute", 0.0, compute_s))
    events += [
        _span(0, "wait:slots", "wire", 6.0, 2.0),  # src defaults to 3
        _span(1, "wait:slots", "wire", 5.0, 1.0),  # src defaults to 0
        _span(2, "wait:D", "wire", 7.0, 1.5, {"src": 1}),
        _span(3, "wait:D", "wire", 4.0, 0.5, {"src": 2}),
    ]
    for src, dst in ((0, 1), (2, 3)):  # intra hops: full complement
        events += [
            _send(src, dst, "F", W_CHUNK),
            _send(src, dst, "B", W_CHUNK),
            _send(src, dst, "D", D_CHUNK),
        ]
    for src, dst in ((1, 2), (3, 0)):  # boundary hops: refs + D
        events += [
            _send(src, dst, "F", REF),
            _send(src, dst, "B", REF),
            _send(src, dst, "D", D_CHUNK),
        ]
    return {
        "traceEvents": events,
        "metadata": {
            "schema": TRACE_SCHEMA,
            "strategy": "weipipe-hier",
            "world": 4,
            "overlap": True,
            "recompute": False,
            "topology": {"groups": GROUPS},
            "dims": {"hidden": 16, "n_layers": 4, "seq_len": 8,
                     "microbatch": 2, "n_microbatches": 4, "n_heads": 2,
                     "vocab": 29},
        },
    }


class TestGoldenLinkTraffic:
    def test_totals_pinned(self):
        lt = link_traffic(golden_hier_trace())
        assert lt["intra"] == {"bytes": 2 * (2 * W_CHUNK + D_CHUNK),
                               "messages": 6}
        assert lt["inter"] == {"bytes": 2 * (2 * REF + D_CHUNK),
                               "messages": 6}

    def test_by_kind_pinned(self):
        bk = link_traffic(golden_hier_trace())["by_kind"]
        assert bk["intra"]["F"] == {"bytes": 2 * W_CHUNK, "messages": 2}
        assert bk["intra"]["D"] == {"bytes": 2 * D_CHUNK, "messages": 2}
        assert bk["inter"]["F"] == {"bytes": 2 * REF, "messages": 2}
        assert bk["inter"]["D"] == {"bytes": 2 * D_CHUNK, "messages": 2}

    def test_none_without_topology_metadata(self):
        doc = golden_hier_trace()
        del doc["metadata"]["topology"]
        assert link_traffic(doc) is None

    def test_bare_groups_metadata_accepted(self):
        doc = golden_hier_trace()
        doc["metadata"] = {"groups": GROUPS, "world": 4}
        lt = link_traffic(doc)
        assert lt["inter"]["messages"] == 6


class TestGoldenWireAttribution:
    def test_per_rank_split_pinned(self):
        ana = analyze_trace(golden_hier_trace())
        pr = ana["per_rank"]
        # rank 0 waited on ring-left 3: a boundary hop.
        assert pr[0]["wire_wait_inter_s"] == pytest.approx(2.0)
        assert pr[0]["wire_wait_intra_s"] == pytest.approx(0.0)
        # rank 1 waited on ring-left 0: same group.
        assert pr[1]["wire_wait_intra_s"] == pytest.approx(1.0)
        assert pr[1]["wire_wait_inter_s"] == pytest.approx(0.0)
        # explicit src args win over the ring-left default.
        assert pr[2]["wire_wait_inter_s"] == pytest.approx(1.5)
        assert pr[3]["wire_wait_intra_s"] == pytest.approx(0.5)

    def test_summary_totals_pinned(self):
        s = analyze_trace(golden_hier_trace())["summary"]
        assert s["wire_wait_intra_s_total"] == pytest.approx(1.5)
        assert s["wire_wait_inter_s_total"] == pytest.approx(3.5)

    def test_flat_trace_has_no_split(self):
        doc = golden_hier_trace()
        del doc["metadata"]["topology"]
        ana = analyze_trace(doc)
        assert "wire_wait_intra_s" not in ana["per_rank"][0]
        assert "wire_wait_intra_s_total" not in ana["summary"]

    def test_link_traffic_rides_along_in_analysis(self):
        ana = analyze_trace(golden_hier_trace())
        assert ana["link_traffic"]["inter"]["messages"] == 6


class TestGoldenHierReconciliation:
    def test_ratio_is_exactly_one_by_construction(self):
        """The golden trace carries the steady-state complement on every
        boundary hop, so measured == predicted exactly."""
        rec = reconcile(golden_hier_trace())
        ht = rec["hier_traffic"]
        assert ht["w_chunk_bytes"] == pytest.approx(W_CHUNK)
        assert ht["d_chunk_bytes"] == pytest.approx(D_CHUNK)
        assert ht["predicted_steady_inter_bytes_per_turn"] == pytest.approx(
            D_CHUNK + 2 * REF
        )
        assert ht["predicted_flat_inter_bytes_per_turn"] == pytest.approx(
            2 * W_CHUNK + D_CHUNK
        )
        assert ht["measured_inter_bytes_per_turn"] == pytest.approx(
            D_CHUNK + 2 * REF
        )
        assert ht["ratio"] == pytest.approx(1.0)
        assert ht["within_tolerance"] is True
        assert ht["tolerance_factor"] == HIER_TRAFFIC_TOL

    def test_flat_strategy_gets_no_hier_section(self):
        doc = golden_hier_trace()
        doc["metadata"]["strategy"] = "weipipe-interleave"
        assert "hier_traffic" not in reconcile(doc)

    def test_bloated_boundary_traffic_flagged(self):
        """Full weight chunks still crossing in steady state must fail
        the tolerance check — that is the regression the gate exists
        to catch."""
        doc = golden_hier_trace()
        for ev in doc["traceEvents"]:
            args = ev.get("args") or {}
            if (ev.get("name") == "send" and args.get("nbytes") == REF):
                args["nbytes"] = W_CHUNK  # boundary hop ships full W again
        ht = reconcile(doc)["hier_traffic"]
        assert ht["ratio"] > HIER_TRAFFIC_TOL
        assert ht["within_tolerance"] is False


def _traced_hier_run(iters=2):
    cfg = ModelConfig(hidden=32, n_layers=4, n_heads=4, seq_len=32, vocab=64)
    spec = TrainSpec(cfg=cfg, n_microbatches=8, microbatch_size=2,
                     iters=iters, seed=3)
    topo = Topology.grid(4, "2x2")
    tracer = Tracer(metadata={
        "strategy": "weipipe-hier", "mode": "interleave", "world": 4,
        "recompute": spec.recompute, "overlap": True,
        "topology": topo.as_dict(),
        "dims": {"hidden": cfg.hidden, "n_layers": cfg.n_layers,
                 "seq_len": cfg.seq_len, "microbatch": spec.microbatch_size,
                 "n_microbatches": spec.n_microbatches,
                 "n_heads": cfg.n_heads, "vocab": cfg.vocab},
    })
    fabric = Fabric(4, tracer=tracer, topology=topo)
    train_weipipe_hier(spec, 4, topology=topo, fabric=fabric)
    return tracer.chrome_trace(), fabric


class TestTracedHierRun:
    def test_reconcile_holds_documented_tolerances(self):
        doc, _ = _traced_hier_run()
        rec = reconcile(doc)
        wall = rec["iteration_wall"]
        assert wall["within_tolerance"], wall
        assert (1.0 / WALL_TOL) <= wall["ratio"] <= WALL_TOL
        ht = rec["hier_traffic"]
        assert ht["within_tolerance"], ht
        # steady-state floor, inflated only by the amortised first
        # revolution — and always under the flat ring's volume.
        assert 1.0 <= ht["ratio"] <= HIER_TRAFFIC_TOL
        assert (ht["measured_inter_bytes_per_turn"]
                < ht["predicted_flat_inter_bytes_per_turn"])

    def test_trace_traffic_matches_fabric_ledger(self):
        """Two independent measurements of the same wire — send instants
        in the trace vs the fabric's locked counters — must agree."""
        doc, fabric = _traced_hier_run()
        lt = link_traffic(doc)
        ledger = fabric.link_traffic()
        for cls in ("intra", "inter"):
            assert lt[cls]["bytes"] == ledger[cls]["bytes"]
            assert lt[cls]["messages"] == ledger[cls]["messages"]

    def test_wire_attribution_present_for_all_ranks(self):
        doc, _ = _traced_hier_run()
        ana = analyze_trace(doc)
        for pid in range(4):
            assert "wire_wait_intra_s" in ana["per_rank"][pid]
            assert "wire_wait_inter_s" in ana["per_rank"][pid]
