"""Tracing must be opt-in and free when off.

Two contracts, both load-bearing for "always-available observability":

* **bit-exactness** — a traced run produces identical losses and
  weights to an untraced run, for every strategy and precision.  The
  tracer only reads clocks and appends tuples; it must never perturb
  numerics or message order.
* **zero cost when off** — the null tracer's hot-path methods allocate
  nothing (pinned with tracemalloc), and the PR-3 steady-state pool
  allocation gate holds unchanged when tracing is ON (the tracer
  itself acquires no pooled buffers).
"""

import tracemalloc

import pytest

import repro.obs.tracer as tracer_mod
from repro.core.weipipe import train_weipipe
from repro.nn import FP32, FP64, ModelConfig
from repro.obs import NULL_RANK_TRACER, NULL_TRACER, Tracer
from repro.parallel.common import TrainSpec
from repro.runtime import Fabric


def _spec(precision=FP64, iters=2):
    cfg = ModelConfig(hidden=8, n_layers=8, n_heads=2, seq_len=8, vocab=16)
    return TrainSpec(
        cfg=cfg, n_microbatches=4, microbatch_size=2, iters=iters,
        seed=3, precision=precision,
    )


def _assert_identical(a, b):
    assert a.losses == b.losses
    for ca, cb in zip(a.chunks, b.chunks):
        assert ca.max_abs_diff(cb) == 0.0


class TestBitExactness:
    @pytest.mark.parametrize("mode", ["naive", "interleave", "zero-bubble"])
    @pytest.mark.parametrize("precision", [FP32, FP64], ids=["fp32", "fp64"])
    def test_traced_weipipe_equals_untraced(self, mode, precision):
        spec = _spec(precision=precision)
        plain = train_weipipe(spec, 4, mode=mode, fabric=Fabric(4))
        traced = train_weipipe(
            spec, 4, mode=mode, fabric=Fabric(4, tracer=Tracer())
        )
        _assert_identical(plain, traced)

    @pytest.mark.parametrize("overlap", [False, True], ids=["sync", "overlap"])
    def test_traced_equals_untraced_both_engines(self, overlap):
        spec = _spec()
        plain = train_weipipe(
            spec, 4, mode="interleave", fabric=Fabric(4), overlap=overlap
        )
        traced = train_weipipe(
            spec, 4, mode="interleave", fabric=Fabric(4, tracer=Tracer()),
            overlap=overlap,
        )
        _assert_identical(plain, traced)

    @pytest.mark.parametrize(
        "strategy,world",
        [("1f1b", 4), ("gpipe", 4), ("zb1", 4), ("fsdp", 4), ("serial", 1)],
    )
    def test_traced_equals_untraced_other_strategies(self, strategy, world):
        from repro import train

        spec = _spec()
        plain = train(spec, strategy, world, fabric=Fabric(world))
        traced = train(
            spec, strategy, world, fabric=Fabric(world, tracer=Tracer())
        )
        _assert_identical(plain, traced)

    def test_traced_run_actually_records(self):
        tr = Tracer()
        train_weipipe(_spec(), 4, mode="interleave", fabric=Fabric(4, tracer=tr))
        events = list(tr.events())
        assert events
        names = {e["name"] for e in events}
        assert {"iteration", "turn", "F", "B", "send", "update"} <= names


class TestZeroCostWhenOff:
    def test_untraced_fabric_defaults_to_null_tracer(self):
        fab = Fabric(2)
        assert fab.tracer is NULL_TRACER
        assert fab.tracer.rank(0) is NULL_RANK_TRACER

    def test_null_hot_path_allocates_nothing(self):
        """Steady-state null-tracer calls must not allocate: tracemalloc
        sees zero bytes attributed to the tracer module across 10k
        iterations of the hot-path call mix."""
        buf = NULL_TRACER.rank(0)
        # warm up any lazy interning outside the measured window
        for _ in range(10):
            with buf.span("F", "compute"):
                pass
            buf.complete("B", "compute", 0.0, 1.0)
            buf.instant("send", "comm")
            buf.counter("c", 1.0)
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(10_000):
                with buf.span("F", "compute"):
                    pass
                buf.complete("B", "compute", 0.0, 1.0)
                buf.instant("send", "comm")
                buf.counter("c", 1.0)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = after.filter_traces(
            [tracemalloc.Filter(True, tracer_mod.__file__)]
        ).compare_to(
            before.filter_traces(
                [tracemalloc.Filter(True, tracer_mod.__file__)]
            ),
            "filename",
        )
        grown = sum(s.size_diff for s in stats if s.size_diff > 0)
        assert grown == 0, f"null tracer allocated {grown} bytes"

    def test_pool_allocation_gate_holds_with_tracing_on(self):
        """The PR-3 gate, extended: the traced overlap engine reaches
        the same pooled-buffer steady state as the untraced one."""
        spec = _spec(iters=5)
        result = train_weipipe(
            spec, 4, mode="interleave",
            fabric=Fabric(4, tracer=Tracer()), overlap=True,
        )
        allocs = result.extra["pool_allocs_by_iter"]
        assert allocs[0] > 0
        assert allocs == sorted(allocs)
        assert allocs[-1] - allocs[0] <= 2, allocs
