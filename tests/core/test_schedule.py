"""Properties of the WeiPipe turn schedules (Figures 1 & 2).

These are pure functions, so we can exhaustively verify the invariants
the worker engine relies on:

* completeness — every (slot, microbatch) pair is forwarded exactly once
  and backwarded exactly once;
* flow consistency — a task's slot always equals the slot the ring
  placement law says the worker is holding that turn;
* ordering — forwards see slots 0..P-1 in order, backwards in reverse,
  and a microbatch's backward starts only after its forward finished;
* the bubble structure that separates Naive from Interleave.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import (
    bwd_home,
    bwd_slot_held,
    fwd_home,
    fwd_slot_held,
    interleave_schedule,
    naive_schedule,
    slot_owner,
)

SCHEDULES = {"naive": naive_schedule, "interleave": interleave_schedule}


def collect(schedule, world, n_mb):
    total, fn = schedule(world, n_mb)
    fwd, bwd = {}, {}
    for p in range(world):
        for t in range(total):
            task = fn(p, t)
            if task.fwd:
                slot, mb = task.fwd
                fwd.setdefault(mb, []).append((t, p, slot))
            if task.bwd:
                slot, mb = task.bwd
                bwd.setdefault(mb, []).append((t, p, slot))
    return total, fwd, bwd


class TestPlacementLaw:
    def test_homes_are_inverse(self):
        for p_ in (1, 2, 4, 8):
            for j in range(p_):
                assert fwd_slot_held(fwd_home(j, p_), 0, p_) == j
                assert bwd_slot_held(bwd_home(j, p_), 0, p_) == j

    def test_owner_is_bwd_home(self):
        for p_ in (2, 4):
            for j in range(p_):
                assert slot_owner(j, p_) == bwd_home(j, p_)

    def test_slots_rotate_plus_one(self):
        p_ = 4
        for t in range(12):
            for j in range(p_):
                # worker holding slot j at t+1 is successor of holder at t
                holder_t = next(
                    w for w in range(p_) if fwd_slot_held(w, t, p_) == j
                )
                holder_t1 = next(
                    w for w in range(p_) if fwd_slot_held(w, t + 1, p_) == j
                )
                assert holder_t1 == (holder_t + 1) % p_


@pytest.mark.parametrize("name", list(SCHEDULES))
@pytest.mark.parametrize("world,n_mb", [(1, 2), (2, 4), (4, 4), (4, 8), (3, 9)])
class TestScheduleInvariants:
    def test_completeness(self, name, world, n_mb):
        _, fwd, bwd = collect(SCHEDULES[name], world, n_mb)
        assert set(fwd) == set(range(n_mb))
        assert set(bwd) == set(range(n_mb))
        for mb in range(n_mb):
            assert sorted(s for _, _, s in fwd[mb]) == list(range(world))
            assert sorted(s for _, _, s in bwd[mb]) == list(range(world))

    def test_single_worker_per_microbatch(self, name, world, n_mb):
        _, fwd, bwd = collect(SCHEDULES[name], world, n_mb)
        for mb in range(n_mb):
            assert {p for _, p, _ in fwd[mb]} == {mb % world}
            assert {p for _, p, _ in bwd[mb]} == {mb % world}

    def test_forward_order_then_backward_reverse(self, name, world, n_mb):
        _, fwd, bwd = collect(SCHEDULES[name], world, n_mb)
        for mb in range(n_mb):
            f = sorted(fwd[mb])
            assert [s for _, _, s in f] == list(range(world))
            b = sorted(bwd[mb])
            assert [s for _, _, s in b] == list(range(world - 1, -1, -1))
            assert f[-1][0] < b[0][0]  # backward starts after forward done

    def test_flow_consistency(self, name, world, n_mb):
        total, fn = SCHEDULES[name](world, n_mb)
        for p in range(world):
            for t in range(total):
                task = fn(p, t)
                if task.fwd:
                    assert task.fwd[0] == fwd_slot_held(p, t, world)
                if task.bwd:
                    assert task.bwd[0] == bwd_slot_held(p, t, world)

    def test_total_turns_multiple_of_world(self, name, world, n_mb):
        total, _ = SCHEDULES[name](world, n_mb)
        assert total % world == 0

    def test_out_of_range_turns_idle(self, name, world, n_mb):
        total, fn = SCHEDULES[name](world, n_mb)
        assert fn(0, -1).idle and fn(0, total).idle


class TestBubbleStructure:
    def test_interleave_steady_state_has_no_idle_turns(self):
        """Between fill and drain, every worker computes every turn."""
        world, n_mb = 4, 16
        total, fn = interleave_schedule(world, n_mb)
        for p in range(world):
            busy_turns = [t for t in range(total) if not fn(p, t).idle]
            first, last = busy_turns[0], busy_turns[-1]
            assert busy_turns == list(range(first, last + 1))

    def test_interleave_fill_is_rank_turns(self):
        world, n_mb = 4, 8
        _, fn = interleave_schedule(world, n_mb)
        for p in range(world):
            for t in range(p):
                assert fn(p, t).idle
            assert not fn(p, p).idle

    def test_naive_has_interround_bubbles(self):
        """Naive wastes turns: a worker is idle while others backward."""
        world, n_mb = 4, 4
        total, fn = naive_schedule(world, n_mb)
        idle = sum(fn(p, t).idle for p in range(world) for t in range(total))
        # each worker computes 2P turns out of 3P
        assert idle == world * (total - 2 * world)
        assert idle > 0

    def test_interleave_fewer_turns_than_naive(self):
        world, n_mb = 4, 16
        t_naive, _ = naive_schedule(world, n_mb)
        t_inter, _ = interleave_schedule(world, n_mb)
        assert t_inter < t_naive

    def test_interleave_steady_turns_do_both_passes(self):
        world, n_mb = 4, 16
        total, fn = interleave_schedule(world, n_mb)
        both = sum(
            1
            for p in range(world)
            for t in range(total)
            if fn(p, t).fwd and fn(p, t).bwd
        )
        # R-1 overlapped rounds of P turns per worker
        rounds = n_mb // world
        assert both == world * (rounds - 1) * world


class TestValidation:
    def test_indivisible_microbatches_rejected(self):
        with pytest.raises(ValueError):
            naive_schedule(4, 6)
        with pytest.raises(ValueError):
            interleave_schedule(4, 7)


@given(world=st.integers(1, 6), rounds=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_property_schedules_complete(world, rounds):
    n_mb = world * rounds
    for schedule in SCHEDULES.values():
        _, fwd, bwd = collect(schedule, world, n_mb)
        assert set(fwd) == set(range(n_mb)) == set(bwd)
        for mb in range(n_mb):
            assert len(fwd[mb]) == world and len(bwd[mb]) == world
