"""Functional WeiPipe-zero-bubble: the paper's §4.3 concept, implemented.

The paper describes WZB1/WZB2 but leaves implementation "for future
exploration".  ``weipipe-zb`` realises the idea on the functional
runtime: B passes on the critical path, W passes deferred one full ring
revolution to when the slot's gradient accumulator next passes through.
These tests pin down both the schedule algebra and the numerics.
"""

import numpy as np
import pytest

from repro import FP64, AdamW, ModelConfig, TrainSpec, train
from repro.core.schedule import (
    bwd_slot_held,
    interleave_schedule,
    zero_bubble_schedule,
)

CFG = ModelConfig(hidden=16, n_layers=4, n_heads=2, seq_len=8, vocab=29)


def _spec(**kw):
    base = dict(cfg=CFG, n_microbatches=8, microbatch_size=2, iters=2, precision=FP64)
    base.update(kw)
    return TrainSpec(**base)


class TestZeroBubbleSchedule:
    @pytest.mark.parametrize("world,n_mb", [(1, 2), (2, 4), (4, 8), (4, 16)])
    def test_every_b_gets_exactly_one_w(self, world, n_mb):
        total, fn = zero_bubble_schedule(world, n_mb)
        bs, ws = set(), set()
        for p in range(world):
            for t in range(total):
                task = fn(p, t)
                if task.bwd:
                    assert task.bwd not in bs
                    bs.add(task.bwd)
                if task.wpass:
                    assert task.wpass not in ws
                    ws.add(task.wpass)
        assert bs == ws
        assert len(bs) == n_mb * world  # every (slot, mb) pair

    @pytest.mark.parametrize("world,n_mb", [(2, 4), (4, 8)])
    def test_w_exactly_one_revolution_after_b(self, world, n_mb):
        total, fn = zero_bubble_schedule(world, n_mb)
        b_turn, w_turn = {}, {}
        for p in range(world):
            for t in range(total):
                task = fn(p, t)
                if task.bwd:
                    b_turn[task.bwd] = (p, t)
                if task.wpass:
                    w_turn[task.wpass] = (p, t)
        for key, (pb, tb) in b_turn.items():
            pw, tw = w_turn[key]
            assert pw == pb  # W pass on the same worker
            assert tw == tb + world  # exactly one ring revolution later

    def test_wpass_slot_alignment(self):
        """The deferred W pass must coincide with its slot's D arrival."""
        world, n_mb = 4, 8
        total, fn = zero_bubble_schedule(world, n_mb)
        for p in range(world):
            for t in range(total):
                task = fn(p, t)
                if task.wpass:
                    assert task.wpass[0] == bwd_slot_held(p, t, world)

    def test_one_extra_revolution(self):
        world, n_mb = 4, 8
        t_inter, _ = interleave_schedule(world, n_mb)
        t_zb, _ = zero_bubble_schedule(world, n_mb)
        assert t_zb == t_inter + world


class TestZeroBubbleNumerics:
    def test_matches_serial(self):
        ref = train(_spec(), "serial", 1)
        got = train(_spec(), "weipipe-zb", 4)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-9)
        for a, b in zip(got.chunks, ref.chunks):
            assert a.max_abs_diff(b) < 1e-9

    def test_matches_interleave_exactly(self):
        """Same arithmetic, different pass ordering: decoupled B+W must
        reproduce the fused backward bit-for-bit."""
        inter = train(_spec(), "weipipe-interleave", 4)
        zb = train(_spec(), "weipipe-zb", 4)
        np.testing.assert_array_equal(zb.losses, inter.losses)
        for a, b in zip(zb.chunks, inter.chunks):
            assert a.max_abs_diff(b) == 0.0

    def test_with_adamw(self):
        mk = lambda: AdamW(lr=1e-2, weight_decay=0.01)
        ref = train(_spec(make_optimizer=mk, iters=3), "serial", 1)
        got = train(_spec(make_optimizer=mk, iters=3), "weipipe-zb", 4)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-8)

    def test_with_recompute(self):
        """Unlike classical ZB, the ring variant tolerates recomputation
        (bwd_input rebuilds and returns the cache for the W pass) —
        pointless for memory but numerically sound."""
        ref = train(_spec(recompute=True), "serial", 1)
        got = train(_spec(recompute=True), "weipipe-zb", 4)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-9)

    def test_two_layers_per_slot(self):
        cfg = CFG.with_(n_layers=8)
        spec = _spec(cfg=cfg, n_microbatches=4, iters=1)
        ref = train(spec, "serial", 1)
        got = train(spec, "weipipe-zb", 4)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-9)


class TestZeroBubbleLiveness:
    def test_pending_w_bounded_by_one_model(self):
        """At most one full model's worth of chunks awaits W passes —
        the ~1.5x activation liveness the paper predicts for WZB1."""
        got = train(_spec(n_microbatches=16), "weipipe-zb", 4)
        for rank, peak in got.extra["peak_pending_w"].items():
            assert peak <= CFG.n_layers + CFG.n_layers // 4

    def test_interleave_has_no_pending_w(self):
        got = train(_spec(), "weipipe-interleave", 4)
        assert all(v == 0 for v in got.extra["peak_pending_w"].values())
