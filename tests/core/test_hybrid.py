"""2-D WeiPipe x DP hybrid: equivalence in every grid shape."""

import numpy as np
import pytest

from repro import FP64, AdamW, ModelConfig, TrainSpec, train
from repro.core.hybrid import train_weipipe_dp
from repro.runtime import Fabric

CFG = ModelConfig(hidden=16, n_layers=4, n_heads=2, seq_len=8, vocab=29)


def _spec(**kw):
    base = dict(cfg=CFG, n_microbatches=8, microbatch_size=2, iters=2, precision=FP64)
    base.update(kw)
    return TrainSpec(**base)


class TestHybridEquivalence:
    @pytest.mark.parametrize("ring,dp", [(2, 2), (4, 2), (2, 4), (4, 1), (1, 4)])
    def test_matches_serial(self, ring, dp):
        spec = _spec(n_microbatches=8 if (8 % (ring * dp) == 0) else ring * dp)
        ref = train(spec, "serial", 1)
        got = train_weipipe_dp(spec, ring_size=ring, dp_degree=dp)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-9)
        for a, b in zip(got.chunks, ref.chunks):
            assert a.max_abs_diff(b) < 1e-9

    def test_matches_pure_weipipe(self):
        spec = _spec()
        pure = train(spec, "weipipe-interleave", 4)
        hybrid = train_weipipe_dp(spec, ring_size=2, dp_degree=2)
        np.testing.assert_allclose(hybrid.losses, pure.losses, rtol=1e-9)
        for a, b in zip(hybrid.chunks, pure.chunks):
            assert a.max_abs_diff(b) < 1e-9

    def test_with_adamw_and_clipping(self):
        kw = dict(
            make_optimizer=lambda: AdamW(lr=1e-2, weight_decay=0.01),
            clip_norm=0.05,
            iters=3,
        )
        ref = train(_spec(**kw), "serial", 1)
        got = train_weipipe_dp(_spec(**kw), ring_size=2, dp_degree=2)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-8)
        for a, b in zip(got.chunks, ref.chunks):
            assert a.max_abs_diff(b) < 1e-8

    def test_validation(self):
        with pytest.raises(ValueError, match="n_layers"):
            train_weipipe_dp(_spec(), ring_size=3, dp_degree=2)
        with pytest.raises(ValueError, match="n_microbatches"):
            train_weipipe_dp(_spec(n_microbatches=4), ring_size=2, dp_degree=4)


class TestHybridCommunication:
    def test_dp_sync_is_weight_sized(self):
        """The replica sync moves weight-gradient bytes, not activations:
        hybrid total traffic is well below 2x a half-size ring's despite
        running two rings."""
        spec = _spec()
        f_ring = Fabric(2)
        train(spec, "weipipe-interleave", 2, fabric=f_ring)
        f_hybrid = Fabric(4)
        train_weipipe_dp(spec, ring_size=2, dp_degree=2, fabric=f_hybrid)
        # two rings move ~2x one ring's weight traffic (each over half
        # the microbatches -> fewer turns each) + a small D sync.
        assert f_hybrid.stats.bytes_total < 2.0 * f_ring.stats.bytes_total
