"""Experiment runners reproduce the paper's qualitative results.

These are the acceptance tests of the reproduction: each asserts a
*shape* from the paper's evaluation (who wins, where the OOMs fall,
how scaling curves bend) rather than an absolute number.
"""

import pytest

from repro.experiments import (
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_table,
    run_table4,
    table2_cluster,
    table3_cluster,
)
from repro.experiments.configs import STRATEGY_ORDER, exec_for, make_dims, zb_microbatch


@pytest.fixture(scope="module")
def table2_subset():
    rows = [(1024, 4096, 16), (2048, 8192, 8), (4096, 16384, 4)]
    return run_table("t2-subset", rows, table2_cluster())


@pytest.fixture(scope="module")
def table3_subset():
    rows = [(1024, 4096, 16), (4096, 16384, 4)]
    return run_table("t3-subset", rows, table3_cluster())


@pytest.fixture(scope="module")
def table4():
    return run_table4()


class TestTable2Shapes:
    def test_weipipe_wins_every_cell(self, table2_subset):
        t = table2_subset
        for row in t.rows:
            wp = t.throughput(row, "weipipe-interleave")
            for s in STRATEGY_ORDER:
                if s == "weipipe-interleave" or t.is_oom(row, s):
                    continue
                assert wp > t.throughput(row, s), (row, s)

    def test_weipipe_margin_grows_with_context(self, table2_subset):
        """+30%..80% vs the baselines at long context (paper abstract)."""
        t = table2_subset
        row = (4096, 16384, 4)
        wp = t.throughput(row, "weipipe-interleave")
        fsdp = t.throughput(row, "fsdp")
        assert wp / fsdp > 1.2

    def test_zb_oom_pattern(self, table2_subset):
        t = table2_subset
        assert not t.is_oom((1024, 4096, 16), "zb1")
        assert not t.is_oom((1024, 4096, 16), "zb2")
        assert t.is_oom((4096, 16384, 4), "zb1")
        assert t.is_oom((4096, 16384, 4), "zb2")

    def test_fsdp_falls_below_1f1b_at_large_h(self, table2_subset):
        """Paper row H=4096: FSDP's collectives scale with H^2 while the
        activation pipeline's messages scale with H."""
        t = table2_subset
        row = (4096, 16384, 4)
        assert t.throughput(row, "fsdp") < t.throughput(row, "1f1b")

    def test_fsdp_beats_1f1b_at_small_h(self, table2_subset):
        t = table2_subset
        row = (1024, 4096, 16)
        assert t.throughput(row, "fsdp") > t.throughput(row, "1f1b")

    def test_memory_order_small_h(self, table2_subset):
        """FSDP < WeiPipe (paper: fragmented vs ring buffers), both far
        below the ZB baselines."""
        t = table2_subset
        row = (1024, 4096, 16)
        assert t.memory_gb(row, "fsdp") < t.memory_gb(row, "weipipe-interleave")
        assert t.memory_gb(row, "weipipe-interleave") < t.memory_gb(row, "zb1")


class TestTable3Shapes:
    def test_weipipe_margin_widens_on_ethernet(self, table2_subset, table3_subset):
        """The communication-constrained environment amplifies WeiPipe's
        advantage over FSDP (paper: 31.7% -> 55.8% at the long rows)."""
        row = (4096, 16384, 4)
        t2_ratio = table2_subset.throughput(row, "weipipe-interleave") / table2_subset.throughput(row, "fsdp")
        t3_ratio = table3_subset.throughput(row, "weipipe-interleave") / table3_subset.throughput(row, "fsdp")
        assert t3_ratio > t2_ratio

    def test_weipipe_wins_long_context(self, table3_subset):
        row = (4096, 16384, 4)
        wp = table3_subset.throughput(row, "weipipe-interleave")
        assert wp > table3_subset.throughput(row, "1f1b")
        assert wp > table3_subset.throughput(row, "fsdp")


class TestTable4Shapes:
    def test_weipipe_loses_compute_bound_small_scale(self, table4):
        """Paper §6.1.3: on 8 NVLink GPUs, ZB and FSDP beat WeiPipe —
        the honest limitation."""
        row = (1024, 4096, 16)
        wp = table4.throughput(row, "weipipe-interleave")
        assert table4.throughput(row, "zb1") > wp
        assert table4.throughput(row, "fsdp") > wp

    def test_zb_wins_when_memory_allows(self, table4):
        row = (1024, 4096, 16)
        assert table4.throughput(row, "zb1") > table4.throughput(row, "1f1b")

    def test_weipipe_matches_1f1b(self, table4):
        """Similar bubble, negligible ring cost on NVLink."""
        row = (1024, 4096, 16)
        wp = table4.throughput(row, "weipipe-interleave")
        f = table4.throughput(row, "1f1b")
        assert abs(wp - f) / f < 0.05


class TestScalingFigures:
    def test_fig6_weipipe_most_stable_weak_scaling(self):
        r = run_figure6()
        wp_eff = r.scaling_efficiency("weipipe-interleave")
        for s in r.strategies:
            if s != "weipipe-interleave":
                assert wp_eff > r.scaling_efficiency(s), s
        assert wp_eff > 0.8

    def test_fig7_weipipe_highest_per_gpu_at_scale(self):
        r = run_figure7()
        at32 = {s: r.per_gpu_series(s)[-1] for s in r.strategies}
        assert at32["weipipe-interleave"] == max(at32.values())

    def test_fig8_weipipe_beats_1f1b_trend(self):
        r = run_figure8()
        assert r.scaling_efficiency("weipipe-interleave") > r.scaling_efficiency("1f1b")

    def test_fig9_weipipe_total_grows_monotonically(self):
        r = run_figure9()
        series = r.total_series("weipipe-interleave")
        assert series == sorted(series)
        # 1F1B's total at 32 GPUs trails WeiPipe's badly
        assert r.total_series("1f1b")[-1] < 0.75 * series[-1]


class TestConfigHelpers:
    def test_zb_microbatch_rule(self):
        assert zb_microbatch(4096) == 4
        assert zb_microbatch(8192) == 1
        assert zb_microbatch(16384) == 1

    def test_make_dims_equalises_global_batch(self):
        main = make_dims(1024, 8192, 8, 16, strategy="1f1b")
        zb = make_dims(1024, 8192, 8, 16, strategy="zb1")
        assert main.microbatch == 8 and zb.microbatch == 1
        assert main.n_microbatches * main.microbatch == zb.n_microbatches * zb.microbatch

    def test_make_dims_divisibility(self):
        for strat in STRATEGY_ORDER:
            d = make_dims(2048, 16384, 4, 16, strategy=strat)
            assert d.n_microbatches % 16 == 0

    def test_exec_rules(self):
        assert exec_for("1f1b").recompute and not exec_for("1f1b").overlap
        assert not exec_for("zb1").recompute
        assert exec_for("weipipe-interleave").overlap
        assert exec_for("weipipe-interleave").recompute
        assert not exec_for("weipipe-wzb2").recompute
