"""Schedule-specific behaviour of the pipeline baselines."""

import pytest

from repro import FP64, ModelConfig, TrainSpec, train
from repro.parallel.pipeline import stage_chunk_range

CFG = ModelConfig(hidden=16, n_layers=4, n_heads=2, seq_len=8, vocab=23)


def _spec(n_mb=8, **kw):
    return TrainSpec(
        cfg=CFG, n_microbatches=n_mb, microbatch_size=2, iters=1,
        precision=FP64, **kw
    )


class TestStagePartition:
    def test_contiguous_cover(self):
        ids = [list(stage_chunk_range(8, 4, r)) for r in range(4)]
        assert ids == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            stage_chunk_range(6, 4, 0)


class TestInflightLiveness:
    """GPipe holds all N microbatches; 1F1B holds at most P - rank."""

    def test_gpipe_peak_is_n(self):
        r = train(_spec(n_mb=8), "gpipe", 4)
        assert r.extra["peak_inflight"][0] == 8

    def test_1f1b_peak_is_depth_minus_rank(self):
        r = train(_spec(n_mb=8), "1f1b", 4)
        peaks = r.extra["peak_inflight"]
        for rank in range(4):
            assert peaks[rank] == 4 - rank

    def test_1f1b_beats_gpipe_on_liveness(self):
        g = train(_spec(n_mb=8), "gpipe", 4).extra["peak_inflight"][0]
        f = train(_spec(n_mb=8), "1f1b", 4).extra["peak_inflight"][0]
        assert f < g


class TestZeroBubbleLiveness:
    """ZB2 defers W passes ~twice as long as ZB1 — the memory price the
    paper's Table 2 exposes."""

    def test_zb2_pending_exceeds_zb1(self):
        z1 = train(_spec(n_mb=8), "zb1", 4).extra["peak_pending_w"][0]
        z2 = train(_spec(n_mb=8), "zb2", 4).extra["peak_pending_w"][0]
        assert z2 > z1

    def test_zb1_warmup_deeper_than_1f1b(self):
        f = train(_spec(n_mb=8), "1f1b", 4).extra["peak_inflight"][0]
        z = train(_spec(n_mb=8), "zb1", 4).extra["peak_inflight"][0]
        assert z >= f


class TestWeiPipeLiveness:
    def test_interleave_holds_at_most_two_microbatches(self):
        """Steady state: one forwarding + one backwarding microbatch."""
        r = train(_spec(n_mb=16), "weipipe-interleave", 4)
        assert max(r.extra["peak_inflight"].values()) <= 2

    def test_naive_holds_one(self):
        r = train(_spec(n_mb=8), "weipipe-naive", 4)
        assert max(r.extra["peak_inflight"].values()) == 1


class TestValidation:
    def test_weipipe_layer_divisibility(self):
        cfg = CFG.with_(n_layers=6)
        with pytest.raises(Exception):
            train(_spec(cfg=cfg), "weipipe-interleave", 4)

    def test_weipipe_microbatch_divisibility(self):
        with pytest.raises(ValueError):
            train(_spec(n_mb=6), "weipipe-interleave", 4)

    def test_dp_microbatch_divisibility(self):
        with pytest.raises(ValueError):
            train(_spec(n_mb=6), "dp", 4)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            train(_spec(), "megatron", 4)

    def test_serial_requires_one_worker(self):
        with pytest.raises(ValueError):
            train(_spec(), "serial", 4)

    def test_bad_pipeline_schedule(self):
        from repro.parallel.pipeline import train_pipeline

        with pytest.raises(Exception):
            train_pipeline(_spec(), 4, schedule="2f2b")
