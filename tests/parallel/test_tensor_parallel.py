"""Tensor parallelism: partitioning algebra, equivalence, comm profile."""

import numpy as np
import pytest

from repro import FP64, AdamW, ModelConfig, TrainSpec, train
from repro.nn import init_model
from repro.parallel.tensor_parallel import split_layer_weights
from repro.runtime import Fabric

CFG = ModelConfig(hidden=16, n_layers=3, n_heads=4, seq_len=8, vocab=29, ffn=16)


def _spec(**kw):
    base = dict(cfg=CFG, n_microbatches=4, microbatch_size=2, iters=2, precision=FP64)
    base.update(kw)
    return TrainSpec(**base)


class TestPartitioning:
    def test_column_split_covers(self):
        chunks = init_model(CFG)
        w = chunks[1]
        shards = [split_layer_weights(w, r, 2) for r in range(2)]
        np.testing.assert_array_equal(
            np.concatenate([s["wq"] for s in shards], axis=1), w["wq"]
        )
        np.testing.assert_array_equal(
            np.concatenate([s["w_gate"] for s in shards], axis=1), w["w_gate"]
        )

    def test_row_split_covers(self):
        chunks = init_model(CFG)
        w = chunks[1]
        shards = [split_layer_weights(w, r, 2) for r in range(2)]
        np.testing.assert_array_equal(
            np.concatenate([s["wo"] for s in shards], axis=0), w["wo"]
        )
        np.testing.assert_array_equal(
            np.concatenate([s["w_down"] for s in shards], axis=0), w["w_down"]
        )

    def test_norms_replicated(self):
        chunks = init_model(CFG)
        w = chunks[0]
        s0 = split_layer_weights(w, 0, 2)
        s1 = split_layer_weights(w, 1, 2)
        np.testing.assert_array_equal(s0["attn_norm"], w["attn_norm"])
        np.testing.assert_array_equal(s1["attn_norm"], w["attn_norm"])
        np.testing.assert_array_equal(s0["embed"], s1["embed"])

    def test_shard_parameter_budget(self):
        """Each shard holds the replicated params plus 1/P of the split
        ones — TP's per-worker memory claim."""
        chunks = init_model(CFG)
        w = chunks[1]
        shard = split_layer_weights(w, 0, 2)
        split_params = sum(
            w[n].size for n in ("wq", "wk", "wv", "wo", "w_gate", "w_up", "w_down")
        )
        repl = w.numel - split_params
        assert shard.numel == repl + split_params // 2

    def test_indivisible_heads_rejected(self):
        cfg = ModelConfig(hidden=18, n_layers=2, n_heads=3, seq_len=8, vocab=11, ffn=12)
        spec = TrainSpec(cfg=cfg, n_microbatches=2, microbatch_size=1, precision=FP64)
        with pytest.raises(Exception, match="heads"):
            train(spec, "tp", 2)


class TestEquivalence:
    @pytest.mark.parametrize("world", [2, 4])
    def test_matches_serial(self, world):
        ref = train(_spec(), "serial", 1)
        got = train(_spec(), "tp", world)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-10)
        for a, b in zip(got.chunks, ref.chunks):
            assert a.max_abs_diff(b) < 1e-10

    def test_with_adamw(self):
        mk = lambda: AdamW(lr=1e-2, weight_decay=0.01)
        ref = train(_spec(make_optimizer=mk), "serial", 1)
        got = train(_spec(make_optimizer=mk), "tp", 2)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-8)

    def test_flash_attention(self):
        cfg = CFG.with_(flash_attention=True, flash_block=4)
        ref = train(_spec(cfg=cfg), "serial", 1)
        got = train(_spec(cfg=cfg), "tp", 2)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-10)

    def test_recompute_rejected(self):
        with pytest.raises(ValueError, match="recomputation"):
            train(_spec(recompute=True), "tp", 2)


class TestCommunicationProfile:
    def test_tp_moves_far_more_than_weipipe(self):
        """The paper's related-work claim: TP's per-layer all-reduces of
        G*S*H activations dwarf the weight ring."""
        f_tp, f_wp = Fabric(4), Fabric(4)
        # a config where activations are big relative to weights
        cfg = ModelConfig(hidden=16, n_layers=4, n_heads=4, seq_len=64, vocab=29, ffn=16)
        spec = TrainSpec(cfg=cfg, n_microbatches=4, microbatch_size=4, precision=FP64)
        train(spec, "tp", 4, fabric=f_tp)
        train(spec, "weipipe-interleave", 4, fabric=f_wp)
        assert f_tp.stats.bytes_total > 2 * f_wp.stats.bytes_total

    def test_tp_comm_scales_with_layers_and_microbatches(self):
        def volume(n_layers, n_mb):
            cfg = CFG.with_(n_layers=n_layers)
            f = Fabric(2)
            spec = TrainSpec(
                cfg=cfg, n_microbatches=n_mb, microbatch_size=2, iters=1,
                precision=FP64,
            )
            train(spec, "tp", 2, fabric=f)
            return f.stats.bytes_total

        v = volume(2, 2)
        assert volume(4, 2) > 1.7 * v  # ~2x layers => ~2x all-reduces
        # doubling microbatches doubles the all-reduce traffic but not
        # the fixed final weight-merge, so the ratio lands below 2x
        assert volume(2, 4) > 1.5 * v
