"""Sequence parallelism: block attention, equivalence, comm scaling."""

import numpy as np
import pytest

from repro import FP64, AdamW, ModelConfig, TrainSpec, train
from repro.nn.attention import (
    attention_block_bwd,
    attention_block_fwd,
    attention_bwd,
    attention_fwd,
)
from repro.runtime import Fabric

CFG = ModelConfig(hidden=16, n_layers=3, n_heads=2, seq_len=16, vocab=29)
RNG = np.random.default_rng(8)


def _spec(**kw):
    base = dict(cfg=CFG, n_microbatches=4, microbatch_size=2, iters=2, precision=FP64)
    base.update(kw)
    return TrainSpec(**base)


class TestBlockAttention:
    def _qkv(self, s=8):
        return (
            RNG.normal(size=(2, 2, s, 4)),
            RNG.normal(size=(2, 2, s, 4)),
            RNG.normal(size=(2, 2, s, 4)),
        )

    def test_blocks_reassemble_full_forward(self):
        q, k, v = self._qkv()
        ref, _ = attention_fwd(q, k, v)
        for p in (1, 2, 4):
            blk = 8 // p
            outs = [
                attention_block_fwd(q[:, :, r * blk : (r + 1) * blk], k, v, r * blk)[0]
                for r in range(p)
            ]
            np.testing.assert_allclose(
                np.concatenate(outs, axis=2), ref, atol=1e-13, err_msg=f"P={p}"
            )

    def test_block_grads_sum_to_full_backward(self):
        q, k, v = self._qkv()
        ref, cref = attention_fwd(q, k, v)
        dout = RNG.normal(size=ref.shape)
        dq_ref, dk_ref, dv_ref = attention_bwd(dout, cref)
        blk = 2
        dqs, dk_sum, dv_sum = [], 0.0, 0.0
        for r in range(4):
            _, c = attention_block_fwd(q[:, :, r * blk : (r + 1) * blk], k, v, r * blk)
            dq, dk, dv = attention_block_bwd(dout[:, :, r * blk : (r + 1) * blk], c)
            dqs.append(dq)
            dk_sum = dk_sum + dk
            dv_sum = dv_sum + dv
        np.testing.assert_allclose(np.concatenate(dqs, axis=2), dq_ref, atol=1e-13)
        np.testing.assert_allclose(dk_sum, dk_ref, atol=1e-13)
        np.testing.assert_allclose(dv_sum, dv_ref, atol=1e-13)

    def test_offset_zero_square_equals_plain(self):
        q, k, v = self._qkv()
        a, _ = attention_fwd(q, k, v)
        b, _ = attention_block_fwd(q, k, v, 0)
        np.testing.assert_allclose(a, b, atol=1e-14)

    def test_invalid_offset(self):
        q, k, v = self._qkv()
        with pytest.raises(ValueError):
            attention_block_fwd(q[:, :, :4], k, v, 6)  # 6+4 > 8


class TestEquivalence:
    @pytest.mark.parametrize("world", [2, 4])
    def test_matches_serial(self, world):
        ref = train(_spec(), "serial", 1)
        got = train(_spec(), "sp", world)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-10)
        for a, b in zip(got.chunks, ref.chunks):
            assert a.max_abs_diff(b) < 1e-10

    def test_with_adamw_and_clipping(self):
        mk = lambda: AdamW(lr=1e-2, weight_decay=0.01)
        kw = dict(make_optimizer=mk, clip_norm=0.05)
        ref = train(_spec(**kw), "serial", 1)
        got = train(_spec(**kw), "sp", 4)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-8)

    def test_seq_divisibility(self):
        with pytest.raises(Exception, match="seq_len"):
            train(_spec(), "sp", 3)

    def test_recompute_rejected(self):
        with pytest.raises(ValueError, match="recomputation"):
            train(_spec(recompute=True), "sp", 2)


class TestCommunicationProfile:
    def _bytes(self, strategy, seq, world=4):
        # 4 layers so the WeiPipe ring divides evenly at world=4
        cfg = CFG.with_(seq_len=seq, n_layers=4)
        f = Fabric(world)
        spec = TrainSpec(
            cfg=cfg, n_microbatches=4, microbatch_size=2, iters=1, precision=FP64
        )
        train(spec, strategy, world, fabric=f)
        return f.stats.bytes_total

    def test_sp_comm_scales_with_sequence(self):
        """Gather-based SP ships K/V (and weight grads): the K/V part
        scales linearly with context length."""
        short = self._bytes("sp", 16)
        long = self._bytes("sp", 64)
        assert long > 1.5 * short

    def test_weipipe_flat_where_sp_grows(self):
        wp_short = self._bytes("weipipe-interleave", 16)
        wp_long = self._bytes("weipipe-interleave", 64)
        assert wp_long < 1.01 * wp_short
