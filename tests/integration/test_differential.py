"""The differential chaos harness, exercised end to end.

Two obligations:

* every strategy in the zoo is equivalent to serial under *many* chaos
  seeds (delivery-order robustness, the claim the happy-path
  equivalence suite cannot make);
* the harness has teeth: intentionally broken schedules — a wire with
  swapped ring tags, and a racy gradient exchange that trusts
  ``ready()`` — are caught, with the failing chaos seed named so
  ``python -m repro chaos-sweep`` can replay it.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.parallel.common import TrainResult, microbatch, pre_update
from repro.runtime import ChaosFabric, ChaosPolicy, Fabric, run_workers
from repro.testing import (
    DEFAULT_DIFFERENTIAL_STRATEGIES,
    DifferentialMismatch,
    default_differential_spec,
    run_differential,
)


class TestAllStrategiesUnderChaos:
    def test_twenty_seeds_across_the_whole_zoo(self):
        """The acceptance sweep: 8 strategies x 20 chaos seeds, all
        equivalent to serial in losses, final weights and accumulated
        weight updates."""
        report = run_differential(chaos_seeds=range(20))
        assert report.runs == len(DEFAULT_DIFFERENTIAL_STRATEGIES) * 20
        assert report.ok, report.summary()

    def test_aggressive_wire_smaller_sweep(self):
        """Crank every fault probability up on a few seeds."""
        policy = ChaosPolicy(
            delay_prob=1.0, max_delay=0.004, drop_prob=0.4,
            duplicate_prob=0.4, retry_delay=0.001,
        )
        report = run_differential(
            strategies={"weipipe-interleave": 4, "weipipe-zb": 4, "1f1b": 4},
            chaos_seeds=range(3),
            spec=default_differential_spec(iters=1),
            policy=policy,
        )
        assert report.ok, report.summary()

    def test_raise_on_failure_mentions_seed(self):
        """A failing cell must raise with strategy + seed + repro hint."""

        def always_wrong(spec, world, fabric):
            res = _train_builtin(spec, "serial", 1)
            bad = [c.map(lambda a: a + 1.0) for c in res.chunks]
            return TrainResult(losses=res.losses, chunks=bad)

        with pytest.raises(DifferentialMismatch) as ei:
            run_differential(
                strategies={"always-wrong": (1, always_wrong)},
                chaos_seeds=[17],
                raise_on_failure=True,
            )
        msg = str(ei.value)
        assert "chaos_seed=17" in msg
        assert "always-wrong" in msg
        assert "chaos-sweep" in msg  # the replay hint


def _train_builtin(spec, strategy, world, fabric=None):
    from repro import train

    return train(spec, strategy, world, fabric=fabric)


# ---------------------------------------------------------------------------
# broken schedule 1: swapped ring tags on the wire
# ---------------------------------------------------------------------------


class _TagSwapFabric(Fabric):
    """A wire that crosses WeiPipe's two weight flows: everything sent as
    the forward-flow slot ("F") arrives tagged as backward-flow ("B")
    and vice versa — the classic copy-paste ring bug."""

    def post(self, msg):
        tag = msg.tag
        if tag and tag[0] in ("F", "B"):
            swapped = (("B" if tag[0] == "F" else "F"),) + tuple(tag[1:])
            msg = replace(msg, tag=swapped)
        super().post(msg)


class TestBrokenSchedulesAreCaught:
    def test_swapped_ring_tags_caught_with_seed(self):
        report = run_differential(
            strategies={"weipipe-interleave": 4},
            chaos_seeds=range(3),
            spec=default_differential_spec(iters=1),
            fabric_factory=lambda world, pol: _TagSwapFabric(world),
        )
        assert not report.ok
        assert len(report.failures) >= 1
        f = report.failures[0]
        assert f.strategy == "weipipe-interleave"
        assert "chaos_seed" in str(f)
        assert "chaos-sweep" in str(f)

    def test_racy_ready_based_exchange_caught_by_some_seed(self):
        """A gradient exchange that *peeks* (``ready()``) instead of
        blocking is correct on the instant wire — the handshake
        guarantees the message was posted — but wrong on a real one,
        where posted != delivered.  Chaos finds it; the clean wire
        cannot."""
        strategies = {"racy-dp": (2, _train_racy_dp)}

        clean = run_differential(
            strategies=strategies,
            chaos_seeds=range(3),
            policy=ChaosPolicy.quiet(),
        )
        assert clean.ok, (
            "the racy exchange must pass on the instant wire (that is "
            "what makes it a chaos-only bug): " + clean.summary()
        )

        chaotic = run_differential(
            strategies=strategies,
            chaos_seeds=range(10),
            policy=ChaosPolicy(
                delay_prob=1.0, max_delay=0.01, drop_prob=0.0,
                duplicate_prob=0.0,
            ),
        )
        assert not chaotic.ok, "no chaos seed exposed the ready() race"
        assert any("chaos_seed" in str(f) for f in chaotic.failures)


def _train_racy_dp(spec, world, fabric):
    """Two-replica data parallelism with a ready()-race: each replica
    ships its gradients, handshakes on a *different* tag, then only
    merges the peer's gradients if they happen to have landed."""
    assert world == 2
    from repro.nn.checkpoint import CheckpointedChunk
    from repro.nn import functional as F

    def fn(comm):
        cfg = spec.cfg
        rank, peer = comm.rank, 1 - comm.rank
        chunks = spec.init_chunks()
        cos, sin = spec.rope()
        ck = CheckpointedChunk(cfg, recompute=spec.recompute)
        opt = spec.make_optimizer()
        states = [opt.init_state(c) for c in chunks]
        scale = 1.0 / spec.n_microbatches

        losses = []
        for it in range(spec.iters):
            accum = [c.zeros_like() for c in chunks]
            local_loss = 0.0
            for mb in range(rank, spec.n_microbatches, 2):
                tokens, targets = microbatch(spec, it, mb)
                x, fwd_states = tokens, []
                for i in range(cfg.n_layers):
                    x, st = ck.fwd(i, chunks[i], x, cos, sin)
                    fwd_states.append(st)
                loss, c_loss = F.cross_entropy_fwd(x, targets)
                local_loss += loss
                dy = F.cross_entropy_bwd(1.0, c_loss)
                for i in range(cfg.n_layers - 1, -1, -1):
                    dy, g = ck.bwd(i, chunks[i], dy, fwd_states[i])
                    accum[i].add_(g, scale=scale)

            comm.send([g.pack(np.float64) for g in accum], peer, ("grads", it))
            comm.send(local_loss, peer, ("loss", it))
            comm.send(True, peer, ("ack", it))
            comm.recv(peer, ("ack", it))
            # BUG: peeking instead of blocking.  The ack proves the peer
            # *posted* its gradients, not that they were *delivered*.
            handle = comm.irecv(peer, ("grads", it))
            peer_flats = handle.wait() if handle.ready() else None
            peer_loss = comm.recv(peer, ("loss", it))
            for i, g in enumerate(accum):
                total = g.pack(np.float64)
                if peer_flats is not None:
                    total = total + peer_flats[i]
                accum[i] = g.unpack_from(total)
            pre_update(spec, it, opt, accum)
            for i, c in enumerate(chunks):
                opt.step(c, accum[i], states[i])
            losses.append((local_loss + peer_loss) / spec.n_microbatches)
        return TrainResult(losses=losses, chunks=chunks)

    return run_workers(world, fn, fabric=fabric)[0]
