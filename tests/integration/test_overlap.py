"""The double-buffered overlap engine vs the synchronous ring.

Bit-exactness is the contract (ISSUE: the overlap engine changes *when*
communication happens, never *what* is computed), and the buffer pool
must reach a steady state where whole iterations run without acquiring
a single fresh buffer (the allocation-regression gate).
"""

import numpy as np
import pytest

from repro.core.weipipe import train_weipipe
from repro.nn import FP32, FP64, ModelConfig
from repro.parallel.common import TrainSpec
from repro.runtime import ChaosFabric, ChaosPolicy, Fabric

MODES = ["naive", "interleave", "zero-bubble"]


def _assert_identical(chunks_a, chunks_b):
    for a, b in zip(chunks_a, chunks_b):
        assert a.max_abs_diff(b) == 0.0


def _spec(precision=FP64, iters=2, nmb=4):
    cfg = ModelConfig(hidden=8, n_layers=8, n_heads=2, seq_len=8, vocab=16)
    return TrainSpec(
        cfg=cfg, n_microbatches=nmb, microbatch_size=2, iters=iters,
        seed=3, precision=precision,
    )


class TestBitExactness:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("precision", [FP32, FP64], ids=["fp32", "fp64"])
    def test_overlap_equals_sync(self, mode, precision):
        spec = _spec(precision=precision)
        sync = train_weipipe(spec, 4, mode=mode, fabric=Fabric(4), overlap=False)
        ovl = train_weipipe(spec, 4, mode=mode, fabric=Fabric(4), overlap=True)
        assert sync.losses == ovl.losses
        _assert_identical(sync.chunks, ovl.chunks)

    @pytest.mark.parametrize("mode", MODES)
    def test_overlap_equals_sync_under_chaos(self, mode):
        policy = ChaosPolicy(seed=5)
        spec = _spec()
        sync = train_weipipe(
            spec, 4, mode=mode,
            fabric=ChaosFabric(4, policy=policy, timeout=60.0), overlap=False,
        )
        ovl = train_weipipe(
            spec, 4, mode=mode,
            fabric=ChaosFabric(4, policy=policy, timeout=60.0), overlap=True,
        )
        assert sync.losses == ovl.losses
        _assert_identical(sync.chunks, ovl.chunks)

    def test_overlap_traffic_matches_sync(self):
        """Same logical messages and bytes on both engines."""
        spec = _spec()
        f_sync, f_ovl = Fabric(4), Fabric(4)
        train_weipipe(spec, 4, mode="interleave", fabric=f_sync, overlap=False)
        train_weipipe(spec, 4, mode="interleave", fabric=f_ovl, overlap=True)
        assert f_sync.stats.messages == f_ovl.stats.messages
        assert f_sync.stats.bytes_total == f_ovl.stats.bytes_total
        assert f_sync.stats.by_kind == f_ovl.stats.by_kind


class TestAllocationRegression:
    def test_steady_state_allocations_are_zero(self):
        """After the warmup iteration the pool must satisfy every weight
        buffer from its free list: the allocation counter stops moving."""
        spec = _spec(iters=5)
        fab = Fabric(4)
        result = train_weipipe(spec, 4, mode="interleave", fabric=fab, overlap=True)
        allocs = result.extra["pool_allocs_by_iter"]
        assert len(allocs) == 5
        assert allocs[0] > 0  # warmup actually allocated
        # steady state: the pool serves from its free list.  Thread
        # interleaving can legitimately demand a buffer before its twin
        # is returned, so allow a couple of stragglers after warmup —
        # a real leak (>= 1 buffer/iteration) still blows the bound.
        assert allocs == sorted(allocs), allocs  # counter is cumulative
        assert allocs[-1] - allocs[0] <= 2, allocs

    def test_sync_engine_reports_no_pool(self):
        spec = _spec(iters=2)
        result = train_weipipe(
            spec, 4, mode="interleave", fabric=Fabric(4), overlap=False
        )
        assert result.extra["pool_allocs_by_iter"] == []

    def test_wire_wait_telemetry_present(self):
        spec = _spec(iters=2)
        result = train_weipipe(
            spec, 4, mode="interleave", fabric=Fabric(4), overlap=True
        )
        assert set(result.extra["wire_wait_s"]) == {0, 1, 2, 3}
        assert all(v >= 0.0 for v in result.extra["wire_wait_s"].values())
        assert all(v > 0.0 for v in result.extra["compute_s"].values())
