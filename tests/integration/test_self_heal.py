"""End-to-end self-healing: heal differential, rejoin scenario, quiet cost.

The three acceptance gates of the self-healing ring in one place:

1. **Heal differential** — within-budget transient faults (bit-flips,
   link flaps, stalls) are bit-exactly invisible: the faulted run equals
   a clean same-strategy same-world run.
2. **Self-heal scenario** — a NIC outage long enough to be *confirmed*
   shrinks the ring, the rank rejoins, the ring re-grows to full world,
   and the result still matches the clean full-world run.
3. **Quiet-wire cost** — CRC framing and the heal machinery cost zero
   retransmits and zero steady-state allocations when nothing misbehaves
   (the PR-3 gate, with framing on).
"""

import pytest

from repro.core.api import train
from repro.core.weipipe import train_weipipe
from repro.parallel.elastic import train_elastic
from repro.parallel.weipipe_hier import train_weipipe_hier
from repro.runtime import ChaosFabric, ChaosPolicy, Fabric
from repro.testing import (
    HEAL_SCHEDULES,
    default_differential_spec,
    run_crash_recovery,
    run_heal_differential,
    run_self_heal,
)


class TestHealDifferential:
    @pytest.mark.parametrize("schedule", ["bitflip", "storm"])
    def test_faulted_runs_bit_exact_vs_clean_twin(self, schedule):
        report = run_heal_differential(
            modes=("weipipe-interleave", "weipipe-hier"),
            worlds=(4,),
            precisions=("fp64", "fp32"),
            schedules={schedule: HEAL_SCHEDULES[schedule]},
        )
        report.raise_if_failed()
        # the honesty check inside already requires real injections;
        # assert the headline fault fired so the gate can't go vacuous.
        agg = report.injected[schedule]
        if "bitflip" in schedule or schedule == "storm":
            assert agg.get("bitflips", 0) > 0

    def test_flap_and_stall_schedules_at_small_world(self):
        report = run_heal_differential(
            modes=("weipipe-naive",),
            worlds=(2,),
            precisions=("fp64",),
            schedules={k: HEAL_SCHEDULES[k] for k in ("flap", "stall")},
        )
        report.raise_if_failed()


class TestSelfHealScenario:
    def test_confirm_shrink_rejoin_regrow_verified(self):
        report = run_self_heal(strategy="weipipe-interleave", world=4, seed=0)
        assert report.ok, report.summary()
        assert report.final_world == 4
        assert report.ring_rejoins >= 1
        assert report.detector.get("confirms", 0) >= 1
        assert report.verified is True

    def test_hier_strategy_heals_too(self):
        report = run_self_heal(strategy="weipipe-hier", world=4, seed=0)
        assert report.ok, report.summary()


class TestQuietWireCost:
    def test_zero_retransmits_and_alloc_gate_with_framing(self):
        """PR-3's steady-state allocation gate still holds with CRC
        framing on every message, and a quiet wire never retransmits."""
        fab = Fabric(4)
        spec = default_differential_spec()
        result = train_weipipe(spec, 4, mode="interleave", fabric=fab,
                               overlap=True)
        allocs = result.extra["pool_allocs_by_iter"]
        assert allocs[-1] - allocs[0] <= 2
        assert fab._m_heal["fabric_retransmits"].value == 0
        assert fab._m_heal["fabric_corrupt_frames"].value == 0

    def test_quiet_chaos_fabric_control(self):
        fab = ChaosFabric(4, ChaosPolicy.quiet(0))
        train(default_differential_spec(), "weipipe-interleave", 4, fabric=fab)
        s = fab.chaos
        assert (s.retransmits, s.nacks, s.bitflips, s.corrupt_frames) == (0,) * 4


class TestHierElasticRegistration:
    def test_elastic_hier_bit_equal_to_direct(self):
        spec = default_differential_spec()
        direct = train_weipipe_hier(spec, 4)
        elastic = train_elastic(spec, "weipipe-hier", 4)
        assert elastic.losses == direct.losses
        for ce, cd in zip(elastic.chunks, direct.chunks):
            assert ce.max_abs_diff(cd) == 0.0

    def test_hier_crash_recovery_shrink_then_verify(self):
        report = run_crash_recovery(strategy="weipipe-hier", seed=1)
        assert report.recovered, report.summary()
        assert report.verified, report.summary()


class TestSweepHonesty:
    def test_heal_differential_rejects_inert_schedule(self):
        """A schedule that injects nothing must fail the sweep: the gate
        refuses to pass vacuously."""
        report = run_heal_differential(
            modes=("weipipe-naive",),
            worlds=(2,),
            precisions=("fp64",),
            schedules={"inert": {}},
        )
        assert not report.ok
        assert any("inject" in str(f) for f in report.failures)
