"""The reproduction's experiment zero: every strategy == serial baseline.

The paper gets numerical correctness for free from PyTorch autograd +
NCCL; our from-scratch substrate must *prove* it.  Each test trains the
identical problem with a distributed strategy and asserts the loss
trajectory and final weights match the single-worker reference.
"""

import numpy as np
import pytest

from repro import FP64, MIXED, Adam, AdamW, MasterWeightOptimizer, ModelConfig, TrainSpec, train

CFG = ModelConfig(hidden=16, n_layers=4, n_heads=2, seq_len=8, vocab=29)

DISTRIBUTED = [
    ("dp", 4),
    ("fsdp", 4),
    ("gpipe", 4),
    ("1f1b", 4),
    ("zb1", 4),
    ("zb2", 4),
    ("weipipe-naive", 4),
    ("weipipe-interleave", 4),
    ("weipipe-zb", 4),
    ("tp", 2),
    ("sp", 4),
]


def _spec(**kw):
    base = dict(
        cfg=CFG, n_microbatches=8, microbatch_size=2, iters=2, precision=FP64
    )
    base.update(kw)
    return TrainSpec(**base)


def assert_matches(result, ref, rtol=1e-9, atol=1e-11):
    np.testing.assert_allclose(result.losses, ref.losses, rtol=rtol, atol=atol)
    assert len(result.chunks) == len(ref.chunks)
    for i, (a, b) in enumerate(zip(result.chunks, ref.chunks)):
        assert a.keys() == b.keys(), f"chunk {i} structure"
        for name in a.keys():
            np.testing.assert_allclose(
                a[name], b[name], rtol=rtol, atol=atol,
                err_msg=f"chunk {i} param {name}",
            )


class TestEquivalenceFP64:
    """Exact-precision policy: agreement to accumulation-order noise."""

    @pytest.fixture(scope="class")
    def ref(self):
        return train(_spec(), "serial", 1)

    @pytest.mark.parametrize("strategy,world", DISTRIBUTED)
    def test_matches_serial(self, ref, strategy, world):
        assert_matches(train(_spec(), strategy, world), ref)

    @pytest.mark.parametrize("strategy,world", [("weipipe-interleave", 2), ("weipipe-interleave", 4)])
    def test_world_size_invariance(self, ref, strategy, world):
        assert_matches(train(_spec(), strategy, world), ref)


class TestEquivalenceWithRecompute:
    """Recomputation must be invisible (strategies that support it)."""

    @pytest.mark.parametrize(
        "strategy,world",
        [("dp", 2), ("fsdp", 4), ("1f1b", 4), ("gpipe", 2),
         ("weipipe-naive", 4), ("weipipe-interleave", 4)],
    )
    def test_matches_serial(self, strategy, world):
        ref = train(_spec(recompute=True), "serial", 1)
        assert_matches(train(_spec(recompute=True), strategy, world), ref)

    def test_recompute_equals_no_recompute(self):
        a = train(_spec(recompute=False), "weipipe-interleave", 4)
        b = train(_spec(recompute=True), "weipipe-interleave", 4)
        assert_matches(a, b, rtol=0, atol=0)

    def test_zb_rejects_recompute(self):
        with pytest.raises(Exception, match="recomputation"):
            train(_spec(recompute=True), "zb1", 4)


class TestEquivalenceFlashAttention:
    """Streaming attention must not change any strategy's numbers."""

    @pytest.mark.parametrize("strategy,world", [("weipipe-interleave", 4), ("1f1b", 4)])
    def test_matches_serial(self, strategy, world):
        cfg = CFG.with_(flash_attention=True, flash_block=4)
        ref = train(_spec(cfg=cfg), "serial", 1)
        assert_matches(train(_spec(cfg=cfg), strategy, world), ref)


class TestEquivalenceAdam:
    """Stateful optimizers: state sharding must not change results.

    FSDP runs Adam on flat shards, WeiPipe on owner-local layers,
    pipelines per stage — all must equal serial Adam.
    """

    @pytest.mark.parametrize(
        "strategy,world", [("fsdp", 4), ("1f1b", 4), ("weipipe-interleave", 4)]
    )
    def test_adamw_matches_serial(self, strategy, world):
        mk = lambda: AdamW(lr=1e-2, weight_decay=0.01)
        ref = train(_spec(make_optimizer=mk, iters=3), "serial", 1)
        got = train(_spec(make_optimizer=mk, iters=3), strategy, world)
        assert_matches(got, ref, rtol=1e-7, atol=1e-9)


class TestMixedPrecision:
    """The paper's fp16/bf16 layout: strategies agree loosely (rounding
    points coincide but accumulation orders differ) and training still
    converges."""

    def _mixed_spec(self, **kw):
        mk = lambda: MasterWeightOptimizer(Adam(lr=3e-3), MIXED)
        kw.setdefault("iters", 4)
        return _spec(precision=MIXED, make_optimizer=mk, **kw)

    @pytest.mark.parametrize("strategy,world", [("weipipe-interleave", 4), ("1f1b", 4), ("fsdp", 4)])
    def test_close_to_serial(self, strategy, world):
        ref = train(self._mixed_spec(), "serial", 1)
        got = train(self._mixed_spec(), strategy, world)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-2)

    def test_loss_decreases(self):
        got = train(self._mixed_spec(iters=6), "weipipe-interleave", 4)
        assert got.losses[-1] < got.losses[0]


class TestLongerRun:
    def test_weipipe_three_rounds_two_iters(self):
        spec = _spec(n_microbatches=12, iters=2)
        ref = train(spec, "serial", 1)
        assert_matches(train(spec, "weipipe-interleave", 4), ref)

    def test_world_two_layers_eight(self):
        cfg = CFG.with_(n_layers=8)
        spec = _spec(cfg=cfg, n_microbatches=4, iters=1)
        ref = train(spec, "serial", 1)
        assert_matches(train(spec, "weipipe-interleave", 2), ref)
        assert_matches(train(spec, "1f1b", 2), ref)
