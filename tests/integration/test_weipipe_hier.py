"""Differential + traffic gates for the hierarchical (two-level) ring.

The contract (ISSUE 6): ``train_weipipe_hier`` is bit-exact with the
flat ring and with serial under every wire — the hierarchy changes what
crosses slow links, never what is computed — while crossing *strictly*
fewer bytes between groups and exactly the same bytes within them.
Degenerate group shapes must reduce exactly: ``1xP`` is the flat ring
verbatim (byte-identical wire), ``Px1`` makes every hop a boundary and
every rank a gateway.
"""

import numpy as np
import pytest

from repro.core import strategy_names, train
from repro.core.weipipe import train_weipipe
from repro.nn import FP32, FP64
from repro.parallel.weipipe_hier import default_groups, train_weipipe_hier
from repro.runtime import ChaosFabric, ChaosPolicy, Fabric, Topology, TopologyError
from repro.testing import default_differential_spec, run_differential

WORLD = 4

SHAPES = {
    "2x2": Topology.grid(WORLD, "2x2"),
    "1x4": Topology.grid(WORLD, "1x4"),
    "4x1": Topology.grid(WORLD, "4x1", allow_singleton=True),
}


def _assert_identical(chunks_a, chunks_b):
    for a, b in zip(chunks_a, chunks_b):
        assert a.max_abs_diff(b) == 0.0


def _hier_runner(topo):
    return lambda spec, world, fabric: train_weipipe_hier(
        spec, world, topology=topo, fabric=fabric
    )


class TestBitExactVsFlat:
    @pytest.mark.parametrize("shape", sorted(SHAPES), ids=sorted(SHAPES))
    @pytest.mark.parametrize("precision", [FP32, FP64], ids=["fp32", "fp64"])
    def test_plain_wire(self, shape, precision):
        spec = default_differential_spec(precision=precision)
        flat = train_weipipe(spec, WORLD, fabric=Fabric(WORLD))
        hier = train_weipipe_hier(
            spec, WORLD, topology=SHAPES[shape], fabric=Fabric(WORLD)
        )
        assert flat.losses == hier.losses
        _assert_identical(flat.chunks, hier.chunks)

    @pytest.mark.parametrize("shape", sorted(SHAPES), ids=sorted(SHAPES))
    @pytest.mark.parametrize("seed", range(3))
    def test_chaos_wire(self, shape, seed):
        spec = default_differential_spec()
        policy = ChaosPolicy(seed=seed)
        topo = SHAPES[shape]
        flat = train_weipipe(
            spec, WORLD,
            fabric=ChaosFabric(WORLD, policy=policy, timeout=60.0),
        )
        hier = train_weipipe_hier(
            spec, WORLD, topology=topo,
            fabric=ChaosFabric(WORLD, policy=policy, topology=topo,
                               timeout=60.0),
        )
        assert flat.losses == hier.losses
        _assert_identical(flat.chunks, hier.chunks)

    @pytest.mark.parametrize("mode", ["naive", "interleave", "zero-bubble"])
    def test_all_modes(self, mode):
        spec = default_differential_spec()
        flat = train_weipipe(spec, WORLD, mode=mode)
        hier = train_weipipe_hier(spec, WORLD, groups="2x2", mode=mode)
        assert flat.losses == hier.losses
        _assert_identical(flat.chunks, hier.chunks)

    def test_sync_engine(self):
        spec = default_differential_spec()
        flat = train_weipipe(spec, WORLD, overlap=False)
        hier = train_weipipe_hier(spec, WORLD, groups="2x2", overlap=False)
        assert flat.losses == hier.losses
        _assert_identical(flat.chunks, hier.chunks)


class TestDifferentialSweep:
    """vs serial through the harness: every shape, every chaos seed."""

    @pytest.mark.parametrize("precision", [FP32, FP64], ids=["fp32", "fp64"])
    def test_plain_wire_sweep(self, precision):
        spec = default_differential_spec(precision=precision)
        # vs-serial tolerances are precision-bound: fp32 ring accumulation
        # legitimately rounds ~1e-10 away from serial (the flat ring does
        # too); hier-vs-flat stays exactly bit-equal (TestBitExactVsFlat).
        tol = {} if precision is FP64 else dict(
            rtol=1e-5, atol=1e-7, delta_rtol=1e-4, delta_atol=1e-7
        )
        report = run_differential(
            strategies={
                f"weipipe-hier-{shape}": (WORLD, _hier_runner(topo))
                for shape, topo in SHAPES.items()
            },
            chaos_seeds=[0],
            spec=spec,
            policy=ChaosPolicy.quiet(),
            **tol,
        )
        report.raise_if_failed()
        assert report.runs == len(SHAPES)

    @pytest.mark.parametrize("shape", sorted(SHAPES), ids=sorted(SHAPES))
    def test_chaos_wire_sweep(self, shape):
        topo = SHAPES[shape]
        report = run_differential(
            strategies={f"weipipe-hier-{shape}": (WORLD, _hier_runner(topo))},
            chaos_seeds=range(4),
            fabric_factory=lambda world, pol: ChaosFabric(
                world, pol, topology=topo, timeout=60.0
            ),
        )
        report.raise_if_failed()
        assert report.runs == 4


class TestDegenerateShapes:
    def test_one_group_is_byte_identical_to_flat(self):
        """1xP has no boundaries: the exact message stream of the flat
        ring, not merely the same results."""
        spec = default_differential_spec()
        f_flat, f_hier = Fabric(WORLD), Fabric(WORLD)
        train_weipipe(spec, WORLD, fabric=f_flat)
        train_weipipe_hier(spec, WORLD, topology=SHAPES["1x4"], fabric=f_hier)
        assert f_hier.stats.messages == f_flat.stats.messages
        assert f_hier.stats.bytes_total == f_flat.stats.bytes_total
        assert f_hier.stats.by_kind == f_flat.stats.by_kind

    def test_one_group_sends_no_references(self):
        result = train_weipipe_hier(
            default_differential_spec(), WORLD, topology=SHAPES["1x4"]
        )
        assert result.extra["inter_full_sends"] == 0
        assert result.extra["inter_ref_sends"] == 0
        assert result.extra["gateways"] == [0]

    def test_all_singletons_every_rank_is_gateway(self):
        result = train_weipipe_hier(
            default_differential_spec(), WORLD, topology=SHAPES["4x1"]
        )
        assert result.extra["gateways"] == [0, 1, 2, 3]
        assert result.extra["inter_full_sends"] > 0

    def test_px1_needs_explicit_singleton_topology(self):
        """The groups= string path keeps the validation default: the
        degenerate layout must be requested via an explicit Topology."""
        with pytest.raises(TopologyError, match="allow_singleton"):
            train_weipipe_hier(
                default_differential_spec(), WORLD, groups="4x1"
            )


class TestTrafficAccounting:
    """Satellite 3: per-link-class byte counters prove the claim."""

    def _traffic(self, runner):
        topo = SHAPES["2x2"]
        fabric = Fabric(WORLD, topology=topo)
        runner(default_differential_spec(), fabric, topo)
        return fabric.link_traffic()

    def test_cross_group_bytes_strictly_fewer(self):
        flat = self._traffic(
            lambda spec, fab, topo: train_weipipe(spec, WORLD, fabric=fab)
        )
        hier = self._traffic(
            lambda spec, fab, topo: train_weipipe_hier(
                spec, WORLD, topology=topo, fabric=fab
            )
        )
        assert hier["inter"]["bytes"] < flat["inter"]["bytes"]
        # same ring, same schedule: message *counts* are identical; only
        # the payloads shrank.
        assert hier["inter"]["messages"] == flat["inter"]["messages"]

    def test_intra_group_bytes_conserved_exactly(self):
        flat = self._traffic(
            lambda spec, fab, topo: train_weipipe(spec, WORLD, fabric=fab)
        )
        hier = self._traffic(
            lambda spec, fab, topo: train_weipipe_hier(
                spec, WORLD, topology=topo, fabric=fab
            )
        )
        assert hier["intra"] == flat["intra"]

    def test_crossing_counts_match_schedule(self):
        """Each slot crosses each boundary in full exactly once per flow
        per iteration; every other weight crossing is a reference."""
        spec = default_differential_spec()
        result = train_weipipe_hier(spec, WORLD, topology=SHAPES["2x2"])
        boundaries = len(SHAPES["2x2"].ring_boundaries())
        rounds = spec.n_microbatches // WORLD
        turns = (rounds + 2) * WORLD  # interleave schedule length
        full = result.extra["inter_full_sends"]
        refs = result.extra["inter_ref_sends"]
        assert full == spec.iters * boundaries * 2 * WORLD
        assert full + refs == spec.iters * boundaries * 2 * turns

    def test_hier_metrics_counters_exported(self):
        topo = SHAPES["2x2"]
        fabric = Fabric(WORLD, topology=topo)
        train_weipipe_hier(
            default_differential_spec(), WORLD, topology=topo, fabric=fabric
        )
        dump = fabric.metrics.as_dict()
        by_name = {}
        for m in dump["metrics"]:
            by_name.setdefault(m["name"], 0)
            by_name[m["name"]] += m.get("value", 0)
        assert by_name["weipipe_hier_full_crossings_total"] > 0
        assert by_name["weipipe_hier_ref_crossings_total"] > 0


class TestStrategyRegistration:
    def test_registered(self):
        assert "weipipe-hier" in strategy_names()

    def test_train_dispatch_matches_serial_losses(self):
        spec = default_differential_spec()
        ref = train(spec, "serial", 1)
        hier = train(spec, "weipipe-hier", WORLD)
        assert hier.losses == ref.losses

    def test_train_dispatch_uses_fabric_topology(self):
        spec = default_differential_spec()
        topo = SHAPES["2x2"]
        fabric = Fabric(WORLD, topology=topo)
        result = train(spec, "weipipe-hier", WORLD, fabric=fabric)
        assert result.extra["groups"] == [[0, 1], [2, 3]]
        assert fabric.link_traffic()["inter"]["bytes"] > 0

    def test_default_groups(self):
        assert default_groups(4) == "2x2"
        assert default_groups(8) == "2x4"
        assert default_groups(2) == "1x2"
        assert default_groups(3) == "1x3"


class TestValidation:
    def test_topology_and_groups_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            train_weipipe_hier(
                default_differential_spec(), WORLD,
                topology=SHAPES["2x2"], groups="2x2",
            )

    def test_topology_world_mismatch(self):
        with pytest.raises(ValueError, match="world_size"):
            train_weipipe_hier(
                default_differential_spec(), 2, topology=SHAPES["2x2"]
            )

    def test_microbatch_divisibility(self):
        spec = default_differential_spec(n_microbatches=3, microbatch_size=2)
        with pytest.raises(ValueError, match="divisible"):
            train_weipipe_hier(spec, WORLD, groups="2x2")
