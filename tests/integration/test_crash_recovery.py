"""Elastic training end to end: equivalence, crash recovery, resume.

Three claims, each checked bit-for-bit (the specs are fp64 so exact
comparison is honest):

* with nothing failing, ``train_elastic`` is indistinguishable from the
  plain strategy zoo — same losses, same final weights;
* with a worker killed mid-run by seeded chaos injection, the survivors
  shrink the ring and the continuation equals a clean run on the
  shrunken world seeded from the rollback snapshot
  (:func:`repro.testing.run_crash_recovery`'s differential);
* a checkpoint written at a step boundary resumes bit-exactly — in
  memory and through the durable v2 file format.
"""

from dataclasses import replace

import pytest

from repro.optim import Adam
from repro.core.api import train
from repro.io import load_checkpoint_state, save_checkpoint
from repro.parallel.elastic import ELASTIC_STRATEGIES, train_elastic
from repro.runtime import PeerFailed
from repro.testing import default_crash_spec, run_crash_recovery


def _adam_spec(**overrides):
    return default_crash_spec(
        make_optimizer=lambda: Adam(lr=1e-2), **overrides
    )


def _assert_same(result, reference):
    assert list(map(float, result.losses)) == list(map(float, reference.losses))
    for i, (a, b) in enumerate(zip(result.chunks, reference.chunks)):
        assert a.max_abs_diff(b) == 0.0, f"chunk {i} differs"


class TestElasticEqualsPlain:
    @pytest.mark.parametrize("strategy", ELASTIC_STRATEGIES)
    def test_no_failure_matches_plain_train(self, strategy):
        spec = default_crash_spec(iters=2)
        world = 1 if strategy == "serial" else 4
        _assert_same(train_elastic(spec, strategy, 4), train(spec, strategy, world))


class TestCrashRecovery:
    # crash points pinned inside the active phase for determinism and to
    # skip the probe run (they were chosen from probed post counts).
    @pytest.mark.parametrize(
        "strategy,crash_rank,crash_at_post",
        [("weipipe-interleave", 0, 76), ("fsdp", 1, 249)],
    )
    def test_recovery_matches_clean_shrunken_run(
        self, strategy, crash_rank, crash_at_post
    ):
        report = run_crash_recovery(
            strategy=strategy,
            world=4,
            crash_rank=crash_rank,
            crash_at_post=crash_at_post,
        )
        assert report.recovered, report.summary()
        assert report.survivors and crash_rank not in report.survivors
        assert len(report.losses) == default_crash_spec().iters
        report.raise_if_failed()
        assert report.verified is True

    def test_recovery_survives_wire_chaos(self):
        report = run_crash_recovery(
            strategy="weipipe-interleave",
            world=4,
            crash_rank=2,
            crash_at_post=60,
            wire_chaos=True,
        )
        assert report.recovered, report.summary()
        report.raise_if_failed()

    def test_max_recoveries_zero_propagates(self):
        spec = default_crash_spec(iters=2)
        from repro.runtime import ChaosFabric, ChaosPolicy

        policy = replace(
            ChaosPolicy.quiet(0), crash_rank=1, crash_at_post=40
        )
        with pytest.raises(Exception) as exc_info:
            train_elastic(
                spec,
                "weipipe-interleave",
                4,
                fabric=ChaosFabric(4, policy, timeout=60.0),
                max_recoveries=0,
            )
        # every survivor re-raised PeerFailed; the driver surfaces one.
        assert "PeerFailed" in str(exc_info.value) or isinstance(
            exc_info.value, PeerFailed
        )


class TestResumeDeterminism:
    @pytest.mark.parametrize("strategy", ["serial", "weipipe-interleave"])
    def test_split_run_equals_full_run(self, strategy):
        """iters=4 in one go == iters=2 then resume for 2 more, using the
        canonical optimizer state and the start_iteration cursor."""
        spec = _adam_spec(iters=4)
        full = train_elastic(spec, strategy, 4)

        first = train_elastic(replace(spec, iters=2), strategy, 4)
        second = train_elastic(
            replace(
                spec,
                iters=2,
                start_iteration=2,
                initial_chunks=first.chunks,
                initial_opt_state=first.extra["opt_state"],
            ),
            strategy,
            4,
        )
        assert list(map(float, first.losses + second.losses)) == list(
            map(float, full.losses)
        )
        for a, b in zip(second.chunks, full.chunks):
            assert a.max_abs_diff(b) == 0.0

    def test_resume_through_checkpoint_file(self, tmp_path):
        """The durable v2 format preserves bit-exactness: save at the
        halfway boundary, load, resume, compare with the unbroken run."""
        spec = _adam_spec(iters=4)
        strategy = "fsdp"
        full = train_elastic(spec, strategy, 4)

        first = train_elastic(replace(spec, iters=2), strategy, 4)
        path = save_checkpoint(
            tmp_path / "mid",
            spec.cfg,
            first.chunks,
            opt_state=first.extra["opt_state"],
            train_state={
                "next_iteration": 2,
                "strategy": strategy,
                "losses": list(first.losses),
            },
        )
        ckpt = load_checkpoint_state(path)
        assert ckpt.train_state["strategy"] == strategy
        second = train_elastic(
            replace(
                spec,
                iters=2,
                start_iteration=ckpt.train_state["next_iteration"],
                initial_chunks=ckpt.chunks,
                initial_opt_state=ckpt.opt_state,
            ),
            strategy,
            4,
        )
        assert list(map(float, ckpt.train_state["losses"] + second.losses)) == list(
            map(float, full.losses)
        )
        for a, b in zip(second.chunks, full.chunks):
            assert a.max_abs_diff(b) == 0.0
