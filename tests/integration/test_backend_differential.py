"""Backend differential: every strategy, thread vs process, bit for bit.

A transport changes how frames move between ranks, never what is
computed — so the process backend must reproduce the thread backend's
loss curves and final weights *exactly*, across every strategy, world
size and precision (satellite gate for the pluggable transport layer;
see DESIGN.md §14).  The companion pool test is the per-backend
zero-steady-state-allocation gate: after warmup neither backend's
BufferPool may keep allocating.
"""

import numpy as np

from repro.experiments.overlap import run_backend_comparison
from repro.testing import (
    DEFAULT_DIFFERENTIAL_STRATEGIES,
    run_backend_differential,
)


def test_backend_differential_all_strategies_bitwise():
    report = run_backend_differential()
    # every strategy x each world <= its cap x fp64/fp32: 8 strategies,
    # TP capped at P=2 on the default 2-head model -> 30 cells.
    expected = sum(
        len([w for w in (2, 4) if w <= cap]) * 2
        for cap in DEFAULT_DIFFERENTIAL_STRATEGIES.values()
    )
    assert report.runs == expected
    assert report.ok, report.summary()


def test_backend_differential_reports_divergence():
    # harness self-test: a strategy whose process run cannot match the
    # thread run must land in failures, not pass silently.  Different
    # data seeds guarantee different losses.
    from repro.testing import default_differential_spec

    spec = default_differential_spec()

    def lying_runner(cell_spec, world, fabric):
        from repro.core.api import STRATEGIES
        from repro.runtime.transport import ProcessTransport

        if isinstance(fabric, ProcessTransport):
            from dataclasses import replace

            cell_spec = replace(cell_spec, data_seed=cell_spec.data_seed + 1)
        return STRATEGIES["1f1b"](cell_spec, world, fabric)

    import repro.core.api as api

    api.STRATEGIES["_lying"] = lying_runner
    try:
        report = run_backend_differential(
            strategies={"_lying": 2}, worlds=(2,), precisions=("fp64",)
        )
    finally:
        del api.STRATEGIES["_lying"]
    assert not report.ok
    assert "bitwise" in report.failures[0].message


def test_backend_pools_reach_steady_state():
    # small, zero-delay configuration: the gate is about allocation
    # behaviour, not throughput, so no wire latency is injected.
    section = run_backend_comparison(
        hidden=16, n_layers=4, seq_len=8, vocab=16, world=4,
        n_microbatches=8, microbatch_size=1, iters=6,
        link_delay_s=0.0, reps=1,
    )
    assert section["losses_equal"]
    assert section["bytes_equal"]
    # process backend recycles arena spans exactly: zero allocations per
    # iteration once warm.  the thread pool may demand a few stragglers
    # while ranks interleave (see tests/integration/test_overlap.py).
    assert section["process"]["steady_state_allocs_per_iter"] == 0
    for name in ("thread", "process"):
        allocs = section[name]["pool_allocs_by_iter"]
        assert allocs[-1] - allocs[0] <= 4, (name, allocs)
        pool = section[name]["pool"]
        assert pool["backend"] == name
        assert pool["hits"] > 0
    # the process pool draws its buffers from the shared arena.
    assert section["process"]["pool"].get("arena_used", 0) > 0
