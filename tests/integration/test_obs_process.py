"""Cross-process observability, end to end (DESIGN.md §16).

The process backend must produce the *same* observability artefacts the
thread backend does: one merged Chrome trace with a pid per rank (child
spills spliced onto the parent clock via the launch-time alignment
handshake), one merged ``repro.metrics/v1`` registry (eagerly zeroed),
and — on failure — a ``repro.postmortem/v1`` flight-recorder bundle with
events from every rank.  Tracing must also be bitwise invisible to the
training computation, and the steady-state allocation gate must hold
with the recorder and the tracer both live.
"""

import numpy as np
import pytest

from repro.core.api import STRATEGIES
from repro.obs import Tracer, validate_chrome_trace
from repro.obs.flight import load_postmortem, render_postmortem
from repro.runtime import ChaosFabric, ChaosPolicy, ProcessTransport
from repro.runtime.launcher import run_workers
from repro.runtime.transport.thread import ThreadTransport
from repro.testing import default_differential_spec


def _traced_run(world=2, strategy="weipipe-interleave"):
    spec = default_differential_spec()
    tracer = Tracer(metadata={"strategy": strategy, "world": world})
    transport = ProcessTransport(tracer=tracer)
    result = STRATEGIES[strategy](spec, world, transport)
    return tracer, transport, result


# -- merged trace -------------------------------------------------------------


def test_merged_trace_validates_with_one_pid_per_rank():
    world = 2
    tracer, transport, _ = _traced_run(world=world)
    doc = tracer.chrome_trace()
    assert validate_chrome_trace(doc) == []
    data = [e for e in doc["traceEvents"] if e.get("ph") != "M"]
    assert {e["pid"] for e in data} == set(range(world))
    # every rank contributed both compute spans and wire events.
    for pid in range(world):
        phases = {e["ph"] for e in data if e["pid"] == pid}
        assert "X" in phases and "i" in phases


def test_merged_trace_timestamps_monotone_per_rank():
    tracer, _, _ = _traced_run(world=2)
    events = tracer.events()  # exporter output, ordered by ts
    for pid in (0, 1):
        ts = [e["ts"] for e in events if e["pid"] == pid]
        assert ts, f"rank {pid} contributed no events"
        assert all(t >= 0 for t in ts)
        assert ts == sorted(ts)


def test_clock_handshake_brackets_every_rank():
    _, transport, _ = _traced_run(world=2)
    assert sorted(transport.clock) == ["0", "1"]
    for info in transport.clock.values():
        assert info["method"] in ("shared-clock", "midpoint")
        assert info["skew_bound_s"] >= 0.0
        # forked children share CLOCK_MONOTONIC, so the fast path is
        # the expected outcome on this platform.
        assert info["method"] == "shared-clock"
        assert info["offset_s"] == 0.0


def test_cross_rank_send_recv_causally_ordered():
    tracer, transport, _ = _traced_run(world=2)
    events = tracer.events()
    skew_us = sum(i["skew_bound_s"] for i in transport.clock.values()) * 1e6
    sends = {}  # (src, dst, tag) -> [ts, ...] in order
    for e in events:
        if e["name"] == "send" and e["ph"] == "i":
            key = (e["pid"], e["args"]["dst"], tuple(e["args"]["tag"]))
            sends.setdefault(key, []).append(e["ts"])
    recvs = {}
    for e in events:
        if e["name"] == "recv" and e["ph"] == "X":
            key = (e["args"]["src"], e["pid"], tuple(e["args"]["tag"]))
            recvs.setdefault(key, []).append(e["ts"] + e["dur"])
    assert recvs, "traced run recorded no recv spans"
    matched = 0
    for key, ends in recvs.items():
        posts = sends.get(key, [])
        # FIFO per (src, dst, tag): the k-th recv completes after the
        # k-th send was posted, up to the recorded clock-skew bound.
        for k, end in enumerate(ends):
            if k < len(posts):
                assert posts[k] <= end + skew_us, (key, k)
                matched += 1
    assert matched > 0


# -- merged metrics -----------------------------------------------------------


def test_merged_metrics_eagerly_zeroed_on_quiet_run():
    _, transport, _ = _traced_run(world=2)
    doc = transport.metrics.as_dict()
    names = {m["name"] for m in doc["metrics"]}
    for name in ("fabric_retransmits", "fabric_corrupt_frames",
                 "detector_suspicions", "detector_suspicions_cleared",
                 "detector_confirms", "ring_rejoins"):
        assert name in names, f"{name} absent from merged registry"
        assert transport.metrics.value(name) == 0.0
    # the children's real traffic counters made it across the boundary.
    assert any(m["name"] == "fabric_messages_total" for m in doc["metrics"])


def test_untraced_process_run_merges_metrics_too():
    spec = default_differential_spec()
    transport = ProcessTransport()
    STRATEGIES["weipipe-interleave"](spec, 2, transport)
    assert transport.metrics.value("fabric_retransmits") == 0.0
    assert transport.tracer is None


# -- bitwise invisibility -----------------------------------------------------


def test_tracing_is_bitwise_invisible_on_process_backend():
    from repro.testing import (
        DEFAULT_DIFFERENTIAL_STRATEGIES,
        run_traced_backend_differential,
    )

    report = run_traced_backend_differential()
    # the full backend-differential matrix: every strategy x each world
    # <= its cap x fp64/fp32, traced vs untraced, all bit-identical.
    expected = sum(
        len([w for w in (2, 4) if w <= cap]) * 2
        for cap in DEFAULT_DIFFERENTIAL_STRATEGIES.values()
    )
    assert report.runs == expected
    assert report.ok, report.summary()


# -- post-mortem bundles ------------------------------------------------------


def _crashing_worker(comm):
    peer = (comm.rank + 1) % 2
    comm.send(np.arange(4, dtype=np.float64), peer, tag=("x",))
    comm.recv(peer, tag=("x",))
    if comm.rank == 1:
        raise RuntimeError("seeded crash for the flight recorder")
    return comm.rank


def test_process_crash_dumps_bundle_with_every_rank(tmp_path):
    transport = ProcessTransport(postmortem_to=str(tmp_path))
    with pytest.raises(Exception):
        run_workers(2, _crashing_worker, backend=transport)
    assert transport.last_postmortem_path is not None
    bundle = load_postmortem(transport.last_postmortem_path)
    assert bundle["backend"] == "process"
    assert bundle["world"] == 2
    assert bundle["reason"]["kind"] == "RuntimeError"
    assert bundle["reason"]["rank"] == 1
    # every rank contributed flight events, including the survivor.
    for r in ("0", "1"):
        assert bundle["ranks"][r]["events"], f"rank {r} ring is empty"
    crash_events = [e["event"] for e in bundle["ranks"]["1"]["events"]]
    assert "worker_error" in crash_events
    text = render_postmortem(bundle)
    assert "seeded crash" in text
    assert "worker_error" in text


def test_process_bundle_honors_env_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_POSTMORTEM_DIR", str(tmp_path / "env-dir"))
    transport = ProcessTransport()
    with pytest.raises(Exception):
        run_workers(2, _crashing_worker, backend=transport)
    assert transport.last_postmortem_path is not None
    assert str(tmp_path / "env-dir") in transport.last_postmortem_path


def test_clean_process_run_leaves_no_bundle(tmp_path):
    transport = ProcessTransport(postmortem_to=str(tmp_path))
    _, _, result = (None, None, None)
    spec = default_differential_spec()
    STRATEGIES["weipipe-interleave"](spec, 2, transport)
    assert transport.last_postmortem is None
    assert transport.last_postmortem_path is None


def test_thread_crash_dumps_bundle_too(tmp_path):
    transport = ThreadTransport(postmortem_to=str(tmp_path))
    with pytest.raises(Exception):
        run_workers(2, _crashing_worker, backend=transport)
    bundle = load_postmortem(transport.last_postmortem_path)
    assert bundle["backend"] == "thread"
    events_1 = [e["event"] for e in bundle["ranks"]["1"]["events"]]
    assert "send" in events_1
    assert "worker_error" in events_1
    # on the thread backend abort() lands on the shared fabric's ring 0.
    all_events = [
        e["event"] for snap in bundle["ranks"].values()
        for e in snap["events"]
    ]
    assert "abort" in all_events


def test_postmortem_cli_renders_bundle(tmp_path, capsys):
    from repro.cli import main

    transport = ProcessTransport(postmortem_to=str(tmp_path))
    with pytest.raises(Exception):
        run_workers(2, _crashing_worker, backend=transport)
    rc = main(["postmortem", transport.last_postmortem_path, "--last", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "repro.postmortem/v1" in out
    assert "merged timeline" in out
    with pytest.raises(SystemExit):
        main(["postmortem", str(tmp_path / "missing.json")])


# -- allocation gates ---------------------------------------------------------


def _steady_state_allocs(fabric, world=2, iters=4):
    from repro.core.weipipe import train_weipipe

    spec = default_differential_spec()
    from dataclasses import replace

    spec = replace(spec, iters=iters)
    result = train_weipipe(spec, world, mode="interleave", fabric=fabric,
                           overlap=True)
    allocs = result.extra["pool_allocs_by_iter"]
    return allocs[-1] - allocs[-2]


def test_zero_steady_state_allocs_with_tracer_and_recorder_process():
    tracer = Tracer(metadata={"gate": "alloc"})
    assert _steady_state_allocs(ProcessTransport(tracer=tracer)) == 0


def test_zero_steady_state_allocs_with_tracer_and_recorder_thread():
    tracer = Tracer(metadata={"gate": "alloc"})
    fabric = ChaosFabric(2, ChaosPolicy.quiet(0), tracer=tracer)
    assert _steady_state_allocs(fabric) == 0


def test_flight_recorder_ring_stays_bounded_after_training():
    transport = ProcessTransport()
    spec = default_differential_spec()
    STRATEGIES["weipipe-interleave"](spec, 2, transport)
    for snap in transport.flights_by_rank.values():
        assert len(snap["events"]) <= snap["capacity"]
        assert snap["recorded"] == snap["dropped"] + len(snap["events"])
