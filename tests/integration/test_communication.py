"""Communication-volume claims, measured on the functional runtime.

The paper's core argument (Section 1, Table 1 analysis): activation-
passing pipelines move ``O(G*S*H)`` per hop, WeiPipe moves ``O(H^2)``
per turn — independent of microbatch size and sequence length.  The
fabric's byte accounting lets us check those claims directly, with the
wire sizes the MIXED policy implies.
"""

import numpy as np
import pytest

from repro import FP64, MIXED, ModelConfig, TrainSpec, train
from repro.runtime import Fabric

WORLD = 4


def _cfg(hidden=16, seq=8, layers=4):
    return ModelConfig(
        hidden=hidden, n_layers=layers, n_heads=2, seq_len=seq, vocab=23
    )


def _bytes(strategy, cfg, g=2, n_mb=8):
    fabric = Fabric(WORLD)
    spec = TrainSpec(
        cfg=cfg, n_microbatches=n_mb, microbatch_size=g, iters=1, precision=FP64
    )
    train(spec, strategy, WORLD, fabric=fabric)
    return fabric.stats.bytes_total


class TestWeiPipeVolumeInvariance:
    def test_independent_of_sequence_length(self):
        b_short = _bytes("weipipe-interleave", _cfg(seq=8))
        b_long = _bytes("weipipe-interleave", _cfg(seq=32))
        # only the O(1)-sized loss/ctrl messages may differ
        assert b_long < b_short * 1.01

    def test_independent_of_microbatch_size(self):
        b_small = _bytes("weipipe-interleave", _cfg(), g=1)
        b_large = _bytes("weipipe-interleave", _cfg(), g=8)
        assert b_large < b_small * 1.01

    def test_activation_pipeline_scales_with_sequence(self):
        b_short = _bytes("1f1b", _cfg(seq=8))
        b_long = _bytes("1f1b", _cfg(seq=32))
        assert b_long > b_short * 2.5  # ~4x activations, plus fixed parts

    def test_activation_pipeline_scales_with_microbatch(self):
        b1 = _bytes("1f1b", _cfg(), g=1)
        b4 = _bytes("1f1b", _cfg(), g=4)
        assert b4 > b1 * 2.5

    def test_weipipe_scales_with_model_width(self):
        b_narrow = _bytes("weipipe-interleave", _cfg(hidden=16))
        b_wide = _bytes("weipipe-interleave", _cfg(hidden=32))
        # weights ~12 H^2: 4x parameters => ~4x bytes (embed/head ~2x)
        assert b_wide > b_narrow * 2.5


class TestCrossover:
    """Activation-passing wins when G*S/(12H) << 1, loses when >> 1 —
    the inequality that motivates the whole paper."""

    def test_long_context_favors_weipipe(self):
        # WeiPipe ships ~3 weight chunks (36 H^2) per retired layer-pass,
        # so the crossover sits near G*S ~ 18 H; go well past it.
        cfg = _cfg(hidden=16, seq=256)
        assert _bytes("weipipe-interleave", cfg, g=4) < _bytes("1f1b", cfg, g=4)

    def test_short_context_favors_activation_passing(self):
        cfg = _cfg(hidden=64, seq=4)  # weights dwarf activations
        assert _bytes("1f1b", cfg, g=1) < _bytes("weipipe-interleave", cfg, g=1)


class TestNaiveVsInterleave:
    def test_interleave_moves_fewer_bytes(self):
        """Naive ships two weight flows but uses one at a time; interleave
        retires the same work in fewer turns."""
        cfg = _cfg()
        naive = _bytes("weipipe-naive", cfg)
        inter = _bytes("weipipe-interleave", cfg)
        assert inter < naive
        # R rounds: naive 3PR turns vs interleave (R+2)P -> ratio 3R/(R+2),
        # diluted slightly by the equal-size inject/loss messages.
        assert naive / inter > 1.3


class TestRingBalance:
    def test_weipipe_traffic_is_uniform_across_links(self):
        """Every ring link carries the same load — no hotspot."""
        fabric = Fabric(WORLD)
        spec = TrainSpec(
            cfg=_cfg(), n_microbatches=8, microbatch_size=2, iters=1, precision=FP64
        )
        train(spec, "weipipe-interleave", WORLD, fabric=fabric)
        ring_pairs = {
            (p, (p + 1) % WORLD): fabric.stats.by_pair.get((p, (p + 1) % WORLD), 0)
            for p in range(WORLD)
        }
        vals = list(ring_pairs.values())
        assert max(vals) < min(vals) * 1.2


class TestWeiPipePerTurnVolume:
    """Regression-lock the paper's per-turn budget for WeiPipe-Interleave:
    every turn, the ring collectively moves exactly 3 weight-chunk-sized
    flows — 2 W (forward + backward weight slots) + 1 D (the gradient
    accumulator) — and nothing else rides the turn tags.

    The fabric's per-flow accounting (``TrafficStats.by_kind``) makes
    this exact: each turn, the P ranks hold the P slots between them, so
    the collective per-turn volume of one flow is one full model at wire
    precision.
    """

    @pytest.mark.parametrize("precision", [FP64, MIXED], ids=["fp64", "mixed"])
    def test_turn_flows_match_two_w_plus_one_d(self, precision):
        from repro.core.schedule import interleave_schedule

        cfg = _cfg()
        fabric = Fabric(WORLD)
        n_mb = 8
        spec = TrainSpec(
            cfg=cfg, n_microbatches=n_mb, microbatch_size=2, iters=1,
            precision=precision,
        )
        train(spec, "weipipe-interleave", WORLD, fabric=fabric)

        total_turns, _ = interleave_schedule(WORLD, n_mb)
        model_numel = sum(c.numel for c in spec.init_chunks())
        w_bytes = precision.weight_bytes
        d_bytes = precision.weight_grad_bytes

        stats = fabric.stats
        # per flow: `total_turns` collective turns x one model at wire size
        assert stats.by_kind["F"] == total_turns * model_numel * w_bytes
        assert stats.by_kind["B"] == total_turns * model_numel * w_bytes
        assert stats.by_kind["D"] == total_turns * model_numel * d_bytes
        # message counts: one slot per rank per flow per turn
        assert stats.msgs_by_kind["F"] == total_turns * WORLD
        assert stats.msgs_by_kind["B"] == total_turns * WORLD
        assert stats.msgs_by_kind["D"] == total_turns * WORLD
        # the 3-chunk claim: element volume of D equals each W flow, so a
        # turn is exactly 3 chunk-sized messages per rank
        assert stats.by_kind["D"] // d_bytes == stats.by_kind["F"] // w_bytes

    def test_turn_flows_dominate_total_traffic(self):
        """The inject/loss/final bookkeeping flows must stay O(model),
        not grow with N: the three turn tags carry the bulk."""
        cfg = _cfg()
        fabric = Fabric(WORLD)
        spec = TrainSpec(
            cfg=cfg, n_microbatches=16, microbatch_size=2, iters=1,
            precision=FP64,
        )
        train(spec, "weipipe-interleave", WORLD, fabric=fabric)
        stats = fabric.stats
        turn_bytes = stats.by_kind["F"] + stats.by_kind["B"] + stats.by_kind["D"]
        assert turn_bytes > 0.85 * stats.bytes_total
        # every flow the engine uses is named and accounted
        assert set(stats.by_kind) >= {"F", "B", "D", "inject", "wp-loss", "wp-final"}


class TestFSDPVolume:
    def test_fsdp_moves_three_gathers_per_microbatch(self):
        """ZeRO-3: 2 all-gathers + 1 reduce-scatter of the model per
        microbatch, each (P-1)/P per rank."""
        cfg = _cfg()
        fabric = Fabric(WORLD)
        n_mb = WORLD  # one microbatch per rank
        spec = TrainSpec(
            cfg=cfg, n_microbatches=n_mb, microbatch_size=2, iters=1, precision=FP64
        )
        train(spec, "fsdp", WORLD, fabric=fabric)
        model_bytes = sum(
            c.numel * 8 for c in spec.init_chunks()
        )
        expected_per_rank = 3 * (WORLD - 1) / WORLD * model_bytes
        measured = fabric.stats.by_src[0]
        # final reassembly all-gather adds ~ (P-1)/P extra
        assert measured == pytest.approx(expected_per_rank, rel=0.55)
        assert measured > expected_per_rank * 0.95
