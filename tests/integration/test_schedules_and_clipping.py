"""Scheduled + clipped training stays equivalent across all strategies.

The LR multiplier is a pure function of the iteration and the clip
scale a deterministic function of the *global* gradient norm, so every
strategy — whatever its gradient sharding — must produce the serial
trajectory.  This exercises the scalar norm all-reduce in each
strategy's update pass (and TP's replicated-tensor counting rule).
"""

import numpy as np
import pytest

from repro import FP64, Adam, ModelConfig, TrainSpec, train
from repro.optim import cosine_with_warmup, linear_warmup

CFG = ModelConfig(hidden=16, n_layers=4, n_heads=4, seq_len=8, vocab=29, ffn=16)

STRATEGIES = [
    ("dp", 4),
    ("fsdp", 4),
    ("1f1b", 4),
    ("zb1", 4),
    ("tp", 2),
    ("sp", 4),
    ("weipipe-naive", 4),
    ("weipipe-interleave", 4),
    ("weipipe-zb", 4),
]


def _spec(**kw):
    base = dict(
        cfg=CFG, n_microbatches=8, microbatch_size=2, iters=4, precision=FP64,
        make_optimizer=lambda: Adam(lr=1e-2),
    )
    base.update(kw)
    return TrainSpec(**base)


class TestScheduledTraining:
    def test_schedule_changes_trajectory(self):
        plain = train(_spec(), "serial", 1)
        warm = train(_spec(lr_schedule=linear_warmup(4)), "serial", 1)
        assert not np.allclose(plain.losses, warm.losses)

    @pytest.mark.parametrize("strategy,world", STRATEGIES)
    def test_all_strategies_match_serial(self, strategy, world):
        sched = cosine_with_warmup(2, 8)
        ref = train(_spec(lr_schedule=sched), "serial", 1)
        got = train(_spec(lr_schedule=sched), strategy, world)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-8)
        for a, b in zip(got.chunks, ref.chunks):
            assert a.max_abs_diff(b) < 1e-8


class TestClippedTraining:
    def test_clipping_changes_trajectory(self):
        # a tight threshold that certainly fires
        plain = train(_spec(), "serial", 1)
        clipped = train(_spec(clip_norm=0.05), "serial", 1)
        assert not np.allclose(plain.losses[1:], clipped.losses[1:])

    @pytest.mark.parametrize("strategy,world", STRATEGIES)
    def test_all_strategies_match_serial(self, strategy, world):
        ref = train(_spec(clip_norm=0.05), "serial", 1)
        got = train(_spec(clip_norm=0.05), strategy, world)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-8)
        for a, b in zip(got.chunks, ref.chunks):
            assert a.max_abs_diff(b) < 1e-8

    def test_clip_and_schedule_together(self):
        spec_kw = dict(clip_norm=0.05, lr_schedule=linear_warmup(3))
        ref = train(_spec(**spec_kw), "serial", 1)
        got = train(_spec(**spec_kw), "weipipe-interleave", 4)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-8)
