"""Checkpointing: round trips, durability (v2) and resumption."""

import json
from dataclasses import asdict

import numpy as np
import pytest

from repro import Adam, FP64, MasterWeightOptimizer, MIXED, ModelConfig, SGD, TrainSpec, train
from repro.io import (
    CheckpointError,
    CorruptCheckpointError,
    load_checkpoint,
    load_checkpoint_state,
    save_checkpoint,
)
from repro.nn import init_model
from repro.parallel.common import init_opt_states

CFG = ModelConfig(hidden=16, n_layers=4, n_heads=2, seq_len=8, vocab=29)


def _spec(iters, initial=None):
    return TrainSpec(
        cfg=CFG, n_microbatches=8, microbatch_size=2, iters=iters,
        precision=FP64, make_optimizer=lambda: SGD(lr=0.1),
        initial_chunks=initial,
    )


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path):
        chunks = init_model(CFG, seed=3)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, CFG, chunks, metadata={"iteration": 7})
        cfg2, chunks2, meta = load_checkpoint(path)
        assert cfg2 == CFG
        assert meta == {"iteration": 7}
        for a, b in zip(chunks, chunks2):
            assert a.keys() == b.keys()
            for name in a.keys():
                np.testing.assert_array_equal(a[name], b[name])

    def test_wrong_chunk_count_rejected(self, tmp_path):
        chunks = init_model(CFG, seed=3)[:-1]
        with pytest.raises(ValueError):
            save_checkpoint(tmp_path / "x.npz", CFG, chunks)

    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_dtype_survives(self, tmp_path):
        cfg = CFG.with_(dtype=np.float32)
        chunks = init_model(cfg, seed=3)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, cfg, chunks)
        cfg2, chunks2, _ = load_checkpoint(path)
        assert cfg2.dtype == np.float32
        assert chunks2[0]["wq"].dtype == np.float32


class TestResume:
    def test_resume_equals_straight_run_sgd(self, tmp_path):
        """Plain SGD is stateless: 2+2 iterations across a checkpoint
        must equal 4 straight (same data schedule required)."""
        straight = train(_spec(iters=4), "serial", 1)

        first = train(_spec(iters=2), "serial", 1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, CFG, first.chunks)
        _, loaded, _ = load_checkpoint(path)

        # resume needs the data schedule to continue at iteration 2:
        class Shifted:
            def microbatch(self, it, idx, g, s):
                from repro.parallel.common import microbatch as mb

                return mb(_spec(iters=4), it + 2, idx)

        resumed_spec = _spec(iters=2, initial=loaded)
        resumed_spec.data = Shifted()
        second = train(resumed_spec, "serial", 1)

        for a, b in zip(second.chunks, straight.chunks):
            assert a.max_abs_diff(b) < 1e-12
        np.testing.assert_allclose(second.losses, straight.losses[2:], rtol=1e-12)

    def test_resume_under_different_strategy(self, tmp_path):
        """Weights are strategy-agnostic: train serial, resume on the
        WeiPipe ring."""
        first = train(_spec(iters=2), "serial", 1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, CFG, first.chunks)
        _, loaded, _ = load_checkpoint(path)
        resumed = train(_spec(iters=1, initial=loaded), "weipipe-interleave", 4)
        reference = train(_spec(iters=1, initial=first.chunks), "serial", 1)
        np.testing.assert_allclose(resumed.losses, reference.losses, rtol=1e-9)

    def test_bad_initial_chunks(self):
        wrong = init_model(CFG.with_(n_layers=2), seed=0)
        with pytest.raises(ValueError):
            _spec(iters=1, initial=wrong).init_chunks()

    def test_initial_chunks_not_mutated(self):
        initial = init_model(CFG, seed=3)
        snapshot = [c.clone() for c in initial]
        train(_spec(iters=1, initial=initial), "serial", 1)
        for a, b in zip(initial, snapshot):
            assert a.max_abs_diff(b) == 0.0


def _adam_state(chunks):
    spec = _spec(iters=1)
    opt = Adam(lr=1e-3)
    states = init_opt_states(spec, opt, chunks)
    states[0]["t"] = 7  # non-default scalar must survive the round trip
    return states


class TestFormatV2:
    def test_full_state_round_trip(self, tmp_path):
        chunks = init_model(CFG, seed=3)
        states = _adam_state(chunks)
        path = save_checkpoint(
            tmp_path / "full", CFG, chunks,
            metadata={"k": 1},
            opt_state=states,
            train_state={"next_iteration": 9, "strategy": "fsdp",
                         "losses": [1.5, 1.25]},
        )
        assert path.suffix == ".npz"
        ckpt = load_checkpoint_state(path)
        assert ckpt.version == 2
        assert ckpt.metadata == {"k": 1}
        assert ckpt.train_state == {"next_iteration": 9, "strategy": "fsdp",
                                    "losses": [1.5, 1.25]}
        assert ckpt.opt_state[0]["t"] == 7
        assert isinstance(ckpt.opt_state[0]["t"], int)
        for orig, loaded in zip(states, ckpt.opt_state):
            assert orig["m"].max_abs_diff(loaded["m"]) == 0.0
            assert orig["v"].max_abs_diff(loaded["v"]) == 0.0
        for a, b in zip(chunks, ckpt.chunks):
            assert a.max_abs_diff(b) == 0.0

    def test_nested_master_weight_state(self, tmp_path):
        chunks = init_model(CFG, seed=3)
        mw = MasterWeightOptimizer(Adam(lr=1e-3), MIXED)
        states = [mw.init_state(c) for c in chunks]
        path = save_checkpoint(tmp_path / "mw", CFG, chunks, opt_state=states)
        ckpt = load_checkpoint_state(path)
        assert ckpt.opt_state[0]["master"].max_abs_diff(states[0]["master"]) == 0.0
        assert (
            ckpt.opt_state[0]["inner"]["m"].max_abs_diff(states[0]["inner"]["m"])
            == 0.0
        )

    def test_failed_save_leaves_target_intact(self, tmp_path, monkeypatch):
        """A crash mid-write must neither clobber the existing checkpoint
        nor leave a temp file behind (atomic temp + rename)."""
        chunks = init_model(CFG, seed=3)
        path = save_checkpoint(tmp_path / "ck", CFG, chunks)
        before = path.read_bytes()

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", boom)
        with pytest.raises(OSError):
            save_checkpoint(path, CFG, init_model(CFG, seed=4))
        assert path.read_bytes() == before
        assert list(tmp_path.iterdir()) == [path]
        monkeypatch.undo()
        load_checkpoint_state(path)  # still a valid checkpoint

    def test_array_tamper_detected_by_our_checksums(self, tmp_path):
        """Rewrite the archive with one flipped tensor but a consistent
        zip container: only the per-array CRCs in the header catch it."""
        chunks = init_model(CFG, seed=3)
        path = save_checkpoint(tmp_path / "ck", CFG, chunks)
        with np.load(path) as data:
            arrays = {k: data[k].copy() for k in data.files}
        key = "chunk0/wq"
        arrays[key] = arrays[key] + 1.0
        np.savez_compressed(path, **arrays)  # fresh, self-consistent zip
        with pytest.raises(CorruptCheckpointError, match="checksum mismatch"):
            load_checkpoint_state(path)

    def test_header_tamper_detected(self, tmp_path):
        chunks = init_model(CFG, seed=3)
        path = save_checkpoint(tmp_path / "ck", CFG, chunks)
        with np.load(path) as data:
            arrays = {k: data[k].copy() for k in data.files}
        header = json.loads(bytes(arrays["__header__"]).decode())
        header["metadata"]["injected"] = True
        arrays["__header__"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(CorruptCheckpointError, match="header checksum"):
            load_checkpoint_state(path)

    def test_truncated_file_rejected(self, tmp_path):
        chunks = init_model(CFG, seed=3)
        path = save_checkpoint(tmp_path / "ck", CFG, chunks)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        with pytest.raises(CorruptCheckpointError):
            load_checkpoint_state(path)

    def test_bit_rot_rejected(self, tmp_path):
        """Corrupting the middle third of the raw file (array data for
        any checkpoint this size) is caught at the container layer."""
        chunks = init_model(CFG, seed=3)
        path = save_checkpoint(tmp_path / "ck", CFG, chunks)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 3 : 2 * len(raw) // 3] = bytes(len(raw) // 3)
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptCheckpointError):
            load_checkpoint_state(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint_state(tmp_path / "nope.npz")

    def test_v1_checkpoint_still_loads(self, tmp_path):
        """Files written by the pre-durability format keep loading;
        they simply carry no optimizer/train state and no checksums."""
        chunks = init_model(CFG, seed=3)
        arrays = {}
        for i, chunk in enumerate(chunks):
            for name, arr in chunk.items():
                arrays[f"chunk{i}/{name}"] = arr
        cfg_dict = asdict(CFG)
        cfg_dict["dtype"] = np.dtype(CFG.dtype).name
        header = {
            "version": 1, "config": cfg_dict, "metadata": {"old": True},
            "chunk_keys": [c.keys() for c in chunks],
        }
        arrays["__header__"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        path = tmp_path / "v1.npz"
        np.savez_compressed(path, **arrays)
        ckpt = load_checkpoint_state(path)
        assert ckpt.version == 1
        assert ckpt.opt_state is None and ckpt.train_state is None
        assert ckpt.metadata == {"old": True}
        for a, b in zip(chunks, ckpt.chunks):
            assert a.max_abs_diff(b) == 0.0

    def test_unknown_version_rejected(self, tmp_path):
        header = {"version": 99, "config": {}, "chunk_keys": []}
        arrays = {
            "__header__": np.frombuffer(
                json.dumps(header).encode(), dtype=np.uint8
            )
        }
        path = tmp_path / "future.npz"
        np.savez_compressed(path, **arrays)
        with pytest.raises(CheckpointError, match="version 99 unsupported"):
            load_checkpoint_state(path)

    def test_opt_state_length_mismatch_rejected(self, tmp_path):
        chunks = init_model(CFG, seed=3)
        with pytest.raises(ValueError, match="opt_state"):
            save_checkpoint(
                tmp_path / "ck", CFG, chunks, opt_state=[{}] * (len(chunks) - 1)
            )
