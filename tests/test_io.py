"""Checkpointing: round trips and cross-strategy resumption."""

import numpy as np
import pytest

from repro import FP64, ModelConfig, SGD, TrainSpec, train
from repro.io import load_checkpoint, save_checkpoint
from repro.nn import init_model

CFG = ModelConfig(hidden=16, n_layers=4, n_heads=2, seq_len=8, vocab=29)


def _spec(iters, initial=None):
    return TrainSpec(
        cfg=CFG, n_microbatches=8, microbatch_size=2, iters=iters,
        precision=FP64, make_optimizer=lambda: SGD(lr=0.1),
        initial_chunks=initial,
    )


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path):
        chunks = init_model(CFG, seed=3)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, CFG, chunks, metadata={"iteration": 7})
        cfg2, chunks2, meta = load_checkpoint(path)
        assert cfg2 == CFG
        assert meta == {"iteration": 7}
        for a, b in zip(chunks, chunks2):
            assert a.keys() == b.keys()
            for name in a.keys():
                np.testing.assert_array_equal(a[name], b[name])

    def test_wrong_chunk_count_rejected(self, tmp_path):
        chunks = init_model(CFG, seed=3)[:-1]
        with pytest.raises(ValueError):
            save_checkpoint(tmp_path / "x.npz", CFG, chunks)

    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_dtype_survives(self, tmp_path):
        cfg = CFG.with_(dtype=np.float32)
        chunks = init_model(cfg, seed=3)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, cfg, chunks)
        cfg2, chunks2, _ = load_checkpoint(path)
        assert cfg2.dtype == np.float32
        assert chunks2[0]["wq"].dtype == np.float32


class TestResume:
    def test_resume_equals_straight_run_sgd(self, tmp_path):
        """Plain SGD is stateless: 2+2 iterations across a checkpoint
        must equal 4 straight (same data schedule required)."""
        straight = train(_spec(iters=4), "serial", 1)

        first = train(_spec(iters=2), "serial", 1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, CFG, first.chunks)
        _, loaded, _ = load_checkpoint(path)

        # resume needs the data schedule to continue at iteration 2:
        class Shifted:
            def microbatch(self, it, idx, g, s):
                from repro.parallel.common import microbatch as mb

                return mb(_spec(iters=4), it + 2, idx)

        resumed_spec = _spec(iters=2, initial=loaded)
        resumed_spec.data = Shifted()
        second = train(resumed_spec, "serial", 1)

        for a, b in zip(second.chunks, straight.chunks):
            assert a.max_abs_diff(b) < 1e-12
        np.testing.assert_allclose(second.losses, straight.losses[2:], rtol=1e-12)

    def test_resume_under_different_strategy(self, tmp_path):
        """Weights are strategy-agnostic: train serial, resume on the
        WeiPipe ring."""
        first = train(_spec(iters=2), "serial", 1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, CFG, first.chunks)
        _, loaded, _ = load_checkpoint(path)
        resumed = train(_spec(iters=1, initial=loaded), "weipipe-interleave", 4)
        reference = train(_spec(iters=1, initial=first.chunks), "serial", 1)
        np.testing.assert_allclose(resumed.losses, reference.losses, rtol=1e-9)

    def test_bad_initial_chunks(self):
        wrong = init_model(CFG.with_(n_layers=2), seed=0)
        with pytest.raises(ValueError):
            _spec(iters=1, initial=wrong).init_chunks()

    def test_initial_chunks_not_mutated(self):
        initial = init_model(CFG, seed=3)
        snapshot = [c.clone() for c in initial]
        train(_spec(iters=1, initial=initial), "serial", 1)
        for a, b in zip(initial, snapshot):
            assert a.max_abs_diff(b) == 0.0
