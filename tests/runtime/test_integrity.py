"""Wire-integrity unit tests: CRC framing, SDC injection, NACK recovery.

The contract under test: every single-bit flip in a payload's array data
changes its structural CRC32 (detection), a corrupted frame is never
delivered silently (recovery or :class:`CorruptFrameError`), and framing
costs nothing on a quiet wire.
"""

import numpy as np
import pytest

from repro.nn.params import ParamStruct
from repro.runtime import (
    ChaosFabric,
    ChaosPolicy,
    CorruptFrameError,
    WorkerError,
    corrupt_copy,
    payload_crc32,
    payload_nbytes,
    run_workers,
)
from repro.runtime.integrity import payload_flip_surface, verify_message
from repro.runtime.message import Message


def _flip_bit(arr: np.ndarray, byte_i: int, bit_i: int) -> np.ndarray:
    buf = bytearray(arr.tobytes())
    buf[byte_i] ^= 1 << bit_i
    return np.frombuffer(bytes(buf), dtype=arr.dtype).reshape(arr.shape)


class TestCrcDetectsEverySingleBitFlip:
    def test_exhaustive_over_small_array(self):
        """All 96 single-bit flips of a 3-float32 array change the CRC."""
        arr = np.array([1.5, -2.25, 3e-7], dtype=np.float32)
        crc = payload_crc32(arr)
        for byte_i in range(arr.nbytes):
            for bit_i in range(8):
                flipped = _flip_bit(arr, byte_i, bit_i)
                assert payload_crc32(flipped) != crc, (byte_i, bit_i)

    @pytest.mark.parametrize("seed", range(4))
    def test_sampled_over_random_payloads(self, seed):
        """Seeded corrupt_copy of arrays, arena ParamStructs and tuple
        payloads always changes the CRC and never mutates the original."""
        rng = np.random.default_rng(seed)
        chunk = ParamStruct({
            "w": rng.standard_normal((4, 5)),
            "b": rng.standard_normal(5),
        }).to_arena()
        payloads = [
            rng.standard_normal(64),
            rng.standard_normal((8, 3)).astype(np.float32),
            chunk,
            ("F", 3, {"w": rng.standard_normal((2, 2))}),
            [rng.standard_normal(4), ("mark", 1)],
        ]
        for payload in payloads:
            crc = payload_crc32(payload)
            for _ in range(32):
                bad = corrupt_copy(payload, rng)
                assert bad is not None
                assert payload_crc32(bad) != crc
                # the original must be untouched (wire corrupts a copy).
                assert payload_crc32(payload) == crc

    def test_no_array_surface_means_no_flip(self):
        rng = np.random.default_rng(0)
        for payload in ("hello", 42, {"k": 1}, ("tag", 3), None):
            assert payload_flip_surface(payload) == 0
            assert corrupt_copy(payload, rng) is None

    def test_structure_is_part_of_the_frame(self):
        """Same bytes under a different dtype/shape/container must not
        alias: a garbled header cannot masquerade as a valid frame."""
        z32 = np.zeros(4, dtype=np.float32)
        z64 = np.zeros(2, dtype=np.float64)
        assert z32.tobytes() == z64.tobytes()
        assert payload_crc32(z32) != payload_crc32(z64)
        flat = np.arange(6.0)
        assert payload_crc32(flat) != payload_crc32(flat.reshape(2, 3))
        assert payload_crc32([1, 2]) != payload_crc32((1, 2))


class TestGarbledFramesNeverDeliverSilently:
    def test_truncated_and_garbled_frames_fail_verification(self):
        arr = np.arange(32, dtype=np.float64)
        msg = Message(0, 1, ("t",), arr, arr.nbytes, crc=payload_crc32(arr))
        assert verify_message(msg)
        truncated = Message(0, 1, ("t",), arr[:-1], arr.nbytes, crc=msg.crc)
        assert not verify_message(truncated)
        garbled = Message(
            0, 1, ("t",), arr.astype(np.float32), arr.nbytes, crc=msg.crc
        )
        assert not verify_message(garbled)
        unframed = Message(0, 1, ("t",), arr, arr.nbytes)
        assert verify_message(unframed)  # no frame, nothing to check

    @pytest.mark.parametrize("seed", range(3))
    def test_bitflips_recovered_bit_exact(self, seed):
        """Under heavy SDC injection every delivered array is bit-exact:
        the NACK/retransmit path silently heals the wire."""
        policy = ChaosPolicy.quiet(seed)
        policy = ChaosPolicy(
            seed=seed, delay_prob=0.0, drop_prob=0.0, duplicate_prob=0.0,
            bitflip_prob=0.7, retransmit_budget=64,
        )
        fab = ChaosFabric(2, policy)
        rng = np.random.default_rng(seed)
        arrays = [rng.standard_normal(16) for _ in range(12)]

        def fn(comm):
            if comm.rank == 0:
                for i, a in enumerate(arrays):
                    comm.send(a, 1, ("blk", i))
                return None
            return [comm.recv(0, ("blk", i)) for i in range(len(arrays))]

        results = run_workers(2, fn, fabric=fab)
        assert fab.chaos.bitflips > 0  # the adversary actually fired
        for got, want in zip(results[1], arrays):
            assert np.array_equal(got, want)

    def test_budget_exhaustion_raises_corrupt_frame_error(self):
        """A flow whose every (re)transmission is corrupted is poisoned:
        the receiver gets CorruptFrameError, never a wrong payload."""
        policy = ChaosPolicy(
            seed=3, delay_prob=0.0, drop_prob=0.0, duplicate_prob=0.0,
            bitflip_prob=1.0, retransmit_budget=3,
        )
        fab = ChaosFabric(2, policy)

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.ones(8), 1, ("poison",))
                return None
            return comm.recv(0, ("poison",))

        with pytest.raises(WorkerError) as ei:
            run_workers(2, fn, fabric=fab)
        assert isinstance(ei.value.original, CorruptFrameError)
        assert fab.chaos.nacks == 3  # exactly the budget, then poison


class TestPayloadNbytes:
    def test_paramstruct_priced_by_storage_dtype(self):
        p64 = ParamStruct({"w": np.zeros((3, 4)), "b": np.zeros(4)})
        assert payload_nbytes(p64) == 16 * 8
        p32 = ParamStruct({
            "w": np.zeros((3, 4), dtype=np.float32),
            "b": np.zeros(4, dtype=np.float32),
        })
        assert payload_nbytes(p32) == 16 * 4

    def test_containers_sum_leaves(self):
        arr = np.zeros(5, dtype=np.float32)
        assert payload_nbytes(("F", 2, arr)) == 8 + arr.nbytes
