"""P2P semantics: matching, ordering, deadlock detection, abort."""

import numpy as np
import pytest

from repro.runtime import (
    Fabric,
    FabricAborted,
    RecvTimeout,
    WorkerError,
    run_workers,
)


class TestBasics:
    def test_send_recv_pair(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(4), 1, ("x",))
                return None
            return comm.recv(0, ("x",))

        results = run_workers(2, fn)
        np.testing.assert_array_equal(results[1], np.arange(4))

    def test_fifo_order_same_tag(self):
        def fn(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(i, 1, ("seq",))
                return None
            return [comm.recv(0, ("seq",)) for _ in range(10)]

        results = run_workers(2, fn)
        assert results[1] == list(range(10))

    def test_tag_matching_out_of_order(self):
        """A recv for tag B must not consume a message with tag A."""

        def fn(comm):
            if comm.rank == 0:
                comm.send("first", 1, ("a",))
                comm.send("second", 1, ("b",))
                return None
            b = comm.recv(0, ("b",))
            a = comm.recv(0, ("a",))
            return (a, b)

        results = run_workers(2, fn)
        assert results[1] == ("first", "second")

    def test_irecv_wait(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.ones(3), 1, ("w",))
                return None
            h = comm.irecv(0, ("w",))
            return h.wait()

        results = run_workers(2, fn)
        np.testing.assert_array_equal(results[1], np.ones(3))

    def test_ring_neighbours(self):
        fab = Fabric(4)
        c = fab.communicator(0)
        assert c.right == 1 and c.left == 3
        c3 = fab.communicator(3)
        assert c3.right == 0 and c3.left == 2

    def test_sendrecv_ring_rotation(self):
        def fn(comm):
            return comm.sendrecv(comm.rank, comm.right, comm.left, ("rot",))

        results = run_workers(4, fn)
        assert results == [3, 0, 1, 2]


class TestFailureModes:
    def test_recv_timeout_names_blocked_pair(self):
        def fn(comm):
            if comm.rank == 1:
                comm.recv(0, ("never",), timeout=0.2)

        with pytest.raises(WorkerError) as exc_info:
            run_workers(2, fn, timeout=5.0)
        assert isinstance(exc_info.value.original, RecvTimeout)
        assert "rank 1" in str(exc_info.value)

    def test_peer_exception_unblocks_recv(self):
        def fn(comm):
            if comm.rank == 0:
                raise ValueError("boom")
            comm.recv(0, ("x",), timeout=30.0)

        with pytest.raises(WorkerError) as exc_info:
            run_workers(2, fn, timeout=10.0)
        # either the originating error or the poisoned-fabric error is fine,
        # but the run must not hang.
        assert isinstance(exc_info.value.original, (ValueError, FabricAborted))

    def test_invalid_rank_rejected(self):
        fab = Fabric(2)
        with pytest.raises(ValueError):
            fab.communicator(5)

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            Fabric(0)


class TestTrafficAccounting:
    def test_bytes_counted(self):
        fab = Fabric(2)

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10, dtype=np.float64), 1, ("t",))
            else:
                comm.recv(0, ("t",))

        run_workers(2, fn, fabric=fab)
        assert fab.stats.messages == 1
        assert fab.stats.bytes_total == 80
        assert fab.stats.by_pair[(0, 1)] == 80

    def test_logical_nbytes_override(self):
        fab = Fabric(2)

        def fn(comm):
            if comm.rank == 0:
                # fp16 on the wire: half the float32 physical size
                comm.send(np.zeros(10, dtype=np.float32), 1, ("t",), nbytes=20)
            else:
                comm.recv(0, ("t",))

        run_workers(2, fn, fabric=fab)
        assert fab.stats.bytes_total == 20
