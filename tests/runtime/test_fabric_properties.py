"""Property tests on the fabric: ordering, conservation, determinism.

Each property is checked on the plain instant-delivery :class:`Fabric`
and (where it must survive an adversarial wire) on seeded
:class:`ChaosFabric` instances — the fabric contract is seed-invariant.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import ChaosFabric, ChaosPolicy, Fabric, all_reduce, run_workers

CHAOTIC = dict(delay_prob=0.8, max_delay=0.002, drop_prob=0.2, duplicate_prob=0.2,
               retry_delay=0.001)


def _fabric_for(world, chaos_seed):
    """chaos_seed None -> plain fabric, else a seeded adversary."""
    if chaos_seed is None:
        return Fabric(world)
    return ChaosFabric(world, ChaosPolicy(seed=chaos_seed, **CHAOTIC))


@given(
    payloads=st.lists(st.integers(-1000, 1000), min_size=1, max_size=30),
    chaos_seed=st.one_of(st.none(), st.integers(0, 1000)),
)
@settings(max_examples=40, deadline=None)
def test_property_fifo_per_tag(payloads, chaos_seed):
    """Messages on one (src, dst, tag) channel arrive in send order —
    on the instant wire and under any chaos adversary."""

    def fn(comm):
        if comm.rank == 0:
            for v in payloads:
                comm.send(v, 1, ("stream",))
            return None
        return [comm.recv(0, ("stream",)) for _ in payloads]

    results = run_workers(2, fn, fabric=_fabric_for(2, chaos_seed))
    assert results[1] == payloads


@given(
    schedule=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 999)),
        min_size=1,
        max_size=40,
    ),
    chaos_seed=st.one_of(st.none(), st.integers(0, 1000)),
)
@settings(max_examples=40, deadline=None)
def test_property_tag_match_isolation(schedule, chaos_seed):
    """Randomized interleaved sends on several tags: each tag's stream is
    received FIFO and uncontaminated by the other tags (MPI tag matching)."""
    by_tag = {}
    for tag, v in schedule:
        by_tag.setdefault(tag, []).append(v)

    def fn(comm):
        if comm.rank == 0:
            for tag, v in schedule:
                comm.send(v, 1, (tag,))
            return None
        # drain tags in a fixed (arbitrary) order, not the send order
        return {
            tag: [comm.recv(0, (tag,)) for _ in vals]
            for tag, vals in sorted(by_tag.items())
        }

    results = run_workers(2, fn, fabric=_fabric_for(2, chaos_seed))
    assert results[1] == by_tag


@given(
    n_msgs=st.integers(1, 15),
    chaos_seed=st.one_of(st.none(), st.integers(0, 1000)),
)
@settings(max_examples=30, deadline=None)
def test_property_poll_ready_recv_consistent(n_msgs, chaos_seed):
    """``poll()``/``_RecvHandle.ready()`` agree with ``recv``: ready-ness
    is monotonic (once True it stays True until consumed), a ready handle
    completes without blocking, and payloads keep FIFO order."""
    import time as _time

    def fn(comm):
        if comm.rank == 0:
            for i in range(n_msgs):
                comm.send(i, 1, ("pr",))
            return None
        got = []
        for _ in range(n_msgs):
            h = comm.irecv(0, ("pr",))
            deadline = _time.monotonic() + 5.0
            while not h.ready():
                assert _time.monotonic() < deadline, "ready() never flipped"
                _time.sleep(0.0002)
            # ready() implies poll() sees it too, and wait() must be instant
            assert h.ready()
            got.append(h.wait(timeout=0.5))
        # stream fully drained: poll reports empty
        assert not comm.fabric.poll(comm.rank, 0, ("pr",))
        return got

    results = run_workers(2, fn, fabric=_fabric_for(2, chaos_seed))
    assert results[1] == list(range(n_msgs))


@given(
    world=st.integers(2, 5),
    n_msgs=st.integers(1, 10),
)
@settings(max_examples=30, deadline=None)
def test_property_message_conservation(world, n_msgs):
    """Every byte sent is accounted exactly once in the traffic stats."""
    fab = Fabric(world)

    def fn(comm):
        for m in range(n_msgs):
            comm.send(np.zeros(8), comm.right, ("m", m))
        for m in range(n_msgs):
            comm.recv(comm.left, ("m", m))

    run_workers(world, fn, fabric=fab)
    assert fab.stats.messages == world * n_msgs
    assert fab.stats.bytes_total == world * n_msgs * 64


@given(
    world=st.integers(2, 5),
    size=st.integers(1, 200),
    seed=st.integers(0, 50),
)
@settings(max_examples=30, deadline=None)
def test_property_all_reduce_correct_and_deterministic(world, size, seed):
    """Ring all-reduce equals the serial sum and is bitwise repeatable."""

    def fn(comm):
        rng = np.random.default_rng((seed, comm.rank))
        local = rng.normal(size=size)
        return local, all_reduce(comm, local)

    r1 = run_workers(world, fn)
    r2 = run_workers(world, fn)
    total = np.sum([loc for loc, _ in r1], axis=0)
    for (_, red1), (_, red2) in zip(r1, r2):
        np.testing.assert_array_equal(red1, red2)  # determinism
        np.testing.assert_allclose(red1, total, rtol=1e-12)  # correctness
    # all ranks agree bitwise
    first = r1[0][1]
    for _, red in r1[1:]:
        np.testing.assert_array_equal(red, first)


def test_microbatch_determinism_across_call_sites():
    """Any worker regenerating a microbatch gets identical bits — the
    property replacing a shared data loader."""
    from repro import FP64, ModelConfig, TrainSpec
    from repro.parallel.common import microbatch

    cfg = ModelConfig(hidden=16, n_layers=2, n_heads=2, seq_len=8, vocab=13)
    spec = TrainSpec(cfg=cfg, n_microbatches=4, microbatch_size=2, precision=FP64)
    for it in range(3):
        for mb in range(4):
            a = microbatch(spec, it, mb)
            b = microbatch(spec, it, mb)
            np.testing.assert_array_equal(a[0], b[0])
            np.testing.assert_array_equal(a[1], b[1])
    # distinct (it, mb) pairs give distinct batches
    t1 = microbatch(spec, 0, 0)[0]
    t2 = microbatch(spec, 0, 1)[0]
    t3 = microbatch(spec, 1, 0)[0]
    assert not np.array_equal(t1, t2)
    assert not np.array_equal(t1, t3)
