"""ChaosFabric unit tests: the adversary must stay within legal semantics.

Whatever the seed, a correct program must observe exactly the MPI/NCCL
contract the plain Fabric gives: per-(src, dst, tag) FIFO, tag-match
isolation, exactly-once delivery, poison-on-abort.  Only timing and
cross-channel interleaving may differ.
"""

import threading
import time

import numpy as np
import pytest

from repro.runtime import (
    ChaosCrash,
    ChaosFabric,
    ChaosPolicy,
    Fabric,
    FabricAborted,
    RecvTimeout,
    WorkerError,
    run_workers,
)

AGGRESSIVE = dict(
    delay_prob=0.9, max_delay=0.002, drop_prob=0.3, duplicate_prob=0.3,
    retry_delay=0.001,
)


class TestLegalSemanticsUnderChaos:
    @pytest.mark.parametrize("seed", range(8))
    def test_fifo_per_channel_and_exactly_once(self, seed):
        fab = ChaosFabric(2, ChaosPolicy(seed=seed, **AGGRESSIVE))
        n = 40

        def fn(comm):
            if comm.rank == 0:
                for i in range(n):
                    comm.send(i, 1, ("a",))
                    comm.send(100 + i, 1, ("b",))
                return None
            a = [comm.recv(0, ("a",)) for _ in range(n)]
            b = [comm.recv(0, ("b",)) for _ in range(n)]
            return a, b

        results = run_workers(2, fn, fabric=fab)
        a, b = results[1]
        assert a == list(range(n))  # FIFO per channel
        assert b == [100 + i for i in range(n)]  # tag isolation
        # logical traffic counts each message once, chaos or not
        assert fab.stats.messages == 2 * n

    @pytest.mark.parametrize("seed", range(4))
    def test_no_ghost_deliveries(self, seed):
        """After draining, duplicates must not linger as extra messages."""
        fab = ChaosFabric(2, ChaosPolicy(seed=seed, duplicate_prob=1.0,
                                         delay_prob=1.0, max_delay=0.002))

        def fn(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, 1, ("t",))
                return None
            return [comm.recv(0, ("t",)) for _ in range(20)]

        results = run_workers(2, fn, fabric=fab)
        assert results[1] == list(range(20))
        # give every duplicate time to land, then confirm it was discarded
        deadline = time.monotonic() + 1.0
        while time.monotonic() < deadline:
            if not fab.poll(1, 0, ("t",)) and not fab._limbo:
                break
            time.sleep(0.005)
        assert not fab.poll(1, 0, ("t",))
        assert fab.chaos.duplicates == 20
        assert fab.chaos.duplicates_discarded == 20

    def test_drop_with_retry_still_delivers_everything(self):
        """drop_prob=1: every first transmission is lost, every message
        still arrives via the sender-side retransmission."""
        fab = ChaosFabric(2, ChaosPolicy(seed=7, drop_prob=1.0, delay_prob=0.0,
                                         retry_delay=0.001))

        def fn(comm):
            if comm.rank == 0:
                for i in range(15):
                    comm.send(i, 1, ("r",))
                return None
            return [comm.recv(0, ("r",)) for _ in range(15)]

        results = run_workers(2, fn, fabric=fab)
        assert results[1] == list(range(15))
        assert fab.chaos.dropped == 15
        assert fab.chaos.retransmits == 15

    def test_quiet_policy_injects_nothing(self):
        fab = ChaosFabric(2, ChaosPolicy.quiet())

        def fn(comm):
            if comm.rank == 0:
                comm.send("x", 1, ("q",))
                return None
            return comm.recv(0, ("q",))

        run_workers(2, fn, fabric=fab)
        c = fab.chaos
        assert (c.delayed, c.dropped, c.duplicates) == (0, 0, 0)

    def test_decisions_deterministic_in_seed(self):
        """Same seed + same message set => identical fault decisions,
        regardless of thread timing."""

        def run(seed):
            fab = ChaosFabric(2, ChaosPolicy(seed=seed, **AGGRESSIVE))

            def fn(comm):
                if comm.rank == 0:
                    for i in range(30):
                        comm.send(np.full(4, i), 1, ("d", i % 3))
                    return None
                return [
                    comm.recv(0, ("d", i % 3)) for i in range(30)
                ]

            run_workers(2, fn, fabric=fab)
            c = fab.chaos
            return (c.posts, c.delayed, c.dropped, c.duplicates)

        assert run(11) == run(11)
        # different adversaries behave differently (sanity, not a law —
        # these seeds were checked to differ)
        assert run(11) != run(12)

    def test_poll_and_ready_consistent_with_recv(self):
        fab = ChaosFabric(2, ChaosPolicy(seed=3, delay_prob=1.0, max_delay=0.005))

        def fn(comm):
            if comm.rank == 0:
                comm.send(41, 1, ("p",))
                return None
            h = comm.irecv(0, ("p",))
            deadline = time.monotonic() + 5.0
            while not h.ready():
                assert time.monotonic() < deadline, "message never became ready"
                time.sleep(0.0005)
            # once ready, the wait must complete without blocking long
            return h.wait(timeout=0.5)

        assert run_workers(2, fn, fabric=fab)[1] == 41


class TestCrashInjection:
    def test_crash_raises_on_nth_post(self):
        fab = ChaosFabric(2, ChaosPolicy(seed=0, crash_rank=0, crash_at_post=3,
                                         delay_prob=0.0, drop_prob=0.0,
                                         duplicate_prob=0.0))
        comm = fab.communicator(0)
        comm.send(1, 1, ("c",))
        comm.send(2, 1, ("c",))
        with pytest.raises(ChaosCrash, match="3th send"):
            comm.send(3, 1, ("c",))
        assert fab.chaos.crashes == 1

    def test_crash_mid_schedule_poisons_peers(self):
        """The injected crash must drive the abort path: every peer blocked
        in recv fails with FabricAborted, never RecvTimeout."""
        world = 4
        fab = ChaosFabric(
            world,
            ChaosPolicy(seed=0, crash_rank=2, crash_at_post=4),
            timeout=10.0,
        )
        outcomes = {}

        def fn(comm):
            try:
                for t in range(10):
                    comm.sendrecv(t, comm.right, comm.left, ("turn", t))
            except FabricAborted:
                outcomes[comm.rank] = "aborted"
                raise
            except RecvTimeout:
                outcomes[comm.rank] = "timeout"
                raise
            except ChaosCrash:
                outcomes[comm.rank] = "crashed"
                raise

        with pytest.raises(WorkerError):
            run_workers(world, fn, fabric=fab, timeout=10.0)
        assert outcomes[2] == "crashed"
        peers = {outcomes.get(r) for r in (0, 1, 3)}
        assert peers <= {"aborted"}, f"peers saw {outcomes}"


class TestTimeoutBookkeeping:
    """Regression for the take() deadline fix: spurious wakeups must not
    push a negative timeout into Condition.wait, and the error reports
    true elapsed time."""

    @pytest.mark.parametrize("make_fabric", [
        lambda: Fabric(2, timeout=0.25),
        lambda: ChaosFabric(2, ChaosPolicy(seed=0), timeout=0.25),
    ])
    def test_recv_timeout_survives_notification_storm(self, make_fabric):
        fab = make_fabric()
        stop = threading.Event()

        def spam():
            comm = fab.communicator(0)
            while not stop.is_set():
                comm.send(0, 1, ("other",))  # wrong tag: wakes, never matches
                time.sleep(0.005)

        t = threading.Thread(target=spam, daemon=True)
        t.start()
        try:
            start = time.monotonic()
            with pytest.raises(RecvTimeout) as ei:
                fab.take(1, 0, ("wanted",), None)
            elapsed = time.monotonic() - start
        finally:
            stop.set()
            t.join()
        assert elapsed >= 0.25
        assert "timeout 0.25s" in str(ei.value)

    def test_explicit_timeout_overrides_fabric_default(self):
        fab = Fabric(2, timeout=60.0)
        start = time.monotonic()
        with pytest.raises(RecvTimeout):
            fab.take(1, 0, ("never",), 0.05)
        assert time.monotonic() - start < 5.0
