"""Transient-fault injection tests: determinism, flaps, stalls, NIC outages.

These exercise the chaos layer's *transient* adversary (PR 7) as opposed
to the fail-stop crashes of PR 2: every fault is survivable, counted in
:class:`ChaosStats`, and decided by pure seeded draws so two identical
runs inject identically.
"""

import time

import numpy as np
import pytest

from repro.runtime import ChaosFabric, ChaosPolicy, run_workers


def _ring_exchange(rounds=6, size=32):
    """Worker fn: each rank sends a seeded array right and recvs from the
    left each round; returns the list of received arrays."""

    def fn(comm):
        rng = np.random.default_rng(100 + comm.rank)
        got = []
        for r in range(rounds):
            payload = rng.standard_normal(size)
            right = (comm.rank + 1) % comm.world_size
            left = (comm.rank - 1) % comm.world_size
            comm.send(payload, right, ("ring", r))
            got.append(comm.recv(left, ("ring", r)))
        return got

    return fn


def _stats_tuple(fab):
    s = fab.chaos
    return (s.bitflips, s.corrupt_frames, s.nacks, s.flapped,
            s.stalls, s.rank_flaps, s.delivered)


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 11])
    def test_same_seed_same_injections(self, seed):
        """Two runs with the same seed inject the same faults and deliver
        the same values.  Duplicates/drops are disabled: a duplicated
        corrupt frame can race its retransmission, which makes the
        corrupt_frames count timing-dependent by design."""
        policy = ChaosPolicy(
            seed=seed, delay_prob=0.3, max_delay=0.001,
            drop_prob=0.0, duplicate_prob=0.0,
            bitflip_prob=0.25, stall_prob=0.1, max_stall=0.002,
        )
        runs = []
        for _ in range(2):
            fab = ChaosFabric(3, policy)
            res = run_workers(3, _ring_exchange(), fabric=fab)
            runs.append((_stats_tuple(fab), res))
        assert runs[0][0] == runs[1][0]
        assert runs[0][0][0] > 0  # bitflips actually fired at p=0.25
        for r0, r1 in zip(runs[0][1], runs[1][1]):
            for a0, a1 in zip(r0, r1):
                assert np.array_equal(a0, a1)

    def test_quiet_wire_injects_nothing(self):
        fab = ChaosFabric(3, ChaosPolicy.quiet(0))
        run_workers(3, _ring_exchange(), fabric=fab)
        s = fab.chaos
        assert (s.bitflips, s.corrupt_frames, s.nacks, s.retransmits,
                s.flapped, s.stalls, s.rank_flaps, s.dropped) == (0,) * 8
        for key in ("fabric_retransmits", "fabric_corrupt_frames",
                    "detector_suspicions", "detector_confirms",
                    "ring_rejoins"):
            assert fab._m_heal[key].value == 0, key


class TestDirectedLinkFlap:
    def test_pinned_flap_window_counts_and_preserves_fifo(self):
        """Posts 1..3 on link 0->1 ride a flapped window: they are
        counted, delayed by flap_delay, and still land in FIFO order."""
        policy = ChaosPolicy(
            seed=0, delay_prob=0.0, drop_prob=0.0, duplicate_prob=0.0,
            flaps=((0, 1, 1, 3),), flap_delay=0.005,
        )
        fab = ChaosFabric(2, policy)

        def fn(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(np.full(4, float(i)), 1, ("seq", i))
                return None
            return [comm.recv(0, ("seq", i)) for i in range(5)]

        res = run_workers(2, fn, fabric=fab)
        assert fab.chaos.flapped == 3
        for i, arr in enumerate(res[1]):
            assert np.array_equal(arr, np.full(4, float(i)))

    def test_probabilistic_flaps_are_seed_deterministic(self):
        policy = ChaosPolicy(
            seed=5, delay_prob=0.0, drop_prob=0.0, duplicate_prob=0.0,
            flap_prob=0.2, flap_len=2, flap_delay=0.001,
        )
        counts = []
        for _ in range(2):
            fab = ChaosFabric(3, policy)
            run_workers(3, _ring_exchange(rounds=8), fabric=fab)
            counts.append(fab.chaos.flapped)
        assert counts[0] == counts[1]
        assert counts[0] > 0


class TestTransientStall:
    def test_pinned_stall_freezes_one_sender(self):
        policy = ChaosPolicy(
            seed=0, delay_prob=0.0, drop_prob=0.0, duplicate_prob=0.0,
            stall_rank=0, stall_at_post=2, stall_duration=0.05,
        )
        fab = ChaosFabric(2, policy)
        t0 = time.monotonic()
        res = run_workers(2, _ring_exchange(rounds=4), fabric=fab)
        elapsed = time.monotonic() - t0
        assert fab.chaos.stalls == 1
        assert fab.chaos.stall_time_s == pytest.approx(0.05)
        assert elapsed >= 0.05
        assert len(res[0]) == len(res[1]) == 4  # nobody died


class TestNicOutageRankFlap:
    def test_pinned_rank_flap_is_survivable_without_detector(self):
        """With no failure detector attached, a NIC outage is pure delay:
        all traffic of the flapped rank is held for the outage window and
        then delivered intact."""
        policy = ChaosPolicy(
            seed=0, delay_prob=0.0, drop_prob=0.0, duplicate_prob=0.0,
            flap_rank=1, flap_rank_at_post=1, flap_rank_duration=0.15,
        )
        fab = ChaosFabric(3, policy)
        t0 = time.monotonic()
        res = run_workers(3, _ring_exchange(rounds=3), fabric=fab)
        elapsed = time.monotonic() - t0
        assert fab.chaos.rank_flaps == 1
        assert elapsed >= 0.1
        # values survive the outage bit-exact
        clean_fab = ChaosFabric(3, ChaosPolicy.quiet(0))
        clean = run_workers(3, _ring_exchange(rounds=3), fabric=clean_fab)
        for r_got, r_want in zip(res, clean):
            for a, b in zip(r_got, r_want):
                assert np.array_equal(a, b)


class TestStatsSurface:
    def test_as_dict_has_transient_fields(self):
        fab = ChaosFabric(2, ChaosPolicy.quiet(0))
        d = fab.chaos.as_dict()
        for key in ("bitflips", "corrupt_frames", "nacks", "flapped",
                    "stalls", "stall_time_s", "rank_flaps"):
            assert key in d, key
