"""Sub-communicators: remapping, isolation, collectives-on-subgroups."""

import numpy as np
import pytest

from repro.runtime import Fabric, all_gather, all_reduce, run_workers
from repro.runtime.subgroup import SubCommunicator, split_grid


class TestSubCommunicator:
    def test_rank_remapping(self):
        def fn(comm):
            sub = SubCommunicator(comm, [1, 3], "odd") if comm.rank in (1, 3) else None
            if sub is None:
                return None
            return (sub.rank, sub.world_size, sub.global_rank(0), sub.global_rank(1))

        results = run_workers(4, fn)
        assert results[1] == (0, 2, 1, 3)
        assert results[3] == (1, 2, 1, 3)

    def test_ring_neighbours_local(self):
        def fn(comm):
            if comm.rank in (0, 2, 3):
                sub = SubCommunicator(comm, [0, 2, 3], "g")
                return (sub.left, sub.right)
            return None

        results = run_workers(4, fn)
        assert results[0] == (2, 1)  # local ring of size 3
        assert results[3] == (1, 0)

    def test_p2p_within_group(self):
        def fn(comm):
            if comm.rank in (1, 2):
                sub = SubCommunicator(comm, [1, 2], "pair")
                if sub.rank == 0:
                    sub.send("hello", 1, ("x",))
                    return None
                return sub.recv(0, ("x",))
            return None

        assert run_workers(4, fn)[2] == "hello"

    def test_groups_do_not_cross_match(self):
        """Same tag in two different groups must stay separate."""

        def fn(comm):
            group = [0, 1] if comm.rank < 2 else [2, 3]
            sub = SubCommunicator(comm, group, ("g", group[0]))
            sub.send(f"from-{comm.rank}", sub.right, ("t",))
            return sub.recv(sub.left, ("t",))

        results = run_workers(4, fn)
        assert results == ["from-1", "from-0", "from-3", "from-2"]

    def test_collectives_on_subgroup(self):
        def fn(comm):
            group = [0, 1] if comm.rank < 2 else [2, 3]
            sub = SubCommunicator(comm, group, ("g", group[0]))
            reduced = all_reduce(sub, np.array([float(comm.rank)]))
            gathered = all_gather(sub, comm.rank)
            return (reduced[0], gathered)

        results = run_workers(4, fn)
        assert results[0] == (1.0, [0, 1])
        assert results[3] == (5.0, [2, 3])

    def test_membership_validation(self):
        fab = Fabric(4)
        comm = fab.communicator(0)
        with pytest.raises(ValueError, match="not a member"):
            SubCommunicator(comm, [1, 2], "g")
        with pytest.raises(ValueError, match="duplicate"):
            SubCommunicator(comm, [0, 0], "g")
        with pytest.raises(ValueError, match="out of range"):
            SubCommunicator(comm, [0, 9], "g")


class TestSplitGrid:
    def test_grid_coordinates(self):
        def fn(comm):
            row_comm, col_comm, row, col = split_grid(comm, 2, 3)
            return (row, col, row_comm.world_size, col_comm.world_size,
                    row_comm.rank, col_comm.rank)

        results = run_workers(6, fn)
        assert results[0] == (0, 0, 3, 2, 0, 0)
        assert results[4] == (1, 1, 3, 2, 1, 1)
        assert results[5] == (1, 2, 3, 2, 2, 1)

    def test_bad_tiling(self):
        def fn(comm):
            split_grid(comm, 2, 3)

        with pytest.raises(Exception):
            run_workers(4, fn)

    def test_row_reduce_col_reduce(self):
        """Reduce along rows then columns touches everyone exactly once."""

        def fn(comm):
            row_comm, col_comm, _, _ = split_grid(comm, 2, 2)
            row_sum = all_reduce(row_comm, np.array([1.0]))[0]
            col_sum = all_reduce(col_comm, np.array([row_sum]))[0]
            return col_sum

        assert run_workers(4, fn) == [4.0] * 4
