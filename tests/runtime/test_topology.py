"""Topology unit and property tests.

The topology is load-bearing in three places — the chaos wire's
serialization delays, the fabric's per-link-class traffic ledger, and
the hierarchical ring's boundary/gateway structure — so its validation
must reject every malformed description loudly (DESIGN.md §12) and its
query surface must be exact.
"""

import threading

import pytest

from repro.runtime import (
    DEFAULT_INTER,
    DEFAULT_INTRA,
    ChaosFabric,
    ChaosPolicy,
    Fabric,
    LinkSpec,
    Topology,
    TopologyError,
    WREF_NBYTES,
    parse_group_shape,
    run_workers,
)
from repro.runtime.message import Message


FAST = LinkSpec("fast", bandwidth=1e9, latency=1e-6)
SLOW = LinkSpec("slow", bandwidth=1e7, latency=1e-4)


class TestParseGroupShape:
    def test_basic(self):
        assert parse_group_shape("2x2") == (2, 2)
        assert parse_group_shape("1x8") == (1, 8)
        assert parse_group_shape("8x1") == (8, 1)

    def test_whitespace_tolerated(self):
        assert parse_group_shape("  4x2 ") == (4, 2)

    @pytest.mark.parametrize(
        "bad", ["", "2x", "x2", "2*2", "axb", "2x2x2", "2 x 2", "-1x2"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(TopologyError, match="not of the form"):
            parse_group_shape(bad)

    @pytest.mark.parametrize("bad", ["0x4", "4x0", "0x0"])
    def test_zero_factors_rejected(self, bad):
        with pytest.raises(TopologyError, match="positive"):
            parse_group_shape(bad)


class TestLinkSpec:
    def test_time_is_latency_plus_serialization(self):
        link = LinkSpec("l", bandwidth=1e6, latency=0.5)
        assert link.time(0) == 0.5
        assert link.time(1e6) == pytest.approx(1.5)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(TopologyError, match="bandwidth must be > 0"):
            LinkSpec("l", bandwidth=0.0)
        with pytest.raises(TopologyError, match="bandwidth must be > 0"):
            LinkSpec("l", bandwidth=-1.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(TopologyError, match="latency must be >= 0"):
            LinkSpec("l", bandwidth=1.0, latency=-1e-9)

    def test_as_dict_round_trips_fields(self):
        d = FAST.as_dict()
        assert d == {"name": "fast", "bandwidth": 1e9, "latency": 1e-6}


class TestGroupValidation:
    def test_duplicate_rank_rejected(self):
        with pytest.raises(TopologyError, match="more than one group"):
            Topology(4, [[0, 1], [1, 2]])

    def test_missing_rank_rejected(self):
        with pytest.raises(TopologyError, match="missing ranks \\[3\\]"):
            Topology(4, [[0, 1], [2]])

    def test_unknown_rank_rejected(self):
        with pytest.raises(TopologyError, match="unknown ranks \\[4\\]"):
            Topology(4, [[0, 1], [2, 3, 4]])

    def test_unequal_groups_rejected(self):
        with pytest.raises(TopologyError, match="equal-sized"):
            Topology(6, [[0, 1], [2, 3, 4, 5]])

    def test_non_contiguous_group_rejected(self):
        with pytest.raises(TopologyError, match="contiguous"):
            Topology(4, [[0, 2], [1, 3]])

    def test_singleton_groups_rejected_by_default(self):
        with pytest.raises(TopologyError, match="allow_singleton"):
            Topology(2, [[0], [1]])

    def test_singleton_groups_allowed_explicitly(self):
        topo = Topology(2, [[0], [1]], allow_singleton=True)
        assert topo.n_groups == 2
        assert all(topo.is_gateway(r) for r in range(2))

    def test_single_group_of_one_is_fine(self):
        # a 1-rank world has no peers at all; nothing degenerates.
        topo = Topology(1, [[0]])
        assert topo.n_groups == 1

    def test_empty_groups_rejected(self):
        with pytest.raises(TopologyError, match="at least one group"):
            Topology(4, [])

    def test_bad_world_size_rejected(self):
        with pytest.raises(TopologyError, match="world_size"):
            Topology(0, [[0]])

    def test_grid_shape_must_cover_world(self):
        with pytest.raises(TopologyError, match="covers 4 ranks"):
            Topology.grid(8, "2x2")

    def test_grid_layout(self):
        topo = Topology.grid(6, "2x3")
        assert topo.groups == ((0, 1, 2), (3, 4, 5))

    def test_flat_has_no_boundaries(self):
        topo = Topology.flat(4)
        assert topo.n_groups == 1
        assert topo.ring_boundaries() == ()
        assert topo.link(0, 3) is topo.intra


class TestLinkOverrides:
    def test_missing_reverse_rejected(self):
        with pytest.raises(TopologyError, match="missing its reverse"):
            Topology(4, [[0, 1], [2, 3]], links={(1, 2): SLOW})

    def test_asymmetric_pair_rejected(self):
        with pytest.raises(TopologyError, match="asymmetric link override"):
            Topology(4, [[0, 1], [2, 3]],
                     links={(1, 2): SLOW, (2, 1): FAST})

    def test_out_of_range_rejected(self):
        with pytest.raises(TopologyError, match="outside"):
            Topology(4, [[0, 1], [2, 3]], links={(1, 7): SLOW, (7, 1): SLOW})

    def test_self_link_rejected(self):
        with pytest.raises(TopologyError, match="self-link"):
            Topology(4, [[0, 1], [2, 3]], links={(1, 1): SLOW})

    def test_symmetric_override_applies(self):
        topo = Topology(4, [[0, 1], [2, 3]],
                        links={(1, 2): SLOW, (2, 1): SLOW})
        assert topo.link(1, 2) is SLOW
        assert topo.link(2, 1) is SLOW
        # untouched pairs keep their class default
        assert topo.link(0, 1) is topo.intra
        assert topo.link(3, 0) is topo.inter


class TestQueries:
    def setup_method(self):
        self.topo = Topology.grid(4, "2x2", intra=FAST, inter=SLOW)

    def test_link_class(self):
        assert self.topo.link_class(0, 1) == "intra"
        assert self.topo.link_class(2, 3) == "intra"
        assert self.topo.link_class(1, 2) == "inter"
        assert self.topo.link_class(3, 0) == "inter"
        assert self.topo.link_class(2, 2) == "local"

    def test_group_of_out_of_range(self):
        with pytest.raises(TopologyError, match="out of range"):
            self.topo.group_of(9)

    def test_gateways_are_lowest_ranks(self):
        assert self.topo.gateways() == (0, 2)
        assert self.topo.is_gateway(0) and self.topo.is_gateway(2)
        assert not self.topo.is_gateway(1) and not self.topo.is_gateway(3)

    def test_ring_boundaries(self):
        assert self.topo.ring_boundaries() == ((1, 2), (3, 0))
        everyhop = Topology.grid(4, "4x1", allow_singleton=True)
        assert everyhop.ring_boundaries() == ((0, 1), (1, 2), (2, 3), (3, 0))

    def test_wire_time_monotone_in_bytes(self):
        assert self.topo.wire_time(0, 1, 1000) < self.topo.wire_time(0, 1, 10_000)
        assert self.topo.wire_time(0, 0, 10_000) == 0.0

    def test_inter_slower_than_intra_for_same_payload(self):
        assert self.topo.wire_time(1, 2, 4096) > self.topo.wire_time(0, 1, 4096)

    def test_as_dict_is_json_shape(self):
        d = self.topo.as_dict()
        assert d["world_size"] == 4
        assert d["groups"] == [[0, 1], [2, 3]]
        assert d["intra"]["name"] == "fast"
        assert d["inter"]["name"] == "slow"
        assert d["overrides"] == []

    def test_repr_names_shape(self):
        assert "2x2" in repr(self.topo)

    def test_wref_nbytes_is_marker_sized(self):
        # the reference token must stay tiny relative to any real chunk.
        assert 0 < WREF_NBYTES < 256


class TestChaosLinkDelay:
    """Seeded chaos delays must respect per-link ordering (satellite 2)."""

    def _fabric(self, topo):
        return ChaosFabric(topo.world_size, policy=ChaosPolicy.quiet(),
                           topology=topo)

    def test_link_delay_zero_without_topology(self):
        fab = ChaosFabric(2, policy=ChaosPolicy.quiet())
        assert fab.link_delay(0, 1, 1 << 20) == 0.0

    def test_link_delay_orders_by_link_class(self):
        topo = Topology.grid(4, "2x2", intra=FAST, inter=SLOW)
        fab = self._fabric(topo)
        n = 100_000
        assert fab.link_delay(1, 2, n) > fab.link_delay(0, 1, n)
        assert fab.link_delay(3, 0, n) > fab.link_delay(2, 3, n)
        assert fab.link_delay(0, 0, n) == 0.0

    def test_link_delay_matches_topology_wire_time(self):
        topo = Topology.grid(4, "2x2", intra=FAST, inter=SLOW)
        fab = self._fabric(topo)
        for src, dst in ((0, 1), (1, 2), (2, 0), (3, 3)):
            assert fab.link_delay(src, dst, 777) == topo.wire_time(src, dst, 777)

    def test_chaos_decisions_ignore_payload_size(self):
        # flat and hier rings differ only in nbytes on boundary hops; the
        # seeded adversary must treat both runs identically.
        pol = ChaosPolicy(seed=3)
        a = pol.decide(0, 1, ("F", 0, 1), 0)
        b = pol.decide(0, 1, ("F", 0, 1), 0)
        assert a == b  # pure in message identity; nbytes is not an input

    def test_messages_arrive_later_over_slow_links(self):
        topo = Topology.grid(2, "2x1", intra=FAST,
                             inter=LinkSpec("s", bandwidth=1e6, latency=0.02),
                             allow_singleton=True)
        fab = ChaosFabric(2, policy=ChaosPolicy.quiet(), topology=topo,
                          timeout=10.0)

        def worker(comm):
            if comm.rank == 0:
                comm.send(b"x" * 10_000, 1, ("t",))
                return 0.0
            import time
            t0 = time.perf_counter()
            comm.recv(0, ("t",))
            return time.perf_counter() - t0

        waited = run_workers(2, worker, fabric=fab)[1]
        # latency 20 ms + 10 ms serialization must be visible in wall time
        assert waited >= 0.02


class TestFabricLinkCounters:
    def test_topology_world_size_must_match(self):
        topo = Topology.grid(4, "2x2")
        with pytest.raises(ValueError, match="world_size"):
            Fabric(2, topology=topo)

    def test_link_traffic_empty_without_topology(self):
        assert Fabric(2).link_traffic() == {}

    def test_link_traffic_classifies_bytes_and_messages(self):
        topo = Topology.grid(4, "2x2")
        fab = Fabric(4, topology=topo)
        fab.post(Message(src=0, dst=1, tag=("a",), payload=b"", nbytes=100))
        fab.post(Message(src=1, dst=2, tag=("b",), payload=b"", nbytes=7))
        fab.post(Message(src=3, dst=0, tag=("c",), payload=b"", nbytes=5))
        lt = fab.link_traffic()
        assert lt["intra"] == {"bytes": 100, "messages": 1}
        assert lt["inter"] == {"bytes": 12, "messages": 2}

    def test_link_counters_surface_in_metrics(self):
        topo = Topology.grid(4, "2x2")
        fab = Fabric(4, topology=topo)
        fab.post(Message(src=1, dst=2, tag=("x",), payload=b"", nbytes=64))
        dump = fab.metrics.as_dict()
        counters = {
            (m["name"], tuple(sorted(m["labels"].items()))): m["value"]
            for m in dump["metrics"]
        }
        assert counters[("fabric_link_bytes_total", (("link", "inter"),))] == 64
        assert counters[
            ("fabric_link_messages_total", (("link", "inter"),))
        ] == 1

    def test_link_traffic_is_thread_safe_snapshot(self):
        topo = Topology.grid(2, "1x2")
        fab = Fabric(2, topology=topo)

        def pump():
            for i in range(200):
                fab.post(Message(src=0, dst=1, tag=("t", i), payload=b"",
                                 nbytes=10))

        t = threading.Thread(target=pump)
        t.start()
        while t.is_alive():
            snap = fab.link_traffic()
            for cls in snap:
                assert snap[cls]["bytes"] == 10 * snap[cls]["messages"]
        t.join()
        assert fab.link_traffic()["intra"] == {"bytes": 2000, "messages": 200}
