"""Ring collectives: correctness, determinism, volume."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    Fabric,
    all_gather,
    all_reduce,
    barrier,
    broadcast,
    reduce_scatter,
    run_workers,
    split_chunks,
)


class TestSplitChunks:
    def test_even(self):
        chunks = split_chunks(np.arange(8), 4)
        assert [c.size for c in chunks] == [2, 2, 2, 2]

    def test_uneven_front_loaded(self):
        chunks = split_chunks(np.arange(10), 4)
        assert [c.size for c in chunks] == [3, 3, 2, 2]

    def test_reassembles(self):
        x = np.arange(13)
        np.testing.assert_array_equal(np.concatenate(split_chunks(x, 5)), x)

    @given(st.integers(0, 100), st.integers(1, 9))
    @settings(max_examples=100, deadline=None)
    def test_property_partition(self, n, p):
        x = np.arange(n)
        chunks = split_chunks(x, p)
        assert len(chunks) == p
        np.testing.assert_array_equal(np.concatenate(chunks) if n else x, x)
        sizes = [c.size for c in chunks]
        assert max(sizes) - min(sizes) <= 1


class TestCollectives:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7])
    def test_all_reduce_sums(self, p):
        def fn(comm):
            x = np.full(11, float(comm.rank + 1))
            return all_reduce(comm, x)

        results = run_workers(p, fn)
        expected = np.full(11, sum(range(1, p + 1)), dtype=float)
        for r in results:
            np.testing.assert_allclose(r, expected)

    @pytest.mark.parametrize("p", [2, 4, 5])
    def test_all_gather_order(self, p):
        def fn(comm):
            return all_gather(comm, comm.rank * 10)

        results = run_workers(p, fn)
        for r in results:
            assert r == [i * 10 for i in range(p)]

    @pytest.mark.parametrize("p", [2, 3, 4])
    def test_reduce_scatter_chunks(self, p):
        n = 10

        def fn(comm):
            x = np.arange(n, dtype=float) * (comm.rank + 1)
            return reduce_scatter(comm, x)

        results = run_workers(p, fn)
        total = np.arange(n, dtype=float) * sum(range(1, p + 1))
        expected_chunks = split_chunks(total, p)
        for r, exp in zip(results, expected_chunks):
            np.testing.assert_allclose(r, exp)

    @pytest.mark.parametrize("root", [0, 2])
    def test_broadcast(self, root):
        def fn(comm):
            value = "payload" if comm.rank == root else None
            return broadcast(comm, value, root=root)

        assert run_workers(3, fn) == ["payload"] * 3

    def test_barrier_completes(self):
        def fn(comm):
            barrier(comm)
            return comm.rank

        assert run_workers(4, fn) == [0, 1, 2, 3]

    def test_all_reduce_deterministic_across_runs(self):
        """Ring accumulation order is fixed -> bitwise identical runs."""

        def fn(comm):
            rng = np.random.default_rng(comm.rank)
            return all_reduce(comm, rng.normal(size=101))

        r1 = run_workers(4, fn)
        r2 = run_workers(4, fn)
        for a, b in zip(r1, r2):
            np.testing.assert_array_equal(a, b)

    def test_all_reduce_volume_matches_ring_formula(self):
        """Per-rank bytes = 2 (P-1)/P * buffer — the paper's DP/FSDP figure."""
        p, n = 4, 1000
        fab = Fabric(p)

        def fn(comm):
            return all_reduce(comm, np.zeros(n, dtype=np.float64))

        run_workers(p, fn, fabric=fab)
        per_rank = fab.stats.by_src[0]
        expected = 2 * (p - 1) / p * n * 8
        # uneven chunking rounds a little
        assert per_rank == pytest.approx(expected, rel=0.01)

    def test_single_rank_noops(self):
        def fn(comm):
            barrier(comm)
            x = np.arange(5.0)
            assert broadcast(comm, "v") == "v"
            np.testing.assert_array_equal(all_reduce(comm, x), x)
            assert all_gather(comm, 7) == [7]
            return True

        assert run_workers(1, fn) == [True]
