"""Failure detection, the elastic launcher, and the ring-shrink loop."""

import time

import pytest

from repro.runtime import (
    Fabric,
    FabricAborted,
    PeerFailed,
    elastic_worker,
    run_workers,
    run_workers_elastic,
)


class TestFailureDetection:
    def test_blocked_receiver_wakes_with_peerfailed(self):
        """A survivor parked in recv is interrupted, not timed out."""
        fab = Fabric(2, timeout=30.0)

        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            t0 = time.monotonic()
            with pytest.raises(PeerFailed) as exc_info:
                comm.recv(0, ("never-sent",))
            assert time.monotonic() - t0 < 5.0
            assert exc_info.value.ranks == (0,)
            return "survived"

        results, errors = run_workers_elastic(2, fn, timeout=30.0, fabric=fab)
        assert results[1] == "survived"
        assert errors[0] is not None and errors[1] is None

    def test_acknowledge_then_continue(self):
        """After acknowledging, survivors can keep using the fabric."""

        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            with pytest.raises(PeerFailed):
                comm.recv(0, ("x",))
            comm.acknowledge_failures()
            assert list(comm.failed_peers()) == [0]
            # survivors 1 and 2 can still talk to each other.
            if comm.rank == 1:
                comm.send("hello", 2, ("post-crash",))
                return None
            return comm.recv(1, ("post-crash",))

        results, errors = run_workers_elastic(3, fn, timeout=30.0)
        assert results[2] == "hello"
        assert errors[0] is not None

    def test_unacknowledged_failure_keeps_interrupting(self):
        """Every fabric op re-raises until the failure is acknowledged."""

        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            with pytest.raises(PeerFailed):
                comm.recv(0, ("x",))
            with pytest.raises(PeerFailed):
                comm.send(1, (comm.rank % 2) + 1, ("y",))
            comm.acknowledge_failures()
            return "ok"

        results, errors = run_workers_elastic(3, fn, timeout=30.0)
        assert results[1] == results[2] == "ok"

    def test_plain_run_workers_still_aborts(self):
        """The non-elastic launcher keeps fail-fast abort semantics."""

        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            with pytest.raises(FabricAborted):
                comm.recv(0, ("x",))
            raise RuntimeError("unreachable rendezvous")  # pragma: no cover

        with pytest.raises(Exception) as exc_info:
            run_workers(2, fn, timeout=30.0)
        assert "boom" in str(exc_info.value)


class TestSharedJoinDeadline:
    def test_group_deadline_is_not_per_thread(self):
        """Six slow ranks share ONE deadline; the slowest is caught even
        though each individual join, timed from its own start, would have
        let it slip through."""

        def fn(comm):
            time.sleep(0.3 * (comm.rank + 1))

        t0 = time.monotonic()
        with pytest.raises(TimeoutError, match="shared across all ranks"):
            run_workers(6, fn, timeout=1.0)
        assert time.monotonic() - t0 < 3.0


class TestElasticWorkerLoop:
    @staticmethod
    def _counting_step(crash_world=None, crash_step=None):
        """Toy engine over integer state; optionally kills rank 2 once."""

        def run_step(sub, step, state):
            if (
                crash_world is not None
                and sub.world_size == crash_world
                and sub.rank == crash_world - 1
                and step == crash_step
            ):
                raise RuntimeError("injected crash")
            return float(state), state + 1

        return run_step

    def test_no_failure_plain_loop(self):
        def fn(comm):
            return elastic_worker(
                comm, iters=4, initial_state=0, run_step=self._counting_step()
            )

        results, errors = run_workers_elastic(3, fn, timeout=60.0)
        assert errors == [None, None, None]
        for res in results:
            assert res.losses == [0.0, 1.0, 2.0, 3.0]
            assert res.state == 4
            assert res.events == [] and res.survivors == [0, 1, 2]

    def test_rollback_and_shrink(self):
        """Rank 2 dies during step 1: survivors roll back to the last
        jointly committed step and the final curve is what a clean run
        would have produced (the toy engine is world-size-invariant)."""
        step = self._counting_step(crash_world=3, crash_step=1)

        def fn(comm):
            return elastic_worker(comm, iters=4, initial_state=0, run_step=step)

        results, errors = run_workers_elastic(3, fn, timeout=60.0)
        assert errors[2] is not None and errors[0] is errors[1] is None
        for res in (results[0], results[1]):
            assert res.losses == [0.0, 1.0, 2.0, 3.0]
            assert res.state == 4
            assert res.survivors == [0, 1]
            (event,) = res.events
            assert event.failed_ranks == (2,)
            assert event.survivors == (0, 1)
            assert event.step <= 1 and event.detected_at_step >= event.step
            assert res.rollback_states == [event.step]

    def test_two_sequential_failures(self):
        """4 -> 3 -> 2 ranks across two separate crashes."""

        def run_step(sub, step, state):
            if sub.world_size == 4 and sub.rank == 3 and step == 1:
                raise RuntimeError("first crash")
            if sub.world_size == 3 and sub.rank == 2 and step == 2:
                raise RuntimeError("second crash")
            return float(state), state + 1

        def fn(comm):
            return elastic_worker(comm, iters=4, initial_state=0, run_step=run_step)

        results, errors = run_workers_elastic(4, fn, timeout=60.0)
        assert errors[2] is not None and errors[3] is not None
        for res in (results[0], results[1]):
            assert res.losses == [0.0, 1.0, 2.0, 3.0]
            assert res.state == 4
            assert res.survivors == [0, 1]
            assert [e.failed_ranks for e in res.events] == [(3,), (2,)]

    def test_max_recoveries_zero_propagates(self):
        """With recovery disabled the survivors re-raise PeerFailed."""
        step = self._counting_step(crash_world=3, crash_step=1)

        def fn(comm):
            return elastic_worker(
                comm, iters=4, initial_state=0, run_step=step, max_recoveries=0
            )

        results, errors = run_workers_elastic(3, fn, timeout=60.0)
        assert all(e is not None for e in errors)
        assert isinstance(errors[0].original, PeerFailed)

    def test_commit_hook_fires_on_lowest_survivor(self):
        commits = []

        def on_commit(completed, state, losses):
            commits.append((completed, state, tuple(losses)))

        def fn(comm):
            return elastic_worker(
                comm,
                iters=3,
                initial_state=0,
                run_step=self._counting_step(),
                on_commit=on_commit,
            )

        run_workers_elastic(2, fn, timeout=60.0)
        assert commits == [
            (1, 1, (0.0,)),
            (2, 2, (0.0, 1.0)),
            (3, 3, (0.0, 1.0, 2.0)),
        ]
