"""The fail-fast contract: one worker's death must poison everyone.

A worker raising mid-schedule aborts the fabric; every peer blocked in
``recv`` — or blocking *after* the abort — must fail with
``FabricAborted`` (a loud, attributable error), never ``RecvTimeout``
(which looks like a deadlock) and never a hang.
"""

import time

import pytest

from repro.runtime import (
    Fabric,
    FabricAborted,
    RecvTimeout,
    WorkerError,
    run_workers,
)


class TestPoisonOnAbort:
    def test_peers_blocked_in_recv_fail_with_aborted(self):
        world = 4
        outcomes = {}

        def fn(comm):
            try:
                for t in range(8):
                    if comm.rank == 2 and t == 3:
                        raise ValueError("boom at turn 3")
                    comm.send(t, comm.right, ("turn", t))
                    comm.recv(comm.left, ("turn", t))
            except FabricAborted:
                outcomes[comm.rank] = "aborted"
                raise
            except RecvTimeout:
                outcomes[comm.rank] = "timeout"
                raise
            except ValueError:
                outcomes[comm.rank] = "boom"
                raise

        with pytest.raises(WorkerError):
            run_workers(world, fn, timeout=10.0)
        assert outcomes[2] == "boom"
        assert all(outcomes.get(r) == "aborted" for r in (0, 1, 3)), outcomes

    def test_peer_blocking_after_the_abort_fails_too(self):
        """A worker that only reaches its recv *after* the fabric was
        poisoned must still fail fast, not wait for a timeout."""
        world = 2
        timing = {}

        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("early death")
            time.sleep(0.2)  # rank 0 is long dead by now
            start = time.monotonic()
            try:
                comm.recv(0, ("never",))
            except FabricAborted:
                timing["blocked_for"] = time.monotonic() - start
                raise

        with pytest.raises(WorkerError):
            run_workers(world, fn, timeout=10.0)
        assert timing["blocked_for"] < 1.0  # immediate, not timeout-driven

    def test_sendrecv_full_ring_poisoned(self):
        """The paper's steady-state pattern: every rank in sendrecv on a
        ring.  One crash must unwind the whole ring."""
        world = 4
        outcomes = {}

        def fn(comm):
            try:
                for t in range(6):
                    if comm.rank == 0 and t == 2:
                        raise ArithmeticError("ring breaker")
                    comm.sendrecv(t, comm.right, comm.left, ("ring", t))
            except FabricAborted:
                outcomes[comm.rank] = "aborted"
                raise
            except RecvTimeout:
                outcomes[comm.rank] = "timeout"
                raise
            except ArithmeticError:
                outcomes[comm.rank] = "crashed"
                raise

        with pytest.raises(WorkerError) as ei:
            run_workers(world, fn, timeout=10.0)
        # the launcher surfaces the *original* error, with its rank
        assert isinstance(
            ei.value.original, (ArithmeticError, FabricAborted)
        )
        assert outcomes[0] == "crashed"
        assert "timeout" not in outcomes.values()
        assert all(outcomes.get(r) == "aborted" for r in (1, 2, 3)), outcomes

    def test_post_after_abort_raises(self):
        fab = Fabric(2)
        fab.abort("poisoned by test")
        comm = fab.communicator(0)
        with pytest.raises(FabricAborted, match="poisoned"):
            comm.send(1, 1, ("x",))

    def test_error_carries_rank_and_original(self):
        def fn(comm):
            if comm.rank == 1:
                raise KeyError("lost key")
            comm.recv(1, ("unsent",))

        with pytest.raises(WorkerError) as ei:
            run_workers(2, fn, timeout=10.0)
        err = ei.value
        assert err.rank in (0, 1)
        if err.rank == 1:
            assert isinstance(err.original, KeyError)
        else:
            assert isinstance(err.original, FabricAborted)
