"""Ring re-grow tests: rejoin protocol units and elastic end-to-end.

A confirmed-dead rank is not gone forever: it requests readmission, the
survivor leader admits it at a step boundary with a state snapshot, the
ring re-grows to full world, and the loss stream is identical on every
rank — including the one that died and came back.
"""

import pytest

from repro.runtime import (
    ChaosFabric,
    ChaosPolicy,
    DeclaredDead,
    Fabric,
    FailureDetector,
    PeerFailed,
    RecvTimeout,
    all_gather,
    elastic_worker,
    run_workers_elastic,
)


class TestRejoinProtocolUnits:
    def test_request_is_noop_for_live_rank(self):
        fab = Fabric(3)
        fab.request_rejoin(1)
        assert fab.pending_rejoins() == ()

    def test_failed_rank_can_request_and_be_admitted(self):
        det = FailureDetector()
        fab = Fabric(3, detector=det)
        fab.fail_rank(1, "test kill")
        assert 1 in fab.failed_ranks()
        fab.request_rejoin(1)
        assert fab.pending_rejoins() == (1,)
        fab.admit_rejoin(1, epoch=1, leader=0)
        assert fab.pending_rejoins() == ()
        assert 1 not in fab.failed_ranks()
        assert fab._m_heal["ring_rejoins"].value == 1
        # the admitted rank's await returns the admission ticket.
        assert fab.await_readmission(1, timeout=1.0) == (1, 0)

    def test_admit_requires_a_failed_rank(self):
        fab = Fabric(2)
        with pytest.raises(ValueError):
            fab.admit_rejoin(0, epoch=1, leader=1)

    def test_admission_resets_detector_history(self):
        det = FailureDetector()
        fab = Fabric(2, detector=det)
        det.heartbeat(1, 0.0)
        det.evaluate(1, 100.0)
        det.evaluate(1, 200.0)
        assert det.is_confirmed(1)
        fab.fail_rank(1, "confirmed dead")
        fab.admit_rejoin(1, epoch=1, leader=0)
        # a fresh incarnation must not inherit the confirmed verdict.
        assert not det.is_confirmed(1)

    def test_await_readmission_times_out_when_never_admitted(self):
        fab = Fabric(2)
        fab.fail_rank(1, "gone")
        fab.request_rejoin(1)
        with pytest.raises(RecvTimeout):
            fab.await_readmission(1, timeout=0.05)

    def test_own_death_raises_declared_dead_only_with_detector(self):
        """Legacy fail-stop behavior is preserved: without a detector a
        failure record surfaces as the PR-2 ``PeerFailed`` interrupt for
        everyone, never as ``DeclaredDead``; with a detector attached,
        the falsely-confirmed rank is told of its own death — its gateway
        into the rejoin protocol."""
        plain = Fabric(2)
        plain.fail_rank(1, "fail-stop")
        with pytest.raises(PeerFailed):
            plain.communicator(1).send(0.0, 0, ("t",))

        det_fab = Fabric(2, detector=FailureDetector())
        det_fab.fail_rank(1, "confirmed by detector")
        with pytest.raises(DeclaredDead):
            det_fab.communicator(1).send(0.0, 0, ("t",))


class TestElasticRejoinEndToEnd:
    def test_nic_outage_confirm_then_rejoin_full_world(self):
        """Rank 1's NIC goes dark for 0.8s mid-run: the detector confirms
        it dead, the ring shrinks to 3, the rank rejoins at a step
        boundary, the ring re-grows to 4, and all ranks finish with
        identical losses.  A couple of seeds are tried because the
        outage/confirmation race is wall-clock driven."""
        iters = 60

        def step(comm, it, state):
            vals = all_gather(comm, float(comm.rank + it), tag=("w", it))
            return sum(vals), state + 1

        def worker(comm):
            return elastic_worker(comm, iters, 0, step)

        last = None
        for seed in (7, 8, 9):
            policy = ChaosPolicy(
                seed=seed,
                flap_rank=1, flap_rank_at_post=25, flap_rank_duration=0.8,
            )
            det = FailureDetector(
                min_suspect_s=0.05, min_confirm_s=0.25, poll_interval=0.01
            )
            fab = ChaosFabric(4, policy, timeout=60.0, detector=det)
            results, errors = run_workers_elastic(
                4, worker, timeout=60.0, fabric=fab
            )
            rejoins = fab._m_heal["ring_rejoins"].value
            last = (results, errors, det, fab, rejoins)
            if not any(errors) and rejoins >= 1:
                break
        results, errors, det, fab, rejoins = last
        assert not any(errors), [e and repr(e.original) for e in errors]
        assert rejoins >= 1
        assert det.confirms >= 1
        # every rank — including the flapped one — finished all iters
        # with the same survivors and bit-identical losses.
        losses0 = results[0].losses
        for r, res in enumerate(results):
            assert res is not None, r
            assert res.survivors == [0, 1, 2, 3], r
            assert len(res.losses) == iters
            assert res.losses == losses0, r
        # the rejoin is visible in the per-rank event stream too.
        assert any(res.rejoins for res in results)
