"""Transport layer tests: shm rings, frame codec, arena descriptors,
control block, backend resolution, and the process transport end to end.

The thread transport is the semantic oracle; everything here checks that
the shared-memory machinery under ``ProcessTransport`` preserves it —
FIFO per link, CRC-checked frames, zero-copy arena descriptors, abort
poisoning and ``PeerFailed`` fail-stop events across real processes.
"""

import time

import numpy as np
import pytest

from repro.runtime import (
    Communicator,
    FabricAborted,
    PeerFailed,
    ProcessTransport,
    ThreadTransport,
    Transport,
    run_workers,
    run_workers_elastic,
)
from repro.runtime.communicator import Fabric
from repro.runtime.launcher import resolve_transport
from repro.runtime.transport.base import Deadline, WorkerError, join_group
from repro.runtime.transport.process import validate_process_policy
from repro.runtime.transport.shm import (
    ControlBlock,
    FrameDecoder,
    ShmArena,
    ShmRing,
    arena_offset,
    encode_frame,
    ring_offset,
    ring_segment_size,
)
from repro.runtime.chaos import ChaosPolicy


# -- ShmRing -----------------------------------------------------------------


def _ring(capacity):
    buf = memoryview(bytearray(ShmRing.HEADER + capacity))
    return ShmRing(buf, capacity, create=True)


def test_ring_roundtrip_and_accounting():
    ring = _ring(16)
    assert ring.readable() == 0
    assert ring.writable() == 16
    assert ring.write_some(memoryview(b"hello")) == 5
    assert ring.readable() == 5
    assert ring.writable() == 11
    out = memoryview(bytearray(5))
    assert ring.read_into(out) == 5
    assert bytes(out) == b"hello"
    assert ring.readable() == 0


def test_ring_wraparound_preserves_byte_order():
    ring = _ring(8)
    # advance positions so the next write straddles the physical end.
    ring.write_some(memoryview(b"aaaaa"))
    ring.read_into(memoryview(bytearray(5)))
    msg = b"wrapped!"  # 8 bytes across the 8-byte ring boundary
    assert ring.write_some(memoryview(msg)) == 8
    out = memoryview(bytearray(8))
    assert ring.read_into(out) == 8
    assert bytes(out) == msg


def test_ring_partial_write_when_full():
    ring = _ring(4)
    assert ring.write_some(memoryview(b"abcdef")) == 4  # truncated to fit
    assert ring.write_some(memoryview(b"x")) == 0  # full
    out = memoryview(bytearray(4))
    assert ring.read_into(out) == 4
    assert bytes(out) == b"abcd"


def test_ring_rejects_short_slice():
    buf = memoryview(bytearray(ShmRing.HEADER + 3))
    with pytest.raises(ValueError):
        ShmRing(buf, 8)


def test_ring_offsets_are_disjoint():
    world, control, link = 4, 128, 256
    slot = ShmRing.HEADER + link
    offsets = [
        ring_offset(s, d, world, control, link)
        for s in range(world)
        for d in range(world)
        if s != d
    ]
    assert len(set(offsets)) == world * (world - 1)
    assert min(offsets) >= control
    assert max(offsets) + slot <= ring_segment_size(world, control, link)
    # arena regions start exactly where the rings end.
    assert arena_offset(0, world, control, link, 4096) == ring_segment_size(
        world, control, link
    )
    assert arena_offset(2, world, control, link, 4096) - arena_offset(
        1, world, control, link, 4096
    ) == 4096


# -- ShmArena ----------------------------------------------------------------


def test_span_nbytes_power_of_two_classes():
    assert ShmArena.span_nbytes(1) == ShmArena.ALIGN
    assert ShmArena.span_nbytes(64) == 64
    assert ShmArena.span_nbytes(65) == 128
    assert ShmArena.span_nbytes(4096) == 4096
    assert ShmArena.span_nbytes(4097) == 8192


def _arena(nbytes=1 << 14, regions=1, own=0):
    views = [memoryview(bytearray(nbytes)) for _ in range(regions)]
    return ShmArena(views, own)


def test_arena_alloc_exact_size_pow2_reservation():
    arena = _arena()
    buf = arena.alloc(100, np.float64)  # 800 bytes -> 1024-byte span
    assert buf.shape == (100,)
    assert buf.dtype == np.float64
    assert arena.used == 1024
    # next allocation starts beyond the reserved span, aligned.
    buf2 = arena.alloc(8, np.float64)
    assert arena.locate(memoryview(buf2.view(np.uint8)))[1] == 1024


def test_arena_locate_and_view_map_same_memory():
    arena = _arena()
    buf = arena.alloc(32, np.float32)
    buf[:] = np.arange(32, dtype=np.float32)
    loc = arena.locate(memoryview(buf.view(np.uint8)))
    assert loc is not None
    region, offset = loc
    mapped = arena.view(region, offset, buf.nbytes, np.float32)
    assert np.array_equal(mapped, buf)
    mapped[0] = -1.0  # a view, not a copy
    assert buf[0] == -1.0


def test_arena_locate_rejects_private_memory():
    arena = _arena()
    private = np.arange(16, dtype=np.float64)
    assert arena.locate(memoryview(private.view(np.uint8))) is None


def test_arena_exhaustion_returns_none():
    arena = _arena(nbytes=256)
    assert arena.alloc(16, np.float64) is not None  # 128-byte span
    assert arena.alloc(16, np.float64) is not None  # region now full
    assert arena.alloc(1, np.float64) is None


def test_arena_view_out_of_range_raises():
    arena = _arena(nbytes=256)
    with pytest.raises(ValueError):
        arena.view(0, 192, 128, np.uint8)


# -- frame codec -------------------------------------------------------------


def _pump(chunks, decoder_ring):
    for chunk in chunks:
        mv = memoryview(chunk)
        while len(mv):
            n = decoder_ring.write_some(mv)
            assert n > 0, "test ring too small for frame"
            mv = mv[n:]


def _pool_acquire(numel, dtype):
    return np.empty(numel, dtype=dtype)


def test_codec_roundtrip_with_integrity():
    payload = {"w": np.arange(50, dtype=np.float64), "note": "hi"}
    chunks = encode_frame(payload, ("weights", 3), 400, seq=7, integrity=True)
    ring = _ring(1 << 12)
    dec = FrameDecoder(ring, _pool_acquire)
    _pump(chunks, ring)
    frame = dec.poll()
    assert frame is not None
    assert frame.seq == 7
    assert frame.tag == ("weights", 3)
    assert frame.nbytes == 400
    assert frame.crc is not None and frame.crc == frame.crc_actual
    assert np.array_equal(frame.payload["w"], payload["w"])
    assert frame.payload["note"] == "hi"


def test_codec_roundtrip_without_integrity():
    chunks = encode_frame([1, 2, 3], ("act",), 24, seq=0, integrity=False)
    ring = _ring(1 << 10)
    dec = FrameDecoder(ring, _pool_acquire)
    _pump(chunks, ring)
    frame = dec.poll()
    assert frame.crc is None
    assert frame.payload == [1, 2, 3]


def test_codec_detects_corrupted_wire_bytes():
    payload = np.arange(64, dtype=np.float64)
    chunks = encode_frame(payload, ("w",), 512, seq=1, integrity=True)
    chunks = [bytearray(bytes(c)) for c in chunks]
    chunks[-1][8] ^= 0xFF  # flip one payload byte after the header
    ring = _ring(1 << 11)
    dec = FrameDecoder(ring, _pool_acquire)
    _pump(chunks, ring)
    frame = dec.poll()
    assert frame is not None
    assert frame.crc != frame.crc_actual


def test_codec_streams_frame_larger_than_ring():
    payload = np.arange(1024, dtype=np.float64)  # 8 KiB body
    chunks = encode_frame(payload, ("big",), payload.nbytes, seq=2)
    ring = _ring(256)  # far smaller than the frame
    dec = FrameDecoder(ring, _pool_acquire)
    frame = None
    pending = [memoryview(c) for c in chunks]
    while frame is None:
        while pending:
            n = ring.write_some(pending[0])
            if n == 0:
                break
            pending[0] = pending[0][n:]
            if not len(pending[0]):
                pending.pop(0)
        frame = dec.poll()
    assert np.array_equal(frame.payload, payload)
    assert frame.crc == frame.crc_actual


def test_codec_arena_descriptor_ships_zero_payload_bytes():
    arena = _arena(1 << 14)
    body = arena.alloc(512, np.float64)
    body[:] = np.arange(512, dtype=np.float64)
    private = np.arange(512, dtype=np.float64)

    with_desc = encode_frame(body, ("w",), body.nbytes, 0, arena=arena)
    by_copy = encode_frame(private, ("w",), private.nbytes, 0, arena=arena)
    # the descriptor frame elides the 4 KiB body entirely: a few hundred
    # bytes of header+meta+blob, vs header+meta+blob+body for the copy.
    assert sum(len(c) for c in with_desc) < 512
    assert sum(len(c) for c in by_copy) >= body.nbytes

    ring = _ring(1 << 12)
    dec = FrameDecoder(ring, _pool_acquire, arena=arena)
    _pump(with_desc, ring)
    frame = dec.poll()
    assert frame.crc == frame.crc_actual
    assert np.array_equal(frame.payload, body)
    # by mapping, not by copy: the decoded array aliases the arena bytes.
    frame.payload[0] = -5.0
    assert body[0] == -5.0


# -- ControlBlock ------------------------------------------------------------


def test_control_block_abort_and_fail():
    world = 3
    buf = memoryview(bytearray(ControlBlock.size(world)))
    ctrl = ControlBlock(buf, world, create=True)
    assert ctrl.aborted() is None
    assert ctrl.fail_count() == 0

    ctrl.fail(1, "worker died", step=7)
    assert ctrl.is_failed(1)
    assert not ctrl.is_failed(0)
    assert ctrl.failed() == {1: ("worker died", 7)}
    assert ctrl.fail_count() == 1

    ctrl.abort("fatal")
    assert ctrl.aborted() == "fatal"

    # a second attach (no create) sees the same state.
    again = ControlBlock(buf, world)
    assert again.aborted() == "fatal"
    assert again.failed() == {1: ("worker died", 7)}


# -- backend resolution and policy gate --------------------------------------


def test_resolve_transport_combinations():
    assert isinstance(resolve_transport(), ThreadTransport)
    assert isinstance(resolve_transport(backend="thread"), ThreadTransport)
    assert isinstance(resolve_transport(backend="process"), ProcessTransport)

    fab = Fabric(2)
    tt = resolve_transport(fabric=fab)
    assert isinstance(tt, ThreadTransport)

    pt = ProcessTransport()
    assert resolve_transport(fabric=pt) is pt
    assert resolve_transport(backend=pt) is pt

    with pytest.raises(ValueError, match="cannot share an in-process fabric"):
        resolve_transport(fabric=fab, backend="process")
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_transport(backend="carrier-pigeon")


def test_validate_process_policy_gates_unsupported_knobs():
    validate_process_policy(None)
    validate_process_policy(
        ChaosPolicy(seed=0, delay_prob=1.0, max_delay=0.001,
                    drop_prob=0.0, duplicate_prob=0.0)
    )
    with pytest.raises(ValueError, match="drop_prob"):
        validate_process_policy(ChaosPolicy(seed=0, drop_prob=0.5))
    with pytest.raises(ValueError):
        ProcessTransport(policy=ChaosPolicy(seed=0, drop_prob=0.5))


def test_transport_capability_flags():
    assert ProcessTransport.name == "process"
    assert ThreadTransport.name == "thread"
    assert issubclass(ProcessTransport, Transport)
    assert ProcessTransport.chaos == "delay-only"
    assert not ProcessTransport.supports_detector
    # cross-process tracing: per-rank spill buffers merged in the parent.
    assert ProcessTransport.supports_tracer
    assert ThreadTransport.supports_tracer
    with pytest.raises(ValueError, match="failure detector"):
        ProcessTransport().launch(2, lambda comm: None, 10.0, False,
                                  detector=object())


# -- Deadline / join_group ---------------------------------------------------


def test_deadline_budget_and_expiry():
    dl = Deadline(0.05)
    assert dl.remaining() > 0
    assert dl.budget(cap=0.01) <= 0.01
    time.sleep(0.06)
    assert dl.expired()
    assert dl.remaining() == 0.0


def test_join_group_times_out_on_stuck_worker():
    import threading

    release = threading.Event()
    t = threading.Thread(target=release.wait, daemon=True)
    t.start()
    poisoned = []
    try:
        with pytest.raises(TimeoutError):
            join_group([t], Deadline(0.05), on_timeout=lambda: poisoned.append(1))
        assert poisoned == [1]
    finally:
        release.set()
        t.join()


# -- ProcessTransport end to end ---------------------------------------------


def _pingpong(comm: Communicator):
    peer = 1 - comm.rank
    mine = np.full(1000, float(comm.rank), dtype=np.float64)
    comm.send(mine, peer, tag=("data",))
    comm.send(comm.rank * 10, peer, tag=("meta",))  # separate tag namespace
    got = comm.recv(peer, tag=("data",))
    meta = comm.recv(peer, tag=("meta",))
    assert np.all(got == float(peer))
    assert meta == peer * 10
    return comm.rank


def test_process_pingpong_and_merged_stats():
    pt = ProcessTransport()
    results = run_workers(2, _pingpong, timeout=60.0, backend=pt)
    assert results == [0, 1]
    assert pt.stats.messages >= 4
    assert pt.pool is not None
    assert pt.pool["backend"] == "process"
    assert pt.pool.get("arena_capacity", 0) > 0


def test_process_world_one_falls_back_inline():
    results = run_workers(1, lambda comm: comm.rank, backend="process")
    assert results == [0]


def _raise_on_rank_one(comm: Communicator):
    if comm.rank == 1:
        raise RuntimeError("boom on rank 1")
    return "ok"


def test_process_worker_exception_becomes_worker_error():
    with pytest.raises(WorkerError) as ei:
        run_workers(2, _raise_on_rank_one, timeout=60.0, backend="process")
    assert ei.value.rank == 1
    assert "boom on rank 1" in str(ei.value)


def _abort_or_hang(comm: Communicator):
    if comm.rank == 0:
        comm.fabric.abort("pulling the plug")
        return "aborted"
    try:
        comm.recv(0, tag=("never",), timeout=30.0)
    except FabricAborted:
        return "poisoned"
    return "unreachable"


def test_process_abort_poisons_blocked_peers():
    results, errors = run_workers_elastic(
        2, _abort_or_hang, timeout=60.0, backend="process"
    )
    assert results[0] == "aborted"
    # rank 1 either caught the poison itself or was unwound by it.
    assert results[1] == "poisoned" or errors[1] is not None


def _die_or_observe(comm: Communicator):
    if comm.rank == 1:
        raise RuntimeError("fail-stop")
    try:
        comm.recv(1, tag=("w",), timeout=30.0)
    except PeerFailed as exc:
        return ("peer-failed", sorted(comm.fabric.failed_ranks()))
    return "unreachable"


def test_process_peer_failure_interrupts_survivors():
    results, errors = run_workers_elastic(
        2, _die_or_observe, timeout=60.0, backend="process"
    )
    assert errors[1] is not None and "fail-stop" in str(errors[1])
    assert results[0] == ("peer-failed", [1])


def _seeded_delay_exchange(comm: Communicator):
    peer = 1 - comm.rank
    out = np.arange(64, dtype=np.float64) + comm.rank
    comm.send(out, peer, tag=("w",))
    return float(comm.recv(peer, tag=("w",)).sum())


def test_process_delay_only_chaos_matches_thread():
    policy = ChaosPolicy(seed=3, delay_prob=1.0, max_delay=0.002,
                         drop_prob=0.0, duplicate_prob=0.0)
    via_process = run_workers(
        2, _seeded_delay_exchange, timeout=60.0,
        backend=ProcessTransport(policy=policy),
    )
    via_thread = run_workers(2, _seeded_delay_exchange, timeout=60.0)
    assert via_process == via_thread
