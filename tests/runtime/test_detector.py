"""FailureDetector unit tests (scripted clocks) + fabric integration.

The detector's contract: suspicion is a held fence, not an execution —
only a suspicion that *ages past* the confirmation threshold kills the
rank, a heartbeat clears it, and no rank is ever confirmed on the first
look regardless of how stale its clock seems.
"""

import time

import numpy as np
import pytest

from repro.runtime import (
    ChaosFabric,
    ChaosPolicy,
    FailureDetector,
    PeerFailed,
    run_workers_elastic,
)


def _warm(det, rank, t0=0.0, n=20, gap=0.01):
    """Feed a steady heartbeat cadence; returns the last timestamp."""
    t = t0
    for _ in range(n):
        det.heartbeat(rank, t)
        t += gap
    return t - gap


class TestScriptedTimeline:
    def test_suspect_then_confirm_exactly_once(self):
        det = FailureDetector(min_suspect_s=0.05, min_confirm_s=0.25)
        last = _warm(det, 1)
        # healthy: repeated evaluation right after a beat says nothing.
        assert det.evaluate(1, last + 0.001) is None
        # silence past the suspect threshold -> exactly one "suspect".
        t_sus = last + det.suspect_after(1) + 0.01
        assert det.evaluate(1, t_sus) == "suspect"
        assert det.is_suspected(1)
        assert det.suspected_ranks() == (1,)
        assert det.evaluate(1, t_sus + 0.001) is None  # transition, not state
        # below the confirm threshold the verdict stays None: the fence
        # holds but nothing dies.
        t_conf = last + det.confirm_after(1)
        assert det.evaluate(1, t_conf - 0.01) is None
        assert not det.is_confirmed(1)
        # past it: exactly one "confirm", then silence forever.
        assert det.evaluate(1, t_conf + 0.01) == "confirm"
        assert det.is_confirmed(1)
        assert det.evaluate(1, t_conf + 10.0) is None
        assert det.as_dict() == {
            "suspicions": 1, "suspicions_cleared": 0, "confirms": 1,
        }

    def test_heartbeat_clears_unconfirmed_suspicion(self):
        det = FailureDetector(min_suspect_s=0.05, min_confirm_s=0.25)
        last = _warm(det, 2)
        t_sus = last + det.suspect_after(2) + 0.01
        assert det.evaluate(2, t_sus) == "suspect"
        # the rank was only slow: its next beat clears the suspicion.
        assert det.heartbeat(2, t_sus + 0.01) is True
        assert not det.is_suspected(2)
        assert det.suspicions_cleared == 1
        # an ordinary beat on a healthy rank does not "clear" anything.
        assert det.heartbeat(2, t_sus + 0.02) is False
        # and the cycle can repeat: suspicion is re-armed, not latched.
        t2 = t_sus + 0.02 + det.suspect_after(2) + 0.01
        assert det.evaluate(2, t2) == "suspect"
        assert det.suspicions == 2

    def test_never_confirm_on_first_look(self):
        """A rank first seen ages ago is suspected, never confirmed: the
        first evaluation only anchors its clock, and confirmation
        requires a standing suspicion."""
        det = FailureDetector()
        assert det.evaluate(3, 100.0) is None  # anchors, no verdict
        # an enormous gap later: suspicion first, not execution.
        assert det.evaluate(3, 1000.0) == "suspect"
        assert not det.is_confirmed(3)

    def test_adaptive_threshold_scales_with_cadence(self):
        """A slow-cadence rank (big compute steps) earns a longer grace
        window than a chatty one; the chatty one bottoms out at the
        min_suspect_s floor."""
        det = FailureDetector(min_suspect_s=0.05)
        _warm(det, 0, n=30, gap=0.2)      # slow: beats every 200ms
        _warm(det, 1, n=30, gap=0.001)    # chatty: every 1ms
        assert det.suspect_after(0) >= 0.2
        assert det.suspect_after(1) == pytest.approx(0.05)
        assert det.suspect_after(0) > det.suspect_after(1)

    def test_reset_forgets_history(self):
        det = FailureDetector()
        last = _warm(det, 1)
        det.evaluate(1, last + 100.0)
        det.evaluate(1, last + 200.0)
        assert det.is_confirmed(1)
        det.reset(1)  # rejoin admitted a fresh incarnation
        assert not det.is_confirmed(1)
        assert det.evaluate(1, last + 300.0) is None  # first look anchors

    def test_ctor_validates_threshold_ordering(self):
        with pytest.raises(ValueError):
            FailureDetector(phi_suspect=8.0, phi_confirm=8.0)
        with pytest.raises(ValueError):
            FailureDetector(min_suspect_s=0.3, min_confirm_s=0.2)


class TestFabricIntegration:
    def test_silent_rank_is_confirmed_and_peer_sees_peerfailed(self):
        det = FailureDetector(
            min_suspect_s=0.02, min_confirm_s=0.05, poll_interval=0.005
        )
        fab = ChaosFabric(2, ChaosPolicy.quiet(0), detector=det)

        def fn(comm):
            if comm.rank == 1:
                time.sleep(0.3)  # silent well past min_confirm_s
                return None
            comm.recv(1, ("never",))

        _, errors = run_workers_elastic(2, fn, fabric=fab)
        assert errors[0] is not None
        assert isinstance(errors[0].original, PeerFailed)
        assert errors[1] is None  # the silent rank merely returned late
        assert det.confirms == 1
        assert fab._m_heal["detector_confirms"].value == 1

    def test_slow_rank_is_suspected_then_cleared(self):
        """A rank that is slow but not dead trips suspicion, then its
        message lands: delivery succeeds and the suspicion is cleared —
        the run never shrinks."""
        det = FailureDetector(
            min_suspect_s=0.02, min_confirm_s=0.5, poll_interval=0.005
        )
        fab = ChaosFabric(2, ChaosPolicy.quiet(0), detector=det)

        def fn(comm):
            if comm.rank == 1:
                time.sleep(0.1)  # past suspect, well short of confirm
                comm.send(np.arange(4.0), 0, ("late",))
                return None
            return comm.recv(1, ("late",))

        results, errors = run_workers_elastic(2, fn, fabric=fab)
        assert errors == [None, None]
        assert np.array_equal(results[0], np.arange(4.0))
        assert det.suspicions >= 1
        assert det.suspicions_cleared >= 1
        assert det.confirms == 0
        assert fab._m_heal["detector_suspicions"].value >= 1
        assert fab._m_heal["detector_suspicions_cleared"].value >= 1
