"""Nonblocking P2P: isend/irecv handles, posted-receive matching, chaos.

The double-buffered ring engine (DESIGN.md §10) leans on three
guarantees of the posted-receive machinery:

* MPI matching — posted receives on one ``(src, dst, tag)`` channel
  claim messages in *posting* order, regardless of wait order;
* prompt failure propagation — a handle parked in ``wait`` is
  interrupted with :class:`PeerFailed`, not timed out;
* an abandoned handle (timeout, failure) is unposted, so it can never
  swallow a message a later receive is entitled to.
"""

import numpy as np
import pytest

from repro.runtime import (
    ChaosFabric,
    ChaosPolicy,
    Fabric,
    PeerFailed,
    RecvTimeout,
    run_workers,
    run_workers_elastic,
)


class TestSendHandles:
    def test_isend_completes_at_post(self):
        """Buffered send: the handle is done the moment isend returns."""

        def fn(comm):
            if comm.rank == 0:
                h = comm.isend(np.arange(3), 1, ("x",))
                assert h.test() and h.ready()
                assert h.wait() is None
                return None
            return comm.recv(0, ("x",))

        results = run_workers(2, fn)
        np.testing.assert_array_equal(results[1], np.arange(3))


class TestPostedReceiveMatching:
    def test_completion_in_posting_order(self):
        """Handles on one channel claim messages in posting order even
        when waited out of order."""

        def fn(comm):
            if comm.rank == 0:
                for i in range(3):
                    comm.send(i, 1, ("seq",))
                return None
            handles = [comm.irecv(0, ("seq",)) for _ in range(3)]
            # wait in reverse: values must still map to posting order
            assert handles[2].wait() == 2
            assert handles[0].wait() == 0
            assert handles[1].wait() == 1
            return "ok"

        assert run_workers(2, fn)[1] == "ok"

    def test_test_does_not_steal_from_earlier_post(self):
        """test() on a later handle must not claim the first message."""

        def fn(comm):
            if comm.rank == 0:
                comm.recv(1, ("ready",))
                comm.send("first", 1, ("q",))
                return None
            h1 = comm.irecv(0, ("q",))
            h2 = comm.irecv(0, ("q",))
            assert not h1.test() and not h2.test()
            comm.send(True, 0, ("ready",))
            assert h1.wait() == "first"
            # exactly one message was sent: h2 stays incomplete
            assert not h2.test()
            with pytest.raises(RecvTimeout):
                h2.wait(timeout=0.2)
            return "ok"

        assert run_workers(2, fn)[1] == "ok"

    def test_blocking_recv_queues_behind_posted(self):
        """take() posts internally, so it honours earlier posted receives."""

        def fn(comm):
            if comm.rank == 0:
                comm.send("a", 1, ("t",))
                comm.send("b", 1, ("t",))
                return None
            h = comm.irecv(0, ("t",))
            second = comm.recv(0, ("t",))  # must get "b", not "a"
            return (h.wait(), second)

        assert run_workers(2, fn)[1] == ("a", "b")


class TestFailurePropagation:
    def test_wait_after_peer_failure_raises_peerfailed(self):
        """A posted receive from a dead peer surfaces PeerFailed.

        The failure races with the post: if rank 0's death is recorded
        before ``irecv`` runs, the post itself raises; otherwise the
        handle's ``wait`` does.  Either surfacing point is correct —
        the contract is that the survivor is *interrupted*, not where.
        """

        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            with pytest.raises(PeerFailed) as exc_info:
                comm.irecv(0, ("never-sent",)).wait()
            assert exc_info.value.ranks == (0,)
            return "survived"

        results, errors = run_workers_elastic(2, fn, timeout=30.0)
        assert results[1] == "survived"
        assert errors[0] is not None

    def test_survivors_can_irecv_after_acknowledge(self):
        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            with pytest.raises(PeerFailed):
                comm.recv(0, ("x",))
            comm.acknowledge_failures()
            if comm.rank == 1:
                comm.send("hello", 2, ("post",))
                return None
            return comm.irecv(1, ("post",)).wait()

        results, errors = run_workers_elastic(3, fn, timeout=30.0)
        assert results[2] == "hello"


class TestAbandonedHandles:
    def test_timed_out_handle_is_unposted(self):
        """After RecvTimeout the handle must not swallow the message."""
        fab = Fabric(2, timeout=5.0)
        h = fab.post_recv(1, 0, ("late",))
        with pytest.raises(RecvTimeout):
            fab.wait_handle(h, timeout=0.1)

        def fn(comm):
            if comm.rank == 0:
                comm.send("payload", 1, ("late",))
                return None
            return comm.recv(0, ("late",))

        # a fresh receive gets the message — the dead handle is gone
        assert run_workers(2, fn, fabric=fab)[1] == "payload"

    def test_completed_handle_survives_unposting(self):
        """A handle that completed before a timeout elsewhere keeps its
        value (done handles are immune to cancellation)."""
        fab = Fabric(2, timeout=5.0)

        def fn(comm):
            if comm.rank == 0:
                comm.send(41, 1, ("v",))
                return None
            h = comm.irecv(0, ("v",))
            assert h.wait() == 41
            assert h.wait() == 41  # idempotent after completion
            return h.test()

        assert run_workers(2, fn, fabric=fab)[1] is True


class TestChaosFifo:
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_posted_receives_fifo_under_reorder_and_duplicates(self, seed):
        """Per-channel FIFO + exactly-once survive an adversarial wire
        even with every receive pre-posted."""
        policy = ChaosPolicy(
            seed=seed, delay_prob=0.8, max_delay=0.002,
            drop_prob=0.2, duplicate_prob=0.3,
        )
        fab = ChaosFabric(2, policy=policy, timeout=30.0)
        n = 20

        def fn(comm):
            if comm.rank == 0:
                for i in range(n):
                    comm.send(i, 1, ("stream",))
                return None
            handles = [comm.irecv(0, ("stream",)) for _ in range(n)]
            # wait newest-first: posting order must still win
            return [h.wait() for h in reversed(handles)][::-1]

        assert run_workers(2, fn, fabric=fab)[1] == list(range(n))
        assert fab.chaos.duplicates_discarded >= 0

    @pytest.mark.parametrize("seed", [3, 11])
    def test_channels_stay_isolated_under_chaos(self, seed):
        """Cross-channel reordering never leaks a message into another
        channel's posted receives."""
        policy = ChaosPolicy(
            seed=seed, delay_prob=1.0, max_delay=0.003,
            drop_prob=0.1, duplicate_prob=0.2,
        )
        fab = ChaosFabric(3, policy=policy, timeout=30.0)

        def fn(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(("a", i), 2, ("chan-a",))
                    comm.send(("b", i), 2, ("chan-b",))
                return None
            if comm.rank == 1:
                for i in range(5):
                    comm.send(("c", i), 2, ("chan-a",))
                return None
            ha = [comm.irecv(0, ("chan-a",)) for _ in range(5)]
            hb = [comm.irecv(0, ("chan-b",)) for _ in range(5)]
            hc = [comm.irecv(1, ("chan-a",)) for _ in range(5)]
            return (
                [h.wait() for h in ha],
                [h.wait() for h in hb],
                [h.wait() for h in hc],
            )

        a, b, c = run_workers(3, fn, fabric=fab)[2]
        assert a == [("a", i) for i in range(5)]
        assert b == [("b", i) for i in range(5)]
        assert c == [("c", i) for i in range(5)]
