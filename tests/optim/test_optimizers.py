"""Optimizer behaviour: convergence on quadratics, reference formulas."""

import numpy as np
import pytest

from repro.nn.params import ParamStruct
from repro.nn.precision import MIXED
from repro.optim import SGD, Adam, AdamW, MasterWeightOptimizer


def _quadratic_params():
    return ParamStruct({"x": np.array([3.0, -2.0]), "y": np.array([[1.5]])})


def _quadratic_grads(p):
    # f = 0.5 * ||params||^2 -> grad = params
    return ParamStruct({k: v.copy() for k, v in p.items()})


class TestSGD:
    def test_plain_step_formula(self):
        p = _quadratic_params()
        opt = SGD(lr=0.1)
        st = opt.init_state(p)
        opt.step(p, _quadratic_grads(p), st)
        np.testing.assert_allclose(p["x"], np.array([3.0, -2.0]) * 0.9)

    def test_momentum_accumulates(self):
        p = ParamStruct({"x": np.zeros(1)})
        g = ParamStruct({"x": np.ones(1)})
        opt = SGD(lr=1.0, momentum=0.9)
        st = opt.init_state(p)
        opt.step(p, g, st)  # v=1, x=-1
        opt.step(p, g, st)  # v=1.9, x=-2.9
        np.testing.assert_allclose(p["x"], [-2.9])

    def test_weight_decay(self):
        p = ParamStruct({"x": np.array([2.0])})
        g = ParamStruct({"x": np.array([0.0])})
        opt = SGD(lr=0.5, weight_decay=0.1)
        st = opt.init_state(p)
        opt.step(p, g, st)
        np.testing.assert_allclose(p["x"], [2.0 - 0.5 * 0.1 * 2.0])

    def test_converges_on_quadratic(self):
        p = _quadratic_params()
        opt = SGD(lr=0.3)
        st = opt.init_state(p)
        for _ in range(50):
            opt.step(p, _quadratic_grads(p), st)
        assert np.abs(p["x"]).max() < 1e-6

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)


class TestAdam:
    def test_first_step_size_is_lr(self):
        """With bias correction, |first update| == lr for any grad scale."""
        for scale in (1e-4, 1.0, 1e4):
            p = ParamStruct({"x": np.array([0.0])})
            g = ParamStruct({"x": np.array([scale])})
            opt = Adam(lr=0.01)
            st = opt.init_state(p)
            opt.step(p, g, st)
            # eps shifts the ratio slightly for tiny grads
            assert p["x"][0] == pytest.approx(-0.01, rel=2e-4)

    def test_matches_reference_two_steps(self):
        """Hand-computed Adam trajectory."""
        lr, b1, b2, eps = 0.1, 0.9, 0.999, 1e-8
        p = ParamStruct({"x": np.array([1.0])})
        opt = Adam(lr=lr, betas=(b1, b2), eps=eps)
        st = opt.init_state(p)

        x, m, v = 1.0, 0.0, 0.0
        for t in (1, 2):
            g = x  # grad of 0.5 x^2
            m = b1 * m + (1 - b1) * g
            v = b2 * v + (1 - b2) * g * g
            mhat = m / (1 - b1**t)
            vhat = v / (1 - b2**t)
            x = x - lr * mhat / (np.sqrt(vhat) + eps)
            gp = ParamStruct({"x": p["x"].copy()})
            opt.step(p, gp, st)
            assert p["x"][0] == pytest.approx(x, rel=1e-12)

    def test_converges_on_quadratic(self):
        p = _quadratic_params()
        opt = Adam(lr=0.1)
        st = opt.init_state(p)
        for _ in range(300):
            opt.step(p, _quadratic_grads(p), st)
        assert np.abs(p["x"]).max() < 1e-3


class TestAdamW:
    def test_decay_is_decoupled(self):
        """AdamW decay must not pass through the moment estimates."""
        p = ParamStruct({"x": np.array([10.0])})
        g = ParamStruct({"x": np.array([0.0])})
        opt = AdamW(lr=0.1, weight_decay=0.1)
        st = opt.init_state(p)
        opt.step(p, g, st)
        # zero grad -> moments stay zero; only decay applies: x -= lr*wd*x
        assert p["x"][0] == pytest.approx(10.0 - 0.1 * 0.1 * 10.0)
        assert st["m"]["x"][0] == 0.0

    def test_adam_vs_adamw_differ_with_decay(self):
        pa = ParamStruct({"x": np.array([5.0])})
        pw = ParamStruct({"x": np.array([5.0])})
        g = ParamStruct({"x": np.array([1.0])})
        a, w = Adam(lr=0.1, weight_decay=0.5), AdamW(lr=0.1, weight_decay=0.5)
        sa, sw = a.init_state(pa), w.init_state(pw)
        a.step(pa, g, sa)
        w.step(pw, g, sw)
        assert pa["x"][0] != pytest.approx(pw["x"][0])


class TestMasterWeights:
    def test_tiny_updates_survive_fp16_storage(self):
        """1000 updates of 1e-4 on a weight of 1.0: fp16-only storage
        stalls (1e-4 < fp16 ulp at 1.0 after rounding), master weights
        accumulate them all."""
        p = ParamStruct({"x": np.array([1.0])})
        p["x"][...] = MIXED.q_weight(p["x"])
        opt = MasterWeightOptimizer(SGD(lr=1.0), MIXED)
        st = opt.init_state(p)
        g = ParamStruct({"x": np.array([1e-4])})
        for _ in range(1000):
            opt.step(p, g, st)
        # master accumulated 0.1; stored weight is the quantised master
        # fp32 master: 1000-term accumulation keeps ~1e-4 relative accuracy
        assert st["master"]["x"][0] == pytest.approx(1.0 - 0.1, rel=1e-4)
        assert p["x"][0] == pytest.approx(0.9, rel=1e-3)

    def test_naive_fp16_stalls(self):
        """Counterpoint: without master weights the same schedule stalls."""
        x = MIXED.q_weight(np.array([1.0]))
        for _ in range(1000):
            x = MIXED.q_weight(x - 1e-4 * np.array([1.0]) * 0)  # no-op guard
        x2 = MIXED.q_weight(np.array([1.0]))
        for _ in range(10):
            x2 = MIXED.q_weight(x2 - np.array([2e-5]))
        # 2e-5 is below half the fp16 ulp at 1.0 (~4.9e-4): nothing moves
        assert x2[0] == 1.0

    def test_params_stay_quantised(self):
        rng = np.random.default_rng(0)
        p = ParamStruct({"w": rng.normal(size=16)})
        p["w"][...] = MIXED.q_weight(p["w"])
        opt = MasterWeightOptimizer(AdamW(lr=0.01), MIXED)
        st = opt.init_state(p)
        opt.step(p, ParamStruct({"w": rng.normal(size=16)}), st)
        np.testing.assert_array_equal(p["w"], MIXED.q_weight(p["w"]))
