"""LR schedules and gradient clipping: unit behaviour."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.params import ParamStruct
from repro.optim import (
    SGD,
    Adam,
    MasterWeightOptimizer,
    apply_scale,
    clip_scale,
    constant,
    cosine_with_warmup,
    inverse_sqrt,
    linear_warmup,
    local_sumsq,
    step_decay,
)
from repro.nn.precision import MIXED


class TestSchedules:
    def test_constant(self):
        s = constant()
        assert s(0) == s(100) == 1.0

    def test_linear_warmup_ramp(self):
        s = linear_warmup(4)
        assert s(0) == pytest.approx(0.25)
        assert s(3) == pytest.approx(1.0)
        assert s(10) == 1.0

    def test_warmup_never_zero(self):
        for w in (1, 2, 7):
            assert linear_warmup(w)(0) > 0

    def test_cosine_endpoints(self):
        s = cosine_with_warmup(2, 10, min_mult=0.1)
        assert s(1) == pytest.approx(1.0)  # end of warmup
        assert s(2) == pytest.approx(1.0)  # cosine start
        assert s(10) == pytest.approx(0.1)
        assert s(100) == pytest.approx(0.1)  # clamps past total

    def test_cosine_midpoint(self):
        s = cosine_with_warmup(0 + 2, 12, min_mult=0.0)
        assert s(7) == pytest.approx(0.5, abs=1e-9)

    def test_cosine_monotone_decay(self):
        s = cosine_with_warmup(2, 20)
        vals = [s(i) for i in range(2, 21)]
        assert vals == sorted(vals, reverse=True)

    def test_inverse_sqrt(self):
        s = inverse_sqrt(4)
        assert s(3) == pytest.approx(1.0)
        assert s(15) == pytest.approx(math.sqrt(4 / 16))

    def test_step_decay(self):
        s = step_decay(3, factor=0.5)
        assert [s(i) for i in (0, 2, 3, 6)] == [1.0, 1.0, 0.5, 0.25]

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_warmup(0)
        with pytest.raises(ValueError):
            cosine_with_warmup(5, 5)
        with pytest.raises(ValueError):
            step_decay(0)


class TestSetLrScale:
    def test_sgd_scale_is_idempotent(self):
        opt = SGD(lr=0.5)
        opt.set_lr_scale(0.1)
        assert opt.lr == pytest.approx(0.05)
        opt.set_lr_scale(0.1)
        assert opt.lr == pytest.approx(0.05)  # scales base, not current
        opt.set_lr_scale(1.0)
        assert opt.lr == 0.5

    def test_master_weight_delegates(self):
        inner = Adam(lr=0.2)
        opt = MasterWeightOptimizer(inner, MIXED)
        opt.set_lr_scale(0.5)
        assert inner.lr == pytest.approx(0.1)

    def test_scheduled_sgd_step_size(self):
        p = ParamStruct({"x": np.array([1.0])})
        g = ParamStruct({"x": np.array([1.0])})
        opt = SGD(lr=1.0)
        st = opt.init_state(p)
        opt.set_lr_scale(0.25)
        opt.step(p, g, st)
        assert p["x"][0] == pytest.approx(0.75)


class TestClipping:
    def test_sumsq(self):
        g1 = ParamStruct({"a": np.array([3.0]), "b": np.array([4.0])})
        assert local_sumsq([g1]) == pytest.approx(25.0)

    def test_sumsq_filter(self):
        g1 = ParamStruct({"a": np.array([3.0]), "b": np.array([4.0])})
        assert local_sumsq([g1], count=lambda n: n == "a") == pytest.approx(9.0)

    def test_no_clip_below_threshold(self):
        assert clip_scale(4.0, max_norm=3.0) == 1.0  # norm 2 < 3

    def test_clip_above_threshold(self):
        assert clip_scale(100.0, max_norm=5.0) == pytest.approx(0.5)

    def test_zero_grads_safe(self):
        assert clip_scale(0.0, max_norm=1.0) == 1.0

    def test_invalid_norm(self):
        with pytest.raises(ValueError):
            clip_scale(1.0, max_norm=0.0)

    def test_apply_scale_in_place(self):
        g = ParamStruct({"a": np.array([2.0, -4.0])})
        apply_scale([g], 0.5)
        np.testing.assert_array_equal(g["a"], [1.0, -2.0])

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=20),
           st.floats(0.1, 10.0))
    @settings(max_examples=100, deadline=None)
    def test_property_clipped_norm_at_most_max(self, values, max_norm):
        g = ParamStruct({"x": np.array(values)})
        sumsq = local_sumsq([g])
        apply_scale([g], clip_scale(sumsq, max_norm))
        new_norm = math.sqrt(local_sumsq([g]))
        assert new_norm <= max_norm * (1 + 1e-9) or new_norm == 0.0

    @given(st.lists(st.floats(-1, 1), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_property_small_grads_untouched(self, values):
        g = ParamStruct({"x": np.array(values)})
        before = g["x"].copy()
        sumsq = local_sumsq([g])
        apply_scale([g], clip_scale(sumsq, max_norm=1e6))
        np.testing.assert_array_equal(g["x"], before)
