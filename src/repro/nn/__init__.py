"""NumPy transformer substrate: the model every strategy trains.

Public surface:

* :class:`~repro.nn.model.ModelConfig` — model hyper-parameters,
* :func:`~repro.nn.model.init_model` — deterministic chunked weights,
* chunk-level fwd/bwd (joint and decoupled B/W) in :mod:`repro.nn.model`,
* :class:`~repro.nn.checkpoint.CheckpointedChunk` — recomputation,
* :class:`~repro.nn.params.ParamStruct` — named tensors + flat packing,
* :class:`~repro.nn.precision.PrecisionPolicy` — fp16/bf16 emulation.
"""

from .checkpoint import CheckpointedChunk
from .model import (
    ModelConfig,
    chunk_bwd,
    chunk_bwd_input,
    chunk_bwd_weight,
    chunk_fwd,
    default_ffn,
    init_model,
    model_fwd,
    model_loss_and_grads,
    model_param_count,
    rope_tables,
)
from .params import BufferPool, ParamStruct
from .precision import FP32, FP64, MIXED, PrecisionPolicy

__all__ = [
    "BufferPool",
    "CheckpointedChunk",
    "ModelConfig",
    "ParamStruct",
    "PrecisionPolicy",
    "FP32",
    "FP64",
    "MIXED",
    "chunk_bwd",
    "chunk_bwd_input",
    "chunk_bwd_weight",
    "chunk_fwd",
    "default_ffn",
    "init_model",
    "model_fwd",
    "model_loss_and_grads",
    "model_param_count",
    "rope_tables",
]
