"""FLOP and memory accounting for the functional substrate.

Two purposes:

* analytic FLOP counts (:func:`layer_fwd_flops`,
  :func:`training_step_flops`) matching the actual matmuls the layer
  executes — the ground truth the simulator's cost model
  (:mod:`repro.sim.costmodel`) is tested against;
* empirical cache measurement (:func:`tensor_bytes`) — walks a forward
  cache and sums the *unique* ndarray payloads, giving the real
  activation footprint the memory model's ``ACT_FULL_COEF`` must match.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from .model import ModelConfig

__all__ = [
    "layer_fwd_flops",
    "model_fwd_flops",
    "training_step_flops",
    "tensor_bytes",
]


def layer_fwd_flops(
    cfg: ModelConfig, g: int, causal: bool = True
) -> Dict[str, float]:
    """Forward FLOPs of one decoder layer for a (g, S) microbatch.

    Counts every GEMM at ``2 m n k`` plus the attention score/value
    products; elementwise work (norms, SiLU, residuals) is omitted, as
    in all standard accounting.  Returns a breakdown dict with a
    ``total`` key.
    """
    tokens = g * cfg.seq_len
    h, f = cfg.hidden, cfg.ffn
    qkvo = 2 * tokens * h * h * 4
    ffn = 2 * tokens * h * f * 3
    attn = 2 * 2 * g * cfg.n_heads * cfg.seq_len**2 * cfg.head_dim
    if causal:
        attn /= 2  # only the lower triangle is computed (flash) / useful
    return {
        "attention_projections": float(qkvo),
        "ffn": float(ffn),
        "attention_scores": float(attn),
        "total": float(qkvo + ffn + attn),
    }


def model_fwd_flops(cfg: ModelConfig, g: int) -> float:
    """Forward FLOPs of the full model incl. embedding-free LM head."""
    per_layer = layer_fwd_flops(cfg, g)["total"]
    head = 2 * g * cfg.seq_len * cfg.hidden * cfg.vocab
    return per_layer * cfg.n_layers + head


def training_step_flops(cfg: ModelConfig, g: int, recompute: bool) -> float:
    """One microbatch's forward+backward (+recompute) FLOPs.

    Backward costs ~2x forward (one dgrad + one wgrad GEMM per forward
    GEMM); recomputation replays the forward.
    """
    fwd = model_fwd_flops(cfg, g)
    factor = 4.0 if recompute else 3.0
    return factor * fwd


def tensor_bytes(obj: Any) -> int:
    """Total bytes of the *unique* ndarrays reachable from ``obj``.

    Walks tuples/lists/dicts recursively and deduplicates aliased arrays
    by identity (caches frequently share views), so the result is the
    real incremental memory the object pins.
    """
    seen = set()
    total = 0
    stack = [obj]
    while stack:
        item = stack.pop()
        if isinstance(item, np.ndarray):
            base = item.base if item.base is not None else item
            if id(base) not in seen:
                seen.add(id(base))
                total += base.nbytes
        elif isinstance(item, (tuple, list)):
            stack.extend(item)
        elif isinstance(item, dict):
            stack.extend(item.values())
            stack.extend(item.keys())
    return total
