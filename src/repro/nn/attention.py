"""Causal multi-head attention cores: materialised and streaming (Flash).

Two numerically equivalent implementations of
``softmax(q k^T / sqrt(d) + causal) v``:

* :func:`attention_fwd` / :func:`attention_bwd` — the textbook version
  that materialises the ``(S, S)`` probability matrix.  Its cache is
  ``O(S^2)`` per head, which is exactly the memory blow-up Flash
  Attention removes.

* :func:`flash_attention_fwd` / :func:`flash_attention_bwd` — a
  block-streaming version modelled on FlashAttention-2.  The forward
  keeps only the output and the per-row log-sum-exp ``L`` (cache
  ``O(S)``), and the backward recomputes each probability block from
  ``q``, ``k`` and ``L``.

The WeiPipe paper's memory analysis (Section 4, "Memory consumption")
hinges on Flash Attention removing the ``S^2`` activations: with it
enabled, FFN activations dominate and the zero-bubble baselines' peak
memory doubles, which is why ZB1/ZB2 go OOM in Table 2.  Both variants
are exercised by the equivalence tests; strategies pick one via
``ModelConfig.flash_attention``.

Shapes: ``q, k, v: (B, n_heads, S, head_dim)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "attention_fwd",
    "attention_bwd",
    "flash_attention_fwd",
    "flash_attention_bwd",
    "attention_block_fwd",
    "attention_block_bwd",
]


# ---------------------------------------------------------------------------
# materialised implementation


def attention_fwd(
    q: np.ndarray, k: np.ndarray, v: np.ndarray
) -> Tuple[np.ndarray, tuple]:
    """Causal attention materialising the probability matrix."""
    head_dim = q.shape[-1]
    seq = q.shape[-2]
    scale = 1.0 / np.sqrt(head_dim)
    scores = (q @ np.swapaxes(k, -1, -2)) * scale
    mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
    scores = np.where(mask, -np.inf, scores)
    shifted = scores - scores.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    p = e / e.sum(axis=-1, keepdims=True)
    out = p @ v
    return out, (q, k, v, p, scale)


def attention_bwd(
    dout: np.ndarray, cache: tuple
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    q, k, v, p, scale = cache
    dv = np.swapaxes(p, -1, -2) @ dout
    dp = dout @ np.swapaxes(v, -1, -2)
    # softmax backward; masked entries have p == 0 so they contribute 0.
    inner = (dp * p).sum(axis=-1, keepdims=True)
    dscores = p * (dp - inner)
    dq = (dscores @ k) * scale
    dk = (np.swapaxes(dscores, -1, -2) @ q) * scale
    return dq, dk, dv


# ---------------------------------------------------------------------------
# block-causal implementation (sequence parallelism)


def attention_block_fwd(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, row_offset: int
) -> Tuple[np.ndarray, tuple]:
    """Causal attention of a *query block* against full keys/values.

    ``q`` holds positions ``row_offset .. row_offset + t - 1`` of the
    sequence while ``k``/``v`` hold positions ``0 .. S-1`` — the shape
    sequence parallelism produces after all-gathering K/V.  With
    ``row_offset == 0`` and square shapes this reduces exactly to
    :func:`attention_fwd`.
    """
    head_dim = q.shape[-1]
    t_q, t_k = q.shape[-2], k.shape[-2]
    if not (0 <= row_offset and row_offset + t_q <= t_k):
        raise ValueError("query block does not fit inside the key range")
    scale = 1.0 / np.sqrt(head_dim)
    scores = (q @ np.swapaxes(k, -1, -2)) * scale
    rows = row_offset + np.arange(t_q)[:, None]
    cols = np.arange(t_k)[None, :]
    mask = cols > rows
    scores = np.where(mask, -np.inf, scores)
    shifted = scores - scores.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    p = e / e.sum(axis=-1, keepdims=True)
    out = p @ v
    return out, (q, k, v, p, scale)


def attention_block_bwd(
    dout: np.ndarray, cache: tuple
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward of :func:`attention_block_fwd`.

    Returns ``(dq, dk, dv)`` where ``dk``/``dv`` cover the *full* key
    range — in sequence parallelism these partial contributions are
    reduce-scattered back to the positions' owners.
    """
    q, k, v, p, scale = cache
    dv = np.swapaxes(p, -1, -2) @ dout
    dp = dout @ np.swapaxes(v, -1, -2)
    inner = (dp * p).sum(axis=-1, keepdims=True)
    dscores = p * (dp - inner)
    dq = (dscores @ k) * scale
    dk = (np.swapaxes(dscores, -1, -2) @ q) * scale
    return dq, dk, dv


# ---------------------------------------------------------------------------
# streaming (Flash-style) implementation


def flash_attention_fwd(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    block: int = 128,
) -> Tuple[np.ndarray, tuple]:
    """Causal attention streamed over key blocks.

    Keeps a running row-max ``m`` and normaliser ``l``; never holds more
    than one ``(S, block)`` score panel at a time.  The cache stores only
    ``q, k, v, out`` and the per-row log-sum-exp — the ``O(S)`` footprint
    that Flash Attention is prized for.
    """
    head_dim = q.shape[-1]
    seq = q.shape[-2]
    scale = 1.0 / np.sqrt(head_dim)
    lead = q.shape[:-2]

    out = np.zeros_like(q)
    m = np.full(lead + (seq,), -np.inf, dtype=q.dtype)
    l = np.zeros(lead + (seq,), dtype=q.dtype)
    rows = np.arange(seq)

    for j0 in range(0, seq, block):
        j1 = min(j0 + block, seq)
        kb = k[..., j0:j1, :]
        vb = v[..., j0:j1, :]
        scores = (q @ np.swapaxes(kb, -1, -2)) * scale
        cols = np.arange(j0, j1)
        masked = cols[None, :] > rows[:, None]
        scores = np.where(masked, -np.inf, scores)

        m_new = np.maximum(m, scores.max(axis=-1))
        # fully masked rows (above the diagonal of the first block) keep
        # m == -inf; exp(-inf - -inf) would be NaN, so guard those rows.
        safe_m = np.where(np.isinf(m_new), 0.0, m_new)
        alpha = np.where(np.isinf(m), 0.0, np.exp(m - safe_m))
        p = np.exp(scores - safe_m[..., None])
        p = np.where(masked, 0.0, p)
        l = l * alpha + p.sum(axis=-1)
        out = out * alpha[..., None] + p @ vb
        m = m_new

    # every causal row attends to at least itself, so l > 0.
    out = out / l[..., None]
    logsumexp = m + np.log(l)
    return out, (q, k, v, out, logsumexp, scale, block)


def flash_attention_bwd(
    dout: np.ndarray, cache: tuple
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward of :func:`flash_attention_fwd`, recomputing score blocks.

    Uses the FlashAttention-2 identity: with ``delta = rowsum(dout*out)``,
    ``dscores = p * (dout @ v^T - delta)`` where ``p`` is rebuilt per block
    from the stored log-sum-exp.
    """
    q, k, v, out, logsumexp, scale, block = cache
    seq = q.shape[-2]
    rows = np.arange(seq)
    delta = (dout * out).sum(axis=-1)

    dq = np.zeros_like(q)
    dk = np.zeros_like(k)
    dv = np.zeros_like(v)

    for j0 in range(0, seq, block):
        j1 = min(j0 + block, seq)
        kb = k[..., j0:j1, :]
        vb = v[..., j0:j1, :]
        scores = (q @ np.swapaxes(kb, -1, -2)) * scale
        cols = np.arange(j0, j1)
        masked = cols[None, :] > rows[:, None]
        p = np.exp(scores - logsumexp[..., None])
        p = np.where(masked, 0.0, p)

        dv[..., j0:j1, :] += np.swapaxes(p, -1, -2) @ dout
        dp = dout @ np.swapaxes(vb, -1, -2)
        dscores = p * (dp - delta[..., None])
        dq += (dscores @ kb) * scale
        dk[..., j0:j1, :] += (np.swapaxes(dscores, -1, -2) @ q) * scale

    return dq, dk, dv
