"""Rotary positional embeddings (RoPE), as used by Llama-style models.

RoPE rotates each consecutive pair of channels of q and k by a
position-dependent angle.  It is a per-position orthogonal linear map, so
its backward is rotation by the negative angle and it needs no cached
activations — only the (cheap, recomputable) angle tables.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["rope_angles", "rope_apply", "rope_apply_bwd"]


def rope_angles(
    seq_len: int, head_dim: int, base: float = 10000.0, dtype=np.float64
) -> Tuple[np.ndarray, np.ndarray]:
    """Precompute ``cos``/``sin`` tables of shape ``(seq_len, head_dim//2)``.

    ``head_dim`` must be even; pair ``i`` rotates with frequency
    ``base ** (-2 i / head_dim)``.
    """
    if head_dim % 2 != 0:
        raise ValueError("RoPE requires an even head dimension")
    half = head_dim // 2
    freqs = base ** (-np.arange(half, dtype=dtype) * 2.0 / head_dim)
    angles = np.arange(seq_len, dtype=dtype)[:, None] * freqs[None, :]
    return np.cos(angles), np.sin(angles)


def _rotate(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Rotate channel pairs of ``x``: shape (..., S, head_dim)."""
    x_even = x[..., 0::2]
    x_odd = x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x_even * cos - x_odd * sin
    out[..., 1::2] = x_even * sin + x_odd * cos
    return out


def rope_apply(
    x: np.ndarray, cos: np.ndarray, sin: np.ndarray
) -> np.ndarray:
    """Apply RoPE to ``x`` of shape ``(..., S, head_dim)``.

    ``cos``/``sin`` have shape ``(S, head_dim//2)`` and broadcast over the
    leading (batch, head) axes.
    """
    return _rotate(x, cos, sin)


def rope_apply_bwd(
    dy: np.ndarray, cos: np.ndarray, sin: np.ndarray
) -> np.ndarray:
    """Backward of :func:`rope_apply` — rotation by the negative angle."""
    return _rotate(dy, cos, -sin)
