"""Llama-style model assembled from per-layer weight chunks.

The model is deliberately stored as a ``list`` of per-layer
:class:`~repro.nn.params.ParamStruct` chunks rather than one flat bag of
weights, because *the chunk is the unit every strategy in the paper
moves around*: WeiPipe circulates chunks on the ring, pipeline baselines
assign contiguous chunk ranges to stages, FSDP shards each chunk.

Chunk 0 additionally carries the token embedding; the last chunk carries
the final RMSNorm and the LM head.  In classical pipeline parallelism
these naturally live on the first/last stage; in WeiPipe they ride the
ring with their layer, exactly like the paper's implementation where
every worker runs the full model for its own microbatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np

from . import functional as F
from .layer import (
    init_layer_weights,
    layer_bwd,
    layer_bwd_input,
    layer_bwd_weight,
    layer_fwd,
    layer_param_count,
)
from .params import ParamStruct
from .rope import rope_angles

__all__ = [
    "ModelConfig",
    "default_ffn",
    "rope_tables",
    "init_model",
    "model_param_count",
    "chunk_fwd",
    "chunk_bwd",
    "chunk_bwd_input",
    "chunk_bwd_weight",
    "model_fwd",
    "model_loss_and_grads",
]


def default_ffn(hidden: int) -> int:
    """Llama FFN width: ``8H/3`` rounded up to a multiple of 8.

    Chosen so the three FFN matrices total ~``8 H^2`` parameters and the
    full layer ~``12 H^2`` — the figure the paper's analysis uses.
    """
    return int(-(-8 * hidden // 3) // 8 * 8) or 8


@dataclass(frozen=True)
class ModelConfig:
    """Static description of the model and numerics.

    ``hidden``/``n_layers``/``n_heads``/``seq_len``/``vocab`` follow the
    paper's ``H``/``L``/heads/``S``/vocab.  ``dtype`` is the compute
    dtype (float64 for gradient checks, float32 for training runs);
    reduced-precision *storage* is layered on top by
    :class:`~repro.nn.precision.PrecisionPolicy`.
    """

    hidden: int
    n_layers: int
    n_heads: int
    seq_len: int
    vocab: int
    ffn: Optional[int] = None
    flash_attention: bool = False
    flash_block: int = 128
    rope_base: float = 10000.0
    dtype: type = np.float64

    def __post_init__(self):
        if self.hidden % self.n_heads != 0:
            raise ValueError("hidden must be divisible by n_heads")
        if (self.hidden // self.n_heads) % 2 != 0:
            raise ValueError("head dimension must be even (RoPE)")
        if self.ffn is None:
            object.__setattr__(self, "ffn", default_ffn(self.hidden))

    @property
    def head_dim(self) -> int:
        return self.hidden // self.n_heads

    def with_(self, **kw) -> "ModelConfig":
        return replace(self, **kw)


def rope_tables(cfg: ModelConfig) -> Tuple[np.ndarray, np.ndarray]:
    """cos/sin tables for ``cfg`` in its compute dtype."""
    return rope_angles(cfg.seq_len, cfg.head_dim, cfg.rope_base, cfg.dtype)


def init_model(cfg: ModelConfig, seed: int = 0) -> List[ParamStruct]:
    """Initialise all chunks deterministically from ``seed``."""
    rng = np.random.default_rng(seed)
    std = 0.02
    chunks: List[ParamStruct] = []
    for i in range(cfg.n_layers):
        w = init_layer_weights(cfg.hidden, cfg.ffn, rng, cfg.dtype)
        if i == 0:
            w["embed"] = rng.normal(
                0.0, std, size=(cfg.vocab, cfg.hidden)
            ).astype(cfg.dtype)
        if i == cfg.n_layers - 1:
            w["final_norm"] = np.ones(cfg.hidden, dtype=cfg.dtype)
            w["head"] = rng.normal(
                0.0, std, size=(cfg.hidden, cfg.vocab)
            ).astype(cfg.dtype)
        chunks.append(w)
    return chunks


def model_param_count(cfg: ModelConfig) -> int:
    """Total parameter count including embedding and head."""
    per_layer = layer_param_count(cfg.hidden, cfg.ffn)
    extras = cfg.vocab * cfg.hidden * 2 + cfg.hidden  # embed + head + norm
    return per_layer * cfg.n_layers + extras


# ---------------------------------------------------------------------------
# chunk-level forward / backward


def chunk_fwd(
    cfg: ModelConfig,
    idx: int,
    w: ParamStruct,
    x: np.ndarray,
    cos: np.ndarray,
    sin: np.ndarray,
) -> Tuple[np.ndarray, tuple]:
    """Forward chunk ``idx``.

    Chunk 0 receives integer tokens ``(G, S)`` and embeds them; the last
    chunk emits logits ``(G, S, V)``.  Interior chunks map hidden states
    to hidden states.
    """
    caches: list = []
    if idx == 0:
        x, c_embed = F.embedding_fwd(x, w["embed"])
        caches.append(("embed", c_embed))

    y, c_layer = layer_fwd(
        w, x, cfg.n_heads, cos, sin, cfg.flash_attention, cfg.flash_block
    )
    caches.append(("layer", c_layer))

    if idx == cfg.n_layers - 1:
        h, c_norm = F.rmsnorm_fwd(y, w["final_norm"])
        logits, c_head = F.linear_fwd(h, w["head"])
        caches.append(("final_norm", c_norm))
        caches.append(("head", c_head))
        y = logits
    return y, tuple(caches)


def chunk_bwd_input(
    cfg: ModelConfig,
    idx: int,
    w: ParamStruct,
    dy: np.ndarray,
    cache: tuple,
) -> Tuple[Optional[np.ndarray], dict]:
    """B pass for chunk ``idx``: gradient w.r.t. the chunk input.

    For chunk 0 the input is integer tokens, so ``dx`` is ``None`` (the
    embedding gradient is produced by the W pass).
    """
    parts = dict(cache)
    wcache: dict = {}

    if idx == cfg.n_layers - 1:
        dh = F.linear_bwd_input(dy, w["head"])
        wcache["d_head"] = dy
        dyl = F.rmsnorm_bwd_input(dh, parts["final_norm"])
        wcache["d_final_norm"] = dh
        dy = dyl

    dx, layer_wcache = layer_bwd_input(w, dy, parts["layer"])
    wcache["layer"] = layer_wcache

    if idx == 0:
        wcache["d_embed"] = dx
        dx = None
    return dx, wcache


def chunk_bwd_weight(
    cfg: ModelConfig, idx: int, cache: tuple, wcache: dict
) -> ParamStruct:
    """W pass for chunk ``idx``: weight gradients (no weights needed)."""
    parts = dict(cache)
    grads = layer_bwd_weight(parts["layer"], wcache["layer"])
    if idx == 0:
        grads["embed"] = F.embedding_bwd(wcache["d_embed"], parts["embed"])
    if idx == cfg.n_layers - 1:
        grads["final_norm"] = F.rmsnorm_bwd_weight(
            wcache["d_final_norm"], parts["final_norm"]
        )
        grads["head"] = F.linear_bwd_weight(
            parts["head"][0], wcache["d_head"]
        )
    return grads


def chunk_bwd(
    cfg: ModelConfig,
    idx: int,
    w: ParamStruct,
    dy: np.ndarray,
    cache: tuple,
) -> Tuple[Optional[np.ndarray], ParamStruct]:
    """Fused backward for chunk ``idx``."""
    dx, wcache = chunk_bwd_input(cfg, idx, w, dy, cache)
    grads = chunk_bwd_weight(cfg, idx, cache, wcache)
    return dx, grads


# ---------------------------------------------------------------------------
# serial whole-model helpers (the ground-truth baseline)


def model_fwd(
    cfg: ModelConfig,
    chunks: List[ParamStruct],
    tokens: np.ndarray,
    cos: np.ndarray,
    sin: np.ndarray,
) -> Tuple[np.ndarray, List[tuple]]:
    """Serial forward through all chunks; returns logits and caches."""
    x = tokens
    caches: List[tuple] = []
    for i, w in enumerate(chunks):
        x, c = chunk_fwd(cfg, i, w, x, cos, sin)
        caches.append(c)
    return x, caches


def model_loss_and_grads(
    cfg: ModelConfig,
    chunks: List[ParamStruct],
    tokens: np.ndarray,
    targets: np.ndarray,
    cos: Optional[np.ndarray] = None,
    sin: Optional[np.ndarray] = None,
) -> Tuple[float, List[ParamStruct]]:
    """Serial loss + full gradients for one microbatch.

    This is the reference every distributed strategy must reproduce.
    """
    if cos is None or sin is None:
        cos, sin = rope_tables(cfg)
    logits, caches = model_fwd(cfg, chunks, tokens, cos, sin)
    loss, c_loss = F.cross_entropy_fwd(logits, targets)
    dy = F.cross_entropy_bwd(1.0, c_loss)
    grads: List[Optional[ParamStruct]] = [None] * cfg.n_layers
    for i in range(cfg.n_layers - 1, -1, -1):
        dy, g = chunk_bwd(cfg, i, chunks[i], dy, caches[i])
        grads[i] = g
    return loss, grads  # type: ignore[return-value]
