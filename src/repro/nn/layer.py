"""A Llama-style transformer decoder layer with decoupled backward passes.

The layer is the unit WeiPipe pipelines: its weights form one ring chunk
(~``12 H^2`` parameters, the figure the paper's communication analysis
uses), and its backward is available in two forms:

* :func:`layer_bwd` — the fused backward every classical pipeline uses
  (compute ``dx`` and all weight gradients together),
* :func:`layer_bwd_input` (the **B pass**) + :func:`layer_bwd_weight`
  (the **W pass**) — the decoupled form required by zero-bubble
  schedules (ZB1/ZB2/WZB1/WZB2).  The B pass produces ``dx`` plus a
  *W-cache* of (input, upstream-gradient) pairs; the W pass later turns
  the W-cache into weight gradients with pure GEMMs and needs **no
  weights at all** — the property that lets zero-bubble schedules defer
  it arbitrarily.

Layer structure (pre-norm Llama):

.. code-block:: text

    h1 = rmsnorm(x, attn_norm)
    q, k, v = h1 Wq, h1 Wk, h1 Wv      (reshape to heads, RoPE on q,k)
    o = attention(q, k, v) Wo
    x2 = x + o
    h2 = rmsnorm(x2, ffn_norm)
    y  = x2 + (silu(h2 Wgate) * (h2 Wup)) Wdown
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import functional as F
from .attention import (
    attention_bwd,
    attention_fwd,
    flash_attention_bwd,
    flash_attention_fwd,
)
from .params import ParamStruct
from .rope import rope_apply, rope_apply_bwd

__all__ = [
    "init_layer_weights",
    "layer_param_count",
    "layer_fwd",
    "layer_bwd",
    "layer_bwd_input",
    "layer_bwd_weight",
]


def init_layer_weights(
    hidden: int, ffn: int, rng: np.random.Generator, dtype=np.float64
) -> ParamStruct:
    """Initialise one decoder layer (scaled-normal init, Llama-style)."""
    std = 0.02

    def normal(*shape):
        return rng.normal(0.0, std, size=shape).astype(dtype)

    return ParamStruct(
        {
            "attn_norm": np.ones(hidden, dtype=dtype),
            "wq": normal(hidden, hidden),
            "wk": normal(hidden, hidden),
            "wv": normal(hidden, hidden),
            "wo": normal(hidden, hidden),
            "ffn_norm": np.ones(hidden, dtype=dtype),
            "w_gate": normal(hidden, ffn),
            "w_up": normal(hidden, ffn),
            "w_down": normal(ffn, hidden),
        }
    )


def layer_param_count(hidden: int, ffn: int) -> int:
    """Exact parameter count of one layer: ``4H^2 + 3HF + 2H``.

    With the Llama ratio ``F = 8H/3`` this is the ``12 H^2`` the paper
    quotes for the per-layer weight chunk.
    """
    return 4 * hidden * hidden + 3 * hidden * ffn + 2 * hidden


def _to_heads(x: np.ndarray, n_heads: int) -> np.ndarray:
    """(G, S, H) -> (G, n_heads, S, head_dim)."""
    g, s, h = x.shape
    return x.reshape(g, s, n_heads, h // n_heads).transpose(0, 2, 1, 3)


def _from_heads(x: np.ndarray) -> np.ndarray:
    """(G, n_heads, S, head_dim) -> (G, S, H)."""
    g, nh, s, hd = x.shape
    return x.transpose(0, 2, 1, 3).reshape(g, s, nh * hd)


def layer_fwd(
    w: ParamStruct,
    x: np.ndarray,
    n_heads: int,
    cos: np.ndarray,
    sin: np.ndarray,
    flash: bool = False,
    flash_block: int = 128,
) -> Tuple[np.ndarray, tuple]:
    """Forward one decoder layer.  ``x: (G, S, H)``.

    Returns ``(y, cache)`` where ``cache`` holds the tensors the backward
    needs.  With ``flash=True`` the attention cache is ``O(S)`` per row
    instead of ``O(S^2)``.
    """
    h1, c_norm1 = F.rmsnorm_fwd(x, w["attn_norm"])
    q, c_q = F.linear_fwd(h1, w["wq"])
    k, c_k = F.linear_fwd(h1, w["wk"])
    v, c_v = F.linear_fwd(h1, w["wv"])

    qh = rope_apply(_to_heads(q, n_heads), cos, sin)
    kh = rope_apply(_to_heads(k, n_heads), cos, sin)
    vh = _to_heads(v, n_heads)

    if flash:
        attn, c_attn = flash_attention_fwd(qh, kh, vh, block=flash_block)
    else:
        attn, c_attn = attention_fwd(qh, kh, vh)
    attn_flat = _from_heads(attn)
    o, c_o = F.linear_fwd(attn_flat, w["wo"])
    x2 = x + o

    h2, c_norm2 = F.rmsnorm_fwd(x2, w["ffn_norm"])
    gate, c_gate = F.linear_fwd(h2, w["w_gate"])
    up, c_up = F.linear_fwd(h2, w["w_up"])
    act, c_act = F.silu_fwd(gate)
    f = act * up
    d, c_down = F.linear_fwd(f, w["w_down"])
    y = x2 + d

    cache = (
        n_heads,
        cos,
        sin,
        flash,
        c_norm1,
        c_q,
        c_k,
        c_v,
        c_attn,
        c_o,
        c_norm2,
        c_gate,
        c_up,
        c_act,
        up,
        act,
        c_down,
    )
    return y, cache


def layer_bwd_input(
    w: ParamStruct, dy: np.ndarray, cache: tuple
) -> Tuple[np.ndarray, dict]:
    """The **B pass**: gradient w.r.t. the layer input.

    Returns ``(dx, wcache)``.  ``wcache`` maps parameter names to the
    upstream gradients (and, via the forward cache, inputs) the W pass
    needs; it contains *no* references to the weights themselves.
    """
    (
        n_heads,
        cos,
        sin,
        flash,
        c_norm1,
        c_q,
        c_k,
        c_v,
        c_attn,
        c_o,
        c_norm2,
        c_gate,
        c_up,
        c_act,
        up,
        act,
        c_down,
    ) = cache

    # FFN branch: y = x2 + (silu(h2 Wg) * (h2 Wu)) Wd
    dd = dy
    df = F.linear_bwd_input(dd, w["w_down"])
    dact = df * up
    dup = df * act
    dgate = F.silu_bwd(dact, c_act)
    dh2 = F.linear_bwd_input(dgate, w["w_gate"]) + F.linear_bwd_input(
        dup, w["w_up"]
    )
    dx2 = dy + F.rmsnorm_bwd_input(dh2, c_norm2)

    # attention branch: x2 = x + attn(h1) Wo
    do = dx2
    dattn_flat = F.linear_bwd_input(do, w["wo"])
    dattn = _to_heads(dattn_flat, n_heads)
    if flash:
        dqh, dkh, dvh = flash_attention_bwd(dattn, c_attn)
    else:
        dqh, dkh, dvh = attention_bwd(dattn, c_attn)
    dq = _from_heads(rope_apply_bwd(dqh, cos, sin))
    dk = _from_heads(rope_apply_bwd(dkh, cos, sin))
    dv = _from_heads(dvh)
    dh1 = (
        F.linear_bwd_input(dq, w["wq"])
        + F.linear_bwd_input(dk, w["wk"])
        + F.linear_bwd_input(dv, w["wv"])
    )
    dx = dx2 + F.rmsnorm_bwd_input(dh1, c_norm1)

    wcache = {
        "d_down": dd,
        "d_gate": dgate,
        "d_up": dup,
        "d_h2": dh2,
        "d_o": do,
        "d_q": dq,
        "d_k": dk,
        "d_v": dv,
        "d_h1": dh1,
    }
    return dx, wcache


def layer_bwd_weight(cache: tuple, wcache: dict) -> ParamStruct:
    """The **W pass**: weight gradients from cached inputs + B-pass grads.

    Pure GEMMs/reductions; uses no weights, so a zero-bubble schedule may
    run it long after the weights have left the worker.
    """
    (
        _n_heads,
        _cos,
        _sin,
        _flash,
        c_norm1,
        c_q,
        c_k,
        c_v,
        _c_attn,
        c_o,
        c_norm2,
        c_gate,
        c_up,
        _c_act,
        _up,
        _act,
        c_down,
    ) = cache

    return ParamStruct(
        {
            "attn_norm": F.rmsnorm_bwd_weight(wcache["d_h1"], c_norm1),
            "wq": F.linear_bwd_weight(c_q[0], wcache["d_q"]),
            "wk": F.linear_bwd_weight(c_k[0], wcache["d_k"]),
            "wv": F.linear_bwd_weight(c_v[0], wcache["d_v"]),
            "wo": F.linear_bwd_weight(c_o[0], wcache["d_o"]),
            "ffn_norm": F.rmsnorm_bwd_weight(wcache["d_h2"], c_norm2),
            "w_gate": F.linear_bwd_weight(c_gate[0], wcache["d_gate"]),
            "w_up": F.linear_bwd_weight(c_up[0], wcache["d_up"]),
            "w_down": F.linear_bwd_weight(c_down[0], wcache["d_down"]),
        }
    )


def layer_bwd(
    w: ParamStruct, dy: np.ndarray, cache: tuple
) -> Tuple[np.ndarray, ParamStruct]:
    """Fused backward: B pass immediately followed by W pass."""
    dx, wcache = layer_bwd_input(w, dy, cache)
    grads = layer_bwd_weight(cache, wcache)
    return dx, grads
