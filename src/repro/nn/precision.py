"""Reduced-precision emulation for the WeiPipe reproduction.

The paper trains with mixed precision (Section 5, "Implementation"):

* activations ``A``, weights ``W`` and gradients of weights ``D`` in fp16,
* gradients of activations ``B`` in bf16,
* optimizer states in fp32.

Real GPUs store those tensors in 16-bit formats while tensor cores
accumulate in fp32.  We emulate the same numerics on NumPy: tensors are
*stored* quantised to the target format but all arithmetic happens in
float32 (or float64 for validation runs).  Quantisation is a value-level
round trip, so the rounding error injected matches what the 16-bit
formats would introduce, and message sizes in the runtime can be computed
from the logical format rather than the NumPy dtype.

The :class:`PrecisionPolicy` object threads through the training
strategies so the same code path runs exact fp32/fp64 (for equivalence
tests against the serial baseline) or paper-faithful mixed precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "quantize",
    "bf16_round",
    "fp16_round",
    "dtype_bytes",
    "is_exact",
    "PrecisionPolicy",
    "FP32",
    "FP64",
    "MIXED",
]


def fp16_round(x: np.ndarray) -> np.ndarray:
    """Round ``x`` to the nearest IEEE fp16 value, returned as float32.

    Values outside the fp16 range saturate to +-65504 rather than
    overflowing to inf, matching the saturating cast used by training
    frameworks for weight storage.
    """
    clipped = np.clip(x, -65504.0, 65504.0)
    return clipped.astype(np.float16).astype(np.float32)


def bf16_round(x: np.ndarray) -> np.ndarray:
    """Round ``x`` to the nearest bfloat16 value, returned as float32.

    bfloat16 keeps the float32 exponent and truncates the mantissa to
    7 bits.  We implement round-to-nearest-even on the raw bit pattern,
    the same behaviour as hardware bf16 converts.
    """
    x32 = np.ascontiguousarray(x, dtype=np.float32)
    bits = x32.view(np.uint32)
    # round-to-nearest-even: add half ulp (of the truncated format) plus
    # the parity bit of the surviving mantissa lsb, then truncate.
    lsb = (bits >> np.uint32(16)) & np.uint32(1)
    rounded = bits + np.uint32(0x7FFF) + lsb
    out = (rounded & np.uint32(0xFFFF0000)).view(np.float32)
    # NaN inputs must stay NaN (the addition above can wrap the payload).
    out = np.where(np.isnan(x32), np.float32(np.nan), out)
    return out.copy()


_QUANTIZERS = {
    "fp16": fp16_round,
    "bf16": bf16_round,
    "fp32": lambda x: np.asarray(x, dtype=np.float32),
    "fp64": lambda x: np.asarray(x, dtype=np.float64),
}

_BYTES = {"fp16": 2, "bf16": 2, "fp32": 4, "fp64": 8}


def quantize(x: np.ndarray, fmt: str) -> np.ndarray:
    """Quantise ``x`` to logical format ``fmt`` (stored as float32/64)."""
    try:
        fn = _QUANTIZERS[fmt]
    except KeyError:
        raise ValueError(f"unknown precision format {fmt!r}") from None
    return fn(x)


#: formats whose quantiser is the identity on arrays of the listed dtype.
_EXACT_DTYPES = {"fp32": np.dtype(np.float32), "fp64": np.dtype(np.float64)}


def is_exact(fmt: str, dtype) -> bool:
    """True when quantising to ``fmt`` is a no-op for arrays of ``dtype``.

    The hot paths use this to skip identity round trips entirely (e.g.
    fp64 gradients under the FP64 policy) instead of paying a struct
    rebuild per ring turn.
    """
    want = _EXACT_DTYPES.get(fmt)
    return want is not None and np.dtype(dtype) == want


def dtype_bytes(fmt: str) -> int:
    """Bytes per element of logical format ``fmt`` (for message sizing)."""
    try:
        return _BYTES[fmt]
    except KeyError:
        raise ValueError(f"unknown precision format {fmt!r}") from None


@dataclass(frozen=True)
class PrecisionPolicy:
    """Which logical format each tensor class is stored in.

    Attributes mirror the paper's notation: ``A`` activations, ``B``
    gradients of activations, ``W`` weights, ``D`` gradients of weights.
    ``master`` is the optimizer-state / master-weight format.
    """

    activations: str = "fp32"
    act_grads: str = "fp32"
    weights: str = "fp32"
    weight_grads: str = "fp32"
    master: str = "fp32"

    def q_act(self, x: np.ndarray) -> np.ndarray:
        return quantize(x, self.activations)

    def q_act_grad(self, x: np.ndarray) -> np.ndarray:
        return quantize(x, self.act_grads)

    def q_weight(self, x: np.ndarray) -> np.ndarray:
        return quantize(x, self.weights)

    def q_weight_grad(self, x: np.ndarray) -> np.ndarray:
        return quantize(x, self.weight_grads)

    @property
    def weight_bytes(self) -> int:
        return dtype_bytes(self.weights)

    @property
    def act_bytes(self) -> int:
        return dtype_bytes(self.activations)

    @property
    def act_grad_bytes(self) -> int:
        return dtype_bytes(self.act_grads)

    @property
    def weight_grad_bytes(self) -> int:
        return dtype_bytes(self.weight_grads)


#: Exact single precision everywhere — used by equivalence tests.
FP32 = PrecisionPolicy()

#: Exact double precision everywhere — used by gradient checks.
FP64 = PrecisionPolicy("fp64", "fp64", "fp64", "fp64", "fp64")

#: The paper's mixed-precision layout (Section 5): A/W/D fp16, B bf16,
#: optimizer states fp32.
MIXED = PrecisionPolicy(
    activations="fp16",
    act_grads="bf16",
    weights="fp16",
    weight_grads="fp16",
    master="fp32",
)
