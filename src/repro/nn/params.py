"""Named-parameter containers with flat pack/unpack.

WeiPipe ships whole layers of weights (and weight gradients) around the
ring as single contiguous buffers, and FSDP shards flat buffers across
workers.  :class:`ParamStruct` is the common currency: an ordered mapping
``name -> ndarray`` that can be packed to / unpacked from one flat
vector with a stable layout, so every strategy exchanges exactly the
bytes a real implementation would.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

__all__ = ["ParamStruct"]


class ParamStruct:
    """An ordered, named collection of NumPy arrays.

    Supports elementwise arithmetic (used for gradient accumulation and
    optimizer updates), flat packing (used for ring messages and
    sharding) and structural cloning.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Dict[str, np.ndarray] | None = None):
        self._data: Dict[str, np.ndarray] = dict(data or {})

    # -- mapping protocol ---------------------------------------------------

    def __getitem__(self, name: str) -> np.ndarray:
        return self._data[name]

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        self._data[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> List[str]:
        return list(self._data.keys())

    def items(self) -> List[Tuple[str, np.ndarray]]:
        return list(self._data.items())

    def values(self) -> List[np.ndarray]:
        return list(self._data.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}:{tuple(v.shape)}" for k, v in self._data.items())
        return f"ParamStruct({inner})"

    # -- structure ----------------------------------------------------------

    @property
    def numel(self) -> int:
        """Total number of scalar elements across all arrays."""
        return sum(int(v.size) for v in self._data.values())

    def nbytes(self, bytes_per_element: int) -> int:
        """Logical message size if elements were stored at the given width."""
        return self.numel * bytes_per_element

    def clone(self) -> "ParamStruct":
        return ParamStruct({k: v.copy() for k, v in self._data.items()})

    def zeros_like(self) -> "ParamStruct":
        return ParamStruct(
            {k: np.zeros_like(v) for k, v in self._data.items()}
        )

    def astype(self, dtype) -> "ParamStruct":
        return ParamStruct(
            {k: v.astype(dtype) for k, v in self._data.items()}
        )

    def map(self, fn) -> "ParamStruct":
        """Apply ``fn`` to every array, returning a new struct."""
        return ParamStruct({k: fn(v) for k, v in self._data.items()})

    # -- arithmetic ---------------------------------------------------------

    def add_(self, other: "ParamStruct", scale: float = 1.0) -> "ParamStruct":
        """In-place ``self += scale * other`` (matching keys required)."""
        if self.keys() != other.keys():
            raise KeyError("ParamStruct key mismatch in add_")
        for k in self._data:
            self._data[k] += scale * other[k]
        return self

    def scale_(self, scale: float) -> "ParamStruct":
        for k in self._data:
            self._data[k] *= scale
        return self

    def zero_(self) -> "ParamStruct":
        for k in self._data:
            self._data[k][...] = 0.0
        return self

    # -- flat packing -------------------------------------------------------

    def pack(self, dtype=np.float32) -> np.ndarray:
        """Concatenate all arrays (in key order) into one flat vector."""
        if not self._data:
            return np.zeros(0, dtype=dtype)
        return np.concatenate(
            [v.reshape(-1).astype(dtype, copy=False) for v in self._data.values()]
        )

    def unpack_from(self, flat: np.ndarray) -> "ParamStruct":
        """Fill a structural copy of ``self`` from a flat vector."""
        if flat.size != self.numel:
            raise ValueError(
                f"flat buffer has {flat.size} elements, expected {self.numel}"
            )
        out: Dict[str, np.ndarray] = {}
        offset = 0
        for k, v in self._data.items():
            n = int(v.size)
            out[k] = flat[offset : offset + n].reshape(v.shape).astype(
                v.dtype, copy=False
            ).copy()
            offset += n
        return ParamStruct(out)

    # -- comparison (testing) -------------------------------------------------

    def allclose(self, other: "ParamStruct", rtol=1e-7, atol=1e-9) -> bool:
        if self.keys() != other.keys():
            return False
        return all(
            np.allclose(self[k], other[k], rtol=rtol, atol=atol)
            for k in self._data
        )

    def max_abs_diff(self, other: "ParamStruct") -> float:
        if self.keys() != other.keys():
            raise KeyError("ParamStruct key mismatch")
        diffs = [
            float(np.max(np.abs(self[k] - other[k]))) if self[k].size else 0.0
            for k in self._data
        ]
        return max(diffs) if diffs else 0.0
