"""Named-parameter containers with flat pack/unpack.

WeiPipe ships whole layers of weights (and weight gradients) around the
ring as single contiguous buffers, and FSDP shards flat buffers across
workers.  :class:`ParamStruct` is the common currency: an ordered mapping
``name -> ndarray`` that can be packed to / unpacked from one flat
vector with a stable layout, so every strategy exchanges exactly the
bytes a real implementation would.

Arena backing (DESIGN.md §10): a struct may additionally own one flat
contiguous buffer — the *arena* — with every named array a view into
it.  The arena **is** the packed wire representation, so ``pack()`` /
``unpack_from()`` degrade from O(numel) concatenations to O(1) view
handoffs, and a :class:`BufferPool` recycles arenas across ring turns so
the steady-state hot path allocates nothing.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["ParamStruct", "BufferPool"]


class BufferPool:
    """Thread-safe free-list of flat buffers, keyed by ``(numel, dtype)``.

    ``acquire`` hands out a recycled 1-D buffer when one of the exact
    size/dtype is free, else allocates (a *miss* — ``allocations`` counts
    these).  ``release`` returns a buffer to the free list.

    Ownership contract: a buffer handed to ``release`` must have no live
    readers or writers — in the weight ring that is guaranteed by the
    turn protocol (a slot's D message only arrives after its sender
    finished computing with the slots it forwarded, see DESIGN.md §10),
    not by the pool itself.  The pool never zeroes recycled memory;
    callers that need zeros must clear explicitly.
    """

    __slots__ = (
        "_lock", "_free", "hits", "misses", "releases", "bytes_allocated",
        "backend", "allocator",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free: Dict[Tuple[int, np.dtype], List[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self.releases = 0
        self.bytes_allocated = 0
        #: which transport this pool serves ("thread" in-process; the shm
        #: fabric stamps "process") — carried into ``as_dict`` so bench
        #: artefacts attribute pool behaviour to a backend.
        self.backend = "thread"
        #: optional miss allocator ``(numel, dtype) -> ndarray | None``.
        #: The process transport points this at its shared-memory arena so
        #: every pooled buffer is arena-resident and ships between ranks
        #: as an (owner, offset) descriptor instead of a byte copy; a
        #: ``None`` return (arena exhausted) falls back to private memory.
        self.allocator = None

    @property
    def allocations(self) -> int:
        """Fresh buffers created so far (== cache misses)."""
        return self.misses

    def acquire(self, numel: int, dtype) -> np.ndarray:
        key = (int(numel), np.dtype(dtype))
        with self._lock:
            stack = self._free.get(key)
            if stack:
                self.hits += 1
                return stack.pop()
            self.misses += 1
            self.bytes_allocated += key[0] * key[1].itemsize
        alloc = self.allocator
        if alloc is not None:
            buf = alloc(key[0], key[1])
            if buf is not None:
                return buf
        return np.empty(key[0], dtype=key[1])

    def release(self, buf: np.ndarray) -> None:
        flat = buf.reshape(-1)
        with self._lock:
            self._free.setdefault((int(flat.size), flat.dtype), []).append(flat)
            self.releases += 1

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            free = sum(len(v) for v in self._free.values())
        return {
            "backend": self.backend,
            "hits": self.hits,
            "misses": self.misses,
            "allocations": self.misses,
            "releases": self.releases,
            "bytes_allocated": self.bytes_allocated,
            "free_buffers": free,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BufferPool({self.as_dict()})"


class ParamStruct:
    """An ordered, named collection of NumPy arrays.

    Supports elementwise arithmetic (used for gradient accumulation and
    optimizer updates), flat packing (used for ring messages and
    sharding) and structural cloning.

    A struct may be *arena-backed* (see :meth:`to_arena`): all arrays are
    then views into one contiguous flat buffer, making ``pack`` and flat
    arithmetic O(1)/single-op.  Rebinding a name to a different array
    (``ps[k] = new``) silently drops the arena — correctness is kept,
    only the fast path is lost; in-place writes (``ps[k][...] = x``,
    ``ps[k] += g``) keep it.
    """

    __slots__ = ("_data", "_arena", "_layout")

    def __init__(self, data: Dict[str, np.ndarray] | None = None):
        self._data: Dict[str, np.ndarray] = dict(data or {})
        self._arena: Optional[np.ndarray] = None
        self._layout: Optional[Tuple] = None

    @classmethod
    def _from_parts(
        cls,
        data: Dict[str, np.ndarray],
        arena: Optional[np.ndarray],
        layout: Optional[Tuple],
    ) -> "ParamStruct":
        ps = cls.__new__(cls)
        ps._data = data
        ps._arena = arena
        ps._layout = layout
        return ps

    # -- pickling (process-transport wire format) ---------------------------

    def __reduce__(self):
        """Arena-backed structs serialize as (layout, arena): one flat
        buffer that pickle protocol 5 ships out of band — a weight slot
        crosses the process wire as a single memcpy, not one copy per
        named array.  Plain structs fall back to the data dict."""
        if self._arena is not None:
            return (_rebuild_arena_ps, (self._layout_key(), self._arena))
        return (ParamStruct, (self._data,))

    # -- mapping protocol ---------------------------------------------------

    def __getitem__(self, name: str) -> np.ndarray:
        return self._data[name]

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        if self._data.get(name) is not value:
            # a name now points outside the arena (or the key set grew):
            # the flat layout no longer covers this struct.
            self._arena = None
            self._layout = None
        self._data[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> List[str]:
        return list(self._data.keys())

    def items(self) -> List[Tuple[str, np.ndarray]]:
        return list(self._data.items())

    def values(self) -> List[np.ndarray]:
        return list(self._data.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}:{tuple(v.shape)}" for k, v in self._data.items())
        tag = ", arena" if self._arena is not None else ""
        return f"ParamStruct({inner}{tag})"

    # -- structure ----------------------------------------------------------

    @property
    def numel(self) -> int:
        """Total number of scalar elements across all arrays."""
        if self._arena is not None:
            return int(self._arena.size)
        return sum(int(v.size) for v in self._data.values())

    def nbytes(self, bytes_per_element: int) -> int:
        """Logical message size if elements were stored at the given width."""
        return self.numel * bytes_per_element

    @property
    def arena(self) -> Optional[np.ndarray]:
        """The backing flat buffer, or ``None`` when not arena-backed."""
        return self._arena

    @property
    def common_dtype(self) -> Optional[np.dtype]:
        """The shared dtype of all arrays, or ``None`` if they differ."""
        vals = iter(self._data.values())
        first = next(vals, None)
        if first is None:
            return None
        dt = first.dtype
        for v in vals:
            if v.dtype != dt:
                return None
        return dt

    def _layout_key(self) -> Tuple:
        lk = self._layout
        if lk is None:
            lk = self._layout = tuple(
                (k, v.shape) for k, v in self._data.items()
            )
        return lk

    def _arena_views(
        self, buf: np.ndarray
    ) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        offset = 0
        for k, v in self._data.items():
            n = int(v.size)
            out[k] = buf[offset : offset + n].reshape(v.shape)
            offset += n
        return out

    def to_arena(self, pool: Optional[BufferPool] = None) -> "ParamStruct":
        """Copy into an arena-backed struct (one contiguous buffer).

        Requires a uniform dtype across arrays.  With ``pool`` the buffer
        is recycled from / accounted in the pool.
        """
        dtype = self.common_dtype
        if dtype is None:
            raise TypeError(
                "to_arena requires a uniform dtype across all arrays"
            )
        n = self.numel
        buf = pool.acquire(n, dtype) if pool is not None else np.empty(n, dtype=dtype)
        views = self._arena_views(buf)
        for k, v in self._data.items():
            np.copyto(views[k], v)
        return ParamStruct._from_parts(views, buf, self._layout_key())

    def clone(self, pool: Optional[BufferPool] = None) -> "ParamStruct":
        if pool is not None:
            return self.to_arena(pool)
        if self._arena is not None:
            buf = self._arena.copy()
            return ParamStruct._from_parts(
                self._arena_views(buf), buf, self._layout_key()
            )
        return ParamStruct({k: v.copy() for k, v in self._data.items()})

    def zeros_like(self, pool: Optional[BufferPool] = None) -> "ParamStruct":
        dtype = self.common_dtype
        if dtype is not None and (pool is not None or self._arena is not None):
            n = self.numel
            if pool is not None:
                buf = pool.acquire(n, dtype)
                buf[...] = 0.0
            else:
                buf = np.zeros(n, dtype=dtype)
            return ParamStruct._from_parts(
                self._arena_views(buf), buf, self._layout_key()
            )
        return ParamStruct(
            {k: np.zeros_like(v) for k, v in self._data.items()}
        )

    def astype(self, dtype) -> "ParamStruct":
        return ParamStruct(
            {k: v.astype(dtype) for k, v in self._data.items()}
        )

    def map(self, fn) -> "ParamStruct":
        """Apply ``fn`` to every array, returning a new struct."""
        return ParamStruct({k: fn(v) for k, v in self._data.items()})

    # -- arithmetic ---------------------------------------------------------

    def add_(self, other: "ParamStruct", scale: float = 1.0) -> "ParamStruct":
        """In-place ``self += scale * other`` (matching keys required)."""
        a, b = self._arena, other._arena
        if (
            a is not None
            and b is not None
            and a.dtype == b.dtype
            and self._layout_key() == other._layout_key()
        ):
            if scale == 1.0:
                a += b
            else:
                a += scale * b
            return self
        if self._data.keys() != other._data.keys():
            raise KeyError("ParamStruct key mismatch in add_")
        for k, v in self._data.items():
            v += scale * other._data[k]
        return self

    def scale_(self, scale: float) -> "ParamStruct":
        if self._arena is not None:
            self._arena *= scale
            return self
        for k in self._data:
            self._data[k] *= scale
        return self

    def zero_(self) -> "ParamStruct":
        if self._arena is not None:
            self._arena[...] = 0.0
            return self
        for k in self._data:
            self._data[k][...] = 0.0
        return self

    # -- flat packing -------------------------------------------------------

    def pack(self, dtype=np.float32) -> np.ndarray:
        """All arrays (in key order) as one flat vector.

        Arena-backed structs return the arena itself when the dtype
        matches — zero copies; treat the result as **read-only** (or
        consumed by :meth:`unpack_from`), since it aliases this struct's
        storage.  Otherwise falls back to an allocating concatenation.
        """
        if self._arena is not None and self._arena.dtype == np.dtype(dtype):
            return self._arena
        if not self._data:
            return np.zeros(0, dtype=dtype)
        return np.concatenate(
            [v.reshape(-1).astype(dtype, copy=False) for v in self._data.values()]
        )

    def pack_into(self, out: np.ndarray) -> np.ndarray:
        """Pack into a caller-provided flat buffer (no allocation)."""
        if out.size != self.numel:
            raise ValueError(
                f"out buffer has {out.size} elements, expected {self.numel}"
            )
        flat = out.reshape(-1)
        if self._arena is not None and self._arena.dtype == flat.dtype:
            np.copyto(flat, self._arena)
            return out
        offset = 0
        for v in self._data.values():
            n = int(v.size)
            flat[offset : offset + n] = v.reshape(-1)
            offset += n
        return out

    def unpack_from(self, flat: np.ndarray) -> "ParamStruct":
        """A structural copy of ``self`` filled from a flat vector.

        When ``flat`` is 1-D, contiguous and already of every array's
        dtype, the result is arena-backed *on ``flat`` itself* (zero
        copies) — the caller hands over ownership of ``flat``.  Otherwise
        the values are copied out, as before.
        """
        if flat.size != self.numel:
            raise ValueError(
                f"flat buffer has {flat.size} elements, expected {self.numel}"
            )
        dtype = self.common_dtype
        if (
            dtype is not None
            and flat.ndim == 1
            and flat.dtype == dtype
            and flat.flags.c_contiguous
        ):
            return ParamStruct._from_parts(
                self._arena_views(flat), flat, self._layout_key()
            )
        out: Dict[str, np.ndarray] = {}
        offset = 0
        for k, v in self._data.items():
            n = int(v.size)
            out[k] = flat[offset : offset + n].reshape(v.shape).astype(
                v.dtype, copy=False
            ).copy()
            offset += n
        return ParamStruct(out)

    # -- comparison (testing) -------------------------------------------------

    def allclose(self, other: "ParamStruct", rtol=1e-7, atol=1e-9) -> bool:
        if self.keys() != other.keys():
            return False
        return all(
            np.allclose(self[k], other[k], rtol=rtol, atol=atol)
            for k in self._data
        )

    def max_abs_diff(self, other: "ParamStruct") -> float:
        if self.keys() != other.keys():
            raise KeyError("ParamStruct key mismatch")
        diffs = [
            float(np.max(np.abs(self[k] - other[k]))) if self[k].size else 0.0
            for k in self._data
        ]
        return max(diffs) if diffs else 0.0


def _rebuild_arena_ps(layout: Tuple, arena: np.ndarray) -> ParamStruct:
    """Unpickle target for arena-backed structs: rebuild the named views
    over the (possibly zero-copy, out-of-band) arena buffer."""
    data: Dict[str, np.ndarray] = {}
    offset = 0
    for name, shape in layout:
        n = 1
        for s in shape:
            n *= int(s)
        data[name] = arena[offset : offset + n].reshape(shape)
        offset += n
    return ParamStruct._from_parts(data, arena, layout)
