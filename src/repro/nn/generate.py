"""Autoregressive decoding and evaluation for the NumPy substrate.

Two decoding paths:

* :func:`generate` — incremental decoding with a **KV cache**: each new
  token runs one position through every layer, attending over the
  cached keys/values (O(n) per token instead of O(n²) re-forward).
* the full re-forward used internally by :func:`sequence_logprobs` —
  also the reference the KV-cache path is tested against.

Plus :func:`perplexity`, the standard eval metric, which pairs with
:meth:`repro.data.MarkovCorpus.entropy_rate` to measure how close a
trained model is to the data's information-theoretic floor.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import functional as F
from .layer import _from_heads, _to_heads
from .model import ModelConfig, model_fwd
from .params import ParamStruct
from .rope import rope_angles, rope_apply

__all__ = ["KVCache", "generate", "sequence_logprobs", "perplexity"]


class KVCache:
    """Per-layer key/value tensors grown one position at a time."""

    def __init__(self, n_layers: int):
        self.k: List[Optional[np.ndarray]] = [None] * n_layers
        self.v: List[Optional[np.ndarray]] = [None] * n_layers

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Append (G, nh, t, hd) entries; returns the full cached K/V."""
        if self.k[layer] is None:
            self.k[layer], self.v[layer] = k, v
        else:
            self.k[layer] = np.concatenate([self.k[layer], k], axis=2)
            self.v[layer] = np.concatenate([self.v[layer], v], axis=2)
        return self.k[layer], self.v[layer]

    @property
    def length(self) -> int:
        return 0 if self.k[0] is None else self.k[0].shape[2]


def _layer_step(
    cfg: ModelConfig,
    w: ParamStruct,
    x: np.ndarray,
    cache: KVCache,
    layer: int,
    cos: np.ndarray,
    sin: np.ndarray,
    past: int,
) -> np.ndarray:
    """Forward ``t`` new positions of one layer against the KV cache.

    ``x``: (G, t, H); ``cos``/``sin`` rows are those of the new
    positions; ``past`` is the number of *previously cached* positions
    (passed explicitly — layer 0's cache has already grown by the time
    deeper layers run, so it cannot be read back).  Causality within the
    new block is enforced by a mask when ``t > 1`` (prompt ingestion).
    """
    nh = cfg.n_heads
    h1, _ = F.rmsnorm_fwd(x, w["attn_norm"])
    q = _to_heads(h1 @ w["wq"], nh)
    k = _to_heads(h1 @ w["wk"], nh)
    v = _to_heads(h1 @ w["wv"], nh)
    q = rope_apply(q, cos, sin)
    k = rope_apply(k, cos, sin)
    k_all, v_all = cache.append(layer, k, v)

    scale = 1.0 / np.sqrt(cfg.head_dim)
    scores = (q @ np.swapaxes(k_all, -1, -2)) * scale
    t_new, t_all = q.shape[-2], k_all.shape[-2]
    if t_new > 1:
        rows = past + np.arange(t_new)[:, None]
        cols = np.arange(t_all)[None, :]
        scores = np.where(cols > rows, -np.inf, scores)
    p, _ = F.softmax_fwd(scores)
    attn = _from_heads(p @ v_all)
    x = x + attn @ w["wo"]

    h2, _ = F.rmsnorm_fwd(x, w["ffn_norm"])
    gate, _ = F.silu_fwd(h2 @ w["w_gate"])
    return x + (gate * (h2 @ w["w_up"])) @ w["w_down"]


def _decode_step(
    cfg: ModelConfig,
    chunks: List[ParamStruct],
    tokens: np.ndarray,
    cache: KVCache,
    cos_all: np.ndarray,
    sin_all: np.ndarray,
) -> np.ndarray:
    """Run ``tokens`` (G, t) through all layers; returns last-position logits."""
    past = cache.length
    t = tokens.shape[1]
    cos = cos_all[past : past + t]
    sin = sin_all[past : past + t]
    x, _ = F.embedding_fwd(tokens, chunks[0]["embed"])
    for i, w in enumerate(chunks):
        x = _layer_step(cfg, w, x, cache, i, cos, sin, past)
    h, _ = F.rmsnorm_fwd(x[:, -1:, :], chunks[-1]["final_norm"])
    return (h @ chunks[-1]["head"])[:, 0, :]


def generate(
    cfg: ModelConfig,
    chunks: List[ParamStruct],
    prompt: np.ndarray,
    n_new: int,
    temperature: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """Decode ``n_new`` tokens after ``prompt`` (shape (G, t0)).

    ``temperature == 0`` is greedy argmax; otherwise softmax sampling at
    the given temperature (seeded, deterministic).  Returns the full
    (G, t0 + n_new) token array.
    """
    prompt = np.atleast_2d(np.asarray(prompt))
    if prompt.shape[1] < 1:
        raise ValueError("prompt must contain at least one token")
    total = prompt.shape[1] + n_new
    cos_all, sin_all = rope_angles(total, cfg.head_dim, cfg.rope_base, cfg.dtype)
    cache = KVCache(cfg.n_layers)
    rng = np.random.default_rng(seed)

    out = prompt.copy()
    logits = _decode_step(cfg, chunks, prompt, cache, cos_all, sin_all)
    for _ in range(n_new):
        if temperature <= 0.0:
            nxt = logits.argmax(axis=-1)
        else:
            probs, _ = F.softmax_fwd(logits / temperature)
            nxt = np.array(
                [rng.choice(cfg.vocab, p=row) for row in probs]
            )
        out = np.concatenate([out, nxt[:, None]], axis=1)
        if out.shape[1] == total:
            break
        logits = _decode_step(
            cfg, chunks, nxt[:, None], cache, cos_all, sin_all
        )
    return out


def sequence_logprobs(
    cfg: ModelConfig,
    chunks: List[ParamStruct],
    tokens: np.ndarray,
    targets: np.ndarray,
) -> np.ndarray:
    """Per-position log-probabilities of ``targets`` given ``tokens``
    (full re-forward; shape (G, S))."""
    tokens = np.atleast_2d(tokens)
    targets = np.atleast_2d(targets)
    cos, sin = rope_angles(
        tokens.shape[1], cfg.head_dim, cfg.rope_base, cfg.dtype
    )
    logits, _ = model_fwd(cfg, chunks, tokens, cos, sin)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    logz = np.log(np.exp(shifted).sum(axis=-1)) + logits.max(axis=-1)
    picked = np.take_along_axis(logits, targets[..., None], axis=-1)[..., 0]
    return picked - logz


def perplexity(
    cfg: ModelConfig,
    chunks: List[ParamStruct],
    tokens: np.ndarray,
    targets: np.ndarray,
) -> float:
    """``exp`` of the mean next-token cross entropy."""
    lp = sequence_logprobs(cfg, chunks, tokens, targets)
    return float(np.exp(-lp.mean()))
