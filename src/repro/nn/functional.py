"""Primitive neural-network ops with explicit forward/backward pairs.

Every op is a pure function.  ``*_fwd`` returns ``(output, cache)`` where
``cache`` holds exactly the tensors the backward needs; ``*_bwd`` consumes
the upstream gradient and the cache.  Nothing is hidden in object state,
which is what lets the pipeline strategies decide explicitly *which*
tensors are stored, recomputed, or shipped between workers — the central
bookkeeping question of the WeiPipe paper.

Matmul backward is additionally split into the two GEMMs that
zero-bubble schedules separate:

* :func:`linear_bwd_input` — the "B pass" half, gradient w.r.t. the input
  (needs the weights),
* :func:`linear_bwd_weight` — the "W pass" half, gradient w.r.t. the
  weights (needs the cached input and the upstream gradient but *not* the
  weights).

Shapes follow the convention ``x: (..., in)``, ``w: (in, out)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "linear_fwd",
    "linear_bwd",
    "linear_bwd_input",
    "linear_bwd_weight",
    "silu_fwd",
    "silu_bwd",
    "softmax_fwd",
    "softmax_bwd",
    "rmsnorm_fwd",
    "rmsnorm_bwd",
    "rmsnorm_bwd_input",
    "rmsnorm_bwd_weight",
    "cross_entropy_fwd",
    "cross_entropy_bwd",
    "embedding_fwd",
    "embedding_bwd",
]


# ---------------------------------------------------------------------------
# linear


def linear_fwd(x: np.ndarray, w: np.ndarray) -> Tuple[np.ndarray, tuple]:
    """``y = x @ w``.  Cache keeps ``x`` (for W pass) and ``w`` (for B pass)."""
    y = x @ w
    return y, (x, w)


def linear_bwd_input(dy: np.ndarray, w: np.ndarray) -> np.ndarray:
    """B-pass half: ``dx = dy @ w.T``."""
    return dy @ w.T


def linear_bwd_weight(x: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """W-pass half: ``dw = x.T @ dy`` summed over all leading axes."""
    x2 = x.reshape(-1, x.shape[-1])
    dy2 = dy.reshape(-1, dy.shape[-1])
    return x2.T @ dy2


def linear_bwd(dy: np.ndarray, cache: tuple) -> Tuple[np.ndarray, np.ndarray]:
    x, w = cache
    return linear_bwd_input(dy, w), linear_bwd_weight(x, dy)


# ---------------------------------------------------------------------------
# SiLU (swish) — used by the SwiGLU FFN


def silu_fwd(x: np.ndarray) -> Tuple[np.ndarray, tuple]:
    """``y = x * sigmoid(x)``."""
    sig = 1.0 / (1.0 + np.exp(-x))
    return x * sig, (x, sig)


def silu_bwd(dy: np.ndarray, cache: tuple) -> np.ndarray:
    x, sig = cache
    return dy * sig * (1.0 + x * (1.0 - sig))


# ---------------------------------------------------------------------------
# softmax (last axis)


def softmax_fwd(x: np.ndarray) -> Tuple[np.ndarray, tuple]:
    """Numerically stable softmax over the last axis."""
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    p = e / e.sum(axis=-1, keepdims=True)
    return p, (p,)


def softmax_bwd(dy: np.ndarray, cache: tuple) -> np.ndarray:
    (p,) = cache
    inner = (dy * p).sum(axis=-1, keepdims=True)
    return p * (dy - inner)


# ---------------------------------------------------------------------------
# RMSNorm — Llama's normalisation.  y = g * x / sqrt(mean(x^2) + eps)


def rmsnorm_fwd(
    x: np.ndarray, g: np.ndarray, eps: float = 1e-6
) -> Tuple[np.ndarray, tuple]:
    ms = np.mean(np.square(x), axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(ms + eps)
    xhat = x * inv
    return xhat * g, (x, g, inv)


def rmsnorm_bwd_input(dy: np.ndarray, cache: tuple) -> np.ndarray:
    """B-pass half of RMSNorm backward (gradient w.r.t. ``x``)."""
    x, g, inv = cache
    h = x.shape[-1]
    dxhat = dy * g
    # d/dx of x * inv with inv depending on x:
    #   dx = inv * dxhat - x * inv^3 / H * sum(dxhat * x)
    dot = (dxhat * x).sum(axis=-1, keepdims=True)
    return inv * dxhat - x * (inv**3) * dot / h


def rmsnorm_bwd_weight(dy: np.ndarray, cache: tuple) -> np.ndarray:
    """W-pass half of RMSNorm backward (gradient w.r.t. the gain ``g``)."""
    x, _g, inv = cache
    xhat = x * inv
    return (dy * xhat).reshape(-1, x.shape[-1]).sum(axis=0)


def rmsnorm_bwd(dy: np.ndarray, cache: tuple) -> Tuple[np.ndarray, np.ndarray]:
    return rmsnorm_bwd_input(dy, cache), rmsnorm_bwd_weight(dy, cache)


# ---------------------------------------------------------------------------
# token cross entropy


def cross_entropy_fwd(
    logits: np.ndarray, targets: np.ndarray
) -> Tuple[float, tuple]:
    """Mean token-level cross entropy.

    ``logits``: (..., V) float, ``targets``: (...) int token ids.
    Returns the scalar mean loss over all positions.
    """
    flat = logits.reshape(-1, logits.shape[-1])
    tgt = targets.reshape(-1)
    shifted = flat - flat.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1)) + flat.max(axis=-1)
    picked = flat[np.arange(flat.shape[0]), tgt]
    losses = logsumexp - picked
    loss = float(losses.mean())
    return loss, (flat, tgt, logsumexp, logits.shape)


def cross_entropy_bwd(dloss: float, cache: tuple) -> np.ndarray:
    flat, tgt, logsumexp, shape = cache
    p = np.exp(flat - logsumexp[:, None])
    p[np.arange(flat.shape[0]), tgt] -= 1.0
    p *= dloss / flat.shape[0]
    return p.reshape(shape)


# ---------------------------------------------------------------------------
# embedding lookup


def embedding_fwd(
    tokens: np.ndarray, table: np.ndarray
) -> Tuple[np.ndarray, tuple]:
    """``y[i] = table[tokens[i]]``; tokens: int array (...,)."""
    return table[tokens], (tokens, table.shape)


def embedding_bwd(dy: np.ndarray, cache: tuple) -> np.ndarray:
    tokens, table_shape = cache
    dtable = np.zeros(table_shape, dtype=dy.dtype)
    np.add.at(dtable, tokens.reshape(-1), dy.reshape(-1, dy.shape[-1]))
    return dtable
