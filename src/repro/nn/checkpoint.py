"""Activation recomputation (gradient checkpointing).

The paper enables recomputation for 1F1B, FSDP and WeiPipe (but *not*
for the zero-bubble baselines, where it saves nothing and only adds
compute — see Section 5).  Recomputation stores only each chunk's
*input* during the forward pass and re-runs the forward inside the
backward to rebuild the cache, trading one extra forward for an
``O(caches)`` → ``O(boundary activations)`` memory reduction.

:class:`CheckpointedChunk` wraps the chunk-level fwd/bwd of
:mod:`repro.nn.model` behind the same interface, so strategies toggle
recomputation with a flag instead of branching.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .model import (
    ModelConfig,
    chunk_bwd,
    chunk_bwd_input,
    chunk_bwd_weight,
    chunk_fwd,
)
from .params import ParamStruct

__all__ = ["CheckpointedChunk"]


class CheckpointedChunk:
    """Uniform chunk fwd/bwd with optional recomputation.

    With ``recompute=False`` the full forward cache is kept (classical
    behaviour).  With ``recompute=True`` only the chunk input is kept and
    the cache is rebuilt on demand in :meth:`bwd` / :meth:`bwd_input`.

    Note the cache rebuilt during backward needs the *same weights* the
    forward used.  WeiPipe guarantees this because the backward weight
    flow delivers exactly the pre-update weights; classical pipelines
    keep their stage weights in place across the iteration.
    """

    def __init__(self, cfg: ModelConfig, recompute: bool = False):
        self.cfg = cfg
        self.recompute = recompute

    def fwd(
        self,
        idx: int,
        w: ParamStruct,
        x: np.ndarray,
        cos: np.ndarray,
        sin: np.ndarray,
    ) -> Tuple[np.ndarray, tuple]:
        """Forward chunk ``idx``; the returned state feeds :meth:`bwd`."""
        y, cache = chunk_fwd(self.cfg, idx, w, x, cos, sin)
        if self.recompute:
            # keep only the boundary input; drop the heavy cache.
            return y, ("recompute", x, cos, sin)
        return y, ("full", cache)

    def _materialize(self, idx: int, w: ParamStruct, state: tuple) -> tuple:
        kind = state[0]
        if kind == "full":
            return state[1]
        _, x, cos, sin = state
        _, cache = chunk_fwd(self.cfg, idx, w, x, cos, sin)
        return cache

    def bwd(
        self, idx: int, w: ParamStruct, dy: np.ndarray, state: tuple
    ) -> Tuple[Optional[np.ndarray], ParamStruct]:
        """Fused backward (B + W) with recomputation if enabled."""
        cache = self._materialize(idx, w, state)
        return chunk_bwd(self.cfg, idx, w, dy, cache)

    def bwd_input(
        self, idx: int, w: ParamStruct, dy: np.ndarray, state: tuple
    ) -> Tuple[Optional[np.ndarray], tuple, dict]:
        """Decoupled B pass; returns ``(dx, cache, wcache)``.

        The materialised ``cache`` is returned so the later W pass does
        not recompute the forward a second time.
        """
        cache = self._materialize(idx, w, state)
        dx, wcache = chunk_bwd_input(self.cfg, idx, w, dy, cache)
        return dx, cache, wcache

    def bwd_weight(self, idx: int, cache: tuple, wcache: dict) -> ParamStruct:
        """Decoupled W pass (cache must come from :meth:`bwd_input`)."""
        return chunk_bwd_weight(self.cfg, idx, cache, wcache)
