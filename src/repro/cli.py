"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``strategies`` — list everything the functional runtime and the
  simulator can run;
* ``train`` — train a small model on simulated workers and print the
  loss trajectory (functional layer; numerically real);
* ``simulate`` — price one workload/strategy/cluster cell with the
  discrete-event simulator (throughput, memory, bubbles);
* ``table`` — regenerate paper Table 2, 3 or 4;
* ``figure`` — regenerate paper Figure 6, 7, 8 or 9;
* ``timeline`` — render a schedule as an ASCII Gantt chart;
* ``plan`` — auto-parallelism planner: enumerate the strategy × degree
  × microbatch × precision × overlap × grouping × backend space for a
  model/cluster spec, prune on the analytic memory model, rank by
  predicted tokens/s, then run the top pick live and gate
  predicted-vs-measured wall clock through ``reconcile()``
  (the ``repro.plan/v1`` report records the verdict);
* ``trace`` — run a small traced training job and write a Chrome
  trace-event JSON (Perfetto / ``chrome://tracing``), printing the
  analyzer's measured bubble ratio, overlap fraction, per-turn chunk
  accounting and cost-model reconciliation; ``--backend process`` runs
  the same pipeline across real processes (per-rank spill buffers are
  merged onto one clock through the launch-time alignment handshake);
* ``postmortem`` — render the flight-recorder bundle a failed launch
  left behind (reason, per-rank event rings, merged causal timeline);
* ``chaos-sweep`` — differential equivalence sweep: every strategy vs
  serial on a seeded chaos fabric; a failing seed is reported and
  ``--seed-start S --seeds 1`` replays exactly that adversary;
* ``crash-recovery`` — kill one worker mid-run with seeded chaos
  injection, let the survivors shrink the ring and finish, and verify
  the continuation bit-for-bit against a clean run from the rollback
  snapshot;
* ``self-heal`` — the transient-fault gauntlet: (1) the heal
  differential (every WeiPipe mode × world × precision under seeded
  bit-flip / link-flap / rank-stall schedules must be **bit-exact**
  with its clean twin), (2) a NIC-outage rejoin scenario (a rank is
  suspected, confirmed dead, the ring shrinks, then re-grows to the
  full world when the rank returns), and (3) a quiet-wire control
  (CRC framing on a clean wire must cause zero retransmits).
  ``chaos-sweep --faults bitflip,flap,stall`` adds the same transient
  faults to the classic serial-equivalence sweep.

``train``, ``bench-overlap``, ``bench-topology``, ``chaos-sweep``,
``self-heal`` and ``crash-recovery`` accept ``--trace PATH`` (write a
Chrome trace of the run) and ``--metrics-out PATH`` (dump the run's
:class:`~repro.obs.MetricsRegistry` as JSON).  Tracing is opt-in;
without the flags the observability layer stays in its null, zero-cost
configuration.  On ``--backend process`` both artefacts are merged
across the worker processes (one trace pid per rank, label-aware
metric reduction).

``train`` additionally supports durable fault-tolerant runs:
``--checkpoint-every N`` writes atomic, checksummed checkpoints from the
elastic driver's commit hook, and ``--resume PATH`` continues a run —
bit-exact (weights + optimizer + data cursor) when the strategy matches
the checkpoint, weights-only otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WeiPipe reproduction: functional training + cluster simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("strategies", help="list available strategies")

    p_train = sub.add_parser("train", help="train on simulated workers")
    p_train.add_argument("--strategy", default="weipipe-interleave")
    p_train.add_argument("--world", type=int, default=4)
    p_train.add_argument(
        "--groups", default=None, metavar="GxR",
        help="group shape of the fabric topology, e.g. 2x2 (world = G*R): "
             "builds a topology-carrying fabric; weipipe-hier runs its "
             "two-level ring on it and the run reports per-link-class "
             "traffic",
    )
    p_train.add_argument(
        "--dp", type=int, default=1,
        help="data-parallel replicas of the WeiPipe ring (2-D hybrid; "
             "ring size = world / dp, weipipe strategies only)",
    )
    p_train.add_argument("--hidden", type=int, default=32)
    p_train.add_argument("--layers", type=int, default=4)
    p_train.add_argument("--heads", type=int, default=4)
    p_train.add_argument("--seq", type=int, default=32)
    p_train.add_argument("--vocab", type=int, default=64)
    p_train.add_argument("--iters", type=int, default=5)
    p_train.add_argument("--microbatches", type=int, default=8)
    p_train.add_argument("--microbatch-size", type=int, default=2)
    p_train.add_argument("--lr", type=float, default=1e-2)
    p_train.add_argument("--clip-norm", type=float, default=None)
    p_train.add_argument(
        "--data", choices=["uniform", "markov"], default="uniform"
    )
    p_train.add_argument(
        "--precision", choices=["fp64", "fp32", "mixed"], default="fp64"
    )
    p_train.add_argument("--recompute", action="store_true")
    p_train.add_argument("--seed", type=int, default=0)
    _add_backend_flag(p_train)
    p_train.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="write a durable checkpoint every N committed iterations "
             "(elastic strategies only; implies fault-tolerant training)",
    )
    p_train.add_argument(
        "--checkpoint-path", default="checkpoint.npz",
        help="where --checkpoint-every writes (atomic rename; the "
             "previous checkpoint is never left half-written)",
    )
    p_train.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume from a checkpoint: bit-exact full-state resume when "
             "the strategy matches the one that saved it, weights-only "
             "(fresh optimizer) otherwise",
    )
    _add_obs_flags(p_train)

    p_trace = sub.add_parser(
        "trace",
        help="run a small traced training job and write a Chrome trace "
             "(open in Perfetto or chrome://tracing)",
    )
    p_trace.add_argument(
        "strategy", nargs="?", default="weipipe-interleave",
        help="functional strategy to trace (see `repro strategies`)",
    )
    p_trace.add_argument("--world", type=int, default=4)
    p_trace.add_argument("--hidden", type=int, default=32)
    p_trace.add_argument("--layers", type=int, default=4)
    p_trace.add_argument("--heads", type=int, default=4)
    p_trace.add_argument("--seq", type=int, default=32)
    p_trace.add_argument("--vocab", type=int, default=64)
    p_trace.add_argument("--iters", type=int, default=2)
    p_trace.add_argument("--microbatches", type=int, default=8)
    p_trace.add_argument("--microbatch-size", type=int, default=2)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--recompute", action="store_true")
    _add_backend_flag(p_trace)
    p_trace.add_argument(
        "--out", default="trace.json", help="Chrome trace output path"
    )
    p_trace.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also write the compact JSONL event stream here",
    )
    p_trace.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="dump the run's metrics registry as JSON",
    )
    p_trace.add_argument(
        "--analysis-out", default=None, metavar="PATH",
        help="dump the analyzer + reconciliation report as JSON",
    )
    p_trace.add_argument(
        "--no-analyze", action="store_true",
        help="only record and dump the trace; skip the analyzer",
    )

    p_sim = sub.add_parser("simulate", help="price one workload on a cluster")
    p_sim.add_argument("--strategy", default="weipipe-interleave")
    p_sim.add_argument("--world", type=int, default=16)
    p_sim.add_argument("--hidden", type=int, default=2048)
    p_sim.add_argument("--layers", type=int, default=32)
    p_sim.add_argument("--seq", type=int, default=8192)
    p_sim.add_argument("--microbatch", type=int, default=8)
    p_sim.add_argument("--microbatches", type=int, default=128)
    p_sim.add_argument(
        "--cluster", choices=["nvlink", "pcie-eth", "single-node"],
        default="nvlink",
    )
    p_sim.add_argument("--gpus-per-node", type=int, default=None)

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("which", choices=["2", "3", "4"])
    p_table.add_argument("--no-memory", action="store_true")

    p_fig = sub.add_parser("figure", help="regenerate a paper scaling figure")
    p_fig.add_argument("which", choices=["6", "7", "8", "9"])

    p_ch = sub.add_parser(
        "chaos-sweep",
        help="differential equivalence sweep under a seeded chaos fabric",
    )
    p_ch.add_argument(
        "--seeds", type=int, default=5, help="number of chaos seeds to sweep"
    )
    p_ch.add_argument(
        "--seed-start", type=int, default=0,
        help="first chaos seed (use with --seeds 1 to replay a failure)",
    )
    p_ch.add_argument(
        "--strategies", default=None,
        help="comma-separated strategy names (default: the whole zoo)",
    )
    p_ch.add_argument(
        "--world", type=int, default=4,
        help="world size for strategies not in the default table",
    )
    p_ch.add_argument("--hidden", type=int, default=16)
    p_ch.add_argument("--layers", type=int, default=4)
    p_ch.add_argument("--heads", type=int, default=2)
    p_ch.add_argument("--seq", type=int, default=8)
    p_ch.add_argument("--vocab", type=int, default=29)
    p_ch.add_argument("--iters", type=int, default=2)
    p_ch.add_argument("--microbatches", type=int, default=4)
    p_ch.add_argument("--microbatch-size", type=int, default=2)
    p_ch.add_argument("--delay-prob", type=float, default=0.5)
    p_ch.add_argument("--max-delay", type=float, default=0.001)
    p_ch.add_argument("--drop-prob", type=float, default=0.05)
    p_ch.add_argument("--dup-prob", type=float, default=0.05)
    p_ch.add_argument("--retry-delay", type=float, default=0.001)
    p_ch.add_argument(
        "--quiet-wire", action="store_true",
        help="disable all fault injection (control run on a clean wire)",
    )
    p_ch.add_argument(
        "--faults", default=None, metavar="LIST",
        help="comma-separated transient faults to add: bitflip (payload "
             "SDC, recovered via CRC+NACK), flap (directed-link outage "
             "windows), stall (transient rank freezes)",
    )
    p_ch.add_argument("--bitflip-prob", type=float, default=0.05)
    p_ch.add_argument("--flap-prob", type=float, default=0.05)
    p_ch.add_argument("--flap-len", type=int, default=3)
    p_ch.add_argument("--flap-delay", type=float, default=0.002)
    p_ch.add_argument("--stall-prob", type=float, default=0.03)
    p_ch.add_argument("--max-stall", type=float, default=0.008)
    p_ch.add_argument(
        "--retransmit-budget", type=int, default=16,
        help="per-flow cap on CRC-driven retransmissions",
    )
    _add_backend_flag(p_ch)
    _add_obs_flags(p_ch)

    p_sh = sub.add_parser(
        "self-heal",
        help="transient-fault gauntlet: bit-exact heal differential, "
             "NIC-outage rejoin scenario, quiet-wire zero-retransmit "
             "control",
    )
    p_sh.add_argument(
        "--modes", default=",".join(
            ("weipipe-naive", "weipipe-interleave", "weipipe-zb",
             "weipipe-hier")
        ),
        help="comma-separated WeiPipe modes for the heal differential",
    )
    p_sh.add_argument(
        "--worlds", default="2,4",
        help="comma-separated world sizes for the heal differential",
    )
    p_sh.add_argument(
        "--precisions", default="fp64,fp32",
        help="comma-separated precisions (fp64, fp32)",
    )
    p_sh.add_argument("--seed", type=int, default=0)
    p_sh.add_argument(
        "--strategy", default="weipipe-interleave",
        help="strategy of the rejoin scenario",
    )
    p_sh.add_argument(
        "--world", type=int, default=4,
        help="world size of the rejoin scenario and the quiet control",
    )
    p_sh.add_argument(
        "--flap-duration", type=float, default=0.45,
        help="seconds the victim rank's NIC stays down",
    )
    p_sh.add_argument(
        "--iters", type=int, default=None,
        help="iterations of the rejoin scenario (default: 8)",
    )
    p_sh.add_argument(
        "--skip-differential", action="store_true",
        help="run only the rejoin scenario and the quiet-wire control",
    )
    p_sh.add_argument(
        "--skip-rejoin", action="store_true",
        help="run only the differential and the quiet-wire control",
    )
    _add_obs_flags(p_sh)

    p_cr = sub.add_parser(
        "crash-recovery",
        help="kill a worker mid-run, recover on the shrunken ring, and "
             "verify the continuation bit-for-bit against a clean run",
    )
    p_cr.add_argument("--strategy", default="weipipe-interleave")
    p_cr.add_argument("--world", type=int, default=4)
    p_cr.add_argument("--seed", type=int, default=0)
    p_cr.add_argument(
        "--crash-rank", type=int, default=None,
        help="rank to kill (default: seeded choice)",
    )
    p_cr.add_argument(
        "--crash-at-post", type=int, default=None,
        help="kill the rank at its Nth message send (default: seeded "
             "choice inside the active phase)",
    )
    p_cr.add_argument(
        "--wire-chaos", action="store_true",
        help="also run full wire chaos (delay/reorder/drop/duplicate)",
    )
    p_cr.add_argument(
        "--no-verify", action="store_true",
        help="skip the differential check against a clean shrunken run",
    )
    p_cr.add_argument("--iters", type=int, default=None)
    _add_obs_flags(p_cr)

    p_bo = sub.add_parser(
        "bench-overlap",
        help="microbenchmark the double-buffered ring vs the synchronous "
             "ring and write BENCH_overlap.json",
    )
    p_bo.add_argument("--hidden", type=int, default=16)
    p_bo.add_argument("--layers", type=int, default=16)
    p_bo.add_argument("--heads", type=int, default=2)
    p_bo.add_argument("--seq", type=int, default=16)
    p_bo.add_argument("--vocab", type=int, default=16)
    p_bo.add_argument("--world", type=int, default=2)
    p_bo.add_argument("--microbatches", type=int, default=16)
    p_bo.add_argument("--microbatch-size", type=int, default=1)
    p_bo.add_argument("--iters", type=int, default=3)
    p_bo.add_argument("--seed", type=int, default=7)
    p_bo.add_argument(
        "--mode", default="interleave",
        choices=["naive", "interleave", "zero-bubble"],
    )
    p_bo.add_argument("--precision", default="fp64", choices=["fp32", "fp64"])
    p_bo.add_argument(
        "--link-delay", type=float, default=0.006,
        help="reference wire: max per-message hold-back in seconds "
             "(uniform in [0, d], deterministic per message in the seed)",
    )
    p_bo.add_argument(
        "--chaos-seed", type=int, default=1,
        help="seed of the reference wire's delay schedule",
    )
    p_bo.add_argument(
        "--reps", type=int, default=3,
        help="best-of-N wall-clock per engine per wire",
    )
    p_bo.add_argument(
        "--no-control", action="store_true",
        help="skip the zero-latency control runs (plain fabric)",
    )
    p_bo.add_argument(
        "--backend", choices=["thread", "process"], default="thread",
        help="process: also measure the thread-vs-process backend "
             "comparison on the P>=4 weak-scaling configuration and "
             "attach it to the artefact (the process backend must be "
             "bit-exact and strictly faster there)",
    )
    p_bo.add_argument(
        "--out", default="BENCH_overlap.json",
        help="path of the JSON artefact",
    )
    _add_obs_flags(p_bo)

    p_bt = sub.add_parser(
        "bench-topology",
        help="benchmark the hierarchical weight ring vs the flat ring on "
             "a seeded asymmetric wire and write BENCH_topology.json",
    )
    p_bt.add_argument("--hidden", type=int, default=16)
    p_bt.add_argument("--layers", type=int, default=16)
    p_bt.add_argument("--heads", type=int, default=2)
    p_bt.add_argument("--seq", type=int, default=16)
    p_bt.add_argument("--vocab", type=int, default=16)
    p_bt.add_argument("--world", type=int, default=4)
    p_bt.add_argument(
        "--groups", default="2x2", metavar="GxR",
        help="topology group shape (world = G*R); gateways are the "
             "lowest rank of each group",
    )
    p_bt.add_argument("--microbatches", type=int, default=16)
    p_bt.add_argument("--microbatch-size", type=int, default=1)
    p_bt.add_argument("--iters", type=int, default=3)
    p_bt.add_argument("--seed", type=int, default=7)
    p_bt.add_argument(
        "--mode", default="interleave",
        choices=["naive", "interleave", "zero-bubble"],
    )
    p_bt.add_argument("--precision", default="fp64", choices=["fp32", "fp64"])
    p_bt.add_argument(
        "--intra-bandwidth", type=float, default=2e9, metavar="B/S",
        help="bandwidth of links inside a group",
    )
    p_bt.add_argument(
        "--intra-latency", type=float, default=2e-6, metavar="S",
        help="latency of links inside a group",
    )
    p_bt.add_argument(
        "--inter-bandwidth", type=float, default=2e7, metavar="B/S",
        help="bandwidth of links between groups (the slow boundary)",
    )
    p_bt.add_argument(
        "--inter-latency", type=float, default=2e-4, metavar="S",
        help="latency of links between groups",
    )
    p_bt.add_argument(
        "--jitter", type=float, default=0.0005,
        help="max seeded per-message hold-back in seconds (uniform in "
             "[0, j], deterministic per message in the chaos seed)",
    )
    p_bt.add_argument(
        "--chaos-seed", type=int, default=1,
        help="seed of the wire's jitter schedule",
    )
    p_bt.add_argument(
        "--reps", type=int, default=2,
        help="best-of-N wall-clock per ring",
    )
    p_bt.add_argument(
        "--out", default="BENCH_topology.json",
        help="path of the JSON artefact",
    )
    _add_obs_flags(p_bt)

    p_plan = sub.add_parser(
        "plan",
        help="rank parallelism configs for a model/cluster spec and "
             "validate the top pick with a live reconciled run",
    )
    p_plan.add_argument(
        "--spec", default=None, metavar="PATH",
        help="planner spec JSON (model/cluster/space/validation "
             "sections); flags below override nothing when given",
    )
    p_plan.add_argument("--hidden", type=int, default=None)
    p_plan.add_argument("--layers", type=int, default=None)
    p_plan.add_argument("--seq-len", type=int, default=None)
    p_plan.add_argument("--heads", type=int, default=None)
    p_plan.add_argument("--vocab", type=int, default=None)
    p_plan.add_argument(
        "--global-batch", type=int, default=None,
        help="sequences per iteration, constant across candidates",
    )
    p_plan.add_argument(
        "--preset", choices=["nvlink", "pcie-eth", "single-node", "custom"],
        default=None,
    )
    p_plan.add_argument("--world", type=int, default=None)
    p_plan.add_argument("--gpus-per-node", type=int, default=None)
    p_plan.add_argument(
        "--memory-budget-gib", type=float, default=None,
        help="per-worker budget the pruner enforces (default: GPU HBM)",
    )
    p_plan.add_argument(
        "--strategies", default=None,
        help="comma-separated subset of the strategy zoo to search",
    )
    p_plan.add_argument(
        "--microbatches", default=None,
        help="comma-separated microbatch sizes to sweep",
    )
    p_plan.add_argument(
        "--top", type=int, default=10,
        help="how many ranked candidates to print",
    )
    p_plan.add_argument(
        "--no-validate", action="store_true",
        help="skip the live run of the top pick (report ranks only)",
    )
    p_plan.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the repro.plan/v1 report JSON here",
    )

    p_pm = sub.add_parser(
        "postmortem",
        help="render a flight-recorder post-mortem bundle (written "
             "automatically when a launch aborts, times out or a worker "
             "dies and REPRO_POSTMORTEM_DIR or postmortem_to is set)",
    )
    p_pm.add_argument(
        "bundle", help="path to a repro.postmortem/v1 JSON bundle"
    )
    p_pm.add_argument(
        "--last", type=int, default=20,
        help="events per rank in the merged causal timeline",
    )

    p_tl = sub.add_parser("timeline", help="render a schedule timeline")
    p_tl.add_argument(
        "schedule",
        choices=[
            "weipipe-naive", "weipipe-interleave", "wzb1", "wzb2",
            "1f1b", "gpipe", "zb1", "zb2",
        ],
    )
    p_tl.add_argument("--world", type=int, default=4)
    p_tl.add_argument("--microbatches", type=int, default=8)
    p_tl.add_argument("--width", type=int, default=96)
    return parser


def _add_backend_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--backend", choices=["thread", "process"], default="thread",
        help="execution backend: thread (every rank a thread of this "
             "interpreter; full chaos, detectors) or process (one "
             "process per rank over shared-memory rings; delay-only "
             "chaos; tracing and metrics are merged across ranks)",
    )


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", default=None, metavar="PATH", dest="trace_out",
        help="record a Chrome trace of the run and write it here "
             "(open in Perfetto or chrome://tracing)",
    )
    p.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="dump the run's metrics registry as JSON",
    )


def _trace_metadata(strategy: str, world: int, spec, overlap: bool = True) -> dict:
    """Trace metadata the analyzer needs to reconcile against the cost
    model (``repro.obs.analyze.reconcile``)."""
    cfg = spec.cfg
    return {
        "strategy": strategy,
        "world": world,
        "recompute": spec.recompute,
        "overlap": overlap,
        "iters": spec.iters,
        "dims": {
            "hidden": cfg.hidden, "n_layers": cfg.n_layers,
            "seq_len": cfg.seq_len, "microbatch": spec.microbatch_size,
            "n_microbatches": spec.n_microbatches,
            "n_heads": cfg.n_heads, "vocab": cfg.vocab,
        },
    }


def _print_analysis(analysis: dict, reconciliation: Optional[dict]) -> None:
    s = analysis["summary"]
    cp = analysis["critical_path"]
    print(f"ranks               : {s['ranks']}")
    print(f"bubble ratio        : {s['bubble_ratio_mean']:.3f} mean, "
          f"{s['bubble_ratio_max']:.3f} max (measured)")
    print(f"idle-turn fraction  : {s['idle_turn_fraction_mean']:.3f}")
    print(f"overlap fraction    : {s['overlap_fraction_mean']:.3f} "
          "(wire waits hidden under peers' compute)")
    print(f"critical path       : rank {cp['rank']}  "
          f"wall {cp['wall_s'] * 1e3:.1f} ms = "
          f"compute {cp['compute_s'] * 1e3:.1f} + "
          f"wire {cp['wire_wait_s'] * 1e3:.1f} + "
          f"collective {cp['collective_s'] * 1e3:.1f} + "
          f"other {cp['other_s'] * 1e3:.1f}")
    pt = analysis.get("per_turn")
    if pt is not None:
        verdict = "2W+1D" if pt["uniform_2w_1d"] else "NON-UNIFORM"
        print(f"per-turn traffic    : {verdict} over {pt['turns_observed']} "
              f"(rank, iter, turn) groups")
    if reconciliation is not None:
        w = reconciliation["iteration_wall"]
        print(f"cost model (wall)   : predicted {w['predicted_s'] * 1e3:.1f} ms, "
              f"measured {w['measured_s'] * 1e3:.1f} ms "
              f"(ratio {w['ratio']:.2f}, tol {w['tolerance_factor']:.0f}x: "
              f"{'OK' if w['within_tolerance'] else 'OUT OF TOLERANCE'})")
        bf = reconciliation.get("b_over_f")
        if bf is not None:
            print(f"cost model (B/F)    : predicted {bf['predicted']:.2f}, "
                  f"measured {bf['measured']:.2f} "
                  f"({'OK' if bf['within_tolerance'] else 'OUT OF TOLERANCE'})")


def _dump_obs(fabric, tracer, args) -> None:
    """Write the --trace / --metrics-out artefacts a command recorded."""
    if tracer is not None and args.trace_out is not None:
        tracer.dump(args.trace_out)
        print(f"[trace written to {args.trace_out}]")
    if args.metrics_out is not None and fabric is not None:
        fabric.metrics.dump(args.metrics_out)
        print(f"[metrics written to {args.metrics_out}]")


def _make_obs(args, command: str):
    """Build the (tracer, metrics) pair the --trace/--metrics-out flags ask
    for, for commands whose harness takes them as explicit arguments."""
    tracer = None
    metrics = None
    if args.trace_out is not None:
        from .obs import Tracer

        tracer = Tracer(metadata={"command": command})
    if args.metrics_out is not None:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()
    return tracer, metrics


def _dump_obs_pair(tracer, metrics, args) -> None:
    """Artefact writer for commands holding a bare (tracer, metrics) pair."""
    if tracer is not None and args.trace_out is not None:
        tracer.dump(args.trace_out)
        print(f"[trace written to {args.trace_out}]")
    if metrics is not None and args.metrics_out is not None:
        metrics.dump(args.metrics_out)
        print(f"[metrics written to {args.metrics_out}]")


def _cmd_strategies() -> int:
    from .core import strategy_names
    from .sim.runner import SIM_STRATEGIES

    print("functional (train):", ", ".join(strategy_names()))
    print("simulated (simulate):", ", ".join(sorted(SIM_STRATEGIES)))
    return 0


def _cmd_train(args) -> int:
    from dataclasses import replace

    from . import (
        ELASTIC_STRATEGIES, FP32, FP64, MIXED, Adam, MasterWeightOptimizer,
        ModelConfig, TrainSpec, train, train_elastic,
    )
    from .data import MarkovCorpus
    from .io import load_checkpoint_state, save_checkpoint

    cfg = ModelConfig(
        hidden=args.hidden, n_layers=args.layers, n_heads=args.heads,
        seq_len=args.seq, vocab=args.vocab,
    )
    precision = {"fp64": FP64, "fp32": FP32, "mixed": MIXED}[args.precision]
    if args.precision == "mixed":
        make_opt = lambda: MasterWeightOptimizer(Adam(lr=args.lr), MIXED)
    else:
        make_opt = lambda: Adam(lr=args.lr)
    data = (
        MarkovCorpus(vocab=args.vocab, seed=args.seed)
        if args.data == "markov"
        else None
    )
    spec = TrainSpec(
        cfg=cfg, n_microbatches=args.microbatches,
        microbatch_size=args.microbatch_size, iters=args.iters,
        seed=args.seed, precision=precision, recompute=args.recompute,
        make_optimizer=make_opt, clip_norm=args.clip_norm, data=data,
    )

    durable = args.checkpoint_every is not None or args.resume is not None
    if durable and args.dp > 1:
        raise SystemExit(
            "--checkpoint-every/--resume are not supported with --dp > 1"
        )
    if args.checkpoint_every is not None and args.strategy not in ELASTIC_STRATEGIES:
        raise SystemExit(
            f"--checkpoint-every needs an elastic strategy "
            f"({', '.join(ELASTIC_STRATEGIES)}); {args.strategy!r} is not one"
        )

    prior_losses: List[float] = []
    if args.resume is not None:
        ckpt = load_checkpoint_state(args.resume)
        if ckpt.cfg != cfg:
            raise SystemExit(
                f"checkpoint {args.resume} was trained with config "
                f"{ckpt.cfg}, which differs from the requested {cfg}; "
                "pass matching model flags"
            )
        ts = ckpt.train_state or {}
        if ts.get("strategy") == args.strategy and ckpt.opt_state is not None:
            spec = replace(
                spec,
                initial_chunks=ckpt.chunks,
                initial_opt_state=ckpt.opt_state,
                start_iteration=int(ts.get("next_iteration", 0)),
            )
            prior_losses = list(ts.get("losses", []))
            print(f"resuming (full state) from {args.resume} at iteration "
                  f"{spec.start_iteration}")
        else:
            spec = replace(spec, initial_chunks=ckpt.chunks)
            saved = ts.get("strategy", "<unknown>")
            print(f"resuming weights-only from {args.resume} (saved by "
                  f"strategy {saved!r}, requested {args.strategy!r}: "
                  "optimizer restarts)")

    def on_commit(completed: int, state, losses) -> None:
        if completed % args.checkpoint_every != 0 and completed != spec.iters:
            return
        save_checkpoint(
            args.checkpoint_path, cfg, state.chunks,
            metadata={"seed": args.seed},
            opt_state=state.opt_state,
            train_state={
                "next_iteration": spec.start_iteration + completed,
                "strategy": args.strategy,
                "losses": prior_losses + list(losses),
            },
        )

    topo = None
    if args.groups is not None:
        from .runtime import Topology, TopologyError

        try:
            topo = Topology.grid(args.world, args.groups)
        except TopologyError as e:
            raise SystemExit(str(e)) from None

    fabric = None
    tracer = None
    if args.backend == "process":
        if durable:
            raise SystemExit(
                "--checkpoint-every/--resume require --backend thread "
                "(the commit hook runs in the driver's process)"
            )
        if args.dp > 1:
            raise SystemExit(
                "--dp > 1 requires --backend thread (the hybrid driver "
                "shares one in-process fabric across rings)"
            )
        from .runtime import ProcessTransport

        if args.trace_out is not None:
            from .obs import Tracer

            meta = _trace_metadata(args.strategy, args.world, spec)
            if topo is not None:
                meta["topology"] = topo.as_dict()
            tracer = Tracer(metadata=meta)
        fabric = ProcessTransport(topology=topo, tracer=tracer)
    elif args.trace_out is not None or args.metrics_out is not None or topo is not None:
        from .obs import Tracer
        from .runtime import Fabric

        if args.trace_out is not None:
            meta = _trace_metadata(args.strategy, args.world, spec)
            if topo is not None:
                meta["topology"] = topo.as_dict()
            tracer = Tracer(metadata=meta)
        fabric = Fabric(args.world, tracer=tracer, topology=topo)

    if args.dp > 1:
        if args.strategy != "weipipe-interleave":
            raise SystemExit("--dp > 1 requires --strategy weipipe-interleave")
        from .core.hybrid import train_weipipe_dp

        result = train_weipipe_dp(
            spec, ring_size=args.world // args.dp, dp_degree=args.dp,
            fabric=fabric,
        )
    elif durable and args.strategy in ELASTIC_STRATEGIES:
        result = train_elastic(
            spec, args.strategy, args.world, fabric=fabric,
            on_commit=on_commit if args.checkpoint_every is not None else None,
        )
    else:
        result = train(spec, args.strategy, args.world, fabric=fabric)
    print(f"strategy={args.strategy} world={args.world} dp={args.dp} "
          f"model={sum(c.numel for c in spec.init_chunks()):,} params")
    for i, loss in enumerate(result.losses):
        print(f"iter {spec.start_iteration + i:>4}: loss {loss:.6f}")
    if topo is not None and fabric is not None and hasattr(fabric, "link_traffic"):
        print(f"topology={args.groups} gateways={list(topo.gateways())}")
        for cls, t in fabric.link_traffic().items():
            print(f"  {cls:<6}: {t['bytes']:,} bytes in {t['messages']:,} "
                  "messages")
    if args.checkpoint_every is not None:
        print(f"checkpoint written to {args.checkpoint_path}")
    _dump_obs(fabric, tracer, args)
    return 0


def _cmd_trace(args) -> int:
    import json

    from . import FP64, ModelConfig, TrainSpec, train
    from .obs import Tracer, analyze_trace, reconcile, validate_chrome_trace
    from .runtime import Fabric

    cfg = ModelConfig(
        hidden=args.hidden, n_layers=args.layers, n_heads=args.heads,
        seq_len=args.seq, vocab=args.vocab,
    )
    spec = TrainSpec(
        cfg=cfg, n_microbatches=args.microbatches,
        microbatch_size=args.microbatch_size, iters=args.iters,
        seed=args.seed, precision=FP64, recompute=args.recompute,
    )
    tracer = Tracer(metadata=_trace_metadata(args.strategy, args.world, spec))
    if args.backend == "process":
        from .runtime import ProcessTransport

        fabric = ProcessTransport(tracer=tracer)
    else:
        fabric = Fabric(args.world, tracer=tracer)
    try:
        train(spec, args.strategy, args.world, fabric=fabric)
    except ValueError as e:
        raise SystemExit(str(e)) from None

    doc = tracer.chrome_trace()
    problems = validate_chrome_trace(doc)
    if problems:  # pragma: no cover - exporter bug guard
        for p in problems:
            print(f"schema error: {p}", file=sys.stderr)
        return 1
    tracer.dump(args.out)
    if args.jsonl is not None:
        tracer.dump_jsonl(args.jsonl)
    if args.metrics_out is not None:
        fabric.metrics.dump(args.metrics_out)

    print(f"strategy={args.strategy} world={args.world} "
          f"backend={args.backend} events={len(doc['traceEvents'])}")
    if args.backend == "process":
        for r, info in sorted(getattr(fabric, "clock", {}).items()):
            print(f"clock rank {r}: offset {info['offset_s'] * 1e6:+.1f}us "
                  f"+-{info['skew_bound_s'] * 1e6:.1f}us ({info['method']})")
    print(f"[trace written to {args.out} — open in Perfetto or "
          "chrome://tracing]")
    if args.no_analyze:
        return 0
    analysis = analyze_trace(doc)
    reconciliation = None
    try:
        reconciliation = reconcile(doc, analysis)
    except ValueError as e:
        print(f"reconciliation skipped: {e}")
    _print_analysis(analysis, reconciliation)
    if args.analysis_out is not None:
        with open(args.analysis_out, "w") as f:
            json.dump(
                {"analysis": analysis, "reconciliation": reconciliation},
                f, indent=2, sort_keys=True,
            )
            f.write("\n")
        print(f"[analysis written to {args.analysis_out}]")
    return 0


def _cmd_simulate(args) -> int:
    from .experiments.configs import exec_for
    from .sim import WorkloadDims, nvlink_cluster, pcie_ethernet_cluster, run_cell

    if args.cluster == "nvlink":
        cluster = nvlink_cluster(args.world, gpus_per_node=args.gpus_per_node or 8)
    elif args.cluster == "pcie-eth":
        cluster = pcie_ethernet_cluster(args.world, gpus_per_node=args.gpus_per_node or 4)
    else:
        cluster = nvlink_cluster(args.world, gpus_per_node=args.world)
    dims = WorkloadDims(
        hidden=args.hidden, n_layers=args.layers, seq_len=args.seq,
        microbatch=args.microbatch, n_microbatches=args.microbatches,
    )
    rep = run_cell(args.strategy, dims, cluster, exec_for(args.strategy))
    print(f"strategy            : {rep.strategy}")
    print(f"cluster             : {args.cluster} ({args.world} GPUs)")
    print(f"model               : {dims.model_params / 1e9:.2f}B params, "
          f"S={dims.seq_len}, G={dims.microbatch}, N={dims.n_microbatches}")
    if rep.oom:
        print(f"result              : OOM ({rep.peak_memory_gb:.1f} GB > 80 GB)")
        return 1
    print(f"throughput          : {rep.tokens_per_second_per_gpu:,.1f} tokens/s/GPU")
    print(f"iteration time      : {rep.makespan * 1e3:,.1f} ms")
    print(f"bubble ratio        : {rep.bubble_ratio:.3f}")
    print(f"peak memory         : {rep.peak_memory_gb:.1f} GB")
    print(f"comm total          : {rep.comm_bytes_total / 2**30:.2f} GiB/iteration")
    print(f"peak link bandwidth : {rep.max_link_bytes_per_second / 1e9:.2f} GB/s")
    return 0


def _cmd_table(args) -> int:
    from .experiments import run_table2, run_table3, run_table4

    runner = {"2": run_table2, "3": run_table3, "4": run_table4}[args.which]
    print(runner().format(with_memory=not args.no_memory))
    return 0


def _cmd_figure(args) -> int:
    from .experiments import run_figure6, run_figure7, run_figure8, run_figure9

    runner = {
        "6": run_figure6, "7": run_figure7, "8": run_figure8, "9": run_figure9
    }[args.which]
    print(runner().format())
    return 0


def _cmd_chaos_sweep(args) -> int:
    from . import FP64, ModelConfig, TrainSpec
    from .runtime import ChaosPolicy
    from .testing import DEFAULT_DIFFERENTIAL_STRATEGIES, run_differential

    cfg = ModelConfig(
        hidden=args.hidden, n_layers=args.layers, n_heads=args.heads,
        seq_len=args.seq, vocab=args.vocab,
    )
    spec = TrainSpec(
        cfg=cfg, n_microbatches=args.microbatches,
        microbatch_size=args.microbatch_size, iters=args.iters,
        precision=FP64,
    )
    if args.quiet_wire:
        policy = ChaosPolicy.quiet()
    else:
        policy = ChaosPolicy(
            delay_prob=args.delay_prob, max_delay=args.max_delay,
            drop_prob=args.drop_prob, duplicate_prob=args.dup_prob,
            retry_delay=args.retry_delay,
        )
    if args.faults:
        from dataclasses import replace as _replace

        known = {
            "bitflip": dict(
                bitflip_prob=args.bitflip_prob,
                retransmit_budget=args.retransmit_budget,
            ),
            "flap": dict(
                flap_prob=args.flap_prob, flap_len=args.flap_len,
                flap_delay=args.flap_delay,
            ),
            "stall": dict(
                stall_prob=args.stall_prob, max_stall=args.max_stall,
            ),
        }
        overrides = {}
        for fault in args.faults.split(","):
            fault = fault.strip()
            if not fault:
                continue
            if fault not in known:
                raise SystemExit(
                    f"unknown fault {fault!r}; choose from "
                    f"{', '.join(known)}"
                )
            overrides.update(known[fault])
        policy = _replace(policy, **overrides)
    if args.strategies is None:
        strategies = dict(DEFAULT_DIFFERENTIAL_STRATEGIES)
    else:
        strategies = {
            name.strip(): DEFAULT_DIFFERENTIAL_STRATEGIES.get(
                name.strip(), args.world
            )
            for name in args.strategies.split(",")
            if name.strip()
        }
    seeds = range(args.seed_start, args.seed_start + args.seeds)

    tracer = None
    metrics = None
    fabric_factory = None
    if args.backend == "process":
        from .runtime import ProcessTransport
        from .runtime.transport.process import validate_process_policy

        try:
            validate_process_policy(policy)
        except ValueError as e:
            raise SystemExit(
                f"{e}\nhint: pass --drop-prob 0 --dup-prob 0 (and no "
                "--faults) for a process-backend sweep"
            ) from None

        if args.trace_out is not None:
            from .obs import Tracer

            # one shared tracer: every launch merges its per-rank spills
            # onto the same pid-r timelines, in sweep order.
            tracer = Tracer(metadata={
                "command": "chaos-sweep", "backend": "process",
                "seeds": list(seeds), "strategies": sorted(strategies),
            })
        if args.metrics_out is not None:
            from .obs import MetricsRegistry

            metrics = MetricsRegistry()
        transports = []

        def fabric_factory(world, pol):
            t = ProcessTransport(policy=pol, tracer=tracer)
            transports.append(t)
            return t

    elif args.trace_out is not None or args.metrics_out is not None:
        from .obs import MetricsRegistry, Tracer
        from .runtime import ChaosFabric as _CF

        metrics = MetricsRegistry()
        if args.trace_out is not None:
            # one shared tracer: every sweep point's rank-r events land
            # on the same pid-r timeline, in sweep order.
            tracer = Tracer(metadata={
                "command": "chaos-sweep", "seeds": list(seeds),
                "strategies": sorted(strategies),
            })

        def fabric_factory(world, pol):
            return _CF(world, pol, tracer=tracer, metrics=metrics)

    def progress(name: str, seed: int, failure: Optional[str]) -> None:
        status = "PASS" if failure is None else f"FAIL ({failure})"
        print(f"seed {seed:>4}  {name:<20} {status}")

    report = run_differential(
        strategies=strategies, chaos_seeds=seeds, spec=spec, policy=policy,
        fabric_factory=fabric_factory, progress=progress,
    )
    print(report.summary())
    if args.backend == "process" and metrics is not None:
        # each launch merged its children into its transport's registry;
        # fold the per-launch registries into the sweep-wide one.
        for t in transports:
            metrics.merge(t.metrics.as_dict())
    if tracer is not None and args.trace_out is not None:
        tracer.dump(args.trace_out)
        print(f"[trace written to {args.trace_out}]")
    if metrics is not None and args.metrics_out is not None:
        metrics.dump(args.metrics_out)
        injected = metrics.total("chaos_injections_total", label="fault")
        print(f"[metrics written to {args.metrics_out}; "
              f"injections: {injected}]")
    return 0 if report.ok else 1


def _cmd_crash_recovery(args) -> int:
    from .testing import default_crash_spec, run_crash_recovery

    spec = None
    if args.iters is not None:
        spec = default_crash_spec(iters=args.iters)
    tracer, metrics = _make_obs(args, command="crash-recovery")
    report = run_crash_recovery(
        spec=spec,
        strategy=args.strategy,
        world=args.world,
        seed=args.seed,
        crash_rank=args.crash_rank,
        crash_at_post=args.crash_at_post,
        wire_chaos=args.wire_chaos,
        verify=not args.no_verify,
        tracer=tracer,
        metrics=metrics,
    )
    print(report.summary())
    _dump_obs_pair(tracer, metrics, args)
    return 1 if report.verified is False else 0


def _cmd_self_heal(args) -> int:
    from .testing import default_crash_spec, run_heal_differential, run_self_heal

    failed = False
    tracer, metrics = _make_obs(args, command="self-heal")

    if not args.skip_differential:
        print("== heal differential "
              "(transient faults must be bit-invisible) ==")

        def progress(cell: str, sched: str, failure) -> None:
            status = "PASS" if failure is None else f"FAIL ({failure})"
            print(f"  {cell:<40} {status}")

        report = run_heal_differential(
            modes=[m.strip() for m in args.modes.split(",") if m.strip()],
            worlds=[int(w) for w in args.worlds.split(",") if w.strip()],
            precisions=[p.strip() for p in args.precisions.split(",") if p.strip()],
            seed=args.seed,
            progress=progress,
        )
        print(report.summary())
        failed |= not report.ok

    if not args.skip_rejoin:
        print("\n== rejoin scenario (suspect -> confirm -> shrink -> "
              "re-grow) ==")
        spec = (
            default_crash_spec(iters=args.iters)
            if args.iters is not None else None
        )
        heal = run_self_heal(
            spec=spec, strategy=args.strategy, world=args.world,
            seed=args.seed, flap_duration=args.flap_duration,
            tracer=tracer, metrics=metrics,
        )
        print(heal.summary())
        failed |= not heal.ok

    print("\n== quiet-wire control (integrity framing must be free) ==")
    from . import train
    from .runtime import ChaosFabric, ChaosPolicy
    from .testing import default_differential_spec

    fabric = ChaosFabric(args.world, ChaosPolicy.quiet(args.seed),
                         tracer=tracer, metrics=metrics)
    train(default_differential_spec(), args.strategy, args.world, fabric=fabric)
    retx = fabric._m_heal["fabric_retransmits"].value
    corrupt = fabric._m_heal["fabric_corrupt_frames"].value
    print(f"quiet wire: {fabric.chaos.posts} posts, "
          f"{retx:.0f} retransmits, {corrupt:.0f} corrupt frames")
    if retx != 0 or corrupt != 0:
        print("FAIL: the quiet wire retransmitted — CRC framing is not "
              "free on a clean wire")
        failed = True

    _dump_obs_pair(tracer, metrics, args)
    return 1 if failed else 0


def _cmd_bench_overlap(args) -> int:
    import json

    from .experiments.overlap import run_overlap_comparison

    report = run_overlap_comparison(
        hidden=args.hidden, n_layers=args.layers, n_heads=args.heads,
        seq_len=args.seq, vocab=args.vocab, world=args.world,
        n_microbatches=args.microbatches,
        microbatch_size=args.microbatch_size, iters=args.iters,
        seed=args.seed, mode=args.mode, precision=args.precision,
        link_delay_s=args.link_delay, chaos_seed=args.chaos_seed,
        reps=args.reps, zero_latency_control=not args.no_control,
        backend=args.backend,
        trace_path=args.trace_out, metrics_path=args.metrics_out,
    )
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    sync, ovl = report["sync"], report["overlap"]
    print(f"wire                : seeded-delay <= {args.link_delay * 1e3:.1f} ms "
          f"(chaos seed {args.chaos_seed})")
    print(f"sync ring           : {sync['tokens_per_s']:,.0f} tokens/s "
          f"({sync['wall_s'] * 1e3:,.0f} ms, "
          f"wire-wait/compute {sync['wire_wait_per_compute']:.2f})")
    print(f"overlap ring        : {ovl['tokens_per_s']:,.0f} tokens/s "
          f"({ovl['wall_s'] * 1e3:,.0f} ms, "
          f"wire-wait/compute {ovl['wire_wait_per_compute']:.2f})")
    print(f"speedup             : {report['speedup_tokens_per_s']:.2f}x")
    if "zero_latency" in report:
        print(f"zero-latency control: "
              f"{report['zero_latency']['speedup_tokens_per_s']:.2f}x "
              "(compute-bound on the in-process fabric)")
    print(f"bytes moved         : {ovl['bytes_moved']:,} "
          f"(equal across engines: {report['bytes_equal']})")
    print(f"pool                : {ovl['pool']}")
    print(f"steady-state allocs : {ovl['steady_state_allocs_per_iter']} "
          "new buffers/iteration after warmup")
    print(f"losses bit-equal    : {report['losses_equal']}")
    if "backends" in report:
        b = report["backends"]
        bc = b["config"]
        print(f"backend comparison  : world={bc['world']} "
              f"hidden={bc['hidden']} layers={bc['n_layers']} "
              f"delay<={bc['link_delay_s'] * 1e3:.1f}ms (overlap engine)")
        print(f"  thread            : {b['thread']['tokens_per_s']:,.0f} "
              "tokens/s")
        print(f"  process           : {b['process']['tokens_per_s']:,.0f} "
              "tokens/s")
        print(f"  process/thread    : "
              f"{b['process_over_thread_tokens_per_s']:.2f}x "
              f"(bit-equal: {b['losses_equal']}, "
              f"traffic-equal: {b['bytes_equal']})")
    print(f"[saved to {args.out}]")
    if "trace_path" in report:
        print(f"[trace written to {report['trace_path']}]")
    if "metrics_path" in report:
        print(f"[metrics written to {report['metrics_path']}]")
    if not report["losses_equal"]:
        return 1
    if ovl["steady_state_allocs_per_iter"] != 0:
        return 1
    if "backends" in report:
        b = report["backends"]
        if not (b["losses_equal"] and b["bytes_equal"]):
            return 1
        if b["process_over_thread_tokens_per_s"] <= 1.0:
            print("FAIL: process backend not strictly faster than thread "
                  "on the weak-scaling configuration")
            return 1
    return 0


def _cmd_bench_topology(args) -> int:
    import json

    from .experiments.topology import run_topology_comparison

    report = run_topology_comparison(
        hidden=args.hidden, n_layers=args.layers, n_heads=args.heads,
        seq_len=args.seq, vocab=args.vocab, world=args.world,
        groups=args.groups, n_microbatches=args.microbatches,
        microbatch_size=args.microbatch_size, iters=args.iters,
        seed=args.seed, mode=args.mode, precision=args.precision,
        intra_bandwidth=args.intra_bandwidth,
        intra_latency_s=args.intra_latency,
        inter_bandwidth=args.inter_bandwidth,
        inter_latency_s=args.inter_latency,
        jitter_s=args.jitter, chaos_seed=args.chaos_seed, reps=args.reps,
        trace_path=args.trace_out, metrics_path=args.metrics_out,
    )
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    flat, hier = report["flat"], report["hier"]
    cg, ig = report["cross_group"], report["intra_group"]
    print(f"wire                : intra {args.intra_bandwidth / 1e9:.1f} GB/s, "
          f"inter {args.inter_bandwidth / 1e6:.0f} MB/s, "
          f"jitter <= {args.jitter * 1e3:.1f} ms "
          f"(chaos seed {args.chaos_seed})")
    print(f"groups              : {report['config']['groups']} "
          f"(gateways {hier['extra'].get('gateways')})")
    print(f"flat ring           : {flat['tokens_per_s']:,.0f} tokens/s "
          f"({flat['wall_s'] * 1e3:,.0f} ms)")
    print(f"hierarchical ring   : {hier['tokens_per_s']:,.0f} tokens/s "
          f"({hier['wall_s'] * 1e3:,.0f} ms)")
    print(f"speedup             : {report['speedup_tokens_per_s']:.2f}x")
    if cg["reduction_factor"] is not None:
        print(f"cross-group bytes   : flat {cg['flat_bytes']:,} -> "
              f"hier {cg['hier_bytes']:,} "
              f"({cg['reduction_factor']:.2f}x fewer: {cg['hier_lt_flat']})")
    print(f"intra-group bytes   : conserved: {ig['equal']} "
          f"({ig['hier_bytes']:,})")
    print(f"boundary crossings  : {hier['extra']['inter_full_sends']} full, "
          f"{hier['extra']['inter_ref_sends']} by reference")
    print(f"losses bit-equal    : {report['losses_equal']}")
    print(f"[saved to {args.out}]")
    if "trace_path" in report:
        print(f"[trace written to {report['trace_path']}]")
    if "metrics_path" in report:
        print(f"[metrics written to {report['metrics_path']}]")
    if not report["losses_equal"]:
        return 1
    if not cg["hier_lt_flat"] or not ig["equal"]:
        return 1
    return 0


def _cmd_postmortem(args) -> int:
    from .obs.flight import load_postmortem, render_postmortem

    try:
        bundle = load_postmortem(args.bundle)
    except OSError as e:
        raise SystemExit(str(e)) from None
    except (ValueError, KeyError) as e:
        raise SystemExit(f"{args.bundle}: {e}") from None
    print(render_postmortem(bundle, last=args.last))
    return 0


def _cmd_timeline(args) -> int:
    from .sim import WorkloadDims, nvlink_cluster, render_timeline
    from .sim.costmodel import ExecConfig
    from .sim.schedules import build_pipeline, build_weipipe, build_weipipe_zb

    dims = WorkloadDims(
        hidden=1024, n_layers=args.world, seq_len=4096, microbatch=4,
        n_microbatches=args.microbatches,
    )
    cluster = nvlink_cluster(args.world, gpus_per_node=args.world)
    norec = ExecConfig(recompute=False)
    name = args.schedule
    if name.startswith("weipipe-"):
        built = build_weipipe(name.split("-", 1)[1], dims, cluster)
    elif name in ("wzb1", "wzb2"):
        built = build_weipipe_zb(name, dims, cluster, norec)
    elif name in ("zb1", "zb2"):
        built = build_pipeline(name, dims, cluster, norec)
    else:
        built = build_pipeline(name, dims, cluster)
    print(render_timeline(built, width=args.width, title=name))
    return 0


def _cmd_plan(args) -> int:
    from .plan import (
        PlanSpecError,
        build_report,
        format_report,
        load_spec,
        search,
        validate_candidate,
        validate_plan_report,
    )
    from .plan.spec import ClusterSpec, ModelSpec, PlanSpec, SearchSpace

    try:
        if args.spec is not None:
            spec = load_spec(args.spec)
        else:
            model_kw = {
                k: v for k, v in {
                    "hidden": args.hidden, "n_layers": args.layers,
                    "seq_len": args.seq_len, "n_heads": args.heads,
                    "vocab": args.vocab,
                    "global_batch_sequences": args.global_batch,
                }.items() if v is not None
            }
            cluster_kw = {
                k: v for k, v in {
                    "preset": args.preset, "world": args.world,
                    "gpus_per_node": args.gpus_per_node,
                    "memory_budget_bytes": (
                        args.memory_budget_gib * 2**30
                        if args.memory_budget_gib is not None else None
                    ),
                }.items() if v is not None
            }
            space_kw = {}
            if args.strategies is not None:
                space_kw["strategies"] = tuple(
                    s.strip() for s in args.strategies.split(",") if s.strip()
                )
            if args.microbatches is not None:
                space_kw["microbatch_sizes"] = tuple(
                    int(g) for g in args.microbatches.split(",")
                )
            spec = PlanSpec(
                model=ModelSpec(**model_kw),
                cluster=ClusterSpec(**cluster_kw),
                space=SearchSpace(**space_kw),
            )
        result = search(spec)
    except (PlanSpecError, ValueError) as e:
        print(f"plan: {e}", file=sys.stderr)
        return 2
    verdict = None
    if result.feasible and not args.no_validate:
        verdict = validate_candidate(result.feasible[0], spec)
    report = build_report(spec, result, validation=verdict)
    problems = validate_plan_report(report)
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=1)
        print(f"wrote {args.out}")
    print(format_report(report, top=args.top))
    if problems:
        print("\nreport schema problems:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    if not result.feasible:
        print("\nno feasible configuration fits the memory budget",
              file=sys.stderr)
        return 1
    if verdict is not None and not verdict["passed"]:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "strategies": lambda: _cmd_strategies(),
        "train": lambda: _cmd_train(args),
        "trace": lambda: _cmd_trace(args),
        "simulate": lambda: _cmd_simulate(args),
        "table": lambda: _cmd_table(args),
        "figure": lambda: _cmd_figure(args),
        "timeline": lambda: _cmd_timeline(args),
        "plan": lambda: _cmd_plan(args),
        "postmortem": lambda: _cmd_postmortem(args),
        "chaos-sweep": lambda: _cmd_chaos_sweep(args),
        "crash-recovery": lambda: _cmd_crash_recovery(args),
        "self-heal": lambda: _cmd_self_heal(args),
        "bench-overlap": lambda: _cmd_bench_overlap(args),
        "bench-topology": lambda: _cmd_bench_topology(args),
    }
    return handlers[args.command]()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
