"""Elastic fault-tolerant training: strategy step engines + driver.

Glue between the strategy zoo and the generic ring-shrink recovery loop
(:mod:`repro.runtime.recovery`).  Each supported strategy exposes one
training iteration as a *step engine* — a pure function

    ``(subgroup, global_step, ElasticState) -> (loss, ElasticState)``

over the canonical full state (all weight chunks + all per-chunk
optimizer states, replicated on every rank at step boundaries).  That
granularity is what makes recovery simple and exact:

* a snapshot is just the engine's input — keeping the last two committed
  ones (see the recovery module for the skew argument) costs memory, not
  communication;
* after a crash, survivors roll back to an agreed snapshot and re-run
  the *same* engine on a smaller group; because the engine is a pure
  function of ``(state, global step)``, the post-recovery loss curve is
  bit-identical to a from-scratch run on the shrunken world seeded from
  that snapshot — the differential property
  :func:`repro.testing.run_crash_recovery` asserts;
* WeiPipe's divisibility requirements (``L % P == 0``, ``N % P == 0``)
  survive arbitrary shrinks: each step computes on the **largest usable
  sub-ring** of the available ranks; ranks left outside the ring idle
  for that step and receive the committed state from the ring's first
  rank (so they remain valid recovery donors).

This trades per-step state replication for protocol simplicity — the
honest cost of step-boundary snapshots, acceptable in the functional
runtime where semantics, not wall-clock, are under test (DESIGN.md §9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..nn.params import ParamStruct
from ..runtime import Fabric, SubCommunicator, run_workers_elastic
from ..runtime.communicator import Communicator
from ..runtime.recovery import ElasticResult, elastic_worker
from .common import TrainResult, TrainSpec, init_opt_states

__all__ = [
    "ElasticState",
    "ELASTIC_STRATEGIES",
    "step_engine_for",
    "train_elastic",
]


@dataclass(frozen=True)
class ElasticState:
    """Canonical full training state at a step boundary.

    ``chunks`` are the per-layer weights and ``opt_state`` the matching
    per-layer optimizer states in the canonical (unsharded) layout.
    Treated as immutable: engines clone what they update, so snapshots
    shared between ranks of the in-process fabric stay intact.
    """

    chunks: List[ParamStruct]
    opt_state: List[Dict]


#: strategies with a registered step engine (the fault-tolerant subset).
ELASTIC_STRATEGIES: Tuple[str, ...] = (
    "serial",
    "dp",
    "fsdp",
    "weipipe-naive",
    "weipipe-interleave",
    "weipipe-zb",
    "weipipe-hier",
)

_WEIPIPE_MODES = {
    "weipipe-naive": "naive",
    "weipipe-interleave": "interleave",
    "weipipe-zb": "zero-bubble",
    "weipipe-hier": "interleave",
}

#: a strategy's core compute: one iteration on a compute subgroup.
_ComputeFn = Callable[
    [Communicator, int, ElasticState], Tuple[float, List[ParamStruct], List[Dict]]
]


def _largest_world(available: int, usable: Callable[[int], bool]) -> int:
    for w in range(available, 0, -1):
        if usable(w):
            return w
    raise AssertionError("world size 1 must always be usable")  # pragma: no cover


def _compute_world_fn(strategy: str, spec: TrainSpec) -> Callable[[int], int]:
    """How many of the available ranks a strategy can actually use."""
    if strategy == "serial":
        return lambda available: 1
    if strategy in ("dp", "fsdp"):
        return lambda available: _largest_world(
            available, lambda w: spec.n_microbatches % w == 0
        )
    if strategy in _WEIPIPE_MODES:
        return lambda available: _largest_world(
            available,
            lambda w: spec.cfg.n_layers % w == 0 and spec.n_microbatches % w == 0,
        )
    raise ValueError(
        f"strategy {strategy!r} has no elastic step engine; "
        f"choose from {list(ELASTIC_STRATEGIES)}"
    )


def _compute_fn(strategy: str, spec: TrainSpec) -> _ComputeFn:
    if strategy == "serial":
        from .serial import serial_step

        return lambda csub, it, st: serial_step(spec, it, st.chunks, st.opt_state)
    if strategy == "dp":
        from .data_parallel import dp_step

        return lambda csub, it, st: dp_step(csub, spec, it, st.chunks, st.opt_state)
    if strategy == "fsdp":
        from .fsdp import fsdp_step

        return lambda csub, it, st: fsdp_step(csub, spec, it, st.chunks, st.opt_state)
    if strategy == "weipipe-hier":
        from .weipipe_hier import weipipe_hier_step

        # a fresh boundary-aware worker per step re-derives the group
        # layout from the *current* compute world and starts with empty
        # gateway caches — every shrink or rejoin therefore invalidates
        # all cached weight slots by construction.
        return lambda csub, it, st: weipipe_hier_step(
            csub, spec, it, st.chunks, st.opt_state
        )
    if strategy in _WEIPIPE_MODES:
        from ..core.weipipe import weipipe_step

        # the overlap engine (double-buffered nonblocking ring, pooled
        # arenas) is bit-identical to the sync one, so elastic recovery
        # gets the fast path too: abandoned posted receives from a failed
        # step can never cross-match a retry because every step runs in
        # its own ("compute", global_step) tag namespace inside the
        # recovery epoch's namespace.
        mode = _WEIPIPE_MODES[strategy]
        return lambda csub, it, st: weipipe_step(
            csub, spec, it, st.chunks, st.opt_state, mode=mode, overlap=True
        )
    raise ValueError(
        f"strategy {strategy!r} has no elastic step engine; "
        f"choose from {list(ELASTIC_STRATEGIES)}"
    )


def step_engine_for(strategy: str, spec: TrainSpec):
    """Build the ``(sub, global_step, state) -> (loss, state)`` engine.

    Every surviving rank calls the engine each step.  The engine forms a
    per-step tag namespace (so a step's traffic can never cross-match
    another step's, even across rollbacks), shrinks to the largest
    sub-ring the strategy's divisibility constraints allow, computes,
    and forwards the committed ``(loss, state)`` to any idle ranks.
    """
    compute = _compute_fn(strategy, spec)
    compute_world = _compute_world_fn(strategy, spec)

    def run_step(
        sub: Communicator, global_step: int, state: ElasticState
    ) -> Tuple[float, ElasticState]:
        available = sub.world_size
        w = compute_world(available)
        if sub.rank < w:
            csub = SubCommunicator(sub, list(range(w)), ("compute", global_step))
            loss, chunks, opt_state = compute(csub, global_step, state)
            new_state = ElasticState(chunks=chunks, opt_state=opt_state)
            if sub.rank == 0:
                for r in range(w, available):
                    sub.send((loss, new_state), r, ("elastic-idle", global_step))
        else:
            loss, new_state = sub.recv(0, ("elastic-idle", global_step))
        return loss, new_state

    return run_step


def train_elastic(
    spec: TrainSpec,
    strategy: str = "weipipe-interleave",
    world_size: int = 4,
    fabric: Optional[Fabric] = None,
    timeout: float = 120.0,
    max_recoveries: Optional[int] = None,
    on_commit=None,
    detector=None,
    rejoin_timeout: Optional[float] = None,
) -> TrainResult:
    """Train with ring-shrink recovery: worker deaths shrink the group.

    Same contract as :func:`repro.core.api.train` when nothing fails —
    identical losses and final weights for every registered strategy —
    plus fault tolerance: a crashing rank is detected at the survivors'
    next fabric operation, the group rolls back to the last jointly
    committed step snapshot and continues on ``P - 1`` ranks (then
    ``P - 2`` on a further failure, and so on, down to 1).

    ``on_commit(completed_steps, ElasticState, losses)`` fires on the
    lowest surviving rank after each committed step — the hook the CLI
    uses for periodic durable checkpoints.

    The returned :class:`TrainResult` carries, in ``extra``:
    ``opt_state`` (canonical final optimizer state), ``recovery_events``
    (list of :class:`~repro.runtime.recovery.RecoveryEvent`),
    ``rollback_states`` (the snapshots recoveries restarted from),
    ``rejoin_events`` (list of
    :class:`~repro.runtime.recovery.RejoinEvent` — ring re-growths),
    ``survivors``, ``worker_errors`` (per launch rank; ``None`` for
    survivors) and ``next_iteration`` (resume cursor).

    Pass a :class:`~repro.runtime.detector.FailureDetector` as
    ``detector`` to arm suspicion-based failure handling: a transiently
    silent rank (stall, NIC flap) is confirmed dead only after the
    adaptive phi threshold, and once it recovers it rejoins at a step
    boundary — the ring re-grows toward the full world
    (:mod:`repro.runtime.recovery`).
    """
    if strategy not in ELASTIC_STRATEGIES:
        raise ValueError(
            f"strategy {strategy!r} has no elastic step engine; "
            f"choose from {list(ELASTIC_STRATEGIES)}"
        )
    engine = step_engine_for(strategy, spec)
    chunks = spec.init_chunks()
    opt = spec.make_optimizer()
    initial = ElasticState(
        chunks=chunks, opt_state=init_opt_states(spec, opt, chunks)
    )

    def worker(comm: Communicator) -> ElasticResult:
        return elastic_worker(
            comm,
            iters=spec.iters,
            initial_state=initial,
            run_step=engine,
            on_commit=on_commit,
            max_recoveries=max_recoveries,
            rejoin_timeout=rejoin_timeout,
        )

    results, errors = run_workers_elastic(
        world_size, worker, timeout=timeout, fabric=fabric, detector=detector
    )
    survivors = [r for r in range(world_size) if errors[r] is None]
    if not survivors:
        raise errors[0]
    res: ElasticResult = results[survivors[0]]
    for r in survivors[1:]:
        other: ElasticResult = results[r]
        if other.losses != res.losses:  # pragma: no cover - invariant
            raise AssertionError(
                f"survivors disagree on the loss curve: rank {survivors[0]} "
                f"{res.losses} vs rank {r} {other.losses}"
            )
    return TrainResult(
        losses=list(res.losses),
        chunks=res.state.chunks,
        extra={
            "opt_state": res.state.opt_state,
            "recovery_events": list(res.events),
            "rejoin_events": list(res.rejoins),
            "rollback_states": list(res.rollback_states),
            "survivors": list(res.survivors),
            "worker_errors": list(errors),
            "next_iteration": spec.start_iteration + spec.iters,
        },
    )
