"""Shared scaffolding for all training strategies.

A :class:`TrainSpec` pins down everything that defines a training run —
model, data, optimizer, precision, recomputation, microbatching — so
that every strategy (serial, DP, FSDP, GPipe, 1F1B, ZB, WeiPipe) trains
*the same problem* and can be compared for numerical equivalence.

Data is synthetic next-token prediction over random token streams
(:func:`microbatch`): a pure function of ``(data_seed, iteration,
microbatch index)``, so any worker can materialise any microbatch
without a shared data loader — exactly how the equivalence tests keep
strategies honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn.model import ModelConfig, init_model, rope_tables
from ..nn.params import ParamStruct
from ..nn.precision import FP32, PrecisionPolicy
from ..optim.optimizer import SGD, Optimizer, clone_opt_state

__all__ = [
    "TrainSpec",
    "TrainResult",
    "microbatch",
    "quantize_grads",
    "quantize_grads_",
    "init_opt_states",
]


@dataclass
class TrainSpec:
    """Complete description of one training problem.

    ``n_microbatches`` is the paper's ``N`` (per iteration) and
    ``microbatch_size`` its ``G``.  ``recompute`` toggles gradient
    checkpointing (the paper enables it for 1F1B/FSDP/WeiPipe, disables
    it for the ZB baselines).
    """

    cfg: ModelConfig
    n_microbatches: int = 4
    microbatch_size: int = 2
    iters: int = 1
    seed: int = 0
    data_seed: int = 1234
    recompute: bool = False
    precision: PrecisionPolicy = field(default_factory=lambda: FP32)
    make_optimizer: Callable[[], Optimizer] = field(
        default_factory=lambda: (lambda: SGD(lr=0.1))
    )
    #: optional LR schedule: iteration -> multiplier on the base lr.
    lr_schedule: Optional[Callable[[int], float]] = None
    #: optional global-L2-norm gradient clipping threshold.
    clip_norm: Optional[float] = None
    #: optional data source with a deterministic
    #: ``microbatch(iteration, index, g, s)`` method (see repro.data);
    #: None means i.i.d. uniform tokens.
    data: Optional[object] = None
    #: optional starting weights (e.g. from repro.io.load_checkpoint);
    #: None means fresh deterministic init from ``seed``.
    initial_chunks: Optional[List[ParamStruct]] = None
    #: optional per-chunk optimizer states to resume from (canonical
    #: full-tensor layout, as produced by ``opt.init_state(chunk)``);
    #: None means fresh zero state.  Strategies that shard state (FSDP)
    #: re-shard it on entry.
    initial_opt_state: Optional[List[Dict]] = None
    #: global iteration this run starts at (resume offset).  Applied
    #: centrally in :func:`microbatch` (data selection) and
    #: :func:`pre_update` (LR schedule), so iteration ``it`` of this run
    #: trains global iteration ``start_iteration + it`` under *every*
    #: strategy — a checkpointed run continued for the remaining
    #: iterations sees the same data and LR as the uninterrupted one.
    start_iteration: int = 0

    def __post_init__(self):
        if self.n_microbatches < 1:
            raise ValueError("need at least one microbatch")
        if self.iters < 1:
            raise ValueError("need at least one iteration")

    def init_chunks(self) -> List[ParamStruct]:
        """Starting weight chunks, quantised to the storage precision so
        all strategies start identically: either a deterministic fresh
        init from ``seed`` or the ``initial_chunks`` override (resume)."""
        if self.initial_chunks is not None:
            if len(self.initial_chunks) != self.cfg.n_layers:
                raise ValueError("initial_chunks do not match the model config")
            chunks = [c.clone() for c in self.initial_chunks]
        else:
            chunks = init_model(self.cfg, self.seed)
        q = self.precision.q_weight
        return [c.map(lambda a: q(a).astype(a.dtype, copy=False)) for c in chunks]

    def rope(self) -> Tuple[np.ndarray, np.ndarray]:
        return rope_tables(self.cfg)


def microbatch(
    spec: TrainSpec, iteration: int, index: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic microbatch ``index`` of ``iteration``.

    Delegates to ``spec.data`` when set (see :mod:`repro.data`); the
    default is uniform random tokens with next-token targets.  The seed
    mixes iteration and index so microbatches never repeat but any rank
    can regenerate any of them — the property every distributed strategy
    relies on instead of a shared data loader.
    """
    g, s, v = spec.microbatch_size, spec.cfg.seq_len, spec.cfg.vocab
    iteration = spec.start_iteration + iteration  # resume offset
    if spec.data is not None:
        tokens, targets = spec.data.microbatch(iteration, index, g, s)
        if tokens.shape != (g, s) or targets.shape != (g, s):
            raise ValueError(
                f"data source returned shape {tokens.shape}, expected {(g, s)}"
            )
        if tokens.max() >= v or targets.max() >= v:
            raise ValueError("data source produced token ids >= vocab")
        return tokens, targets
    rng = np.random.default_rng((spec.data_seed, iteration, index))
    stream = rng.integers(0, v, size=(g, s + 1))
    return stream[:, :-1], stream[:, 1:]


def init_opt_states(spec: TrainSpec, opt: Optimizer, chunks: List[ParamStruct]) -> List[Dict]:
    """Per-chunk optimizer states: fresh, or cloned from
    ``spec.initial_opt_state`` (checkpoint / elastic-snapshot resume)."""
    if spec.initial_opt_state is not None:
        if len(spec.initial_opt_state) != len(chunks):
            raise ValueError(
                f"initial_opt_state has {len(spec.initial_opt_state)} "
                f"entries, expected {len(chunks)}"
            )
        return [clone_opt_state(s) for s in spec.initial_opt_state]
    return [opt.init_state(c) for c in chunks]


def quantize_grads(grads: ParamStruct, policy: PrecisionPolicy) -> ParamStruct:
    """Quantise weight gradients to their wire format (paper: fp16 ``D``)."""
    q = policy.q_weight_grad
    return grads.map(lambda a: q(a).astype(a.dtype, copy=False))


def quantize_grads_(grads: ParamStruct, policy: PrecisionPolicy) -> ParamStruct:
    """In-place variant of :func:`quantize_grads` — same values, zero
    struct churn.  The overlap hot path (DESIGN.md §10) uses this so the
    circulating D keeps its arena across ring turns."""
    q = policy.q_weight_grad
    for a in grads.values():
        a[...] = q(a)
    return grads


def pre_update(
    spec: "TrainSpec",
    iteration: int,
    opt: Optimizer,
    grads: list,
    comm=None,
    count=None,
    tag: tuple = ("clip",),
) -> None:
    """Common pre-optimizer hook: LR schedule + global-norm clipping.

    ``grads`` is this worker's list of gradient :class:`ParamStruct`
    shards (mutated in place when clipping fires); ``comm`` is the
    communicator for the scalar norm all-reduce (``None`` when the
    worker already holds complete gradients, e.g. serial or post-
    all-reduce DP); ``count`` filters parameter names whose squares this
    worker contributes (used by TP to count replicated tensors once).
    Every strategy calls this at the same point — right before its
    optimizer steps — so scheduled/clipped runs stay equivalent.
    """
    if spec.lr_schedule is not None:
        opt.set_lr_scale(spec.lr_schedule(spec.start_iteration + iteration))
    if spec.clip_norm is not None:
        from ..optim.clip import apply_scale, global_clip_scale, local_sumsq

        scale = global_clip_scale(
            comm, local_sumsq(grads, count), spec.clip_norm, tag=tag
        )
        apply_scale(grads, scale)


@dataclass
class TrainResult:
    """What every strategy returns: per-iteration mean losses and the
    final weight chunks (fp32-master values where applicable)."""

    losses: List[float]
    chunks: List[ParamStruct]
    extra: Dict = field(default_factory=dict)

    def final_loss(self) -> float:
        return self.losses[-1]
