"""Baseline training strategies on the functional runtime."""

from .common import TrainResult, TrainSpec, microbatch
from .data_parallel import train_data_parallel
from .elastic import ELASTIC_STRATEGIES, ElasticState, step_engine_for, train_elastic
from .fsdp import train_fsdp
from .pipeline import stage_chunk_range, train_pipeline
from .pipeline_zb import train_pipeline_zb
from .sequence_parallel import train_sequence_parallel
from .serial import train_serial
from .tensor_parallel import train_tensor_parallel

__all__ = [
    "ELASTIC_STRATEGIES",
    "ElasticState",
    "TrainResult",
    "TrainSpec",
    "microbatch",
    "stage_chunk_range",
    "step_engine_for",
    "train_data_parallel",
    "train_elastic",
    "train_fsdp",
    "train_pipeline",
    "train_pipeline_zb",
    "train_sequence_parallel",
    "train_serial",
    "train_tensor_parallel",
]
