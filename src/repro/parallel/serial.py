"""Single-worker baseline: the numerical ground truth.

Every distributed strategy in this repository must reproduce this
function's losses and final weights (exactly in fp32/fp64 policies, up
to accumulation-order noise).  It is also the semantic spec: loss is the
mean over the iteration's microbatches, gradients accumulate scaled by
``1/N``, one optimizer step per iteration.

:func:`serial_step` exposes exactly one iteration as a pure function of
``(weights, optimizer state)`` — the step-boundary granularity the
elastic runtime (:mod:`repro.parallel.elastic`) snapshots and rolls back
to, and the unit checkpoint/resume must reproduce bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..nn.checkpoint import CheckpointedChunk
from ..nn import functional as F
from ..nn.params import ParamStruct
from ..optim.optimizer import clone_opt_state
from .common import (
    TrainResult,
    TrainSpec,
    init_opt_states,
    microbatch,
    pre_update,
    quantize_grads,
)

__all__ = ["train_serial", "serial_step"]


def serial_step(
    spec: TrainSpec,
    iteration: int,
    chunks: List[ParamStruct],
    opt_states: List[Dict],
) -> Tuple[float, List[ParamStruct], List[Dict]]:
    """One full training iteration from explicit state.

    Pure with respect to its inputs: ``chunks`` and ``opt_states`` are
    cloned, updated copies are returned alongside the iteration's mean
    loss.  ``iteration`` is relative to ``spec.start_iteration`` (the
    data/LR offset is applied inside ``microbatch``/``pre_update``).
    """
    cfg = spec.cfg
    chunks = [c.clone() for c in chunks]
    states = [clone_opt_state(s) for s in opt_states]
    cos, sin = spec.rope()
    ck = CheckpointedChunk(cfg, recompute=spec.recompute)
    opt = spec.make_optimizer()
    q_act = spec.precision.q_act
    q_bgrad = spec.precision.q_act_grad
    scale = 1.0 / spec.n_microbatches

    accum: List[ParamStruct] = [c.zeros_like() for c in chunks]
    total = 0.0
    for mb in range(spec.n_microbatches):
        tokens, targets = microbatch(spec, iteration, mb)
        x = tokens
        fwd_states = []
        for i in range(cfg.n_layers):
            x, st = ck.fwd(i, chunks[i], x, cos, sin)
            x = q_act(x)
            fwd_states.append(st)
        loss, c_loss = F.cross_entropy_fwd(x, targets)
        total += loss
        dy = F.cross_entropy_bwd(1.0, c_loss)
        for i in range(cfg.n_layers - 1, -1, -1):
            dy, g = ck.bwd(i, chunks[i], dy, fwd_states[i])
            if dy is not None:
                dy = q_bgrad(dy)
            accum[i].add_(quantize_grads(g, spec.precision), scale=scale)
    pre_update(spec, iteration, opt, accum)
    for i, c in enumerate(chunks):
        opt.step(c, accum[i], states[i])
    return total / spec.n_microbatches, chunks, states


def train_serial(spec: TrainSpec) -> TrainResult:
    """Train on one worker; returns per-iteration losses and final chunks."""
    chunks = spec.init_chunks()
    opt = spec.make_optimizer()
    states = init_opt_states(spec, opt, chunks)
    losses: List[float] = []
    for it in range(spec.iters):
        loss, chunks, states = serial_step(spec, it, chunks, states)
        losses.append(loss)
    return TrainResult(losses=losses, chunks=chunks, extra={"opt_state": states})
