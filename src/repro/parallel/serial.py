"""Single-worker baseline: the numerical ground truth.

Every distributed strategy in this repository must reproduce this
function's losses and final weights (exactly in fp32/fp64 policies, up
to accumulation-order noise).  It is also the semantic spec: loss is the
mean over the iteration's microbatches, gradients accumulate scaled by
``1/N``, one optimizer step per iteration.
"""

from __future__ import annotations

from typing import List

from ..nn.checkpoint import CheckpointedChunk
from ..nn import functional as F
from ..nn.params import ParamStruct
from .common import TrainResult, TrainSpec, microbatch, pre_update, quantize_grads

__all__ = ["train_serial"]


def train_serial(spec: TrainSpec) -> TrainResult:
    """Train on one worker; returns per-iteration losses and final chunks."""
    cfg = spec.cfg
    chunks = spec.init_chunks()
    cos, sin = spec.rope()
    ck = CheckpointedChunk(cfg, recompute=spec.recompute)
    opt = spec.make_optimizer()
    states = [opt.init_state(c) for c in chunks]
    q_act = spec.precision.q_act
    q_bgrad = spec.precision.q_act_grad
    scale = 1.0 / spec.n_microbatches

    losses: List[float] = []
    for it in range(spec.iters):
        accum: List[ParamStruct] = [c.zeros_like() for c in chunks]
        total = 0.0
        for mb in range(spec.n_microbatches):
            tokens, targets = microbatch(spec, it, mb)
            x = tokens
            fwd_states = []
            for i in range(cfg.n_layers):
                x, st = ck.fwd(i, chunks[i], x, cos, sin)
                x = q_act(x)
                fwd_states.append(st)
            loss, c_loss = F.cross_entropy_fwd(x, targets)
            total += loss
            dy = F.cross_entropy_bwd(1.0, c_loss)
            for i in range(cfg.n_layers - 1, -1, -1):
                dy, g = ck.bwd(i, chunks[i], dy, fwd_states[i])
                if dy is not None:
                    dy = q_bgrad(dy)
                accum[i].add_(quantize_grads(g, spec.precision), scale=scale)
        pre_update(spec, it, opt, accum)
        for i, c in enumerate(chunks):
            opt.step(c, accum[i], states[i])
        losses.append(total / spec.n_microbatches)
    return TrainResult(losses=losses, chunks=chunks)
