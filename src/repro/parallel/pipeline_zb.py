"""Zero-bubble pipeline parallelism (ZB1 / ZB2 baselines).

Zero-bubble schedules (Qi et al.) split each backward into:

* **B pass** — gradient w.r.t. activations (unblocks the upstream stage
  immediately), and
* **W pass** — gradient w.r.t. weights (pure local GEMMs, freely
  deferrable),

and fill pipeline bubbles with deferred W passes.  Functionally the
result is identical to 1F1B; what changes is *liveness*: between a
microbatch's B pass and its W pass the stage must hold both the forward
cache and the B-pass upstream gradients.  The paper's Table 2 finding —
ZB1/ZB2 go OOM where 1F1B does not, once Flash Attention makes FFN
activations dominant — is driven exactly by that window, so this worker
tracks ``peak_pending_w`` (max deferred W passes alive at once).

Variants:

* ``zb1`` — warmup ``P - rank`` forwards, steady F/B/W rhythm; W passes
  run eagerly after the next B, bounding pending W at ~1 extra.
* ``zb2`` — warmup ``2(P - rank) - 1`` forwards and W passes deferred a
  full extra round, buying a smaller bubble (in time; see ``repro.sim``)
  at roughly double the liveness.

Recomputation is intentionally rejected here, mirroring the paper: with
decoupled B/W the forward cache must survive until the W pass anyway,
so checkpointing saves nothing and only adds compute.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..nn.checkpoint import CheckpointedChunk
from ..nn import functional as F
from ..nn.params import ParamStruct
from ..runtime import Communicator, Fabric, all_gather, run_workers
from .common import TrainResult, TrainSpec, microbatch, pre_update, quantize_grads
from .pipeline import stage_chunk_range

__all__ = ["train_pipeline_zb"]


class _ZBStage:
    def __init__(self, comm: Communicator, spec: TrainSpec):
        if spec.recompute:
            raise ValueError(
                "zero-bubble schedules do not support recomputation "
                "(the forward cache must live until the W pass; see paper §5)"
            )
        self.comm = comm
        self.spec = spec
        self.cfg = spec.cfg
        self.rank = comm.rank
        self.world = comm.world_size
        self.is_first = self.rank == 0
        self.is_last = self.rank == self.world - 1
        self.chunk_ids = list(
            stage_chunk_range(self.cfg.n_layers, self.world, self.rank)
        )
        all_chunks = spec.init_chunks()
        self.chunks = {i: all_chunks[i] for i in self.chunk_ids}
        self.cos, self.sin = spec.rope()
        self.ck = CheckpointedChunk(self.cfg, recompute=False)
        self.opt = spec.make_optimizer()
        self.opt_states = {
            i: self.opt.init_state(self.chunks[i]) for i in self.chunk_ids
        }
        self.q_act = spec.precision.q_act
        self.q_bgrad = spec.precision.q_act_grad
        self.act_wire = spec.precision.act_bytes
        self.bgrad_wire = spec.precision.act_grad_bytes
        self.scale = 1.0 / spec.n_microbatches

        self.inflight: Dict[int, list] = {}
        self.loss_caches: Dict[int, tuple] = {}
        self.local_losses: Dict[int, float] = {}
        # deferred W work: (mb, [(chunk id, cache, wcache), ...])
        self.pending_w: Deque[Tuple[int, list]] = deque()
        self.peak_pending_w = 0
        self.peak_inflight = 0
        self.trace = comm.trace

    def forward(self, it: int, mb: int) -> None:
        if self.is_first:
            tokens, targets = microbatch(self.spec, it, mb)
            x = tokens
        else:
            x = self.comm.recv(self.rank - 1, ("act", it, mb))
            _, targets = microbatch(self.spec, it, mb)
        c0 = perf_counter()
        states = []
        for i in self.chunk_ids:
            x, st = self.ck.fwd(i, self.chunks[i], x, self.cos, self.sin)
            x = self.q_act(x)
            states.append(st)
        self.inflight[mb] = states
        self.peak_inflight = max(self.peak_inflight, len(self.inflight))
        if self.is_last:
            loss, c_loss = F.cross_entropy_fwd(x, targets)
            self.local_losses[mb] = loss
            self.loss_caches[mb] = c_loss
        if self.trace.enabled:
            self.trace.complete("F", "compute", c0, perf_counter() - c0,
                                {"mb": mb, "it": it})
        if not self.is_last:
            self.comm.send(
                x, self.rank + 1, ("act", it, mb),
                nbytes=int(x.size * self.act_wire),
            )

    def b_pass(self, it: int, mb: int) -> None:
        """Activation-gradient half: unblocks the upstream stage, defers W."""
        if self.is_last:
            dy = F.cross_entropy_bwd(1.0, self.loss_caches.pop(mb))
        else:
            dy = self.comm.recv(self.rank + 1, ("bgrad", it, mb))
        c0 = perf_counter()
        states = self.inflight.pop(mb)
        deferred = []
        for pos in range(len(self.chunk_ids) - 1, -1, -1):
            i = self.chunk_ids[pos]
            dy, cache, wcache = self.ck.bwd_input(i, self.chunks[i], dy, states[pos])
            if dy is not None:
                dy = self.q_bgrad(dy)
            deferred.append((i, cache, wcache))
        if self.trace.enabled:
            self.trace.complete("B", "compute", c0, perf_counter() - c0,
                                {"mb": mb, "it": it})
        if not self.is_first:
            self.comm.send(
                dy, self.rank - 1, ("bgrad", it, mb),
                nbytes=int(dy.size * self.bgrad_wire),
            )
        self.pending_w.append((mb, deferred))
        self.peak_pending_w = max(self.peak_pending_w, len(self.pending_w))

    def w_pass(self, accum: Dict[int, ParamStruct]) -> None:
        """Weight-gradient half for the oldest deferred microbatch."""
        c0 = perf_counter()
        mb, deferred = self.pending_w.popleft()
        for i, cache, wcache in deferred:
            g = self.ck.bwd_weight(i, cache, wcache)
            accum[i].add_(quantize_grads(g, self.spec.precision), scale=self.scale)
        if self.trace.enabled:
            self.trace.complete("W", "compute", c0, perf_counter() - c0,
                                {"mb": mb})

    def run_iteration(self, it: int, variant: str) -> float:
        if not self.trace.enabled:
            return self._run_iteration(it, variant)
        t0 = perf_counter()
        loss = self._run_iteration(it, variant)
        self.trace.complete("iteration", "iteration", t0, perf_counter() - t0,
                            {"it": it, "variant": variant})
        return loss

    def _run_iteration(self, it: int, variant: str) -> float:
        n = self.spec.n_microbatches
        accum = {i: self.chunks[i].zeros_like() for i in self.chunk_ids}

        if variant == "zb1":
            warmup = min(n, self.world - self.rank)
            w_lag = 1
        elif variant == "zb2":
            warmup = min(n, 2 * (self.world - self.rank) - 1)
            w_lag = 2 * (self.world - self.rank) - 1
        else:
            raise ValueError(f"unknown zero-bubble variant {variant!r}")

        for mb in range(warmup):
            self.forward(it, mb)
        b = 0
        for i in range(n - warmup):
            self.forward(it, warmup + i)
            self.b_pass(it, b)
            b += 1
            if len(self.pending_w) > w_lag:
                self.w_pass(accum)
        while b < n:
            self.b_pass(it, b)
            b += 1
            if len(self.pending_w) > w_lag:
                self.w_pass(accum)
        while self.pending_w:
            self.w_pass(accum)

        pre_update(
            self.spec, it, self.opt, [accum[i] for i in self.chunk_ids],
            comm=self.comm, tag=("zb-clip", it),
        )
        for i in self.chunk_ids:
            self.opt.step(self.chunks[i], accum[i], self.opt_states[i])

        losses = all_gather(
            self.comm, sum(self.local_losses.values()), tag=("zb-loss", it)
        )
        self.local_losses.clear()
        return sum(losses) / n


def _worker(comm: Communicator, spec: TrainSpec, variant: str) -> TrainResult:
    w = _ZBStage(comm, spec)
    losses = [w.run_iteration(it, variant) for it in range(spec.iters)]
    return TrainResult(
        losses=losses,
        chunks=[w.chunks[i] for i in w.chunk_ids],
        extra={
            "rank": w.rank,
            "peak_pending_w": w.peak_pending_w,
            "peak_inflight": w.peak_inflight,
        },
    )


def train_pipeline_zb(
    spec: TrainSpec,
    world_size: int,
    variant: str = "zb1",
    fabric: Optional[Fabric] = None,
) -> TrainResult:
    """Run a zero-bubble pipeline (``variant`` in {"zb1", "zb2"})."""
    stage_chunk_range(spec.cfg.n_layers, world_size, 0)
    results = run_workers(
        world_size, lambda comm: _worker(comm, spec, variant), fabric=fabric
    )
    chunks: List[ParamStruct] = []
    for r in results:
        chunks.extend(r.chunks)
    return TrainResult(
        losses=results[0].losses,
        chunks=chunks,
        extra={
            "peak_pending_w": {r.extra["rank"]: r.extra["peak_pending_w"] for r in results},
            "peak_inflight": {r.extra["rank"]: r.extra["peak_inflight"] for r in results},
        },
    )
