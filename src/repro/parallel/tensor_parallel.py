"""Tensor parallelism (Megatron-style), the intra-layer baseline.

The paper's related-work discussion contrasts WeiPipe with TP: splitting
the matrix products *inside* each layer across workers costs "frequent
and fine-grained collective communication" — two all-reduces of a full
``G*S*H`` activation per layer in the forward pass and two more in the
backward, every microbatch.  This module implements that baseline on
the functional runtime so the trade-off is measurable.

Partitioning (classic Megatron):

* ``Wq/Wk/Wv`` column-split by heads — each worker computes its
  ``n_heads / P`` heads locally;
* ``Wo`` row-split — partial outputs summed with an **all-reduce**;
* ``W_gate/W_up`` column-split by FFN width, ``W_down`` row-split —
  second forward all-reduce;
* norms, embedding and LM head replicated (all workers compute them
  identically on identical data).

Every worker sees *every* microbatch (pure TP, no data parallelism), so
split parameters accumulate complete gradients locally and replicated
parameters compute identical gradients everywhere — no gradient
synchronisation step is needed at all; the price has already been paid
inside the layers.

Numerical contract: identical to the serial baseline; validated by
``tests/parallel/test_tensor_parallel.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.attention import (
    attention_bwd,
    attention_fwd,
    flash_attention_bwd,
    flash_attention_fwd,
)
from ..nn.layer import _from_heads, _to_heads
from ..nn.model import ModelConfig
from ..nn.params import ParamStruct
from ..nn.rope import rope_apply, rope_apply_bwd
from ..runtime import Communicator, Fabric, all_reduce, run_workers
from .common import TrainResult, TrainSpec, microbatch, pre_update, quantize_grads

__all__ = ["train_tensor_parallel", "split_layer_weights", "merge_layer_grads"]


def _col_slice(w: np.ndarray, rank: int, world: int) -> np.ndarray:
    """Columns ``[rank*cols/P, (rank+1)*cols/P)`` of a (in, out) matrix."""
    cols = w.shape[1]
    if cols % world != 0:
        raise ValueError("output width not divisible by TP world size")
    per = cols // world
    return w[:, rank * per : (rank + 1) * per].copy()


def _row_slice(w: np.ndarray, rank: int, world: int) -> np.ndarray:
    rows = w.shape[0]
    if rows % world != 0:
        raise ValueError("input width not divisible by TP world size")
    per = rows // world
    return w[rank * per : (rank + 1) * per, :].copy()


#: how each layer parameter is partitioned across TP ranks.
_PARTITION = {
    "attn_norm": "replicated",
    "wq": "column",
    "wk": "column",
    "wv": "column",
    "wo": "row",
    "ffn_norm": "replicated",
    "w_gate": "column",
    "w_up": "column",
    "w_down": "row",
    "embed": "replicated",
    "final_norm": "replicated",
    "head": "replicated",
}


def split_layer_weights(w: ParamStruct, rank: int, world: int) -> ParamStruct:
    """This rank's shard of one chunk's weights."""
    out: Dict[str, np.ndarray] = {}
    for name, arr in w.items():
        kind = _PARTITION[name]
        if kind == "replicated":
            out[name] = arr.copy()
        elif kind == "column":
            out[name] = _col_slice(arr, rank, world)
        else:
            out[name] = _row_slice(arr, rank, world)
    return ParamStruct(out)


def merge_layer_grads(
    comm: Communicator, full_template: ParamStruct, shard: ParamStruct, tag: Tuple
) -> ParamStruct:
    """Reassemble a full chunk from per-rank shards (for result export)."""
    from ..runtime import all_gather

    gathered = all_gather(comm, dict(shard.items()), tag=tag)
    out = full_template.zeros_like()
    world = comm.world_size
    for name, arr in full_template.items():
        kind = _PARTITION[name]
        if kind == "replicated":
            out[name] = gathered[comm.rank][name].copy()
        elif kind == "column":
            out[name] = np.concatenate([g[name] for g in gathered], axis=1)
        else:
            out[name] = np.concatenate([g[name] for g in gathered], axis=0)
    return out


class _TPWorker:
    def __init__(self, comm: Communicator, spec: TrainSpec):
        cfg = spec.cfg
        if cfg.n_heads % comm.world_size != 0:
            raise ValueError("n_heads must be divisible by the TP world size")
        if cfg.ffn % comm.world_size != 0:
            raise ValueError("ffn width must be divisible by the TP world size")
        self.comm = comm
        self.spec = spec
        self.cfg = cfg
        self.rank = comm.rank
        self.world = comm.world_size
        self.local_heads = cfg.n_heads // self.world
        self.cos, self.sin = spec.rope()
        full = spec.init_chunks()
        self.templates = [c.zeros_like() for c in full]
        self.shards = [
            split_layer_weights(c, self.rank, self.world) for c in full
        ]
        self.opt = spec.make_optimizer()
        self.opt_states = [self.opt.init_state(s) for s in self.shards]
        self.q_act = spec.precision.q_act
        self.q_bgrad = spec.precision.q_act_grad
        self.act_wire = spec.precision.act_bytes
        self.scale = 1.0 / spec.n_microbatches

    # -- one layer ---------------------------------------------------------------

    def _layer_fwd(self, idx: int, w: ParamStruct, x: np.ndarray, tag: Tuple):
        """TP forward of one decoder layer; returns (y, cache)."""
        h1, c_norm1 = F.rmsnorm_fwd(x, w["attn_norm"])
        q, c_q = F.linear_fwd(h1, w["wq"])
        k, c_k = F.linear_fwd(h1, w["wk"])
        v, c_v = F.linear_fwd(h1, w["wv"])
        qh = rope_apply(_to_heads(q, self.local_heads), self.cos, self.sin)
        kh = rope_apply(_to_heads(k, self.local_heads), self.cos, self.sin)
        vh = _to_heads(v, self.local_heads)
        if self.cfg.flash_attention:
            attn, c_attn = flash_attention_fwd(qh, kh, vh, self.cfg.flash_block)
        else:
            attn, c_attn = attention_fwd(qh, kh, vh)
        attn_flat = _from_heads(attn)
        o_partial, c_o = F.linear_fwd(attn_flat, w["wo"])
        o = self._reduce(o_partial, tag + ("o",))
        x2 = x + o

        h2, c_norm2 = F.rmsnorm_fwd(x2, w["ffn_norm"])
        gate, c_gate = F.linear_fwd(h2, w["w_gate"])
        up, c_up = F.linear_fwd(h2, w["w_up"])
        act, c_act = F.silu_fwd(gate)
        f = act * up
        d_partial, c_down = F.linear_fwd(f, w["w_down"])
        d = self._reduce(d_partial, tag + ("d",))
        y = x2 + d
        cache = (
            c_norm1, c_q, c_k, c_v, c_attn, c_o,
            c_norm2, c_gate, c_up, c_act, up, act, c_down,
        )
        return y, cache

    def _layer_bwd(self, idx: int, w: ParamStruct, dy: np.ndarray, cache, tag: Tuple):
        (
            c_norm1, c_q, c_k, c_v, c_attn, c_o,
            c_norm2, c_gate, c_up, c_act, up, act, c_down,
        ) = cache
        grads: Dict[str, np.ndarray] = {}

        # FFN: down is row-parallel (bwd local), gate/up column-parallel
        # (their input grads are partial sums -> all-reduce).
        df = F.linear_bwd_input(dy, w["w_down"])
        grads["w_down"] = F.linear_bwd_weight(c_down[0], dy)
        dact = df * up
        dup = df * act
        dgate = F.silu_bwd(dact, c_act)
        grads["w_gate"] = F.linear_bwd_weight(c_gate[0], dgate)
        grads["w_up"] = F.linear_bwd_weight(c_up[0], dup)
        dh2_partial = F.linear_bwd_input(dgate, w["w_gate"]) + F.linear_bwd_input(
            dup, w["w_up"]
        )
        dh2 = self._reduce(dh2_partial, tag + ("dh2",))
        grads["ffn_norm"] = F.rmsnorm_bwd_weight(dh2, c_norm2)
        dx2 = dy + F.rmsnorm_bwd_input(dh2, c_norm2)

        # attention: o row-parallel (bwd local), qkv column-parallel.
        dattn_flat = F.linear_bwd_input(dx2, w["wo"])
        grads["wo"] = F.linear_bwd_weight(c_o[0], dx2)
        dattn = _to_heads(dattn_flat, self.local_heads)
        if self.cfg.flash_attention:
            dqh, dkh, dvh = flash_attention_bwd(dattn, c_attn)
        else:
            dqh, dkh, dvh = attention_bwd(dattn, c_attn)
        dq = _from_heads(rope_apply_bwd(dqh, self.cos, self.sin))
        dk = _from_heads(rope_apply_bwd(dkh, self.cos, self.sin))
        dv = _from_heads(dvh)
        grads["wq"] = F.linear_bwd_weight(c_q[0], dq)
        grads["wk"] = F.linear_bwd_weight(c_k[0], dk)
        grads["wv"] = F.linear_bwd_weight(c_v[0], dv)
        dh1_partial = (
            F.linear_bwd_input(dq, w["wq"])
            + F.linear_bwd_input(dk, w["wk"])
            + F.linear_bwd_input(dv, w["wv"])
        )
        dh1 = self._reduce(dh1_partial, tag + ("dh1",))
        grads["attn_norm"] = F.rmsnorm_bwd_weight(dh1, c_norm1)
        dx = dx2 + F.rmsnorm_bwd_input(dh1, c_norm1)
        return dx, ParamStruct(grads)

    def _reduce(self, partial: np.ndarray, tag: Tuple) -> np.ndarray:
        """All-reduce a full-size activation (the TP tax)."""
        flat = all_reduce(
            self.comm,
            partial.reshape(-1),
            tag=tag,
            nbytes_per_element=self.act_wire,
        )
        return flat.reshape(partial.shape)

    def _accumulate(self, accum: ParamStruct, grads: Dict[str, np.ndarray]) -> None:
        """Scaled, quantised accumulation of a *subset* of a chunk's
        parameters (layer grads never include the embed/head extras)."""
        q = quantize_grads(ParamStruct(grads), self.spec.precision)
        for name in q.keys():
            accum[name] += self.scale * q[name]

    # -- training -------------------------------------------------------------

    def run(self) -> TrainResult:
        spec, cfg = self.spec, self.cfg
        losses: List[float] = []
        for it in range(spec.iters):
            accum = [s.zeros_like() for s in self.shards]
            total_loss = 0.0
            for mb in range(spec.n_microbatches):
                tokens, targets = microbatch(spec, it, mb)
                x, c_embed = F.embedding_fwd(tokens, self.shards[0]["embed"])
                caches = []
                for i in range(cfg.n_layers):
                    x, cache = self._layer_fwd(
                        i, self.shards[i], x, ("tp-f", it, mb, i)
                    )
                    # quantise at the same chunk boundaries as every
                    # other strategy (serial quantises each chunk output)
                    if i < cfg.n_layers - 1:
                        x = self.q_act(x)
                    caches.append(cache)
                h, c_fnorm = F.rmsnorm_fwd(x, self.shards[-1]["final_norm"])
                logits, c_head = F.linear_fwd(h, self.shards[-1]["head"])
                logits = self.q_act(logits)
                loss, c_loss = F.cross_entropy_fwd(logits, targets)
                total_loss += loss

                dy = F.cross_entropy_bwd(1.0, c_loss)
                dh = F.linear_bwd_input(dy, self.shards[-1]["head"])
                self._accumulate(
                    accum[-1],
                    {
                        "head": F.linear_bwd_weight(c_head[0], dy),
                        "final_norm": F.rmsnorm_bwd_weight(dh, c_fnorm),
                    },
                )
                dy = self.q_bgrad(F.rmsnorm_bwd_input(dh, c_fnorm))

                for i in range(cfg.n_layers - 1, -1, -1):
                    dy, g = self._layer_bwd(
                        i, self.shards[i], dy, caches[i], ("tp-b", it, mb, i)
                    )
                    dy = self.q_bgrad(dy)
                    self._accumulate(accum[i], dict(g.items()))
                self._accumulate(
                    accum[0], {"embed": F.embedding_bwd(dy, c_embed)}
                )

            # replicated tensors exist on every rank: count their squared
            # norm on rank 0 only, split tensors everywhere they live.
            count = (
                lambda name: _PARTITION[name] != "replicated" or self.rank == 0
            )
            pre_update(
                spec, it, self.opt, accum,
                comm=self.comm, count=count, tag=("tp-clip", it),
            )
            for i, s in enumerate(self.shards):
                self.opt.step(s, accum[i], self.opt_states[i])
            losses.append(total_loss / spec.n_microbatches)

        final = [
            merge_layer_grads(self.comm, self.templates[i], self.shards[i], ("tp-final", i))
            for i in range(cfg.n_layers)
        ]
        return TrainResult(losses=losses, chunks=final)


def train_tensor_parallel(
    spec: TrainSpec, world_size: int, fabric: Optional[Fabric] = None
) -> TrainResult:
    """Train with pure tensor parallelism across ``world_size`` workers."""
    if spec.recompute:
        raise ValueError(
            "the TP baseline does not implement recomputation "
            "(full caches are kept; combine with pipeline stages for that)"
        )
    results = run_workers(
        world_size, lambda comm: _TPWorker(comm, spec).run(), fabric=fabric
    )
    return results[0]
