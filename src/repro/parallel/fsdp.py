"""Fully Sharded Data Parallelism (ZeRO-3), the paper's FSDP baseline.

Every worker owns a ``1/P`` flat shard of each layer chunk (weights and
optimizer state).  For each microbatch, each layer's full weights are
materialised with a ring **all-gather** just before use — once in the
forward pass and again in the backward pass — and gradients leave via a
ring **reduce-scatter**, after which the full weights are freed.  Per
iteration each worker therefore moves ``3 (P-1)/P`` of the model per
microbatch group, the collective-communication load the paper contrasts
with WeiPipe's weight ring.

Data is split like DP: worker ``r`` runs microbatches ``{r, r+P, ...}``.

:func:`fsdp_step` exposes one iteration as a pure function of the
*canonical* (unsharded) ``(weights, optimizer state)``: shard on entry,
run the normal FSDP schedule, gather back on exit.  Sharding round-trips
through float64 flats, so chaining steps is bit-identical to a
persistent-shard run — the property elastic ring-shrink recovery
(:mod:`repro.parallel.elastic`) relies on when it resumes the same
problem on fewer workers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.checkpoint import CheckpointedChunk
from ..nn import functional as F
from ..nn.params import ParamStruct
from ..optim.optimizer import Optimizer, map_opt_state
from ..runtime import (
    Communicator,
    Fabric,
    all_gather,
    all_reduce,
    reduce_scatter,
    run_workers,
    split_chunks,
)
from .common import TrainResult, TrainSpec, microbatch, pre_update, quantize_grads

__all__ = ["train_fsdp", "fsdp_step"]


def _gather_chunk(
    comm: Communicator,
    shard: np.ndarray,
    template: ParamStruct,
    tag: tuple,
    wire_bytes: int,
) -> ParamStruct:
    """All-gather a chunk's shards and unpack to named weights."""
    shards = all_gather(
        comm, shard, tag=tag, nbytes=int(shard.size * wire_bytes)
    )
    return template.unpack_from(np.concatenate(shards))


def _shard_opt_state(state: Dict, p: int, rank: int) -> Dict:
    """Slice a canonical optimizer state to this rank's flat shard.

    Tensor leaves become ``ParamStruct({"flat": shard})`` in float64 —
    the exact layout ``opt.init_state`` produces for a fresh FSDP run —
    while scalar leaves (step counters) pass through.
    """
    return map_opt_state(
        state,
        lambda ps: ParamStruct(
            {"flat": split_chunks(ps.pack(dtype=np.float64), p)[rank].copy()}
        ),
    )


def _gather_opt_state(comm: Communicator, shard_state, template, tag: tuple):
    """Reassemble a canonical optimizer state from per-rank flat shards.

    ``template`` supplies names/shapes (e.g. a fresh
    ``opt.init_state(chunk)``); values are gathered at float64 so a
    subsequent :func:`_shard_opt_state` reproduces the shards exactly.
    Scalar leaves are taken from the shard state (identical on every
    rank — each rank stepped the same number of times).
    """
    if isinstance(template, ParamStruct):
        flats = all_gather(comm, shard_state["flat"], tag=tag)
        return template.astype(np.float64).unpack_from(np.concatenate(flats))
    if isinstance(template, dict):
        return {
            k: _gather_opt_state(comm, shard_state[k], template[k], tag + (k,))
            for k in template
        }
    return shard_state


def _fsdp_iteration(
    comm: Communicator,
    spec: TrainSpec,
    it: int,
    shards: List[np.ndarray],
    templates: List[ParamStruct],
    opt: Optimizer,
    states: List[Dict],
    ck: CheckpointedChunk,
    cos: np.ndarray,
    sin: np.ndarray,
) -> float:
    """One FSDP iteration over persistent flat shards (mutated in place)."""
    cfg = spec.cfg
    rank, p = comm.rank, comm.world_size
    q_act = spec.precision.q_act
    q_bgrad = spec.precision.q_act_grad
    w_wire = spec.precision.weight_bytes
    d_wire = spec.precision.weight_grad_bytes
    scale = 1.0 / spec.n_microbatches

    grad_shards = [np.zeros_like(s) for s in shards]
    local_loss = 0.0
    for k, mb in enumerate(range(rank, spec.n_microbatches, p)):
        # collective tags use the local ordinal k (identical on every
        # rank), not the global microbatch id (which differs per rank).
        tokens, targets = microbatch(spec, it, mb)
        x = tokens
        fwd_states = []
        for i in range(cfg.n_layers):
            w = _gather_chunk(
                comm, shards[i], templates[i], ("fsdp-agf", it, k, i), w_wire
            )
            x, st = ck.fwd(i, w, x, cos, sin)
            x = q_act(x)
            fwd_states.append(st)
            del w  # freed immediately, as FSDP does

        loss, c_loss = F.cross_entropy_fwd(x, targets)
        local_loss += loss
        dy = F.cross_entropy_bwd(1.0, c_loss)

        for i in range(cfg.n_layers - 1, -1, -1):
            w = _gather_chunk(
                comm, shards[i], templates[i], ("fsdp-agb", it, k, i), w_wire
            )
            dy, g = ck.bwd(i, w, dy, fwd_states[i])
            del w
            if dy is not None:
                dy = q_bgrad(dy)
            flat_g = quantize_grads(g, spec.precision).pack(dtype=np.float64)
            mine = reduce_scatter(
                comm,
                flat_g,
                tag=("fsdp-rs", it, k, i),
                nbytes_per_element=d_wire,
            )
            grad_shards[i] += scale * mine

    loss_sum = all_reduce(comm, np.array([local_loss]), tag=("fsdp-loss", it))[0]
    grad_structs = [ParamStruct({"flat": g}) for g in grad_shards]
    pre_update(spec, it, opt, grad_structs, comm=comm, tag=("fsdp-clip", it))
    for i, s in enumerate(shards):
        ps = ParamStruct({"flat": s})
        opt.step(ps, grad_structs[i], states[i])
        shards[i] = ps["flat"]
    return float(loss_sum) / spec.n_microbatches


def fsdp_step(
    comm: Communicator,
    spec: TrainSpec,
    iteration: int,
    chunks: List[ParamStruct],
    opt_states: List[Dict],
) -> Tuple[float, List[ParamStruct], List[Dict]]:
    """One FSDP iteration from canonical (unsharded) state.

    Shards ``chunks``/``opt_states`` exactly as a fresh run would, runs
    the standard schedule, then gathers everything back.  Returned
    tensors are float64 so the shard → gather → shard round trip is
    lossless; every rank returns the identical full state.
    """
    cfg = spec.cfg
    rank, p = comm.rank, comm.world_size
    cos, sin = spec.rope()
    ck = CheckpointedChunk(cfg, recompute=spec.recompute)
    templates = [c.zeros_like() for c in chunks]
    shards = [
        split_chunks(c.pack(dtype=np.float64), p)[rank].copy() for c in chunks
    ]
    opt = spec.make_optimizer()
    states = [_shard_opt_state(s, p, rank) for s in opt_states]

    loss = _fsdp_iteration(
        comm, spec, iteration, shards, templates, opt, states, cos=cos, sin=sin, ck=ck
    )

    w_wire = spec.precision.weight_bytes
    new_chunks = [
        templates[i]
        .astype(np.float64)
        .unpack_from(
            np.concatenate(
                all_gather(
                    comm,
                    shards[i],
                    tag=("fsdp-state-w", iteration, i),
                    nbytes=int(shards[i].size * w_wire),
                )
            )
        )
        for i in range(cfg.n_layers)
    ]
    state_templates = [opt.init_state(templates[i]) for i in range(cfg.n_layers)]
    new_states = [
        _gather_opt_state(
            comm, states[i], state_templates[i], ("fsdp-state-opt", iteration, i)
        )
        for i in range(cfg.n_layers)
    ]
    return loss, new_chunks, new_states


def _worker(comm: Communicator, spec: TrainSpec) -> TrainResult:
    cfg = spec.cfg
    rank, p = comm.rank, comm.world_size
    cos, sin = spec.rope()
    ck = CheckpointedChunk(cfg, recompute=spec.recompute)
    w_wire = spec.precision.weight_bytes

    # shard the deterministically initialised model; drop the full copy.
    full = spec.init_chunks()
    templates = [c.zeros_like() for c in full]
    shards: List[np.ndarray] = [
        split_chunks(c.pack(dtype=np.float64), p)[rank].copy() for c in full
    ]
    del full

    opt = spec.make_optimizer()
    if spec.initial_opt_state is not None:
        if len(spec.initial_opt_state) != cfg.n_layers:
            raise ValueError(
                f"initial_opt_state has {len(spec.initial_opt_state)} "
                f"entries, expected {cfg.n_layers}"
            )
        states = [_shard_opt_state(s, p, rank) for s in spec.initial_opt_state]
    else:
        states = [opt.init_state(ParamStruct({"flat": s})) for s in shards]

    losses: List[float] = []
    for it in range(spec.iters):
        losses.append(
            _fsdp_iteration(
                comm, spec, it, shards, templates, opt, states, cos=cos, sin=sin, ck=ck
            )
        )

    # reassemble full weights once, for result comparison.
    final = [
        _gather_chunk(comm, shards[i], templates[i], ("fsdp-final", i), w_wire)
        for i in range(cfg.n_layers)
    ]
    return TrainResult(losses=losses, chunks=final)


def train_fsdp(
    spec: TrainSpec, world_size: int, fabric: Optional[Fabric] = None
) -> TrainResult:
    """Run ZeRO-3 FSDP on ``world_size`` simulated workers."""
    if spec.n_microbatches % world_size != 0:
        raise ValueError("n_microbatches must be divisible by world_size")
    results = run_workers(
        world_size, lambda comm: _worker(comm, spec), fabric=fabric
    )
    return results[0]
