"""Fully Sharded Data Parallelism (ZeRO-3), the paper's FSDP baseline.

Every worker owns a ``1/P`` flat shard of each layer chunk (weights and
optimizer state).  For each microbatch, each layer's full weights are
materialised with a ring **all-gather** just before use — once in the
forward pass and again in the backward pass — and gradients leave via a
ring **reduce-scatter**, after which the full weights are freed.  Per
iteration each worker therefore moves ``3 (P-1)/P`` of the model per
microbatch group, the collective-communication load the paper contrasts
with WeiPipe's weight ring.

Data is split like DP: worker ``r`` runs microbatches ``{r, r+P, ...}``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn.checkpoint import CheckpointedChunk
from ..nn import functional as F
from ..nn.params import ParamStruct
from ..runtime import (
    Communicator,
    Fabric,
    all_gather,
    all_reduce,
    reduce_scatter,
    run_workers,
    split_chunks,
)
from .common import TrainResult, TrainSpec, microbatch, pre_update, quantize_grads

__all__ = ["train_fsdp"]


def _gather_chunk(
    comm: Communicator,
    shard: np.ndarray,
    template: ParamStruct,
    tag: tuple,
    wire_bytes: int,
) -> ParamStruct:
    """All-gather a chunk's shards and unpack to named weights."""
    shards = all_gather(
        comm, shard, tag=tag, nbytes=int(shard.size * wire_bytes)
    )
    return template.unpack_from(np.concatenate(shards))


def _worker(comm: Communicator, spec: TrainSpec) -> TrainResult:
    cfg = spec.cfg
    rank, p = comm.rank, comm.world_size
    cos, sin = spec.rope()
    ck = CheckpointedChunk(cfg, recompute=spec.recompute)
    q_act = spec.precision.q_act
    q_bgrad = spec.precision.q_act_grad
    w_wire = spec.precision.weight_bytes
    d_wire = spec.precision.weight_grad_bytes
    scale = 1.0 / spec.n_microbatches

    # shard the deterministically initialised model; drop the full copy.
    full = spec.init_chunks()
    templates = [c.zeros_like() for c in full]
    shards: List[np.ndarray] = [
        split_chunks(c.pack(dtype=np.float64), p)[rank].copy() for c in full
    ]
    del full

    opt = spec.make_optimizer()
    states = [opt.init_state(ParamStruct({"flat": s})) for s in shards]

    losses: List[float] = []
    for it in range(spec.iters):
        grad_shards = [np.zeros_like(s) for s in shards]
        local_loss = 0.0
        for k, mb in enumerate(range(rank, spec.n_microbatches, p)):
            # collective tags use the local ordinal k (identical on every
            # rank), not the global microbatch id (which differs per rank).
            tokens, targets = microbatch(spec, it, mb)
            x = tokens
            fwd_states = []
            for i in range(cfg.n_layers):
                w = _gather_chunk(
                    comm, shards[i], templates[i], ("fsdp-agf", it, k, i), w_wire
                )
                x, st = ck.fwd(i, w, x, cos, sin)
                x = q_act(x)
                fwd_states.append(st)
                del w  # freed immediately, as FSDP does

            loss, c_loss = F.cross_entropy_fwd(x, targets)
            local_loss += loss
            dy = F.cross_entropy_bwd(1.0, c_loss)

            for i in range(cfg.n_layers - 1, -1, -1):
                w = _gather_chunk(
                    comm, shards[i], templates[i], ("fsdp-agb", it, k, i), w_wire
                )
                dy, g = ck.bwd(i, w, dy, fwd_states[i])
                del w
                if dy is not None:
                    dy = q_bgrad(dy)
                flat_g = quantize_grads(g, spec.precision).pack(dtype=np.float64)
                mine = reduce_scatter(
                    comm,
                    flat_g,
                    tag=("fsdp-rs", it, k, i),
                    nbytes_per_element=d_wire,
                )
                grad_shards[i] += scale * mine

        loss_sum = all_reduce(comm, np.array([local_loss]), tag=("fsdp-loss", it))[0]
        grad_structs = [ParamStruct({"flat": g}) for g in grad_shards]
        pre_update(spec, it, opt, grad_structs, comm=comm, tag=("fsdp-clip", it))
        for i, s in enumerate(shards):
            ps = ParamStruct({"flat": s})
            opt.step(ps, grad_structs[i], states[i])
            shards[i] = ps["flat"]
        losses.append(loss_sum / spec.n_microbatches)

    # reassemble full weights once, for result comparison.
    final = [
        _gather_chunk(comm, shards[i], templates[i], ("fsdp-final", i), w_wire)
        for i in range(cfg.n_layers)
    ]
    return TrainResult(losses=losses, chunks=final)


def train_fsdp(
    spec: TrainSpec, world_size: int, fabric: Optional[Fabric] = None
) -> TrainResult:
    """Run ZeRO-3 FSDP on ``world_size`` simulated workers."""
    if spec.n_microbatches % world_size != 0:
        raise ValueError("n_microbatches must be divisible by world_size")
    results = run_workers(
        world_size, lambda comm: _worker(comm, spec), fabric=fabric
    )
    return results[0]
