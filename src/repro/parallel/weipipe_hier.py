"""Topology-aware hierarchical WeiPipe: a two-level weight ring.

The flat WeiPipe ring ships ``2 W + 1 D`` chunks over *every* hop every
turn, so a ring hop that crosses a slow inter-group link (server
boundary) pays the full weight volume ``T`` times per iteration even
though the weights never change mid-iteration — the same ``W`` slot
crosses the same boundary ``T/P`` times carrying identical bytes.
TawPipe's observation (PAPERS.md) is that weights only need to cross
each boundary *once*; after that the fast intra-group links can share
them.

This module realises that on the functional runtime while staying
**bit-exact** with the flat ring:

* The ring order, schedule, tags and the circulating gradient
  accumulator ``D`` are untouched.  ``D`` is a running sum whose value
  depends on the order contributions are added, so it must keep visiting
  every rank in flat-ring order — re-routing it gateway-to-gateway would
  change accumulation order and break bit-exactness.  ``D`` is also the
  *small* flow (one chunk per turn vs two), so the win lives in ``W``.
* Weight slots are constant within an iteration (owners step them only
  in the update pass), so on a ring hop that crosses a group boundary
  the full payload is sent only while the tag's turn is within the first
  ring revolution (``turn <= P`` — each of the ``P`` slots crosses each
  boundary exactly once per flow).  Every later crossing sends a
  24-byte *weight reference* instead.
* The **gateway** — the lowest rank of each group, the rank through
  which the ring enters the group — keeps a per-iteration cache of the
  full slots it received during the first revolution and resolves
  references against it.  Because the in-process fabric circulates slot
  objects (arena-backed :class:`~repro.nn.params.ParamStruct` views),
  the cached slot *is* the object the flat ring would have delivered:
  results are not just bit-equal but object-identical.
* Inside a group nothing changes: intra-group hops carry the same full
  payloads as the flat ring, which is the "share weights on fast
  intra-group links" half of the two-level design and is what the
  intra-bytes-conserved test pins.

Cross-group volume per boundary per iteration drops from
``T * (2 W + 1 D)`` to ``P * 2 W + T * (1 D + 2 ref)`` — for the
paper-style ``T ~= 2 N >> P`` that is nearly the 3x -> 1x chunk
reduction per turn that makes a slow boundary link stop pacing the
ring.  Degenerate layouts reduce exactly: one group (``1xP``) has no
boundaries and is the flat ring verbatim; all-singleton groups
(``Px1``, built with ``allow_singleton=True``) make every rank a
gateway and every hop a cached boundary — still bit-exact, with the
whole model cached everywhere.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple, Union

from ..core.schedule import bwd_slot_held, fwd_slot_held
from ..core.weipipe import SlotWeights, _WeiPipeWorker, slot_chunk_ids
from ..nn.params import ParamStruct
from ..parallel.common import TrainResult, TrainSpec
from ..runtime import (
    WREF_NBYTES,
    Communicator,
    Fabric,
    Topology,
    all_gather,
    run_workers,
)

__all__ = [
    "train_weipipe_hier",
    "weipipe_hier_step",
    "default_groups",
    "WREF_MARK",
]

#: first element of a weight-reference payload; the tuple is
#: ``(WREF_MARK, flow, slot_id)`` and is ledgered at WREF_NBYTES.
WREF_MARK = "hier-wref"


def default_groups(world_size: int) -> str:
    """The default ``GxR`` layout: two equal groups when the world splits
    evenly into non-singleton halves, otherwise one flat group."""
    if world_size >= 4 and world_size % 2 == 0:
        return f"2x{world_size // 2}"
    return f"1x{world_size}"


class _WeiPipeHierWorker(_WeiPipeWorker):
    """A flat-ring worker whose weight-flow transport is boundary-aware.

    Only the two transport hooks differ from the base class; schedule,
    compute, D handling and the update pass are inherited unchanged —
    that inheritance *is* the bit-exactness argument.
    """

    #: the gateway cache hands out received slot *objects* for the rest
    #: of the iteration, so replaced slots must never be recycled even
    #: on a wire-copies transport.
    _retire_slots = False

    def __init__(self, comm: Communicator, spec: TrainSpec, mode: str,
                 topology: Topology, overlap: bool = True):
        super().__init__(comm, spec, mode, overlap=overlap)
        self.topo = topology
        # boundary structure is static: precompute whether this rank's
        # ring sends (to right) and receives (from left) cross groups.
        self._right_cross = topology.link_class(self.rank, comm.right) == "inter"
        self._left_cross = topology.link_class(comm.left, self.rank) == "inter"
        # per-iteration gateway cache: flow -> slot id -> slot dict.
        self._wcache: Dict[str, Dict[int, SlotWeights]] = {"F": {}, "B": {}}
        self._wcache_it: Optional[int] = None
        self.inter_full_sends = 0
        self.inter_ref_sends = 0
        m = comm.fabric.metrics
        self._m_full = m.counter("weipipe_hier_full_crossings_total",
                                 rank=self.rank)
        self._m_ref = m.counter("weipipe_hier_ref_crossings_total",
                                rank=self.rank)

    def _slot_id_at(self, flow: str, rank: int, turn: int) -> int:
        """Which slot ``rank`` holds on flow ``flow`` during ``turn`` —
        the schedule's placement law, shared with the ``_check_slot``
        asserts so a cache-resolution bug trips the same invariant."""
        if flow == "F":
            return fwd_slot_held(rank, turn, self.world)
        return bwd_slot_held(rank, turn, self.world)

    def _send_wslot(self, flow: str, slot: SlotWeights, it: int, turn: int) -> None:
        if self._right_cross:
            if turn > self.world:
                # this slot already crossed this boundary during the
                # first revolution of iteration `it`: ship a reference.
                sid = self._slot_id_at(flow, self.comm.right, turn)
                self.comm.send((WREF_MARK, flow, sid), self.comm.right,
                               (flow, it, turn), nbytes=WREF_NBYTES)
                self.inter_ref_sends += 1
                self._m_ref.add(1)
                return
            self.inter_full_sends += 1
            self._m_full.add(1)
        super()._send_wslot(flow, slot, it, turn)

    def invalidate_gateway_cache(self) -> None:
        """Drop every cached full slot; references can no longer resolve.

        Called on iteration rollover and, by the elastic layer, on every
        ring-membership change (shrink or rejoin): a slot cached under
        one ring layout must never satisfy a reference issued under
        another, where the placement law maps slot ids differently.
        """
        self._wcache = {"F": {}, "B": {}}
        self._wcache_it = None

    def _resolve_wslot(self, flow: str, payload, it: int, turn: int) -> SlotWeights:
        if self._wcache_it != it:
            # slots are stepped (and forward copies re-injected) between
            # iterations, so references never outlive their iteration.
            self.invalidate_gateway_cache()
            self._wcache_it = it
        if (isinstance(payload, tuple) and len(payload) == 3
                and payload[0] == WREF_MARK):
            mark_flow, sid = payload[1], payload[2]
            expected = self._slot_id_at(flow, self.rank, turn)
            if mark_flow != flow or sid != expected:
                raise AssertionError(
                    f"hier ring: reference names {mark_flow} slot {sid} but "
                    f"rank {self.rank} expects {flow} slot {expected} at "
                    f"turn {turn}"
                )
            try:
                return self._wcache[flow][sid]
            except KeyError:
                raise AssertionError(
                    f"hier ring: {flow} slot {sid} referenced before its "
                    f"first-revolution crossing reached rank {self.rank}"
                ) from None
        if self._left_cross:
            sid = self._slot_id_at(flow, self.rank, turn)
            self._wcache[flow][sid] = payload
        return payload


def weipipe_hier_step(
    comm: Communicator,
    spec: TrainSpec,
    iteration: int,
    chunks: List[ParamStruct],
    opt_states: List[Dict],
    mode: str = "interleave",
    topology: Optional[Topology] = None,
    overlap: bool = True,
) -> Tuple[float, List[ParamStruct], List[Dict]]:
    """One hierarchical-ring iteration from explicit replicated state.

    The step-boundary entry point elastic recovery uses
    (:mod:`repro.parallel.elastic`), mirroring
    :func:`repro.core.weipipe.weipipe_step` with the boundary-aware
    transport.  ``topology`` defaults to :func:`default_groups` over the
    *current* compute world, so a shrunken or re-grown ring gets a group
    layout that matches its actual size.  A fresh worker is built per
    step, which makes the gateway weight caches trivially empty at every
    membership change: a reference issued under one ring layout can
    never resolve against a slot cached under another (the
    cache-invalidation half of the rejoin protocol —
    :meth:`_WeiPipeHierWorker.invalidate_gateway_cache` is the explicit
    form for persistent workers).
    """
    if topology is None:
        topology = Topology.grid(comm.world_size, default_groups(comm.world_size))
    elif topology.world_size != comm.world_size:
        raise ValueError(
            f"topology is for world_size {topology.world_size}, "
            f"step runs on {comm.world_size}"
        )
    step_spec = replace(
        spec,
        iters=1,
        start_iteration=spec.start_iteration + iteration,
        initial_chunks=chunks,
        initial_opt_state=opt_states,
    )
    w = _WeiPipeHierWorker(comm, step_spec, mode, topology, overlap=overlap)
    loss = w.run_iteration(0)
    if w.pending_w:  # pragma: no cover - invariant
        raise AssertionError("deferred W passes left undone at step boundary")
    owned = {i: (w.bwd_slot[i], w.opt_states[i]) for i in w.opt_states}
    gathered = all_gather(comm, owned, tag=("wp-state", iteration))
    merged: Dict[int, tuple] = {}
    for d in gathered:
        merged.update(d)
    new_chunks = [merged[i][0] for i in range(spec.cfg.n_layers)]
    new_states = [merged[i][1] for i in range(spec.cfg.n_layers)]
    w.release_buffers()
    return loss, new_chunks, new_states


def _resolve_topology(
    world_size: int,
    topology: Optional[Topology],
    groups: Optional[str],
    fabric: Optional[Fabric],
) -> Topology:
    if topology is not None and groups is not None:
        raise ValueError("pass either topology or groups, not both")
    if topology is None:
        if groups is not None:
            topology = Topology.grid(world_size, groups)
        elif fabric is not None and getattr(fabric, "topology", None) is not None:
            topology = fabric.topology
        else:
            topology = Topology.grid(world_size, default_groups(world_size))
    if topology.world_size != world_size:
        raise ValueError(
            f"topology is for world_size {topology.world_size}, "
            f"training uses {world_size}"
        )
    return topology


def _worker(comm: Communicator, spec: TrainSpec, mode: str,
            topology: Topology, overlap: bool) -> TrainResult:
    w = _WeiPipeHierWorker(comm, spec, mode, topology, overlap=overlap)
    losses = [w.run_iteration(it) for it in range(spec.iters)]
    owned = {i: w.bwd_slot[i] for i in w.opt_states}
    gathered = all_gather(comm, owned, tag=("wp-final",))
    merged = {}
    for d in gathered:
        merged.update(d)
    chunks = [merged[i] for i in range(spec.cfg.n_layers)]
    if w.pending_w:  # pragma: no cover - invariant
        raise AssertionError("deferred W passes left undone at exit")
    return TrainResult(
        losses=losses,
        chunks=chunks,
        extra={
            "rank": w.rank,
            "peak_inflight": w.peak_inflight,
            "wire_wait_s": w._h_wire.total,
            "compute_s": w._h_compute.total,
            "inter_full_sends": w.inter_full_sends,
            "inter_ref_sends": w.inter_ref_sends,
            "is_gateway": topology.is_gateway(w.rank),
        },
    )


def train_weipipe_hier(
    spec: TrainSpec,
    world_size: int,
    topology: Optional[Topology] = None,
    groups: Optional[str] = None,
    mode: str = "interleave",
    fabric: Optional[Fabric] = None,
    overlap: bool = True,
) -> TrainResult:
    """Train with the two-level (topology-aware) WeiPipe ring.

    The group layout comes from, in order of precedence: an explicit
    ``topology``, a ``groups`` shape string (``"2x2"``), the ``fabric``'s
    own topology, or :func:`default_groups`.  Results are bit-identical
    to :func:`repro.core.weipipe.train_weipipe` with the same ``spec`` /
    ``mode`` / ``overlap`` on any wire — the hierarchy changes what
    crosses slow links, not what is computed (enforced by
    ``tests/integration/test_weipipe_hier.py``).
    """
    slot_chunk_ids(0, world_size, spec.cfg.n_layers)  # validates divisibility
    if spec.n_microbatches % world_size != 0:
        raise ValueError("n_microbatches must be divisible by world_size")
    topo = _resolve_topology(world_size, topology, groups, fabric)
    results = run_workers(
        world_size,
        lambda comm: _worker(comm, spec, mode, topo, overlap),
        fabric=fabric,
    )
    by_rank = {r.extra["rank"]: r.extra for r in results}
    return TrainResult(
        losses=results[0].losses,
        chunks=results[0].chunks,
        extra={
            "groups": [list(g) for g in topo.groups],
            "gateways": list(topo.gateways()),
            "peak_inflight": {r: e["peak_inflight"] for r, e in by_rank.items()},
            "wire_wait_s": {r: e["wire_wait_s"] for r, e in by_rank.items()},
            "compute_s": {r: e["compute_s"] for r, e in by_rank.items()},
            "inter_full_sends": sum(e["inter_full_sends"] for e in by_rank.values()),
            "inter_ref_sends": sum(e["inter_ref_sends"] for e in by_rank.values()),
        },
    )
