"""Activation-passing pipeline parallelism: GPipe and 1F1B.

The classical pipelines the paper compares against.  The model's layer
chunks are split into ``P`` contiguous *stages*; microbatch activations
travel ``stage s -> s+1`` in the forward pass and their gradients travel
back, so the per-hop message size is ``G * S * H`` elements — the volume
that explodes with context length and motivates WeiPipe.

Both schedules compute identical numbers; they differ in *when* each
stage runs which pass, i.e. in bubbles and activation-liveness:

* **GPipe**: all ``N`` forwards, then all ``N`` backwards (peak ``N``
  in-flight activation sets per stage).
* **1F1B** (Dapple/Megatron): ``P - 1 - rank`` warmup forwards, then a
  steady one-forward-one-backward rhythm (peak ``P - rank`` in-flight).

The worker records its peak number of in-flight microbatch states in
``TrainResult.extra["peak_inflight"]`` so tests can verify the memory
claim that distinguishes the schedules.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional

import numpy as np

from ..nn.checkpoint import CheckpointedChunk
from ..nn import functional as F
from ..nn.params import ParamStruct
from ..runtime import Communicator, Fabric, all_gather, run_workers
from .common import TrainResult, TrainSpec, microbatch, pre_update, quantize_grads

__all__ = ["train_pipeline", "stage_chunk_range"]


def stage_chunk_range(n_layers: int, world_size: int, rank: int) -> range:
    """Chunk indices owned by pipeline stage ``rank`` (contiguous split)."""
    if n_layers % world_size != 0:
        raise ValueError("n_layers must be divisible by the number of stages")
    per = n_layers // world_size
    return range(rank * per, (rank + 1) * per)


class _StageWorker:
    """One pipeline stage: forward/backward plumbing shared by schedules."""

    def __init__(self, comm: Communicator, spec: TrainSpec):
        self.comm = comm
        self.spec = spec
        self.cfg = spec.cfg
        self.rank = comm.rank
        self.world = comm.world_size
        self.is_first = self.rank == 0
        self.is_last = self.rank == self.world - 1
        self.chunk_ids = list(
            stage_chunk_range(self.cfg.n_layers, self.world, self.rank)
        )
        all_chunks = spec.init_chunks()
        self.chunks = {i: all_chunks[i] for i in self.chunk_ids}
        self.cos, self.sin = spec.rope()
        self.ck = CheckpointedChunk(self.cfg, recompute=spec.recompute)
        self.opt = spec.make_optimizer()
        self.opt_states = {i: self.opt.init_state(self.chunks[i]) for i in self.chunk_ids}
        self.q_act = spec.precision.q_act
        self.q_bgrad = spec.precision.q_act_grad
        self.act_wire = spec.precision.act_bytes
        self.bgrad_wire = spec.precision.act_grad_bytes
        self.scale = 1.0 / spec.n_microbatches
        # per-microbatch in-flight state: mb -> list of per-chunk fwd states
        self.inflight: Dict[int, list] = {}
        self.loss_caches: Dict[int, tuple] = {}
        self.targets: Dict[int, np.ndarray] = {}
        self.peak_inflight = 0
        self.local_losses: Dict[int, float] = {}
        self.trace = comm.trace

    # -- one microbatch's passes ---------------------------------------------

    def forward(self, it: int, mb: int) -> None:
        if self.is_first:
            tokens, targets = microbatch(self.spec, it, mb)
            x = tokens
        else:
            x = self.comm.recv(self.rank - 1, ("act", it, mb))
            _, targets = microbatch(self.spec, it, mb)
        c0 = perf_counter()
        states = []
        for i in self.chunk_ids:
            x, st = self.ck.fwd(i, self.chunks[i], x, self.cos, self.sin)
            x = self.q_act(x)
            states.append(st)
        self.inflight[mb] = states
        self.peak_inflight = max(self.peak_inflight, len(self.inflight))
        if self.is_last:
            loss, c_loss = F.cross_entropy_fwd(x, targets)
            self.local_losses[mb] = loss
            self.loss_caches[mb] = c_loss
        if self.trace.enabled:
            self.trace.complete("F", "compute", c0, perf_counter() - c0,
                                {"mb": mb, "it": it})
        if not self.is_last:
            self.comm.send(
                x,
                self.rank + 1,
                ("act", it, mb),
                nbytes=int(x.size * self.act_wire),
            )

    def backward(self, it: int, mb: int, accum: Dict[int, ParamStruct]) -> None:
        if self.is_last:
            dy = F.cross_entropy_bwd(1.0, self.loss_caches.pop(mb))
        else:
            dy = self.comm.recv(self.rank + 1, ("bgrad", it, mb))
        c0 = perf_counter()
        states = self.inflight.pop(mb)
        for pos in range(len(self.chunk_ids) - 1, -1, -1):
            i = self.chunk_ids[pos]
            dy, g = self.ck.bwd(i, self.chunks[i], dy, states[pos])
            if dy is not None:
                dy = self.q_bgrad(dy)
            accum[i].add_(quantize_grads(g, self.spec.precision), scale=self.scale)
        if self.trace.enabled:
            self.trace.complete("B", "compute", c0, perf_counter() - c0,
                                {"mb": mb, "it": it})
        if not self.is_first:
            self.comm.send(
                dy,
                self.rank - 1,
                ("bgrad", it, mb),
                nbytes=int(dy.size * self.bgrad_wire),
            )

    # -- iteration ------------------------------------------------------------

    def run_iteration(self, it: int, schedule: str) -> float:
        if not self.trace.enabled:
            return self._run_iteration(it, schedule)
        t0 = perf_counter()
        loss = self._run_iteration(it, schedule)
        self.trace.complete("iteration", "iteration", t0, perf_counter() - t0,
                            {"it": it, "schedule": schedule})
        return loss

    def _run_iteration(self, it: int, schedule: str) -> float:
        n = self.spec.n_microbatches
        accum = {i: self.chunks[i].zeros_like() for i in self.chunk_ids}

        if schedule == "gpipe":
            for mb in range(n):
                self.forward(it, mb)
            for mb in range(n):
                self.backward(it, mb, accum)
        elif schedule == "1f1b":
            warmup = min(n, self.world - 1 - self.rank)
            for mb in range(warmup):
                self.forward(it, mb)
            for i in range(n - warmup):
                self.forward(it, warmup + i)
                self.backward(it, i, accum)
            for mb in range(n - warmup, n):
                self.backward(it, mb, accum)
        else:
            raise ValueError(f"unknown schedule {schedule!r}")

        pre_update(
            self.spec, it, self.opt, [accum[i] for i in self.chunk_ids],
            comm=self.comm, tag=("pp-clip", it),
        )
        for i in self.chunk_ids:
            self.opt.step(self.chunks[i], accum[i], self.opt_states[i])

        # mean loss lives on the last stage; share it for reporting.
        losses = all_gather(
            self.comm, sum(self.local_losses.values()), tag=("pp-loss", it)
        )
        self.local_losses.clear()
        return sum(losses) / n


def _worker(comm: Communicator, spec: TrainSpec, schedule: str) -> TrainResult:
    w = _StageWorker(comm, spec)
    losses = [w.run_iteration(it, schedule) for it in range(spec.iters)]
    return TrainResult(
        losses=losses,
        chunks=[w.chunks[i] for i in w.chunk_ids],
        extra={"peak_inflight": w.peak_inflight, "rank": w.rank},
    )


def train_pipeline(
    spec: TrainSpec,
    world_size: int,
    schedule: str = "1f1b",
    fabric: Optional[Fabric] = None,
) -> TrainResult:
    """Run an activation-passing pipeline (``schedule`` in {"gpipe","1f1b"}).

    Returns losses plus the *full* model (stage chunk lists concatenated
    in order).  ``extra["peak_inflight"]`` maps rank -> peak in-flight
    microbatch count.
    """
    stage_chunk_range(spec.cfg.n_layers, world_size, 0)  # validate divisibility
    results = run_workers(
        world_size, lambda comm: _worker(comm, spec, schedule), fabric=fabric
    )
    chunks: List[ParamStruct] = []
    for r in results:
        chunks.extend(r.chunks)
    peaks = {r.extra["rank"]: r.extra["peak_inflight"] for r in results}
    return TrainResult(losses=results[0].losses, chunks=chunks, extra={"peak_inflight": peaks})
