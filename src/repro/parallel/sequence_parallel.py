"""Sequence (context) parallelism — the long-context-specific baseline.

The paper's related work cites sequence parallelism as the technique
"specifically designed for long sequences": split each microbatch's
*positions* across workers so activation memory per worker shrinks by
``P``, at the price of attention-time communication (queries must see
every key/value).  This module implements the gather-based variant
(Megatron context parallelism):

* worker ``r`` owns positions ``[r·S/P, (r+1)·S/P)`` of **every**
  microbatch; everything except attention is position-local;
* attention **all-gathers K and V** (each ``G·S·H/P`` per hop, ring) and
  runs block-causal attention of the local query block against the full
  sequence (:func:`repro.nn.attention.attention_block_fwd`);
* the backward produces dK/dV contributions for *all* positions, which
  **reduce-scatter** back to their owners;
* weight gradients are partial over positions, so they all-reduce at
  iteration end like data parallelism (every worker then updates its
  full replica identically).

Per layer per microbatch the attention pays ``~4·(P-1)/P·G·S·H``
elements of collective traffic — like activation-passing PP, it scales
with context length, which is exactly the contrast with WeiPipe's
``O(H²)`` ring that the comparison tests measure.

Numerical contract: identical to the serial baseline
(``tests/parallel/test_sequence_parallel.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.attention import attention_block_bwd, attention_block_fwd
from ..nn.layer import _from_heads, _to_heads
from ..nn.params import ParamStruct
from ..nn.rope import rope_apply, rope_apply_bwd
from ..runtime import Communicator, Fabric, all_gather, all_reduce, reduce_scatter, run_workers
from .common import TrainResult, TrainSpec, microbatch, pre_update, quantize_grads

__all__ = ["train_sequence_parallel"]


class _SPWorker:
    def __init__(self, comm: Communicator, spec: TrainSpec):
        cfg = spec.cfg
        if cfg.seq_len % comm.world_size != 0:
            raise ValueError("seq_len must be divisible by the SP world size")
        if spec.recompute:
            raise ValueError(
                "the SP baseline does not implement recomputation "
                "(it would re-gather K/V in the backward)"
            )
        self.comm = comm
        self.spec = spec
        self.cfg = cfg
        self.rank = comm.rank
        self.world = comm.world_size
        self.block = cfg.seq_len // self.world
        self.offset = self.rank * self.block
        cos, sin = spec.rope()
        self.cos_local = cos[self.offset : self.offset + self.block]
        self.sin_local = sin[self.offset : self.offset + self.block]
        self.chunks = spec.init_chunks()
        self.opt = spec.make_optimizer()
        self.opt_states = [self.opt.init_state(c) for c in self.chunks]
        self.q_act = spec.precision.q_act
        self.q_bgrad = spec.precision.q_act_grad
        self.act_wire = spec.precision.act_bytes
        self.bgrad_wire = spec.precision.act_grad_bytes
        self.grad_wire = spec.precision.weight_grad_bytes
        self.scale = 1.0 / spec.n_microbatches

    # -- gathered attention ---------------------------------------------------

    def _gather_heads(self, local: np.ndarray, tag: Tuple) -> np.ndarray:
        """All-gather (G, nh, S/P, hd) blocks into the full sequence."""
        blocks = all_gather(
            self.comm, local, tag=tag,
            nbytes=int(local.size * self.act_wire),
        )
        return np.concatenate(blocks, axis=2)

    def _scatter_heads(self, full_grad: np.ndarray, tag: Tuple) -> np.ndarray:
        """Reduce-scatter (G, nh, S, hd) position grads to their owners.

        ``reduce_scatter`` partitions the *flat* buffer into P contiguous
        chunks, so the position axis must be block-major first: reorder
        to (P, G, nh, block, hd), then chunk ``r`` is exactly worker
        ``r``'s position block.
        """
        g, nh, s, hd = full_grad.shape
        blocked = full_grad.reshape(g, nh, self.world, self.block, hd)
        block_major = np.ascontiguousarray(blocked.transpose(2, 0, 1, 3, 4))
        flat = reduce_scatter(
            self.comm, block_major.reshape(-1),
            tag=tag, nbytes_per_element=self.bgrad_wire,
        )
        return flat.reshape(g, nh, self.block, hd)

    # -- one layer ---------------------------------------------------------------

    def _layer_fwd(self, w: ParamStruct, x: np.ndarray, tag: Tuple):
        nh = self.cfg.n_heads
        h1, c_norm1 = F.rmsnorm_fwd(x, w["attn_norm"])
        q, c_q = F.linear_fwd(h1, w["wq"])
        k, c_k = F.linear_fwd(h1, w["wk"])
        v, c_v = F.linear_fwd(h1, w["wv"])
        qh = rope_apply(_to_heads(q, nh), self.cos_local, self.sin_local)
        kh = rope_apply(_to_heads(k, nh), self.cos_local, self.sin_local)
        vh = _to_heads(v, nh)
        k_full = self._gather_heads(kh, tag + ("k",))
        v_full = self._gather_heads(vh, tag + ("v",))
        attn, c_attn = attention_block_fwd(qh, k_full, v_full, self.offset)
        attn_flat = _from_heads(attn)
        o, c_o = F.linear_fwd(attn_flat, w["wo"])
        x2 = x + o
        h2, c_norm2 = F.rmsnorm_fwd(x2, w["ffn_norm"])
        gate, c_gate = F.linear_fwd(h2, w["w_gate"])
        up, c_up = F.linear_fwd(h2, w["w_up"])
        act, c_act = F.silu_fwd(gate)
        f = act * up
        d, c_down = F.linear_fwd(f, w["w_down"])
        y = x2 + d
        cache = (
            c_norm1, c_q, c_k, c_v, c_attn, c_o,
            c_norm2, c_gate, c_up, c_act, up, act, c_down,
        )
        return y, cache

    def _layer_bwd(self, w: ParamStruct, dy: np.ndarray, cache, tag: Tuple):
        (
            c_norm1, c_q, c_k, c_v, c_attn, c_o,
            c_norm2, c_gate, c_up, c_act, up, act, c_down,
        ) = cache
        nh = self.cfg.n_heads
        grads: Dict[str, np.ndarray] = {}

        df = F.linear_bwd_input(dy, w["w_down"])
        grads["w_down"] = F.linear_bwd_weight(c_down[0], dy)
        dact = df * up
        dup = df * act
        dgate = F.silu_bwd(dact, c_act)
        grads["w_gate"] = F.linear_bwd_weight(c_gate[0], dgate)
        grads["w_up"] = F.linear_bwd_weight(c_up[0], dup)
        dh2 = F.linear_bwd_input(dgate, w["w_gate"]) + F.linear_bwd_input(
            dup, w["w_up"]
        )
        grads["ffn_norm"] = F.rmsnorm_bwd_weight(dh2, c_norm2)
        dx2 = dy + F.rmsnorm_bwd_input(dh2, c_norm2)

        dattn_flat = F.linear_bwd_input(dx2, w["wo"])
        grads["wo"] = F.linear_bwd_weight(c_o[0], dx2)
        dattn = _to_heads(dattn_flat, nh)
        dqh, dk_full, dv_full = attention_block_bwd(dattn, c_attn)
        # every worker contributed grads to every position: route them home.
        dkh = self._scatter_heads(dk_full, tag + ("dk",))
        dvh = self._scatter_heads(dv_full, tag + ("dv",))
        dq = _from_heads(rope_apply_bwd(dqh, self.cos_local, self.sin_local))
        dk = _from_heads(rope_apply_bwd(dkh, self.cos_local, self.sin_local))
        dv = _from_heads(dvh)
        grads["wq"] = F.linear_bwd_weight(c_q[0], dq)
        grads["wk"] = F.linear_bwd_weight(c_k[0], dk)
        grads["wv"] = F.linear_bwd_weight(c_v[0], dv)
        dh1 = (
            F.linear_bwd_input(dq, w["wq"])
            + F.linear_bwd_input(dk, w["wk"])
            + F.linear_bwd_input(dv, w["wv"])
        )
        grads["attn_norm"] = F.rmsnorm_bwd_weight(dh1, c_norm1)
        dx = dx2 + F.rmsnorm_bwd_input(dh1, c_norm1)
        return dx, ParamStruct(grads)

    # -- training -------------------------------------------------------------

    def run(self) -> TrainResult:
        spec, cfg = self.spec, self.cfg
        sl = slice(self.offset, self.offset + self.block)
        losses: List[float] = []
        for it in range(spec.iters):
            accum = [c.zeros_like() for c in self.chunks]
            total_loss = 0.0
            for mb in range(spec.n_microbatches):
                tokens, targets = microbatch(spec, it, mb)
                tokens, targets = tokens[:, sl], targets[:, sl]
                x, c_embed = F.embedding_fwd(tokens, self.chunks[0]["embed"])
                caches = []
                for i in range(cfg.n_layers):
                    x, cache = self._layer_fwd(
                        self.chunks[i], x, ("sp-f", it, mb, i)
                    )
                    if i < cfg.n_layers - 1:
                        x = self.q_act(x)
                    caches.append(cache)
                h, c_fnorm = F.rmsnorm_fwd(x, self.chunks[-1]["final_norm"])
                logits, c_head = F.linear_fwd(h, self.chunks[-1]["head"])
                logits = self.q_act(logits)
                block_loss, c_loss = F.cross_entropy_fwd(logits, targets)
                total_loss += block_loss / self.world  # mean of block means

                # d(total)/d(block logits): the block is 1/P of the mean.
                dy = F.cross_entropy_bwd(1.0 / self.world, c_loss)
                dh = F.linear_bwd_input(dy, self.chunks[-1]["head"])
                self._accumulate(accum[-1], {
                    "head": F.linear_bwd_weight(c_head[0], dy),
                    "final_norm": F.rmsnorm_bwd_weight(dh, c_fnorm),
                })
                dy = self.q_bgrad(F.rmsnorm_bwd_input(dh, c_fnorm))
                for i in range(cfg.n_layers - 1, -1, -1):
                    dy, g = self._layer_bwd(
                        self.chunks[i], dy, caches[i], ("sp-b", it, mb, i)
                    )
                    dy = self.q_bgrad(dy)
                    self._accumulate(accum[i], dict(g.items()))
                self._accumulate(
                    accum[0], {"embed": F.embedding_bwd(dy, c_embed)}
                )

            # weight grads are partial over positions: all-reduce like DP.
            for i, g in enumerate(accum):
                flat = all_reduce(
                    self.comm, g.pack(np.float64), tag=("sp-grad", it, i),
                    nbytes_per_element=self.grad_wire,
                )
                accum[i] = g.unpack_from(flat)
            loss_sum = all_reduce(
                self.comm, np.array([total_loss]), tag=("sp-loss", it)
            )[0]

            # grads are complete replicas now: clipping is local.
            pre_update(spec, it, self.opt, accum)
            for i, c in enumerate(self.chunks):
                self.opt.step(c, accum[i], self.opt_states[i])
            # loss_sum = sum over mbs of (mean over blocks) already
            losses.append(loss_sum / spec.n_microbatches)
        return TrainResult(losses=losses, chunks=self.chunks)

    def _accumulate(self, accum: ParamStruct, grads: Dict[str, np.ndarray]) -> None:
        q = quantize_grads(ParamStruct(grads), self.spec.precision)
        for name in q.keys():
            accum[name] += self.scale * q[name]


def train_sequence_parallel(
    spec: TrainSpec, world_size: int, fabric: Optional[Fabric] = None
) -> TrainResult:
    """Train with gather-based sequence parallelism."""
    if spec.cfg.seq_len % world_size != 0:
        raise ValueError("seq_len must be divisible by the SP world size")
    if spec.recompute:
        raise ValueError(
            "the SP baseline does not implement recomputation "
            "(it would re-gather K/V in the backward)"
        )
    results = run_workers(
        world_size, lambda comm: _SPWorker(comm, spec).run(), fabric=fabric
    )
    return results[0]
