"""Data parallelism with ring all-reduce gradient synchronisation.

Each of the ``P`` workers holds a full model replica and processes the
microbatches ``{rank, rank+P, ...}``; gradients are summed with the ring
all-reduce of :mod:`repro.runtime.collectives` (volume ``2 (P-1)/P`` of
the model per iteration per worker, the figure the paper's related-work
discussion attributes to DP) and every replica applies the identical
optimizer step.

:func:`dp_step` exposes one iteration as a pure function of the
replicated ``(weights, optimizer state)`` — the step-boundary snapshot
unit used by elastic recovery (:mod:`repro.parallel.elastic`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.checkpoint import CheckpointedChunk
from ..nn import functional as F
from ..nn.params import ParamStruct
from ..optim.optimizer import clone_opt_state
from ..runtime import Communicator, Fabric, all_reduce, run_workers
from .common import (
    TrainResult,
    TrainSpec,
    init_opt_states,
    microbatch,
    pre_update,
    quantize_grads,
)

__all__ = ["train_data_parallel", "dp_step"]


def dp_step(
    comm: Communicator,
    spec: TrainSpec,
    iteration: int,
    chunks: List[ParamStruct],
    opt_states: List[Dict],
) -> Tuple[float, List[ParamStruct], List[Dict]]:
    """One DP iteration from explicit replicated state.

    Inputs are cloned, never mutated; every rank returns the identical
    updated ``(loss, chunks, states)`` (replicas stay in lockstep by
    construction).  Runs on any world size that divides
    ``spec.n_microbatches``, including 1.
    """
    cfg = spec.cfg
    rank, p = comm.rank, comm.world_size
    chunks = [c.clone() for c in chunks]
    states = [clone_opt_state(s) for s in opt_states]
    cos, sin = spec.rope()
    ck = CheckpointedChunk(cfg, recompute=spec.recompute)
    opt = spec.make_optimizer()
    q_act = spec.precision.q_act
    q_bgrad = spec.precision.q_act_grad
    scale = 1.0 / spec.n_microbatches
    grad_wire = spec.precision.weight_grad_bytes

    accum = [c.zeros_like() for c in chunks]
    local_loss = 0.0
    for mb in range(rank, spec.n_microbatches, p):
        tokens, targets = microbatch(spec, iteration, mb)
        x = tokens
        fwd_states = []
        for i in range(cfg.n_layers):
            x, st = ck.fwd(i, chunks[i], x, cos, sin)
            x = q_act(x)
            fwd_states.append(st)
        loss, c_loss = F.cross_entropy_fwd(x, targets)
        local_loss += loss
        dy = F.cross_entropy_bwd(1.0, c_loss)
        for i in range(cfg.n_layers - 1, -1, -1):
            dy, g = ck.bwd(i, chunks[i], dy, fwd_states[i])
            if dy is not None:
                dy = q_bgrad(dy)
            accum[i].add_(quantize_grads(g, spec.precision), scale=scale)

    # synchronise: one ring all-reduce per chunk (flat).
    for i, g in enumerate(accum):
        flat = g.pack(dtype=np.float64)
        reduced = all_reduce(
            comm, flat, tag=("dp-grad", iteration, i), nbytes_per_element=grad_wire
        )
        accum[i] = g.unpack_from(reduced)

    loss_sum = all_reduce(
        comm, np.array([local_loss]), tag=("dp-loss", iteration)
    )[0]
    # grads are complete replicas after the all-reduce: the global
    # norm is local, no extra collective needed.
    pre_update(spec, iteration, opt, accum)
    for i, c in enumerate(chunks):
        opt.step(c, accum[i], states[i])
    return float(loss_sum) / spec.n_microbatches, chunks, states


def _worker(comm: Communicator, spec: TrainSpec) -> TrainResult:
    chunks = spec.init_chunks()
    opt = spec.make_optimizer()
    states = init_opt_states(spec, opt, chunks)
    losses: List[float] = []
    for it in range(spec.iters):
        loss, chunks, states = dp_step(comm, spec, it, chunks, states)
        losses.append(loss)
    return TrainResult(losses=losses, chunks=chunks, extra={"opt_state": states})


def train_data_parallel(
    spec: TrainSpec, world_size: int, fabric: Optional[Fabric] = None
) -> TrainResult:
    """Run DP on ``world_size`` simulated workers; returns rank 0's view
    (all replicas are identical by construction — asserted in tests)."""
    if spec.n_microbatches % world_size != 0:
        raise ValueError("n_microbatches must be divisible by world_size")
    results = run_workers(
        world_size, lambda comm: _worker(comm, spec), fabric=fabric
    )
    return results[0]
