"""2-D hybrid: WeiPipe rings inside data-parallel replica groups.

The paper evaluates a single ring of up to 32 workers; scaling further
in practice means composing parallelisms.  The natural 2-D layout keeps
the ring small (bubbles grow with ring size, and each ring wants
``n_layers % ring == 0``) and adds data-parallel *replicas* of the whole
ring:

* the world is a ``dp x ring`` grid: rank ``r`` is ring position
  ``r % ring`` of replica ``r // ring``;
* each replica ring runs standard WeiPipe-Interleave over its ``1/dp``
  share of the microbatches (round-robin by global index, so any world
  shape sees the same data);
* at the update pass, each slot owner all-reduces its accumulated ``D``
  across the ``dp`` replicas of the same ring position (one small
  weight-sized collective per slot — still no activation traffic), then
  every replica applies the identical update.

Numerical contract: identical to serial and to a pure WeiPipe ring of
any size (``tests/core/test_hybrid.py``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from ..parallel.common import TrainResult, TrainSpec, microbatch
from ..runtime import Communicator, Fabric, all_reduce, run_workers
from ..runtime.subgroup import split_grid
from .weipipe import _WeiPipeWorker, _worker as _weipipe_worker

__all__ = ["train_weipipe_dp"]


class _ShardedData:
    """Round-robin microbatch view: replica ``g`` of ``dp`` sees the
    global microbatches ``g, g+dp, g+2dp, ...`` as its local 0, 1, 2..."""

    def __init__(self, base_spec: TrainSpec, dp_index: int, dp_degree: int):
        self.base = base_spec
        self.dp_index = dp_index
        self.dp_degree = dp_degree

    def microbatch(self, iteration: int, index: int, g: int, s: int):
        return microbatch(
            self.base, iteration, index * self.dp_degree + self.dp_index
        )


def train_weipipe_dp(
    spec: TrainSpec,
    ring_size: int,
    dp_degree: int,
    fabric: Optional[Fabric] = None,
) -> TrainResult:
    """Train with ``dp_degree`` data-parallel WeiPipe rings of
    ``ring_size`` workers each (world = dp_degree * ring_size)."""
    world = ring_size * dp_degree
    if spec.cfg.n_layers % ring_size != 0:
        raise ValueError("n_layers must be divisible by ring_size")
    if spec.n_microbatches % (ring_size * dp_degree) != 0:
        raise ValueError(
            "n_microbatches must be divisible by ring_size * dp_degree"
        )

    def worker(comm: Communicator) -> TrainResult:
        ring_comm, dp_comm, dp_idx, _ring_rank = split_grid(
            comm, dp_degree, ring_size
        )
        local_spec = replace(
            spec,
            n_microbatches=spec.n_microbatches // dp_degree,
            data=_ShardedData(spec, dp_idx, dp_degree),
        )
        w = _WeiPipeWorker(ring_comm, local_spec, "interleave", dp_comm=dp_comm)
        losses = []
        for it in range(spec.iters):
            ring_mean = w.run_iteration(it)
            # global mean = mean of equal-share replica means.
            total = all_reduce(dp_comm, np.array([ring_mean]), tag=("hdp-loss", it))
            losses.append(float(total[0]) / dp_degree)
        # report replica 0's weights (asserted identical in tests).
        from ..runtime import all_gather

        owned = {i: w.bwd_slot[i] for i in w.opt_states}
        gathered = all_gather(ring_comm, owned, tag=("hdp-final",))
        merged = {}
        for d in gathered:
            merged.update(d)
        chunks = [merged[i] for i in range(spec.cfg.n_layers)]
        return TrainResult(losses=losses, chunks=chunks, extra={"dp": dp_idx})

    results = run_workers(world, worker, fabric=fabric)
    return results[0]
