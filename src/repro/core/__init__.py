"""WeiPipe core: the weight-pipeline strategies and the training API."""

from .api import STRATEGIES, strategy_names, train
from .hybrid import train_weipipe_dp
from .schedule import (
    TurnTask,
    bwd_home,
    bwd_slot_held,
    fwd_home,
    fwd_slot_held,
    interleave_schedule,
    naive_schedule,
    slot_owner,
)
from .weipipe import slot_chunk_ids, train_weipipe

__all__ = [
    "STRATEGIES",
    "TurnTask",
    "bwd_home",
    "bwd_slot_held",
    "fwd_home",
    "fwd_slot_held",
    "interleave_schedule",
    "naive_schedule",
    "slot_chunk_ids",
    "slot_owner",
    "strategy_names",
    "train",
    "train_weipipe",
    "train_weipipe_dp",
]
