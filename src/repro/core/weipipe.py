"""The WeiPipe worker engine: weight rings on the functional runtime.

This is the paper's contribution, implemented on the message-passing
substrate.  Every worker keeps *its own microbatches* resident — their
activations never leave the worker — while the weights rotate past:

* Each turn the worker receives three payloads from its ring
  predecessor: a forward-flow weight slot, a backward-flow weight slot
  and the gradient accumulator ``D`` riding with it (the paper's
  ``2 W + 1 D = 36 H^2`` per-turn volume for Llama layers).
* The schedule (:mod:`repro.core.schedule`) says what to compute with
  them: forward some slot of a new microbatch, fused-backward some slot
  of an old one, or just pass the cargo on (a bubble).
* Backward contributions are accumulated *into the circulating D*
  (quantised to the wire format each hop), replacing DP's all-reduce —
  the "update pass" of Section 3.
* After the final turn every slot is back at its home; the worker that
  owns a slot (holds its optimizer state, which never travels) applies
  the update and re-injects fresh weights into both flows for the next
  iteration.

Numerical contract: identical losses and final weights as
:func:`repro.parallel.serial.train_serial` (exact in fp32/fp64 policies
up to accumulation order) — enforced by ``tests/integration``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.checkpoint import CheckpointedChunk
from ..nn import functional as F
from ..nn.params import ParamStruct
from ..optim.optimizer import clone_opt_state
from ..parallel.common import TrainResult, TrainSpec, microbatch, pre_update, quantize_grads
from ..runtime import Communicator, Fabric, all_gather, run_workers
from .schedule import (
    TurnTask,
    bwd_slot_held,
    fwd_home,
    fwd_slot_held,
    interleave_schedule,
    naive_schedule,
    slot_owner,
    zero_bubble_schedule,
)

__all__ = ["train_weipipe", "weipipe_step", "slot_chunk_ids"]

SlotWeights = Dict[int, ParamStruct]  # chunk id -> weights


def slot_chunk_ids(slot: int, world: int, n_layers: int) -> List[int]:
    """Chunk indices carried by ``slot`` (contiguous, ``L/P`` per slot)."""
    if n_layers % world != 0:
        raise ValueError("n_layers must be divisible by world size")
    per = n_layers // world
    return list(range(slot * per, (slot + 1) * per))


class _MicrobatchState:
    """Everything a worker keeps for one in-flight microbatch."""

    __slots__ = ("x", "dy", "targets", "fwd_states", "loss")

    def __init__(self, tokens: np.ndarray, targets: np.ndarray):
        self.x: Optional[np.ndarray] = tokens
        self.dy: Optional[np.ndarray] = None
        self.targets = targets
        self.fwd_states: Dict[int, tuple] = {}
        self.loss: Optional[float] = None


class _WeiPipeWorker:
    def __init__(self, comm: Communicator, spec: TrainSpec, mode: str,
                 dp_comm: Optional[Communicator] = None):
        self.comm = comm
        #: replica group for 2-D hybrids (repro.core.hybrid): the owners
        #: of the same slot across data-parallel rings sync D here.
        self.dp_comm = dp_comm
        self.spec = spec
        self.cfg = spec.cfg
        self.rank = comm.rank
        self.world = comm.world_size
        self.mode = mode
        self.last_slot = self.world - 1
        self.cos, self.sin = spec.rope()
        self.ck = CheckpointedChunk(self.cfg, recompute=spec.recompute)
        self.q_act = spec.precision.q_act
        self.q_bgrad = spec.precision.q_act_grad
        self.w_wire = spec.precision.weight_bytes
        self.d_wire = spec.precision.weight_grad_bytes
        self.scale = 1.0 / spec.n_microbatches

        chunks_all = spec.init_chunks()

        # flow holdings at turn 0 (see schedule.py for the placement law).
        self.fwd_slot: SlotWeights = self._slot_view(chunks_all, self._initial_fwd_slot())
        self.bwd_slot: SlotWeights = self._slot_view(chunks_all, self._initial_bwd_slot())
        self.grad_slot: SlotWeights = {
            i: w.zeros_like() for i, w in self.bwd_slot.items()
        }

        # this worker owns the slot whose backward flow starts here: its
        # optimizer state stays put for the whole training run.
        self.owned_slot = (self.rank - 1) % self.world
        self.opt = spec.make_optimizer()
        owned_ids = slot_chunk_ids(self.owned_slot, self.world, self.cfg.n_layers)
        if spec.initial_opt_state is not None:
            if len(spec.initial_opt_state) != self.cfg.n_layers:
                raise ValueError(
                    f"initial_opt_state has {len(spec.initial_opt_state)} "
                    f"entries, expected {self.cfg.n_layers}"
                )
            self.opt_states = {
                i: clone_opt_state(spec.initial_opt_state[i]) for i in owned_ids
            }
        else:
            self.opt_states = {
                i: self.opt.init_state(chunks_all[i]) for i in owned_ids
            }

        self.inflight: Dict[int, _MicrobatchState] = {}
        self.losses_by_mb: Dict[int, float] = {}
        self.peak_inflight = 0
        # zero-bubble mode: (mb, chunk id) -> (cache, wcache) between the
        # B pass and its deferred W pass one ring revolution later.
        self.pending_w: Dict[tuple, tuple] = {}
        self.peak_pending_w = 0

    # -- helpers ---------------------------------------------------------------

    def _initial_fwd_slot(self) -> int:
        return (-self.rank) % self.world  # fwd_home(j) == rank  <=>  j == -rank

    def _initial_bwd_slot(self) -> int:
        return (self.rank - 1) % self.world

    def _slot_view(self, chunks_all: List[ParamStruct], slot: int) -> SlotWeights:
        return {
            i: chunks_all[i].clone()
            for i in slot_chunk_ids(slot, self.world, self.cfg.n_layers)
        }

    def _slot_nbytes(self, slot: SlotWeights, wire: int) -> int:
        return sum(w.numel for w in slot.values()) * wire

    # -- compute ---------------------------------------------------------------

    def _forward_slot(self, it: int, slot: int, mb: int) -> None:
        ids = slot_chunk_ids(slot, self.world, self.cfg.n_layers)
        if slot == 0:
            tokens, targets = microbatch(self.spec, it, mb)
            self.inflight[mb] = _MicrobatchState(tokens, targets)
            self.peak_inflight = max(self.peak_inflight, len(self.inflight))
        state = self.inflight[mb]
        x = state.x
        for i in ids:
            w = self.fwd_slot[i]
            x, st = self.ck.fwd(i, w, x, self.cos, self.sin)
            x = self.q_act(x)
            state.fwd_states[i] = st
        state.x = x
        if slot == self.last_slot:
            loss, c_loss = F.cross_entropy_fwd(x, state.targets)
            state.loss = loss
            self.losses_by_mb[mb] = loss
            state.dy = F.cross_entropy_bwd(1.0, c_loss)
            state.x = None  # logits no longer needed

    def _accumulate_grad(self, i: int, g: ParamStruct) -> None:
        """Add one chunk contribution into the circulating D at wire
        precision: the running sum itself lives in the (emulated) fp16
        buffer."""
        self.grad_slot[i].add_(
            quantize_grads(g, self.spec.precision), scale=self.scale
        )
        self.grad_slot[i] = quantize_grads(self.grad_slot[i], self.spec.precision)

    def _backward_slot(self, it: int, slot: int, mb: int) -> None:
        """Fused backward (Naive/Interleave modes)."""
        ids = slot_chunk_ids(slot, self.world, self.cfg.n_layers)
        state = self.inflight[mb]
        dy = state.dy
        for i in reversed(ids):
            w = self.bwd_slot[i]
            dy, g = self.ck.bwd(i, w, dy, state.fwd_states.pop(i))
            if dy is not None:
                dy = self.q_bgrad(dy)
            self._accumulate_grad(i, g)
        state.dy = dy
        if slot == 0:
            del self.inflight[mb]  # microbatch fully retired

    def _b_pass_slot(self, it: int, slot: int, mb: int) -> None:
        """Zero-bubble B pass: input grads now, weight grads deferred."""
        ids = slot_chunk_ids(slot, self.world, self.cfg.n_layers)
        state = self.inflight[mb]
        dy = state.dy
        for i in reversed(ids):
            w = self.bwd_slot[i]
            dy, cache, wcache = self.ck.bwd_input(i, w, dy, state.fwd_states.pop(i))
            if dy is not None:
                dy = self.q_bgrad(dy)
            self.pending_w[(mb, i)] = (cache, wcache)
        self.peak_pending_w = max(self.peak_pending_w, len(self.pending_w))
        state.dy = dy
        if slot == 0:
            del self.inflight[mb]

    def _w_pass_slot(self, it: int, slot: int, mb: int) -> None:
        """Zero-bubble W pass: runs when the slot's D comes around again."""
        for i in slot_chunk_ids(slot, self.world, self.cfg.n_layers):
            cache, wcache = self.pending_w.pop((mb, i))
            g = self.ck.bwd_weight(i, cache, wcache)
            self._accumulate_grad(i, g)

    # -- the turn loop -----------------------------------------------------------

    def run_iteration(self, it: int) -> float:
        if self.mode == "interleave":
            total, task_fn = interleave_schedule(self.world, self.spec.n_microbatches)
        elif self.mode == "naive":
            total, task_fn = naive_schedule(self.world, self.spec.n_microbatches)
        elif self.mode == "zero-bubble":
            total, task_fn = zero_bubble_schedule(self.world, self.spec.n_microbatches)
        else:
            raise ValueError(f"unknown WeiPipe mode {self.mode!r}")

        left, right = self.comm.left, self.comm.right
        for t in range(total):
            if t > 0:
                self.fwd_slot = self.comm.recv(left, ("F", it, t))
                self.bwd_slot = self.comm.recv(left, ("B", it, t))
                self.grad_slot = self.comm.recv(left, ("D", it, t))

            task: TurnTask = task_fn(self.rank, t)
            if task.fwd is not None:
                slot, mb = task.fwd
                expected = fwd_slot_held(self.rank, t, self.world)
                if slot != expected:
                    raise AssertionError(
                        f"schedule/flow mismatch: fwd slot {slot} but holding {expected}"
                    )
                self._forward_slot(it, slot, mb)
            if task.bwd is not None:
                slot, mb = task.bwd
                expected = bwd_slot_held(self.rank, t, self.world)
                if slot != expected:
                    raise AssertionError(
                        f"schedule/flow mismatch: bwd slot {slot} but holding {expected}"
                    )
                if self.mode == "zero-bubble":
                    self._b_pass_slot(it, slot, mb)
                else:
                    self._backward_slot(it, slot, mb)
            if task.wpass is not None:
                slot, mb = task.wpass
                expected = bwd_slot_held(self.rank, t, self.world)
                if slot != expected:  # the flow loops every P turns
                    raise AssertionError(
                        f"schedule/flow mismatch: wpass slot {slot} but holding {expected}"
                    )
                self._w_pass_slot(it, slot, mb)

            self.comm.send(
                self.fwd_slot, right, ("F", it, t + 1),
                nbytes=self._slot_nbytes(self.fwd_slot, self.w_wire),
            )
            self.comm.send(
                self.bwd_slot, right, ("B", it, t + 1),
                nbytes=self._slot_nbytes(self.bwd_slot, self.w_wire),
            )
            self.comm.send(
                self.grad_slot, right, ("D", it, t + 1),
                nbytes=self._slot_nbytes(self.grad_slot, self.d_wire),
            )

        # final hop brings every slot back to its home position.
        self.fwd_slot = self.comm.recv(left, ("F", it, total))
        self.bwd_slot = self.comm.recv(left, ("B", it, total))
        self.grad_slot = self.comm.recv(left, ("D", it, total))

        self._update_pass(it)

        losses = all_gather(self.comm, dict(self.losses_by_mb), tag=("wp-loss", it))
        self.losses_by_mb.clear()
        merged: Dict[int, float] = {}
        for d in losses:
            merged.update(d)
        return sum(merged.values()) / self.spec.n_microbatches

    # -- update pass ----------------------------------------------------------

    def _update_pass(self, it: int) -> None:
        """Owner updates its slot and re-injects weights into both flows.

        The backward flow is home at the owner, so the update is local;
        the forward-flow copy lives at ``fwd_home`` and is refreshed with
        one extra P2P message (its peer is symmetric: worker ``p``
        exchanges with worker ``(1 - p) mod P``).
        """
        held_bwd = self._initial_bwd_slot()
        if held_bwd != self.owned_slot:  # pragma: no cover - invariant
            raise AssertionError("backward flow did not come home")

        if self.dp_comm is not None and self.dp_comm.world_size > 1:
            # hybrid mode: average the owned slot's D across replicas
            # (each replica accumulated its 1/dp share of microbatches).
            from ..runtime import all_reduce as _all_reduce

            dp = self.dp_comm.world_size
            for i, g in self.grad_slot.items():
                flat = _all_reduce(
                    self.dp_comm, g.pack(np.float64), tag=("wp-dp", it, i),
                    nbytes_per_element=self.d_wire,
                )
                self.grad_slot[i] = g.unpack_from(flat / dp)

        pre_update(
            self.spec, it, self.opt, list(self.grad_slot.values()),
            comm=self.comm, tag=("wp-clip", it),
        )
        for i, w in self.bwd_slot.items():
            self.opt.step(w, self.grad_slot[i], self.opt_states[i])
            self.grad_slot[i].zero_()

        target = fwd_home(self.owned_slot, self.world)
        if target == self.rank:
            self.fwd_slot = {i: w.clone() for i, w in self.bwd_slot.items()}
        else:
            self.comm.send(
                {i: w.clone() for i, w in self.bwd_slot.items()},
                target,
                ("inject", it),
                nbytes=self._slot_nbytes(self.bwd_slot, self.w_wire),
            )
            source = slot_owner(self._initial_fwd_slot(), self.world)
            self.fwd_slot = self.comm.recv(source, ("inject", it))


def weipipe_step(
    comm: Communicator,
    spec: TrainSpec,
    iteration: int,
    chunks: List[ParamStruct],
    opt_states: List[Dict],
    mode: str = "interleave",
) -> Tuple[float, List[ParamStruct], List[Dict]]:
    """One WeiPipe iteration from explicit full (replicated) state.

    The step-boundary entry point used by elastic recovery
    (:mod:`repro.parallel.elastic`): spin up a worker whose flows and
    owned optimizer state are seeded from ``chunks``/``opt_states``, run
    one ring iteration, then all-gather every owner's updated slot so
    each rank returns the complete ``(loss, chunks, states)``.  Inputs
    are cloned (by the worker's init path), never mutated, and chaining
    steps is bit-identical to a persistent-worker run — the flows a
    fresh worker builds from the updated chunks are exactly what
    ``_update_pass`` left in circulation.
    """
    step_spec = replace(
        spec,
        iters=1,
        start_iteration=spec.start_iteration + iteration,
        initial_chunks=chunks,
        initial_opt_state=opt_states,
    )
    w = _WeiPipeWorker(comm, step_spec, mode)
    loss = w.run_iteration(0)
    if w.pending_w:  # pragma: no cover - invariant
        raise AssertionError("deferred W passes left undone at step boundary")
    owned = {i: (w.bwd_slot[i], w.opt_states[i]) for i in w.opt_states}
    gathered = all_gather(comm, owned, tag=("wp-state", iteration))
    merged: Dict[int, tuple] = {}
    for d in gathered:
        merged.update(d)
    new_chunks = [merged[i][0] for i in range(spec.cfg.n_layers)]
    new_states = [merged[i][1] for i in range(spec.cfg.n_layers)]
    return loss, new_chunks, new_states


def _worker(comm: Communicator, spec: TrainSpec, mode: str) -> TrainResult:
    w = _WeiPipeWorker(comm, spec, mode)
    losses = [w.run_iteration(it) for it in range(spec.iters)]
    # report final weights: gather every worker's owned (updated) slot.
    owned = {i: w.bwd_slot[i] for i in w.opt_states}
    gathered = all_gather(comm, owned, tag=("wp-final",))
    merged: Dict[int, ParamStruct] = {}
    for d in gathered:
        merged.update(d)
    chunks = [merged[i] for i in range(spec.cfg.n_layers)]
    if w.pending_w:  # pragma: no cover - invariant
        raise AssertionError("deferred W passes left undone at exit")
    return TrainResult(
        losses=losses,
        chunks=chunks,
        extra={
            "rank": w.rank,
            "peak_inflight": w.peak_inflight,
            "peak_pending_w": w.peak_pending_w,
        },
    )


def train_weipipe(
    spec: TrainSpec,
    world_size: int,
    mode: str = "interleave",
    fabric: Optional[Fabric] = None,
) -> TrainResult:
    """Train with WeiPipe (``mode`` in {"interleave", "naive",
    "zero-bubble"}).

    ``zero-bubble`` is this repository's functional realisation of the
    paper's conceptual WZB schedules (§4.3): B passes on the critical
    path, W passes deferred one ring revolution to when the slot's
    gradient accumulator next passes through.

    Requires ``n_layers % world_size == 0`` and
    ``n_microbatches % world_size == 0`` (the paper's setting).
    """
    slot_chunk_ids(0, world_size, spec.cfg.n_layers)  # validates divisibility
    if spec.n_microbatches % world_size != 0:
        raise ValueError("n_microbatches must be divisible by world_size")
    results = run_workers(
        world_size, lambda comm: _worker(comm, spec, mode), fabric=fabric
    )
    peaks = {r.extra["rank"]: r.extra["peak_inflight"] for r in results}
    pending = {r.extra["rank"]: r.extra["peak_pending_w"] for r in results}
    return TrainResult(
        losses=results[0].losses,
        chunks=results[0].chunks,
        extra={"peak_inflight": peaks, "peak_pending_w": pending},
    )
