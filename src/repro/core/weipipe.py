"""The WeiPipe worker engine: weight rings on the functional runtime.

This is the paper's contribution, implemented on the message-passing
substrate.  Every worker keeps *its own microbatches* resident — their
activations never leave the worker — while the weights rotate past:

* Each turn the worker receives three payloads from its ring
  predecessor: a forward-flow weight slot, a backward-flow weight slot
  and the gradient accumulator ``D`` riding with it (the paper's
  ``2 W + 1 D = 36 H^2`` per-turn volume for Llama layers).
* The schedule (:mod:`repro.core.schedule`) says what to compute with
  them: forward some slot of a new microbatch, fused-backward some slot
  of an old one, or just pass the cargo on (a bubble).
* Backward contributions are accumulated *into the circulating D*
  (quantised to the wire format each hop), replacing DP's all-reduce —
  the "update pass" of Section 3.
* After the final turn every slot is back at its home; the worker that
  owns a slot (holds its optimizer state, which never travels) applies
  the update and re-injects fresh weights into both flows for the next
  iteration.

Two ring engines share the schedule and compute code (DESIGN.md §10):

* the **overlap** engine (default) double-buffers the wire the way the
  paper's ``batch_isend_irecv`` prefetch does: next-turn receives are
  posted and the held W slots forwarded *before* this turn's compute, so
  the only wire wait left on the critical path is the consume point.
  Slots are arena-backed (:class:`~repro.nn.params.ParamStruct`), and a
  fabric-wide :class:`~repro.nn.params.BufferPool` recycles weight
  buffers so the steady-state turn allocates nothing;
* the **sync** engine (``overlap=False``) is the pre-overlap ring —
  blocking recv, compute, send — kept as the honest baseline the
  ``bench-overlap`` harness compares against.

Numerical contract: identical losses and final weights as
:func:`repro.parallel.serial.train_serial` (exact in fp32/fp64 policies
up to accumulation order) — enforced by ``tests/integration`` for both
engines.
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.checkpoint import CheckpointedChunk
from ..nn import functional as F
from ..nn.params import BufferPool, ParamStruct
from ..nn.precision import is_exact
from ..optim.optimizer import clone_opt_state
from ..parallel.common import (
    TrainResult,
    TrainSpec,
    microbatch,
    pre_update,
    quantize_grads,
    quantize_grads_,
)
from ..runtime import Communicator, Fabric, all_gather, run_workers
from .schedule import (
    TurnTask,
    bwd_slot_held,
    fwd_home,
    fwd_slot_held,
    interleave_schedule,
    naive_schedule,
    slot_owner,
    zero_bubble_schedule,
)

__all__ = ["train_weipipe", "weipipe_step", "slot_chunk_ids"]

SlotWeights = Dict[int, ParamStruct]  # chunk id -> weights


def slot_chunk_ids(slot: int, world: int, n_layers: int) -> List[int]:
    """Chunk indices carried by ``slot`` (contiguous, ``L/P`` per slot)."""
    if n_layers % world != 0:
        raise ValueError("n_layers must be divisible by world size")
    per = n_layers // world
    return list(range(slot * per, (slot + 1) * per))


class _MicrobatchState:
    """Everything a worker keeps for one in-flight microbatch."""

    __slots__ = ("x", "dy", "targets", "fwd_states", "loss")

    def __init__(self, tokens: np.ndarray, targets: np.ndarray):
        self.x: Optional[np.ndarray] = tokens
        self.dy: Optional[np.ndarray] = None
        self.targets = targets
        self.fwd_states: Dict[int, tuple] = {}
        self.loss: Optional[float] = None


class _WeiPipeWorker:
    #: whether received slots may be recycled once replaced (wire-copies
    #: transports only); the hierarchical subclass opts out because its
    #: gateway cache serves received slot objects all iteration.
    _retire_slots = True

    def __init__(self, comm: Communicator, spec: TrainSpec, mode: str,
                 dp_comm: Optional[Communicator] = None,
                 overlap: bool = True):
        self.comm = comm
        #: replica group for 2-D hybrids (repro.core.hybrid): the owners
        #: of the same slot across data-parallel rings sync D here.
        self.dp_comm = dp_comm
        self.spec = spec
        self.cfg = spec.cfg
        self.rank = comm.rank
        self.world = comm.world_size
        self.mode = mode
        self.overlap = overlap
        #: weight-buffer recycler, shared by all ranks of the fabric so a
        #: slot released at its owner's update is reused by the next
        #: inject — the zero-allocation steady state the benchmark gates.
        self.pool: Optional[BufferPool] = (
            comm.fabric.shared_pool(BufferPool) if overlap else None
        )
        self.last_slot = self.world - 1
        self.cos, self.sin = spec.rope()
        self.ck = CheckpointedChunk(self.cfg, recompute=spec.recompute)
        self.q_act = spec.precision.q_act
        self.q_bgrad = spec.precision.q_act_grad
        self.w_wire = spec.precision.weight_bytes
        self.d_wire = spec.precision.weight_grad_bytes
        self.scale = 1.0 / spec.n_microbatches
        #: identity wire format for D => skip the quantise round trips.
        self._d_exact = is_exact(spec.precision.weight_grads, self.cfg.dtype)

        chunks_all = spec.init_chunks()

        # flow holdings at turn 0 (see schedule.py for the placement law).
        self.fwd_slot: SlotWeights = self._slot_view(chunks_all, self._initial_fwd_slot())
        self.bwd_slot: SlotWeights = self._slot_view(chunks_all, self._initial_bwd_slot())
        self.grad_slot: SlotWeights = {
            i: w.zeros_like(self.pool) for i, w in self.bwd_slot.items()
        }

        # this worker owns the slot whose backward flow starts here: its
        # optimizer state stays put for the whole training run.
        self.owned_slot = (self.rank - 1) % self.world
        self.opt = spec.make_optimizer()
        owned_ids = slot_chunk_ids(self.owned_slot, self.world, self.cfg.n_layers)
        if spec.initial_opt_state is not None:
            if len(spec.initial_opt_state) != self.cfg.n_layers:
                raise ValueError(
                    f"initial_opt_state has {len(spec.initial_opt_state)} "
                    f"entries, expected {self.cfg.n_layers}"
                )
            self.opt_states = {
                i: clone_opt_state(spec.initial_opt_state[i]) for i in owned_ids
            }
        else:
            self.opt_states = {
                i: self.opt.init_state(chunks_all[i]) for i in owned_ids
            }

        self.inflight: Dict[int, _MicrobatchState] = {}
        self.losses_by_mb: Dict[int, float] = {}
        self.peak_inflight = 0
        # zero-bubble mode: (mb, chunk id) -> (cache, wcache) between the
        # B pass and its deferred W pass one ring revolution later.
        self.pending_w: Dict[tuple, tuple] = {}
        self.peak_pending_w = 0
        # telemetry: this rank's timeline buffer plus wire-wait/compute
        # histograms and turn counters on the fabric's metrics registry.
        # Handles carry a rank label, so each has exactly one writer.
        self.trace = comm.trace
        m = comm.fabric.metrics
        self._h_wire = m.histogram("weipipe_wire_wait_seconds", rank=self.rank)
        self._h_compute = m.histogram("weipipe_compute_seconds", rank=self.rank)
        self._m_turns = m.counter("weipipe_turns_total", rank=self.rank)
        self._m_idle_turns = m.counter("weipipe_idle_turns_total", rank=self.rank)
        self.pool_allocs_by_iter: List[int] = []
        # hybrid mode: chunk id -> preallocated all-reduce pack buffer.
        self._dp_flat: Dict[int, np.ndarray] = {}
        # overlap mode: when set, _accumulate_grad stashes (chunk id, g)
        # here instead of adding into grad_slot, so the circulating D can
        # arrive *after* the backward compute (see _ring_turns_overlap).
        self._deferred: Optional[List[Tuple[int, ParamStruct]]] = None
        # wire-copies transports (the shm process backend) deliver fresh
        # buffers every hop, so a replaced slot is garbage unless retired
        # into the pool.  The hierarchical worker opts out: its gateway
        # cache keeps serving received slot objects for the whole
        # iteration (_retire_slots = False there).
        self._wire_copies = (
            self._retire_slots
            and self.pool is not None
            and bool(getattr(comm.fabric, "wire_copies", False))
        )
        # F slots cannot be recycled at replacement: forward caches hold
        # views into their weights (the norm gains read again by each
        # microbatch's backward), so retired F slots park here until the
        # update pass, by which point every backward has consumed them.
        self._retired_fwd: List[SlotWeights] = []

    # -- helpers ---------------------------------------------------------------

    def _initial_fwd_slot(self) -> int:
        return (-self.rank) % self.world  # fwd_home(j) == rank  <=>  j == -rank

    def _initial_bwd_slot(self) -> int:
        return (self.rank - 1) % self.world

    def _clone_chunk(self, c: ParamStruct) -> ParamStruct:
        if self.pool is not None and c.common_dtype is not None:
            return c.clone(self.pool)
        return c.clone()

    def _slot_view(self, chunks_all: List[ParamStruct], slot: int) -> SlotWeights:
        return {
            i: self._clone_chunk(chunks_all[i])
            for i in slot_chunk_ids(slot, self.world, self.cfg.n_layers)
        }

    def _slot_nbytes(self, slot: SlotWeights, wire: int) -> int:
        return sum(w.numel for w in slot.values()) * wire

    # -- weight-flow transport hooks -------------------------------------------
    # Both ring engines move the F/B weight slots exclusively through this
    # pair, so a subclass can substitute the payload on selected hops (the
    # hierarchical ring sends cache references across group boundaries)
    # without touching the schedule, the tags, or the D accumulator path.

    def _send_wslot(self, flow: str, slot: SlotWeights, it: int, turn: int) -> None:
        """Forward one weight-flow slot to the right neighbour as tag
        ``(flow, it, turn)``.  Sends are buffered, so this one method
        serves both the sync and the overlap engine."""
        self.comm.send(
            slot, self.comm.right, (flow, it, turn),
            nbytes=self._slot_nbytes(slot, self.w_wire),
        )

    def _resolve_wslot(self, flow: str, payload, it: int, turn: int) -> SlotWeights:
        """Turn a received weight-flow payload (tag ``(flow, it, turn)``)
        into the slot dict the compute code reads."""
        return payload

    def _retire_wslot(self, flow: str, slot: SlotWeights) -> None:
        """Recycle a slot replaced by a newly received one.

        Only meaningful on wire-copies transports: an in-process fabric
        delivers by reference (the 'replaced' slot IS the neighbour's
        live object), so this is a no-op there.  B and D slots have no
        outstanding readers once replaced — their sends fully serialized
        before returning, and backward caches hold no B-weight views —
        and are released immediately; F slots are parked until the
        update pass (see ``_retired_fwd``).
        """
        if not self._wire_copies:
            return
        if flow == "F":
            self._retired_fwd.append(slot)
        else:
            self._release_slot(slot)

    def _release_slot(self, slot: SlotWeights) -> None:
        """Return a slot's arenas to the pool.

        Only legal once no rank can still read them: the caller must have
        waited this iteration's final D, which the predecessor sends
        strictly after its last compute on the objects it forwarded
        (DESIGN.md §10).
        """
        if self.pool is None:
            return
        for w in slot.values():
            a = w.arena
            if a is not None:
                self.pool.release(a)

    def release_buffers(self) -> None:
        """Recycle the fwd/grad slot arenas (end of a step-scoped worker;
        the bwd slots escape as the returned canonical state)."""
        self._release_slot(self.fwd_slot)
        self._release_slot(self.grad_slot)

    # -- compute ---------------------------------------------------------------

    def _forward_slot(self, it: int, slot: int, mb: int) -> None:
        ids = slot_chunk_ids(slot, self.world, self.cfg.n_layers)
        if slot == 0:
            tokens, targets = microbatch(self.spec, it, mb)
            self.inflight[mb] = _MicrobatchState(tokens, targets)
            self.peak_inflight = max(self.peak_inflight, len(self.inflight))
        state = self.inflight[mb]
        x = state.x
        for i in ids:
            w = self.fwd_slot[i]
            x, st = self.ck.fwd(i, w, x, self.cos, self.sin)
            x = self.q_act(x)
            state.fwd_states[i] = st
        state.x = x
        if slot == self.last_slot:
            loss, c_loss = F.cross_entropy_fwd(x, state.targets)
            state.loss = loss
            self.losses_by_mb[mb] = loss
            state.dy = F.cross_entropy_bwd(1.0, c_loss)
            state.x = None  # logits no longer needed

    def _accumulate_grad(self, i: int, g: ParamStruct) -> None:
        """Add one chunk contribution into the circulating D at wire
        precision: the running sum itself lives in the (emulated) fp16
        buffer."""
        if self._deferred is not None:
            # overlap engine, mid-turn: the circulating D has not been
            # waited for yet.  Park the contribution; the turn loop adds
            # it (through this same method) once D lands.  Chunk sums are
            # independent, and draining preserves call order, so the
            # values are bit-identical to accumulating right here.
            self._deferred.append((i, g))
            return
        if self.overlap:
            # same values as the sync path, without the per-turn struct
            # rebuilds: g is scratch so it is quantised in place, and the
            # identity formats (fp32/fp64 policies) skip the round trips.
            if not self._d_exact:
                quantize_grads_(g, self.spec.precision)
            self.grad_slot[i].add_(g, scale=self.scale)
            if not self._d_exact:
                quantize_grads_(self.grad_slot[i], self.spec.precision)
            return
        self.grad_slot[i].add_(
            quantize_grads(g, self.spec.precision), scale=self.scale
        )
        self.grad_slot[i] = quantize_grads(self.grad_slot[i], self.spec.precision)

    def _backward_slot(self, it: int, slot: int, mb: int) -> None:
        """Fused backward (Naive/Interleave modes)."""
        ids = slot_chunk_ids(slot, self.world, self.cfg.n_layers)
        state = self.inflight[mb]
        dy = state.dy
        for i in reversed(ids):
            w = self.bwd_slot[i]
            dy, g = self.ck.bwd(i, w, dy, state.fwd_states.pop(i))
            if dy is not None:
                dy = self.q_bgrad(dy)
            self._accumulate_grad(i, g)
        state.dy = dy
        if slot == 0:
            del self.inflight[mb]  # microbatch fully retired

    def _b_pass_slot(self, it: int, slot: int, mb: int) -> None:
        """Zero-bubble B pass: input grads now, weight grads deferred."""
        ids = slot_chunk_ids(slot, self.world, self.cfg.n_layers)
        state = self.inflight[mb]
        dy = state.dy
        for i in reversed(ids):
            w = self.bwd_slot[i]
            dy, cache, wcache = self.ck.bwd_input(i, w, dy, state.fwd_states.pop(i))
            if dy is not None:
                dy = self.q_bgrad(dy)
            self.pending_w[(mb, i)] = (cache, wcache)
        self.peak_pending_w = max(self.peak_pending_w, len(self.pending_w))
        state.dy = dy
        if slot == 0:
            del self.inflight[mb]

    def _w_pass_slot(self, it: int, slot: int, mb: int) -> None:
        """Zero-bubble W pass: runs when the slot's D comes around again."""
        for i in slot_chunk_ids(slot, self.world, self.cfg.n_layers):
            cache, wcache = self.pending_w.pop((mb, i))
            g = self.ck.bwd_weight(i, cache, wcache)
            self._accumulate_grad(i, g)

    def _check_slot(self, kind: str, slot: int, expected: int) -> None:
        if slot != expected:
            raise AssertionError(
                f"schedule/flow mismatch: {kind} slot {slot} but holding {expected}"
            )

    def _run_bwd(self, it: int, slot: int, mb: int) -> None:
        if self.mode == "zero-bubble":
            self._b_pass_slot(it, slot, mb)
        else:
            self._backward_slot(it, slot, mb)

    # -- the turn loop -----------------------------------------------------------

    def run_iteration(self, it: int) -> float:
        if not self.trace.enabled:
            return self._run_iteration(it)
        t0 = perf_counter()
        loss = self._run_iteration(it)
        self.trace.complete(
            "iteration", "iteration", t0, perf_counter() - t0, {"it": it}
        )
        return loss

    def _run_iteration(self, it: int) -> float:
        if self.mode == "interleave":
            total, task_fn = interleave_schedule(self.world, self.spec.n_microbatches)
        elif self.mode == "naive":
            total, task_fn = naive_schedule(self.world, self.spec.n_microbatches)
        elif self.mode == "zero-bubble":
            total, task_fn = zero_bubble_schedule(self.world, self.spec.n_microbatches)
        else:
            raise ValueError(f"unknown WeiPipe mode {self.mode!r}")

        if self.overlap:
            self._ring_turns_overlap(it, total, task_fn)
        else:
            self._ring_turns_sync(it, total, task_fn)

        u0 = perf_counter()
        self._update_pass(it)
        if self.trace.enabled:
            self.trace.complete(
                "update", "compute", u0, perf_counter() - u0, {"it": it}
            )

        losses = all_gather(self.comm, dict(self.losses_by_mb), tag=("wp-loss", it))
        self.losses_by_mb.clear()
        if self.pool is not None:
            # post-gather: every rank's update pass (and its pool traffic)
            # for this iteration is complete, so the counter is a clean
            # per-iteration snapshot for the allocation-regression gate.
            self.pool_allocs_by_iter.append(self.pool.allocations)
            pool = self.pool.as_dict()
            m = self.comm.fabric.metrics
            for key in ("allocations", "hits", "misses"):
                m.gauge(f"pool_{key}").set(pool[key])
            if self.trace.enabled:
                self.trace.counter("pool_allocations", pool["allocations"])
        merged: Dict[int, float] = {}
        for d in losses:
            merged.update(d)
        return sum(merged.values()) / self.spec.n_microbatches

    def _ring_turns_sync(self, it: int, total: int, task_fn) -> None:
        """Pre-overlap engine: blocking recv, compute, send, every turn."""
        left, right = self.comm.left, self.comm.right
        pc = perf_counter
        tr = self.trace
        traced = tr.enabled
        for t in range(total):
            tt0 = pc()
            if t > 0:
                t0 = pc()
                old_f, old_b, old_d = self.fwd_slot, self.bwd_slot, self.grad_slot
                self.fwd_slot = self._resolve_wslot(
                    "F", self.comm.recv(left, ("F", it, t)), it, t)
                self.bwd_slot = self._resolve_wslot(
                    "B", self.comm.recv(left, ("B", it, t)), it, t)
                self.grad_slot = self.comm.recv(left, ("D", it, t))
                self._retire_wslot("F", old_f)
                self._retire_wslot("B", old_b)
                self._retire_wslot("D", old_d)
                dt = pc() - t0
                self._h_wire.observe(dt)
                if traced:
                    tr.complete("wait:slots", "wire", t0, dt, {"turn": t})

            task: TurnTask = task_fn(self.rank, t)
            if task.fwd is not None:
                slot, mb = task.fwd
                self._check_slot("fwd", slot, fwd_slot_held(self.rank, t, self.world))
                c0 = pc()
                self._forward_slot(it, slot, mb)
                dt = pc() - c0
                self._h_compute.observe(dt)
                if traced:
                    tr.complete("F", "compute", c0, dt,
                                {"turn": t, "slot": slot, "mb": mb})
            if task.bwd is not None:
                slot, mb = task.bwd
                self._check_slot("bwd", slot, bwd_slot_held(self.rank, t, self.world))
                c0 = pc()
                self._run_bwd(it, slot, mb)
                dt = pc() - c0
                self._h_compute.observe(dt)
                if traced:
                    tr.complete("B", "compute", c0, dt,
                                {"turn": t, "slot": slot, "mb": mb})
            if task.wpass is not None:
                slot, mb = task.wpass
                # the flow loops every P turns
                self._check_slot("wpass", slot, bwd_slot_held(self.rank, t, self.world))
                c0 = pc()
                self._w_pass_slot(it, slot, mb)
                dt = pc() - c0
                self._h_compute.observe(dt)
                if traced:
                    tr.complete("W", "compute", c0, dt,
                                {"turn": t, "slot": slot, "mb": mb})

            self._send_wslot("F", self.fwd_slot, it, t + 1)
            self._send_wslot("B", self.bwd_slot, it, t + 1)
            self.comm.send(
                self.grad_slot, right, ("D", it, t + 1),
                nbytes=self._slot_nbytes(self.grad_slot, self.d_wire),
            )
            self._m_turns.add(1)
            if task.idle:
                self._m_idle_turns.add(1)
            if traced:
                tr.complete("turn", "turn", tt0, pc() - tt0,
                            {"turn": t, "idle": task.idle})

        # final hop brings every slot back to its home position.
        t0 = pc()
        old_f, old_b, old_d = self.fwd_slot, self.bwd_slot, self.grad_slot
        self.fwd_slot = self._resolve_wslot(
            "F", self.comm.recv(left, ("F", it, total)), it, total)
        self.bwd_slot = self._resolve_wslot(
            "B", self.comm.recv(left, ("B", it, total)), it, total)
        self.grad_slot = self.comm.recv(left, ("D", it, total))
        self._retire_wslot("F", old_f)
        self._retire_wslot("B", old_b)
        self._retire_wslot("D", old_d)
        dt = pc() - t0
        self._h_wire.observe(dt)
        if traced:
            tr.complete("wait:slots", "wire", t0, dt, {"turn": total})

    def _ring_turns_overlap(self, it: int, total: int, task_fn) -> None:
        """Double-buffered engine: post next-turn receives and forward the
        held W slots *before* computing, so the wire runs under compute.

        Waits sit only at the consume points: F/B at the top of the next
        turn, D just before the first gradient accumulation of this one.
        Per-turn send order stays F, B, D — the same per-rank message
        sequence as the sync engine, so traffic accounting and seeded
        chaos decisions line up across both.
        """
        comm = self.comm
        left, right = comm.left, comm.right
        pc = perf_counter
        tr = self.trace
        traced = tr.enabled
        nf = nb = nd = None  # posted receives for the next turn's slots
        for t in range(total):
            tt0 = pc()
            if t > 0:
                t0 = pc()
                old_f, old_b = self.fwd_slot, self.bwd_slot
                self.fwd_slot = self._resolve_wslot("F", nf.wait(), it, t)
                self.bwd_slot = self._resolve_wslot("B", nb.wait(), it, t)
                self._retire_wslot("F", old_f)
                self._retire_wslot("B", old_b)
                dt = pc() - t0
                self._h_wire.observe(dt)
                if traced:
                    tr.complete("wait:slots", "wire", t0, dt, {"turn": t})
            cur_d = nd
            nxt = t + 1
            nf = comm.irecv(left, ("F", it, nxt))
            nb = comm.irecv(left, ("B", it, nxt))
            nd = comm.irecv(left, ("D", it, nxt))
            self._send_wslot("F", self.fwd_slot, it, nxt)
            self._send_wslot("B", self.bwd_slot, it, nxt)

            task: TurnTask = task_fn(self.rank, t)
            if task.fwd is not None:
                slot, mb = task.fwd
                self._check_slot("fwd", slot, fwd_slot_held(self.rank, t, self.world))
                c0 = pc()
                self._forward_slot(it, slot, mb)
                dt = pc() - c0
                self._h_compute.observe(dt)
                if traced:
                    tr.complete("F", "compute", c0, dt,
                                {"turn": t, "slot": slot, "mb": mb})
            # Run the backward compute *before* waiting for the circulating
            # accumulator: local weight grads only have to be summed into D
            # after they exist, so the serial per-hop D chain carries just
            # wire + accumulate + send instead of the whole backward.  The
            # contributions are parked in _deferred meanwhile.
            self._deferred = deferred = []
            if task.bwd is not None:
                slot, mb = task.bwd
                self._check_slot("bwd", slot, bwd_slot_held(self.rank, t, self.world))
                c0 = pc()
                self._run_bwd(it, slot, mb)
                dt = pc() - c0
                self._h_compute.observe(dt)
                if traced:
                    tr.complete("B", "compute", c0, dt,
                                {"turn": t, "slot": slot, "mb": mb})
            if task.wpass is not None:
                slot, mb = task.wpass
                # the flow loops every P turns
                self._check_slot("wpass", slot, bwd_slot_held(self.rank, t, self.world))
                c0 = pc()
                self._w_pass_slot(it, slot, mb)
                dt = pc() - c0
                self._h_compute.observe(dt)
                if traced:
                    tr.complete("W", "compute", c0, dt,
                                {"turn": t, "slot": slot, "mb": mb})
            if cur_d is not None:
                # consume point of the circulating accumulator: its sender
                # posts D only after finishing the turn that read the
                # W slots it forwarded, so from here on those buffers (and
                # this D) are exclusively ours to mutate.
                t0 = pc()
                old_d = self.grad_slot
                self.grad_slot = cur_d.wait()
                self._retire_wslot("D", old_d)
                dt = pc() - t0
                self._h_wire.observe(dt)
                if traced:
                    tr.complete("wait:D", "wire", t0, dt, {"turn": t})
            self._deferred = None
            if deferred:
                c0 = pc()
                for i, g in deferred:
                    self._accumulate_grad(i, g)
                dt = pc() - c0
                self._h_compute.observe(dt)
                if traced:
                    tr.complete("accum", "compute", c0, dt, {"turn": t})

            comm.isend(
                self.grad_slot, right, ("D", it, nxt),
                nbytes=self._slot_nbytes(self.grad_slot, self.d_wire),
            )
            self._m_turns.add(1)
            if task.idle:
                self._m_idle_turns.add(1)
            if traced:
                tr.complete("turn", "turn", tt0, pc() - tt0,
                            {"turn": t, "idle": task.idle})

        # final hop brings every slot back to its home position.
        t0 = pc()
        old_f, old_b, old_d = self.fwd_slot, self.bwd_slot, self.grad_slot
        self.fwd_slot = self._resolve_wslot("F", nf.wait(), it, total)
        self.bwd_slot = self._resolve_wslot("B", nb.wait(), it, total)
        self.grad_slot = nd.wait()
        self._retire_wslot("F", old_f)
        self._retire_wslot("B", old_b)
        self._retire_wslot("D", old_d)
        dt = pc() - t0
        self._h_wire.observe(dt)
        if traced:
            tr.complete("wait:slots", "wire", t0, dt, {"turn": total})

    # -- update pass ----------------------------------------------------------

    def _update_pass(self, it: int) -> None:
        """Owner updates its slot and re-injects weights into both flows.

        The backward flow is home at the owner, so the update is local;
        the forward-flow copy lives at ``fwd_home`` and is refreshed with
        one extra P2P message (its peer is symmetric: worker ``p``
        exchanges with worker ``(1 - p) mod P``).
        """
        held_bwd = self._initial_bwd_slot()
        if held_bwd != self.owned_slot:  # pragma: no cover - invariant
            raise AssertionError("backward flow did not come home")

        if self.dp_comm is not None and self.dp_comm.world_size > 1:
            # hybrid mode: average the owned slot's D across replicas
            # (each replica accumulated its 1/dp share of microbatches).
            from ..runtime import all_reduce as _all_reduce

            dp = self.dp_comm.world_size
            for i, g in self.grad_slot.items():
                buf = self._dp_flat.get(i)
                if buf is None:
                    dtype = g.common_dtype
                    buf = self._dp_flat[i] = np.empty(
                        g.numel, dtype=dtype if dtype is not None else np.float64
                    )
                flat = _all_reduce(
                    self.dp_comm, g.pack_into(buf), tag=("wp-dp", it, i),
                    nbytes_per_element=self.d_wire,
                )
                flat /= dp
                old = self.grad_slot[i]
                self.grad_slot[i] = g.unpack_from(flat)
                if old is not self.grad_slot[i]:
                    self._release_slot({i: old})

        pre_update(
            self.spec, it, self.opt, list(self.grad_slot.values()),
            comm=self.comm, tag=("wp-clip", it),
        )
        for i, w in self.bwd_slot.items():
            self.opt.step(w, self.grad_slot[i], self.opt_states[i])
            self.grad_slot[i].zero_()

        target = fwd_home(self.owned_slot, self.world)
        old_fwd = self.fwd_slot
        if target == self.rank:
            self.fwd_slot = {i: self._clone_chunk(w) for i, w in self.bwd_slot.items()}
        else:
            inject = {i: self._clone_chunk(w) for i, w in self.bwd_slot.items()}
            self.comm.send(
                inject,
                target,
                ("inject", it),
                nbytes=self._slot_nbytes(self.bwd_slot, self.w_wire),
            )
            if self._wire_copies:
                # the receiver got its own copy off the wire; the local
                # clone served only serialization and is garbage now.
                self._release_slot(inject)
            source = slot_owner(self._initial_fwd_slot(), self.world)
            self.fwd_slot = self.comm.recv(source, ("inject", it))
        # the retired forward-flow copy is sole-owned here (the final D
        # wait proved its last reader finished) — recycle it.
        self._release_slot(old_fwd)
        if self._retired_fwd:
            # wire-copies mode: every backward (and deferred W pass) that
            # could read a parked F slot's weights has run by now.
            for slot in self._retired_fwd:
                self._release_slot(slot)
            self._retired_fwd.clear()


def weipipe_step(
    comm: Communicator,
    spec: TrainSpec,
    iteration: int,
    chunks: List[ParamStruct],
    opt_states: List[Dict],
    mode: str = "interleave",
    overlap: bool = True,
) -> Tuple[float, List[ParamStruct], List[Dict]]:
    """One WeiPipe iteration from explicit full (replicated) state.

    The step-boundary entry point used by elastic recovery
    (:mod:`repro.parallel.elastic`): spin up a worker whose flows and
    owned optimizer state are seeded from ``chunks``/``opt_states``, run
    one ring iteration, then all-gather every owner's updated slot so
    each rank returns the complete ``(loss, chunks, states)``.  Inputs
    are cloned (by the worker's init path), never mutated, and chaining
    steps is bit-identical to a persistent-worker run — the flows a
    fresh worker builds from the updated chunks are exactly what
    ``_update_pass`` left in circulation.
    """
    step_spec = replace(
        spec,
        iters=1,
        start_iteration=spec.start_iteration + iteration,
        initial_chunks=chunks,
        initial_opt_state=opt_states,
    )
    w = _WeiPipeWorker(comm, step_spec, mode, overlap=overlap)
    loss = w.run_iteration(0)
    if w.pending_w:  # pragma: no cover - invariant
        raise AssertionError("deferred W passes left undone at step boundary")
    owned = {i: (w.bwd_slot[i], w.opt_states[i]) for i in w.opt_states}
    gathered = all_gather(comm, owned, tag=("wp-state", iteration))
    merged: Dict[int, tuple] = {}
    for d in gathered:
        merged.update(d)
    new_chunks = [merged[i][0] for i in range(spec.cfg.n_layers)]
    new_states = [merged[i][1] for i in range(spec.cfg.n_layers)]
    # the gather is a step-boundary barrier: the worker's fwd/grad slots
    # have no readers left anywhere, so their buffers go back to the
    # fabric's pool for the next step's worker.
    w.release_buffers()
    return loss, new_chunks, new_states


def _worker(comm: Communicator, spec: TrainSpec, mode: str, overlap: bool) -> TrainResult:
    w = _WeiPipeWorker(comm, spec, mode, overlap=overlap)
    losses = [w.run_iteration(it) for it in range(spec.iters)]
    # report final weights: gather every worker's owned (updated) slot.
    owned = {i: w.bwd_slot[i] for i in w.opt_states}
    gathered = all_gather(comm, owned, tag=("wp-final",))
    merged: Dict[int, ParamStruct] = {}
    for d in gathered:
        merged.update(d)
    chunks = [merged[i] for i in range(spec.cfg.n_layers)]
    if w.pending_w:  # pragma: no cover - invariant
        raise AssertionError("deferred W passes left undone at exit")
    return TrainResult(
        losses=losses,
        chunks=chunks,
        extra={
            "rank": w.rank,
            "peak_inflight": w.peak_inflight,
            "peak_pending_w": w.peak_pending_w,
            # back-compat totals; the registry histograms are canonical.
            "wire_wait_s": w._h_wire.total,
            "compute_s": w._h_compute.total,
            "pool_allocs_by_iter": list(w.pool_allocs_by_iter),
        },
    )


def train_weipipe(
    spec: TrainSpec,
    world_size: int,
    mode: str = "interleave",
    fabric: Optional[Fabric] = None,
    overlap: bool = True,
) -> TrainResult:
    """Train with WeiPipe (``mode`` in {"interleave", "naive",
    "zero-bubble"}).

    ``zero-bubble`` is this repository's functional realisation of the
    paper's conceptual WZB schedules (§4.3): B passes on the critical
    path, W passes deferred one ring revolution to when the slot's
    gradient accumulator next passes through.

    ``overlap`` selects the ring engine: double-buffered nonblocking
    turns with pooled arena buffers (default), or the synchronous
    pre-overlap ring (the ``bench-overlap`` baseline).  Both are
    bit-identical in results.

    Requires ``n_layers % world_size == 0`` and
    ``n_microbatches % world_size == 0`` (the paper's setting).
    """
    slot_chunk_ids(0, world_size, spec.cfg.n_layers)  # validates divisibility
    if spec.n_microbatches % world_size != 0:
        raise ValueError("n_microbatches must be divisible by world_size")
    results = run_workers(
        world_size, lambda comm: _worker(comm, spec, mode, overlap), fabric=fabric
    )
    peaks = {r.extra["rank"]: r.extra["peak_inflight"] for r in results}
    pending = {r.extra["rank"]: r.extra["peak_pending_w"] for r in results}
    return TrainResult(
        losses=results[0].losses,
        chunks=results[0].chunks,
        extra={
            "peak_inflight": peaks,
            "peak_pending_w": pending,
            "wire_wait_s": {r.extra["rank"]: r.extra["wire_wait_s"] for r in results},
            "compute_s": {r.extra["rank"]: r.extra["compute_s"] for r in results},
            "pool_allocs_by_iter": results[0].extra["pool_allocs_by_iter"],
        },
    )
