"""High-level training API: one entry point, every strategy by name.

>>> from repro import ModelConfig, TrainSpec, train
>>> spec = TrainSpec(cfg=ModelConfig(hidden=32, n_layers=4, n_heads=2,
...                                  seq_len=16, vocab=64),
...                  n_microbatches=8)
>>> result = train(spec, strategy="weipipe-interleave", world_size=4)
>>> result.losses  # doctest: +SKIP

All strategies train the identical problem defined by the
:class:`~repro.parallel.common.TrainSpec` and return a
:class:`~repro.parallel.common.TrainResult`; swapping the strategy
string must not change the numbers (see ``tests/integration``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..parallel.common import TrainResult, TrainSpec
from ..parallel.data_parallel import train_data_parallel
from ..parallel.fsdp import train_fsdp
from ..parallel.pipeline import train_pipeline
from ..parallel.pipeline_zb import train_pipeline_zb
from ..parallel.serial import train_serial
from ..parallel.sequence_parallel import train_sequence_parallel
from ..parallel.tensor_parallel import train_tensor_parallel
from ..parallel.weipipe_hier import train_weipipe_hier
from ..runtime import Fabric
from .weipipe import train_weipipe

__all__ = ["train", "STRATEGIES", "strategy_names"]


def _serial(spec: TrainSpec, world: int, fabric: Optional[Fabric]) -> TrainResult:
    if world != 1:
        raise ValueError("serial strategy runs on exactly one worker")
    return train_serial(spec)


STRATEGIES: Dict[str, Callable[[TrainSpec, int, Optional[Fabric]], TrainResult]] = {
    "serial": _serial,
    "dp": lambda s, w, f: train_data_parallel(s, w, fabric=f),
    "fsdp": lambda s, w, f: train_fsdp(s, w, fabric=f),
    "gpipe": lambda s, w, f: train_pipeline(s, w, schedule="gpipe", fabric=f),
    "1f1b": lambda s, w, f: train_pipeline(s, w, schedule="1f1b", fabric=f),
    "zb1": lambda s, w, f: train_pipeline_zb(s, w, variant="zb1", fabric=f),
    "zb2": lambda s, w, f: train_pipeline_zb(s, w, variant="zb2", fabric=f),
    "tp": lambda s, w, f: train_tensor_parallel(s, w, fabric=f),
    "sp": lambda s, w, f: train_sequence_parallel(s, w, fabric=f),
    "weipipe-naive": lambda s, w, f: train_weipipe(s, w, mode="naive", fabric=f),
    "weipipe-zb": lambda s, w, f: train_weipipe(s, w, mode="zero-bubble", fabric=f),
    "weipipe-interleave": lambda s, w, f: train_weipipe(
        s, w, mode="interleave", fabric=f
    ),
    # two-level ring; group layout comes from the fabric's topology when
    # it has one, else the default grid (see weipipe_hier.default_groups).
    "weipipe-hier": lambda s, w, f: train_weipipe_hier(s, w, fabric=f),
}


def strategy_names() -> list:
    """All registered strategy names."""
    return sorted(STRATEGIES)


def train(
    spec: TrainSpec,
    strategy: str = "weipipe-interleave",
    world_size: int = 1,
    fabric: Optional[Fabric] = None,
    backend: Optional[str] = None,
) -> TrainResult:
    """Train ``spec`` with the named strategy on ``world_size`` workers.

    Pass a pre-built :class:`~repro.runtime.Fabric` to inspect traffic
    statistics afterwards (thread backend), or ``backend="process"`` to
    fork one worker process per rank over shared memory — every strategy
    is transport-agnostic, and results are bit-exact across backends.
    """
    try:
        fn = STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {strategy_names()}"
        ) from None
    if backend is not None and backend != "thread":
        if fabric is not None:
            raise ValueError("pass either fabric= or backend=, not both")
        # a Transport rides the fabric= plumbing: every train_* forwards
        # it to run_workers, whose resolver accepts transports there.
        from ..runtime import resolve_transport

        fabric = resolve_transport(None, backend)
    return fn(spec, world_size, fabric)
