"""Turn schedules for the WeiPipe weight ring (Figures 1 and 2).

WeiPipe arranges ``P`` workers on a ring around which ``P`` *slots* of
weights rotate, one hop per *turn*.  A slot holds ``L / P`` consecutive
layer chunks.  Two weight flows circulate simultaneously (the paper's
circle diagrams show them as the two halves of the ring):

* the **forward flow** — slot ``j`` starts at worker ``(-j) mod P`` so
  that worker ``p`` meets slot 0 at turn ``p``, slot 1 at ``p+1``, ...
* the **backward flow** — slot ``j`` starts at worker ``(j+1) mod P`` so
  that slots arrive in *reverse* order exactly when a worker needs them
  for backpropagation.  Weight-gradient accumulators (``D``) ride with
  the backward flow, which is also why worker ``(j+1) mod P`` is the
  natural *owner* of slot ``j``: the fully accumulated ``D_j`` is parked
  there when the iteration ends.

Both flows move in the same direction (worker ``p`` -> ``p+1``), so the
invariant positions at turn ``t`` are::

    forward slot held by worker p:  (t - p) mod P
    backward slot held by worker p: (p - 1 - t) mod P

The schedule functions below say *what to compute* with those slots:

* :func:`naive_schedule` (Fig. 1) — rounds of ``P`` microbatches run
  strictly one after another: all-forward then all-backward, one flow
  idle at any time.  Simple, but a full extra weight flow is shipped
  without being used and the forward phase stalls behind the 2x-long
  backward phase.
* :func:`interleave_schedule` (Fig. 2) — in steady state every worker
  computes one forward (of the *next* round's microbatch, using the
  forward flow) and one backward (of the previous round's, using the
  backward flow) per turn, so both flows are busy every turn and the
  only bubbles are the pipeline fill/drain ramps.

Total turns are padded to a multiple of ``P`` so every slot finishes at
its home worker, where the update pass runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

__all__ = [
    "TurnTask",
    "fwd_home",
    "bwd_home",
    "slot_owner",
    "fwd_slot_held",
    "bwd_slot_held",
    "naive_schedule",
    "interleave_schedule",
    "zero_bubble_schedule",
]


@dataclass(frozen=True)
class TurnTask:
    """What one worker computes during one turn.

    Each entry is ``(slot index, microbatch index)`` or ``None``.
    ``bwd`` is a fused backward in the Naive/Interleave schedules and a
    *B pass* in the zero-bubble schedule, where the matching W pass
    appears as ``wpass`` one full ring revolution later.
    """

    fwd: Optional[Tuple[int, int]] = None
    bwd: Optional[Tuple[int, int]] = None
    wpass: Optional[Tuple[int, int]] = None

    @property
    def idle(self) -> bool:
        return self.fwd is None and self.bwd is None and self.wpass is None


def fwd_home(slot: int, world: int) -> int:
    """Initial (and final) worker of ``slot`` on the forward flow."""
    return (-slot) % world


def bwd_home(slot: int, world: int) -> int:
    """Initial (and final) worker of ``slot`` on the backward flow."""
    return (slot + 1) % world


def slot_owner(slot: int, world: int) -> int:
    """Worker holding optimizer state for ``slot`` — its backward home,
    where the accumulated weight gradient parks at iteration end."""
    return bwd_home(slot, world)


def fwd_slot_held(worker: int, turn: int, world: int) -> int:
    """Which forward-flow slot ``worker`` holds during ``turn``."""
    return (turn - worker) % world


def bwd_slot_held(worker: int, turn: int, world: int) -> int:
    """Which backward-flow slot ``worker`` holds during ``turn``."""
    return (worker - 1 - turn) % world


ScheduleFn = Callable[[int, int], TurnTask]


def naive_schedule(world: int, n_microbatches: int) -> Tuple[int, ScheduleFn]:
    """WeiPipe-Naive (Fig. 1): strictly sequential rounds.

    Each round handles ``P`` microbatches (one per worker) in ``3P``
    turns: worker ``p`` forwards at local turns ``p .. p+P-1`` and
    backwards at ``p+P .. p+2P-1``; the remaining turns are the bubble.
    Returns ``(total_turns, task_fn)``.
    """
    p_ = world
    if n_microbatches % p_ != 0:
        raise ValueError("n_microbatches must be divisible by world size")
    rounds = n_microbatches // p_
    round_len = 3 * p_  # 3P-2 turns of work, padded to a multiple of P
    total = rounds * round_len

    def task(worker: int, turn: int) -> TurnTask:
        if not (0 <= turn < total):
            return TurnTask()
        r, t = divmod(turn, round_len)
        mb = r * p_ + worker
        if worker <= t <= worker + p_ - 1:
            return TurnTask(fwd=(t - worker, mb))
        if worker + p_ <= t <= worker + 2 * p_ - 1:
            return TurnTask(bwd=((worker - t - 1) % p_, mb))
        return TurnTask()

    return total, task


def interleave_schedule(world: int, n_microbatches: int) -> Tuple[int, ScheduleFn]:
    """WeiPipe-Interleave (Fig. 2): overlapped rounds.

    Worker ``p`` forwards microbatch ``rP + p`` during turns
    ``rP+p .. (r+1)P+p-1`` while backwarding microbatch ``(r-1)P + p``;
    the forward consumes the forward flow in layer order while the
    backward consumes the backward flow in reverse layer order.  Fill
    (first round: no backward) and drain (last round: no forward) are
    the only idle stretches.  Returns ``(total_turns, task_fn)``.
    """
    p_ = world
    if n_microbatches % p_ != 0:
        raise ValueError("n_microbatches must be divisible by world size")
    rounds = n_microbatches // p_
    total = (rounds + 2) * p_  # covers worker P-1's drain, multiple of P

    def task(worker: int, turn: int) -> TurnTask:
        if not (0 <= turn < total):
            return TurnTask()
        rel = turn - worker
        if rel < 0:
            return TurnTask()  # pipeline fill: slot 0 has not arrived yet
        q, f = divmod(rel, p_)
        fwd = (f, q * p_ + worker) if q <= rounds - 1 else None
        bwd = (p_ - 1 - f, (q - 1) * p_ + worker) if 1 <= q <= rounds else None
        return TurnTask(fwd=fwd, bwd=bwd)

    return total, task


def zero_bubble_schedule(world: int, n_microbatches: int) -> Tuple[int, ScheduleFn]:
    """Functional WeiPipe-zero-bubble (the paper's §4.3 left unimplemented).

    The interleave schedule with the backward *split*: each turn's
    ``bwd`` entry is only the B pass (activation gradients — the
    critical-path half that unblocks the local backward chain), and the
    matching W pass is deferred exactly one full ring revolution, to the
    next time the same backward-flow slot — and the gradient accumulator
    ``D`` riding with it — passes through the worker::

        wpass(p, t) == bwd(p, t - P)

    The slot alignment is automatic: the backward slot held at turn
    ``t`` equals the one held at ``t - P`` (the flow rotates one full
    loop in ``P`` turns), so the deferred W pass always finds its ``D``
    on hand.  One extra revolution is appended so the final round's W
    passes can ride before the update.  Returns ``(total_turns,
    task_fn)``.
    """
    p_ = world
    inner_total, inner = interleave_schedule(world, n_microbatches)
    total = inner_total + p_  # one extra revolution flushes deferred Ws

    def task(worker: int, turn: int) -> TurnTask:
        if not (0 <= turn < total):
            return TurnTask()
        base = inner(worker, turn)
        deferred = inner(worker, turn - p_).bwd if turn >= p_ else None
        return TurnTask(fwd=base.fwd, bwd=base.bwd, wpass=deferred)

    return total, task
