"""Checkpointing: durable save/load of weights, optimizer and cursor.

A checkpoint is a single ``.npz`` holding every chunk's tensors (keys
``chunk{i}/{name}``), a JSON-encoded :class:`ModelConfig`, user
metadata, and — new in format v2 — optionally the canonical per-chunk
optimizer state (``opt{i}/...``) plus a small *train state* dict (the
resume cursor: next iteration, strategy, loss history).  Data order and
dropout-free forward passes are pure functions of the iteration number
in this codebase, so the cursor fully captures the RNG/data-iterator
position; resuming with ``TrainSpec.start_iteration`` replays the exact
same batches.

``TrainSpec.initial_chunks`` accepts loaded chunks, so a run can resume
under *any* strategy — the weights are strategy-agnostic by
construction.  Full-state resume (optimizer included) is bit-exact when
the strategy matches; switching strategies restarts the optimizer from
the saved canonical state, which every elastic strategy reshards on
entry.

Durability (format v2):

* **Atomic writes** — the archive is written to a sibling temp file,
  fsynced and ``os.replace``d into place, so a crash mid-save can never
  leave a truncated file at the target path (the previous checkpoint, if
  any, survives intact).
* **Integrity** — every array carries a CRC32 in the header, and the
  header itself carries one in ``__header_crc__``.  A flipped bit or a
  stale partial file is rejected with :class:`CorruptCheckpointError`
  instead of silently training from garbage.

Format v1 files (weights + config only, no checksums) still load.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from .nn.model import ModelConfig
from .nn.params import ParamStruct

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CorruptCheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "load_checkpoint_state",
]

_FORMAT_VERSION = 2


class CheckpointError(ValueError):
    """A checkpoint could not be written or read."""


class CorruptCheckpointError(CheckpointError):
    """The file exists but fails structural or checksum validation."""


@dataclass
class Checkpoint:
    """Everything a v2 checkpoint can carry (v1 fields default empty)."""

    cfg: ModelConfig
    chunks: List[ParamStruct]
    metadata: Dict = field(default_factory=dict)
    #: canonical per-chunk optimizer state, or None if not saved.
    opt_state: Optional[List[Dict]] = None
    #: resume cursor: ``next_iteration``, ``strategy``, ``losses``, ...
    train_state: Optional[Dict] = None
    version: int = _FORMAT_VERSION


def _crc(arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes()) & 0xFFFFFFFF


def _flatten_opt(state, prefix: str, arrays: Dict[str, np.ndarray]):
    """Record ``state``'s tensors under ``prefix`` and return the
    JSON-able structural spec needed to rebuild it."""
    if isinstance(state, ParamStruct):
        names = state.keys()
        for name in names:
            arrays[f"{prefix}/{name}"] = state[name]
        return {"kind": "params", "names": names}
    if isinstance(state, dict):
        return {
            "kind": "dict",
            "items": {
                k: _flatten_opt(v, f"{prefix}/{k}", arrays)
                for k, v in state.items()
            },
        }
    if isinstance(state, (bool, np.bool_)):
        return {"kind": "scalar", "value": bool(state)}
    if isinstance(state, (int, np.integer)):
        return {"kind": "scalar", "value": int(state)}
    if isinstance(state, (float, np.floating)):
        return {"kind": "scalar", "value": float(state)}
    raise CheckpointError(
        f"cannot serialise optimizer state entry of type {type(state).__name__}"
    )


def _unflatten_opt(spec, prefix: str, data) -> object:
    kind = spec["kind"]
    if kind == "params":
        return ParamStruct(
            {name: data[f"{prefix}/{name}"].copy() for name in spec["names"]}
        )
    if kind == "dict":
        return {
            k: _unflatten_opt(v, f"{prefix}/{k}", data)
            for k, v in spec["items"].items()
        }
    return spec["value"]


def _resolve_path(path) -> Path:
    # np.savez appends .npz to extension-less paths; keep that contract
    # explicit so save and load agree on the final name.
    p = Path(path)
    return p if p.suffix == ".npz" else p.with_name(p.name + ".npz")


def save_checkpoint(
    path,
    cfg: ModelConfig,
    chunks: List[ParamStruct],
    metadata: Dict | None = None,
    opt_state: Optional[List[Dict]] = None,
    train_state: Optional[Dict] = None,
) -> Path:
    """Atomically write a v2 checkpoint; returns the final path.

    ``opt_state`` is the canonical per-chunk optimizer state (one dict
    per chunk, as produced by the elastic engines or
    ``Optimizer.init_state``); ``train_state`` is an arbitrary
    JSON-serialisable dict — by convention carrying ``next_iteration``,
    ``strategy`` and ``losses`` so ``--resume`` can pick up exactly
    where the run stopped.
    """
    if len(chunks) != cfg.n_layers:
        raise ValueError(
            f"expected {cfg.n_layers} chunks for this config, got {len(chunks)}"
        )
    if opt_state is not None and len(opt_state) != len(chunks):
        raise ValueError(
            f"opt_state has {len(opt_state)} entries for {len(chunks)} chunks"
        )
    arrays: Dict[str, np.ndarray] = {}
    for i, chunk in enumerate(chunks):
        for name, arr in chunk.items():
            arrays[f"chunk{i}/{name}"] = arr
    opt_spec = None
    if opt_state is not None:
        opt_spec = [
            _flatten_opt(state, f"opt{i}", arrays)
            for i, state in enumerate(opt_state)
        ]
    cfg_dict = asdict(cfg)
    cfg_dict["dtype"] = np.dtype(cfg.dtype).name
    header = {
        "version": _FORMAT_VERSION,
        "config": cfg_dict,
        "metadata": metadata or {},
        "chunk_keys": [chunk.keys() for chunk in chunks],
        "opt_spec": opt_spec,
        "train_state": train_state,
        "crc32": {key: _crc(arr) for key, arr in arrays.items()},
    }
    header_bytes = json.dumps(header).encode("utf-8")
    arrays["__header__"] = np.frombuffer(header_bytes, dtype=np.uint8)
    arrays["__header_crc__"] = np.array(
        [zlib.crc32(header_bytes) & 0xFFFFFFFF], dtype=np.uint64
    )

    final = _resolve_path(path)
    tmp = final.with_name(final.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as f:
            np.savez_compressed(f, **arrays)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, final)
    finally:
        if tmp.exists():
            tmp.unlink()
    return final


def _load_header(path: Path, data) -> Dict:
    if "__header__" not in data:
        raise CorruptCheckpointError(f"{path} is not a repro checkpoint")
    header_bytes = bytes(data["__header__"])
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptCheckpointError(f"{path}: unreadable header ({exc})") from exc
    version = header.get("version")
    if version not in (1, _FORMAT_VERSION):
        raise CheckpointError(
            f"{path}: checkpoint version {version} unsupported "
            f"(this build reads versions 1 and {_FORMAT_VERSION})"
        )
    if version >= 2:
        if "__header_crc__" not in data:
            raise CorruptCheckpointError(f"{path}: header checksum missing")
        want = int(data["__header_crc__"][0])
        got = zlib.crc32(header_bytes) & 0xFFFFFFFF
        if got != want:
            raise CorruptCheckpointError(
                f"{path}: header checksum mismatch "
                f"(stored {want:#010x}, computed {got:#010x})"
            )
    return header


def _verify_arrays(path: Path, header: Dict, data) -> None:
    for key, want in header.get("crc32", {}).items():
        if key not in data:
            raise CorruptCheckpointError(f"{path}: array {key!r} missing")
        got = _crc(data[key])
        if got != want:
            raise CorruptCheckpointError(
                f"{path}: checksum mismatch on {key!r} "
                f"(stored {want:#010x}, computed {got:#010x}) — "
                "the file is corrupt; restore from a good checkpoint"
            )


def load_checkpoint_state(path) -> Checkpoint:
    """Read and fully validate a checkpoint.

    v2 files are checksum-verified array by array; any mismatch raises
    :class:`CorruptCheckpointError`.  v1 files load without checksums
    (they never had them) and report empty optimizer/train state.
    """
    p = Path(path)
    if not p.exists():
        raise CheckpointError(f"checkpoint {p} does not exist")
    try:
        with np.load(p) as data:
            header = _load_header(p, data)
            _verify_arrays(p, header, data)
            cfg_dict = header["config"]
            cfg_dict["dtype"] = np.dtype(cfg_dict["dtype"]).type
            cfg = ModelConfig(**cfg_dict)
            chunks: List[ParamStruct] = []
            for i, keys in enumerate(header["chunk_keys"]):
                chunks.append(
                    ParamStruct(
                        {name: data[f"chunk{i}/{name}"].copy() for name in keys}
                    )
                )
            opt_state = None
            if header.get("opt_spec") is not None:
                opt_state = [
                    _unflatten_opt(spec, f"opt{i}", data)
                    for i, spec in enumerate(header["opt_spec"])
                ]
    except (zipfile.BadZipFile, OSError, KeyError, ValueError) as exc:
        if isinstance(exc, CheckpointError):
            raise
        raise CorruptCheckpointError(
            f"{p}: cannot read checkpoint ({exc})"
        ) from exc
    return Checkpoint(
        cfg=cfg,
        chunks=chunks,
        metadata=header.get("metadata", {}),
        opt_state=opt_state,
        train_state=header.get("train_state"),
        version=header["version"],
    )


def load_checkpoint(path) -> Tuple[ModelConfig, List[ParamStruct], Dict]:
    """Back-compat reader; returns ``(config, chunks, metadata)``."""
    ckpt = load_checkpoint_state(path)
    return ckpt.cfg, ckpt.chunks, ckpt.metadata
