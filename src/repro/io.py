"""Checkpointing: save/load model weights and configuration.

A checkpoint is a single ``.npz`` holding every chunk's tensors (keys
``chunk{i}/{name}``) plus a JSON-encoded :class:`ModelConfig` and
user metadata.  ``TrainSpec.initial_chunks`` accepts loaded chunks, so a
run can resume under *any* strategy — the weights are strategy-agnostic
by construction (every strategy trains the same chunked model).

Optimizer state is deliberately not serialised: it is sharded
differently per strategy (DESIGN.md §3), so cross-strategy resumption
restarts the optimizer — exactly what changing the parallelism layout
mid-run costs in real systems too.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from .nn.model import ModelConfig
from .nn.params import ParamStruct

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def save_checkpoint(
    path,
    cfg: ModelConfig,
    chunks: List[ParamStruct],
    metadata: Dict | None = None,
) -> None:
    """Write ``chunks`` and ``cfg`` to ``path`` (.npz, compressed)."""
    if len(chunks) != cfg.n_layers:
        raise ValueError(
            f"expected {cfg.n_layers} chunks for this config, got {len(chunks)}"
        )
    arrays: Dict[str, np.ndarray] = {}
    for i, chunk in enumerate(chunks):
        for name, arr in chunk.items():
            arrays[f"chunk{i}/{name}"] = arr
    cfg_dict = asdict(cfg)
    cfg_dict["dtype"] = np.dtype(cfg.dtype).name
    header = {
        "version": _FORMAT_VERSION,
        "config": cfg_dict,
        "metadata": metadata or {},
        "chunk_keys": [chunk.keys() for chunk in chunks],
    }
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **arrays)


def load_checkpoint(path) -> Tuple[ModelConfig, List[ParamStruct], Dict]:
    """Read a checkpoint; returns ``(config, chunks, metadata)``."""
    with np.load(Path(path)) as data:
        if "__header__" not in data:
            raise ValueError(f"{path} is not a repro checkpoint")
        header = json.loads(bytes(data["__header__"]).decode("utf-8"))
        if header["version"] != _FORMAT_VERSION:
            raise ValueError(
                f"checkpoint version {header['version']} unsupported "
                f"(expected {_FORMAT_VERSION})"
            )
        cfg_dict = header["config"]
        cfg_dict["dtype"] = np.dtype(cfg_dict["dtype"]).type
        cfg = ModelConfig(**cfg_dict)
        chunks: List[ParamStruct] = []
        for i, keys in enumerate(header["chunk_keys"]):
            chunks.append(
                ParamStruct({name: data[f"chunk{i}/{name}"].copy() for name in keys})
            )
    return cfg, chunks, header["metadata"]
