"""The process-parallel shared-memory transport.

Every rank is a *forked child process* with its own interpreter (and
its own GIL), so compute genuinely runs in parallel on multicore hosts
and the wire path is never serialized behind another rank's bytecode.
Ranks communicate over one shared-memory segment holding a full mesh of
:class:`~repro.runtime.transport.shm.ShmRing` byte streams (one per
directed pair) plus a :class:`ControlBlock` for abort / fail-stop
state.

:class:`ShmFabric` is the per-process fabric endpoint: a
:class:`~repro.runtime.communicator.Fabric` subclass whose mailbox,
posted-receive matching and wait loops are reused verbatim, but whose
``post`` serializes the message into the outbound ring (pickle-5 frame,
array bodies out of band — see :mod:`.shm`) and whose pump decodes
inbound frames straight into the receiving rank's buffer pool.  The
PR-7 integrity frame carries over: the structural CRC32 stamped at post
time travels in the frame header and is re-verified after decode.

What carries over from the thread backend, and what does not:

* tag namespaces, FIFO per channel, posted-receive matching — identical
  (frames on one link arrive in post order; the per-link sequence
  number in the header turns any violation into a loud error);
* ``abort`` poison and ``fail_rank`` / ``PeerFailed`` epochs — shared
  through the control block; acknowledgements stay rank-local exactly
  as in the thread fabric;
* chaos — **delay-only** policies (seeded hold-backs, applied at the
  receiver from the same per-channel decision function), because
  drops/duplicates/bit-flips/NACK exercise wire machinery the shm
  stream does not emulate; asking for them raises at launch;
* failure detector, rejoin protocol, tracer — thread backend only.

Payload transfer has two modes, chosen per-buffer at encode time:

* **by mapping** (the default): each rank's BufferPool is backed by a
  pre-fork shared-memory arena region, so steady-state payload buffers
  already live in memory every worker has mapped.  Such buffers cross
  the wire as ~tens-of-bytes ``(region, offset, nbytes, fmt)``
  descriptors — zero payload bytes move, and a slot hop costs the same
  whether the model is 1 MB or 1 GB.  Delivery is by reference into the
  shared mapping, so ``wire_copies`` is False and the ring engines keep
  the thread backend's turn-taking ownership discipline (never recycle
  a buffer that may still be read downstream).
* **by copy** (fallback, and the whole story when ``arena_bytes=0``):
  buffers outside the arena are serialized through the ring.  With the
  arena disabled ``wire_copies`` is True and received buffers are owned
  by the receiver alone, so the ring engines retire replaced slots into
  the pool, keeping the steady state allocation-free.
"""

from __future__ import annotations

import heapq
import os
import pickle
import shutil
import tempfile
import time
from multiprocessing import get_context
from multiprocessing import shared_memory as mp_shm
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...obs import flight as _flight
from ...obs.merge import (
    align_clock,
    dump_trace_spill,
    load_trace_spill,
    merge_trace_spill,
)
from ...obs.metrics import MetricsRegistry
from ...obs.tracer import Tracer
from ..communicator import Fabric, FabricAborted, PeerFailed, RecvTimeout
from ..integrity import CorruptFrameError, payload_crc32
from ..message import Message, TrafficStats
from .base import Deadline, Transport, WorkerError
from .shm import (
    ControlBlock,
    FrameDecoder,
    ShmArena,
    ShmRing,
    arena_offset,
    encode_frame,
    ring_offset,
    ring_segment_size,
)

__all__ = ["ProcessTransport", "ShmFabric", "validate_process_policy"]

#: default per-directed-link ring capacity; sized to hold several of the
#: reference config's weight slots so the steady-state ring never stalls.
DEFAULT_LINK_BYTES = 1 << 20
#: default per-rank shared arena region backing the worker's BufferPool;
#: the pool free-list recycles, so this bounds *peak live* buffers, not
#: cumulative traffic (allocations reserve pow2 spans, so budget up to
#: 2x the live payload bytes).  0 disables the arena (pure copy
#: transport).
DEFAULT_ARENA_BYTES = 1 << 25
#: how often a blocked receiver re-polls its inbound rings.  Processes
#: wake at OS-scheduler granularity (no interpreter switch interval), so
#: this — not the GIL — bounds the hop latency.
DEFAULT_POLL_S = 2e-4


def validate_process_policy(policy: Any) -> None:
    """Reject chaos knobs the shm wire cannot reproduce.

    Delay-only policies are deterministic receiver-side because frames
    arrive per link in post order, so the per-channel sequence numbers
    driving :meth:`ChaosPolicy.decide` match the thread wire exactly.
    Everything else (drops, duplicates, SDC + NACK/retransmit, flaps,
    stalls, crashes) manipulates the in-process wire itself — those
    stay thread-backend features.
    """
    if policy is None:
        return
    unsupported = []
    for knob in ("drop_prob", "duplicate_prob", "bitflip_prob",
                 "flap_prob", "stall_prob", "max_stall"):
        if getattr(policy, knob, 0):
            unsupported.append(knob)
    for knob in ("crash_rank", "stall_rank", "flap_rank"):
        if getattr(policy, knob, None) is not None:
            unsupported.append(knob)
    if getattr(policy, "flaps", ()):
        unsupported.append("flaps")
    if unsupported:
        raise ValueError(
            "process backend supports delay-only chaos policies; "
            f"unsupported knobs set: {', '.join(sorted(unsupported))} "
            "(use the thread backend for the full chaos wire)"
        )


_ARENA_POOL_CLS = None


def _arena_pool(arena: ShmArena) -> Any:
    """A :class:`~repro.nn.params.BufferPool` whose free list recycles
    arena-resident buffers by power-of-two span class.

    Ring slots wander between ranks, and chunk sizes differ by a few
    hundred elements (embedding vs plain layers).  With per-process
    pools and exact-size keys, a rank whose clone size never matches the
    sizes wandering into it would allocate fresh arena memory every
    iteration — an unbounded leak.  Arena allocations reserve pow2 spans
    (:meth:`ShmArena.span_nbytes`), so any free buffer of a span class
    can be re-viewed at any exact size of that class; near-equal chunk
    sizes share one class and the steady state allocates nothing.
    Private (non-arena) buffers keep the exact-size keying of the base
    pool.  Class keys use a negative first element so they can never
    collide with exact ``(numel, dtype)`` keys.
    """
    global _ARENA_POOL_CLS
    if _ARENA_POOL_CLS is None:
        import numpy as _np

        from ...nn.params import BufferPool

        class ArenaBufferPool(BufferPool):
            __slots__ = ("_arena_ref",)

            def __init__(self, arena: ShmArena):
                super().__init__()
                self._arena_ref = arena
                self.backend = "process"
                self.allocator = arena.alloc

            def acquire(self, numel: int, dtype):
                dt = _np.dtype(dtype)
                nbytes = int(numel) * dt.itemsize
                if nbytes:
                    ckey = (-ShmArena.span_nbytes(nbytes), dt)
                    found = None
                    with self._lock:
                        stack = self._free.get(ckey)
                        if stack:
                            self.hits += 1
                            found = stack.pop()
                    if found is not None:
                        return self._arena_ref.view(
                            found[0], found[1], nbytes, dt
                        )
                return super().acquire(numel, dtype)

            def release(self, buf) -> None:
                flat = buf.reshape(-1)
                loc = None
                if flat.nbytes:
                    loc = self._arena_ref.locate(memoryview(flat))
                if loc is None:
                    super().release(flat)
                    return
                ckey = (-ShmArena.span_nbytes(flat.nbytes), flat.dtype)
                with self._lock:
                    self._free.setdefault(ckey, []).append(loc)
                    self.releases += 1

        _ARENA_POOL_CLS = ArenaBufferPool
    return _ARENA_POOL_CLS(arena)


class ShmFabric(Fabric):
    """Per-process fabric endpoint over a shared ring segment.

    One instance lives in each worker process and only its own rank may
    post/receive through it; the base class supplies mailboxes, posted
    receives and the deadline-checked wait loop, while this subclass
    swaps the by-reference delivery for framed ring streams.
    """

    def __init__(
        self,
        world_size: int,
        rank: int,
        segment: memoryview,
        *,
        control_bytes: int,
        link_bytes: int = DEFAULT_LINK_BYTES,
        arena_bytes: int = DEFAULT_ARENA_BYTES,
        timeout: float = 60.0,
        policy: Any = None,
        integrity: bool = True,
        poll_interval: float = DEFAULT_POLL_S,
        topology: Any = None,
        trace: bool = False,
    ):
        validate_process_policy(policy)
        super().__init__(
            world_size, timeout=timeout, integrity=integrity, topology=topology,
            tracer=Tracer() if trace else None,
        )
        self._check_rank(rank)
        self.rank = rank
        self._poll = poll_interval
        self._policy = policy
        self._control = ControlBlock(segment, world_size)
        self._ctrl_token = self._control.disturb_token()
        # clock-alignment handshake: the launcher published its epoch
        # before forking; answer with our own clock sample so the parent
        # can bound the skew between the two timelines (repro.obs.merge).
        self._clock_sample: Optional[float] = None
        if self._control.epoch() is not None:
            self._clock_sample = perf_counter()
            self._control.set_clock(rank, self._clock_sample)
        # Shared arena: pooled buffers live in the segment and ship as
        # descriptors (by-mapping — the cross-process twin of the thread
        # wire's by-reference handoff), so the engines must follow the
        # by-reference ownership protocol and must NOT retire replaced
        # slots (the sender's next hop may still alias them).  Without an
        # arena every payload is copied through the ring and a received
        # buffer has exactly one owner, so retirement is both safe and
        # required to keep the steady state allocation-free.
        self._arena: Optional[ShmArena] = None
        if arena_bytes:
            regions = [
                segment[
                    arena_offset(r, world_size, control_bytes, link_bytes,
                                 arena_bytes):
                    arena_offset(r + 1, world_size, control_bytes, link_bytes,
                                 arena_bytes)
                ]
                for r in range(world_size)
            ]
            self._arena = ShmArena(regions, rank)
        self.wire_copies = self._arena is None
        self._out: Dict[int, ShmRing] = {}
        self._decoders: Dict[int, FrameDecoder] = {}
        self._send_seq: Dict[int, int] = {}
        self._recv_seq: Dict[int, int] = {}
        for peer in range(world_size):
            if peer == rank:
                continue
            off = ring_offset(rank, peer, world_size, control_bytes, link_bytes)
            self._out[peer] = ShmRing(
                segment[off : off + ShmRing.HEADER + link_bytes], link_bytes
            )
            off = ring_offset(peer, rank, world_size, control_bytes, link_bytes)
            self._decoders[peer] = FrameDecoder(
                ShmRing(
                    segment[off : off + ShmRing.HEADER + link_bytes], link_bytes
                ),
                self._acquire_wire_buffer,
                arena=self._arena,
            )
            self._send_seq[peer] = 0
            self._recv_seq[peer] = 0
        # receiver-side limbo for seeded delay-only chaos: (due, tiebreak,
        # Message), per-channel sequence counters matching the thread wire.
        self._limbo: List[Tuple[float, int, Message]] = []
        self._limbo_seq = 0
        self._chan_seq: Dict[Tuple[int, int, Tuple], int] = {}
        # adaptive wait: yield the core for this many empty polls after
        # the last delivered frame before falling back to real sleeps.
        self._idle_passes = 0
        self._spin_passes = 200
        self._m_delays = self.metrics.counter(
            "chaos_injections_total", fault="delay"
        ) if policy is not None else None

    # -- pool ----------------------------------------------------------------

    def _make_pool(self, factory) -> Any:
        if self._arena is not None:
            return _arena_pool(self._arena)
        pool = factory()
        if hasattr(pool, "backend"):
            pool.backend = "process"
        return pool

    def _acquire_wire_buffer(self, numel: int, dtype) -> Any:
        # called from _pump_locked with the fabric lock held — must not
        # re-enter shared_pool()'s own lock acquisition.
        pool = self._shared_pool
        if pool is None:
            from ...nn.params import BufferPool

            pool = self._shared_pool = self._make_pool(BufferPool)
        return pool.acquire(numel, dtype)

    def shared_pool(self, factory) -> Any:
        with self._lock:
            if self._shared_pool is None:
                self._shared_pool = self._make_pool(factory)
            return self._shared_pool

    # -- control-block fail-stop state ---------------------------------------

    def _sync_control_locked(self) -> None:
        token = self._control.disturb_token()
        if token == self._ctrl_token:
            return
        self._ctrl_token = token
        if token[0] and not self._aborted:
            self._aborted = self._control.aborted() or "aborted"
        for r, v in self._control.failed().items():
            if r not in self._failed:
                self._failed[r] = v
                self._fail_epoch += 1
        self._cond.notify_all()

    def _check_disturbed(self, rank: int) -> None:
        self._sync_control_locked()
        super()._check_disturbed(rank)

    def abort(self, reason: str) -> None:
        self.flight.rings[self.rank].record(_flight.EV_ABORT, self.rank)
        self._control.abort(reason)
        with self._cond:
            self._sync_control_locked()

    def fail_rank(self, rank: int, reason: str, step: Optional[int] = None) -> None:
        self._check_rank(rank)
        if step is None:
            step = self._control.progress(rank)
        self.flight.rings[self.rank].record(
            _flight.EV_FAIL, rank, step if step is not None else -1
        )
        self._control.fail(rank, reason, step)
        with self._cond:
            self._sync_control_locked()

    def failed_ranks(self) -> Dict[int, Tuple[str, Optional[int]]]:
        with self._lock:
            self._sync_control_locked()
            return dict(self._failed)

    def report_progress(self, rank: int, step: int) -> None:
        self._control.set_progress(rank, step)
        with self._lock:
            self.flight.rings[self.rank].record(_flight.EV_PROGRESS, rank, step)
            self._progress[rank] = step

    def progress_of(self, rank: int) -> Optional[int]:
        return self._control.progress(rank)

    def request_rejoin(self, rank: int) -> None:
        raise NotImplementedError(
            "rank rejoin requires the failure detector (thread backend only)"
        )

    # -- endpoint discipline --------------------------------------------------

    def communicator(self, rank: int):
        if rank != self.rank:
            raise ValueError(
                f"this process owns the rank-{self.rank} endpoint; "
                f"cannot build a communicator for rank {rank}"
            )
        return super().communicator(rank)

    # -- post: serialize into the outbound ring --------------------------------

    def post(self, msg: Message) -> None:
        self._check_rank(msg.src)
        self._check_rank(msg.dst)
        if msg.src != self.rank:
            raise ValueError(
                f"rank-{self.rank} endpoint cannot post as rank {msg.src}"
            )
        with self._cond:
            self._check_disturbed(msg.src)
            self._record_traffic_locked(msg)
            if msg.dst == self.rank:
                # loopback never crosses the wire; keep the structural
                # digest so the message looks like any other framed one.
                if self.integrity and msg.crc is None:
                    msg.crc = payload_crc32(msg.payload)
                self._deliver_locked(msg)
            else:
                # remote sends are protected by a CRC32 over the frame
                # *bytes* (computed inside encode_frame at zlib speed, and
                # re-accumulated by the decoder as chunks land) — the
                # structural payload walk is too slow to pay per message.
                seq = self._send_seq[msg.dst]
                self._send_seq[msg.dst] = seq + 1
                chunks = encode_frame(
                    msg.payload, msg.tag, msg.nbytes, seq,
                    integrity=self.integrity, arena=self._arena,
                )
                self._stream_out_locked(msg.dst, chunks)
            self._cond.notify_all()

    def _stream_out_locked(self, dst: int, chunks: List[memoryview]) -> None:
        ring = self._out[dst]
        deadline: Optional[Deadline] = None
        for mv in chunks:
            if mv.nbytes == 0:
                continue
            pos = 0
            end = mv.nbytes
            while pos < end:
                n = ring.write_some(mv[pos:])
                if n:
                    pos += n
                    continue
                # receiver's ring is full.  Drain our own inbound links so
                # two mutually-blocked writers cannot deadlock, then
                # re-check for aborts / a dead receiver before sleeping.
                self._pump_locked()
                self._sync_control_locked()
                if self._aborted:
                    raise FabricAborted(self._aborted)
                if self._control.is_failed(dst):
                    raise PeerFailed(
                        {r: v for r, v in self._failed.items() if r != self.rank}
                    )
                if deadline is None:
                    deadline = Deadline(self.timeout)
                elif deadline.expired():
                    raise RecvTimeout(
                        f"rank {self.rank} stalled {self.timeout}s streaming "
                        f"to rank {dst} (ring full; receiver not draining — "
                        f"likely a schedule deadlock)"
                    )
                self._idle_wait_locked(self._poll)

    # -- pump: decode inbound rings -------------------------------------------

    def _deliver_locked(self, msg: Message) -> None:
        if self._policy is not None:
            key = (msg.src, msg.dst, msg.tag)
            seq = self._chan_seq.get(key, 0)
            self._chan_seq[key] = seq + 1
            decision = self._policy.decide(msg.src, msg.dst, msg.tag, seq)
            if decision.delay > 0.0:
                heapq.heappush(
                    self._limbo,
                    (time.monotonic() + decision.delay, self._limbo_seq, msg),
                )
                self._limbo_seq += 1
                self._m_delays.add(1)
                self.flight.rings[self.rank].record(
                    _flight.EV_CHAOS_DELAY, msg.src, msg.dst
                )
                return
        self._mail[msg.dst][(msg.src, msg.tag)].append(msg)
        self._drain_locked((msg.dst, msg.src, msg.tag))

    def _on_frame_locked(self, src: int, frame) -> None:
        expected = self._recv_seq[src]
        if frame.seq != expected:
            raise RuntimeError(
                f"shm stream corruption on link {src}->{self.rank}: "
                f"frame seq {frame.seq}, expected {expected}"
            )
        self._recv_seq[src] = expected + 1
        if self.integrity and frame.crc is not None:
            if frame.crc_actual != frame.crc:
                self.metrics.counter("fabric_corrupt_frames").add(1)
                self.flight.rings[self.rank].record(
                    _flight.EV_CORRUPT_FRAME, src, frame.seq
                )
                raise CorruptFrameError(
                    f"frame CRC mismatch on link {src}->{self.rank} "
                    f"tag={frame.tag} (shared memory is a reliable wire; "
                    f"this is a codec bug or genuine memory corruption)"
                )
        self._deliver_locked(
            Message(
                src=src, dst=self.rank, tag=frame.tag,
                payload=frame.payload, nbytes=frame.nbytes, crc=frame.crc,
            )
        )

    def _pump_locked(self) -> int:
        delivered = 0
        for src, dec in self._decoders.items():
            while True:
                frame = dec.poll()
                if frame is None:
                    break
                self._on_frame_locked(src, frame)
                delivered += 1
        if self._limbo:
            now = time.monotonic()
            while self._limbo and self._limbo[0][0] <= now:
                _, _, msg = heapq.heappop(self._limbo)
                self._mail[msg.dst][(msg.src, msg.tag)].append(msg)
                self._drain_locked((msg.dst, msg.src, msg.tag))
                delivered += 1
        if delivered:
            self._idle_passes = 0
        return delivered

    def _next_event_locked(self) -> Optional[float]:
        # poll cadence: inbound ring writes happen in another process, so
        # a blocked receiver must wake on its own clock rather than wait
        # for a notify that can never come.
        nxt = time.monotonic() + self._poll
        if self._limbo and self._limbo[0][0] < nxt:
            nxt = self._limbo[0][0]
        return nxt

    def _idle_wait_locked(self, wait_for: float) -> None:
        # The condvar can never be notified from outside this process, so
        # waiting on it burns the whole timeout.  For a while after the
        # last delivered frame, yield the core instead — the scheduler
        # hands it back almost immediately when peers are blocked on the
        # wire, giving hop latencies at syscall rather than sleep-quantum
        # granularity — then fall back to real sleeps at the poll cadence.
        if wait_for <= 0.0:
            return
        self._idle_passes += 1
        if self._idle_passes <= self._spin_passes:
            os.sched_yield()
        else:
            time.sleep(min(wait_for, self._poll))

    def _timeout_context(self) -> str:
        return "; shm process wire"


# -- child process entry ------------------------------------------------------


def _ship_exception(exc: BaseException):
    """Best-effort pickle of a worker exception (repr fallback)."""
    try:
        blob = pickle.dumps(exc)
        pickle.loads(blob)
        return ("pickle", blob)
    except Exception:
        return ("repr", (type(exc).__name__, str(exc)))


def _revive_exception(shipped) -> BaseException:
    kind, data = shipped
    if kind == "pickle":
        try:
            return pickle.loads(data)
        except Exception:  # pragma: no cover - round-trip checked at ship
            pass
        kind, data = "repr", ("Exception", "un-unpicklable worker exception")
    name, text = data
    return RuntimeError(f"{name}: {text}")


def _stats_bundle(fabric: ShmFabric) -> Dict:
    pool = fabric._shared_pool
    bundle = {
        "traffic": fabric.stats,
        "pool": pool.as_dict() if pool is not None else None,
        "metrics": fabric.metrics.as_dict(),
        "flight": fabric.flight.rings[fabric.rank].snapshot(),
    }
    if fabric._arena is not None and bundle["pool"] is not None:
        bundle["pool"]["arena_used"] = fabric._arena.used
        bundle["pool"]["arena_capacity"] = fabric._arena.capacity
    return bundle


def _child_main(
    rank: int,
    world: int,
    segment: memoryview,
    conn,
    fn: Callable,
    timeout: float,
    elastic: bool,
    fabric_kw: Dict,
) -> None:
    import traceback

    fabric_kw = dict(fabric_kw)
    trace_dir = fabric_kw.pop("trace_dir", None)
    fabric = ShmFabric(
        world, rank, segment, timeout=timeout,
        trace=trace_dir is not None, **fabric_kw
    )
    comm = fabric.communicator(rank)

    def _spill_trace() -> None:
        # written *before* the report goes up the pipe — the parent
        # merges the spill files only after every rank has reported.
        if trace_dir is None:
            return
        try:
            dump_trace_spill(
                fabric.tracer,
                os.path.join(trace_dir, f"trace-rank{rank}.jsonl"),
                rank,
                fabric._clock_sample,
            )
        except Exception:  # pragma: no cover - diagnostics must not mask
            pass

    try:
        result = fn(comm)
        _spill_trace()
        conn.send(("ok", result, None, _stats_bundle(fabric)))
    except BaseException as exc:  # noqa: BLE001 - must report everything
        tb = traceback.format_exc()
        fabric.flight.rings[rank].record(_flight.EV_WORKER_ERROR, rank)
        try:
            if elastic:
                fabric.fail_rank(rank, f"raised {exc!r}")
            else:
                fabric.abort(f"rank {rank} raised {exc!r}")
        finally:
            _spill_trace()
            conn.send(("err", None, (_ship_exception(exc), tb),
                       _stats_bundle(fabric)))
    finally:
        conn.close()


# -- the transport ------------------------------------------------------------


#: counters every fabric creates eagerly (quiet runs must export zeros).
_EAGER_COUNTERS = (
    "fabric_retransmits",
    "fabric_corrupt_frames",
    "detector_suspicions",
    "detector_suspicions_cleared",
    "detector_confirms",
    "ring_rejoins",
)


def _eager_registry() -> MetricsRegistry:
    """A fresh parent-side registry with the heal counters pre-zeroed.

    Children create these eagerly too (``Fabric.__init__``) so the merge
    preserves them, but a rank that dies before reporting must not turn
    an explicit zero into an absent series — analyzer summaries diff the
    thread and process backends and need identical metric name sets.
    """
    reg = MetricsRegistry()
    for name in _EAGER_COUNTERS:
        reg.counter(name)
    return reg


class ProcessTransport(Transport):
    """Fork one worker process per rank over a shared ring segment.

    After a launch, ``stats`` / ``pool`` / ``metrics`` hold the merged
    per-rank telemetry (each message is posted by exactly one rank, so
    summing child ledgers reproduces the global traffic exactly; the
    ``metrics`` registry is a full label-aware merge — counters sum,
    gauges max-reduce, histograms combine).  A transport may be launched
    repeatedly; the merged views describe the most recent launch.

    Pass a real ``tracer`` to trace across the process boundary: each
    child records into its own per-rank buffers, spills them as raw
    JSONL at exit, and the parent merges every spill into the given
    tracer on one timeline — child clocks are mapped through the
    launch-time handshake over the control block, with the per-rank
    offset and skew bound recorded in ``tracer.metadata["clock"]``.

    Every launch also reassembles the per-rank flight-recorder rings;
    on failure (worker error, abort, join timeout) the transport builds
    a post-mortem bundle (``last_postmortem``) and, when
    ``postmortem_to`` or ``$REPRO_POSTMORTEM_DIR`` names a directory,
    writes it there (``last_postmortem_path``).
    """

    name = "process"
    supports_detector = False
    supports_tracer = True
    chaos = "delay-only"

    def __init__(
        self,
        policy: Any = None,
        integrity: bool = True,
        link_bytes: int = DEFAULT_LINK_BYTES,
        arena_bytes: int = DEFAULT_ARENA_BYTES,
        poll_interval: float = DEFAULT_POLL_S,
        topology: Any = None,
        tracer: Any = None,
        postmortem_to: Optional[str] = None,
    ):
        validate_process_policy(policy)
        self.policy = policy
        self.integrity = integrity
        self.link_bytes = link_bytes
        self.arena_bytes = arena_bytes
        self.poll_interval = poll_interval
        self.topology = topology
        #: parent-side tracer the per-rank spills merge into (None or a
        #: disabled tracer = untraced run, zero child-side overhead).
        self.tracer = tracer if (tracer is not None and
                                 getattr(tracer, "enabled", False)) else None
        #: explicit post-mortem dump directory (falls back to the
        #: ``REPRO_POSTMORTEM_DIR`` environment variable).
        self.postmortem_to = postmortem_to
        #: merged per-rank telemetry of the most recent launch.
        self.stats = TrafficStats()
        self.pool: Optional[Dict] = None
        self.pools_by_rank: List[Optional[Dict]] = []
        self.metrics_by_rank: List[Optional[Dict]] = []
        self.metrics: MetricsRegistry = _eager_registry()
        #: per-rank flight-recorder snapshots of the most recent launch.
        self.flights_by_rank: Dict[str, Dict] = {}
        #: per-rank clock alignment of the most recent launch.
        self.clock: Dict[str, Dict] = {}
        #: post-mortem bundle of the most recent *failed* launch (None
        #: after a clean one), and where it was written (if anywhere).
        self.last_postmortem: Optional[Dict] = None
        self.last_postmortem_path: Optional[str] = None

    def launch(
        self,
        world_size: int,
        fn: Callable[[Any], Any],
        timeout: float,
        elastic: bool,
        detector: Any = None,
    ) -> Tuple[List[Any], List[Optional[WorkerError]]]:
        if detector is not None:
            raise ValueError(
                "process backend does not support a failure detector "
                "(heartbeats and rejoin are thread-backend features)"
            )
        if world_size == 1:
            # degenerate group: no peers, no rings — run inline on the
            # thread transport so serial baselines behave identically
            # (with the parent tracer attached directly: one process,
            # no spill/merge needed).
            from .thread import ThreadTransport

            fab = None
            if self.tracer is not None:
                fab = Fabric(
                    1, timeout=timeout, tracer=self.tracer,
                    topology=self.topology, integrity=self.integrity,
                )
            tt = ThreadTransport(fab)
            out = tt.launch(world_size, fn, timeout, elastic, detector)
            if fab is not None:
                self.metrics = fab.metrics
            return out
        ctx = get_context("fork")
        control_bytes = (ControlBlock.size(world_size) + 63) & ~63
        total = (
            ring_segment_size(world_size, control_bytes, self.link_bytes)
            + world_size * self.arena_bytes
        )
        shm = mp_shm.SharedMemory(create=True, size=total)
        self.stats = TrafficStats()
        self.pool = None
        self.pools_by_rank = [None] * world_size
        self.metrics_by_rank = [None] * world_size
        self.metrics = _eager_registry()
        self.flights_by_rank = {}
        self.clock = {}
        self.last_postmortem = None
        self.last_postmortem_path = None
        results: List[Any] = [None] * world_size
        errors: List[Optional[WorkerError]] = [None] * world_size
        control: Optional[ControlBlock] = None
        trace_dir: Optional[str] = None
        try:
            control = ControlBlock(shm.buf, world_size, create=True)
            # clock handshake, half 1: publish the parent epoch before
            # any child can fork, so every child's sample is bracketed
            # by [epoch, first parent observation].
            parent_epoch = perf_counter()
            control.publish_epoch(parent_epoch)
            if self.tracer is not None:
                # merged child events land in the parent's clock domain,
                # so the tracer's own epoch (set at construction) stays —
                # one tracer can span several launches (e.g. a sweep).
                trace_dir = tempfile.mkdtemp(prefix="repro-trace-spill-")
            for src in range(world_size):
                for dst in range(world_size):
                    if src == dst:
                        continue
                    off = ring_offset(
                        src, dst, world_size, control_bytes, self.link_bytes
                    )
                    ShmRing(
                        shm.buf[off : off + ShmRing.HEADER + self.link_bytes],
                        self.link_bytes,
                        create=True,
                    )
            fabric_kw = dict(
                control_bytes=control_bytes,
                link_bytes=self.link_bytes,
                arena_bytes=self.arena_bytes,
                policy=self.policy,
                integrity=self.integrity,
                poll_interval=self.poll_interval,
                topology=self.topology,
                trace_dir=trace_dir,
            )
            pipes = [ctx.Pipe(duplex=False) for _ in range(world_size)]
            procs = [
                ctx.Process(
                    target=_child_main,
                    args=(r, world_size, shm.buf, pipes[r][1], fn, timeout,
                          elastic, fabric_kw),
                    name=f"worker-{r}",
                    daemon=True,
                )
                for r in range(world_size)
            ]
            for p in procs:
                p.start()
            for _, w in pipes:
                w.close()  # parent keeps only the read ends

            deadline = Deadline(timeout)
            reports: Dict[int, tuple] = {}
            pending = set(range(world_size))
            clock_obs: Dict[int, float] = {}
            # poll pipes *while* waiting: a child blocks in send() if the
            # pipe buffer fills, so the parent must drain during the join.
            while pending and not deadline.expired():
                progressed = False
                # clock handshake, half 2: note when each child's sample
                # first becomes visible — that observation time is the
                # upper bracket of the rank's alignment window.
                for r in range(world_size):
                    if r not in clock_obs and control.clock(r) is not None:
                        clock_obs[r] = perf_counter()
                for r in sorted(pending):
                    conn = pipes[r][0]
                    if conn.poll(0):
                        try:
                            reports[r] = conn.recv()
                        except EOFError:
                            reports[r] = None
                        pending.discard(r)
                        progressed = True
                    elif not procs[r].is_alive() and not conn.poll(0):
                        reports[r] = None  # died without reporting
                        pending.discard(r)
                        progressed = True
                        code = procs[r].exitcode
                        if elastic:
                            control.fail(
                                r, f"worker process died (exit code {code})",
                                control.progress(r),
                            )
                        else:
                            control.abort(
                                f"rank {r} worker process died (exit code {code})"
                            )
                if pending and not progressed:
                    time.sleep(0.005)

            if pending:
                control.abort("join timeout")
                grace = Deadline(2.0)
                for p in procs:
                    p.join(timeout=grace.budget())
                for p in procs:
                    if p.is_alive():
                        p.terminate()
                        p.join(timeout=2.0)
                stuck = ", ".join(f"worker-{r}" for r in sorted(pending))
                for r, report in reports.items():
                    if report:
                        self._merge_stats(r, report[3])
                self._observe_clock(world_size, control, clock_obs,
                                    parent_epoch)
                self._build_postmortem(
                    world_size,
                    {"kind": "timeout",
                     "detail": f"{stuck} did not finish within the group "
                               f"deadline ({timeout}s)"},
                    control,
                )
                raise TimeoutError(
                    f"{stuck} did not finish within the group deadline "
                    f"({timeout}s shared across all ranks)"
                )
            for p in procs:
                p.join(timeout=max(deadline.budget(), 2.0))
                if p.is_alive():  # pragma: no cover - reported but stuck
                    p.terminate()
                    p.join(timeout=2.0)

            self._observe_clock(world_size, control, clock_obs, parent_epoch)
            for r in range(world_size):
                report = reports.get(r)
                if report is None:
                    code = procs[r].exitcode
                    errors[r] = WorkerError(
                        r,
                        RuntimeError(f"worker process died (exit code {code})"),
                        "",
                    )
                    continue
                status, result, err, bundle = report
                self._merge_stats(r, bundle)
                if status == "ok":
                    results[r] = result
                else:
                    shipped, tb = err
                    errors[r] = WorkerError(r, _revive_exception(shipped), tb)

            if self.tracer is not None and trace_dir is not None:
                self._merge_traces(world_size, trace_dir)

            aborted_reason = control.aborted()
            first = next((e for e in errors if e is not None), None)
            if first is not None or aborted_reason:
                if first is not None:
                    reason = {
                        "kind": type(first.original).__name__,
                        "detail": str(first.original),
                        "rank": first.rank,
                    }
                else:  # pragma: no cover - abort without a worker error
                    reason = {"kind": "abort", "detail": aborted_reason}
                self._build_postmortem(world_size, reason, control)
        finally:
            # every live slice of the segment must be dropped before
            # close() — an exported memoryview makes the munmap raise.
            if control is not None:
                control.release()
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            if trace_dir is not None:
                shutil.rmtree(trace_dir, ignore_errors=True)
        return results, errors

    def _observe_clock(
        self,
        world: int,
        control: ControlBlock,
        clock_obs: Dict[int, float],
        parent_epoch: float,
    ) -> None:
        """Turn the handshake readings into per-rank clock alignments."""
        now = perf_counter()
        for r in range(world):
            sample = control.clock(r)
            if sample is None:
                continue
            al = align_clock(r, parent_epoch, sample, clock_obs.get(r, now))
            self.clock[str(r)] = {"rank": r, **al.as_dict()}

    def _merge_traces(self, world: int, trace_dir: str) -> None:
        """Merge every rank's spill into the parent tracer, clock-mapped."""
        from ...obs.merge import ClockAlignment

        for r in range(world):
            path = os.path.join(trace_dir, f"trace-rank{r}.jsonl")
            if not os.path.exists(path):
                continue
            info = self.clock.get(str(r))
            alignment = (
                ClockAlignment(r, info["offset_s"], info["skew_bound_s"],
                               info["method"])
                if info else None
            )
            merge_trace_spill(self.tracer, load_trace_spill(path), alignment)

    def _build_postmortem(
        self, world: int, reason: Dict, control: ControlBlock
    ) -> Dict:
        flights = dict(self.flights_by_rank)
        for r in range(world):
            flights.setdefault(str(r), {
                "rank": r, "capacity": 0, "recorded": 0, "dropped": 0,
                "events": [],
            })
        bundle = _flight.build_postmortem(
            self.name, world, reason, flights,
            failed=control.failed(), aborted=control.aborted(),
            clock=self.clock,
        )
        self.last_postmortem = bundle
        directory = self.postmortem_to or _flight.postmortem_dir()
        if directory:
            self.last_postmortem_path = _flight.dump_postmortem(
                bundle, directory
            )
        return bundle

    def _merge_stats(self, rank: int, bundle: Optional[Dict]) -> None:
        if not bundle:
            return
        self.stats.merge(bundle["traffic"])
        self.pools_by_rank[rank] = bundle["pool"]
        self.metrics_by_rank[rank] = bundle["metrics"]
        self.metrics.merge(bundle["metrics"])
        if bundle.get("flight"):
            self.flights_by_rank[str(rank)] = bundle["flight"]
        if bundle["pool"]:
            if self.pool is None:
                self.pool = dict(bundle["pool"])
            else:
                for k, v in bundle["pool"].items():
                    if isinstance(v, int):
                        self.pool[k] = self.pool.get(k, 0) + v
