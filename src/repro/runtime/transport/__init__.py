"""Pluggable execution transports for worker groups.

``backend="thread"`` (default) runs every rank as a daemon thread on
one shared in-process :class:`~repro.runtime.communicator.Fabric` —
zero-copy, full chaos/integrity/detector machinery, the semantic
oracle.  ``backend="process"`` forks one process per rank and ships
frames through shared-memory rings — genuinely parallel compute, same
tag/FIFO/abort/fail-stop semantics, bit-exact with the thread backend.
"""

from .base import Deadline, Transport, WorkerError, join_group
from .shm import (
    ControlBlock,
    Frame,
    FrameDecoder,
    ShmRing,
    encode_frame,
    ring_offset,
    ring_segment_size,
)
from .thread import ThreadTransport

__all__ = [
    "ControlBlock",
    "Deadline",
    "Frame",
    "FrameDecoder",
    "ProcessTransport",
    "ShmFabric",
    "ShmRing",
    "ThreadTransport",
    "Transport",
    "WorkerError",
    "encode_frame",
    "join_group",
    "ring_offset",
    "ring_segment_size",
    "validate_process_policy",
]

# the process transport imports the communicator (its fabric subclasses
# Fabric), which itself imports .base above — resolve lazily so merely
# importing the communicator cannot recurse into this package.
_LAZY = {"ProcessTransport", "ShmFabric", "validate_process_policy"}


def __getattr__(name: str):
    if name in _LAZY:
        from . import process

        return getattr(process, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
