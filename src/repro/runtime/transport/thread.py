"""The in-process thread transport: the default and the oracle.

Every rank is a daemon thread of this interpreter sharing one
:class:`~repro.runtime.communicator.Fabric`, so payloads move by
reference (zero copies), the full chaos wire / integrity / failure
detector / rejoin machinery applies, and results are deterministic
enough to serve as the bit-exactness oracle the process backend is
differentially tested against.

Threads trade wall-clock parallelism for semantics: compute serializes
on the GIL, which is exactly what the shared-memory process transport
(:mod:`repro.runtime.transport.process`) exists to remove.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...obs import flight as _flight
from .base import Deadline, Transport, WorkerError, join_group

__all__ = ["ThreadTransport"]


class ThreadTransport(Transport):
    """Run every rank as a thread of this process on one shared fabric."""

    name = "thread"
    supports_detector = True
    supports_tracer = True
    chaos = "full"

    def __init__(self, fabric: Any = None, postmortem_to: Optional[str] = None):
        #: the fabric all ranks share; built at launch when not supplied.
        self.fabric = fabric
        #: explicit post-mortem dump directory (falls back to the
        #: ``REPRO_POSTMORTEM_DIR`` environment variable).
        self.postmortem_to = postmortem_to
        #: post-mortem bundle of the most recent *failed* launch (None
        #: after a clean one), and where it was written (if anywhere).
        self.last_postmortem: Optional[Dict] = None
        self.last_postmortem_path: Optional[str] = None

    def launch(
        self,
        world_size: int,
        fn: Callable[[Any], Any],
        timeout: float,
        elastic: bool,
        detector: Any = None,
    ) -> Tuple[List[Any], List[Optional[WorkerError]]]:
        from ..communicator import Fabric

        if self.fabric is not None:
            fab = self.fabric
            if detector is not None:
                if fab.detector is not None and fab.detector is not detector:
                    raise ValueError("fabric already has a different detector")
                fab.detector = detector
        else:
            fab = self.fabric = Fabric(
                world_size, timeout=timeout, detector=detector
            )
        if fab.world_size != world_size:
            raise ValueError("fabric world_size does not match")

        results: List[Any] = [None] * world_size
        errors: List[Optional[WorkerError]] = [None] * world_size

        def target(rank: int) -> None:
            comm = fab.communicator(rank)
            try:
                results[rank] = fn(comm)
            except BaseException as exc:  # noqa: BLE001 - must propagate everything
                errors[rank] = WorkerError.capture(rank, exc)
                fab.flight.rings[rank].record(_flight.EV_WORKER_ERROR, rank)
                if elastic:
                    # fail-stop: only this rank dies; survivors are
                    # notified at their next fabric op and may recover.
                    fab.fail_rank(rank, f"raised {exc!r}")
                else:
                    fab.abort(f"rank {rank} raised {exc!r}")

        threads = [
            threading.Thread(target=target, args=(r,), name=f"worker-{r}", daemon=True)
            for r in range(world_size)
        ]
        for t in threads:
            t.start()
        join_group(
            threads,
            Deadline(timeout),
            on_timeout=lambda: fab.abort("join timeout"),
        )
        self.last_postmortem = None
        self.last_postmortem_path = None
        first = next((e for e in errors if e is not None), None)
        aborted = fab._aborted
        if first is not None or aborted:
            if first is not None:
                reason = {
                    "kind": type(first.original).__name__,
                    "detail": str(first.original),
                    "rank": first.rank,
                }
            else:
                reason = {"kind": "abort", "detail": aborted}
            bundle = _flight.build_postmortem(
                self.name,
                world_size,
                reason,
                fab.flight.snapshot(),
                failed=fab.failed_ranks(),
                aborted=aborted,
            )
            self.last_postmortem = bundle
            directory = self.postmortem_to or _flight.postmortem_dir()
            if directory:
                self.last_postmortem_path = _flight.dump_postmortem(
                    bundle, directory
                )
        return results, errors
