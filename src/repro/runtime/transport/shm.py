"""Shared-memory wire primitives for the process transport.

Three small pieces, deliberately free of any repro-specific policy so
they can be unit-tested in isolation:

* :class:`ShmRing` — a single-producer/single-consumer circular *byte
  stream* over a shared-memory slice.  Positions are monotonically
  increasing u64 counters (``wpos``/``rpos``); the producer publishes
  ``wpos`` only after the payload bytes are copied in (and the consumer
  ``rpos`` only after they are copied out), so a reader never observes
  bytes that are not fully written — the seqlock-style ordering the
  frame headers rely on.  Frames may exceed the ring capacity: both
  ends stream partial chunks.

* the **frame codec** (:func:`encode_frame` / :class:`FrameDecoder`) —
  one fabric message per frame.  The header carries the per-link
  sequence number and a CRC32 over every frame byte after the header
  (meta + pickle blob + out-of-band payload), accumulated by the
  decoder as the bytes stream in — the PR-7 integrity frame, but
  priced at ``zlib.crc32`` memory bandwidth on the serialized bytes
  instead of a per-leaf structural walk, and covering exactly what the
  wire carried.  Payloads are pickled with protocol 5: array bodies
  travel *out of band*.  A body resident in a :class:`ShmArena` region
  crosses as a ``(region, offset, nbytes, fmt)`` descriptor — zero
  bytes moved, the receiver wraps the same shared pages — while private
  bodies are appended raw after the blob and land directly into buffers
  acquired from the receiving rank's :class:`BufferPool`, the same
  ``(numel, dtype)`` keys the ring engines later release, so the
  zero-steady-state-allocation property survives the backend switch.

* :class:`ShmArena` — per-rank bump regions of the same segment that
  back the :class:`BufferPool` miss allocator in each worker, making
  every pooled buffer addressable by every rank and therefore
  descriptor-shippable.  This is what makes the weight ring *zero-copy
  across processes*: after the first circulation warms the pools, a
  slot hop moves a ~hundred-byte frame regardless of model size.

* :class:`ControlBlock` — the shared fail-stop state: one abort flag +
  reason and a per-rank failed/reason/step record, written before the
  flag that publishes them.  Every fabric operation on every rank
  reads one small contiguous *disturb token* (abort byte + fail flags)
  and compares it against its cached copy, so the hot path costs one
  slice read, not a parse.

Frame layout (little-endian)::

    u32 seq        per-link frame counter (gap = stream corruption)
    u32 crc        CRC32 of all frame bytes after the header
                   (valid when flags bit 0)
    u32 flags      bit 0: crc present
    u32 meta_len   pickled (tag, logical_nbytes, buffer_specs)
    u32 blob_len   pickle-5 payload blob (out-of-band buffers elided)
    u32 payload_len  total out-of-band bytes following the blob
"""

from __future__ import annotations

import pickle
import struct
import threading
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "ControlBlock",
    "Frame",
    "FrameDecoder",
    "ShmArena",
    "ShmRing",
    "arena_offset",
    "encode_frame",
    "ring_segment_size",
    "ring_offset",
]

_HEADER = struct.Struct("<IIIIII")
FLAG_CRC = 1

_U64 = struct.Struct("<Q")


class ShmRing:
    """SPSC circular byte stream over a shared-memory slice.

    The slice starts with a 64-byte header (``wpos`` at offset 0,
    ``rpos`` at offset 8, the rest padding to keep the two counters on
    separate cache lines from the data) followed by ``capacity`` data
    bytes.  Exactly one process writes and one reads.
    """

    HEADER = 64

    def __init__(self, buf: memoryview, capacity: int, create: bool = False):
        if len(buf) < self.HEADER + capacity:
            raise ValueError("ring slice smaller than header + capacity")
        self._buf = buf
        self._cap = capacity
        self._data = buf[self.HEADER : self.HEADER + capacity]
        if create:
            buf[0:16] = b"\x00" * 16

    @property
    def capacity(self) -> int:
        return self._cap

    def _wpos(self) -> int:
        return _U64.unpack_from(self._buf, 0)[0]

    def _rpos(self) -> int:
        return _U64.unpack_from(self._buf, 8)[0]

    def readable(self) -> int:
        """Bytes the consumer could read right now."""
        return self._wpos() - self._rpos()

    def writable(self) -> int:
        """Bytes the producer could write right now."""
        return self._cap - (self._wpos() - self._rpos())

    def write_some(self, mv: memoryview) -> int:
        """Copy as much of ``mv`` as fits; returns bytes written.

        Producer side only.  The position is published *after* the data
        copy, so a concurrent reader never sees unwritten bytes.
        """
        w = self._wpos()
        n = min(len(mv), self._cap - (w - self._rpos()))
        if n <= 0:
            return 0
        off = w % self._cap
        first = min(n, self._cap - off)
        self._data[off : off + first] = mv[:first]
        if n > first:
            self._data[0 : n - first] = mv[first:n]
        _U64.pack_into(self._buf, 0, w + n)
        return n

    def read_into(self, mv: memoryview) -> int:
        """Fill as much of ``mv`` as available; returns bytes read.

        Consumer side only; publishes ``rpos`` after the copy so the
        producer cannot overwrite bytes still being read.
        """
        r = self._rpos()
        n = min(len(mv), self._wpos() - r)
        if n <= 0:
            return 0
        off = r % self._cap
        first = min(n, self._cap - off)
        mv[:first] = self._data[off : off + first]
        if n > first:
            mv[first:n] = self._data[0 : n - first]
        _U64.pack_into(self._buf, 8, r + n)
        return n


def ring_segment_size(world: int, control_bytes: int, link_bytes: int) -> int:
    """Total shared-segment size for a full mesh of directed links."""
    links = world * (world - 1)
    return control_bytes + links * (ShmRing.HEADER + link_bytes)


def ring_offset(
    src: int, dst: int, world: int, control_bytes: int, link_bytes: int
) -> int:
    """Byte offset of the ``src -> dst`` ring inside the segment."""
    if src == dst:
        raise ValueError("no ring for a self link")
    idx = src * (world - 1) + (dst if dst < src else dst - 1)
    return control_bytes + idx * (ShmRing.HEADER + link_bytes)


def arena_offset(
    rank: int, world: int, control_bytes: int, link_bytes: int, arena_bytes: int
) -> int:
    """Byte offset of ``rank``'s arena region (regions follow the rings)."""
    return (
        ring_segment_size(world, control_bytes, link_bytes)
        + rank * arena_bytes
    )


class ShmArena:
    """Per-rank bump allocator over the segment's shared arena regions.

    Each rank *allocates* only from its own region, but can *address*
    every rank's region: a pooled buffer that wandered here from a peer
    (delivered by descriptor, released into the local pool, re-acquired)
    is still shared memory, so forwarding it again costs one descriptor.
    ``alloc`` never recycles — the :class:`~repro.nn.params.BufferPool`
    free-list is the recycler, so a region's high-water mark is the peak
    number of live buffers, not cumulative traffic.  Exhaustion returns
    ``None`` and the caller falls back to private memory (which simply
    travels by copy).

    Every allocation reserves a power-of-two *span* (``span_nbytes``)
    even though the returned array is exact-sized.  Ring slots wander
    between ranks' pools with slightly different sizes per chunk, so the
    process-side pool recycles arena buffers by span class rather than
    exact size; rounding at the source guarantees any buffer of a class
    can satisfy any request of that class without overrunning into the
    next allocation.
    """

    ALIGN = 64

    @staticmethod
    def span_nbytes(nbytes: int) -> int:
        """The power-of-two span class covering ``nbytes``."""
        if nbytes <= ShmArena.ALIGN:
            return ShmArena.ALIGN
        return 1 << (nbytes - 1).bit_length()

    def __init__(self, regions: List[memoryview], own: int):
        self._regions = regions
        self._own = own
        self._off = 0
        self._lock = threading.Lock()
        spans: List[Tuple[int, int, int]] = []
        for idx, region in enumerate(regions):
            if len(region) == 0:
                continue
            base = np.frombuffer(region, dtype=np.uint8).__array_interface__[
                "data"
            ][0]
            spans.append((base, base + len(region), idx))
        self._spans = sorted(spans)

    @property
    def capacity(self) -> int:
        return len(self._regions[self._own])

    @property
    def used(self) -> int:
        return self._off

    def alloc(self, numel: int, dtype) -> Optional[np.ndarray]:
        """A flat shared-memory buffer from this rank's region, or
        ``None`` when the region is exhausted."""
        dt = np.dtype(dtype)
        nbytes = int(numel) * dt.itemsize
        if nbytes == 0:
            return np.empty(0, dtype=dt)
        span = self.span_nbytes(nbytes)
        region = self._regions[self._own]
        with self._lock:
            start = (self._off + self.ALIGN - 1) & ~(self.ALIGN - 1)
            if start + span > len(region):
                return None
            self._off = start + span
        return np.frombuffer(region[start : start + nbytes], dtype=dt)

    def locate(self, raw: memoryview) -> Optional[Tuple[int, int]]:
        """``(region, offset)`` when ``raw`` lies wholly inside a shared
        arena region (any rank's), else ``None``."""
        if raw.nbytes == 0:
            return None
        addr = np.frombuffer(raw, dtype=np.uint8).__array_interface__["data"][0]
        for lo, hi, idx in self._spans:
            if lo <= addr and addr + raw.nbytes <= hi:
                return idx, addr - lo
        return None

    def view(self, region: int, offset: int, nbytes: int, dtype) -> np.ndarray:
        """Wrap ``nbytes`` at ``(region, offset)`` as a flat array —
        the receive side of a descriptor, zero bytes moved."""
        dt = np.dtype(dtype)
        if offset < 0 or offset + nbytes > len(self._regions[region]):
            raise ValueError(
                f"arena descriptor out of range: region {region} "
                f"offset {offset} nbytes {nbytes}"
            )
        return np.frombuffer(
            self._regions[region][offset : offset + nbytes], dtype=dt
        )


# -- frame codec -------------------------------------------------------------


class Frame:
    """One decoded wire frame (payload already rebuilt).

    ``crc`` is the header's declared digest (``None`` when the sender
    framed without one); ``crc_actual`` is the digest the decoder
    accumulated over the bytes that actually streamed in.
    """

    __slots__ = ("seq", "crc", "crc_actual", "tag", "nbytes", "payload")

    def __init__(self, seq: int, crc: Optional[int], crc_actual: Optional[int],
                 tag: Tuple, nbytes: int, payload: Any):
        self.seq = seq
        self.crc = crc
        self.crc_actual = crc_actual
        self.tag = tag
        self.nbytes = nbytes
        self.payload = payload


def encode_frame(
    payload: Any,
    tag: Tuple,
    nbytes: int,
    seq: int,
    integrity: bool = True,
    arena: Optional[ShmArena] = None,
) -> List[memoryview]:
    """Serialize one message into an ordered list of byte chunks.

    Contiguous array bodies are elided from the pickle blob
    (``buffer_callback``).  A body that lives inside a shared arena
    region becomes a 4-tuple *descriptor* spec ``(region, offset,
    nbytes, fmt)`` — zero bytes on the wire, the receiver re-maps the
    same memory.  Anything else becomes a 2-tuple copy spec ``(nbytes,
    fmt)`` with the raw bytes appended after the blob, so a private
    buffer still crosses as exactly one memcpy into the ring.  With
    ``integrity`` the header carries a CRC32 over every chunk after the
    header itself — for descriptor payloads that is the descriptor, not
    the mapped bytes, mirroring the thread wire's by-reference handoff.
    """
    bufs: List[pickle.PickleBuffer] = []
    blob = pickle.dumps(payload, protocol=5, buffer_callback=bufs.append)
    raws: List[memoryview] = []
    specs: List[Tuple] = []
    for pb in bufs:
        raw = pb.raw()
        try:
            fmt = memoryview(pb).format or "B"
        except BufferError:  # pragma: no cover - non-contiguous never raw()s
            fmt = "B"
        loc = arena.locate(raw) if arena is not None else None
        if loc is not None:
            specs.append((loc[0], loc[1], raw.nbytes, fmt))
        else:
            specs.append((raw.nbytes, fmt))
            raws.append(raw)
    meta = pickle.dumps((tag, nbytes, specs), protocol=4)
    payload_len = sum(r.nbytes for r in raws)
    crc = 0
    flags = 0
    if integrity:
        crc = zlib.crc32(blob, zlib.crc32(meta))
        for r in raws:
            crc = zlib.crc32(r, crc)
        flags = FLAG_CRC
    header = _HEADER.pack(seq, crc, flags, len(meta), len(blob), payload_len)
    return [memoryview(header), memoryview(meta), memoryview(blob)] + raws


def _dtype_for(fmt: str, nbytes: int) -> np.dtype:
    """Pool dtype for an out-of-band buffer; opaque formats fall back to
    bytes so the buffer is still poolable (just under a byte key)."""
    try:
        dt = np.dtype(fmt)
    except TypeError:
        return np.dtype("u1")
    if dt.itemsize == 0 or nbytes % dt.itemsize:
        return np.dtype("u1")
    return dt


class FrameDecoder:
    """Incremental frame reader for one inbound link.

    Drives a :class:`ShmRing` through the header -> meta/blob -> payload
    stages, keeping partial state between ``poll`` calls so a frame
    larger than the ring (or arriving in pieces) is reassembled without
    ever blocking the pump.  ``acquire(numel, dtype)`` supplies payload
    destinations — wire bytes land straight in pool buffers.
    """

    def __init__(
        self,
        ring: ShmRing,
        acquire: Callable[[int, np.dtype], np.ndarray],
        arena: Optional[ShmArena] = None,
    ):
        self._ring = ring
        self._acquire = acquire
        self._arena = arena
        self._hdr = memoryview(bytearray(_HEADER.size))
        self._reset()

    def _reset(self) -> None:
        self._stage = 0  # 0 = header, 1 = meta+blob, 2 = payload
        self._have = 0
        self._seq = 0
        self._crc: Optional[int] = None
        self._acc = 0  # running CRC32 over post-header bytes
        self._meta_len = 0
        self._body: Optional[memoryview] = None
        self._tag: Tuple = ()
        self._nbytes = 0
        self._dests: List[np.ndarray] = []
        self._dest_views: List[memoryview] = []
        self._di = 0

    def poll(self) -> Optional[Frame]:
        """Advance the stream; returns one :class:`Frame` when a whole
        frame has landed, else ``None`` (partial state is kept)."""
        while True:
            if self._stage == 0:
                self._have += self._ring.read_into(self._hdr[self._have :])
                if self._have < len(self._hdr):
                    return None
                seq, crc, flags, meta_len, blob_len, _payload_len = _HEADER.unpack(
                    self._hdr
                )
                self._seq = seq
                self._crc = crc if flags & FLAG_CRC else None
                self._meta_len = meta_len
                self._body = memoryview(bytearray(meta_len + blob_len))
                self._have = 0
                self._stage = 1
            if self._stage == 1:
                body = self._body
                if self._have < len(body):
                    self._have += self._ring.read_into(body[self._have :])
                    if self._have < len(body):
                        return None
                if self._crc is not None:
                    self._acc = zlib.crc32(body)
                self._tag, self._nbytes, specs = pickle.loads(
                    body[: self._meta_len]
                )
                for spec in specs:
                    if len(spec) == 4:  # arena descriptor: re-map, no read
                        region, offset, buf_nbytes, fmt = spec
                        if self._arena is None:
                            raise RuntimeError(
                                "arena descriptor received on a link "
                                "decoded without an arena"
                            )
                        dt = _dtype_for(fmt, buf_nbytes)
                        self._dests.append(
                            self._arena.view(region, offset, buf_nbytes, dt)
                        )
                        continue
                    buf_nbytes, fmt = spec
                    dt = _dtype_for(fmt, buf_nbytes)
                    arr = self._acquire(buf_nbytes // dt.itemsize, dt)
                    self._dests.append(arr)
                    self._dest_views.append(memoryview(arr).cast("B"))
                self._have = 0
                self._di = 0
                self._stage = 2
            # payload stage: fill each destination buffer in wire order,
            # folding landed bytes into the running digest as they arrive.
            while self._di < len(self._dest_views):
                view = self._dest_views[self._di]
                got = self._ring.read_into(view[self._have :])
                if got and self._crc is not None:
                    self._acc = zlib.crc32(
                        view[self._have : self._have + got], self._acc
                    )
                self._have += got
                if self._have < len(view):
                    return None
                self._have = 0
                self._di += 1
            payload = pickle.loads(
                self._body[self._meta_len :],
                buffers=[memoryview(a) for a in self._dests],
            )
            frame = Frame(
                self._seq, self._crc,
                self._acc if self._crc is not None else None,
                self._tag, self._nbytes, payload,
            )
            self._reset()
            return frame


# -- shared fail-stop control state ------------------------------------------

_MAGIC = 0x57E1FE08  # "WeiPipe", PR 8
_ABORT_REASON_MAX = 254
_RANK_REASON_MAX = 144
_RANK_STRIDE = 176


class ControlBlock:
    """Abort/fail-stop state shared by every rank and the launcher.

    Writers fill the reason/step fields *before* setting the one-byte
    flag that publishes them, so a reader that sees the flag always
    sees a complete record.  ``disturb_token()`` returns the abort byte
    plus all fail flags as one small bytes object — the per-operation
    hot-path check is a slice copy and an equality compare.

    The tail of the block is the **clock-alignment handshake** region:
    one parent slot (the launcher's ``perf_counter`` epoch, published
    before fork) and one slot per rank (the child's own clock sample,
    taken right after reading the epoch).  Each slot is an 8-byte float
    plus a publish flag, same write-then-flag discipline as the fail
    records; :mod:`repro.obs.merge` turns the three readings into a
    per-rank clock offset with a recorded skew bound.
    """

    @staticmethod
    def size(world: int) -> int:
        reason_off = (16 + world + 7) & ~7
        ranks_end = reason_off + 2 + _ABORT_REASON_MAX + world * _RANK_STRIDE
        return ranks_end + 16 * (world + 1)

    def __init__(self, buf: memoryview, world: int, create: bool = False):
        need = self.size(world)
        if len(buf) < need:
            raise ValueError("control slice too small")
        self._mv = buf[:need]
        self.world = world
        self._flags_off = 16
        self._reason_off = (16 + world + 7) & ~7
        self._ranks_off = self._reason_off + 2 + _ABORT_REASON_MAX
        self._clock_off = self._ranks_off + world * _RANK_STRIDE
        if create:
            self._mv[:] = b"\x00" * need
            struct.pack_into("<II", self._mv, 0, _MAGIC, world)
        else:
            magic, w = struct.unpack_from("<II", self._mv, 0)
            if magic != _MAGIC or w != world:
                raise ValueError("control block header mismatch")

    # -- abort ---------------------------------------------------------------

    def abort(self, reason: str) -> None:
        raw = reason.encode("utf-8", "replace")[:_ABORT_REASON_MAX]
        struct.pack_into("<H", self._mv, self._reason_off, len(raw))
        self._mv[self._reason_off + 2 : self._reason_off + 2 + len(raw)] = raw
        self._mv[8] = 1

    def aborted(self) -> Optional[str]:
        if not self._mv[8]:
            return None
        (n,) = struct.unpack_from("<H", self._mv, self._reason_off)
        return bytes(
            self._mv[self._reason_off + 2 : self._reason_off + 2 + n]
        ).decode("utf-8", "replace")

    # -- fail-stop records ---------------------------------------------------

    def _rank_off(self, rank: int) -> int:
        return self._ranks_off + rank * _RANK_STRIDE

    def fail(self, rank: int, reason: str, step: Optional[int]) -> None:
        off = self._rank_off(rank)
        raw = reason.encode("utf-8", "replace")[:_RANK_REASON_MAX]
        struct.pack_into(
            "<qBBH", self._mv, off,
            step if step is not None else 0,
            1 if step is not None else 0,
            0,
            len(raw),
        )
        self._mv[off + 32 : off + 32 + len(raw)] = raw
        self._mv[self._flags_off + rank] = 1  # publish last

    def is_failed(self, rank: int) -> bool:
        return bool(self._mv[self._flags_off + rank])

    def failed(self) -> Dict[int, Tuple[str, Optional[int]]]:
        out: Dict[int, Tuple[str, Optional[int]]] = {}
        for r in range(self.world):
            if not self._mv[self._flags_off + r]:
                continue
            off = self._rank_off(r)
            step, has_step, _res, n = struct.unpack_from("<qBBH", self._mv, off)
            reason = bytes(self._mv[off + 32 : off + 32 + n]).decode(
                "utf-8", "replace"
            )
            out[r] = (reason, step if has_step else None)
        return out

    def fail_count(self) -> int:
        return sum(
            1 for r in range(self.world) if self._mv[self._flags_off + r]
        )

    def disturb_token(self) -> bytes:
        """Abort byte + fail flags, for the cached hot-path compare."""
        return bytes(self._mv[8 : self._flags_off + self.world])

    def release(self) -> None:
        """Drop this block's view of the segment (the segment owner must
        release every live slice before ``SharedMemory.close``)."""
        self._mv.release()

    # -- progress ------------------------------------------------------------

    def set_progress(self, rank: int, step: int) -> None:
        off = self._rank_off(rank)
        struct.pack_into("<q", self._mv, off + 16, step)
        self._mv[off + 24] = 1

    def progress(self, rank: int) -> Optional[int]:
        off = self._rank_off(rank)
        if not self._mv[off + 24]:
            return None
        return struct.unpack_from("<q", self._mv, off + 16)[0]

    # -- clock-alignment handshake --------------------------------------------

    def publish_epoch(self, epoch: float) -> None:
        """Launcher side: publish the parent ``perf_counter`` epoch."""
        struct.pack_into("<d", self._mv, self._clock_off, epoch)
        self._mv[self._clock_off + 8] = 1

    def epoch(self) -> Optional[float]:
        if not self._mv[self._clock_off + 8]:
            return None
        return struct.unpack_from("<d", self._mv, self._clock_off)[0]

    def set_clock(self, rank: int, sample: float) -> None:
        """Child side: publish this rank's own clock sample."""
        off = self._clock_off + 16 * (rank + 1)
        struct.pack_into("<d", self._mv, off, sample)
        self._mv[off + 8] = 1

    def clock(self, rank: int) -> Optional[float]:
        off = self._clock_off + 16 * (rank + 1)
        if not self._mv[off + 8]:
            return None
        return struct.unpack_from("<d", self._mv, off)[0]
