"""Transport interface: how a group of ranks is executed and wired up.

A :class:`Transport` owns the *execution substrate* of one worker group —
threads of this interpreter, or forked processes talking over shared
memory — behind one contract:

``launch(world_size, fn, timeout, elastic, detector)`` runs ``fn(comm)``
once per rank and returns ``(results, errors)`` indexed by rank, where
``errors[r]`` is a :class:`WorkerError` wrapping whatever rank ``r``
raised (``None`` when it returned).  Non-elastic callers raise the first
error; elastic callers treat a dead rank as a fail-stop event that the
survivors observed as ``PeerFailed``.

Semantics every transport must preserve (the thread transport is the
oracle; ``repro.testing.run_backend_differential`` enforces bit-exact
agreement):

* tag-namespaced FIFO channels with MPI posted-receive matching,
* buffered sends (a send never deadlocks against the matching receive),
* ``abort`` poisons the whole group (``FabricAborted`` everywhere),
* ``fail_rank`` interrupts survivors with ``PeerFailed`` once per
  failure epoch until acknowledged,
* one *group-wide* join deadline — joining P ranks in sequence must not
  stretch the worst case to ``P x timeout`` (:class:`Deadline`).

Capability flags tell callers which optional machinery a backend
supports (``supports_detector``, ``supports_tracer``,
``chaos="full"|"delay-only"|None``); asking for an unsupported feature
is a loud ``ValueError`` at launch, never a silent downgrade.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = ["Deadline", "Transport", "WorkerError", "join_group"]


class WorkerError(RuntimeError):
    """Wraps an exception raised inside a worker, annotated with its rank."""

    def __init__(self, rank: int, original: BaseException, tb: str):
        super().__init__(f"worker rank {rank} failed: {original!r}\n{tb}")
        self.rank = rank
        self.original = original

    @classmethod
    def capture(cls, rank: int, exc: BaseException) -> "WorkerError":
        """Wrap a live exception with its current traceback."""
        return cls(rank, exc, traceback.format_exc())


class Deadline:
    """One wall-clock budget shared across a group of waits.

    The launcher joins P workers, a blocked receive re-arms its
    condition wait per pass, and the rejoin protocol polls for
    admission — all against *one* deadline each, so a sequence of waits
    cannot stretch the worst case to ``n x timeout``.  This helper is
    that shared arithmetic: construct once, then ask ``remaining()`` /
    ``expired()`` as many times as needed.
    """

    __slots__ = ("limit", "start", "_deadline")

    def __init__(self, limit: float):
        self.limit = limit
        self.start = time.monotonic()
        self._deadline = self.start + limit

    def elapsed(self) -> float:
        return time.monotonic() - self.start

    def remaining(self) -> float:
        """Seconds left (clamped at 0.0 — safe to hand to ``join``/``wait``)."""
        return max(0.0, self._deadline - time.monotonic())

    def expired(self) -> bool:
        return time.monotonic() >= self._deadline

    def budget(self, cap: Optional[float] = None) -> float:
        """Remaining time, optionally capped (for polling loops)."""
        rem = self.remaining()
        return rem if cap is None else min(rem, cap)


def join_group(
    workers: Sequence[Any],
    deadline: Deadline,
    on_timeout: Callable[[], None],
    describe: Callable[[Any], str] = lambda w: getattr(w, "name", repr(w)),
) -> None:
    """Join every worker against one shared :class:`Deadline`.

    Works for ``threading.Thread`` and ``multiprocessing.Process`` alike
    (both expose ``join(timeout)`` / ``is_alive()``).  On expiry,
    ``on_timeout()`` gets a chance to poison the group (so survivors
    fail fast instead of hanging) before :class:`TimeoutError` is
    raised naming the stuck worker.
    """
    for w in workers:
        w.join(timeout=deadline.budget())
        if w.is_alive():
            on_timeout()
            raise TimeoutError(
                f"worker {describe(w)} did not finish within the group "
                f"deadline ({deadline.limit}s shared across all ranks)"
            )


class Transport:
    """Execution backend for one worker group (see module docstring)."""

    #: short name used by CLI flags, metrics labels and artefacts.
    name: str = "abstract"
    #: whether a heartbeat failure detector (and the rejoin protocol it
    #: gates) can be attached.
    supports_detector: bool = False
    #: whether per-rank tracing is available.
    supports_tracer: bool = False
    #: chaos support: "full" (every ChaosPolicy knob), "delay-only"
    #: (seeded hold-backs only), or None.
    chaos: Optional[str] = None

    def launch(
        self,
        world_size: int,
        fn: Callable[[Any], Any],
        timeout: float,
        elastic: bool,
        detector: Any = None,
    ) -> Tuple[List[Any], List[Optional[WorkerError]]]:
        raise NotImplementedError
