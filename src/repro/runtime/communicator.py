"""In-process message-passing fabric with an MPI/NCCL-flavoured API.

:class:`Fabric` owns one mailbox per destination rank; workers interact
through per-rank :class:`Communicator` views offering ``send`` /
``recv`` / ``isend`` / ``irecv`` with ``(phase, ...)`` tags, mirroring
the ``batch_isend_irecv`` pattern the paper's PyTorch implementation
uses for weight prefetching.

Semantics:

* sends are buffered and never block (NCCL eager-ish; matches the
  paper's asynchronous prefetch usage); ``isend`` returns an
  already-complete handle for API symmetry,
* ``irecv`` *posts* a receive: the handle claims the next matching
  message the moment it is delivered (MPI posted-receive semantics), so
  handles on one ``(src, tag)`` channel complete in posting order no
  matter in which order they are waited,
* ``recv`` blocks until a message with the exact ``(src, tag)`` key is
  available; a configurable timeout turns silent deadlocks — the classic
  pipeline-schedule bug — into loud errors naming the blocked rank,
* aborting one worker poisons the fabric so peers blocked in ``recv``
  fail fast instead of hanging the test suite,
* alternatively a *single rank* can be declared failed
  (:meth:`Fabric.fail_rank`) without poisoning the group: every other
  rank is interrupted with :class:`PeerFailed` at its next fabric
  operation, acknowledges the failure, and keeps using the fabric — the
  detection half of elastic ring-shrink recovery
  (:mod:`repro.runtime.recovery`).

Message *order* between a fixed (src, dst, tag) triple is FIFO; across
different tags matching is by tag, as in MPI.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict, deque
from time import perf_counter
from typing import Any, Deque, Dict, Optional, Tuple

from ..obs import flight as _flight
from ..obs.flight import FlightBox
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER
from .integrity import payload_crc32
from .message import Message, TrafficStats, payload_nbytes, tag_kind
from .topology import Topology
from .transport.base import Deadline

__all__ = [
    "Fabric",
    "Communicator",
    "RecvTimeout",
    "FabricAborted",
    "PeerFailed",
    "DeclaredDead",
]


class RecvTimeout(RuntimeError):
    """A blocking receive waited longer than the fabric timeout."""


class FabricAborted(RuntimeError):
    """A peer worker raised; the fabric has been poisoned."""


class DeclaredDead(RuntimeError):
    """This rank was confirmed dead by the group while it was still alive.

    Only raised on fabrics with a failure detector attached: a rank that
    was falsely confirmed (it merely stalled or its NIC flapped) learns
    about the verdict at its next fabric operation and can ask to
    re-enter via :meth:`Fabric.request_rejoin` /
    :meth:`Fabric.await_readmission` — the re-grow half of elastic
    recovery (:mod:`repro.runtime.recovery`).  Genuinely crashed ranks
    never perform another fabric operation, so they never see this.
    """


class PeerFailed(RuntimeError):
    """One or more peer ranks failed (fail-stop); the fabric stays alive.

    Raised at a survivor's next fabric operation after
    :meth:`Fabric.fail_rank`, once per failure epoch per rank — call
    :meth:`Communicator.acknowledge_failures` to resume using the
    fabric.  ``failed`` maps the dead global rank to ``(reason, step)``
    where ``step`` is the last progress that rank reported (or ``None``).
    """

    def __init__(self, failed: Dict[int, Tuple[str, Optional[int]]]):
        self.failed = dict(failed)
        parts = ", ".join(
            f"rank {r} (step {s if s is not None else '?'}: {reason})"
            for r, (reason, s) in sorted(self.failed.items())
        )
        super().__init__(f"peer failure detected: {parts}")

    @property
    def ranks(self) -> Tuple[int, ...]:
        return tuple(sorted(self.failed))


class Fabric:
    """Shared state for one group of communicating workers."""

    #: whether payloads cross a wire by value.  The in-process fabric
    #: delivers by *reference* (sender and receiver share one buffer, so
    #: a replaced ring slot may still be aliased elsewhere and must not
    #: be recycled); the shm process fabric sets True (a received buffer
    #: has exactly one owner, so the ring engines retire replaced slots
    #: into the pool).
    wire_copies = False

    def __init__(
        self,
        world_size: int,
        timeout: float = 60.0,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        topology: Optional[Topology] = None,
        detector=None,
        integrity: bool = True,
    ):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if topology is not None and topology.world_size != world_size:
            raise ValueError(
                f"topology is for world_size {topology.world_size}, "
                f"fabric has {world_size}"
            )
        self.world_size = world_size
        self.timeout = timeout
        #: optional per-link topology; when set, traffic is additionally
        #: ledgered per link class (intra/inter) and the chaos wire adds a
        #: deterministic serialization delay per link.  The plain fabric
        #: still delivers instantly — topology here is accounting-only.
        self.topology = topology
        #: per-rank timeline recorder; NULL_TRACER (allocation-free
        #: no-ops) unless a real one is attached — see repro.obs.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: canonical metric store; TrafficStats below remains as a thin
        #: legacy view fed by the same _record_traffic_locked call.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: optional :class:`~repro.runtime.detector.FailureDetector`;
        #: when attached, every fabric operation heartbeats its rank and
        #: blocked receivers periodically re-judge their peer — confirmed
        #: failures feed the fail_rank / PeerFailed elastic path, and a
        #: falsely-confirmed (still running) rank gets DeclaredDead.
        self.detector = detector
        #: frame every posted message with a payload CRC32 (the chaos
        #: wire verifies on delivery; the plain wire is trusted).
        self.integrity = integrity
        # heal telemetry: created eagerly so quiet runs export explicit
        # zeros (the CI quiet-wire control asserts on them).
        self._m_heal = {
            name: self.metrics.counter(name)
            for name in (
                "fabric_retransmits",
                "fabric_corrupt_frames",
                "detector_suspicions",
                "detector_suspicions_cleared",
                "detector_confirms",
                "ring_rejoins",
            )
        }
        #: always-on black-box flight recorder: one bounded ring per
        #: rank holding the most recent fabric/control/integrity events
        #: (repro.obs.flight).  Fixed memory, allocation-free writes;
        #: transports dump it into a post-mortem bundle on failure.
        self.flight = FlightBox(world_size)
        # cached per-kind counter handles so the per-message hot path
        # does one dict lookup, not a registry resolution.
        self._traffic_handles: Dict[str, Tuple[Any, Any]] = {}
        # ditto for the per-link-class handles (topology fabrics only).
        self._link_handles: Dict[str, Tuple[Any, Any]] = {}
        self._link_bytes: Dict[str, int] = {}
        self._link_msgs: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        # mailbox[dst][(src, tag)] -> FIFO of messages
        self._mail: Dict[int, Dict[Tuple, Deque[Message]]] = {
            r: defaultdict(deque) for r in range(world_size)
        }
        self._aborted: Optional[str] = None
        # fail-stop bookkeeping (elastic mode): dead rank -> (reason, step);
        # each failure bumps the epoch, and every surviving rank raises
        # PeerFailed once per epoch until it acknowledges.
        self._failed: Dict[int, Tuple[str, Optional[int]]] = {}
        self._fail_epoch = 0
        self._ack_epoch: Dict[int, int] = {}
        self._progress: Dict[int, int] = {}
        # ring re-grow bookkeeping: failed ranks asking to come back, and
        # admissions waiting to be picked up -> (recovery epoch, leader).
        self._rejoin_requests: set = set()
        self._admitted: Dict[int, Tuple[int, int]] = {}
        # posted receives: (dst, src, tag) -> FIFO of unfulfilled handles.
        # Delivery drains mailbox messages into posted handles in posting
        # order, so out-of-order waits cannot steal each other's message.
        self._posted: Dict[Tuple[int, int, Tuple], Deque["_RecvHandle"]] = {}
        self._shared_pool: Any = None
        self.stats = TrafficStats()

    # -- internal ------------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.world_size):
            raise ValueError(f"rank {rank} out of range 0..{self.world_size - 1}")

    def _check_disturbed(self, rank: int) -> None:
        """Raise if the fabric was poisoned or a peer failure is unacked.

        Caller holds the lock.  Without a failure detector, ``rank``
        never observes its *own* failure, so a dead rank's pending ops
        don't mask the original exception.  With a detector attached a
        failure may be a false confirmation of a rank that is in fact
        still running — that rank is told so with :class:`DeclaredDead`
        (its gateway into the rejoin protocol) instead of being left to
        time out.
        """
        if self._aborted:
            raise FabricAborted(self._aborted)
        if self._failed:
            if rank in self._failed and self.detector is not None:
                reason, _ = self._failed[rank]
                raise DeclaredDead(
                    f"rank {rank} was declared failed ({reason}); "
                    f"request_rejoin() to re-enter the ring"
                )
            if self._ack_epoch.get(rank, 0) < self._fail_epoch:
                self.flight.rings[rank].record(
                    _flight.EV_PEER_FAILED, rank, self._fail_epoch
                )
                raise PeerFailed(
                    {r: v for r, v in self._failed.items() if r != rank}
                )

    def _check_flow_locked(self, dst: int, src: int, tag: Tuple) -> None:
        """Raise if the ``src -> dst, tag`` flow is poisoned (caller holds
        the lock).  The plain wire never poisons flows; the chaos wire
        overrides this to surface CorruptFrameError when a flow's
        retransmit budget is exhausted."""

    def _heartbeat_locked(self, rank: int, now: float) -> None:
        """Record liveness evidence for ``rank`` (caller holds the lock).

        The chaos wire overrides this to *suppress* heartbeats from a
        rank whose NIC is flapped — that suppression is exactly what lets
        tests drive the suspect/confirm path deterministically."""
        det = self.detector
        if det is not None and det.heartbeat(rank, now):
            self._m_heal["detector_suspicions_cleared"].add(1)
            self.flight.rings[rank].record(_flight.EV_SUSPECT_CLEAR, rank)

    def _record_traffic_locked(self, msg: Message) -> None:
        """Account one *logical* message, exactly once, for both the
        legacy :class:`TrafficStats` view and the metrics registry.

        This is the single choke point for traffic accounting: every
        post path (blocking or nonblocking, plain or chaos wire) must go
        through here so the per-kind ledgers cannot drift apart.  Caller
        holds the fabric lock, which is what makes the shared counter
        handles safe.
        """
        self.stats.record(msg)
        self.flight.rings[msg.src].record(_flight.EV_SEND, msg.dst, msg.nbytes)
        kind = tag_kind(msg.tag)
        handles = self._traffic_handles.get(kind)
        if handles is None:
            handles = (
                self.metrics.counter("fabric_bytes_total", kind=kind),
                self.metrics.counter("fabric_messages_total", kind=kind),
            )
            self._traffic_handles[kind] = handles
        handles[0].add(msg.nbytes)
        handles[1].add(1)
        if self.topology is not None:
            cls = self.topology.link_class(msg.src, msg.dst)
            link_handles = self._link_handles.get(cls)
            if link_handles is None:
                link_handles = (
                    self.metrics.counter("fabric_link_bytes_total", link=cls),
                    self.metrics.counter("fabric_link_messages_total", link=cls),
                )
                self._link_handles[cls] = link_handles
            link_handles[0].add(msg.nbytes)
            link_handles[1].add(1)
            self._link_bytes[cls] = self._link_bytes.get(cls, 0) + msg.nbytes
            self._link_msgs[cls] = self._link_msgs.get(cls, 0) + 1

    def link_traffic(self) -> Dict[str, Dict[str, int]]:
        """Per-link-class logical traffic so far (topology fabrics only):
        ``{"intra": {"bytes": ..., "messages": ...}, "inter": {...}}``."""
        with self._lock:
            return {
                cls: {"bytes": self._link_bytes.get(cls, 0),
                      "messages": self._link_msgs.get(cls, 0)}
                for cls in sorted(set(self._link_bytes) | set(self._link_msgs))
            }

    # hooks the chaos wire overrides -------------------------------------------

    def _pump_locked(self) -> int:
        """Move in-flight wire state into mailboxes (caller holds lock).

        The plain fabric delivers at ``post`` time, so there is nothing
        to pump; :class:`~repro.runtime.chaos.ChaosFabric` overrides this
        to land due limbo messages.
        """
        return 0

    def _next_event_locked(self) -> Optional[float]:
        """Monotonic time of the next wire event, or ``None`` (used to
        bound condition waits so delayed deliveries wake blocked
        receivers promptly)."""
        return None

    def _timeout_context(self) -> str:
        """Extra text for RecvTimeout messages (chaos names its seed)."""
        return ""

    def _idle_wait_locked(self, wait_for: float) -> None:
        """Block until notified or ``wait_for`` elapses (caller holds the
        lock).  Single-process transport endpoints override this: no peer
        thread can ever notify their condvar, so they yield/poll on their
        own clock instead of sleeping the full timeout."""
        self._cond.wait(timeout=wait_for)

    # -- delivery --------------------------------------------------------------

    def _drain_locked(self, key: Tuple[int, int, Tuple]) -> None:
        """Fulfil posted receives on ``key`` from its mailbox, in posting
        order (caller holds lock)."""
        posted = self._posted.get(key)
        if not posted:
            return
        queue = self._mail[key[0]][(key[1], key[2])]
        ring = self.flight.rings[key[0]]
        while posted and queue:
            h = posted.popleft()
            msg = queue.popleft()
            h._value = msg.payload
            h._done = True
            ring.record(_flight.EV_RECV, key[1], msg.nbytes)
        if not posted:
            del self._posted[key]

    def post(self, msg: Message) -> None:
        self._check_rank(msg.src)
        self._check_rank(msg.dst)
        if self.integrity and msg.crc is None:
            msg.crc = payload_crc32(msg.payload)
        with self._cond:
            self._check_disturbed(msg.src)
            if self.detector is not None:
                self._heartbeat_locked(msg.src, _now())
            self._mail[msg.dst][(msg.src, msg.tag)].append(msg)
            self._record_traffic_locked(msg)
            self._drain_locked((msg.dst, msg.src, msg.tag))
            self._cond.notify_all()

    def _post_recv_locked(self, dst: int, src: int, tag: Tuple) -> "_RecvHandle":
        # failure/abort checks come before consuming available messages
        # so survivors are interrupted promptly even when stale pre-crash
        # traffic is still queued.
        self._check_disturbed(dst)
        h = _RecvHandle(self, dst, src, tag)
        key = (dst, src, tag)
        self._posted.setdefault(key, deque()).append(h)
        self._pump_locked()
        self._drain_locked(key)
        return h

    def post_recv(self, dst: int, src: int, tag: Tuple) -> "_RecvHandle":
        """Post a receive: the returned handle owns the next matching
        message not claimed by an earlier posted receive."""
        self._check_rank(dst)
        self._check_rank(src)
        with self._cond:
            return self._post_recv_locked(dst, src, tag)

    def _cancel_locked(self, h: "_RecvHandle") -> None:
        posted = self._posted.get((h._dst, h._src, h._tag))
        if posted is not None:
            try:
                posted.remove(h)
            except ValueError:
                pass
            if not posted:
                del self._posted[(h._dst, h._src, h._tag)]

    def _wait_locked(self, h: "_RecvHandle", timeout: Optional[float]) -> Any:
        deadline = Deadline(timeout if timeout is not None else self.timeout)
        while True:
            if h._done:
                return h._value
            try:
                self._check_disturbed(h._dst)
                self._pump_locked()
                self._drain_locked((h._dst, h._src, h._tag))
                if h._done:
                    return h._value
                # after the pump: this thread's own pump call may have just
                # poisoned the flow (budget-exhausted corrupt frame), and
                # the notify_all it issued can't wake the thread that holds
                # the lock — re-checking here avoids sleeping a full
                # timeout on a flow already known dead.
                self._check_flow_locked(h._dst, h._src, h._tag)
                # re-derive the budget from the deadline each pass: spurious
                # wakeups (notify_all for a different channel) must neither
                # shrink the budget below zero nor hand Condition.wait a
                # negative timeout.
                now = _now()
                det = self.detector
                if det is not None:
                    # a blocked receiver is alive: each loop pass is a
                    # heartbeat for the waiting rank, while the peer it
                    # waits on gets re-judged — suspicion first, and only
                    # a suspicion that outlives the confirmation window
                    # triggers the fail-stop shrink path.
                    self._heartbeat_locked(h._dst, now)
                    if h._src != h._dst and h._src not in self._failed:
                        verdict = det.evaluate(h._src, now)
                        if verdict == "suspect":
                            self._m_heal["detector_suspicions"].add(1)
                            self.flight.rings[h._dst].record(
                                _flight.EV_SUSPECT, h._src
                            )
                            if h._trace is not None:
                                h._trace.instant(
                                    "suspect", "heal",
                                    {"rank": h._src,
                                     "phi": round(det.phi(h._src, now), 2)},
                                )
                        elif verdict == "confirm":
                            self._m_heal["detector_confirms"].add(1)
                            self.flight.rings[h._dst].record(
                                _flight.EV_CONFIRM, h._src
                            )
                            if h._trace is not None:
                                h._trace.instant(
                                    "confirm-dead", "heal", {"rank": h._src}
                                )
                            self._fail_rank_locked(
                                h._src,
                                f"failure detector confirmed rank {h._src} "
                                f"dead (silent beyond "
                                f"{det.confirm_after(h._src):.3f}s)",
                                None,
                            )
                            continue  # next pass raises PeerFailed
                if deadline.expired():
                    raise RecvTimeout(
                        f"rank {h._dst} timed out waiting for msg from rank "
                        f"{h._src} tag={h._tag} after {deadline.elapsed():.3f}s "
                        f"(timeout {deadline.limit}s{self._timeout_context()}; "
                        f"likely a schedule deadlock)"
                    )
                wait_for = deadline.remaining()
                nxt = self._next_event_locked()
                if nxt is not None:
                    # wake when the earliest in-flight message lands
                    wait_for = min(wait_for, max(nxt - now, 0.0) + 1e-4)
                if det is not None:
                    # re-judge peers at the detector's cadence even when
                    # no wire event is due.
                    wait_for = min(wait_for, det.poll_interval)
                self._idle_wait_locked(wait_for)
            except BaseException:
                # an abandoned posted receive must not swallow a later
                # message on its channel: unpost before propagating.
                self._cancel_locked(h)
                raise

    def wait_handle(self, h: "_RecvHandle", timeout: Optional[float]) -> Any:
        with self._cond:
            return self._wait_locked(h, timeout)

    def test_handle(self, h: "_RecvHandle") -> bool:
        with self._cond:
            if not h._done:
                self._pump_locked()
                self._drain_locked((h._dst, h._src, h._tag))
            return h._done

    def take(self, dst: int, src: int, tag: Tuple, timeout: Optional[float]) -> Any:
        self._check_rank(dst)
        self._check_rank(src)
        with self._cond:
            h = self._post_recv_locked(dst, src, tag)
            return self._wait_locked(h, timeout)

    def poll(self, dst: int, src: int, tag: Tuple) -> bool:
        """True when an *unclaimed* matching message is deliverable now
        (messages already claimed by posted receives don't count)."""
        with self._cond:
            self._pump_locked()
            self._drain_locked((dst, src, tag))
            return bool(self._mail[dst][(src, tag)])

    def shared_pool(self, factory) -> Any:
        """The fabric-wide buffer pool, lazily created by ``factory()``.

        All ranks of one fabric share it, so a buffer released by one
        worker is recycled by its neighbour — exactly the lifecycle of a
        circulating weight slot."""
        with self._lock:
            if self._shared_pool is None:
                self._shared_pool = factory()
            return self._shared_pool

    def abort(self, reason: str) -> None:
        with self._cond:
            self.flight.rings[0].record(_flight.EV_ABORT)
            self._aborted = reason
            self._cond.notify_all()

    # -- fail-stop failure detection (elastic mode) ---------------------------

    def fail_rank(self, rank: int, reason: str, step: Optional[int] = None) -> None:
        """Declare ``rank`` dead without poisoning the fabric.

        Survivors observe :class:`PeerFailed` at their next fabric
        operation (blocked receivers are woken immediately); after
        acknowledging they may keep communicating.  ``step`` defaults to
        the rank's last :meth:`report_progress` value.
        """
        self._check_rank(rank)
        with self._cond:
            self._fail_rank_locked(rank, reason, step)

    def _fail_rank_locked(
        self, rank: int, reason: str, step: Optional[int] = None
    ) -> None:
        """Body of :meth:`fail_rank` (caller holds the lock) — also
        invoked from inside a blocked receive when the failure detector
        confirms a peer dead."""
        if rank in self._failed:
            return
        if step is None:
            step = self._progress.get(rank)
        self.flight.rings[rank].record(
            _flight.EV_FAIL, rank, step if step is not None else -1
        )
        self._failed[rank] = (reason, step)
        self._fail_epoch += 1
        self._cond.notify_all()

    def failed_ranks(self) -> Dict[int, Tuple[str, Optional[int]]]:
        """Dead ranks so far: ``{rank: (reason, step)}``."""
        with self._lock:
            return dict(self._failed)

    # -- ring re-grow (rank rejoin) -------------------------------------------

    def request_rejoin(self, rank: int) -> None:
        """A declared-dead rank asks to re-enter the ring.

        Survivors observe the request via :meth:`pending_rejoins` at
        their next commit fence and admit it at a step boundary with
        :meth:`admit_rejoin`; the requester blocks in
        :meth:`await_readmission` meanwhile.  A no-op for live ranks.
        """
        self._check_rank(rank)
        with self._cond:
            if rank not in self._failed:
                return
            self._rejoin_requests.add(rank)
            self._cond.notify_all()

    def pending_rejoins(self) -> Tuple[int, ...]:
        """Failed ranks currently asking to rejoin (sorted)."""
        with self._lock:
            return tuple(sorted(self._rejoin_requests))

    def admit_rejoin(self, rank: int, epoch: int, leader: int) -> None:
        """Re-admit ``rank`` (called once, by the survivor leader).

        Clears the failure record *without* bumping the failure epoch —
        survivors already agreed on the admission at the commit fence, so
        nobody needs a PeerFailed interrupt — marks every past epoch as
        acknowledged for the rejoiner, resets its detector history, and
        wakes its :meth:`await_readmission`.  ``leader`` is the global
        rank that will send the state snapshot.
        """
        self._check_rank(rank)
        with self._cond:
            if rank not in self._failed:
                raise ValueError(f"rank {rank} is not failed; cannot rejoin")
            del self._failed[rank]
            self._rejoin_requests.discard(rank)
            self._ack_epoch[rank] = self._fail_epoch
            self._admitted[rank] = (epoch, leader)
            if self.detector is not None:
                self.detector.reset(rank)
            self._m_heal["ring_rejoins"].add(1)
            self.flight.rings[rank].record(_flight.EV_REJOIN, rank, epoch)
            self._cond.notify_all()

    def await_readmission(
        self, rank: int, timeout: Optional[float] = None
    ) -> Tuple[int, int]:
        """Block until :meth:`admit_rejoin` lets ``rank`` back in; returns
        ``(recovery_epoch, leader_rank)``."""
        deadline = Deadline(timeout if timeout is not None else self.timeout)
        with self._cond:
            while rank not in self._admitted:
                if self._aborted:
                    raise FabricAborted(self._aborted)
                if deadline.expired():
                    raise RecvTimeout(
                        f"rank {rank} was never re-admitted within "
                        f"{deadline.limit}s "
                        f"(survivors finished or rejected the rejoin)"
                    )
                self._cond.wait(timeout=deadline.remaining())
            return self._admitted.pop(rank)

    def acknowledge_failures(self, rank: int) -> None:
        """Mark every failure so far as seen by ``rank``; its fabric
        operations stop raising :class:`PeerFailed` until the next
        failure epoch."""
        with self._cond:
            self._ack_epoch[rank] = self._fail_epoch

    def report_progress(self, rank: int, step: int) -> None:
        """Record ``rank``'s training progress (used to annotate the
        ``step`` field of failures it may suffer later)."""
        with self._lock:
            self.flight.rings[rank].record(_flight.EV_PROGRESS, rank, step)
            self._progress[rank] = step

    def progress_of(self, rank: int) -> Optional[int]:
        with self._lock:
            return self._progress.get(rank)

    def communicator(self, rank: int) -> "Communicator":
        self._check_rank(rank)
        return Communicator(self, rank)


def _now() -> float:
    return time.monotonic()


class _RecvHandle:
    """A posted receive (returned by :meth:`Communicator.irecv`).

    Posted handles on one ``(src, tag)`` channel are fulfilled in the
    order they were posted, regardless of the order they are waited —
    MPI's posted-receive matching rule.  A handle abandoned by a raising
    ``wait`` (timeout, peer failure, abort) is unposted so it cannot
    swallow a later message.
    """

    __slots__ = ("_fabric", "_dst", "_src", "_tag", "_done", "_value", "_trace")

    def __init__(self, fabric: Fabric, dst: int, src: int, tag: Tuple):
        self._fabric = fabric
        self._dst = dst
        self._src = src
        self._tag = tag
        self._done = False
        self._value = None
        # set by Communicator.irecv only when tracing is on, so the
        # untraced path never pays for it.
        self._trace = None

    def wait(self, timeout: Optional[float] = None) -> Any:
        # lock-free fast path: in the steady-state ring the message was
        # drained into the handle during the sender's post, so the hot
        # loop never touches the fabric lock here.
        if self._done:
            return self._value
        tr = self._trace
        if tr is None:
            return self._fabric.wait_handle(self, timeout)
        t0 = perf_counter()
        value = self._fabric.wait_handle(self, timeout)
        tr.complete("wait", "wire", t0, perf_counter() - t0,
                    {"src": self._src, "tag": self._tag})
        return value

    def test(self) -> bool:
        """Non-blocking completion check (never raises)."""
        if self._done:
            return True
        return self._fabric.test_handle(self)

    # historical name, kept for callers written against the peek API.
    ready = test


class _SendHandle:
    """Handle returned by :meth:`Communicator.isend`.

    Sends are buffered and complete at post time, so the handle exists
    purely for MPI-style call symmetry (`wait`/`test` are trivial).
    """

    __slots__ = ()

    def wait(self, timeout: Optional[float] = None) -> None:
        return None

    def test(self) -> bool:
        return True

    ready = test


#: all buffered sends share one completed handle.
_SEND_DONE = _SendHandle()


class Communicator:
    """Per-rank view of a :class:`Fabric`."""

    def __init__(self, fabric: Fabric, rank: int):
        self.fabric = fabric
        self.rank = rank
        #: this rank's timeline buffer (a NullRankTracer when tracing is
        #: off — check ``self.trace.enabled`` before building span args).
        self.trace = fabric.tracer.rank(rank)

    @property
    def world_size(self) -> int:
        return self.fabric.world_size

    # ring neighbours (the topology every strategy in the paper uses;
    # NCCL's default collectives are ring-based too, which the paper cites
    # to justify comparing everything on a ring).
    @property
    def right(self) -> int:
        """Successor on the ring (rank + 1 mod P): where WeiPipe sends weights."""
        return (self.rank + 1) % self.world_size

    @property
    def left(self) -> int:
        """Predecessor on the ring (rank - 1 mod P): where weights come from."""
        return (self.rank - 1) % self.world_size

    # -- point to point -------------------------------------------------------

    def send(self, payload: Any, dst: int, tag: Tuple = (), nbytes: Optional[int] = None) -> None:
        """Buffered (non-blocking) send."""
        size = nbytes if nbytes is not None else payload_nbytes(payload)
        self.fabric.post(
            Message(src=self.rank, dst=dst, tag=tag, payload=payload, nbytes=size)
        )
        if self.trace.enabled:
            # the "send" instant stream *is* the per-turn chunk record the
            # analyzer counts (2W+1D): kind + tag identify the flow/turn.
            self.trace.instant(
                "send", "comm",
                {"dst": dst, "kind": tag_kind(tag), "nbytes": size, "tag": tag},
            )

    def isend(
        self, payload: Any, dst: int, tag: Tuple = (), nbytes: Optional[int] = None
    ) -> _SendHandle:
        """Non-blocking send (buffered, so it completes at post time);
        returns a trivially-complete handle for batch_isend_irecv-style
        call sites."""
        self.send(payload, dst, tag, nbytes=nbytes)
        return _SEND_DONE

    def recv(self, src: int, tag: Tuple = (), timeout: Optional[float] = None) -> Any:
        """Blocking receive of the matching (src, tag) message."""
        if not self.trace.enabled:
            return self.fabric.take(self.rank, src, tag, timeout)
        t0 = perf_counter()
        value = self.fabric.take(self.rank, src, tag, timeout)
        self.trace.complete("recv", "wire", t0, perf_counter() - t0,
                            {"src": src, "tag": tag})
        return value

    def irecv(self, src: int, tag: Tuple = ()) -> _RecvHandle:
        """Post a non-blocking receive; call ``.wait()`` on the handle.

        The receive is matched against the channel's FIFO stream at post
        time, so several outstanding ``irecv`` on the same ``(src, tag)``
        complete in posting order."""
        h = self.fabric.post_recv(self.rank, src, tag)
        if self.trace.enabled:
            h._trace = self.trace  # lets a blocked wait record its stall
        return h

    def sendrecv(
        self,
        payload: Any,
        dst: int,
        src: int,
        tag: Tuple = (),
        nbytes: Optional[int] = None,
    ) -> Any:
        """Post a send, then block on the matching receive (safe on rings
        because sends are buffered)."""
        self.send(payload, dst, tag, nbytes=nbytes)
        return self.recv(src, tag)

    # -- fail-stop failure detection (elastic mode) ---------------------------

    def acknowledge_failures(self) -> None:
        """Accept all peer failures observed so far and resume fabric use."""
        self.fabric.acknowledge_failures(self.rank)

    def failed_peers(self) -> Dict[int, Tuple[str, Optional[int]]]:
        """Dead *global* ranks so far: ``{rank: (reason, step)}``."""
        return self.fabric.failed_ranks()

    def report_progress(self, step: int) -> None:
        """Publish this rank's training progress for failure attribution."""
        self.fabric.report_progress(self.rank, step)

    # -- ring re-grow (rank rejoin) -------------------------------------------

    def request_rejoin(self) -> None:
        """Ask the survivors to let this (declared-dead) rank back in."""
        self.fabric.request_rejoin(self.rank)

    def await_readmission(self, timeout: Optional[float] = None) -> Tuple[int, int]:
        """Block until admitted; returns ``(recovery_epoch, leader_rank)``."""
        return self.fabric.await_readmission(self.rank, timeout)

    def pending_rejoins(self) -> Tuple[int, ...]:
        """Failed ranks currently asking to rejoin (sorted)."""
        return self.fabric.pending_rejoins()
