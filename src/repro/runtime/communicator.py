"""In-process message-passing fabric with an MPI/NCCL-flavoured API.

:class:`Fabric` owns one mailbox per destination rank; workers interact
through per-rank :class:`Communicator` views offering ``send`` /
``recv`` / ``isend`` / ``irecv`` with ``(phase, ...)`` tags, mirroring
the ``batch_isend_irecv`` pattern the paper's PyTorch implementation
uses for weight prefetching.

Semantics:

* sends are buffered and never block (NCCL eager-ish; matches the
  paper's asynchronous prefetch usage),
* ``recv`` blocks until a message with the exact ``(src, tag)`` key is
  available; a configurable timeout turns silent deadlocks — the classic
  pipeline-schedule bug — into loud errors naming the blocked rank,
* aborting one worker poisons the fabric so peers blocked in ``recv``
  fail fast instead of hanging the test suite.

Message *order* between a fixed (src, dst, tag) triple is FIFO; across
different tags matching is by tag, as in MPI.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict, deque
from typing import Any, Deque, Dict, Optional, Tuple

from .message import Message, TrafficStats, payload_nbytes

__all__ = ["Fabric", "Communicator", "RecvTimeout", "FabricAborted"]


class RecvTimeout(RuntimeError):
    """A blocking receive waited longer than the fabric timeout."""


class FabricAborted(RuntimeError):
    """A peer worker raised; the fabric has been poisoned."""


class Fabric:
    """Shared state for one group of communicating workers."""

    def __init__(self, world_size: int, timeout: float = 60.0):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.timeout = timeout
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        # mailbox[dst][(src, tag)] -> FIFO of messages
        self._mail: Dict[int, Dict[Tuple, Deque[Message]]] = {
            r: defaultdict(deque) for r in range(world_size)
        }
        self._aborted: Optional[str] = None
        self.stats = TrafficStats()

    # -- internal ------------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.world_size):
            raise ValueError(f"rank {rank} out of range 0..{self.world_size - 1}")

    def post(self, msg: Message) -> None:
        self._check_rank(msg.src)
        self._check_rank(msg.dst)
        with self._cond:
            if self._aborted:
                raise FabricAborted(self._aborted)
            self._mail[msg.dst][(msg.src, msg.tag)].append(msg)
            self.stats.record(msg)
            self._cond.notify_all()

    def take(self, dst: int, src: int, tag: Tuple, timeout: Optional[float]) -> Any:
        limit = timeout if timeout is not None else self.timeout
        start = _now()
        deadline = start + limit
        with self._cond:
            queue = self._mail[dst][(src, tag)]
            while not queue:
                if self._aborted:
                    raise FabricAborted(self._aborted)
                # re-derive the budget from the deadline each pass: spurious
                # wakeups (notify_all for a different channel) must neither
                # shrink the budget below zero nor hand Condition.wait a
                # negative timeout.
                remaining = deadline - _now()
                if remaining <= 0:
                    raise RecvTimeout(
                        f"rank {dst} timed out waiting for msg from rank "
                        f"{src} tag={tag} after {_now() - start:.3f}s "
                        f"(timeout {limit}s; likely a schedule deadlock)"
                    )
                self._cond.wait(timeout=remaining)
            return queue.popleft().payload

    def poll(self, dst: int, src: int, tag: Tuple) -> bool:
        with self._lock:
            return bool(self._mail[dst][(src, tag)])

    def abort(self, reason: str) -> None:
        with self._cond:
            self._aborted = reason
            self._cond.notify_all()

    def communicator(self, rank: int) -> "Communicator":
        self._check_rank(rank)
        return Communicator(self, rank)


def _now() -> float:
    return time.monotonic()


class _RecvHandle:
    """Handle returned by :meth:`Communicator.irecv`."""

    __slots__ = ("_fabric", "_dst", "_src", "_tag", "_done", "_value")

    def __init__(self, fabric: Fabric, dst: int, src: int, tag: Tuple):
        self._fabric = fabric
        self._dst = dst
        self._src = src
        self._tag = tag
        self._done = False
        self._value = None

    def wait(self, timeout: Optional[float] = None) -> Any:
        if not self._done:
            self._value = self._fabric.take(self._dst, self._src, self._tag, timeout)
            self._done = True
        return self._value

    def ready(self) -> bool:
        return self._done or self._fabric.poll(self._dst, self._src, self._tag)


class Communicator:
    """Per-rank view of a :class:`Fabric`."""

    def __init__(self, fabric: Fabric, rank: int):
        self.fabric = fabric
        self.rank = rank

    @property
    def world_size(self) -> int:
        return self.fabric.world_size

    # ring neighbours (the topology every strategy in the paper uses;
    # NCCL's default collectives are ring-based too, which the paper cites
    # to justify comparing everything on a ring).
    @property
    def right(self) -> int:
        """Successor on the ring (rank + 1 mod P): where WeiPipe sends weights."""
        return (self.rank + 1) % self.world_size

    @property
    def left(self) -> int:
        """Predecessor on the ring (rank - 1 mod P): where weights come from."""
        return (self.rank - 1) % self.world_size

    # -- point to point -------------------------------------------------------

    def send(self, payload: Any, dst: int, tag: Tuple = (), nbytes: Optional[int] = None) -> None:
        """Buffered (non-blocking) send."""
        self.fabric.post(
            Message(
                src=self.rank,
                dst=dst,
                tag=tag,
                payload=payload,
                nbytes=nbytes if nbytes is not None else payload_nbytes(payload),
            )
        )

    # buffered sends make isend identical to send; kept for API parity with
    # the paper's batch_isend_irecv usage.
    isend = send

    def recv(self, src: int, tag: Tuple = (), timeout: Optional[float] = None) -> Any:
        """Blocking receive of the matching (src, tag) message."""
        return self.fabric.take(self.rank, src, tag, timeout)

    def irecv(self, src: int, tag: Tuple = ()) -> _RecvHandle:
        """Non-blocking receive; call ``.wait()`` on the handle."""
        return _RecvHandle(self.fabric, self.rank, src, tag)

    def sendrecv(
        self,
        payload: Any,
        dst: int,
        src: int,
        tag: Tuple = (),
        nbytes: Optional[int] = None,
    ) -> Any:
        """Post a send, then block on the matching receive (safe on rings
        because sends are buffered)."""
        self.send(payload, dst, tag, nbytes=nbytes)
        return self.recv(src, tag)
