"""Elastic ring-shrink recovery: survive a rank's death mid-training.

WeiPipe's defining property — the full weight flow circulates past every
rank each ring turn — means the *model* is never lost when one worker
dies; only the dead rank's share of the schedule is.  This module turns
that redundancy into a recovery protocol on top of the fail-stop
detection in :mod:`repro.runtime.communicator`:

1. **Detect** — a dead worker is recorded with
   :meth:`~repro.runtime.communicator.Fabric.fail_rank`; every survivor
   is interrupted with :class:`~repro.runtime.communicator.PeerFailed`
   at its next fabric operation (blocked receivers wake immediately).
2. **Agree** — survivors acknowledge the failure, form a recovery
   subgroup over the remaining ranks and all-gather their last
   *committed* step; the rollback target is the minimum.  Commit skew
   across ranks is at most one step: the per-step commit fence is an
   all-*gather* (not the cheaper two-rotation ring barrier, which only
   synchronises a rank with its two left neighbours), so any rank that
   completed the fence for step ``k`` proves every rank entered it —
   i.e. everyone had already committed ``k``.  Keeping the last two
   snapshots therefore guarantees every survivor holds the minimum.
3. **Roll back & shrink** — each survivor restores the agreed
   step-boundary snapshot, discards losses beyond it, and continues the
   step loop on the shrunken group; each step runs on a freshly
   namespaced subgroup so pre-crash traffic can never cross-match.

Shrink has an inverse (DESIGN.md §13).  A rank that was *confirmed* dead
by the failure detector but is in fact still running (it stalled, or its
NIC flapped) observes :class:`~repro.runtime.communicator.DeclaredDead`
at its next fabric operation and enters the **rejoin** protocol:

4. **Request** — the revived rank calls ``request_rejoin()`` and blocks
   in ``await_readmission()``.
5. **Agree** — the per-step commit fence all-gathers each survivor's
   view of the pending rejoin requests; the union is the agreed
   admission set, so every survivor extends ``alive`` identically at the
   same step boundary (no second consensus round needed).
6. **Re-grow** — the survivor leader admits the rank on the fabric
   (clearing its failure record *without* a new failure epoch) and sends
   it a state snapshot ``{step, state, losses, alive, epoch}``; the
   rejoiner resumes the loop from that boundary.  Every post-rejoin step
   runs under a fresh recovery-epoch tag namespace, so traffic from
   before the failure can never cross-match — which also means
   membership-sensitive caches (the weipipe-hier gateway cache) can
   never serve a stale entry across the membership change.

The loop is strategy-agnostic: a *step function* (see
:mod:`repro.parallel.elastic` for the strategy hooks) runs exactly one
training iteration on a given subgroup from a given snapshot and returns
the next snapshot.  Snapshots are opaque here; the step function must
treat its input state as immutable.

The protocol assumes fail-stop failures arriving one at a time
(DESIGN.md §9): a second failure *during* recovery itself is
unrecoverable and unwinds the group through the abort path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from .collectives import all_gather
from .communicator import Communicator, DeclaredDead, PeerFailed
from .subgroup import SubCommunicator

__all__ = ["RecoveryEvent", "RejoinEvent", "ElasticResult", "elastic_worker"]


#: one training iteration: ``(subgroup, global_step, state) -> (loss, new_state)``.
#: Must be deterministic in its arguments and must not mutate ``state``.
StepFn = Callable[[Communicator, int, Any], Tuple[float, Any]]

#: commit hook: ``(completed_steps, state, losses)`` — called on the
#: lowest surviving rank after each step commits (checkpointing).
CommitHook = Callable[[int, Any, List[float]], None]


@dataclass(frozen=True)
class RecoveryEvent:
    """One successful ring-shrink recovery."""

    #: rollback target: number of completed steps the group agreed on.
    step: int
    #: the step this survivor was computing when it was notified.
    detected_at_step: int
    failed_ranks: Tuple[int, ...]
    survivors: Tuple[int, ...]

    def describe(self) -> str:
        return (
            f"rank(s) {list(self.failed_ranks)} failed during step "
            f"{self.detected_at_step}; rolled back to step {self.step} "
            f"and continued on {len(self.survivors)} rank(s) "
            f"{list(self.survivors)}"
        )


@dataclass(frozen=True)
class RejoinEvent:
    """One successful ring re-grow (the inverse of a shrink)."""

    #: step boundary at which the ring re-grew.
    step: int
    rejoined: Tuple[int, ...]
    #: alive set *after* the re-grow.
    world: Tuple[int, ...]
    #: recovery epoch the re-grown group runs under.
    epoch: int

    def describe(self) -> str:
        return (
            f"rank(s) {list(self.rejoined)} rejoined at step {self.step}; "
            f"ring re-grew to {len(self.world)} rank(s) {list(self.world)} "
            f"(epoch {self.epoch})"
        )


@dataclass
class ElasticResult:
    """Per-rank outcome of :func:`elastic_worker` (identical on every
    survivor by construction — asserted by the driver)."""

    losses: List[float]
    state: Any
    events: List[RecoveryEvent] = field(default_factory=list)
    #: the snapshot each recovery rolled back to (for differential tests:
    #: a clean run seeded from it must match the post-recovery curve).
    rollback_states: List[Any] = field(default_factory=list)
    survivors: List[int] = field(default_factory=list)
    #: ring re-grows, in order (empty unless a confirmed-dead rank came back).
    rejoins: List[RejoinEvent] = field(default_factory=list)


def elastic_worker(
    comm: Communicator,
    iters: int,
    initial_state: Any,
    run_step: StepFn,
    on_commit: Optional[CommitHook] = None,
    max_recoveries: Optional[int] = None,
    rejoin_timeout: Optional[float] = None,
) -> ElasticResult:
    """Drive ``iters`` steps of ``run_step`` with ring-shrink recovery.

    Every rank of the launching world runs this function (use
    :func:`repro.runtime.launcher.run_workers_elastic`).  Each step:
    compute on the current survivor subgroup, pass the all-gather commit
    fence, *then* commit the snapshot — so a crash anywhere leaves every
    survivor holding the last fence-confirmed state (or the one before
    it; the rollback consensus below absorbs the one-step skew the
    fence allows — see the module docstring).

    The fence doubles as the rejoin agreement point: each survivor
    gathers every peer's view of the fabric's pending rejoin requests
    and the union is admitted at this step boundary (see module
    docstring, steps 4-6).  ``max_recoveries`` bounds how many failures
    are absorbed before the worker gives up and re-raises (``None`` =
    unlimited); rejoins are unbounded (a rejoiner that is never admitted
    times out after ``rejoin_timeout``, default the fabric timeout).
    """
    alive = list(range(comm.world_size))
    # (completed_steps, state), newest last; two entries bound the skew.
    committed: List[Tuple[int, Any]] = [(0, initial_state)]
    losses: List[float] = []
    events: List[RecoveryEvent] = []
    rollback_states: List[Any] = []
    rejoins: List[RejoinEvent] = []
    epoch = 0
    step = 0

    trace = comm.trace

    while step < iters:
        comm.report_progress(step)
        try:
            # epoch > 0 keeps the tag namespace fresh even back at full
            # world: after a rejoin, plain-comm tags would cross-match
            # leftover pre-failure traffic still sitting in mailboxes.
            sub: Communicator = (
                comm
                if len(alive) == comm.world_size and epoch == 0
                else SubCommunicator(comm, alive, ("elastic", epoch))
            )
            loss, new_state = run_step(sub, step, committed[-1][1])
            # strong commit fence: completing an all-gather proves every
            # rank entered it (each rank needs a token from all others),
            # which bounds commit skew between survivors to one step.
            # The token is this rank's view of the pending rejoin
            # requests, so the fence is also the admission consensus.
            views = all_gather(
                sub, comm.pending_rejoins(), tag=("elastic-commit", epoch, step)
            )
            losses.append(loss)
            with trace.span("snapshot", "recovery", {"step": step + 1}):
                committed.append((step + 1, new_state))
                if len(committed) > 2:
                    committed.pop(0)
            step += 1
            if on_commit is not None and comm.rank == min(alive):
                on_commit(step, new_state, list(losses))
            # ring re-grow: admit every rank some survivor saw asking to
            # rejoin.  All survivors compute the same union from the same
            # gathered views, so alive/epoch advance identically without
            # another round.
            joiners = sorted(
                set().union(*(set(v or ()) for v in views)) - set(alive)
            )
            if joiners:
                leader = min(alive)
                epoch += 1
                new_alive = sorted(set(alive) | set(joiners))
                if comm.rank == leader:
                    for r in joiners:
                        comm.fabric.admit_rejoin(r, epoch, leader)
                        comm.send(
                            {
                                "step": step,
                                "state": committed[-1][1],
                                "losses": list(losses),
                                "alive": list(new_alive),
                                "epoch": epoch,
                            },
                            r,
                            ("rejoin-state", epoch, r),
                        )
                trace.instant(
                    "rejoin", "recovery",
                    {"rejoined": joiners, "step": step, "epoch": epoch},
                )
                rejoins.append(
                    RejoinEvent(
                        step=step,
                        rejoined=tuple(joiners),
                        world=tuple(new_alive),
                        epoch=epoch,
                    )
                )
                alive = new_alive
        except DeclaredDead:
            # the group confirmed *this* rank dead while it was merely
            # slow (stall / NIC flap).  Ask back in, wait for a step
            # boundary, and resume from the snapshot the leader sends.
            # The whole sequence retries: a rank whose outage outlives
            # its first admission just gets confirmed dead again and
            # re-enters once it can actually hear the group.
            while True:
                trace.instant(
                    "rejoin-request", "recovery",
                    {"rank": comm.rank, "at_step": step},
                )
                comm.request_rejoin()
                try:
                    with trace.span("await-readmission", "recovery", {}):
                        r_epoch, leader = comm.await_readmission(rejoin_timeout)
                    pkt = comm.recv(leader, ("rejoin-state", r_epoch, comm.rank))
                    break
                except DeclaredDead:
                    continue
            epoch = int(pkt["epoch"])
            alive = list(pkt["alive"])
            step = int(pkt["step"])
            committed = [(step, pkt["state"])]
            losses = list(pkt["losses"])
            rejoins.append(
                RejoinEvent(
                    step=step,
                    rejoined=(comm.rank,),
                    world=tuple(alive),
                    epoch=epoch,
                )
            )
            trace.instant(
                "rejoined", "recovery",
                {"step": step, "epoch": epoch, "world": list(alive)},
            )
        except PeerFailed:
            if max_recoveries is not None and len(events) >= max_recoveries:
                raise
            comm.acknowledge_failures()
            dead = set(comm.failed_peers())  # cumulative across recoveries
            newly_dead = sorted(set(alive) & dead)
            new_alive = [r for r in alive if r not in dead]
            if comm.rank not in new_alive or not new_alive:
                raise  # this rank was itself declared dead — unwind.
            epoch += 1
            trace.instant(
                "peer-failed", "recovery",
                {"failed": newly_dead, "detected_at_step": step},
            )
            # consensus on the rollback step: survivors can disagree by
            # at most one commit (see module docstring), so the minimum
            # is a snapshot everyone still holds.
            with trace.span(
                "re-form", "recovery", {"epoch": epoch, "survivors": new_alive}
            ):
                rsub = SubCommunicator(
                    comm, new_alive, ("elastic-recover", epoch, tuple(new_alive))
                )
                steps_all = all_gather(
                    rsub, committed[-1][0], tag=("elastic-steps", epoch)
                )
                target = min(steps_all)
            snap = next(
                (s for (st, s) in committed if st == target), None
            )
            if snap is None:  # pragma: no cover - protocol invariant
                raise AssertionError(
                    f"rank {comm.rank} cannot roll back to step {target}: "
                    f"holds {[st for st, _ in committed]}"
                )
            with trace.span("rollback", "recovery", {"to_step": target}):
                committed = [(target, snap)]
                del losses[target:]
                rollback_states.append(snap)
            events.append(
                RecoveryEvent(
                    step=target,
                    detected_at_step=step,
                    failed_ranks=tuple(newly_dead),
                    survivors=tuple(new_alive),
                )
            )
            alive = new_alive
            step = target

    return ElasticResult(
        losses=losses,
        state=committed[-1][1],
        events=events,
        rollback_states=rollback_states,
        survivors=alive,
        rejoins=rejoins,
    )
