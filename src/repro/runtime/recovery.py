"""Elastic ring-shrink recovery: survive a rank's death mid-training.

WeiPipe's defining property — the full weight flow circulates past every
rank each ring turn — means the *model* is never lost when one worker
dies; only the dead rank's share of the schedule is.  This module turns
that redundancy into a recovery protocol on top of the fail-stop
detection in :mod:`repro.runtime.communicator`:

1. **Detect** — a dead worker is recorded with
   :meth:`~repro.runtime.communicator.Fabric.fail_rank`; every survivor
   is interrupted with :class:`~repro.runtime.communicator.PeerFailed`
   at its next fabric operation (blocked receivers wake immediately).
2. **Agree** — survivors acknowledge the failure, form a recovery
   subgroup over the remaining ranks and all-gather their last
   *committed* step; the rollback target is the minimum.  Commit skew
   across ranks is at most one step: the per-step commit fence is an
   all-*gather* (not the cheaper two-rotation ring barrier, which only
   synchronises a rank with its two left neighbours), so any rank that
   completed the fence for step ``k`` proves every rank entered it —
   i.e. everyone had already committed ``k``.  Keeping the last two
   snapshots therefore guarantees every survivor holds the minimum.
3. **Roll back & shrink** — each survivor restores the agreed
   step-boundary snapshot, discards losses beyond it, and continues the
   step loop on the shrunken group; each step runs on a freshly
   namespaced subgroup so pre-crash traffic can never cross-match.

The loop is strategy-agnostic: a *step function* (see
:mod:`repro.parallel.elastic` for the strategy hooks) runs exactly one
training iteration on a given subgroup from a given snapshot and returns
the next snapshot.  Snapshots are opaque here; the step function must
treat its input state as immutable.

The protocol assumes fail-stop failures arriving one at a time
(DESIGN.md §9): a second failure *during* recovery itself is
unrecoverable and unwinds the group through the abort path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from .collectives import all_gather
from .communicator import Communicator, PeerFailed
from .subgroup import SubCommunicator

__all__ = ["RecoveryEvent", "ElasticResult", "elastic_worker"]


#: one training iteration: ``(subgroup, global_step, state) -> (loss, new_state)``.
#: Must be deterministic in its arguments and must not mutate ``state``.
StepFn = Callable[[Communicator, int, Any], Tuple[float, Any]]

#: commit hook: ``(completed_steps, state, losses)`` — called on the
#: lowest surviving rank after each step commits (checkpointing).
CommitHook = Callable[[int, Any, List[float]], None]


@dataclass(frozen=True)
class RecoveryEvent:
    """One successful ring-shrink recovery."""

    #: rollback target: number of completed steps the group agreed on.
    step: int
    #: the step this survivor was computing when it was notified.
    detected_at_step: int
    failed_ranks: Tuple[int, ...]
    survivors: Tuple[int, ...]

    def describe(self) -> str:
        return (
            f"rank(s) {list(self.failed_ranks)} failed during step "
            f"{self.detected_at_step}; rolled back to step {self.step} "
            f"and continued on {len(self.survivors)} rank(s) "
            f"{list(self.survivors)}"
        )


@dataclass
class ElasticResult:
    """Per-rank outcome of :func:`elastic_worker` (identical on every
    survivor by construction — asserted by the driver)."""

    losses: List[float]
    state: Any
    events: List[RecoveryEvent] = field(default_factory=list)
    #: the snapshot each recovery rolled back to (for differential tests:
    #: a clean run seeded from it must match the post-recovery curve).
    rollback_states: List[Any] = field(default_factory=list)
    survivors: List[int] = field(default_factory=list)


def elastic_worker(
    comm: Communicator,
    iters: int,
    initial_state: Any,
    run_step: StepFn,
    on_commit: Optional[CommitHook] = None,
    max_recoveries: Optional[int] = None,
) -> ElasticResult:
    """Drive ``iters`` steps of ``run_step`` with ring-shrink recovery.

    Every rank of the launching world runs this function (use
    :func:`repro.runtime.launcher.run_workers_elastic`).  Each step:
    compute on the current survivor subgroup, pass the all-gather commit
    fence, *then* commit the snapshot — so a crash anywhere leaves every
    survivor holding the last fence-confirmed state (or the one before
    it; the rollback consensus below absorbs the one-step skew the
    fence allows — see the module docstring).

    ``max_recoveries`` bounds how many failures are absorbed before the
    worker gives up and re-raises (``None`` = unlimited).
    """
    alive = list(range(comm.world_size))
    # (completed_steps, state), newest last; two entries bound the skew.
    committed: List[Tuple[int, Any]] = [(0, initial_state)]
    losses: List[float] = []
    events: List[RecoveryEvent] = []
    rollback_states: List[Any] = []
    epoch = 0
    step = 0

    trace = comm.trace

    while step < iters:
        comm.report_progress(step)
        try:
            sub: Communicator = (
                comm
                if len(alive) == comm.world_size
                else SubCommunicator(comm, alive, ("elastic", epoch))
            )
            loss, new_state = run_step(sub, step, committed[-1][1])
            # strong commit fence: completing an all-gather proves every
            # rank entered it (each rank needs a token from all others),
            # which bounds commit skew between survivors to one step.
            all_gather(sub, None, tag=("elastic-commit", epoch, step))
            losses.append(loss)
            with trace.span("snapshot", "recovery", {"step": step + 1}):
                committed.append((step + 1, new_state))
                if len(committed) > 2:
                    committed.pop(0)
            step += 1
            if on_commit is not None and comm.rank == min(alive):
                on_commit(step, new_state, list(losses))
        except PeerFailed:
            if max_recoveries is not None and len(events) >= max_recoveries:
                raise
            comm.acknowledge_failures()
            dead = set(comm.failed_peers())  # cumulative across recoveries
            newly_dead = sorted(set(alive) & dead)
            new_alive = [r for r in alive if r not in dead]
            if comm.rank not in new_alive or not new_alive:
                raise  # this rank was itself declared dead — unwind.
            epoch += 1
            trace.instant(
                "peer-failed", "recovery",
                {"failed": newly_dead, "detected_at_step": step},
            )
            # consensus on the rollback step: survivors can disagree by
            # at most one commit (see module docstring), so the minimum
            # is a snapshot everyone still holds.
            with trace.span(
                "re-form", "recovery", {"epoch": epoch, "survivors": new_alive}
            ):
                rsub = SubCommunicator(
                    comm, new_alive, ("elastic-recover", epoch, tuple(new_alive))
                )
                steps_all = all_gather(
                    rsub, committed[-1][0], tag=("elastic-steps", epoch)
                )
                target = min(steps_all)
            snap = next(
                (s for (st, s) in committed if st == target), None
            )
            if snap is None:  # pragma: no cover - protocol invariant
                raise AssertionError(
                    f"rank {comm.rank} cannot roll back to step {target}: "
                    f"holds {[st for st, _ in committed]}"
                )
            with trace.span("rollback", "recovery", {"to_step": target}):
                committed = [(target, snap)]
                del losses[target:]
                rollback_states.append(snap)
            events.append(
                RecoveryEvent(
                    step=target,
                    detected_at_step=step,
                    failed_ranks=tuple(newly_dead),
                    survivors=tuple(new_alive),
                )
            )
            alive = new_alive
            step = target

    return ElasticResult(
        losses=losses,
        state=committed[-1][1],
        events=events,
        rollback_states=rollback_states,
        survivors=alive,
    )
