"""Message envelope and traffic accounting for the simulated fabric.

Payloads are arbitrary Python objects (NumPy arrays and
:class:`~repro.nn.params.ParamStruct` in practice).  Every message
carries an explicit *logical* byte count: the size the payload would
occupy on the wire at its storage precision (fp16 chunks are half the
NumPy float32 bytes).  The fabric sums these per (src, dst) pair, which
is how the functional tests verify the paper's communication-volume
claims without a real network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = ["Message", "payload_nbytes", "TrafficStats", "tag_kind"]


def payload_nbytes(payload: Any) -> int:
    """Physical byte size of a payload (fallback when no logical size given)."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if hasattr(payload, "numel"):  # ParamStruct
        # price by the actual storage dtype of each array (an fp64 chunk
        # is 8 bytes/element, fp16 is 2 — the old numel*4 assumed fp32).
        values = getattr(payload, "values", None)
        if callable(values):
            return sum(int(v.nbytes) for v in values())
        return int(payload.numel) * 4
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(p) for p in payload.values())
    if isinstance(payload, (int, float, bool)):
        return 8
    return 0


@dataclass
class Message:
    """One point-to-point message."""

    src: int
    dst: int
    tag: Tuple
    payload: Any
    nbytes: int
    #: integrity frame: structural CRC32 of the payload, stamped by the
    #: fabric at post time (None = unframed).  The chaos wire verifies it
    #: on delivery and drives NACK + retransmit on mismatch — see
    #: :mod:`repro.runtime.integrity`.
    crc: Optional[int] = None


def tag_kind(tag: Tuple) -> str:
    """Logical flow a tag belongs to: its leading component as a string.

    WeiPipe tags its three ring flows ``("F", it, t)`` / ``("B", ...)`` /
    ``("D", ...)``; the kind lets tests pin per-flow byte counts (the
    paper's 2 W + 1 D per-turn claim) without re-deriving schedules.
    """
    return str(tag[0]) if tag else ""


@dataclass
class TrafficStats:
    """Aggregated communication volume, maintained by the fabric."""

    messages: int = 0
    bytes_total: int = 0
    by_pair: Dict[Tuple[int, int], int] = field(default_factory=dict)
    by_src: Dict[int, int] = field(default_factory=dict)
    #: bytes per logical flow (leading tag component, see :func:`tag_kind`).
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: message count per logical flow.
    msgs_by_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, msg: Message) -> None:
        self.messages += 1
        self.bytes_total += msg.nbytes
        pair = (msg.src, msg.dst)
        self.by_pair[pair] = self.by_pair.get(pair, 0) + msg.nbytes
        self.by_src[msg.src] = self.by_src.get(msg.src, 0) + msg.nbytes
        kind = tag_kind(msg.tag)
        self.by_kind[kind] = self.by_kind.get(kind, 0) + msg.nbytes
        self.msgs_by_kind[kind] = self.msgs_by_kind.get(kind, 0) + 1

    def merge(self, other: "TrafficStats") -> "TrafficStats":
        """Fold another ledger into this one (in place).

        Each message is recorded exactly once, by its *sender's* fabric,
        so summing the per-process ledgers of the shm transport
        reproduces the global traffic the shared thread fabric would
        have recorded.
        """
        self.messages += other.messages
        self.bytes_total += other.bytes_total
        for mine, theirs in (
            (self.by_pair, other.by_pair),
            (self.by_src, other.by_src),
            (self.by_kind, other.by_kind),
            (self.msgs_by_kind, other.msgs_by_kind),
        ):
            for k, v in theirs.items():
                mine[k] = mine.get(k, 0) + v
        return self

    def max_pair_bytes(self) -> int:
        return max(self.by_pair.values(), default=0)
