"""Deterministic ring collectives built on P2P messages.

The paper compares WeiPipe against FSDP under the observation that
NCCL's default collectives are themselves *ring* algorithms (Section 5,
"Hardware Environment": tree algorithms were not adopted).  We therefore
implement the textbook ring versions — reduce-scatter then all-gather —
so that (a) the functional byte counts match what NCCL would move,
``2 (P-1)/P`` of the buffer per all-reduce, and (b) floating-point
accumulation order is fixed, keeping runs reproducible.

All collectives are bulk-synchronous per call and take a ``tag`` so
different phases of a strategy never cross-match.
"""

from __future__ import annotations

import functools
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from .communicator import Communicator

__all__ = [
    "barrier",
    "broadcast",
    "all_gather",
    "all_reduce",
    "reduce_scatter",
    "split_chunks",
]


def _traced_collective(fn: Callable) -> Callable:
    """Record one ``collective``-category span per call when tracing is
    on; untraced calls pay one ``enabled`` check.  Composite collectives
    (all_reduce = reduce_scatter + all_gather) nest naturally."""

    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(comm: Communicator, *args, **kwargs):
        tr = comm.trace
        if not tr.enabled:
            return fn(comm, *args, **kwargs)
        t0 = perf_counter()
        out = fn(comm, *args, **kwargs)
        tr.complete(name, "collective", t0, perf_counter() - t0,
                    {"tag": kwargs.get("tag")})
        return out

    return wrapper


def split_chunks(flat: np.ndarray, parts: int) -> List[np.ndarray]:
    """Split a flat array into ``parts`` nearly equal contiguous chunks.

    The first ``flat.size % parts`` chunks get one extra element, the
    standard NCCL-style partition; every rank computes identical bounds.
    """
    n = flat.size
    base, extra = divmod(n, parts)
    out = []
    offset = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append(flat[offset : offset + size])
        offset += size
    return out


@_traced_collective
def barrier(comm: Communicator, tag: Tuple = ("barrier",)) -> None:
    """Two full ring rotations of a token — a dissemination-free barrier."""
    p = comm.world_size
    if p == 1:
        return
    for phase in range(2):
        comm.send(None, comm.right, tag + (phase,), nbytes=0)
        comm.recv(comm.left, tag + (phase,))


@_traced_collective
def broadcast(
    comm: Communicator, value: Any, root: int = 0, tag: Tuple = ("bcast",),
    nbytes: Optional[int] = None,
) -> Any:
    """Ring broadcast from ``root``; returns the value on every rank."""
    p = comm.world_size
    if p == 1:
        return value
    # forward around the ring; the last hop back to root is skipped.
    if comm.rank != root:
        value = comm.recv(comm.left, tag)
    if comm.right != root:
        comm.send(value, comm.right, tag, nbytes=nbytes)
    return value


@_traced_collective
def all_gather(
    comm: Communicator,
    value: Any,
    tag: Tuple = ("allgather",),
    nbytes: Optional[int] = None,
) -> List[Any]:
    """Ring all-gather: returns ``[value_of_rank_0, ..., value_of_rank_P-1]``.

    Each rank forwards what it received, so every rank sends ``P-1``
    messages of the per-rank value size — the ring all-gather volume.
    """
    p = comm.world_size
    out: List[Any] = [None] * p
    out[comm.rank] = value
    current = value
    current_rank = comm.rank
    for step in range(p - 1):
        comm.send(current, comm.right, tag + (step,), nbytes=nbytes)
        current = comm.recv(comm.left, tag + (step,))
        current_rank = (current_rank - 1) % p
        out[current_rank] = current
    return out


@_traced_collective
def reduce_scatter(
    comm: Communicator,
    flat: np.ndarray,
    tag: Tuple = ("reducescatter",),
    nbytes_per_element: Optional[float] = None,
) -> np.ndarray:
    """Ring reduce-scatter of a flat array.

    Rank ``r`` returns the fully reduced (summed) chunk ``r`` of the
    partition produced by :func:`split_chunks`.  ``P-1`` steps, each
    sending one chunk — ``(P-1)/P`` of the buffer per rank.
    """
    p = comm.world_size
    chunks = [c.copy() for c in split_chunks(np.asarray(flat).reshape(-1), p)]
    if p == 1:
        return chunks[0]
    # chunk c travels c+1 -> c+2 -> ... -> c, accumulating at each hop, so
    # at step s rank r sends chunk (r - s - 1) and accumulates (r - s - 2);
    # after P-1 steps rank r holds its own chunk fully reduced.
    for step in range(p - 1):
        send_idx = (comm.rank - step - 1) % p
        recv_idx = (comm.rank - step - 2) % p
        nb = (
            int(chunks[send_idx].size * nbytes_per_element)
            if nbytes_per_element is not None
            else None
        )
        comm.send(chunks[send_idx], comm.right, tag + (step,), nbytes=nb)
        incoming = comm.recv(comm.left, tag + (step,))
        chunks[recv_idx] = chunks[recv_idx] + incoming
    return chunks[comm.rank]


@_traced_collective
def all_reduce(
    comm: Communicator,
    flat: np.ndarray,
    tag: Tuple = ("allreduce",),
    nbytes_per_element: Optional[float] = None,
) -> np.ndarray:
    """Ring all-reduce (sum): reduce-scatter then all-gather.

    Total volume per rank: ``2 (P-1)/P * flat.nbytes`` — the figure the
    paper uses for DP/FSDP gradient synchronisation.
    """
    flat = np.asarray(flat).reshape(-1)
    p = comm.world_size
    if p == 1:
        return flat.copy()
    mine = reduce_scatter(comm, flat, tag + ("rs",), nbytes_per_element)
    nb = (
        int(mine.size * nbytes_per_element)
        if nbytes_per_element is not None
        else None
    )
    gathered = all_gather(comm, mine, tag + ("ag",), nbytes=nb)
    return np.concatenate(gathered)
