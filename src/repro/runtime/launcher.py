"""Launch a group of workers on a pluggable transport.

``run_workers(P, fn)`` is the moral equivalent of ``mpiexec -n P``:
``fn(comm)`` runs once per rank, return values come back indexed by
rank, and the first exception anywhere aborts the whole group (peers
blocked in ``recv`` are woken with ``FabricAborted``) and is re-raised
in the caller with its original traceback.

``run_workers_elastic`` is the fault-tolerant variant: a worker's death
marks only *that rank* failed (:meth:`Fabric.fail_rank`) so survivors —
notified via :class:`~repro.runtime.communicator.PeerFailed` — can
shrink the group and keep training (:mod:`repro.runtime.recovery`).

*Where* the ranks execute is the transport's business
(:mod:`repro.runtime.transport`):

* ``backend="thread"`` (default) — daemon threads of this interpreter
  on one shared zero-copy fabric; full chaos / integrity / detector /
  rejoin machinery; the semantic oracle,
* ``backend="process"`` — one forked process per rank over
  shared-memory rings; genuinely parallel compute, same semantics,
  bit-exact results (``repro.testing.run_backend_differential``).

Passing a pre-built ``fabric`` (to inspect traffic afterwards) implies
the thread backend; a :class:`~repro.runtime.transport.Transport`
instance can be given either as ``fabric=`` or ``backend=``.  Both
variants share one launch path and one *group-wide* join deadline:
``timeout`` bounds the whole group's wall clock, not each rank's join
in sequence.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple, Union

from .communicator import Communicator
from .transport.base import Transport, WorkerError

__all__ = ["run_workers", "run_workers_elastic", "resolve_transport", "WorkerError"]


def resolve_transport(fabric: Any = None, backend: Any = None) -> Transport:
    """Pick the transport for a launch.

    Accepts the historical ``fabric=`` argument (a ``Fabric`` — or, by
    duck-typing, anything with ``communicator()`` — implies the thread
    backend sharing that fabric), a backend name (``"thread"`` /
    ``"process"``), or a ready :class:`Transport` instance through
    either parameter.
    """
    from .transport.process import ProcessTransport
    from .transport.thread import ThreadTransport

    if isinstance(fabric, Transport):
        if backend is not None and backend is not fabric:
            raise ValueError("pass the transport via fabric= or backend=, not both")
        return fabric
    if isinstance(backend, Transport):
        if fabric is not None:
            raise ValueError(
                f"cannot attach a shared fabric to an explicit "
                f"{type(backend).__name__}"
            )
        return backend
    if backend is None or backend == "thread":
        return ThreadTransport(fabric)
    if backend == "process":
        if fabric is not None:
            raise ValueError(
                "backend='process' workers live in separate processes and "
                "cannot share an in-process fabric; drop fabric= (telemetry "
                "is on the transport) or use backend='thread'"
            )
        return ProcessTransport()
    raise ValueError(f"unknown backend {backend!r} (expected 'thread' or 'process')")


def run_workers(
    world_size: int,
    fn: Callable[[Communicator], Any],
    timeout: float = 120.0,
    fabric: Any = None,
    backend: Union[str, Transport, None] = None,
) -> List[Any]:
    """Run ``fn(comm)`` on ``world_size`` ranks; return per-rank results.

    ``timeout`` bounds both individual receives (fabric timeout) and the
    group-wide join, so schedule deadlocks surface as errors rather than
    hangs.  Pass a pre-built ``fabric`` to inspect traffic stats after
    the run (thread backend), or ``backend="process"`` to fork one
    process per rank.  Any worker exception aborts the whole group
    (fail-fast).
    """
    transport = resolve_transport(fabric, backend)
    results, errors = transport.launch(world_size, fn, timeout, elastic=False)
    for err in errors:
        if err is not None:
            raise err
    return results


def run_workers_elastic(
    world_size: int,
    fn: Callable[[Communicator], Any],
    timeout: float = 120.0,
    fabric: Any = None,
    detector=None,
    backend: Union[str, Transport, None] = None,
) -> Tuple[List[Any], List[Optional[WorkerError]]]:
    """Fault-tolerant launch: worker deaths do not poison the fabric.

    Returns ``(results, errors)`` indexed by rank; a rank has exactly one
    of the two.  A dead rank is recorded via :meth:`Fabric.fail_rank` so
    survivors (typically running :func:`repro.runtime.recovery.elastic_worker`)
    observe ``PeerFailed`` and can shrink the group.  The caller decides
    what surviving results mean; nothing is raised here unless the whole
    group exceeds the join deadline.

    Pass a :class:`~repro.runtime.detector.FailureDetector` as
    ``detector`` to arm heartbeat-based suspicion on the launch fabric
    (it is attached to ``fabric`` when one is supplied): slow ranks are
    then *suspected* before being confirmed dead, and a falsely-confirmed
    rank can rejoin (see :mod:`repro.runtime.recovery`).  Detectors
    require the thread backend; on the process backend a worker death is
    instead observed by the launcher itself (the OS reports the exit)
    and published to survivors through the shared control block.
    """
    transport = resolve_transport(fabric, backend)
    return transport.launch(world_size, fn, timeout, elastic=True,
                            detector=detector)
