"""Launch a group of worker threads sharing one fabric.

``run_workers(P, fn)`` is the moral equivalent of ``mpiexec -n P``:
``fn(comm)`` runs once per rank on its own thread, return values come
back indexed by rank, and the first exception anywhere aborts the whole
group (peers blocked in ``recv`` are woken with ``FabricAborted``) and
is re-raised in the caller with its original traceback.

Threads — not processes — because the workloads are NumPy-bound (GIL
released inside BLAS) and, more importantly, because the point of the
functional runtime is *semantics*, not wall-clock parallel speed; the
performance questions are answered by :mod:`repro.sim`.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, List, Optional

from .communicator import Communicator, Fabric

__all__ = ["run_workers", "WorkerError"]


class WorkerError(RuntimeError):
    """Wraps an exception raised inside a worker, annotated with its rank."""

    def __init__(self, rank: int, original: BaseException, tb: str):
        super().__init__(f"worker rank {rank} failed: {original!r}\n{tb}")
        self.rank = rank
        self.original = original


def run_workers(
    world_size: int,
    fn: Callable[[Communicator], Any],
    timeout: float = 120.0,
    fabric: Optional[Fabric] = None,
) -> List[Any]:
    """Run ``fn(comm)`` on ``world_size`` ranks; return per-rank results.

    ``timeout`` bounds both individual receives (fabric timeout) and the
    overall join, so schedule deadlocks surface as errors rather than
    hangs.  Pass a pre-built ``fabric`` to inspect traffic stats after
    the run.
    """
    fab = fabric if fabric is not None else Fabric(world_size, timeout=timeout)
    if fab.world_size != world_size:
        raise ValueError("fabric world_size does not match")

    results: List[Any] = [None] * world_size
    errors: List[Optional[WorkerError]] = [None] * world_size

    def target(rank: int) -> None:
        comm = fab.communicator(rank)
        try:
            results[rank] = fn(comm)
        except BaseException as exc:  # noqa: BLE001 - must propagate everything
            errors[rank] = WorkerError(rank, exc, traceback.format_exc())
            fab.abort(f"rank {rank} raised {exc!r}")

    threads = [
        threading.Thread(target=target, args=(r,), name=f"worker-{r}", daemon=True)
        for r in range(world_size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            fab.abort("join timeout")
            raise TimeoutError(
                f"worker {t.name} did not finish within {timeout}s"
            )

    for err in errors:
        if err is not None:
            raise err
    return results
