"""Launch a group of worker threads sharing one fabric.

``run_workers(P, fn)`` is the moral equivalent of ``mpiexec -n P``:
``fn(comm)`` runs once per rank on its own thread, return values come
back indexed by rank, and the first exception anywhere aborts the whole
group (peers blocked in ``recv`` are woken with ``FabricAborted``) and
is re-raised in the caller with its original traceback.

``run_workers_elastic`` is the fault-tolerant variant: a worker's death
marks only *that rank* failed (:meth:`Fabric.fail_rank`) so survivors —
notified via :class:`~repro.runtime.communicator.PeerFailed` — can
shrink the group and keep training (:mod:`repro.runtime.recovery`).
Both variants share one launch path and one *group-wide* join deadline:
``timeout`` bounds the whole group's wall clock, not each thread's join
in sequence.

Threads — not processes — because the workloads are NumPy-bound (GIL
released inside BLAS) and, more importantly, because the point of the
functional runtime is *semantics*, not wall-clock parallel speed; the
performance questions are answered by :mod:`repro.sim`.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Callable, List, Optional, Tuple

from .communicator import Communicator, Fabric

__all__ = ["run_workers", "run_workers_elastic", "WorkerError"]


class WorkerError(RuntimeError):
    """Wraps an exception raised inside a worker, annotated with its rank."""

    def __init__(self, rank: int, original: BaseException, tb: str):
        super().__init__(f"worker rank {rank} failed: {original!r}\n{tb}")
        self.rank = rank
        self.original = original


def _launch(
    world_size: int,
    fn: Callable[[Communicator], Any],
    timeout: float,
    fabric: Optional[Fabric],
    elastic: bool,
    detector=None,
) -> Tuple[List[Any], List[Optional[WorkerError]]]:
    if fabric is not None:
        fab = fabric
        if detector is not None:
            if fab.detector is not None and fab.detector is not detector:
                raise ValueError("fabric already has a different detector")
            fab.detector = detector
    else:
        fab = Fabric(world_size, timeout=timeout, detector=detector)
    if fab.world_size != world_size:
        raise ValueError("fabric world_size does not match")

    results: List[Any] = [None] * world_size
    errors: List[Optional[WorkerError]] = [None] * world_size

    def target(rank: int) -> None:
        comm = fab.communicator(rank)
        try:
            results[rank] = fn(comm)
        except BaseException as exc:  # noqa: BLE001 - must propagate everything
            errors[rank] = WorkerError(rank, exc, traceback.format_exc())
            if elastic:
                # fail-stop: only this rank dies; survivors are notified
                # at their next fabric op and may recover.
                fab.fail_rank(rank, f"raised {exc!r}")
            else:
                fab.abort(f"rank {rank} raised {exc!r}")

    threads = [
        threading.Thread(target=target, args=(r,), name=f"worker-{r}", daemon=True)
        for r in range(world_size)
    ]
    for t in threads:
        t.start()
    # one shared deadline for the whole group: joining P threads in
    # sequence must not stretch the worst case to P x timeout.
    deadline = time.monotonic() + timeout
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
        if t.is_alive():
            fab.abort("join timeout")
            raise TimeoutError(
                f"worker {t.name} did not finish within the group deadline "
                f"({timeout}s shared across all ranks)"
            )
    return results, errors


def run_workers(
    world_size: int,
    fn: Callable[[Communicator], Any],
    timeout: float = 120.0,
    fabric: Optional[Fabric] = None,
) -> List[Any]:
    """Run ``fn(comm)`` on ``world_size`` ranks; return per-rank results.

    ``timeout`` bounds both individual receives (fabric timeout) and the
    group-wide join, so schedule deadlocks surface as errors rather than
    hangs.  Pass a pre-built ``fabric`` to inspect traffic stats after
    the run.  Any worker exception aborts the whole group (fail-fast).
    """
    results, errors = _launch(world_size, fn, timeout, fabric, elastic=False)
    for err in errors:
        if err is not None:
            raise err
    return results


def run_workers_elastic(
    world_size: int,
    fn: Callable[[Communicator], Any],
    timeout: float = 120.0,
    fabric: Optional[Fabric] = None,
    detector=None,
) -> Tuple[List[Any], List[Optional[WorkerError]]]:
    """Fault-tolerant launch: worker deaths do not poison the fabric.

    Returns ``(results, errors)`` indexed by rank; a rank has exactly one
    of the two.  A dead rank is recorded via :meth:`Fabric.fail_rank` so
    survivors (typically running :func:`repro.runtime.recovery.elastic_worker`)
    observe ``PeerFailed`` and can shrink the group.  The caller decides
    what surviving results mean; nothing is raised here unless the whole
    group exceeds the join deadline.

    Pass a :class:`~repro.runtime.detector.FailureDetector` as
    ``detector`` to arm heartbeat-based suspicion on the launch fabric
    (it is attached to ``fabric`` when one is supplied): slow ranks are
    then *suspected* before being confirmed dead, and a falsely-confirmed
    rank can rejoin (see :mod:`repro.runtime.recovery`).
    """
    return _launch(world_size, fn, timeout, fabric, elastic=True,
                   detector=detector)
