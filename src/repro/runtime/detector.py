"""Heartbeat-based failure detection: suspicion before execution.

PR-2's elastic recovery is fail-stop: a rank is dead the moment
something calls :meth:`Fabric.fail_rank`, and the ring shrinks forever.
That is the wrong verdict for the transient faults long-lived runs
actually see — a GC pause, a flapping NIC, a straggling node.  This
module adds the middle state real systems use: **suspected**.

:class:`FailureDetector` is a phi-accrual-style adaptive detector
(Hayashibara et al.): it keeps a sliding window of observed heartbeat
inter-arrival times per rank and converts "how long since the last
heartbeat" into a suspicion level ``phi`` measured in standard
deviations above the observed mean cadence.  Two thresholds matter:

* ``phi >= phi_suspect`` (or the ``min_suspect_s`` floor, whichever is
  later) — the rank is *suspected*.  Nothing is killed: receivers keep
  waiting, which means the elastic commit fence is simply held.  A
  heartbeat clears the suspicion.
* ``phi >= phi_confirm`` while already suspected — the detector
  *confirms* the failure, and only then does the fabric invoke the
  PR-2 ``fail_rank`` → ``PeerFailed`` → ring-shrink path.

Confirmation requires a prior suspicion (a rank is never confirmed on
the first look, however stale), so there is always at least one
evaluation between "slow" and "dead".  The adaptive thresholds mean a
rank with naturally slow cadence (big compute steps) earns a
proportionally longer grace window than a chatty one.

Heartbeats are *activity-based*: the fabric records one for a rank on
every operation that rank performs, including each pass of a blocked
receive loop.  A healthy-but-blocked rank therefore stays visible — only
a rank that is genuinely not running (sleeping, crashed, or cut off by a
simulated NIC outage, which suppresses its heartbeats) goes quiet.  This
is what prevents the classic cascade where one stall makes every blocked
peer look dead.

The detector is driven entirely under the fabric lock and keeps no lock
of its own.  All timestamps are caller-supplied monotonic seconds, so
unit tests can script exact timelines.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

__all__ = ["FailureDetector"]


class _RankHealth:
    __slots__ = ("last", "intervals", "suspected_since", "confirmed")

    def __init__(self, window: int):
        self.last: Optional[float] = None
        self.intervals: Deque[float] = deque(maxlen=window)
        self.suspected_since: Optional[float] = None
        self.confirmed = False


class FailureDetector:
    """Adaptive (phi-accrual-style) heartbeat failure detector.

    Parameters are floors and multipliers, not fixed timeouts:

    * ``phi_suspect`` / ``phi_confirm`` — suspicion / confirmation
      thresholds in standard deviations above the mean heartbeat gap.
    * ``min_suspect_s`` / ``min_confirm_s`` — absolute floors so a very
      chatty rank (sub-millisecond cadence) still gets a sane grace
      period before being suspected or confirmed.
    * ``min_std_s`` — variance floor guarding against a near-constant
      cadence collapsing the thresholds onto the mean.
    * ``poll_interval`` — how often blocked receivers re-evaluate peers
      (the fabric caps its condition waits with this when a detector is
      attached).
    """

    def __init__(
        self,
        window: int = 64,
        phi_suspect: float = 8.0,
        phi_confirm: float = 24.0,
        min_suspect_s: float = 0.05,
        min_confirm_s: float = 0.25,
        min_std_s: float = 0.005,
        poll_interval: float = 0.01,
    ):
        if phi_confirm <= phi_suspect:
            raise ValueError("phi_confirm must exceed phi_suspect")
        if min_confirm_s <= min_suspect_s:
            raise ValueError("min_confirm_s must exceed min_suspect_s")
        self.window = window
        self.phi_suspect = phi_suspect
        self.phi_confirm = phi_confirm
        self.min_suspect_s = min_suspect_s
        self.min_confirm_s = min_confirm_s
        self.min_std_s = min_std_s
        self.poll_interval = poll_interval
        self._ranks: Dict[int, _RankHealth] = {}
        #: lifetime tallies (mirrored into MetricsRegistry by the fabric).
        self.suspicions = 0
        self.suspicions_cleared = 0
        self.confirms = 0

    # -- observations --------------------------------------------------------

    def heartbeat(self, rank: int, now: Optional[float] = None) -> bool:
        """Record liveness evidence for ``rank``.

        Returns True when this heartbeat cleared an active (unconfirmed)
        suspicion — the "it was only slow" outcome.
        """
        if now is None:
            now = time.monotonic()
        st = self._ranks.get(rank)
        if st is None:
            st = self._ranks[rank] = _RankHealth(self.window)
        if st.last is not None and now > st.last:
            st.intervals.append(now - st.last)
        if st.last is None or now > st.last:
            st.last = now
        if st.suspected_since is not None and not st.confirmed:
            st.suspected_since = None
            self.suspicions_cleared += 1
            return True
        return False

    # -- cadence model -------------------------------------------------------

    def _cadence(self, st: _RankHealth) -> Tuple[float, float]:
        iv = st.intervals
        if not iv:
            return 0.0, self.min_std_s
        mean = sum(iv) / len(iv)
        var = sum((x - mean) ** 2 for x in iv) / len(iv)
        return mean, max(math.sqrt(var), self.min_std_s)

    def phi(self, rank: int, now: Optional[float] = None) -> float:
        """Suspicion level: standard deviations of silence beyond the
        observed mean heartbeat gap (0 for unknown / just-heard ranks)."""
        if now is None:
            now = time.monotonic()
        st = self._ranks.get(rank)
        if st is None or st.last is None:
            return 0.0
        mean, std = self._cadence(st)
        return max(0.0, (now - st.last - mean) / std)

    def suspect_after(self, rank: int) -> float:
        """Silence (seconds) that makes ``rank`` suspected right now."""
        st = self._ranks.get(rank)
        mean, std = self._cadence(st) if st is not None else (0.0, self.min_std_s)
        return max(self.min_suspect_s, mean + self.phi_suspect * std)

    def confirm_after(self, rank: int) -> float:
        """Silence (seconds) that confirms an already-suspected rank."""
        st = self._ranks.get(rank)
        mean, std = self._cadence(st) if st is not None else (0.0, self.min_std_s)
        return max(self.min_confirm_s, mean + self.phi_confirm * std)

    # -- verdicts ------------------------------------------------------------

    def evaluate(self, rank: int, now: Optional[float] = None) -> Optional[str]:
        """Re-judge ``rank``; returns a *transition* or None.

        ``"suspect"`` — newly suspected (counted once until cleared);
        ``"confirm"`` — a standing suspicion aged past the confirmation
        threshold (returned exactly once; the caller owns the kill).
        The first evaluation of an unseen rank only anchors its clock.
        """
        if now is None:
            now = time.monotonic()
        st = self._ranks.get(rank)
        if st is None:
            st = self._ranks[rank] = _RankHealth(self.window)
        if st.last is None:
            st.last = now
            return None
        if st.confirmed:
            return None
        elapsed = now - st.last
        if st.suspected_since is None:
            if elapsed >= self.suspect_after(rank):
                st.suspected_since = now
                self.suspicions += 1
                return "suspect"
            return None
        if elapsed >= self.confirm_after(rank):
            st.confirmed = True
            self.confirms += 1
            return "confirm"
        return None

    def is_suspected(self, rank: int) -> bool:
        st = self._ranks.get(rank)
        return st is not None and st.suspected_since is not None

    def is_confirmed(self, rank: int) -> bool:
        st = self._ranks.get(rank)
        return st is not None and st.confirmed

    def suspected_ranks(self) -> Tuple[int, ...]:
        return tuple(
            sorted(
                r
                for r, st in self._ranks.items()
                if st.suspected_since is not None and not st.confirmed
            )
        )

    def reset(self, rank: int) -> None:
        """Forget everything about ``rank`` (rejoin admitted a fresh one)."""
        self._ranks.pop(rank, None)

    def as_dict(self) -> Dict[str, int]:
        return {
            "suspicions": self.suspicions,
            "suspicions_cleared": self.suspicions_cleared,
            "confirms": self.confirms,
        }
