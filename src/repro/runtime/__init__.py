"""Simulated multi-worker message-passing runtime.

Stands in for NCCL/torch.distributed on a machine without GPUs: the
same P2P and ring-collective semantics, in-process, deterministic, with
per-pair traffic accounting.  See DESIGN.md §2 for the substitution
argument.
"""

from .chaos import ChaosCrash, ChaosFabric, ChaosPolicy, ChaosStats
from .collectives import (
    all_gather,
    all_reduce,
    barrier,
    broadcast,
    reduce_scatter,
    split_chunks,
)
from .communicator import (
    Communicator,
    DeclaredDead,
    Fabric,
    FabricAborted,
    PeerFailed,
    RecvTimeout,
)
from .detector import FailureDetector
from .integrity import CorruptFrameError, corrupt_copy, payload_crc32
from .launcher import (
    WorkerError,
    resolve_transport,
    run_workers,
    run_workers_elastic,
)
from .message import Message, TrafficStats, payload_nbytes, tag_kind
from .recovery import ElasticResult, RecoveryEvent, RejoinEvent, elastic_worker
from .subgroup import SubCommunicator, split_grid
from .transport import (
    Deadline,
    ProcessTransport,
    ShmFabric,
    ThreadTransport,
    Transport,
)
from .topology import (
    DEFAULT_INTER,
    DEFAULT_INTRA,
    WREF_NBYTES,
    LinkSpec,
    Topology,
    TopologyError,
    parse_group_shape,
)

__all__ = [
    "ChaosCrash",
    "ChaosFabric",
    "ChaosPolicy",
    "ChaosStats",
    "Communicator",
    "CorruptFrameError",
    "DeclaredDead",
    "ElasticResult",
    "Fabric",
    "FabricAborted",
    "FailureDetector",
    "PeerFailed",
    "RecoveryEvent",
    "RejoinEvent",
    "RecvTimeout",
    "corrupt_copy",
    "payload_crc32",
    "DEFAULT_INTER",
    "DEFAULT_INTRA",
    "LinkSpec",
    "Message",
    "Topology",
    "TopologyError",
    "TrafficStats",
    "WREF_NBYTES",
    "WorkerError",
    "Deadline",
    "ProcessTransport",
    "ShmFabric",
    "ThreadTransport",
    "Transport",
    "parse_group_shape",
    "resolve_transport",
    "all_gather",
    "all_reduce",
    "barrier",
    "broadcast",
    "elastic_worker",
    "payload_nbytes",
    "reduce_scatter",
    "run_workers",
    "run_workers_elastic",
    "SubCommunicator",
    "split_grid",
    "split_chunks",
    "tag_kind",
]
