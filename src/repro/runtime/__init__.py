"""Simulated multi-worker message-passing runtime.

Stands in for NCCL/torch.distributed on a machine without GPUs: the
same P2P and ring-collective semantics, in-process, deterministic, with
per-pair traffic accounting.  See DESIGN.md §2 for the substitution
argument.
"""

from .chaos import ChaosCrash, ChaosFabric, ChaosPolicy, ChaosStats
from .collectives import (
    all_gather,
    all_reduce,
    barrier,
    broadcast,
    reduce_scatter,
    split_chunks,
)
from .communicator import Communicator, Fabric, FabricAborted, RecvTimeout
from .launcher import WorkerError, run_workers
from .message import Message, TrafficStats, payload_nbytes, tag_kind
from .subgroup import SubCommunicator, split_grid

__all__ = [
    "ChaosCrash",
    "ChaosFabric",
    "ChaosPolicy",
    "ChaosStats",
    "Communicator",
    "Fabric",
    "FabricAborted",
    "RecvTimeout",
    "Message",
    "TrafficStats",
    "WorkerError",
    "all_gather",
    "all_reduce",
    "barrier",
    "broadcast",
    "payload_nbytes",
    "reduce_scatter",
    "run_workers",
    "SubCommunicator",
    "split_grid",
    "split_chunks",
    "tag_kind",
]
