"""Per-link fabric topology: group membership plus link speeds.

Real long-context clusters are *asymmetric*: ranks inside one server
talk over NVLink/PCIe while ring hops that cross a server boundary ride
commodity Ethernet, one to two orders of magnitude slower (the paper's
Table 2/3 environments; TawPipe builds its whole schedule around the
distinction).  The flat in-process :class:`~repro.runtime.Fabric` knows
nothing about this — every hop is equal — so neither the chaos wire nor
the traffic ledger can express "the two inter-server hops are the ones
that hurt".

:class:`Topology` closes that gap.  It partitions the ``P`` ranks into
equal, contiguous *groups* (one group ~= one server) and assigns every
ordered pair of distinct ranks a :class:`LinkSpec`:

* pairs inside one group use the ``intra`` link,
* pairs in different groups use the ``inter`` link,
* individual pairs may be overridden via ``links`` — overrides must be
  given for *both* directions with the same spec (an override present
  one way only would silently model an asymmetric-in-direction wire,
  which nothing downstream supports, so it is rejected loudly).

Consumers:

* :class:`~repro.runtime.Fabric` — per-link-class traffic counters
  (``fabric_link_bytes_total{link=intra|inter}``) on top of the
  per-kind ledger, the measurement the hierarchical ring's
  cross-group-traffic claim is tested against;
* :class:`~repro.runtime.chaos.ChaosFabric` — a deterministic
  serialization delay ``latency + nbytes/bandwidth`` per message on top
  of the seeded jitter, so a slow inter-group link actually *is* slow
  in wall-clock terms and a bench can measure the win;
* :func:`repro.parallel.weipipe_hier.train_weipipe_hier` — group
  membership decides which ring hops are boundary hops and which rank
  fronts each group (the *gateway*, lowest rank by convention).

The group layout doubles as the schedule contract: groups must exactly
partition ``0..P-1``, be equal-sized, and be contiguous runs of ranks
(so the rank ring crosses each group boundary exactly once per
revolution).  Single-rank groups are rejected by default — a group of
one has no intra-group links to share weights over, so "hierarchical"
degenerates silently; pass ``allow_singleton=True`` for the explicit
``Px1`` degenerate used by the differential tests.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "LinkSpec",
    "Topology",
    "TopologyError",
    "parse_group_shape",
    "WREF_NBYTES",
    "DEFAULT_INTRA",
    "DEFAULT_INTER",
]

#: wire size of a hierarchical weight-reference token (see
#: ``repro.parallel.weipipe_hier``): a (marker, flow, slot) triple —
#: metadata, not parameters.  Shared here so the cost model and the
#: engine cannot drift apart.
WREF_NBYTES = 24


class TopologyError(ValueError):
    """An invalid topology description (bad groups or links)."""


@dataclass(frozen=True)
class LinkSpec:
    """One directed point-to-point link: effective bandwidth + latency.

    Mirrors :class:`repro.sim.hardware.Link` (same ``time`` contract) but
    lives in the runtime so ``repro.runtime`` keeps zero dependencies on
    the simulator package.
    """

    name: str
    bandwidth: float  # effective bytes/s
    latency: float = 0.0  # seconds per message

    def __post_init__(self):
        if not (self.bandwidth > 0.0):
            raise TopologyError(
                f"link {self.name!r}: bandwidth must be > 0, got {self.bandwidth}"
            )
        if self.latency < 0.0:
            raise TopologyError(
                f"link {self.name!r}: latency must be >= 0, got {self.latency}"
            )

    def time(self, nbytes: float) -> float:
        """Serialization time of one message of ``nbytes``."""
        return self.latency + nbytes / self.bandwidth

    def as_dict(self) -> Dict[str, float]:
        return {"name": self.name, "bandwidth": self.bandwidth,
                "latency": self.latency}


#: defaults loosely shaped like PCIe-within-a-box vs 10GbE-between-boxes,
#: scaled so test-sized messages see the asymmetry without slowing the
#: suite: ~100 KB crosses intra in ~15 us and inter in ~1.3 ms.
DEFAULT_INTRA = LinkSpec("intra-default", bandwidth=8e9, latency=2e-6)
DEFAULT_INTER = LinkSpec("inter-default", bandwidth=80e6, latency=5e-5)

_SHAPE_RE = re.compile(r"^(\d+)x(\d+)$")


def parse_group_shape(shape: str) -> Tuple[int, int]:
    """Parse a ``"GxR"`` group shape — ``G`` groups of ``R`` ranks each
    (``"2x2"``: two groups of two).  Returns ``(groups, ranks_per_group)``."""
    m = _SHAPE_RE.match(shape.strip())
    if not m:
        raise TopologyError(
            f"group shape {shape!r} is not of the form 'GxR' (e.g. '2x2')"
        )
    g, r = int(m.group(1)), int(m.group(2))
    if g < 1 or r < 1:
        raise TopologyError(f"group shape {shape!r} must have positive factors")
    return g, r


class Topology:
    """Group membership + per-pair link speeds for ``world_size`` ranks."""

    def __init__(
        self,
        world_size: int,
        groups: Sequence[Sequence[int]],
        intra: LinkSpec = DEFAULT_INTRA,
        inter: LinkSpec = DEFAULT_INTER,
        links: Optional[Dict[Tuple[int, int], LinkSpec]] = None,
        allow_singleton: bool = False,
    ):
        if world_size < 1:
            raise TopologyError("world_size must be >= 1")
        self.world_size = world_size
        self.intra = intra
        self.inter = inter
        self.groups: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(int(r) for r in g) for g in groups
        )
        self._validate_groups(allow_singleton)
        self._group_of: Dict[int, int] = {
            rank: gi for gi, g in enumerate(self.groups) for rank in g
        }
        self._links: Dict[Tuple[int, int], LinkSpec] = dict(links or {})
        self._validate_links()

    # -- validation -----------------------------------------------------------

    def _validate_groups(self, allow_singleton: bool) -> None:
        if not self.groups:
            raise TopologyError("at least one group is required")
        flat: List[int] = [r for g in self.groups for r in g]
        seen = set(flat)
        if len(seen) != len(flat):
            dupes = sorted({r for r in flat if flat.count(r) > 1})
            raise TopologyError(
                f"groups must partition ranks 0..{self.world_size - 1}: "
                f"rank(s) {dupes} appear in more than one group"
            )
        expected = set(range(self.world_size))
        if seen != expected:
            missing = sorted(expected - seen)
            extra = sorted(seen - expected)
            detail = []
            if missing:
                detail.append(f"missing ranks {missing}")
            if extra:
                detail.append(f"unknown ranks {extra}")
            raise TopologyError(
                f"groups must partition ranks 0..{self.world_size - 1}: "
                + ", ".join(detail)
            )
        sizes = {len(g) for g in self.groups}
        if len(sizes) != 1:
            raise TopologyError(
                f"groups must be equal-sized, got sizes "
                f"{sorted(len(g) for g in self.groups)}"
            )
        if min(sizes) == 1 and len(self.groups) > 1 and not allow_singleton:
            raise TopologyError(
                "single-rank groups have no intra-group links to share "
                "weights over; pass allow_singleton=True if the degenerate "
                "per-rank-group layout is intended"
            )
        for g in self.groups:
            if list(g) != list(range(g[0], g[0] + len(g))):
                raise TopologyError(
                    f"group {list(g)} is not a contiguous run of ranks; the "
                    f"rank ring must cross each group boundary exactly once"
                )

    def _validate_links(self) -> None:
        for (src, dst), spec in sorted(self._links.items()):
            if not (0 <= src < self.world_size and 0 <= dst < self.world_size):
                raise TopologyError(
                    f"link override ({src}, {dst}) names a rank outside "
                    f"0..{self.world_size - 1}"
                )
            if src == dst:
                raise TopologyError(f"link override ({src}, {dst}) is a self-link")
            rev = self._links.get((dst, src))
            if rev is None:
                raise TopologyError(
                    f"link override ({src}, {dst}) is missing its reverse "
                    f"({dst}, {src}); per-pair links must be given for both "
                    f"directions"
                )
            if rev != spec:
                raise TopologyError(
                    f"asymmetric link override: ({src}, {dst}) is {spec.name!r} "
                    f"but ({dst}, {src}) is {rev.name!r}; both directions must "
                    f"use the same spec"
                )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def grid(
        cls,
        world_size: int,
        shape: str,
        intra: LinkSpec = DEFAULT_INTRA,
        inter: LinkSpec = DEFAULT_INTER,
        links: Optional[Dict[Tuple[int, int], LinkSpec]] = None,
        allow_singleton: bool = False,
    ) -> "Topology":
        """A ``"GxR"`` layout: group ``g`` holds ranks ``[g*R, (g+1)*R)``."""
        n_groups, per = parse_group_shape(shape)
        if n_groups * per != world_size:
            raise TopologyError(
                f"group shape {shape!r} covers {n_groups * per} ranks but "
                f"world_size is {world_size}"
            )
        groups = [
            list(range(g * per, (g + 1) * per)) for g in range(n_groups)
        ]
        return cls(world_size, groups, intra=intra, inter=inter, links=links,
                   allow_singleton=allow_singleton)

    @classmethod
    def flat(cls, world_size: int, link: LinkSpec = DEFAULT_INTRA) -> "Topology":
        """All ranks in one group over one uniform link (no boundaries)."""
        return cls(world_size, [list(range(world_size))], intra=link, inter=link)

    # -- queries --------------------------------------------------------------

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def group_size(self) -> int:
        return len(self.groups[0])

    def group_of(self, rank: int) -> int:
        try:
            return self._group_of[rank]
        except KeyError:
            raise TopologyError(
                f"rank {rank} out of range 0..{self.world_size - 1}"
            ) from None

    def link_class(self, src: int, dst: int) -> str:
        """``"intra"`` | ``"inter"`` | ``"local"`` (self-delivery)."""
        if src == dst:
            return "local"
        return "intra" if self.group_of(src) == self.group_of(dst) else "inter"

    def link(self, src: int, dst: int) -> Optional[LinkSpec]:
        """The link a ``src -> dst`` message rides (None for self-delivery)."""
        if src == dst:
            return None
        override = self._links.get((src, dst))
        if override is not None:
            return override
        return self.intra if self.link_class(src, dst) == "intra" else self.inter

    def wire_time(self, src: int, dst: int, nbytes: float) -> float:
        """Deterministic serialization delay of one message (0 for self)."""
        link = self.link(src, dst)
        return 0.0 if link is None else link.time(nbytes)

    def gateway(self, group: int) -> int:
        """The rank fronting ``group`` on the inter-group ring (its lowest
        rank — with contiguous groups, the one the ring enters through)."""
        return min(self.groups[group])

    def gateways(self) -> Tuple[int, ...]:
        return tuple(self.gateway(g) for g in range(self.n_groups))

    def is_gateway(self, rank: int) -> bool:
        return rank == self.gateway(self.group_of(rank))

    def ring_boundaries(self) -> Tuple[Tuple[int, int], ...]:
        """The ``(src, dst)`` ring hops that cross a group boundary."""
        p = self.world_size
        return tuple(
            (i, (i + 1) % p)
            for i in range(p)
            if self.link_class(i, (i + 1) % p) == "inter"
        )

    def as_dict(self) -> Dict:
        """JSON-safe description (trace metadata, bench reports)."""
        return {
            "world_size": self.world_size,
            "groups": [list(g) for g in self.groups],
            "intra": self.intra.as_dict(),
            "inter": self.inter.as_dict(),
            "overrides": [
                {"src": s, "dst": d, **spec.as_dict()}
                for (s, d), spec in sorted(self._links.items())
            ],
        }

    def __repr__(self) -> str:
        shape = f"{self.n_groups}x{self.group_size}"
        return (f"Topology({shape}, world={self.world_size}, "
                f"intra={self.intra.name}, inter={self.inter.name})")
