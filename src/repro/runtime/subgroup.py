"""Sub-communicators: MPI_Comm_split for the simulated fabric.

A :class:`SubCommunicator` presents a contiguous 0..n-1 rank view over
an arbitrary subset of a fabric's global ranks, namespacing every tag so
different groups never cross-match.  Ring collectives and all strategy
code work unchanged on it (they only use ``rank``/``world_size``/
``left``/``right``/``send``/``recv``), which is what enables 2-D
hybrids: e.g. WeiPipe rings inside data-parallel replica groups
(:mod:`repro.core.hybrid`).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from .communicator import Communicator

__all__ = ["SubCommunicator", "split_grid"]


class SubCommunicator(Communicator):
    """A rank-remapped, tag-namespaced view of a parent communicator."""

    def __init__(self, parent: Communicator, ranks: Sequence[int], name: Any):
        ranks = list(ranks)
        if len(set(ranks)) != len(ranks):
            raise ValueError("duplicate global ranks in subgroup")
        if parent.rank not in ranks:
            raise ValueError(
                f"global rank {parent.rank} is not a member of subgroup {ranks}"
            )
        for r in ranks:
            if not (0 <= r < parent.world_size):
                raise ValueError(f"global rank {r} out of range")
        self.fabric = parent.fabric
        #: local rank within the subgroup (``left``/``right`` inherit it).
        self.rank = ranks.index(parent.rank)
        # same thread, same timeline: share the parent's trace buffer
        # (this __init__ bypasses Communicator.__init__, which normally
        # resolves it from the fabric's tracer).
        self.trace = parent.trace
        self._parent = parent
        self._ranks = ranks
        self._name = name

    # -- remapped identity -----------------------------------------------------

    @property
    def world_size(self) -> int:  # type: ignore[override]
        return len(self._ranks)

    def global_rank(self, local: int) -> int:
        """Translate a subgroup rank to the fabric's global rank."""
        return self._ranks[local]

    # -- namespaced point to point ------------------------------------------------

    def _tag(self, tag: Tuple) -> Tuple:
        return ("subgroup", self._name) + tuple(tag)

    def send(self, payload, dst: int, tag: Tuple = (), nbytes: Optional[int] = None) -> None:
        self._parent.send(payload, self._ranks[dst], self._tag(tag), nbytes=nbytes)

    def isend(self, payload, dst: int, tag: Tuple = (), nbytes=None):
        return self._parent.isend(
            payload, self._ranks[dst], self._tag(tag), nbytes=nbytes
        )

    def recv(self, src: int, tag: Tuple = (), timeout: Optional[float] = None):
        return self._parent.recv(self._ranks[src], self._tag(tag), timeout=timeout)

    def irecv(self, src: int, tag: Tuple = ()):
        return self._parent.irecv(self._ranks[src], self._tag(tag))

    # -- failure bookkeeping uses *global* ranks ------------------------------

    def acknowledge_failures(self) -> None:
        self._parent.acknowledge_failures()

    def report_progress(self, step: int) -> None:
        self._parent.report_progress(step)


def split_grid(
    comm: Communicator, rows: int, cols: int
) -> Tuple[SubCommunicator, SubCommunicator, int, int]:
    """Split a ``rows x cols`` world into this rank's row and column groups.

    Rank ``r`` sits at ``(row, col) = divmod(r, cols)``.  Returns
    ``(row_comm, col_comm, row, col)`` — e.g. rows = data-parallel
    replicas of a ``cols``-wide WeiPipe ring, columns = the same ring
    position across replicas (the gradient-sync group).
    """
    if rows * cols != comm.world_size:
        raise ValueError(
            f"{rows}x{cols} grid does not tile world size {comm.world_size}"
        )
    row, col = divmod(comm.rank, cols)
    row_comm = SubCommunicator(
        comm, [row * cols + c for c in range(cols)], ("row", row)
    )
    col_comm = SubCommunicator(
        comm, [r * cols + col for r in range(rows)], ("col", col)
    )
    return row_comm, col_comm, row, col
