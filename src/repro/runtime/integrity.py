"""Wire integrity for the simulated fabric: CRC32 framing and SDC helpers.

Real transports checksum every frame because links flip bits: a single
silent data corruption (SDC) in a circulating weight slot poisons the
model for every remaining step.  This module gives the in-process wire
the same defence:

* :func:`payload_crc32` — a structural CRC32 over a message payload.
  Array data is fed to ``zlib.crc32`` straight through the buffer
  protocol (no serialization copy), so framing a quiet-wire message is
  allocation-free in the PR-3 sense: no pool buffers, no array copies.
  Container structure, dtypes and shapes are mixed into the digest via
  small type-tag prefixes so distinct structures cannot collide by
  concatenation.
* :func:`verify_message` — recompute and compare a frame's CRC.
* :func:`corrupt_copy` — build a *copy* of a payload with exactly one
  bit flipped in one of its array leaves (the chaos wire's SDC
  injector).  It must copy: the in-process fabric passes payloads by
  reference, so corrupting in place would corrupt the sender's own
  state rather than the wire.

:class:`CorruptFrameError` is raised by a receiver only when the chaos
wire's retransmit budget for a flow is exhausted — a persistent-SDC
channel is treated as a permanent failure and handed to the PR-2
ring-shrink path by the elastic driver.
"""

from __future__ import annotations

import dataclasses
import pickle
import struct
import zlib
from typing import Any, Optional, Tuple

import numpy as np

__all__ = [
    "CorruptFrameError",
    "payload_crc32",
    "verify_message",
    "corrupt_copy",
    "payload_flip_surface",
]


class CorruptFrameError(RuntimeError):
    """A flow kept failing CRC verification past its retransmit budget."""


def _is_paramstruct(obj: Any) -> bool:
    # duck-typed so runtime does not import repro.nn: a ParamStruct
    # quacks numel/clone/keys; dicts are excluded by the explicit
    # isinstance checks before this is consulted.
    return hasattr(obj, "numel") and hasattr(obj, "clone") and hasattr(obj, "keys")


def _crc_array(arr: np.ndarray, crc: int) -> int:
    # dtype and shape are part of the frame: a garbled header must not
    # alias a different array with the same bytes.  dtype.str ('<f8') is
    # a cached attribute — str(dtype) builds the name string every call
    # and used to dominate the whole digest for many-leaf payloads.
    crc = zlib.crc32(arr.dtype.str.encode(), crc)
    crc = zlib.crc32(struct.pack("<B%dq" % arr.ndim, arr.ndim, *arr.shape), crc)
    if not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr)
    return zlib.crc32(arr, crc)


def _crc_walk(obj: Any, crc: int) -> int:
    if obj is None:
        return zlib.crc32(b"N", crc)
    if isinstance(obj, np.ndarray):
        return _crc_array(obj, zlib.crc32(b"A", crc))
    if isinstance(obj, np.generic):
        crc = zlib.crc32(b"G", crc)
        crc = zlib.crc32(obj.dtype.str.encode(), crc)
        return zlib.crc32(obj.tobytes(), crc)
    if isinstance(obj, bool):
        return zlib.crc32(b"O1" if obj else b"O0", crc)
    if isinstance(obj, int):
        crc = zlib.crc32(b"I", crc)
        return zlib.crc32(str(obj).encode(), crc)
    if isinstance(obj, float):
        return zlib.crc32(struct.pack("<d", obj), zlib.crc32(b"F", crc))
    if isinstance(obj, str):
        crc = zlib.crc32(b"S", crc)
        return zlib.crc32(obj.encode(), crc)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return zlib.crc32(obj, zlib.crc32(b"B", crc))
    if isinstance(obj, tuple):
        crc = zlib.crc32(b"T%d" % len(obj), crc)
        for v in obj:
            crc = _crc_walk(v, crc)
        return crc
    if isinstance(obj, list):
        crc = zlib.crc32(b"L%d" % len(obj), crc)
        for v in obj:
            crc = _crc_walk(v, crc)
        return crc
    if isinstance(obj, dict):
        # insertion order: sender and receiver digest the same object
        # (or a structural copy built in the same order), so no sort.
        crc = zlib.crc32(b"D%d" % len(obj), crc)
        for k, v in obj.items():
            crc = _crc_walk(k, crc)
            crc = _crc_walk(v, crc)
        return crc
    if _is_paramstruct(obj):
        crc = zlib.crc32(b"P", crc)
        for name in obj.keys():
            crc = zlib.crc32(str(name).encode(), crc)
            crc = _crc_array(obj[name], crc)
        return crc
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        crc = zlib.crc32(b"C", crc)
        crc = zlib.crc32(type(obj).__name__.encode(), crc)
        for f in dataclasses.fields(obj):
            crc = zlib.crc32(f.name.encode(), crc)
            crc = _crc_walk(getattr(obj, f.name), crc)
        return crc
    # last resort for exotic payloads; deterministic within a process.
    try:
        blob = pickle.dumps(obj, protocol=4)
    except Exception:
        blob = repr(obj).encode()
    return zlib.crc32(blob, zlib.crc32(b"X", crc))


def payload_crc32(payload: Any) -> int:
    """Structural CRC32 of a message payload (see module docstring)."""
    return _crc_walk(payload, 0) & 0xFFFFFFFF


def verify_message(msg: Any) -> bool:
    """True when ``msg`` has no frame or its payload matches its CRC."""
    crc = getattr(msg, "crc", None)
    if crc is None:
        return True
    return payload_crc32(msg.payload) == crc


# -- SDC injection (used by the chaos wire) ---------------------------------


def payload_flip_surface(payload: Any) -> int:
    """Total array-data bytes an SDC could land in (0 = nothing to flip)."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if _is_paramstruct(payload):
        return sum(int(payload[k].nbytes) for k in payload.keys())
    if isinstance(payload, (tuple, list)):
        return sum(payload_flip_surface(v) for v in payload)
    if isinstance(payload, dict):
        return sum(payload_flip_surface(v) for v in payload.values())
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        return sum(
            payload_flip_surface(getattr(payload, f.name))
            for f in dataclasses.fields(payload)
        )
    return 0


def _flip_in_array(arr: np.ndarray, byte_i: int, bit_i: int) -> np.ndarray:
    buf = bytearray(arr.tobytes())
    buf[byte_i] ^= 1 << bit_i
    return np.frombuffer(bytes(buf), dtype=arr.dtype).reshape(arr.shape).copy()


def _rebuild_flip(obj: Any, remaining: list, bit_i: int) -> Tuple[Any, bool]:
    """Copy-on-write rebuild of ``obj`` with one bit flipped at array-data
    byte offset ``remaining[0]`` (counted over :func:`payload_flip_surface`
    order).  Returns ``(value, flipped)``; untouched subtrees are shared.
    """
    if remaining[0] < 0:
        return obj, False
    if isinstance(obj, np.ndarray):
        n = int(obj.nbytes)
        if remaining[0] < n:
            out = _flip_in_array(obj, remaining[0], bit_i)
            remaining[0] = -1
            return out, True
        remaining[0] -= n
        return obj, False
    if _is_paramstruct(obj):
        n = payload_flip_surface(obj)
        if remaining[0] < n:
            cp = obj.clone()
            for name in cp.keys():
                arr = cp[name]
                an = int(arr.nbytes)
                if remaining[0] < an:
                    # clone's arrays are private and C-contiguous (arena
                    # views or fresh copies) — flip in place on the copy.
                    flat = arr.reshape(-1).view(np.uint8)
                    flat[remaining[0]] ^= 1 << bit_i
                    remaining[0] = -1
                    return cp, True
                remaining[0] -= an
            raise AssertionError("flip offset escaped ParamStruct surface")
        remaining[0] -= n
        return obj, False
    if isinstance(obj, (tuple, list)):
        out, flipped = [], False
        for v in obj:
            nv, f = _rebuild_flip(v, remaining, bit_i)
            out.append(nv)
            flipped = flipped or f
        if not flipped:
            return obj, False
        return (tuple(out) if isinstance(obj, tuple) else out), True
    if isinstance(obj, dict):
        out, flipped = {}, False
        for k, v in obj.items():
            nv, f = _rebuild_flip(v, remaining, bit_i)
            out[k] = nv
            flipped = flipped or f
        return (out, True) if flipped else (obj, False)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        changes = {}
        for f in dataclasses.fields(obj):
            nv, flipped = _rebuild_flip(getattr(obj, f.name), remaining, bit_i)
            if flipped:
                changes[f.name] = nv
                break
        if changes:
            return dataclasses.replace(obj, **changes), True
        return obj, False
    return obj, False


def corrupt_copy(payload: Any, rng: np.random.Generator) -> Optional[Any]:
    """A structural copy of ``payload`` with exactly one bit flipped in
    one array leaf, or ``None`` when the payload has no array data to
    flip (control messages, plain scalars).  ``payload`` itself is never
    mutated."""
    surface = payload_flip_surface(payload)
    if surface == 0:
        return None
    byte_i = int(rng.integers(surface))
    bit_i = int(rng.integers(8))
    out, flipped = _rebuild_flip(payload, [byte_i], bit_i)
    if not flipped:  # pragma: no cover - surface accounting invariant
        raise AssertionError("corrupt_copy failed to land a flip")
    return out
