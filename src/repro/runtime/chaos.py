"""Chaos engineering for the in-process fabric.

The plain :class:`~repro.runtime.Fabric` delivers every message the
instant it is posted, so the test suite only ever exercises *one* legal
delivery order — the happy path.  Real transports (NCCL over NVLink,
RDMA, TCP) delay, reorder across flows, duplicate at the transport
layer and lose packets; schedule bugs of the kind zero-bubble pipelines
are famous for hide exactly in those rare orderings.

:class:`ChaosFabric` wraps the mailbox with a *seeded* adversarial
transport:

* **delay** — a message becomes visible to ``recv``/``poll`` only after
  a per-message hold-back interval;
* **cross-flow reordering** — because delays are independent per
  message, messages on *different* ``(src, dst, tag)`` channels overtake
  each other freely.  Within one channel delivery stays FIFO (enforced
  by per-channel sequence numbers), exactly the guarantee MPI/NCCL give
  and the strongest reordering a correct program may be exposed to;
* **drop with retry** — the first transmission is lost and a sender-side
  retransmission is scheduled ``retry_delay`` later (at-least-once
  transport);
* **duplicate delivery** — a second copy is put on the wire; the
  receiving side discards it by sequence number (exactly-once delivery
  built on an at-least-once wire, the way real transports do it);
* **injected crash** — a chosen rank raises :class:`ChaosCrash` on its
  N-th ``send``, driving the launcher's ``abort()``/poison path so peers
  must fail fast with ``FabricAborted``;
* **payload bit-flip (SDC)** — a *copy* of the payload with one flipped
  bit rides the wire instead of the original; the CRC32 frame stamped at
  post time catches it on delivery and drives NACK + retransmit with
  capped exponential backoff.  Only when a flow exhausts its retransmit
  budget does the receiver raise
  :class:`~repro.runtime.integrity.CorruptFrameError` — a persistently
  corrupting link is a permanent failure;
* **directed-link flap** — a bounded window of consecutive posts on one
  ``(src, dst)`` link is held back until the outage ends (no loss: the
  wire stays at-least-once);
* **transient rank stall** — a chosen (or seeded) rank freezes for a
  bounded duration at one of its sends, long enough to drive the failure
  detector's suspect path without any crash;
* **rank flap (NIC outage)** — one rank's links go down entirely for a
  bounded window *and* its heartbeats are suppressed, which is the
  deterministic way to drive suspect → confirm → shrink → rejoin.

Every per-message decision is a pure function of ``(policy.seed, src,
dst, tag, per-channel sequence number)`` — *not* of wall-clock time or
thread interleaving — so a failing chaos seed names a reproducible
adversary even though the OS scheduler stays nondeterministic.  (Link
flaps extend the scheme with the per-directed-link post index as the
sequence, and stalls with the per-rank post index; both stay pure.)
Logical traffic accounting (:class:`~repro.runtime.TrafficStats`)
records each message once; retransmitted and duplicated bytes are
tallied separately in :class:`ChaosStats` so the communication-volume
tests stay meaningful under chaos.
"""

from __future__ import annotations

import heapq
import itertools
import time
import zlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..obs import flight as _flight
from .communicator import Fabric, _now
from .integrity import CorruptFrameError, corrupt_copy, payload_crc32
from .message import Message

__all__ = ["ChaosPolicy", "ChaosStats", "ChaosCrash", "ChaosFabric"]


class ChaosCrash(RuntimeError):
    """Injected worker failure (see :attr:`ChaosPolicy.crash_rank`)."""


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded fault-injection policy.

    Probabilities are per *message*; delays are seconds (keep them in
    the low-millisecond range — they bound wall-clock test time, not
    simulated time).  ``seed`` selects the adversary: sweeping seeds
    sweeps delivery orders.
    """

    seed: int = 0
    #: probability a message is held back before delivery.
    delay_prob: float = 0.5
    #: maximum hold-back, seconds (uniform in [0, max_delay]).  1 ms is
    #: already ~1000x the in-process message-handling latency, so it
    #: reorders aggressively while keeping sweep wall-clock low.
    max_delay: float = 0.001
    #: probability the first transmission is lost (then retransmitted).
    drop_prob: float = 0.05
    #: extra latency of the sender-side retransmission, seconds.
    retry_delay: float = 0.001
    #: probability a second (to-be-discarded) copy hits the wire.
    duplicate_prob: float = 0.05
    #: rank whose ``send`` raises :class:`ChaosCrash` ... (None = never)
    crash_rank: Optional[int] = None
    #: ... on its N-th post (1-based count of messages that rank sent).
    crash_at_post: Optional[int] = None
    # -- transient faults (all off by default, so existing seeds keep
    # -- their exact historical fault schedules) ------------------------------
    #: probability a message's wire copy suffers a single-bit flip (SDC).
    bitflip_prob: float = 0.0
    #: per-flow cap on CRC-driven retransmissions; the receiver raises
    #: :class:`~repro.runtime.integrity.CorruptFrameError` past it.
    retransmit_budget: int = 16
    #: cap on the exponential NACK backoff (seconds).
    max_backoff: float = 0.02
    #: probability a flap window *opens* at any given post of a directed
    #: link (each window holds ``flap_len`` consecutive posts back).
    flap_prob: float = 0.0
    #: number of consecutive link posts one flap window affects.
    flap_len: int = 4
    #: outage penalty added to flapped messages (seconds).
    flap_delay: float = 0.003
    #: explicit flap windows: ``(src, dst, first_link_post, n_posts)``.
    flaps: Tuple[Tuple[int, int, int, int], ...] = ()
    #: probability a rank stalls (freezes) at any given one of its posts.
    stall_prob: float = 0.0
    #: maximum seeded stall duration (uniform in (0, max_stall]).
    max_stall: float = 0.0
    #: deterministic single stall: rank / 1-based post index / seconds.
    stall_rank: Optional[int] = None
    stall_at_post: Optional[int] = None
    stall_duration: float = 0.0
    #: NIC outage: this rank's links go down and its heartbeats are
    #: suppressed for ``flap_rank_duration`` seconds starting at its
    #: ``flap_rank_at_post``-th post (1-based).
    flap_rank: Optional[int] = None
    flap_rank_at_post: Optional[int] = None
    flap_rank_duration: float = 0.0

    @classmethod
    def quiet(cls, seed: int = 0) -> "ChaosPolicy":
        """A policy that injects nothing (useful as a control group)."""
        return cls(seed=seed, delay_prob=0.0, drop_prob=0.0, duplicate_prob=0.0)

    def with_seed(self, seed: int) -> "ChaosPolicy":
        return replace(self, seed=seed)

    def decide(self, src: int, dst: int, tag: Tuple, seq: int) -> "_Decision":
        """Fault decisions for one message — deterministic in its identity."""
        key = (
            abs(int(self.seed)),
            src,
            dst,
            zlib.crc32(repr(tag).encode()),
            seq,
        )
        rng = np.random.default_rng(key)
        delay = float(rng.random() * self.max_delay) if rng.random() < self.delay_prob else 0.0
        dropped = bool(rng.random() < self.drop_prob)
        duplicated = bool(rng.random() < self.duplicate_prob)
        dup_delay = delay + float(rng.random() * max(self.max_delay, 1e-4))
        # new draws come strictly after the historical ones, so enabling
        # bit-flips never perturbs a seed's delay/drop/dup schedule.
        bitflip = bool(self.bitflip_prob > 0.0 and rng.random() < self.bitflip_prob)
        return _Decision(
            delay=delay,
            dropped=dropped,
            duplicated=duplicated,
            dup_delay=dup_delay,
            bitflip=bitflip,
        )

    def flip_rng(self, src: int, dst: int, tag: Tuple, seq: int, attempt: int) -> np.random.Generator:
        """RNG choosing *where* an SDC lands (and whether a retransmit is
        corrupted again) — pure in the frame identity plus attempt."""
        return np.random.default_rng(
            (abs(int(self.seed)), 0xB17F11B, src, dst,
             zlib.crc32(repr(tag).encode()), seq, attempt)
        )

    def flap_hold(self, src: int, dst: int, link_post: int) -> float:
        """Outage delay for the ``link_post``-th message (0-based) on the
        directed link ``src -> dst`` — pure in (seed, link, post index)."""
        for (s, d, first, n) in self.flaps:
            if s == src and d == dst and first <= link_post < first + n:
                return self.flap_delay
        if self.flap_prob > 0.0 and self.flap_len > 0:
            lo = max(0, link_post - self.flap_len + 1)
            for start in range(lo, link_post + 1):
                rng = np.random.default_rng(
                    (abs(int(self.seed)), 0xF1A9, src, dst, start)
                )
                if rng.random() < self.flap_prob:
                    return self.flap_delay
        return 0.0

    def stall_at(self, rank: int, post_index: int) -> float:
        """Seconds ``rank`` freezes at its ``post_index``-th post
        (1-based), 0 for no stall — pure in (seed, rank, post index)."""
        if self.stall_rank == rank and self.stall_at_post == post_index:
            return self.stall_duration
        if self.stall_prob > 0.0 and self.max_stall > 0.0:
            rng = np.random.default_rng(
                (abs(int(self.seed)), 0x57A11, rank, post_index)
            )
            if rng.random() < self.stall_prob:
                return float((rng.random() * 0.9 + 0.1) * self.max_stall)
        return 0.0


@dataclass(frozen=True)
class _Decision:
    delay: float
    dropped: bool
    duplicated: bool
    dup_delay: float
    bitflip: bool = False


@dataclass
class ChaosStats:
    """What the adversary actually did (queried after a run)."""

    posts: int = 0
    delayed: int = 0
    dropped: int = 0
    retransmits: int = 0
    duplicates: int = 0
    duplicates_discarded: int = 0
    crashes: int = 0
    delivered: int = 0
    #: physical bytes re-sent on top of the logical traffic (retries + dups).
    extra_wire_bytes: int = 0
    #: single-bit payload corruptions put on the wire (incl. re-corrupted
    #: retransmissions).
    bitflips: int = 0
    #: frames that failed CRC verification on delivery.
    corrupt_frames: int = 0
    #: NACKs sent back (one per corrupt frame that got a retransmission).
    nacks: int = 0
    #: messages held back by a directed-link flap window.
    flapped: int = 0
    #: injected transient rank stalls, and their summed duration.
    stalls: int = 0
    stall_time_s: float = 0.0
    #: NIC outages triggered (see ChaosPolicy.flap_rank).
    rank_flaps: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "posts": self.posts,
            "delayed": self.delayed,
            "dropped": self.dropped,
            "retransmits": self.retransmits,
            "duplicates": self.duplicates,
            "duplicates_discarded": self.duplicates_discarded,
            "crashes": self.crashes,
            "delivered": self.delivered,
            "extra_wire_bytes": self.extra_wire_bytes,
            "bitflips": self.bitflips,
            "corrupt_frames": self.corrupt_frames,
            "nacks": self.nacks,
            "flapped": self.flapped,
            "stalls": self.stalls,
            "stall_time_s": self.stall_time_s,
            "rank_flaps": self.rank_flaps,
        }


class ChaosFabric(Fabric):
    """A :class:`Fabric` whose wire misbehaves according to a seeded policy.

    Drop-in everywhere a ``Fabric`` is accepted (``run_workers``,
    ``train(..., fabric=...)``).  Semantics visible to a *correct*
    program are unchanged: per-channel FIFO, tag matching, exactly-once
    delivery, poison-on-abort.  Only the *timing* and cross-channel
    interleaving of deliveries differ — which is precisely the space the
    differential harness (:func:`repro.testing.run_differential`)
    explores.
    """

    def __init__(
        self,
        world_size: int,
        policy: Optional[ChaosPolicy] = None,
        timeout: float = 60.0,
        tracer=None,
        metrics=None,
        topology=None,
        detector=None,
        integrity: bool = True,
    ):
        super().__init__(world_size, timeout=timeout, tracer=tracer,
                         metrics=metrics, topology=topology,
                         detector=detector, integrity=integrity)
        self.policy = policy if policy is not None else ChaosPolicy()
        self.chaos = ChaosStats()
        # registry mirrors of the injection tallies (ChaosStats stays the
        # exact-count source of truth for the differential tests).
        self._m_injected = {
            fault: self.metrics.counter("chaos_injections_total", fault=fault)
            for fault in ("delay", "drop", "duplicate", "crash",
                          "bitflip", "flap", "stall", "rank-flap")
        }
        # wire state, all guarded by self._cond's lock:
        # heap of (arrival, tie, chan, seq, msg, is_retransmit)
        self._limbo: List[Tuple[float, int, Tuple, int, Message, bool]] = []
        self._tie = itertools.count()
        # per-directed-link "busy until" clock: a link is a serial
        # resource, so concurrent messages on the same (src, dst) queue
        # behind each other.  This is what makes *byte volume* (not just
        # message count) show up in wall clock — the effect the
        # hierarchical ring exploits by replacing full weight slots with
        # 24-byte references on the slow boundary links.
        self._link_busy: Dict[Tuple[int, int], float] = {}
        self._chan_send_seq: Dict[Tuple, int] = {}
        self._chan_next: Dict[Tuple, int] = {}
        self._chan_pending: Dict[Tuple, Dict[int, Message]] = {}
        self._posts_by_rank: Dict[int, int] = {}
        # integrity/NACK state: pristine copies of corrupted frames, the
        # per-frame attempt count, in-flight retransmissions (dedupes the
        # NACK a corrupt duplicate would trigger), per-flow budget use,
        # and flows poisoned by budget exhaustion.
        self._pristine: Dict[Tuple[Tuple, int], Message] = {}
        self._frame_attempts: Dict[Tuple[Tuple, int], int] = {}
        self._retx_inflight: Set[Tuple[Tuple, int]] = set()
        self._flow_retx: Dict[Tuple, int] = {}
        self._corrupt_flows: Dict[Tuple, str] = {}
        # per-directed-link post counters (flap windows index into these)
        # and active NIC outages: rank -> monotonic "links down until".
        self._link_posts: Dict[Tuple[int, int], int] = {}
        self._nic_down_until: Dict[int, float] = {}

    # -- wire ------------------------------------------------------------------

    def post(self, msg: Message) -> None:
        self._check_rank(msg.src)
        self._check_rank(msg.dst)
        pol = self.policy
        if self.integrity and msg.crc is None:
            msg.crc = payload_crc32(msg.payload)
        stall = 0.0
        with self._cond:
            self._check_disturbed(msg.src)
            n = self._posts_by_rank.get(msg.src, 0) + 1
            self._posts_by_rank[msg.src] = n
            if pol.crash_rank == msg.src and pol.crash_at_post == n:
                self.chaos.crashes += 1
                self._m_injected["crash"].add(1)
                self.flight.rings[msg.src].record(
                    _flight.EV_CHAOS_CRASH, msg.src, n
                )
                raise ChaosCrash(
                    f"injected crash: rank {msg.src} killed at its "
                    f"{n}th send (tag={msg.tag})"
                )
            if self.detector is not None:
                self._heartbeat_locked(msg.src, _now())
            chan = (msg.src, msg.dst, msg.tag)
            seq = self._chan_send_seq.get(chan, 0)
            self._chan_send_seq[chan] = seq + 1
            lp = self._link_posts.get((msg.src, msg.dst), 0)
            self._link_posts[(msg.src, msg.dst)] = lp + 1
            self._record_traffic_locked(msg)  # logical traffic: once per message
            self.chaos.posts += 1

            # transient rank stall: the sender freezes (outside the lock,
            # below) and its message only leaves when it unfreezes.
            stall = pol.stall_at(msg.src, n)
            if stall > 0.0:
                self.chaos.stalls += 1
                self.chaos.stall_time_s += stall
                self._m_injected["stall"].add(1)
                self.flight.rings[msg.src].record(
                    _flight.EV_CHAOS_STALL, msg.src, n
                )
            # NIC outage trigger: from this post on, everything touching
            # the rank queues until the outage ends, and the rank's
            # heartbeats are suppressed (see _heartbeat_locked).
            if pol.flap_rank == msg.src and pol.flap_rank_at_post == n:
                self._nic_down_until[msg.src] = _now() + pol.flap_rank_duration
                self.chaos.rank_flaps += 1
                self._m_injected["rank-flap"].add(1)
                self.flight.rings[msg.src].record(
                    _flight.EV_CHAOS_FLAP, msg.src, -1
                )

            d = pol.decide(msg.src, msg.dst, msg.tag, seq)
            # Topology serialization is deterministic in (src, dst,
            # nbytes) and additive with the seeded jitter: the chaos
            # decision itself never looks at message size, so two runs
            # that differ only in payload bytes face the *same* adversary
            # on a faster or slower wire — exactly what the
            # hierarchical-vs-flat differential needs.  The link clock
            # below adds queueing on top: messages sharing a directed
            # link transmit one after another (retransmissions pay only
            # the extra retry latency, not a second occupancy slot).
            arrival = self._occupy_locked(msg) + d.delay + stall
            if d.delay > 0.0:
                self.chaos.delayed += 1
                self._m_injected["delay"].add(1)
                self.flight.rings[msg.src].record(
                    _flight.EV_CHAOS_DELAY, msg.src, msg.dst
                )
            if d.dropped:
                self.chaos.dropped += 1
                self.chaos.retransmits += 1
                self.chaos.extra_wire_bytes += msg.nbytes
                self._m_injected["drop"].add(1)
                self._m_heal["fabric_retransmits"].add(1)
                self.flight.rings[msg.src].record(
                    _flight.EV_CHAOS_DROP, msg.src, msg.dst
                )
                arrival += pol.retry_delay
            hold = pol.flap_hold(msg.src, msg.dst, lp)
            if hold > 0.0:
                self.chaos.flapped += 1
                self._m_injected["flap"].add(1)
                self.flight.rings[msg.src].record(
                    _flight.EV_CHAOS_FLAP, msg.src, msg.dst
                )
                arrival += hold
            # messages to or from a flapped rank queue until its NIC is up.
            mute = max(self._nic_down_until.get(msg.src, 0.0),
                       self._nic_down_until.get(msg.dst, 0.0))
            if mute > arrival:
                arrival = mute
            wire = msg
            if d.bitflip:
                # the wire carries a corrupted *copy* stamped with the
                # original CRC; the sender's payload (often the sender's
                # own live weights) is never touched.
                rng = pol.flip_rng(msg.src, msg.dst, msg.tag, seq, 0)
                bad = corrupt_copy(msg.payload, rng)
                if bad is not None:
                    wire = Message(msg.src, msg.dst, msg.tag, bad,
                                   msg.nbytes, crc=msg.crc)
                    self._pristine[(chan, seq)] = msg
                    self.chaos.bitflips += 1
                    self._m_injected["bitflip"].add(1)
                    self.flight.rings[msg.src].record(
                        _flight.EV_CHAOS_BITFLIP, msg.src, msg.dst
                    )
            heapq.heappush(
                self._limbo, (arrival, next(self._tie), chan, seq, wire, False)
            )
            if d.duplicated:
                self.chaos.duplicates += 1
                self.chaos.extra_wire_bytes += msg.nbytes
                self._m_injected["duplicate"].add(1)
                self.flight.rings[msg.src].record(
                    _flight.EV_CHAOS_DUP, msg.src, msg.dst
                )
                heapq.heappush(
                    self._limbo,
                    (self._occupy_locked(msg) + d.dup_delay + stall,
                     next(self._tie), chan, seq, wire, False),
                )
            self._pump_locked()
            self._cond.notify_all()
        if stall > 0.0:
            # freeze the sender *outside* the lock: the rest of the group
            # keeps running (and its failure detector keeps judging us).
            time.sleep(stall)
            with self._cond:
                # a long stall may have gotten this rank confirmed dead —
                # surface DeclaredDead / PeerFailed here, at a fabric
                # operation, like any other disturbance.
                self._check_disturbed(msg.src)

    def link_delay(self, src: int, dst: int, nbytes: int) -> float:
        """Deterministic per-link serialization delay (0 without topology).

        Pure in ``(src, dst, nbytes)`` — exposed so the latency-ordering
        property tests can check it without racing the wall clock."""
        if self.topology is None:
            return 0.0
        return self.topology.wire_time(src, dst, nbytes)

    def _occupy_locked(self, msg: Message) -> float:
        """Reserve the message's directed link; return transmit-done time.

        A link is serial: transmission starts at ``max(now, link busy
        until)`` and holds the link for :meth:`link_delay` seconds.
        Without a topology there is no serialization and this is simply
        ``now``.  Caller holds the fabric lock."""
        now = _now()
        wire = self.link_delay(msg.src, msg.dst, msg.nbytes)
        if wire <= 0.0:
            return now
        key = (msg.src, msg.dst)
        done = max(now, self._link_busy.get(key, 0.0)) + wire
        self._link_busy[key] = done
        return done

    def _pump_locked(self) -> int:
        """Move every due limbo message into the mailbox (caller holds lock).

        Per-channel sequence numbers gate delivery: a copy whose seq was
        already delivered is a duplicate and is discarded; a copy due
        before its channel predecessor waits in a pending buffer so FIFO
        per (src, dst, tag) survives arbitrary delays.  Every landing
        frame is CRC-verified first: a corrupt frame never reaches a
        mailbox — it is NACKed and retransmitted (with capped exponential
        backoff) until it lands clean or the flow's budget is exhausted.
        """
        now = _now()
        delivered = 0
        while self._limbo and self._limbo[0][0] <= now:
            _, _, chan, seq, msg, is_retx = heapq.heappop(self._limbo)
            if is_retx:
                self._retx_inflight.discard((chan, seq))
            nxt = self._chan_next.get(chan, 0)
            pending = self._chan_pending.setdefault(chan, {})
            if seq < nxt or seq in pending:
                self.chaos.duplicates_discarded += 1
                continue
            if msg.crc is not None and payload_crc32(msg.payload) != msg.crc:
                self._handle_corrupt_locked(chan, seq, msg, now)
                continue
            key = (chan, seq)
            if key in self._pristine:  # recovered: drop the NACK state
                del self._pristine[key]
                self._frame_attempts.pop(key, None)
            pending[seq] = msg
            while nxt in pending:
                m = pending.pop(nxt)
                self._mail[m.dst][(m.src, m.tag)].append(m)
                self._drain_locked((m.dst, m.src, m.tag))
                nxt += 1
                delivered += 1
            self._chan_next[chan] = nxt
        if delivered:
            self.chaos.delivered += delivered
            self._cond.notify_all()
        return delivered

    def _handle_corrupt_locked(
        self, chan: Tuple, seq: int, msg: Message, now: float
    ) -> None:
        """A frame failed CRC on delivery: NACK it and schedule the
        sender-side retransmission (caller holds the lock).

        The retransmission resends the pristine copy the sender kept, but
        rides the same lossy wire — it may be corrupted again, decided by
        the same pure RNG keyed on the frame identity and attempt number.
        Each flow has a cumulative retransmit budget; exhausting it
        poisons the flow and the blocked receiver raises
        :class:`CorruptFrameError` (a permanent failure, handed to the
        elastic shrink path by the worker driver).
        """
        pol = self.policy
        self.chaos.corrupt_frames += 1
        self._m_heal["fabric_corrupt_frames"].add(1)
        self.flight.rings[chan[1]].record(_flight.EV_CORRUPT_FRAME, chan[0], seq)
        key = (chan, seq)
        if key in self._retx_inflight:
            # a corrupt *duplicate* of a frame already being recovered:
            # the outstanding retransmission covers it.
            return
        used = self._flow_retx.get(chan, 0)
        if used >= pol.retransmit_budget:
            self._corrupt_flows[chan] = (
                f"frame seq={seq} keeps failing CRC and the flow's "
                f"retransmit budget ({pol.retransmit_budget}) is exhausted"
            )
            self._cond.notify_all()
            return
        self._flow_retx[chan] = used + 1
        attempt = self._frame_attempts.get(key, 0) + 1
        self._frame_attempts[key] = attempt
        self.chaos.nacks += 1
        self.chaos.retransmits += 1
        self.chaos.extra_wire_bytes += msg.nbytes
        self._m_heal["fabric_retransmits"].add(1)
        self.flight.rings[chan[1]].record(_flight.EV_NACK, chan[0], attempt)
        self.flight.rings[chan[0]].record(_flight.EV_RETRANSMIT, chan[1], attempt)
        backoff = min(pol.retry_delay * (2 ** (attempt - 1)), pol.max_backoff)
        pristine = self._pristine.get(key, msg)
        resend = pristine
        if pol.bitflip_prob > 0.0:
            rng = pol.flip_rng(pristine.src, pristine.dst, pristine.tag,
                               seq, attempt)
            if rng.random() < pol.bitflip_prob:
                bad = corrupt_copy(pristine.payload, rng)
                if bad is not None:
                    resend = Message(pristine.src, pristine.dst,
                                     pristine.tag, bad, pristine.nbytes,
                                     crc=pristine.crc)
                    self.chaos.bitflips += 1
                    self._m_injected["bitflip"].add(1)
        self._retx_inflight.add(key)
        heapq.heappush(
            self._limbo,
            (now + backoff, next(self._tie), chan, seq, resend, True),
        )

    def _check_flow_locked(self, dst: int, src: int, tag: Tuple) -> None:
        reason = self._corrupt_flows.get((src, dst, tag))
        if reason is not None:
            raise CorruptFrameError(
                f"rank {dst} receiving from rank {src} tag={tag}: {reason}"
            )

    def _heartbeat_locked(self, rank: int, now: float) -> None:
        # a flapped NIC also cuts the rank's heartbeats — that silence is
        # what the failure detector is *supposed* to see.
        if now < self._nic_down_until.get(rank, 0.0):
            return
        super()._heartbeat_locked(rank, now)

    # -- delivery-aware blocking hooks -----------------------------------------
    # take/poll/irecv themselves come from Fabric: its blocking loop calls
    # _pump_locked before matching and _next_event_locked to bound waits.

    def _next_event_locked(self) -> Optional[float]:
        return self._limbo[0][0] if self._limbo else None

    def _timeout_context(self) -> str:
        return f" under chaos seed {self.policy.seed}"
