"""Chaos engineering for the in-process fabric.

The plain :class:`~repro.runtime.Fabric` delivers every message the
instant it is posted, so the test suite only ever exercises *one* legal
delivery order — the happy path.  Real transports (NCCL over NVLink,
RDMA, TCP) delay, reorder across flows, duplicate at the transport
layer and lose packets; schedule bugs of the kind zero-bubble pipelines
are famous for hide exactly in those rare orderings.

:class:`ChaosFabric` wraps the mailbox with a *seeded* adversarial
transport:

* **delay** — a message becomes visible to ``recv``/``poll`` only after
  a per-message hold-back interval;
* **cross-flow reordering** — because delays are independent per
  message, messages on *different* ``(src, dst, tag)`` channels overtake
  each other freely.  Within one channel delivery stays FIFO (enforced
  by per-channel sequence numbers), exactly the guarantee MPI/NCCL give
  and the strongest reordering a correct program may be exposed to;
* **drop with retry** — the first transmission is lost and a sender-side
  retransmission is scheduled ``retry_delay`` later (at-least-once
  transport);
* **duplicate delivery** — a second copy is put on the wire; the
  receiving side discards it by sequence number (exactly-once delivery
  built on an at-least-once wire, the way real transports do it);
* **injected crash** — a chosen rank raises :class:`ChaosCrash` on its
  N-th ``send``, driving the launcher's ``abort()``/poison path so peers
  must fail fast with ``FabricAborted``.

Every decision is a pure function of ``(policy.seed, src, dst, tag,
per-channel sequence number)`` — *not* of wall-clock time or thread
interleaving — so a failing chaos seed names a reproducible adversary
even though the OS scheduler stays nondeterministic.  Logical traffic
accounting (:class:`~repro.runtime.TrafficStats`) records each message
once; retransmitted and duplicated bytes are tallied separately in
:class:`ChaosStats` so the communication-volume tests stay meaningful
under chaos.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from .communicator import Fabric, _now
from .message import Message

__all__ = ["ChaosPolicy", "ChaosStats", "ChaosCrash", "ChaosFabric"]


class ChaosCrash(RuntimeError):
    """Injected worker failure (see :attr:`ChaosPolicy.crash_rank`)."""


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded fault-injection policy.

    Probabilities are per *message*; delays are seconds (keep them in
    the low-millisecond range — they bound wall-clock test time, not
    simulated time).  ``seed`` selects the adversary: sweeping seeds
    sweeps delivery orders.
    """

    seed: int = 0
    #: probability a message is held back before delivery.
    delay_prob: float = 0.5
    #: maximum hold-back, seconds (uniform in [0, max_delay]).  1 ms is
    #: already ~1000x the in-process message-handling latency, so it
    #: reorders aggressively while keeping sweep wall-clock low.
    max_delay: float = 0.001
    #: probability the first transmission is lost (then retransmitted).
    drop_prob: float = 0.05
    #: extra latency of the sender-side retransmission, seconds.
    retry_delay: float = 0.001
    #: probability a second (to-be-discarded) copy hits the wire.
    duplicate_prob: float = 0.05
    #: rank whose ``send`` raises :class:`ChaosCrash` ... (None = never)
    crash_rank: Optional[int] = None
    #: ... on its N-th post (1-based count of messages that rank sent).
    crash_at_post: Optional[int] = None

    @classmethod
    def quiet(cls, seed: int = 0) -> "ChaosPolicy":
        """A policy that injects nothing (useful as a control group)."""
        return cls(seed=seed, delay_prob=0.0, drop_prob=0.0, duplicate_prob=0.0)

    def with_seed(self, seed: int) -> "ChaosPolicy":
        return replace(self, seed=seed)

    def decide(self, src: int, dst: int, tag: Tuple, seq: int) -> "_Decision":
        """Fault decisions for one message — deterministic in its identity."""
        key = (
            abs(int(self.seed)),
            src,
            dst,
            zlib.crc32(repr(tag).encode()),
            seq,
        )
        rng = np.random.default_rng(key)
        delay = float(rng.random() * self.max_delay) if rng.random() < self.delay_prob else 0.0
        dropped = bool(rng.random() < self.drop_prob)
        duplicated = bool(rng.random() < self.duplicate_prob)
        dup_delay = delay + float(rng.random() * max(self.max_delay, 1e-4))
        return _Decision(delay=delay, dropped=dropped, duplicated=duplicated, dup_delay=dup_delay)


@dataclass(frozen=True)
class _Decision:
    delay: float
    dropped: bool
    duplicated: bool
    dup_delay: float


@dataclass
class ChaosStats:
    """What the adversary actually did (queried after a run)."""

    posts: int = 0
    delayed: int = 0
    dropped: int = 0
    retransmits: int = 0
    duplicates: int = 0
    duplicates_discarded: int = 0
    crashes: int = 0
    delivered: int = 0
    #: physical bytes re-sent on top of the logical traffic (retries + dups).
    extra_wire_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "posts": self.posts,
            "delayed": self.delayed,
            "dropped": self.dropped,
            "retransmits": self.retransmits,
            "duplicates": self.duplicates,
            "duplicates_discarded": self.duplicates_discarded,
            "crashes": self.crashes,
            "delivered": self.delivered,
            "extra_wire_bytes": self.extra_wire_bytes,
        }


class ChaosFabric(Fabric):
    """A :class:`Fabric` whose wire misbehaves according to a seeded policy.

    Drop-in everywhere a ``Fabric`` is accepted (``run_workers``,
    ``train(..., fabric=...)``).  Semantics visible to a *correct*
    program are unchanged: per-channel FIFO, tag matching, exactly-once
    delivery, poison-on-abort.  Only the *timing* and cross-channel
    interleaving of deliveries differ — which is precisely the space the
    differential harness (:func:`repro.testing.run_differential`)
    explores.
    """

    def __init__(
        self,
        world_size: int,
        policy: Optional[ChaosPolicy] = None,
        timeout: float = 60.0,
        tracer=None,
        metrics=None,
        topology=None,
    ):
        super().__init__(world_size, timeout=timeout, tracer=tracer,
                         metrics=metrics, topology=topology)
        self.policy = policy if policy is not None else ChaosPolicy()
        self.chaos = ChaosStats()
        # registry mirrors of the injection tallies (ChaosStats stays the
        # exact-count source of truth for the differential tests).
        self._m_injected = {
            fault: self.metrics.counter("chaos_injections_total", fault=fault)
            for fault in ("delay", "drop", "duplicate", "crash")
        }
        # wire state, all guarded by self._cond's lock:
        self._limbo: List[Tuple[float, int, Tuple, int, Message]] = []  # heap
        self._tie = itertools.count()
        # per-directed-link "busy until" clock: a link is a serial
        # resource, so concurrent messages on the same (src, dst) queue
        # behind each other.  This is what makes *byte volume* (not just
        # message count) show up in wall clock — the effect the
        # hierarchical ring exploits by replacing full weight slots with
        # 24-byte references on the slow boundary links.
        self._link_busy: Dict[Tuple[int, int], float] = {}
        self._chan_send_seq: Dict[Tuple, int] = {}
        self._chan_next: Dict[Tuple, int] = {}
        self._chan_pending: Dict[Tuple, Dict[int, Message]] = {}
        self._posts_by_rank: Dict[int, int] = {}

    # -- wire ------------------------------------------------------------------

    def post(self, msg: Message) -> None:
        self._check_rank(msg.src)
        self._check_rank(msg.dst)
        pol = self.policy
        with self._cond:
            self._check_disturbed(msg.src)
            n = self._posts_by_rank.get(msg.src, 0) + 1
            self._posts_by_rank[msg.src] = n
            if pol.crash_rank == msg.src and pol.crash_at_post == n:
                self.chaos.crashes += 1
                self._m_injected["crash"].add(1)
                raise ChaosCrash(
                    f"injected crash: rank {msg.src} killed at its "
                    f"{n}th send (tag={msg.tag})"
                )
            chan = (msg.src, msg.dst, msg.tag)
            seq = self._chan_send_seq.get(chan, 0)
            self._chan_send_seq[chan] = seq + 1
            self._record_traffic_locked(msg)  # logical traffic: once per message
            self.chaos.posts += 1

            d = pol.decide(msg.src, msg.dst, msg.tag, seq)
            # Topology serialization is deterministic in (src, dst,
            # nbytes) and additive with the seeded jitter: the chaos
            # decision itself never looks at message size, so two runs
            # that differ only in payload bytes face the *same* adversary
            # on a faster or slower wire — exactly what the
            # hierarchical-vs-flat differential needs.  The link clock
            # below adds queueing on top: messages sharing a directed
            # link transmit one after another (retransmissions pay only
            # the extra retry latency, not a second occupancy slot).
            arrival = self._occupy_locked(msg) + d.delay
            if d.delay > 0.0:
                self.chaos.delayed += 1
                self._m_injected["delay"].add(1)
            if d.dropped:
                self.chaos.dropped += 1
                self.chaos.retransmits += 1
                self.chaos.extra_wire_bytes += msg.nbytes
                self._m_injected["drop"].add(1)
                arrival += pol.retry_delay
            heapq.heappush(self._limbo, (arrival, next(self._tie), chan, seq, msg))
            if d.duplicated:
                self.chaos.duplicates += 1
                self.chaos.extra_wire_bytes += msg.nbytes
                self._m_injected["duplicate"].add(1)
                heapq.heappush(
                    self._limbo,
                    (self._occupy_locked(msg) + d.dup_delay, next(self._tie), chan, seq, msg),
                )
            self._pump_locked()
            self._cond.notify_all()

    def link_delay(self, src: int, dst: int, nbytes: int) -> float:
        """Deterministic per-link serialization delay (0 without topology).

        Pure in ``(src, dst, nbytes)`` — exposed so the latency-ordering
        property tests can check it without racing the wall clock."""
        if self.topology is None:
            return 0.0
        return self.topology.wire_time(src, dst, nbytes)

    def _occupy_locked(self, msg: Message) -> float:
        """Reserve the message's directed link; return transmit-done time.

        A link is serial: transmission starts at ``max(now, link busy
        until)`` and holds the link for :meth:`link_delay` seconds.
        Without a topology there is no serialization and this is simply
        ``now``.  Caller holds the fabric lock."""
        now = _now()
        wire = self.link_delay(msg.src, msg.dst, msg.nbytes)
        if wire <= 0.0:
            return now
        key = (msg.src, msg.dst)
        done = max(now, self._link_busy.get(key, 0.0)) + wire
        self._link_busy[key] = done
        return done

    def _pump_locked(self) -> int:
        """Move every due limbo message into the mailbox (caller holds lock).

        Per-channel sequence numbers gate delivery: a copy whose seq was
        already delivered is a duplicate and is discarded; a copy due
        before its channel predecessor waits in a pending buffer so FIFO
        per (src, dst, tag) survives arbitrary delays.
        """
        now = _now()
        delivered = 0
        while self._limbo and self._limbo[0][0] <= now:
            _, _, chan, seq, msg = heapq.heappop(self._limbo)
            nxt = self._chan_next.get(chan, 0)
            pending = self._chan_pending.setdefault(chan, {})
            if seq < nxt or seq in pending:
                self.chaos.duplicates_discarded += 1
                continue
            pending[seq] = msg
            while nxt in pending:
                m = pending.pop(nxt)
                self._mail[m.dst][(m.src, m.tag)].append(m)
                self._drain_locked((m.dst, m.src, m.tag))
                nxt += 1
                delivered += 1
            self._chan_next[chan] = nxt
        if delivered:
            self.chaos.delivered += delivered
            self._cond.notify_all()
        return delivered

    # -- delivery-aware blocking hooks -----------------------------------------
    # take/poll/irecv themselves come from Fabric: its blocking loop calls
    # _pump_locked before matching and _next_event_locked to bound waits.

    def _next_event_locked(self) -> Optional[float]:
        return self._limbo[0][0] if self._limbo else None

    def _timeout_context(self) -> str:
        return f" under chaos seed {self.policy.seed}"
