"""Per-rank runtime tracer with Chrome trace-event export.

The runtime is threaded — one Python thread per rank on one in-process
fabric — so the tracer mirrors that shape: each rank owns a private
append-only event buffer (:class:`RankTracer`) that only its own thread
writes, making the hot path lock-free.  The shared :class:`Tracer` holds
the buffer registry (locked only at buffer *creation*), the trace epoch,
and the exporters.

Tracing is **opt-in and free when off**: every hot call site either
checks the ``enabled`` flag or goes through :data:`NULL_TRACER`, whose
``span``/``instant``/``complete`` methods are allocation-free no-ops
returning shared singletons.  Traced runs are bit-exact with untraced
runs by construction — the tracer only reads the monotonic clock and
appends tuples; it never touches payloads or numerics.

Event model (the *stable* schema — see DESIGN.md §11):

* **spans** (``ph: "X"`` complete events) — a named interval on one
  rank's timeline.  Emitted either via the ``with tracer.span(name,
  cat)`` context manager or, on hot paths that already read the clock,
  via ``tracer.complete(name, cat, start, duration, args)``.
* **instants** (``ph: "i"``) — point events (message sends, chaos
  injections, recovery milestones).
* **counters** (``ph: "C"``) — numeric series (pool allocations).

Export formats:

* :meth:`Tracer.chrome_trace` / :meth:`Tracer.dump` — Chrome
  trace-event JSON (object form, ``{"traceEvents": [...]}``) loadable in
  Perfetto / ``chrome://tracing``.  One *pid* per rank, with process
  name metadata ``rank <r>``; timestamps are microseconds relative to
  the trace epoch.
* :meth:`Tracer.dump_jsonl` — one compact JSON event per line, for
  streaming/appending consumers that don't want the enclosing object.

Both carry ``metadata`` (workload dimensions, strategy, wire) so the
analyzer (:mod:`repro.obs.analyze`) can reconcile a trace against
:mod:`repro.sim.costmodel` without side-channel configuration.
"""

from __future__ import annotations

import json
import threading
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "TRACE_SCHEMA",
    "Tracer",
    "RankTracer",
    "NullTracer",
    "NullRankTracer",
    "NULL_TRACER",
    "NULL_RANK_TRACER",
]

#: schema tag embedded in every export — bump on any shape change.
TRACE_SCHEMA = "repro.trace/v1"


class _Span:
    """Context manager recording one complete ("X") event on exit."""

    __slots__ = ("_buf", "_name", "_cat", "_args", "_t0")

    def __init__(self, buf: "RankTracer", name: str, cat: str, args):
        self._buf = buf
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        t0 = self._t0
        self._buf.complete(self._name, self._cat, t0, perf_counter() - t0, self._args)
        return False


class _NullSpan:
    """Shared no-op span: entering/exiting allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class RankTracer:
    """One rank's event buffer.  Single-writer: only the owning rank's
    thread may append, which is what makes the hot path lock-free."""

    __slots__ = ("pid", "tid", "_events", "enabled")

    def __init__(self, pid: int, tid: int = 0):
        self.pid = pid
        self.tid = tid
        #: (ph, name, cat, ts, dur, args) tuples; ts/dur in seconds from
        #: the owning Tracer's epoch.
        self._events: List[Tuple] = []
        self.enabled = True

    # -- recording -------------------------------------------------------------

    def span(self, name: str, cat: str = "", args: Optional[Dict] = None) -> _Span:
        """``with trace.span("F", "compute", {"slot": 0}): ...``"""
        return _Span(self, name, cat, args)

    def complete(
        self, name: str, cat: str, start: float, duration: float,
        args: Optional[Dict] = None,
    ) -> None:
        """Record a finished interval from clock readings the caller
        already took (the hot-path form: no context-manager object)."""
        self._events.append(("X", name, cat, start, duration, args))

    def instant(self, name: str, cat: str = "", args: Optional[Dict] = None) -> None:
        self._events.append(("i", name, cat, perf_counter(), 0.0, args))

    def counter(self, name: str, value: float, cat: str = "") -> None:
        self._events.append(("C", name, cat, perf_counter(), 0.0, {"value": value}))

    def __len__(self) -> int:
        return len(self._events)


class Tracer:
    """The shared tracer: rank-buffer registry, epoch, exporters."""

    enabled = True

    def __init__(self, metadata: Optional[Dict] = None):
        self._lock = threading.Lock()
        self._buffers: Dict[Tuple[int, int], RankTracer] = {}
        self.metadata: Dict = dict(metadata) if metadata else {}
        #: trace epoch: event timestamps are relative to this.
        self.epoch = perf_counter()

    def rank(self, pid: int, tid: int = 0) -> RankTracer:
        """The (created-on-first-use) buffer for one rank's thread."""
        key = (pid, tid)
        buf = self._buffers.get(key)
        if buf is None:
            with self._lock:
                buf = self._buffers.get(key)
                if buf is None:
                    buf = self._buffers[key] = RankTracer(pid, tid)
        return buf

    # -- export ----------------------------------------------------------------

    def events(self) -> Iterable[Dict]:
        """All events as Chrome trace-event dicts (ts/dur in µs from the
        epoch), ordered by timestamp."""
        out: List[Dict] = []
        with self._lock:
            buffers = list(self._buffers.values())
        for buf in buffers:
            pid, tid = buf.pid, buf.tid
            for ph, name, cat, ts, dur, args in list(buf._events):
                ev: Dict[str, Any] = {
                    "ph": ph,
                    "name": name,
                    "cat": cat or "misc",
                    "pid": pid,
                    "tid": tid,
                    "ts": (ts - self.epoch) * 1e6,
                }
                if ph == "X":
                    ev["dur"] = dur * 1e6
                if ph == "i":
                    ev["s"] = "t"  # thread-scoped instant
                if args:
                    ev["args"] = _jsonable(args)
                out.append(ev)
        out.sort(key=lambda e: e["ts"])
        return out

    def chrome_trace(self) -> Dict:
        """The full Chrome trace-event *object form* document."""
        events: List[Dict] = []
        with self._lock:
            pids = sorted({pid for pid, _tid in self._buffers})
        for pid in pids:
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "ts": 0, "args": {"name": f"rank {pid}"},
            })
        events.extend(self.events())
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {"schema": TRACE_SCHEMA, **_jsonable(self.metadata)},
        }

    def dump(self, path: str) -> None:
        """Write Chrome trace-event JSON (Perfetto / chrome://tracing)."""
        with open(path, "w") as f:
            json.dump(self.chrome_trace(), f, separators=(",", ":"))
            f.write("\n")

    def dump_jsonl(self, path: str) -> None:
        """Write one compact JSON event per line (no enclosing object);
        line 1 is a header record carrying schema + metadata."""
        with open(path, "w") as f:
            header = {"schema": TRACE_SCHEMA, "metadata": _jsonable(self.metadata)}
            f.write(json.dumps(header, separators=(",", ":")) + "\n")
            for ev in self.events():
                f.write(json.dumps(ev, separators=(",", ":")) + "\n")


class NullRankTracer:
    """Allocation-free no-op rank buffer (the disabled-path singleton).

    Every method returns a shared object or ``None``; calling them in a
    steady-state loop allocates nothing, which the overhead regression
    test pins down by identity checks.
    """

    __slots__ = ()

    pid = -1
    tid = 0
    enabled = False

    def span(self, name: str, cat: str = "", args: Optional[Dict] = None) -> _NullSpan:
        return _NULL_SPAN

    def complete(self, name, cat, start, duration, args=None) -> None:
        return None

    def instant(self, name, cat="", args=None) -> None:
        return None

    def counter(self, name, value, cat="") -> None:
        return None

    def __len__(self) -> int:
        return 0


NULL_RANK_TRACER = NullRankTracer()


class NullTracer:
    """Disabled tracer: hands out the shared :class:`NullRankTracer`."""

    __slots__ = ()

    enabled = False
    metadata: Dict = {}

    def rank(self, pid: int, tid: int = 0) -> NullRankTracer:
        return NULL_RANK_TRACER

    def events(self) -> List[Dict]:
        return []

    def chrome_trace(self) -> Dict:
        return {"traceEvents": [], "displayTimeUnit": "ms",
                "metadata": {"schema": TRACE_SCHEMA}}


NULL_TRACER = NullTracer()


def _jsonable(obj):
    """Best-effort conversion to JSON-serialisable values (tags are
    tuples; numpy scalars appear in metrics)."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    return repr(obj)
