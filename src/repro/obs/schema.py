"""Structural validation of exported traces (the CI smoke gate).

:func:`validate_chrome_trace` checks the *shape* our exporter promises
(DESIGN.md §11) — not full Chrome trace-event semantics.  It returns a
list of human-readable problems; an empty list means the document is
well-formed and schema-tagged.
"""

from __future__ import annotations

from typing import Dict, List

from .tracer import TRACE_SCHEMA

__all__ = ["validate_chrome_trace"]

#: event phases our exporter emits.
_PHASES = {"X", "i", "C", "M"}
_REQUIRED = ("ph", "name", "pid", "tid", "ts")


def validate_chrome_trace(doc: Dict, max_errors: int = 20) -> List[str]:
    """Validate a trace document; returns problems (empty = valid)."""
    errors: List[str] = []

    def err(msg: str) -> bool:
        errors.append(msg)
        return len(errors) >= max_errors

    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    meta = doc.get("metadata")
    if not isinstance(meta, dict):
        err("metadata missing or not an object")
    elif meta.get("schema") != TRACE_SCHEMA:
        err(f"metadata.schema is {meta.get('schema')!r}, want {TRACE_SCHEMA!r}")

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            if err(f"event[{i}]: not an object"):
                break
            continue
        missing = [k for k in _REQUIRED if k not in ev]
        if missing:
            if err(f"event[{i}]: missing keys {missing}"):
                break
            continue
        ph = ev["ph"]
        if ph not in _PHASES:
            if err(f"event[{i}]: unknown phase {ph!r}"):
                break
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                if err(f"event[{i}] ({ev['name']!r}): X event needs dur >= 0"):
                    break
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            if err(f"event[{i}] ({ev['name']!r}): instant needs scope s"):
                break
        if not isinstance(ev["ts"], (int, float)):
            if err(f"event[{i}]: ts is not a number"):
                break
    return errors
